package vamana

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// Batched execution must not change governance accounting. The executor
// pulls tuples in batches of up to ExecBatchSize, but budgets are charged
// per delivered result and per decoded record — so a limit that trips in
// the middle of a batch must report the same typed error, and the same
// exact Used, as tuple-at-a-time execution, and the half-drained batch
// must never leak out to the caller.

// TestBudgetMaxResultsMidBatch trips MaxResults at a point that falls
// mid-batch for every real batch size: exactly Limit results stream out,
// and the error is a *BudgetError whose Used is the first count past the
// limit — not the batch boundary the executor had buffered up to.
func TestBudgetMaxResultsMidBatch(t *testing.T) {
	for _, batch := range []int{1, 2, 4, 64, 256} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			db, err := Open(Options{ExecBatchSize: batch})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			doc := loadAuction(t, db, 0.01)

			res, err := db.QueryContext(context.Background(), doc, "//person/address",
				WithMaxResults(3))
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for res.Next() {
				n++
			}
			if n != 3 {
				t.Errorf("delivered %d results under WithMaxResults(3) at batch %d, want exactly 3", n, batch)
			}
			var be *BudgetError
			if err := res.Err(); !errors.As(err, &be) {
				t.Fatalf("err = %v, want a *BudgetError", err)
			}
			if be.Budget != "results" || be.Limit != 3 || be.Used != 4 {
				t.Errorf("BudgetError = %+v, want {results 3 4}", be)
			}
		})
	}
}

// TestBudgetMaxDecodedRecordsMidBatch does the same for the
// record-decode budget: scanning batches of index entries must still
// charge record decodes one by one, so Used lands exactly one past the
// limit regardless of batch size.
func TestBudgetMaxDecodedRecordsMidBatch(t *testing.T) {
	for _, batch := range []int{1, 64, 256} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			db, err := Open(Options{ExecBatchSize: batch})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			doc := loadAuction(t, db, 0.01)

			res, err := db.QueryContext(context.Background(), doc, heavyExpr,
				WithMaxDecodedRecords(10))
			if err == nil {
				for res.Next() {
				}
				err = res.Err()
			}
			var be *BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("err = %v, want a *BudgetError", err)
			}
			if be.Budget != "decoded-records" || be.Limit != 10 || be.Used != 11 {
				t.Errorf("BudgetError = %+v, want {decoded-records 10 11}", be)
			}
		})
	}
}

// TestCancelMidBatch cancels a streaming query after a few results — with
// the default batch size the executor is then sitting on a half-drained
// buffer — and checks the stream dies with the typed error, the buffered
// remainder is abandoned rather than flushed, and the pooled run state
// the abandoned batch lived in is returned clean: the same DB must
// immediately serve the same query correctly, including from other
// goroutines (the -race build of this test is wired into check.sh).
func TestCancelMidBatch(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.05)

	// Reference result from an ungoverned run.
	ref, err := db.Query(doc, heavyExpr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 16 {
		t.Fatalf("fixture yields only %d results; need a bigger one", len(want))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := db.QueryContext(ctx, doc, heavyExpr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !res.Next() {
			t.Fatalf("query produced only %d results before cancel", i)
		}
	}
	cancel()
	// Cancellation is polled every 256 units of work; the buffered batch
	// must not keep the stream alive past that.
	extra := 0
	for res.Next() {
		if extra++; extra > 1024 {
			t.Fatal("iterator still yielding 1024 results after cancel")
		}
	}
	if err := res.Err(); !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	res.Close()

	// The canceled run's pooled state must come back clean: rerun the
	// query to completion, concurrently, and compare full key streams.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				res, err := db.Query(doc, heavyExpr)
				if err != nil {
					t.Error(err)
					return
				}
				got, err := res.Keys()
				if err != nil {
					t.Error(err)
					return
				}
				if len(got) != len(want) {
					t.Errorf("rerun after cancel returned %d keys, want %d", len(got), len(want))
					return
				}
				for j := range got {
					if got[j] != want[j] {
						t.Errorf("rerun after cancel: key %d = %s, want %s", j, got[j], want[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
