package vamana

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"vamana/internal/xmark"
)

// TestQueryServing exercises the one-shot serving API: first call
// compiles, repeats hit the plan cache, and an update to the document
// invalidates its cached plan.
func TestQueryServing(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.003)

	const expr = "//person/address"
	res, err := db.Query(doc, expr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no results from serving query")
	}

	for i := 0; i < 5; i++ {
		res, err := db.Query(doc, expr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Keys()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("repeat %d: result set changed: %d keys vs %d", i, len(got), len(want))
		}
	}
	st := db.CacheStats()
	if st.Hits < 5 {
		t.Fatalf("expected >=5 plan cache hits, got %+v", st)
	}

	// Deleting a matching subtree must invalidate the cached plan and the
	// re-served result set must shrink.
	if err := doc.DeleteSubtree(want[0]); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(doc, expr)
	if err != nil {
		t.Fatal(err)
	}
	after, err := res.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(want)-1 {
		t.Fatalf("after delete: %d results, want %d", len(after), len(want)-1)
	}
	st = db.CacheStats()
	if st.Invalidations == 0 {
		t.Fatalf("document update did not invalidate the cached plan: %+v", st)
	}
}

// TestQueryServingConcurrent is the serving regression test from the
// issue: one DB, one repeatedly-served expression, 16 goroutines split
// across 2 documents, every goroutine must observe exactly the result set
// of a fresh uncached compile for its document.
func TestQueryServingConcurrent(t *testing.T) {
	db := openDB(t)
	d1 := loadAuction(t, db, 0.003)
	src2 := xmark.GenerateString(xmark.Config{Factor: 0.005, Seed: 97})
	d2, err := db.LoadXMLString("auction2", src2)
	if err != nil {
		t.Fatal(err)
	}

	const expr = "//person[address]/name"
	want := make(map[*Document][]string)
	for _, d := range []*Document{d1, d2} {
		q, err := db.CompileOptimized(d, expr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := q.Execute(d)
		if err != nil {
			t.Fatal(err)
		}
		keys, err := res.Keys()
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) == 0 {
			t.Fatalf("baseline for %s returned nothing", d.Name())
		}
		want[d] = keys
	}

	const goroutines = 16
	const repeats = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		d := d1
		if g%2 == 1 {
			d = d2
		}
		wg.Add(1)
		go func(g int, d *Document) {
			defer wg.Done()
			for r := 0; r < repeats; r++ {
				res, err := db.Query(d, expr)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d repeat %d: %v", g, r, err)
					return
				}
				got, err := res.Keys()
				if err != nil {
					errs <- fmt.Errorf("goroutine %d repeat %d: %v", g, r, err)
					return
				}
				if !reflect.DeepEqual(got, want[d]) {
					errs <- fmt.Errorf("goroutine %d repeat %d on %s: got %d keys, want %d",
						g, r, d.Name(), len(got), len(want[d]))
					return
				}
			}
			errs <- nil
		}(g, d)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestSharedQueryConcurrentExplain pins down the shared-plan mutation
// race: Estimate/Explain/ExplainAnalyze annotate a clone, never the
// query's own plan, so one compiled Query object may be used from many
// goroutines at once (run under -race).
func TestSharedQueryConcurrentExplain(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.003)
	q, err := db.CompileOptimized(doc, "//person/address")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var err error
			switch g % 3 {
			case 0:
				_, err = q.Explain(doc)
			case 1:
				_, err = q.ExplainAnalyze(doc)
			case 2:
				var res *Results
				if res, err = q.Execute(doc); err == nil {
					_, err = res.Keys()
				}
			}
			errs <- err
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestServingWithoutPlanCache verifies the negative PlanCacheSize knob:
// serving still works, it just compiles every time.
func TestServingWithoutPlanCache(t *testing.T) {
	db, err := Open(Options{PlanCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc := loadAuction(t, db, 0.003)
	for i := 0; i < 3; i++ {
		res, err := db.Query(doc, "//person/address")
		if err != nil {
			t.Fatal(err)
		}
		keys, err := res.Keys()
		if err != nil || len(keys) == 0 {
			t.Fatalf("uncached serving failed: %d keys, %v", len(keys), err)
		}
	}
	if st := db.CacheStats(); st.Hits != 0 {
		t.Fatalf("plan cache disabled but recorded hits: %+v", st)
	}
}
