package vamana_test

// TestServeObsOverheadGate bounds the cost of full request
// observability on the serving hot path: the client-observed p95 of the
// cached paper query Q1 over loopback HTTP against a daemon with
// request IDs, SLO histograms, an access log, and request rings all on
// must stay within 1.02x of the same daemon with request observability
// disabled. Everything the feature adds per request — ID resolution,
// header echoes, two histogram observations, the NDJSON log line, two
// ring inserts — lives inside that 2%.
//
// Methodology matches the repo's other perf gates: two servers over one
// shared DB (same plan cache, same pages), paired interleaved rounds so
// machine noise lands on both sides, best-of-rounds p95 per side,
// several attempts so only a persistent regression fails.
//
// Skipped unless VAMANA_SERVE_OBS_GATE is set — scripts/check.sh runs
// it. Gates jitter around ±7% on shared hardware; re-run a failing gate
// alone before calling it a regression.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"vamana"
	"vamana/internal/serve"
	"vamana/internal/xmark"
)

func TestServeObsOverheadGate(t *testing.T) {
	if os.Getenv("VAMANA_SERVE_OBS_GATE") == "" {
		t.Skip("set VAMANA_SERVE_OBS_GATE=1 to run the serve observability overhead gate")
	}
	const (
		q1              = "//person/address" // the paper's Q1
		queriesPerRound = 120
		rounds          = 3
		attempts        = 4
		maxMultiple     = 1.02
	)

	db, err := vamana.Open(vamana.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.LoadXMLString("auction",
		xmark.GenerateString(xmark.Config{Factor: 0.02, Seed: 51})); err != nil {
		t.Fatal(err)
	}

	newServer := func(disableObs bool) string {
		cfg := serve.Config{DB: db, DisableRequestObs: disableObs}
		if !disableObs {
			// The full stack: access log (discarded — the write path runs,
			// the sink is free), default rings, default slow threshold.
			cfg.AccessLog = io.Discard
		}
		srv, err := serve.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts.URL + "/v1/query?doc=auction&q=" + q1
	}
	obsURL := newServer(false)
	offURL := newServer(true)
	client := &http.Client{}

	drain := func(url string) {
		t.Helper()
		resp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}
	// Warm both servers: plan cache, probe memo, HTTP connections.
	for i := 0; i < 5; i++ {
		drain(obsURL)
		drain(offURL)
	}

	p95 := func(lats []time.Duration) time.Duration {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)*95/100]
	}
	measureRound := func() (withObs, without time.Duration) {
		on := make([]time.Duration, 0, queriesPerRound)
		off := make([]time.Duration, 0, queriesPerRound)
		for i := 0; i < queriesPerRound; i++ {
			begin := time.Now()
			drain(obsURL)
			on = append(on, time.Since(begin))
			begin = time.Now()
			drain(offURL)
			off = append(off, time.Since(begin))
		}
		return p95(on), p95(off)
	}

	var lastMsg string
	for attempt := 0; attempt < attempts; attempt++ {
		onBest, offBest := time.Duration(1<<62), time.Duration(1<<62)
		for r := 0; r < rounds; r++ {
			on, off := measureRound()
			if on < onBest {
				onBest = on
			}
			if off < offBest {
				offBest = off
			}
		}
		multiple := float64(onBest) / float64(offBest)
		lastMsg = fmt.Sprintf("cached Q1 remote p95 obs-on=%v obs-off=%v multiple=%.3f (bound %.2f)",
			onBest, offBest, multiple, maxMultiple)
		t.Log(lastMsg)
		if multiple <= maxMultiple {
			return
		}
	}
	t.Fatalf("request observability overhead exceeded bound after %d attempts: %s", attempts, lastMsg)
}
