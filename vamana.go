// Package vamana is a scalable, cost-driven XPath engine — a Go
// implementation of the VAMANA system (Raghavan, Deschler, Rundensteiner;
// ICDE 2005).
//
// VAMANA stores XML documents in MASS, a multi-axis storage structure
// built on counted B+-trees over FLEX structural keys, and evaluates
// XPath 1.0 expressions with index-only, pipelined query plans. A
// cost-driven, rule-based optimizer rewrites plans using exact statistics
// probed directly from the indexes, so cost information stays correct
// under document updates with no histogram maintenance.
//
// # Quick start
//
//	db, err := vamana.Open(vamana.Options{}) // in-memory store
//	defer db.Close()
//	doc, err := db.LoadXML("auction", file)
//	res, err := db.QueryContext(ctx, doc, "//person/address",
//		vamana.WithTimeout(time.Second), vamana.WithMaxResults(1000))
//	for n, err := range res.All() {
//		if err != nil {
//			break // ctx canceled, deadline hit, or budget tripped
//		}
//		fmt.Println(n.Name, n.Value)
//	}
//
// Every query is governed: the context's cancellation and deadline are
// observed throughout execution — down to the index cursors — and
// per-query resource budgets (results, pages read, records decoded,
// wall-clock) stop runaway queries with distinct typed errors (see
// ErrCanceled, ErrDeadlineExceeded, BudgetError).
//
// All 13 XPath axes are supported, along with value, range and position
// predicates, node-set union, and the XPath 1.0 core function library.
package vamana

import (
	"context"
	"errors"
	"io"
	"iter"
	"net/http"
	"sync/atomic"
	"time"

	"vamana/internal/core"
	"vamana/internal/exec"
	"vamana/internal/flex"
	"vamana/internal/mass"
	"vamana/internal/obs"
	"vamana/internal/xmldoc"
)

// Options configures a database.
type Options struct {
	// Path is the backing page file for the MASS store. Empty keeps the
	// whole store in memory. A file-backed store persists across Open
	// calls.
	Path string
	// CachePages bounds the in-memory index page cache of a file-backed
	// store (8 KiB pages; the working set beyond it is read from disk on
	// demand). 0 selects a default of ~6K pages. This is the knob that
	// keeps memory flat however large the documents grow.
	CachePages int
	// Backend, when non-nil, overrides Path as the raw storage under the
	// page layer. Production stores use Path; Backend exists for tests
	// and tools that need to interpose on the database's I/O (e.g. fault
	// injection, read-only snapshots).
	Backend Backend
	// DisableChecksumVerify opens the store without verifying per-page
	// CRC32C checksums on reads (pages are still stamped on write). This
	// trades corruption detection for a small per-read saving; it exists
	// for benchmarking the checksum cost and for forensic salvage of a
	// damaged store. Leave it false in production.
	DisableChecksumVerify bool
	// PlanCacheSize bounds the number of compiled query plans kept by the
	// serving fast path (DB.Query). 0 selects the default of 256 plans;
	// negative disables plan caching, making DB.Query compile on every
	// call. Cached optimized plans are invalidated automatically when
	// their document is updated (statistics-epoch based), so a hit is
	// always as fresh as a recompile.
	PlanCacheSize int
	// SlowQueryThreshold records DB.Query calls at or above this
	// end-to-end latency into the slow-query ring (DB.SlowQueries) and,
	// when SlowQueryLog is set, as one line per query there. 0 disables
	// slow-query tracking.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives one line per slow query (e.g. os.Stderr or a
	// log file). Ignored unless SlowQueryThreshold is set.
	SlowQueryLog io.Writer
	// TraceEvery samples a full TraceContext for 1 in N DB.Query calls
	// (1 traces every query, 0 disables). When a query is not sampled the
	// serving hot path allocates no trace state, so sampling bounds the
	// observability overhead regardless of query rate.
	TraceEvery int
	// TraceSink receives each sampled trace after its query finishes.
	TraceSink func(*TraceContext)
	// FlightRecorderSize keeps the last N complete query traces — span
	// trees included — in a bounded ring readable via DB.RecentTraces
	// and the /debug/vamana/traces endpoint. With the recorder on, every
	// query records spans (not just the 1-in-TraceEvery samples), so a
	// query that turns out slow or budget-tripped is already captured
	// retroactively. 0 disables the recorder.
	FlightRecorderSize int
	// DefaultLimits is the resource-budget set applied to every query run
	// on this database. Per-query options (WithTimeout, WithMaxResults, …)
	// override it field by field; WithLimits replaces it. The zero value
	// leaves every budget off.
	DefaultLimits Limits
	// ExecBatchSize sets the executor's pull-batch size: how many result
	// tuples each operator hands its consumer per call (0 selects the
	// built-in default, currently 128; 1 degenerates to tuple-at-a-time
	// execution). Results are identical at every batch size — this knob
	// exists for benchmarking the batch sweep and for differential
	// testing, not for tuning production workloads.
	ExecBatchSize int
	// DisableCostObservatory turns off the cost-model observatory: the
	// per-query fold of actual operator cardinalities against the
	// optimizer's estimates (DB.CostProfile, /debug/vamana/cost). The
	// fold is allocation-free and costs well under 1% of serving
	// latency, so this knob exists for benchmark pairing, not tuning.
	DisableCostObservatory bool
	// CostCalibration enables the observatory's feedback loop: each
	// operator class's observed estimation error feeds an EWMA
	// correction factor that the cost estimator applies on subsequent
	// compiles, and cached plans are invalidated when a factor drifts.
	// Query results are never affected — calibration can only change
	// which equivalent plan runs. Off by default.
	CostCalibration bool
}

// TraceContext is a sampled per-query execution trace: compile-vs-serve
// split, cache-hit status, end-to-end latency, result count, storage
// consumption, and (when spans were recorded) the operator span tree.
type TraceContext = core.TraceContext

// QueryTrace is one complete recorded query trace in export form — what
// the flight recorder stores and the Chrome/text exporters consume.
type QueryTrace = obs.QueryTrace

// Span is one operator's recorded execution within a query trace.
type Span = obs.Span

// WriteChromeTrace writes traces as Chrome trace-event JSON, loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, traces []*QueryTrace) error {
	return obs.WriteChromeTrace(w, traces)
}

// RequestTrace joins a serving-layer request to the engine trace that
// runs under it: attach one to a query context with WithRequestTrace and
// the engine stamps the request ID and tenant into the exported trace;
// when the run was traced (flight recorder on), the export is handed
// back in Captured instead of the flight ring so the serving layer can
// graft its own spans above it and record the combined trace
// (DB.RecordTrace) — one ring entry per request, serve and engine spans
// in one timeline.
type RequestTrace = core.RequestTrace

// WithRequestTrace returns a context carrying rt; queries run under it
// join their traces to the request (see RequestTrace).
func WithRequestTrace(ctx context.Context, rt *RequestTrace) context.Context {
	return core.WithRequestTrace(ctx, rt)
}

// SlowQuery is one recorded slow query (see Options.SlowQueryThreshold).
type SlowQuery = core.SlowQuery

// StorageMetrics snapshots a database's storage-level activity counters:
// pager I/O, B+-tree node-cache traffic, records decoded, statistics
// probes that reached storage.
type StorageMetrics = mass.StoreMetrics

// DB is a VAMANA database: a MASS store holding any number of indexed XML
// documents plus the query pipeline. It is safe for concurrent use.
type DB struct {
	engine   *core.Engine
	defaults Limits
	// shared is the auto-snapshot read path's current snapshot: installed
	// by DB.Update commits, served (refcounted) by DB.Query while fresh,
	// and dropped when a legacy per-op mutation makes it stale. Nil until
	// the first transactional commit — queries then read the live store
	// directly, which is equivalent while nothing is being batched.
	shared atomic.Pointer[core.Snapshot]
}

// Open creates or reopens a database.
func Open(opts Options) (*DB, error) {
	e, err := core.Open(core.Options{
		Path:                   opts.Path,
		CachePages:             opts.CachePages,
		Backend:                opts.Backend,
		DisableChecksumVerify:  opts.DisableChecksumVerify,
		PlanCacheSize:          opts.PlanCacheSize,
		SlowQueryThreshold:     opts.SlowQueryThreshold,
		SlowQueryLog:           opts.SlowQueryLog,
		TraceEvery:             opts.TraceEvery,
		TraceSink:              opts.TraceSink,
		FlightRecorderSize:     opts.FlightRecorderSize,
		ExecBatch:              opts.ExecBatchSize,
		DisableCostObservatory: opts.DisableCostObservatory,
		CostCalibration:        opts.CostCalibration,
	})
	if err != nil {
		return nil, err
	}
	return &DB{engine: e, defaults: opts.DefaultLimits}, nil
}

// Close flushes indexes and releases the store.
func (db *DB) Close() error {
	db.dropShared()
	return db.engine.Close()
}

// Document is a handle to one loaded document. A handle obtained from
// DB reads the live store; one obtained from Snapshot.Document reads
// that snapshot's pinned version and rejects mutation.
type Document struct {
	db   *DB
	id   mass.DocID
	name string
	// snap binds the handle to a snapshot's frozen view; nil for live
	// handles.
	snap *Snapshot
}

// readStore returns the store this handle reads from, plus a release to
// call when the read finishes: the pinned snapshot store for
// snapshot-bound handles; otherwise the shared committed snapshot when
// one is installed — so direct reads never observe an open
// transaction's buffered writes — falling back to the live store only
// when no snapshot exists (in which case no transaction has ever run,
// and DB.Update installs one before its function starts).
func (d *Document) readStore() (*mass.Store, func()) {
	if d.snap != nil {
		return d.snap.cs.Store(), func() {}
	}
	if sn := d.db.acquireShared(); sn != nil {
		return sn.Store(), sn.Unref
	}
	return d.db.engine.Store(), func() {}
}

// writer returns the store mutations apply to. Snapshot-bound handles
// get their read-only snapshot store, whose mutators fail with
// ErrReadOnlySnapshot; live handles always mutate the live trees, never
// the shared read snapshot.
func (d *Document) writer() *mass.Store {
	if d.snap != nil {
		return d.snap.cs.Store()
	}
	return d.db.engine.Store()
}

// LoadXML shreds and indexes the XML document from r under a unique name.
// Loading is streaming; memory use does not grow with document size.
func (db *DB) LoadXML(name string, r io.Reader) (*Document, error) {
	id, err := db.engine.Load(name, r)
	if err != nil {
		return nil, err
	}
	return &Document{db: db, id: id, name: name}, nil
}

// LoadXMLString is LoadXML from a string.
func (db *DB) LoadXMLString(name, src string) (*Document, error) {
	id, err := db.engine.LoadString(name, src)
	if err != nil {
		return nil, err
	}
	return &Document{db: db, id: id, name: name}, nil
}

// Document returns the handle for a previously loaded document. The
// error for an unknown name satisfies errors.Is(err, ErrNoSuchDocument).
func (db *DB) Document(name string) (*Document, error) {
	id, ok := db.engine.Store().DocID(name)
	if !ok {
		return nil, wrapNoDoc(mass.ErrNoDoc, name)
	}
	return &Document{db: db, id: id, name: name}, nil
}

// Documents lists the loaded document names.
func (db *DB) Documents() []string { return db.engine.Store().Documents() }

// Drop removes a document and all its index entries. Dropping an unknown
// name fails with an error satisfying errors.Is(err, ErrNoSuchDocument);
// dropping a document that open snapshots or in-flight result streams
// could still read fails with one satisfying errors.Is(err,
// ErrDocumentBusy) — close them and retry.
func (db *DB) Drop(name string) error {
	// Release the auto-snapshot first: it pins every document and would
	// otherwise make the drop spuriously busy. It reinstalls on the next
	// transactional commit.
	db.dropShared()
	if err := db.engine.Store().DropDocument(name); err != nil {
		if errors.Is(err, mass.ErrNoDoc) {
			return wrapNoDoc(err, name)
		}
		return err
	}
	return nil
}

// Name returns the document's registered name.
func (d *Document) Name() string { return d.name }

// NodeKind classifies result nodes, following the XPath data model.
type NodeKind uint8

// Node kinds.
const (
	KindDocument  = NodeKind(xmldoc.KindDocument)
	KindElement   = NodeKind(xmldoc.KindElement)
	KindAttribute = NodeKind(xmldoc.KindAttribute)
	KindText      = NodeKind(xmldoc.KindText)
	KindComment   = NodeKind(xmldoc.KindComment)
	KindPI        = NodeKind(xmldoc.KindPI)
	KindNamespace = NodeKind(xmldoc.KindNamespace)
)

// String returns the kind's XPath-ish name.
func (k NodeKind) String() string { return xmldoc.Kind(k).String() }

// Node is one result node. Key is its FLEX structural key: a dotted,
// lexicographically document-ordered identifier ("a.d.y.c") that remains
// stable under sibling insertions.
type Node struct {
	Key   string
	Kind  NodeKind
	Name  string
	Value string
}

// Query is a compiled XPath expression. Compile produces the default plan
// (the paper's "VQP"); CompileOptimized runs the cost-driven optimizer
// ("VQP-OPT"). A query may be executed many times and against any
// document, though an optimized plan's rewrites were chosen using the
// statistics of the document passed to CompileOptimized.
type Query struct {
	q *core.Query
}

// CompileOption adjusts one Prepare call.
type CompileOption func(*compileConfig)

type compileConfig struct {
	doc     *Document
	noOpt   bool
	noCache bool
}

// WithDocument compiles against doc's index statistics: the cost-driven
// optimizer runs and its rewrites are chosen using doc's exact counts.
// Without a document the default (unoptimized) plan is built, since
// there are no statistics to cost rewrites against.
func WithDocument(doc *Document) CompileOption {
	return func(c *compileConfig) { c.doc = doc }
}

// WithoutOptimization skips the cost-driven optimizer even when a
// document was supplied — the paper's baseline "VQP" plan, kept mainly
// for benchmarking the optimizer's effect.
func WithoutOptimization() CompileOption {
	return func(c *compileConfig) { c.noOpt = true }
}

// WithoutCache bypasses the plan cache: the expression is compiled
// fresh and the result is not retained. Use for one-off expressions
// that would otherwise churn the cache.
func WithoutCache() CompileOption {
	return func(c *compileConfig) { c.noCache = true }
}

// Prepare compiles expr for repeated execution with Query.Run. By
// default the compilation goes through the plan cache; add WithDocument
// to optimize against a document's statistics (cached per document and
// invalidated automatically when the document changes). Prepare with
// WithDocument is exactly the compilation half of DB.Query.
func (db *DB) Prepare(expr string, opts ...CompileOption) (*Query, error) {
	var cfg compileConfig
	for _, o := range opts {
		o(&cfg)
	}
	optimized := cfg.doc != nil && !cfg.noOpt
	var (
		q   *core.Query
		err error
	)
	switch {
	case cfg.noCache && optimized:
		q, err = db.engine.CompileOptimized(cfg.doc.id, expr)
	case cfg.noCache:
		q, err = db.engine.Compile(expr)
	default:
		var id mass.DocID
		if cfg.doc != nil {
			id = cfg.doc.id
		}
		q, err = db.engine.CompileCached(id, expr, optimized)
	}
	if err != nil {
		return nil, err
	}
	return &Query{q: q}, nil
}

// Compile parses expr into its default (unoptimized) query plan.
//
// Deprecated: use Prepare with WithoutOptimization and WithoutCache.
func (db *DB) Compile(expr string) (*Query, error) {
	return db.Prepare(expr, WithoutOptimization(), WithoutCache())
}

// CompileOptimized parses expr and optimizes its plan against doc's live
// index statistics. The resulting plan is guaranteed to have estimated
// cost no worse than the default plan's.
//
// Deprecated: use Prepare with WithDocument (add WithoutCache for the
// exact uncached behavior of this method).
func (db *DB) CompileOptimized(doc *Document, expr string) (*Query, error) {
	return db.Prepare(expr, WithDocument(doc), WithoutCache())
}

// Query is the one-shot serving fast path: it compiles expr with the
// cost-driven optimizer against doc's statistics and executes it, going
// through the plan cache. The first call for a given (document,
// expression) pair pays for parsing, optimization and statistics probes;
// repeated calls cost one cache lookup plus execution. Updating the
// document bumps its statistics epoch, which transparently invalidates
// its cached plans — the next Query re-optimizes against fresh counts.
//
// Query is safe for concurrent use from any number of goroutines; cached
// plans are immutable and shared.
//
// Query is QueryContext with context.Background() and the database's
// default budgets; use QueryContext to attach cancellation, a deadline,
// or per-query budgets.
func (db *DB) Query(doc *Document, expr string) (*Results, error) {
	return db.QueryContext(context.Background(), doc, expr)
}

// CompileCached is DB.Query's compilation half without the execution: it
// returns a (possibly cached) compiled query for expr.
//
// Deprecated: use Prepare — with WithDocument for optimized true, with
// WithoutOptimization for optimized false.
func (db *DB) CompileCached(doc *Document, expr string, optimized bool) (*Query, error) {
	opts := []CompileOption{WithDocument(doc)}
	if !optimized {
		opts = append(opts, WithoutOptimization())
	}
	return db.Prepare(expr, opts...)
}

// CacheStats reports the serving fast path's effectiveness: plan-cache
// hits/misses/evictions/invalidations and, one layer down, the
// statistics-probe memo feeding the optimizer.
type CacheStats = core.CacheStats

// CacheStats returns the database's current cache counters.
func (db *DB) CacheStats() CacheStats { return db.engine.CacheStats() }

// StorageMetrics returns the database's storage counters: page reads and
// writes, index node-cache hits/misses/evictions, node splits, cursor
// seeks, counted-range probes, records decoded, and statistics probes
// that reached storage (memo misses).
func (db *DB) StorageMetrics() StorageMetrics { return db.engine.Store().Metrics() }

// SlowQueries returns the recorded slow queries, most recent first.
// Empty unless Options.SlowQueryThreshold was set.
func (db *DB) SlowQueries() []SlowQuery { return db.engine.SlowQueries() }

// RecentTraces returns the flight recorder's contents — the last N
// complete query traces with span trees, most recent first. Empty unless
// Options.FlightRecorderSize was set.
func (db *DB) RecentTraces() []*QueryTrace { return db.engine.Traces() }

// RecordTrace appends an externally assembled trace to the flight
// recorder — the serving daemon uses it to record request-level traces
// (serve-layer spans above a Captured engine trace, see RequestTrace).
// No-op unless Options.FlightRecorderSize was set.
func (db *DB) RecordTrace(t *QueryTrace) { db.engine.RecordTrace(t) }

// WriteMetrics writes the full metric exposition in Prometheus text
// format: the process-global execution and serving metrics followed by
// this database's storage and cache counters.
func (db *DB) WriteMetrics(w io.Writer) error { return db.engine.WriteMetrics(w) }

// CostProfile is a snapshot of the cost-model observatory: q-error
// accuracy profiles per operator class, worst offenders, and
// calibration state.
type CostProfile = core.CostProfile

// CostClassProfile summarizes one operator class (axis × rewrite-rule
// provenance) in a CostProfile.
type CostClassProfile = core.CostClassProfile

// CostOffender is the worst-misestimated observation kept per class.
type CostOffender = core.CostOffender

// CostProfile returns the observatory's current snapshot. The second
// return is false when Options.DisableCostObservatory was set.
func (db *DB) CostProfile() (CostProfile, bool) { return db.engine.CostProfile() }

// MetricsHandler returns an HTTP handler serving WriteMetrics — mount it
// on a mux (or pass to http.ListenAndServe) to expose the database's
// metrics endpoint.
func (db *DB) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = db.WriteMetrics(w)
	})
}

// Expr returns the query's source expression.
func (q *Query) Expr() string { return q.q.Expr() }

// Optimized reports whether the cost-driven optimizer ran on this query.
func (q *Query) Optimized() bool { return q.q.Optimized() }

// Explain renders the cost-annotated physical plan, the ordered operator
// list L(P), and (for optimized queries) the rewrite decisions taken.
func (q *Query) Explain(doc *Document) (string, error) {
	return q.q.Explain(doc.id)
}

// ExplainAnalyze estimates, executes, and renders the plan with estimated
// bounds next to the actual per-operator tuple counts observed during
// execution.
func (q *Query) ExplainAnalyze(doc *Document) (string, error) {
	return q.q.ExplainAnalyze(doc.id)
}

// Run executes the query against doc. By default results stream from
// the document root in pipeline order; options adjust the run: Ordered
// delivers in document order, From sets the initial context node and
// variable bindings, and the governance options (WithTimeout,
// WithMaxResults, …) layer budgets over the database defaults.
//
// A snapshot-bound doc (from Snapshot.Document) runs against that
// snapshot's pinned version; a live handle runs against the live store.
func (q *Query) Run(ctx context.Context, doc *Document, opts ...QueryOption) (*Results, error) {
	cfg := doc.db.config(opts)
	var st *mass.Store
	if doc.snap != nil {
		if doc.snap.closed.Load() {
			return nil, ErrSnapshotClosed
		}
		st = doc.snap.cs.Store()
	}
	it, err := q.q.RunContext(ctx, st, doc.id, flexKey(cfg.start), flexVars(cfg.vars), cfg.ordered, cfg.limits)
	if err != nil {
		return nil, err
	}
	return &Results{doc: doc, it: it}, nil
}

// Execute runs the query against doc with the document root as the
// initial context node.
//
// Deprecated: use Run.
func (q *Query) Execute(doc *Document) (*Results, error) {
	return q.Run(context.Background(), doc)
}

// ExecuteOrdered runs the query and delivers results in document order.
//
// Deprecated: use Run with Ordered.
func (q *Query) ExecuteOrdered(doc *Document) (*Results, error) {
	return q.Run(context.Background(), doc, Ordered())
}

// ExecuteFrom runs the query with an explicit initial context node.
//
// Deprecated: use Run with From.
func (q *Query) ExecuteFrom(doc *Document, startKey string, vars map[string][]string) (*Results, error) {
	return q.Run(context.Background(), doc, From(startKey, vars))
}

func flexKey(k string) flex.Key { return flex.Key(k) }

func flexVars(vars map[string][]string) map[string][]flex.Key {
	if vars == nil {
		return nil
	}
	v := make(map[string][]flex.Key, len(vars))
	for name, keys := range vars {
		ks := make([]flex.Key, len(keys))
		for i, k := range keys {
			ks[i] = flex.Key(k)
		}
		v[name] = ks
	}
	return v
}

// Results streams a query's result node set.
//
// A fully drained Results releases its execution resources automatically;
// call Close when abandoning one early (it is idempotent, and All /
// AllKeys / Keys do it for you). After the stream ends, Err reports how:
// nil for normal exhaustion, or the typed governance error (ErrCanceled,
// ErrDeadlineExceeded, *BudgetError) that stopped the run.
type Results struct {
	doc    *Document
	it     *exec.Iterator
	closed bool
}

// Next advances to the next result and reports whether one exists. When
// the stream ends — exhausted, failed, or governed away — the underlying
// execution resources are released automatically.
func (r *Results) Next() bool {
	if r.closed {
		return false
	}
	if r.it.Next() {
		return true
	}
	r.Close()
	return false
}

// Close releases the query's pooled execution state. It is idempotent and
// safe on an already-drained Results; Err remains readable after Close.
// Only early abandonment strictly needs it — exhausting the stream (or
// using All, AllKeys or Keys) closes implicitly.
func (r *Results) Close() error {
	if !r.closed {
		r.closed = true
		r.it.Close()
	}
	return nil
}

// Key returns the current result's FLEX key without touching storage.
func (r *Results) Key() string { return string(r.it.Key()) }

// Node materializes the current result node from storage.
func (r *Results) Node() (Node, error) {
	n, err := r.it.Node()
	if err != nil {
		return Node{}, err
	}
	return Node{Key: string(n.Key), Kind: NodeKind(n.Kind), Name: n.Name, Value: n.Value}, nil
}

// StringValue computes the XPath string-value of the current result (for
// elements, the concatenated descendant text).
func (r *Results) StringValue() (string, error) {
	return r.doc.StringValue(r.Key())
}

// Err reports the first error encountered while streaming.
func (r *Results) Err() error { return r.it.Err() }

// All returns an iterator over the materialized result nodes, for use
// with range-over-func:
//
//	for n, err := range res.All() {
//		if err != nil { ... ; break }
//		use(n)
//	}
//
// A non-nil err is the stream's terminal error (governance trip or
// storage failure) and is always the last pair yielded. Breaking out
// early is safe: the results are closed when the loop exits either way.
func (r *Results) All() iter.Seq2[Node, error] {
	return func(yield func(Node, error) bool) {
		defer r.Close()
		for r.Next() {
			n, err := r.Node()
			if !yield(n, err) || err != nil {
				return
			}
		}
		if err := r.Err(); err != nil {
			yield(Node{}, err)
		}
	}
}

// AllKeys returns an iterator over the result FLEX keys without touching
// storage. Check Err after the loop: a governed-away stream simply stops
// yielding. Results are closed when the loop exits.
func (r *Results) AllKeys() iter.Seq[string] {
	return func(yield func(string) bool) {
		defer r.Close()
		for r.Next() {
			if !yield(r.Key()) {
				return
			}
		}
	}
}

// Keys drains the results into a slice of FLEX keys and closes them.
func (r *Results) Keys() ([]string, error) {
	var out []string
	for r.Next() {
		out = append(out, r.Key())
	}
	return out, r.Err()
}

// Stats exposes a document's exact index statistics — the same probes the
// cost model uses (counts are O(log n), no data pages touched).
type Stats struct {
	Nodes    uint64
	Elements uint64
	Texts    uint64
}

// Stats returns node-count statistics for the document.
func (d *Document) Stats() (Stats, error) {
	s, release := d.readStore()
	defer release()
	var st Stats
	var err error
	if st.Nodes, err = s.CountNodes(d.id); err != nil {
		return st, err
	}
	if st.Elements, err = s.CountElements(d.id, ""); err != nil {
		return st, err
	}
	st.Texts, err = s.CountTexts(d.id, "")
	return st, err
}

// CountName returns the number of elements with the given name — COUNT in
// the paper's cost model.
func (d *Document) CountName(name string) (uint64, error) {
	s, release := d.readStore()
	defer release()
	return s.CountName(d.id, name)
}

// TextCount returns the number of text nodes whose value equals v — TC in
// the paper's cost model.
func (d *Document) TextCount(v string) (uint64, error) {
	s, release := d.readStore()
	defer release()
	return s.TextCount(d.id, v, "")
}

// StringValue computes the XPath string-value of the node with the given
// FLEX key.
func (d *Document) StringValue(key string) (string, error) {
	s, release := d.readStore()
	defer release()
	return s.StringValue(d.id, flex.Key(key))
}

// InsertElement inserts a new element named name as a content child of
// the node at parentKey, at position pos among existing content children
// (negative or past-the-end appends). Indexes and statistics update
// immediately: the next CountName probe already reflects the insert —
// VAMANA's cost model never goes stale under updates.
//
// Snapshot-bound handles fail with ErrReadOnlySnapshot.
//
// Deprecated: use DB.Update, which batches mutations into one atomic,
// group-committed version. This per-operation form commits and
// journals each call individually.
func (d *Document) InsertElement(parentKey string, pos int, name string) (string, error) {
	k, err := d.writer().InsertElement(d.id, flex.Key(parentKey), pos, name)
	return string(k), err
}

// InsertText inserts a new text node under parentKey (see InsertElement).
//
// Deprecated: use DB.Update (see Document.InsertElement).
func (d *Document) InsertText(parentKey string, pos int, value string) (string, error) {
	k, err := d.writer().InsertText(d.id, flex.Key(parentKey), pos, value)
	return string(k), err
}

// InsertAttribute adds an attribute to the element at ownerKey.
//
// Deprecated: use DB.Update (see Document.InsertElement).
func (d *Document) InsertAttribute(ownerKey, name, value string) (string, error) {
	k, err := d.writer().InsertAttribute(d.id, flex.Key(ownerKey), name, value)
	return string(k), err
}

// UpdateText replaces the value of a text or attribute node, keeping the
// value index (TC statistics) exact.
//
// Deprecated: use DB.Update (see Document.InsertElement).
func (d *Document) UpdateText(key, newValue string) error {
	return d.writer().UpdateText(d.id, flex.Key(key), newValue)
}

// RenameElement changes an element's name, maintaining the name index.
//
// Deprecated: use DB.Update (see Document.InsertElement).
func (d *Document) RenameElement(key, newName string) error {
	return d.writer().RenameElement(d.id, flex.Key(key), newName)
}

// DeleteSubtree removes the node at key and its entire subtree.
//
// Deprecated: use DB.Update (see Document.InsertElement).
func (d *Document) DeleteSubtree(key string) error {
	return d.writer().DeleteSubtree(d.id, flex.Key(key))
}

// WriteXML serializes the node at key (and its subtree) as XML to w.
// Passing the root key of a query result exports matched fragments;
// passing "a" (the document node) exports the whole document.
func (d *Document) WriteXML(key string, w io.Writer) error {
	s, release := d.readStore()
	defer release()
	return s.SerializeSubtree(d.id, flex.Key(key), w)
}

// NumericRangeCount returns the number of text nodes whose numeric value
// lies in [lo, hi] (use math.Inf for open ends) — an O(log n) probe of
// the numeric value index backing range predicates.
func (d *Document) NumericRangeCount(lo, hi float64) (uint64, error) {
	s, release := d.readStore()
	defer release()
	return s.NumericRangeCount(d.id, lo, true, hi, true)
}

// Node fetches the node with the given FLEX key.
func (d *Document) Node(key string) (Node, bool, error) {
	s, release := d.readStore()
	defer release()
	n, ok, err := s.Node(d.id, flex.Key(key))
	if err != nil || !ok {
		return Node{}, ok, err
	}
	return Node{Key: string(n.Key), Kind: NodeKind(n.Kind), Name: n.Name, Value: n.Value}, true, nil
}
