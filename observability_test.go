package vamana

import (
	"bytes"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vamana/internal/obs"
	"vamana/internal/xmark"
)

// drainCount runs expr through the serving path and returns its result
// cardinality.
func drainCount(t *testing.T, db *DB, doc *Document, expr string) int {
	t.Helper()
	res, err := db.Query(doc, expr)
	if err != nil {
		t.Fatalf("Query(%s): %v", expr, err)
	}
	n := 0
	for res.Next() {
		n++
	}
	if err := res.Err(); err != nil {
		t.Fatalf("Query(%s) drain: %v", expr, err)
	}
	return n
}

// TestMetricCounterMonotonicity runs queries and asserts that no global
// counter ever decreases, and that the counters a query run must touch
// strictly increase.
func TestMetricCounterMonotonicity(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.003)

	before := obs.Snapshot()
	if drainCount(t, db, doc, "//person/address") == 0 {
		t.Fatal("no results")
	}
	// Second run of the same expression exercises the cache-hit path.
	drainCount(t, db, doc, "//person/address")
	after := obs.Snapshot()

	for name, v := range before {
		// Quantile series are gauges — they move both ways as the
		// latency distribution shifts.
		if strings.HasSuffix(name, "_p50") || strings.HasSuffix(name, "_p95") || strings.HasSuffix(name, "_p99") {
			continue
		}
		if after[name] < v {
			t.Errorf("counter %s decreased: %d -> %d", name, v, after[name])
		}
	}
	mustGrow := []string{
		"vamana_exec_runs_total",
		"vamana_exec_results_total",
		"vamana_exec_axis_scans_total",
		"vamana_queries_compiled_total",
		"vamana_queries_served_cached_total",
		"vamana_query_latency_ns_count",
	}
	for _, name := range mustGrow {
		if after[name] <= before[name] {
			t.Errorf("counter %s did not increase: %d -> %d", name, before[name], after[name])
		}
	}
}

// workloadExprs are the paper's five workload queries Q1-Q5.
var workloadExprs = []string{
	"//person/address",
	"//watches/watch/ancestor::person",
	"/descendant::name/parent::*/self::person/address",
	"//itemref/following-sibling::price/parent::*",
	"//province[text()='Vermont']/ancestor::person",
}

// TestExplainAnalyzeActualsMatchQuery asserts that the actual
// cardinalities ExplainAnalyze reports agree with the result counts the
// serving path returns for the paper's workload queries Q1-Q5.
func TestExplainAnalyzeActualsMatchQuery(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.01)

	exprs := workloadExprs
	resultsRe := regexp.MustCompile(`(?m)^results: (\d+)$`)
	for i, expr := range exprs {
		want := drainCount(t, db, doc, expr)
		q, err := db.CompileOptimized(doc, expr)
		if err != nil {
			t.Fatalf("Q%d compile: %v", i+1, err)
		}
		out, err := q.ExplainAnalyze(doc)
		if err != nil {
			t.Fatalf("Q%d ExplainAnalyze: %v", i+1, err)
		}
		m := resultsRe.FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("Q%d: no results line in:\n%s", i+1, out)
		}
		got, _ := strconv.Atoi(m[1])
		if got != want {
			t.Errorf("Q%d: ExplainAnalyze results %d, Query returned %d\n%s", i+1, got, want, out)
		}
		if !strings.Contains(out, "est IN=") || !strings.Contains(out, "| act ") {
			t.Errorf("Q%d: missing est/act columns:\n%s", i+1, out)
		}
		if !strings.Contains(out, fmt.Sprintf("| act OUT=%d", want)) {
			t.Errorf("Q%d: root actual OUT=%d not reported:\n%s", i+1, want, out)
		}
	}
}

// TestPlanCacheEvictionConcurrent mixes compile and serve traffic over
// far more distinct expressions than a tiny cache can hold, concurrently,
// and checks that eviction counters move and results stay correct.
func TestPlanCacheEvictionConcurrent(t *testing.T) {
	db, err := Open(Options{PlanCacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc := loadAuction(t, db, 0.003)

	const canonical = "//person/address"
	want := drainCount(t, db, doc, canonical)
	if want == 0 {
		t.Fatal("no results for canonical expression")
	}

	exprs := make([]string, 0, 40)
	for i := 0; i < 39; i++ {
		exprs = append(exprs, fmt.Sprintf("//person/x%d", i))
	}
	exprs = append(exprs, canonical)

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < len(exprs); i++ {
				expr := exprs[(g*7+i)%len(exprs)]
				if i%2 == 0 {
					res, err := db.Query(doc, expr)
					if err != nil {
						errs <- err
						return
					}
					n := 0
					for res.Next() {
						n++
					}
					if err := res.Err(); err != nil {
						errs <- err
						return
					}
					if expr == canonical && n != want {
						errs <- fmt.Errorf("%s under load: got %d results, want %d", expr, n, want)
						return
					}
				} else if _, err := db.CompileCached(doc, expr, g%2 == 0); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The storm thrashed the 8-entry cache; back-to-back repeats of one
	// expression must now hit.
	drainCount(t, db, doc, canonical)
	if got := drainCount(t, db, doc, canonical); got != want {
		t.Errorf("%s after load: got %d results, want %d", canonical, got, want)
	}

	cs := db.CacheStats()
	if cs.Evictions == 0 {
		t.Errorf("no evictions recorded under overload: %+v", cs)
	}
	if cs.Hits == 0 || cs.Misses == 0 {
		t.Errorf("expected both hits and misses: %+v", cs)
	}
}

// TestSlowQueryLog drives the threshold to 1ns so every query is slow,
// then checks both the in-memory ring and the configured writer.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	db, err := Open(Options{SlowQueryThreshold: time.Nanosecond, SlowQueryLog: &buf})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc := loadAuction(t, db, 0.003)

	const expr = "//person/address"
	drainCount(t, db, doc, expr)
	drainCount(t, db, doc, expr)

	slow := db.SlowQueries()
	if len(slow) < 2 {
		t.Fatalf("SlowQueries returned %d entries, want >= 2", len(slow))
	}
	if slow[0].Expr != expr {
		t.Errorf("newest slow query is %q, want %q", slow[0].Expr, expr)
	}
	if slow[0].Total <= 0 {
		t.Errorf("slow query has non-positive duration: %+v", slow[0])
	}
	// The second run was served from the plan cache.
	if !slow[0].CacheHit {
		t.Errorf("newest slow entry should be a cache hit: %+v", slow[0])
	}
	if got := strings.Count(buf.String(), "slow query:"); got < 2 {
		t.Errorf("writer got %d slow-query lines, want >= 2:\n%s", got, buf.String())
	}
}

// TestTraceSampling samples 1 in 2 queries and expects exactly half of
// the runs to reach the sink.
func TestTraceSampling(t *testing.T) {
	var mu sync.Mutex
	var traces []*TraceContext
	db, err := Open(Options{
		TraceEvery: 2,
		TraceSink: func(tc *TraceContext) {
			mu.Lock()
			traces = append(traces, tc)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc := loadAuction(t, db, 0.003)

	const runs = 10
	for i := 0; i < runs; i++ {
		drainCount(t, db, doc, "//person/address")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(traces) != runs/2 {
		t.Fatalf("sampled %d traces out of %d runs, want %d", len(traces), runs, runs/2)
	}
	for _, tc := range traces {
		if tc.Expr != "//person/address" || tc.Total <= 0 || tc.Results == 0 {
			t.Errorf("bad trace: %+v", tc)
		}
	}
}

// TestMetricsOverheadGate asserts that metric collection costs the warm
// serving path at most 5%. It interleaves measurement rounds with
// collection toggled via obs.SetEnabled inside one process, taking the
// best round per mode, so cross-process variance (fixture layout, CPU
// frequency drift) cancels out. Skipped unless VAMANA_METRICS_GATE is
// set — scripts/check.sh runs it.
func TestMetricsOverheadGate(t *testing.T) {
	if os.Getenv("VAMANA_METRICS_GATE") == "" {
		t.Skip("set VAMANA_METRICS_GATE=1 to run the serving metrics-overhead gate")
	}
	// Same document size as BenchmarkServing: small enough that per-query
	// work is a few microseconds — the regime where fixed per-query
	// instrumentation cost is most visible.
	db := openDB(t)
	doc := loadAuction(t, db, xmark.FactorForBytes(32<<10))
	for _, expr := range workloadExprs {
		drainCount(t, db, doc, expr)
	}

	serveLoop := func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				expr := workloadExprs[i%len(workloadExprs)]
				i++
				res, err := db.Query(doc, expr)
				if err != nil {
					b.Fatal(err)
				}
				for res.Next() {
				}
				if err := res.Err(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	defer obs.SetEnabled(true)
	measure := func(on bool) float64 {
		obs.SetEnabled(on)
		return float64(testing.Benchmark(serveLoop).NsPerOp())
	}

	measure(true) // warm-up round, discarded
	// Paired rounds: each round measures both modes back to back (order
	// alternating), and the gate checks the median of the per-round
	// ratios. Pairing cancels the slow machine-level drift (CPU frequency,
	// co-tenant load) that dominates absolute ns/op on shared hardware.
	// Several attempts (matching the trace/calibration gates) so a single
	// noisy campaign cannot fail the gate — only a persistent regression.
	const (
		rounds   = 7
		attempts = 3
	)
	var median float64
	for attempt := 1; attempt <= attempts; attempt++ {
		ratios := make([]float64, 0, rounds)
		offBest, onBest := math.MaxFloat64, math.MaxFloat64
		for i := 0; i < rounds; i++ {
			var off, on float64
			if i%2 == 0 {
				off, on = measure(false), measure(true)
			} else {
				on, off = measure(true), measure(false)
			}
			ratios = append(ratios, on/off)
			offBest, onBest = min(offBest, off), min(onBest, on)
		}
		sort.Float64s(ratios)
		median = ratios[rounds/2]
		t.Logf("attempt %d: warm serving ns/op: best off %.0f, best on %.0f; per-round ratios %v, median %.3f",
			attempt, offBest, onBest, ratios, median)
		if median <= 1.05 {
			return
		}
	}
	t.Errorf("metrics overhead %.1f%% exceeds the 5%% budget on all %d attempts", 100*(median-1), attempts)
}

// TestMetricsExposition checks the Prometheus-text endpoint and the
// per-store counters behind it.
func TestMetricsExposition(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.003)
	drainCount(t, db, doc, "//person/address")

	var buf bytes.Buffer
	if err := db.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE vamana_exec_runs_total counter",
		"vamana_query_latency_ns_bucket",
		"vamana_pager_page_reads_total",
		"vamana_btree_cache_hits_total",
		"vamana_mass_records_decoded_total",
		"vamana_plan_cache_misses_total",
		"vamana_stats_memo_hits_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteMetrics output missing %q", want)
		}
	}

	sm := db.StorageMetrics()
	if sm.RecordsDecoded == 0 {
		t.Error("StorageMetrics.RecordsDecoded is zero after a query")
	}
	if sm.Index.Seeks == 0 {
		t.Error("StorageMetrics.Index.Seeks is zero after a query")
	}

	rec := httptest.NewRecorder()
	db.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics handler status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "vamana_exec_runs_total") {
		t.Error("metrics handler body missing global counters")
	}
}
