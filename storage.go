package vamana

// Durability and corruption surface. File-backed stores protect every
// 8 KiB page with a CRC32C checksum and commit each flush atomically
// through a double-write journal guarded by double-buffered metadata
// pages, so a crash at any point — including mid-write — leaves the
// store recoverable to a consistent state. Damage that recovery cannot
// route around surfaces as one of the typed errors below rather than as
// silently wrong query results.

import (
	"vamana/internal/pager"
)

// Backend is the raw random-access storage surface under the page layer:
// positioned reads and writes, durability barriers (Sync), and sizing.
// See Options.Backend.
type Backend = pager.Backend

// NewFileBackend opens (or creates) path as a storage Backend — the same
// backend Open uses for Options.Path. It exists for callers that wrap or
// interpose on file storage before handing it to Options.Backend.
func NewFileBackend(path string) (Backend, error) {
	return pager.NewFileBackend(path)
}

var (
	// ErrChecksum reports that a page read from storage failed its CRC32C
	// verification — bit rot, a torn write, or a truncated file. The
	// wrapped error identifies the damaged page. Queries that touch a
	// damaged page fail with an error satisfying
	// errors.Is(err, ErrChecksum); undamaged pages remain readable.
	ErrChecksum = pager.ErrChecksum
	// ErrTornMeta reports that Open found no valid metadata copy: the
	// file is not a VAMANA store, or both double-buffered metadata pages
	// (or a committed journal they reference) are damaged beyond the
	// recovery protocol's reach.
	ErrTornMeta = pager.ErrTornMeta
)

// PageID identifies one 8 KiB page of a store's backing file, as reported
// by VerifyPages.
type PageID = pager.PageID

// VerifyPages flushes any buffered state and then checksums every durable
// page of the store, returning the number of pages checked and the ids of
// pages that failed verification. A clean store returns an empty corrupt
// list. In-memory databases have nothing durable to verify and report
// zero pages checked.
//
// This is an offline-style integrity sweep (it reads the whole file);
// normal reads verify lazily, page by page, as queries touch them.
func (db *DB) VerifyPages() (checked int, corrupt []PageID, err error) {
	return db.engine.VerifyPages()
}

// VerifyFile checksums every durable page of the store at path without
// opening it as a database: only the page-layer metadata must be intact
// (damage there is reported as ErrTornMeta), so a store whose catalog or
// index pages are corrupt — and which therefore cannot Open — can still
// be swept. This is what `vamana verify` runs. An interrupted commit is
// completed first, exactly as Open would.
func VerifyFile(path string) (checked int, corrupt []PageID, err error) {
	p, err := pager.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer p.Close()
	return p.Verify()
}
