package btree

import (
	"bytes"

	"vamana/internal/govern"
	"vamana/internal/pager"
)

// Cursor iterates leaf entries in key order. A cursor is positioned either
// on an entry or past either end. Cursors observe a snapshot of the leaf
// objects they traverse; mutating the tree invalidates outstanding cursors.
type Cursor struct {
	t     *Tree
	leaf  *node
	idx   int
	valid bool
	err   error
	lim   *govern.Limiter
}

// SetLimiter attaches a query-governance limiter: every node-cache miss
// the cursor causes is charged against its page budget, which also
// carries sticky cancellation errors into seeks. A nil limiter (the
// default) means ungoverned. Seeks do not poll cancellation themselves —
// every seek site sits inside a scan loop that already ticks the same
// limiter per iteration, and a second heap RMW per seek measurably
// taxed bind-heavy plans.
func (c *Cursor) SetLimiter(l *govern.Limiter) { c.lim = l }

// load reads a node on behalf of this cursor, charging the governance
// limiter for any page I/O it causes.
func (c *Cursor) load(id pager.PageID) (*node, error) { return c.t.loadFor(id, c.lim) }

// Seek positions the cursor on the first entry with key >= target and
// reports whether such an entry exists.
func (c *Cursor) Seek(target []byte) bool {
	c.t.m.Seeks++
	c.valid, c.err = false, nil
	n, err := c.load(c.t.root)
	if err != nil {
		c.err = err
		return false
	}
	for !n.leaf {
		if n, err = c.load(n.children[childIndex(n, target)]); err != nil {
			c.err = err
			return false
		}
	}
	i, _ := leafIndex(n, target)
	c.leaf, c.idx = n, i
	return c.skipForward()
}

// SeekFirst positions the cursor on the smallest entry.
func (c *Cursor) SeekFirst() bool {
	c.t.m.Seeks++
	c.valid, c.err = false, nil
	n, err := c.load(c.t.root)
	if err != nil {
		c.err = err
		return false
	}
	for !n.leaf {
		if n, err = c.load(n.children[0]); err != nil {
			c.err = err
			return false
		}
	}
	c.leaf, c.idx = n, 0
	return c.skipForward()
}

// SeekLast positions the cursor on the largest entry.
func (c *Cursor) SeekLast() bool {
	c.t.m.Seeks++
	c.valid, c.err = false, nil
	n, err := c.load(c.t.root)
	if err != nil {
		c.err = err
		return false
	}
	for !n.leaf {
		if n, err = c.load(n.children[len(n.children)-1]); err != nil {
			c.err = err
			return false
		}
	}
	c.leaf, c.idx = n, len(n.keys)-1
	return c.skipBackward()
}

// SeekBefore positions the cursor on the last entry with key < target.
func (c *Cursor) SeekBefore(target []byte) bool {
	if !c.Seek(target) {
		if c.err != nil {
			return false
		}
		// Everything is < target (or tree empty): last entry, if any.
		return c.SeekLast()
	}
	return c.Prev()
}

// Next advances to the following entry and reports whether one exists.
func (c *Cursor) Next() bool {
	if !c.valid {
		return false
	}
	c.idx++
	return c.skipForward()
}

// Prev steps to the preceding entry and reports whether one exists.
func (c *Cursor) Prev() bool {
	if !c.valid {
		return false
	}
	c.idx--
	return c.skipBackward()
}

// skipForward normalizes a position that may be past a leaf's end (or on an
// empty leaf) by walking the sibling links forward.
func (c *Cursor) skipForward() bool {
	for c.idx >= len(c.leaf.keys) {
		if c.leaf.next == pager.InvalidPage {
			c.valid = false
			return false
		}
		n, err := c.load(c.leaf.next)
		if err != nil {
			c.err, c.valid = err, false
			return false
		}
		c.leaf, c.idx = n, 0
	}
	c.valid = true
	return true
}

func (c *Cursor) skipBackward() bool {
	for c.idx < 0 {
		if c.leaf.prev == pager.InvalidPage {
			c.valid = false
			return false
		}
		n, err := c.load(c.leaf.prev)
		if err != nil {
			c.err, c.valid = err, false
			return false
		}
		c.leaf, c.idx = n, len(n.keys)-1
	}
	c.valid = true
	return true
}

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.valid }

// Err returns the first error the cursor encountered — I/O from the pager
// or a governance trip from the attached limiter.
func (c *Cursor) Err() error { return c.err }

// Key returns the current entry's key. The slice is owned by the tree; do
// not modify it.
func (c *Cursor) Key() []byte {
	if !c.valid {
		return nil
	}
	return c.leaf.keys[c.idx]
}

// Value returns the current entry's value (materializing overflow chains).
func (c *Cursor) Value() ([]byte, error) {
	if !c.valid {
		return nil, nil
	}
	return c.t.readValue(c.leaf.vals[c.idx])
}

// ValueView returns the current entry's value without copying when it is
// stored inline (overflow chains are still materialized). The slice is
// owned by the tree and valid only until the cursor moves or the tree is
// mutated; callers must not retain or modify it.
func (c *Cursor) ValueView() ([]byte, error) {
	if !c.valid {
		return nil, nil
	}
	lv := c.leaf.vals[c.idx]
	if lv.isOverflow() {
		return c.t.readValue(lv)
	}
	return lv.inline, nil
}

// ScanBatch bulk-advances the cursor: starting at the current entry it
// visits consecutive entries in key order while key < hi (nil hi means
// unbounded), calling visit for each, until visit returns false or the
// range is exhausted. Entries within one leaf are visited in a tight
// loop; page access (and governance page charging, via the cursor's
// limiter) happens only when crossing to the next leaf — this is the
// bulk-advance API batched execution pulls through, replacing one
// Next/Key/ValueView re-entry per entry. v is nil unless needValue
// (inline values are passed as tree-owned views; overflow chains are
// materialized). Key and value slices are valid only for the duration of
// the visit call.
//
// After every visit the cursor has logically advanced past that entry: a
// subsequent ScanBatch continues with the following entry. Do not mix
// ScanBatch with the entry-at-a-time methods (Next/Key/ValueView) on one
// scan — their positioning protocols differ (they rest ON the last
// entry; ScanBatch rests after it). The return value reports whether
// entries may remain: false once the range is exhausted or the cursor
// failed (check Err).
func (c *Cursor) ScanBatch(hi []byte, needValue bool, visit func(k, v []byte) bool) bool {
	if !c.valid {
		return false
	}
	for {
		leaf := c.leaf
		keys := leaf.keys
		// One range check per leaf: when the leaf's last key is already
		// below hi, every entry in it is in range and the per-entry
		// compare is skipped for the whole leaf.
		wholeLeaf := hi == nil || (len(keys) > 0 && bytes.Compare(keys[len(keys)-1], hi) < 0)
		for c.idx < len(keys) {
			k := keys[c.idx]
			if !wholeLeaf && bytes.Compare(k, hi) >= 0 {
				return false
			}
			var v []byte
			if needValue {
				lv := leaf.vals[c.idx]
				if lv.isOverflow() {
					var err error
					if v, err = c.t.readValue(lv); err != nil {
						c.err, c.valid = err, false
						return false
					}
				} else {
					v = lv.inline
				}
			}
			c.idx++
			if !visit(k, v) {
				return true
			}
		}
		if leaf.next == pager.InvalidPage {
			c.valid = false
			return false
		}
		n, err := c.load(leaf.next)
		if err != nil {
			c.err, c.valid = err, false
			return false
		}
		c.leaf, c.idx = n, 0
	}
}

// InRange reports whether the cursor is valid and its key is < hi (hi nil
// means unbounded). A convenience for half-open range scans.
func (c *Cursor) InRange(hi []byte) bool {
	return c.valid && (hi == nil || bytes.Compare(c.leaf.keys[c.idx], hi) < 0)
}

// NewCursor returns an unpositioned cursor; call one of the Seek methods.
func (t *Tree) NewCursor() *Cursor { return &Cursor{t: t} }

// Reset re-targets c at tree t, clearing any position, error and limiter,
// so one cursor allocation can be reused across many scans. Callers that
// govern the new scan must SetLimiter again after Reset — clearing here
// keeps a pooled cursor from charging a previous query's budget.
func (c *Cursor) Reset(t *Tree) { *c = Cursor{t: t} }
