package btree

import (
	"encoding/binary"
	"fmt"

	"vamana/internal/pager"
)

// Page type tags.
const (
	pageLeaf   = byte('L')
	pageBranch = byte('B')
)

// Serialized header sizes.
const (
	leafHeaderSize   = 1 + 2 + 4 + 4 // type, nkeys, next, prev
	branchHeaderSize = 1 + 2         // type, nchildren
	childRefSize     = 4 + 8         // page id, subtree count
)

// maxInlineValue is the largest value stored inline in a leaf entry. Longer
// values are spilled to a chain of overflow pages so that any entry fits in
// a page with room to spare.
const maxInlineValue = 2048

// maxKeySize bounds key length so that a branch page can always hold at
// least four separators.
const maxKeySize = 1024

// node is the in-memory form of a B+-tree page. Leaves hold sorted
// key/value entries plus sibling links; branches hold child references with
// subtree entry counts and the separator keys between them
// (keys[i] is the minimum key of the subtree under children[i+1]).
type node struct {
	id    pager.PageID
	leaf  bool
	dirty bool

	// leaf fields
	keys [][]byte
	vals []leafValue
	next pager.PageID
	prev pager.PageID

	// branch fields; len(keys) == len(children)-1 when branch
	children []pager.PageID
	counts   []uint64

	bytes int // current serialized size estimate
}

// leafValue is either an inline value or a reference to an overflow chain.
type leafValue struct {
	inline   []byte
	overflow pager.PageID // InvalidPage when inline
	totalLen int          // length of the full value when overflow
}

func (v leafValue) isOverflow() bool { return v.overflow != pager.InvalidPage }

func leafEntrySize(k []byte, v leafValue) int {
	n := uvarintLen(uint64(len(k))) + len(k)
	if v.isOverflow() {
		return n + uvarintLen(uint64(v.totalLen)<<1|1) + 4
	}
	return n + uvarintLen(uint64(len(v.inline))<<1) + len(v.inline)
}

func branchEntrySize(sep []byte) int {
	return uvarintLen(uint64(len(sep))) + len(sep) + childRefSize
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// subtreeCount returns the number of entries under n.
func (n *node) subtreeCount() uint64 {
	if n.leaf {
		return uint64(len(n.keys))
	}
	var s uint64
	for _, c := range n.counts {
		s += c
	}
	return s
}

// serialize renders n into buf, which must be pager.PageSize long.
func (n *node) serialize(buf []byte) error {
	for i := range buf {
		buf[i] = 0
	}
	if n.leaf {
		if len(n.keys) > 0xFFFF {
			return fmt.Errorf("btree: leaf %d has %d keys", n.id, len(n.keys))
		}
		buf[0] = pageLeaf
		binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
		binary.LittleEndian.PutUint32(buf[3:7], uint32(n.next))
		binary.LittleEndian.PutUint32(buf[7:11], uint32(n.prev))
		off := leafHeaderSize
		for i, k := range n.keys {
			off += binary.PutUvarint(buf[off:], uint64(len(k)))
			off += copy(buf[off:], k)
			v := n.vals[i]
			if v.isOverflow() {
				off += binary.PutUvarint(buf[off:], uint64(v.totalLen)<<1|1)
				binary.LittleEndian.PutUint32(buf[off:off+4], uint32(v.overflow))
				off += 4
			} else {
				off += binary.PutUvarint(buf[off:], uint64(len(v.inline))<<1)
				off += copy(buf[off:], v.inline)
			}
		}
		if off > pager.PageSize {
			return fmt.Errorf("btree: leaf %d overflows page (%d bytes)", n.id, off)
		}
		return nil
	}
	if len(n.children) > 0xFFFF {
		return fmt.Errorf("btree: branch %d has %d children", n.id, len(n.children))
	}
	buf[0] = pageBranch
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.children)))
	off := branchHeaderSize
	for i, c := range n.children {
		if i > 0 {
			sep := n.keys[i-1]
			off += binary.PutUvarint(buf[off:], uint64(len(sep)))
			off += copy(buf[off:], sep)
		}
		binary.LittleEndian.PutUint32(buf[off:off+4], uint32(c))
		binary.LittleEndian.PutUint64(buf[off+4:off+12], n.counts[i])
		off += childRefSize
	}
	if off > pager.PageSize {
		return fmt.Errorf("btree: branch %d overflows page (%d bytes)", n.id, off)
	}
	return nil
}

// deserialize parses buf into n (which must have id set).
func (n *node) deserialize(buf []byte) error {
	switch buf[0] {
	case pageLeaf:
		n.leaf = true
		nk := int(binary.LittleEndian.Uint16(buf[1:3]))
		n.next = pager.PageID(binary.LittleEndian.Uint32(buf[3:7]))
		n.prev = pager.PageID(binary.LittleEndian.Uint32(buf[7:11]))
		n.keys = make([][]byte, 0, nk)
		n.vals = make([]leafValue, 0, nk)
		off := leafHeaderSize
		n.bytes = leafHeaderSize
		for i := 0; i < nk; i++ {
			klen, w := binary.Uvarint(buf[off:])
			if w <= 0 || off+w+int(klen) > len(buf) {
				return fmt.Errorf("btree: corrupt leaf %d", n.id)
			}
			off += w
			k := append([]byte(nil), buf[off:off+int(klen)]...)
			off += int(klen)
			vinfo, w := binary.Uvarint(buf[off:])
			if w <= 0 {
				return fmt.Errorf("btree: corrupt leaf %d", n.id)
			}
			off += w
			var v leafValue
			if vinfo&1 == 1 {
				v.totalLen = int(vinfo >> 1)
				v.overflow = pager.PageID(binary.LittleEndian.Uint32(buf[off : off+4]))
				off += 4
			} else {
				vlen := int(vinfo >> 1)
				if off+vlen > len(buf) {
					return fmt.Errorf("btree: corrupt leaf %d", n.id)
				}
				v.inline = append([]byte(nil), buf[off:off+vlen]...)
				off += vlen
			}
			n.keys = append(n.keys, k)
			n.vals = append(n.vals, v)
			n.bytes += leafEntrySize(k, v)
		}
		return nil
	case pageBranch:
		n.leaf = false
		nc := int(binary.LittleEndian.Uint16(buf[1:3]))
		n.children = make([]pager.PageID, 0, nc)
		n.counts = make([]uint64, 0, nc)
		n.keys = make([][]byte, 0, nc-1)
		off := branchHeaderSize
		n.bytes = branchHeaderSize
		for i := 0; i < nc; i++ {
			if i > 0 {
				klen, w := binary.Uvarint(buf[off:])
				if w <= 0 || off+w+int(klen) > len(buf) {
					return fmt.Errorf("btree: corrupt branch %d", n.id)
				}
				off += w
				k := append([]byte(nil), buf[off:off+int(klen)]...)
				off += int(klen)
				n.keys = append(n.keys, k)
				n.bytes += branchEntrySize(k) - childRefSize
			}
			n.children = append(n.children, pager.PageID(binary.LittleEndian.Uint32(buf[off:off+4])))
			n.counts = append(n.counts, binary.LittleEndian.Uint64(buf[off+4:off+12]))
			off += childRefSize
			n.bytes += childRefSize
		}
		return nil
	default:
		return fmt.Errorf("btree: page %d has unknown type %q", n.id, buf[0])
	}
}
