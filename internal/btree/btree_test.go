package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"vamana/internal/pager"
)

func newMemTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := New(pager.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustPut(t *testing.T, tr *Tree, k, v string) {
	t.Helper()
	if _, err := tr.Put([]byte(k), []byte(v)); err != nil {
		t.Fatalf("Put(%q): %v", k, err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := newMemTree(t)
	if n, _ := tr.Len(); n != 0 {
		t.Fatalf("Len = %d", n)
	}
	if _, ok, _ := tr.Get([]byte("x")); ok {
		t.Fatal("Get on empty tree returned a value")
	}
	c := tr.NewCursor()
	if c.SeekFirst() {
		t.Fatal("SeekFirst on empty tree succeeded")
	}
	if c.SeekLast() {
		t.Fatal("SeekLast on empty tree succeeded")
	}
	if n, _ := tr.Count(nil, nil); n != 0 {
		t.Fatalf("Count = %d", n)
	}
}

func TestPutGetSmall(t *testing.T) {
	tr := newMemTree(t)
	mustPut(t, tr, "b", "1")
	mustPut(t, tr, "a", "2")
	mustPut(t, tr, "c", "3")
	for k, want := range map[string]string{"a": "2", "b": "1", "c": "3"} {
		v, ok, err := tr.Get([]byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("Get(%q) = %q,%v,%v want %q", k, v, ok, err, want)
		}
	}
	if _, ok, _ := tr.Get([]byte("d")); ok {
		t.Fatal("Get of absent key succeeded")
	}
}

func TestPutReplace(t *testing.T) {
	tr := newMemTree(t)
	added, err := tr.Put([]byte("k"), []byte("v1"))
	if err != nil || !added {
		t.Fatalf("first Put: %v %v", added, err)
	}
	added, err = tr.Put([]byte("k"), []byte("v2"))
	if err != nil || added {
		t.Fatalf("replace Put reported added=%v err=%v", added, err)
	}
	v, _, _ := tr.Get([]byte("k"))
	if string(v) != "v2" {
		t.Fatalf("value = %q", v)
	}
	if n, _ := tr.Len(); n != 1 {
		t.Fatalf("Len = %d", n)
	}
}

func TestKeyTooLarge(t *testing.T) {
	tr := newMemTree(t)
	if _, err := tr.Put(make([]byte, maxKeySize+1), nil); err != ErrKeyTooLarge {
		t.Fatalf("err = %v", err)
	}
}

// TestLargeAscendingInsert exercises leaf and branch splits under the
// document-order bulk-load pattern.
func TestLargeAscendingInsert(t *testing.T) {
	tr := newMemTree(t)
	const n = 20000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%08d", i)
		mustPut(t, tr, k, fmt.Sprintf("val%d", i))
	}
	if got, _ := tr.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	// Spot check.
	for i := 0; i < n; i += 997 {
		k := fmt.Sprintf("key%08d", i)
		v, ok, err := tr.Get([]byte(k))
		if err != nil || !ok || string(v) != fmt.Sprintf("val%d", i) {
			t.Fatalf("Get(%q) = %q,%v,%v", k, v, ok, err)
		}
	}
	// Full in-order scan.
	c := tr.NewCursor()
	i := 0
	for ok := c.SeekFirst(); ok; ok = c.Next() {
		want := fmt.Sprintf("key%08d", i)
		if string(c.Key()) != want {
			t.Fatalf("scan[%d] = %q, want %q", i, c.Key(), want)
		}
		i++
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("scan visited %d entries, want %d", i, n)
	}
}

// TestRandomOpsAgainstModel runs a randomized sequence of Put/Delete/Get
// against a map+sorted-slice reference model, then verifies full forward
// and reverse iteration and range counts.
func TestRandomOpsAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := newMemTree(t)
	model := map[string]string{}
	randKey := func() string { return fmt.Sprintf("k%05d", rng.Intn(5000)) }
	for op := 0; op < 30000; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // put
			k, v := randKey(), fmt.Sprintf("v%d", op)
			_, wasThere := model[k]
			added, err := tr.Put([]byte(k), []byte(v))
			if err != nil {
				t.Fatal(err)
			}
			if added == wasThere {
				t.Fatalf("Put(%q) added=%v but model has=%v", k, added, wasThere)
			}
			model[k] = v
		case 6, 7: // delete
			k := randKey()
			_, wasThere := model[k]
			removed, err := tr.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			if removed != wasThere {
				t.Fatalf("Delete(%q) removed=%v model had=%v", k, removed, wasThere)
			}
			delete(model, k)
		default: // get
			k := randKey()
			v, ok, err := tr.Get([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := model[k]
			if ok != wantOK || (ok && string(v) != want) {
				t.Fatalf("Get(%q) = %q,%v want %q,%v", k, v, ok, want, wantOK)
			}
		}
	}
	verifyAgainstModel(t, tr, model)
}

func verifyAgainstModel(t *testing.T, tr *Tree, model map[string]string) {
	t.Helper()
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	if n, _ := tr.Len(); n != uint64(len(keys)) {
		t.Fatalf("Len = %d, want %d", n, len(keys))
	}
	c := tr.NewCursor()
	i := 0
	for ok := c.SeekFirst(); ok; ok = c.Next() {
		if i >= len(keys) {
			t.Fatalf("forward scan produced extra key %q", c.Key())
		}
		if string(c.Key()) != keys[i] {
			t.Fatalf("forward scan[%d] = %q, want %q", i, c.Key(), keys[i])
		}
		v, err := c.Value()
		if err != nil {
			t.Fatal(err)
		}
		if string(v) != model[keys[i]] {
			t.Fatalf("value for %q = %q, want %q", keys[i], v, model[keys[i]])
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("forward scan visited %d, want %d", i, len(keys))
	}
	// Reverse scan.
	i = len(keys) - 1
	for ok := c.SeekLast(); ok; ok = c.Prev() {
		if i < 0 {
			t.Fatalf("reverse scan produced extra key %q", c.Key())
		}
		if string(c.Key()) != keys[i] {
			t.Fatalf("reverse scan[%d] = %q, want %q", i, c.Key(), keys[i])
		}
		i--
	}
	if i != -1 {
		t.Fatalf("reverse scan stopped at %d", i)
	}
	// Range counts against brute force.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		lo := fmt.Sprintf("k%05d", rng.Intn(5200))
		hi := fmt.Sprintf("k%05d", rng.Intn(5200))
		if lo > hi {
			lo, hi = hi, lo
		}
		var want uint64
		for _, k := range keys {
			if k >= lo && k < hi {
				want++
			}
		}
		got, err := tr.Count([]byte(lo), []byte(hi))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Count(%q,%q) = %d, want %d", lo, hi, got, want)
		}
	}
	// Unbounded counts.
	if got, _ := tr.Count(nil, nil); got != uint64(len(keys)) {
		t.Fatalf("Count(nil,nil) = %d", got)
	}
}

func TestSeekSemantics(t *testing.T) {
	tr := newMemTree(t)
	for _, k := range []string{"b", "d", "f", "h"} {
		mustPut(t, tr, k, "v")
	}
	c := tr.NewCursor()
	cases := []struct {
		target string
		want   string
		ok     bool
	}{
		{"a", "b", true}, {"b", "b", true}, {"c", "d", true},
		{"h", "h", true}, {"i", "", false},
	}
	for _, cse := range cases {
		ok := c.Seek([]byte(cse.target))
		if ok != cse.ok {
			t.Fatalf("Seek(%q) ok = %v, want %v", cse.target, ok, cse.ok)
		}
		if ok && string(c.Key()) != cse.want {
			t.Fatalf("Seek(%q) = %q, want %q", cse.target, c.Key(), cse.want)
		}
	}
	before := []struct {
		target string
		want   string
		ok     bool
	}{
		{"b", "", false}, {"c", "b", true}, {"z", "h", true}, {"h", "f", true},
	}
	for _, cse := range before {
		ok := c.SeekBefore([]byte(cse.target))
		if ok != cse.ok {
			t.Fatalf("SeekBefore(%q) ok = %v, want %v", cse.target, ok, cse.ok)
		}
		if ok && string(c.Key()) != cse.want {
			t.Fatalf("SeekBefore(%q) = %q, want %q", cse.target, c.Key(), cse.want)
		}
	}
}

func TestOverflowValues(t *testing.T) {
	tr := newMemTree(t)
	big := bytes.Repeat([]byte("xyz"), 10000) // 30 KB, spans several overflow pages
	mustPut(t, tr, "big", string(big))
	mustPut(t, tr, "small", "s")
	v, ok, err := tr.Get([]byte("big"))
	if err != nil || !ok {
		t.Fatalf("Get(big): %v %v", ok, err)
	}
	if !bytes.Equal(v, big) {
		t.Fatalf("overflow round-trip: got %d bytes, want %d", len(v), len(big))
	}
	// Replace the big value with a small one; the chain must be freed and
	// its pages recycled.
	pg := tr.pg.(*pager.Pager)
	before := pg.NumPages()
	if _, err := tr.Put([]byte("big"), []byte("now small")); err != nil {
		t.Fatal(err)
	}
	big2 := bytes.Repeat([]byte("abc"), 9000)
	mustPut(t, tr, "big2", string(big2))
	if after := pg.NumPages(); after > before+1 {
		t.Fatalf("overflow pages not recycled: %d -> %d", before, after)
	}
	v, _, _ = tr.Get([]byte("big2"))
	if !bytes.Equal(v, big2) {
		t.Fatal("big2 round-trip failed")
	}
	// Delete must also free chains.
	if removed, err := tr.Delete([]byte("big2")); err != nil || !removed {
		t.Fatalf("Delete(big2): %v %v", removed, err)
	}
	if _, ok, _ := tr.Get([]byte("big2")); ok {
		t.Fatal("big2 still present after delete")
	}
}

func TestFileBackedReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.vam")
	pg, err := pager.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(pg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%06d", i*7%n) // mixed order
		if _, err := tr.Put([]byte(k), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	root := tr.Root()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}

	pg2, err := pager.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Close()
	tr2, err := Load(pg2, root)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := tr2.Len(); got != n {
		t.Fatalf("reopened Len = %d, want %d", got, n)
	}
	c := tr2.NewCursor()
	count := 0
	prev := []byte(nil)
	for ok := c.SeekFirst(); ok; ok = c.Next() {
		if prev != nil && bytes.Compare(prev, c.Key()) >= 0 {
			t.Fatalf("keys out of order after reopen: %q then %q", prev, c.Key())
		}
		prev = append(prev[:0], c.Key()...)
		count++
	}
	if count != n {
		t.Fatalf("reopened scan = %d entries, want %d", count, n)
	}
}

// TestCacheEviction forces the node cache to churn with a file-backed pager
// and a tiny cache budget.
func TestCacheEviction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "evict.vam")
	pg, err := pager.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	tr, err := New(pg)
	if err != nil {
		t.Fatal(err)
	}
	tr.maxCache = 8
	const n = 8000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%06d", i*13%n)
		if _, err := tr.Put([]byte(k), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := tr.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for i := 0; i < n; i += 501 {
		k := fmt.Sprintf("key%06d", i)
		if _, ok, err := tr.Get([]byte(k)); err != nil || !ok {
			t.Fatalf("Get(%q) after eviction churn: %v %v", k, ok, err)
		}
	}
	if got, err := tr.Count([]byte("key000000"), []byte("key004000")); err != nil || got != 4000 {
		t.Fatalf("Count = %d, %v", got, err)
	}
}

func TestRankBoundaries(t *testing.T) {
	tr := newMemTree(t)
	for i := 0; i < 1000; i++ {
		mustPut(t, tr, fmt.Sprintf("k%04d", i), "v")
	}
	cases := []struct {
		key  string
		want uint64
	}{
		{"k0000", 0}, {"k0001", 1}, {"k0500", 500}, {"k0999", 999}, {"k9999", 1000}, {"a", 0},
	}
	for _, c := range cases {
		got, err := tr.Rank([]byte(c.key))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("Rank(%q) = %d, want %d", c.key, got, c.want)
		}
	}
}

func BenchmarkPutAscending(b *testing.B) {
	tr, _ := New(pager.NewMemory())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := fmt.Sprintf("key%010d", i)
		tr.Put([]byte(k), []byte("value"))
	}
}

func BenchmarkGetRandom(b *testing.B) {
	tr, _ := New(pager.NewMemory())
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Put([]byte(fmt.Sprintf("key%010d", i)), []byte("value"))
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get([]byte(fmt.Sprintf("key%010d", rng.Intn(n))))
	}
}

func BenchmarkRangeCount(b *testing.B) {
	tr, _ := New(pager.NewMemory())
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Put([]byte(fmt.Sprintf("key%010d", i)), []byte("value"))
	}
	lo, hi := []byte("key0000010000"), []byte("key0000090000")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Count(lo, hi)
	}
}
