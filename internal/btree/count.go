package btree

import "bytes"

// Rank returns the number of entries with key strictly less than target.
// It runs in O(log n) page visits using the subtree counts stored in
// branch entries; no leaf between the tree edges and the target is read.
func (t *Tree) Rank(target []byte) (uint64, error) {
	n, err := t.load(t.root)
	if err != nil {
		return 0, err
	}
	var rank uint64
	for !n.leaf {
		idx := childIndex(n, target)
		for i := 0; i < idx; i++ {
			rank += n.counts[i]
		}
		if n, err = t.load(n.children[idx]); err != nil {
			return 0, err
		}
	}
	i := 0
	for i < len(n.keys) && bytes.Compare(n.keys[i], target) < 0 {
		i++
	}
	return rank + uint64(i), nil
}

// Count returns the number of entries with lo <= key < hi. A nil lo means
// unbounded below; a nil hi means unbounded above. This is the statistics
// primitive VAMANA's cost estimator calls (COUNT and TC probes): it costs
// two root-to-leaf descents regardless of how many entries lie in the
// range.
func (t *Tree) Count(lo, hi []byte) (uint64, error) {
	t.m.Counts++
	var lower uint64
	var err error
	if lo != nil {
		if lower, err = t.Rank(lo); err != nil {
			return 0, err
		}
	}
	var upper uint64
	if hi == nil {
		if upper, err = t.Len(); err != nil {
			return 0, err
		}
	} else {
		if upper, err = t.Rank(hi); err != nil {
			return 0, err
		}
	}
	if upper < lower {
		return 0, nil
	}
	return upper - lower, nil
}
