package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"vamana/internal/pager"
)

// TestQuickInsertedKeysRetrievable: any set of key/value pairs inserted
// into the tree can be retrieved, and iteration yields them in sorted
// order with the latest value per key.
func TestQuickInsertedKeysRetrievable(t *testing.T) {
	f := func(pairs map[string]string) bool {
		tr, err := New(pager.NewMemory())
		if err != nil {
			return false
		}
		for k, v := range pairs {
			if len(k) > maxKeySize {
				continue
			}
			if _, err := tr.Put([]byte(k), []byte(v)); err != nil {
				return false
			}
		}
		for k, v := range pairs {
			if len(k) > maxKeySize {
				continue
			}
			got, ok, err := tr.Get([]byte(k))
			if err != nil || !ok || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIterationSorted: for random keys, the in-order scan is exactly
// the sorted, deduplicated key list.
func TestQuickIterationSorted(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := New(pager.NewMemory())
		if err != nil {
			return false
		}
		keys := map[string]bool{}
		for i := 0; i < int(n)+1; i++ {
			k := fmt.Sprintf("%x", rng.Int63n(1<<20))
			keys[k] = true
			if _, err := tr.Put([]byte(k), nil); err != nil {
				return false
			}
		}
		want := make([]string, 0, len(keys))
		for k := range keys {
			want = append(want, k)
		}
		sort.Strings(want)
		c := tr.NewCursor()
		i := 0
		for ok := c.SeekFirst(); ok; ok = c.Next() {
			if i >= len(want) || string(c.Key()) != want[i] {
				return false
			}
			i++
		}
		return i == len(want) && c.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRangeCount: Count(lo, hi) equals the brute-force count for
// arbitrary bounds over random key sets — the invariant VAMANA's whole
// cost model leans on.
func TestQuickRangeCount(t *testing.T) {
	f := func(seed int64, n uint16, loRaw, hiRaw uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := New(pager.NewMemory())
		if err != nil {
			return false
		}
		var keys []string
		for i := 0; i < int(n%2000)+1; i++ {
			k := fmt.Sprintf("%08x", rng.Uint32())
			keys = append(keys, k)
			if _, err := tr.Put([]byte(k), nil); err != nil {
				return false
			}
		}
		lo := fmt.Sprintf("%08x", loRaw)
		hi := fmt.Sprintf("%08x", hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := map[string]bool{}
		for _, k := range keys {
			if k >= lo && k < hi {
				want[k] = true
			}
		}
		got, err := tr.Count([]byte(lo), []byte(hi))
		return err == nil && got == uint64(len(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeleteConsistency: after random inserts and deletes the tree
// matches a map model exactly (length, membership, order).
func TestQuickDeleteConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := New(pager.NewMemory())
		if err != nil {
			return false
		}
		model := map[string]bool{}
		for op := 0; op < 800; op++ {
			k := fmt.Sprintf("k%03d", rng.Intn(300))
			if rng.Intn(3) == 0 {
				removed, err := tr.Delete([]byte(k))
				if err != nil || removed != model[k] {
					return false
				}
				delete(model, k)
			} else {
				added, err := tr.Put([]byte(k), []byte(k))
				if err != nil || added == model[k] {
					return false
				}
				model[k] = true
			}
		}
		n, err := tr.Len()
		if err != nil || n != uint64(len(model)) {
			return false
		}
		c := tr.NewCursor()
		var prev []byte
		count := 0
		for ok := c.SeekFirst(); ok; ok = c.Next() {
			if prev != nil && bytes.Compare(prev, c.Key()) >= 0 {
				return false
			}
			if !model[string(c.Key())] {
				return false
			}
			prev = append(prev[:0], c.Key()...)
			count++
		}
		return count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSerializationRoundTrip: flushing every node and reloading the
// tree from its root page preserves all content byte-for-byte.
func TestQuickSerializationRoundTrip(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		pg := pager.NewMemory()
		tr, err := New(pg)
		if err != nil {
			return false
		}
		model := map[string]string{}
		for i := 0; i < int(n%1500)+1; i++ {
			k := fmt.Sprintf("key-%06d", rng.Intn(5000))
			v := fmt.Sprintf("val-%d", rng.Int63())
			model[k] = v
			if _, err := tr.Put([]byte(k), []byte(v)); err != nil {
				return false
			}
		}
		if err := tr.Flush(); err != nil {
			return false
		}
		tr2, err := Load(pg, tr.Root())
		if err != nil {
			return false
		}
		for k, v := range model {
			got, ok, err := tr2.Get([]byte(k))
			if err != nil || !ok || string(got) != v {
				return false
			}
		}
		n2, err := tr2.Len()
		return err == nil && n2 == uint64(len(model))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
