// Package btree implements a counted B+-tree over fixed-size pages. It is
// the index structure underlying MASS (internal/mass): the clustered node
// index, the name index, the attribute index and the value index are all
// counted B+-trees.
//
// "Counted" means every branch entry carries the number of key/value
// entries in its subtree, so the number of keys in an arbitrary range
// [lo, hi) is computed in O(log n) page visits without touching the leaf
// data between the bounds. This is the property the paper relies on when it
// says MASS "can count node set size ... without fetching the data", and it
// is what makes VAMANA's cost estimation essentially free.
//
// Keys and values are arbitrary byte strings; iteration order is raw byte
// order. Values longer than a threshold are spilled to overflow page
// chains. Trees are not safe for concurrent use; callers serialize access.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"vamana/internal/govern"
	"vamana/internal/pager"
)

// ErrKeyTooLarge is returned by Put for keys exceeding the maximum size.
var ErrKeyTooLarge = errors.New("btree: key exceeds maximum size")

// Pages is the page-storage surface a tree runs on: the full read-write
// *pager.Pager for live trees, or a read-only epoch-pinned *pager.View
// for snapshot trees (whose mutating methods fail, which a read-only
// tree never invokes).
type Pages interface {
	Read(id pager.PageID, buf []byte) error
	Write(id pager.PageID, buf []byte) error
	Allocate() (pager.PageID, error)
	Free(id pager.PageID) error
	InMemory() bool
}

var (
	_ Pages = (*pager.Pager)(nil)
	_ Pages = (*pager.View)(nil)
)

// Tree is a counted B+-tree. Create with New or attach to an existing root
// with Load.
type Tree struct {
	pg   Pages
	root pager.PageID

	cache    map[pager.PageID]*node
	maxCache int     // evict above this many cached nodes (file-backed pagers only)
	clock    []*node // eviction ring
	hand     int
	scratch  []byte  // page-size buffer reused for I/O
	m        Metrics // plain counters; callers serialize tree access
}

// Metrics counts the tree's node-cache and structural activity since it
// was created or loaded. Trees are externally serialized (see package
// doc), so plain fields are race-clean under the caller's lock.
type Metrics struct {
	CacheHits      uint64 // node loads served from the deserialized-node cache
	CacheMisses    uint64 // node loads that read and deserialized a page
	CacheEvictions uint64 // nodes evicted from the cache
	Splits         uint64 // leaf and branch node splits
	Seeks          uint64 // cursor seeks (Seek/SeekFirst/SeekLast)
	Counts         uint64 // counted-range probes (Count/Rank)
}

// Metrics returns a snapshot of the tree's counters. Like every other
// tree method it must be called under the owner's serialization.
func (t *Tree) Metrics() Metrics { return t.m }

// Add accumulates o into m, for aggregating across a store's trees.
func (m *Metrics) Add(o Metrics) {
	m.CacheHits += o.CacheHits
	m.CacheMisses += o.CacheMisses
	m.CacheEvictions += o.CacheEvictions
	m.Splits += o.Splits
	m.Seeks += o.Seeks
	m.Counts += o.Counts
}

// defaultMaxCache bounds the node cache for file-backed pagers. Memory
// pagers never evict (the pager already holds every page in memory).
const defaultMaxCache = 1024

// New creates an empty tree whose pages are allocated from pg.
func New(pg Pages) (*Tree, error) {
	t := newTree(pg)
	root := t.newNode(true)
	t.root = root.id
	return t, nil
}

// Load attaches to the tree rooted at root, as previously reported by
// Root().
func Load(pg Pages, root pager.PageID) (*Tree, error) {
	if root == pager.InvalidPage {
		return nil, errors.New("btree: invalid root page")
	}
	t := newTree(pg)
	t.root = root
	if _, err := t.load(root); err != nil {
		return nil, err
	}
	return t, nil
}

func newTree(pg Pages) *Tree {
	mc := defaultMaxCache
	if pg.InMemory() {
		mc = 1 << 30
	}
	return &Tree{
		pg:       pg,
		cache:    make(map[pager.PageID]*node),
		maxCache: mc,
		scratch:  make([]byte, pager.PageSize),
	}
}

// SetMaxCache bounds the deserialized-node cache for file-backed pagers
// (memory pagers never evict: their pages already live in memory, so
// eviction would only add churn).
func (t *Tree) SetMaxCache(n int) {
	if n < 16 {
		n = 16
	}
	if !t.pg.InMemory() {
		t.maxCache = n
	}
}

// Root returns the current root page id, needed to Load the tree later.
// The root can change as the tree grows, so persist it after Flush.
func (t *Tree) Root() pager.PageID { return t.root }

// Len returns the total number of entries.
func (t *Tree) Len() (uint64, error) {
	r, err := t.load(t.root)
	if err != nil {
		return 0, err
	}
	return r.subtreeCount(), nil
}

func (t *Tree) newNode(leaf bool) *node {
	id, err := t.pg.Allocate()
	if err != nil {
		// Allocation fails only on closed pagers or I/O errors; surface
		// lazily through the next Flush. Creating an unstorable node here
		// would corrupt the tree, so this is fatal.
		panic(fmt.Sprintf("btree: page allocation failed: %v", err))
	}
	n := &node{id: id, leaf: leaf, dirty: true}
	if leaf {
		n.bytes = leafHeaderSize
	} else {
		n.bytes = branchHeaderSize
	}
	t.cache[id] = n
	t.clock = append(t.clock, n)
	return n
}

func (t *Tree) load(id pager.PageID) (*node, error) { return t.loadFor(id, nil) }

// loadFor is load with per-query governance: a node-cache miss charges one
// page read against lim before the I/O happens, so a tripped MaxPagesRead
// budget stops the query without issuing the read. Cache hits are free —
// the budget bounds a query's pressure on the pager, not its key visits.
func (t *Tree) loadFor(id pager.PageID, lim *govern.Limiter) (*node, error) {
	if n, ok := t.cache[id]; ok {
		t.m.CacheHits++
		lim.AddCacheHits(1)
		return n, nil
	}
	if err := lim.AddPages(1); err != nil {
		return nil, err
	}
	t.m.CacheMisses++
	if err := t.pg.Read(id, t.scratch); err != nil {
		return nil, err
	}
	n := &node{id: id}
	if err := n.deserialize(t.scratch); err != nil {
		return nil, err
	}
	t.cache[id] = n
	t.clock = append(t.clock, n)
	return n, nil
}

func (t *Tree) store(n *node) error {
	if !n.dirty {
		return nil
	}
	if err := n.serialize(t.scratch); err != nil {
		return err
	}
	if err := t.pg.Write(n.id, t.scratch); err != nil {
		return err
	}
	n.dirty = false
	return nil
}

// Flush writes all dirty nodes back to the pager.
func (t *Tree) Flush() error {
	for _, n := range t.cache {
		if err := t.store(n); err != nil {
			return err
		}
	}
	return nil
}

// AdoptCache seeds t's node cache with prev's entries, skipping page ids
// for which skip returns true (nil skips nothing). It exists for
// adjacent read-only snapshot trees: when the only pages that changed
// between two committed versions are in the skip set, every other page
// is byte-identical, so the previous snapshot's decoded nodes are valid
// for the new one and carry over by pointer — a fresh snapshot starts
// with a warm cache instead of re-decoding its working set from scratch.
// Sharing *node objects is safe only because read-only trees never
// mutate a node after deserializing it; the caller must serialize access
// to both trees for the duration of the call.
func (t *Tree) AdoptCache(prev *Tree, skip func(pager.PageID) bool) {
	for id, n := range prev.cache {
		if n.dirty || (skip != nil && skip(id)) {
			continue
		}
		if _, ok := t.cache[id]; ok {
			continue
		}
		t.cache[id] = n
		t.clock = append(t.clock, n)
	}
}

// maybeEvict trims the cache after a public operation completes. It is
// never called mid-operation, so no in-use node is dropped.
func (t *Tree) maybeEvict() error {
	for len(t.clock) > t.maxCache {
		if t.hand >= len(t.clock) {
			t.hand = 0
		}
		n := t.clock[t.hand]
		if err := t.store(n); err != nil {
			return err
		}
		delete(t.cache, n.id)
		t.m.CacheEvictions++
		t.clock[t.hand] = t.clock[len(t.clock)-1]
		t.clock = t.clock[:len(t.clock)-1]
	}
	return nil
}

// leafIndex returns the position of key in leaf n, or the insertion point
// and false.
func leafIndex(n *node, key []byte) (int, bool) {
	i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return i, true
	}
	return i, false
}

// childIndex returns the branch child whose subtree covers key.
func childIndex(n *node, key []byte) int {
	// Number of separators <= key.
	return sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) > 0 })
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	n, err := t.load(t.root)
	if err != nil {
		return nil, false, err
	}
	for !n.leaf {
		if n, err = t.load(n.children[childIndex(n, key)]); err != nil {
			return nil, false, err
		}
	}
	i, ok := leafIndex(n, key)
	if !ok {
		return nil, false, nil
	}
	v, err := t.readValue(n.vals[i])
	if err != nil {
		return nil, false, err
	}
	if err := t.maybeEvict(); err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// View invokes fn with the value stored under key, without copying it for
// inline values. The slice passed to fn is owned by the tree and must not
// be retained or modified; fn runs before View returns. Reports whether
// the key was found.
func (t *Tree) View(key []byte, fn func(v []byte)) (bool, error) {
	n, err := t.load(t.root)
	if err != nil {
		return false, err
	}
	for !n.leaf {
		if n, err = t.load(n.children[childIndex(n, key)]); err != nil {
			return false, err
		}
	}
	i, ok := leafIndex(n, key)
	if !ok {
		return false, nil
	}
	lv := n.vals[i]
	if lv.isOverflow() {
		v, err := t.readValue(lv)
		if err != nil {
			return false, err
		}
		fn(v)
		return true, nil
	}
	fn(lv.inline)
	return true, nil
}

// Has reports whether key is present without materializing its value.
func (t *Tree) Has(key []byte) (bool, error) {
	n, err := t.load(t.root)
	if err != nil {
		return false, err
	}
	for !n.leaf {
		if n, err = t.load(n.children[childIndex(n, key)]); err != nil {
			return false, err
		}
	}
	_, ok := leafIndex(n, key)
	return ok, nil
}

// splitResult describes a child split to be applied in the parent.
type splitResult struct {
	sep        []byte
	right      pager.PageID
	leftCount  uint64
	rightCount uint64
}

// Put inserts key/value, replacing any existing value. It reports whether a
// new entry was added (false means replaced).
func (t *Tree) Put(key, value []byte) (bool, error) {
	if len(key) > maxKeySize {
		return false, ErrKeyTooLarge
	}
	root, err := t.load(t.root)
	if err != nil {
		return false, err
	}
	added, split, err := t.insert(root, key, value)
	if err != nil {
		return false, err
	}
	if split != nil {
		// Grow the tree: new root above the old root and its new sibling.
		nr := t.newNode(false)
		nr.children = []pager.PageID{root.id, split.right}
		nr.counts = []uint64{split.leftCount, split.rightCount}
		nr.keys = [][]byte{split.sep}
		nr.bytes = branchHeaderSize + childRefSize + branchEntrySize(split.sep)
		t.root = nr.id
	}
	return added, t.maybeEvict()
}

func (t *Tree) insert(n *node, key, value []byte) (bool, *splitResult, error) {
	if n.leaf {
		return t.insertLeaf(n, key, value)
	}
	idx := childIndex(n, key)
	child, err := t.load(n.children[idx])
	if err != nil {
		return false, nil, err
	}
	added, split, err := t.insert(child, key, value)
	if err != nil {
		return false, nil, err
	}
	n.dirty = true
	if added {
		n.counts[idx]++
	}
	if split != nil {
		n.counts[idx] = split.leftCount
		n.keys = insertBytesAt(n.keys, idx, split.sep)
		n.children = insertPageAt(n.children, idx+1, split.right)
		n.counts = insertCountAt(n.counts, idx+1, split.rightCount)
		n.bytes += branchEntrySize(split.sep)
		if n.bytes > pager.PageSize {
			return added, t.splitBranch(n), nil
		}
	}
	return added, nil, nil
}

func (t *Tree) insertLeaf(n *node, key, value []byte) (bool, *splitResult, error) {
	i, found := leafIndex(n, key)
	lv, err := t.makeValue(value)
	if err != nil {
		return false, nil, err
	}
	n.dirty = true
	if found {
		old := n.vals[i]
		n.bytes -= leafEntrySize(n.keys[i], old)
		if old.isOverflow() {
			if err := t.freeOverflow(old.overflow); err != nil {
				return false, nil, err
			}
		}
		n.vals[i] = lv
		n.bytes += leafEntrySize(n.keys[i], lv)
		if n.bytes > pager.PageSize {
			return false, t.splitLeaf(n, i), nil
		}
		return false, nil, nil
	}
	k := append([]byte(nil), key...)
	n.keys = insertBytesAt(n.keys, i, k)
	n.vals = insertValAt(n.vals, i, lv)
	n.bytes += leafEntrySize(k, lv)
	if n.bytes > pager.PageSize {
		return true, t.splitLeaf(n, i), nil
	}
	return true, nil, nil
}

// splitLeaf divides an overfull leaf. insertedAt biases the split point:
// appending workloads (insertion at the right edge) split 9:1 so pages end
// up nearly full under the document-order bulk loads MASS performs.
func (t *Tree) splitLeaf(n *node, insertedAt int) *splitResult {
	t.m.Splits++
	target := n.bytes / 2
	if insertedAt >= len(n.keys)-1 {
		target = n.bytes * 9 / 10
	} else if insertedAt == 0 {
		target = n.bytes / 10
	}
	acc := leafHeaderSize
	split := 0
	for i := 0; i < len(n.keys)-1; i++ {
		acc += leafEntrySize(n.keys[i], n.vals[i])
		if acc >= target {
			split = i + 1
			break
		}
	}
	if split == 0 {
		split = len(n.keys) / 2
		if split == 0 {
			split = 1
		}
	}
	r := t.newNode(true)
	r.keys = append(r.keys, n.keys[split:]...)
	r.vals = append(r.vals, n.vals[split:]...)
	n.keys = n.keys[:split]
	n.vals = n.vals[:split]
	n.bytes = leafHeaderSize
	for i := range n.keys {
		n.bytes += leafEntrySize(n.keys[i], n.vals[i])
	}
	r.bytes = leafHeaderSize
	for i := range r.keys {
		r.bytes += leafEntrySize(r.keys[i], r.vals[i])
	}
	// Stitch sibling links: n <-> r <-> old n.next.
	r.next = n.next
	r.prev = n.id
	if r.next != pager.InvalidPage {
		if nn, err := t.load(r.next); err == nil {
			nn.prev = r.id
			nn.dirty = true
		}
	}
	n.next = r.id
	n.dirty = true
	return &splitResult{
		sep:        append([]byte(nil), r.keys[0]...),
		right:      r.id,
		leftCount:  uint64(len(n.keys)),
		rightCount: uint64(len(r.keys)),
	}
}

func (t *Tree) splitBranch(n *node) *splitResult {
	t.m.Splits++
	// Split children so both halves are under half the byte budget.
	target := n.bytes / 2
	acc := branchHeaderSize + childRefSize
	m := 1
	for ; m < len(n.children)-1; m++ {
		acc += branchEntrySize(n.keys[m-1])
		if acc >= target {
			break
		}
	}
	sep := n.keys[m-1]
	r := t.newNode(false)
	r.children = append(r.children, n.children[m:]...)
	r.counts = append(r.counts, n.counts[m:]...)
	r.keys = append(r.keys, n.keys[m:]...)
	n.children = n.children[:m]
	n.counts = n.counts[:m]
	n.keys = n.keys[:m-1]
	recalcBranchBytes(n)
	recalcBranchBytes(r)
	n.dirty = true
	return &splitResult{
		sep:        sep,
		right:      r.id,
		leftCount:  n.subtreeCount(),
		rightCount: r.subtreeCount(),
	}
}

func recalcBranchBytes(n *node) {
	n.bytes = branchHeaderSize + childRefSize*len(n.children)
	for _, k := range n.keys {
		n.bytes += branchEntrySize(k) - childRefSize
	}
}

// Delete removes key if present and reports whether it was found. Leaves
// are not rebalanced (deletion is rare in the XML-load workload); empty
// leaves remain linked and are skipped by cursors.
func (t *Tree) Delete(key []byte) (bool, error) {
	n, err := t.load(t.root)
	if err != nil {
		return false, err
	}
	type step struct {
		n   *node
		idx int
	}
	var path []step
	for !n.leaf {
		idx := childIndex(n, key)
		path = append(path, step{n, idx})
		if n, err = t.load(n.children[idx]); err != nil {
			return false, err
		}
	}
	i, found := leafIndex(n, key)
	if !found {
		return false, nil
	}
	if n.vals[i].isOverflow() {
		if err := t.freeOverflow(n.vals[i].overflow); err != nil {
			return false, err
		}
	}
	n.bytes -= leafEntrySize(n.keys[i], n.vals[i])
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.dirty = true
	for _, s := range path {
		s.n.counts[s.idx]--
		s.n.dirty = true
	}
	return true, t.maybeEvict()
}

// makeValue stores value inline or spills it to overflow pages.
func (t *Tree) makeValue(value []byte) (leafValue, error) {
	if len(value) <= maxInlineValue {
		return leafValue{inline: append([]byte(nil), value...)}, nil
	}
	first, err := t.writeOverflow(value)
	if err != nil {
		return leafValue{}, err
	}
	return leafValue{overflow: first, totalLen: len(value)}, nil
}

const overflowHeader = 4 + 2 // next page, used bytes
const overflowCap = pager.PageSize - overflowHeader

func (t *Tree) writeOverflow(value []byte) (pager.PageID, error) {
	var first, prev pager.PageID
	buf := make([]byte, pager.PageSize)
	prevBuf := make([]byte, pager.PageSize)
	for off := 0; off < len(value); {
		id, err := t.pg.Allocate()
		if err != nil {
			return pager.InvalidPage, err
		}
		n := len(value) - off
		if n > overflowCap {
			n = overflowCap
		}
		for i := range buf {
			buf[i] = 0
		}
		binary.LittleEndian.PutUint16(buf[4:6], uint16(n))
		copy(buf[overflowHeader:], value[off:off+n])
		if err := t.pg.Write(id, buf); err != nil {
			return pager.InvalidPage, err
		}
		if first == pager.InvalidPage {
			first = id
		} else {
			// Patch previous page's next pointer.
			if err := t.pg.Read(prev, prevBuf); err != nil {
				return pager.InvalidPage, err
			}
			binary.LittleEndian.PutUint32(prevBuf[0:4], uint32(id))
			if err := t.pg.Write(prev, prevBuf); err != nil {
				return pager.InvalidPage, err
			}
		}
		prev = id
		off += n
	}
	return first, nil
}

func (t *Tree) readValue(v leafValue) ([]byte, error) {
	if !v.isOverflow() {
		return append([]byte(nil), v.inline...), nil
	}
	out := make([]byte, 0, v.totalLen)
	buf := make([]byte, pager.PageSize)
	for id := v.overflow; id != pager.InvalidPage; {
		if err := t.pg.Read(id, buf); err != nil {
			return nil, err
		}
		used := int(binary.LittleEndian.Uint16(buf[4:6]))
		out = append(out, buf[overflowHeader:overflowHeader+used]...)
		id = pager.PageID(binary.LittleEndian.Uint32(buf[0:4]))
	}
	if len(out) != v.totalLen {
		return nil, fmt.Errorf("btree: overflow chain length %d, want %d", len(out), v.totalLen)
	}
	return out, nil
}

func (t *Tree) freeOverflow(first pager.PageID) error {
	buf := make([]byte, pager.PageSize)
	for id := first; id != pager.InvalidPage; {
		if err := t.pg.Read(id, buf); err != nil {
			return err
		}
		next := pager.PageID(binary.LittleEndian.Uint32(buf[0:4]))
		if err := t.pg.Free(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}

func insertBytesAt(s [][]byte, i int, v []byte) [][]byte {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertValAt(s []leafValue, i int, v leafValue) []leafValue {
	s = append(s, leafValue{})
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertPageAt(s []pager.PageID, i int, v pager.PageID) []pager.PageID {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertCountAt(s []uint64, i int, v uint64) []uint64 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
