package mass

import (
	"fmt"

	"vamana/internal/btree"
	"vamana/internal/flex"
	"vamana/internal/xmldoc"
)

// AxisScan returns a lazy scan of the nodes reached from context node ctx
// by axis::test within document d, in axis order (document order for
// forward axes, reverse document order for reverse axes).
//
// Every axis is evaluated against the indexes; no in-memory tree is ever
// built. Name tests on the downward and horizontal axes are "index-only":
// they stream keys out of the name index without touching the clustered
// data at all.
func (s *Store) AxisScan(d DocID, ctx flex.Key, axis Axis, test NodeTest) *Scan {
	if ctx == "" {
		ctx = flex.Root
	}
	switch axis {
	case AxisSelf:
		return s.selfScan(d, ctx, test)
	case AxisChild:
		return s.childScan(d, ctx, test)
	case AxisDescendant:
		return s.rangeScan(d, test, ctx.DescLower(), ctx.SubtreeUpper(), false, 0, "")
	case AxisDescendantOrSelf:
		return concatScans(
			s.selfScan(d, ctx, test),
			s.rangeScan(d, test, ctx.DescLower(), ctx.SubtreeUpper(), false, 0, ""),
		)
	case AxisParent:
		return s.parentScan(d, ctx, test)
	case AxisAncestor:
		return s.ancestorScan(d, ctx, test, false)
	case AxisAncestorOrSelf:
		return s.ancestorScan(d, ctx, test, true)
	case AxisFollowing:
		return s.rangeScan(d, test, ctx.SubtreeUpper(), flex.Root.SubtreeUpper(), false, 0, "")
	case AxisFollowingSibling:
		return s.followingSiblingScan(d, ctx, test)
	case AxisPreceding:
		// Everything before ctx in document order, minus ancestors.
		return s.rangeScan(d, test, flex.Root, ctx, true, 0, ctx)
	case AxisPrecedingSibling:
		return s.precedingSiblingScan(d, ctx, test)
	case AxisAttribute:
		return s.attributeScan(d, ctx, test)
	case AxisNamespace:
		return s.namespaceScan(d, ctx, test)
	case AxisValue:
		return s.ValueScan(d, ctx, test.Name)
	case AxisAttrValue:
		return s.attrValueScanNamed(d, ctx, test.Name, test.Attr)
	default:
		return errScan(fmt.Errorf("mass: unknown axis %d", axis))
	}
}

func (s *Store) selfScan(d DocID, ctx flex.Key, test NodeTest) *Scan {
	done := false
	return &Scan{next: func() (xmldoc.Node, bool, error) {
		if done {
			return xmldoc.Node{}, false, nil
		}
		done = true
		s.mu.Lock()
		defer s.mu.Unlock()
		n, ok, err := s.nodeLocked(d, ctx)
		if err != nil || !ok {
			return xmldoc.Node{}, false, err
		}
		// Attribute and namespace nodes are visible to self:: only via
		// node() and (for attributes that are the context) name tests
		// with the element principal do not match them.
		if test.Matches(n, xmldoc.KindElement) && n.Kind != xmldoc.KindAttribute && n.Kind != xmldoc.KindNamespace ||
			(test.Type == TestNode && (n.Kind == xmldoc.KindAttribute || n.Kind == xmldoc.KindNamespace)) {
			return n, true, nil
		}
		return xmldoc.Node{}, false, nil
	}}
}

// childScan iterates the children of ctx. Name tests use the name index
// restricted to the subtree with a depth filter; other tests use a
// clustered skip-scan that seeks over each child's subtree.
func (s *Store) childScan(d DocID, ctx flex.Key, test NodeTest) *Scan {
	if test.Type == TestName || test.Type == TestWildcard {
		return s.rangeScan(d, test, ctx.DescLower(), ctx.SubtreeUpper(), false, ctx.Depth()+1, "")
	}
	return s.clusteredSkipScan(d, test, ctx.DescLower(), ctx.SubtreeUpper())
}

// clusteredSkipScan walks the clustered index visiting only top-level nodes
// of the range: after yielding (or rejecting) a node it seeks past the
// node's whole subtree. This makes child and sibling iteration proportional
// to the number of children, not descendants.
func (s *Store) clusteredSkipScan(d DocID, test NodeTest, klo, khi flex.Key) *Scan {
	var cur *btree.Cursor
	nextSeek := clusteredKey(d, klo)
	hi := clusteredKey(d, khi)
	return &Scan{next: func() (xmldoc.Node, bool, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if cur == nil {
			cur = s.clustered.NewCursor()
		}
		for {
			if !cur.Seek(nextSeek) || !cur.InRange(hi) {
				return xmldoc.Node{}, false, cur.Err()
			}
			_, fk := splitClusteredKey(cur.Key())
			v, err := cur.Value()
			if err != nil {
				return xmldoc.Node{}, false, err
			}
			n, err := decodeRecord(v)
			if err != nil {
				return xmldoc.Node{}, false, err
			}
			n.Key = fk
			nextSeek = clusteredKey(d, fk.SubtreeUpper())
			if n.Kind == xmldoc.KindAttribute || n.Kind == xmldoc.KindNamespace {
				continue // not children
			}
			if test.Matches(n, xmldoc.KindElement) {
				return n, true, nil
			}
		}
	}}
}

// rangeScan streams the nodes in [klo, khi) that satisfy test, choosing
// the narrowest index for the test type. depthFilter > 0 keeps only nodes
// at that FLEX depth (used for child and sibling steps). skipAncestorsOf
// != "" drops ancestors of that key (used for the preceding axis).
// reverse delivers reverse document order.
func (s *Store) rangeScan(d DocID, test NodeTest, klo, khi flex.Key, reverse bool, depthFilter int, skipAncestorsOf flex.Key) *Scan {
	switch test.Type {
	case TestName:
		lo, hi := nameRange(test.Name, d, klo, khi)
		return s.indexScan(s.names, lo, hi, reverse, func(k []byte) (xmldoc.Node, bool) {
			name, _, fk := splitNameKey(k)
			if depthFilter > 0 && fk.Depth() != depthFilter {
				return xmldoc.Node{}, false
			}
			if skipAncestorsOf != "" && fk.IsAncestorOf(skipAncestorsOf) {
				return xmldoc.Node{}, false
			}
			return xmldoc.Node{Key: fk, Kind: xmldoc.KindElement, Name: name}, true
		})
	case TestWildcard:
		lo, hi := docKeyRange(d, klo, khi)
		return s.indexScanV(s.elems, lo, hi, reverse, func(k, v []byte) (xmldoc.Node, bool) {
			_, fk := splitClusteredKey(k)
			if depthFilter > 0 && fk.Depth() != depthFilter {
				return xmldoc.Node{}, false
			}
			if skipAncestorsOf != "" && fk.IsAncestorOf(skipAncestorsOf) {
				return xmldoc.Node{}, false
			}
			return xmldoc.Node{Key: fk, Kind: xmldoc.KindElement, Name: string(v)}, true
		})
	case TestText:
		lo, hi := docKeyRange(d, klo, khi)
		sc := s.indexScan(s.texts, lo, hi, reverse, func(k []byte) (xmldoc.Node, bool) {
			_, fk := splitClusteredKey(k)
			if depthFilter > 0 && fk.Depth() != depthFilter {
				return xmldoc.Node{}, false
			}
			return xmldoc.Node{Key: fk, Kind: xmldoc.KindText}, true
		})
		return s.materializeValues(d, sc)
	default: // node(), comment(), processing-instruction()
		lo, hi := docKeyRange(d, klo, khi)
		return s.indexScanV(s.clustered, lo, hi, reverse, func(k, v []byte) (xmldoc.Node, bool) {
			_, fk := splitClusteredKey(k)
			n, err := decodeRecord(v)
			if err != nil {
				return xmldoc.Node{}, false
			}
			n.Key = fk
			if n.Kind == xmldoc.KindAttribute || n.Kind == xmldoc.KindNamespace {
				return xmldoc.Node{}, false
			}
			if depthFilter > 0 && fk.Depth() != depthFilter {
				return xmldoc.Node{}, false
			}
			if skipAncestorsOf != "" && fk.IsAncestorOf(skipAncestorsOf) {
				return xmldoc.Node{}, false
			}
			if !test.Matches(n, xmldoc.KindElement) {
				return xmldoc.Node{}, false
			}
			return n, true
		})
	}
}

// indexScan iterates tree keys in [lo, hi), mapping each through accept
// (which may reject). Only keys are touched, never values.
func (s *Store) indexScan(tree *btree.Tree, lo, hi []byte, reverse bool, accept func(k []byte) (xmldoc.Node, bool)) *Scan {
	return s.indexScanV(tree, lo, hi, reverse, func(k, _ []byte) (xmldoc.Node, bool) { return accept(k) })
}

// indexScanV is indexScan with access to entry values. Values are only
// materialized for trees that store them (elems, clustered, values).
func (s *Store) indexScanV(tree *btree.Tree, lo, hi []byte, reverse bool, accept func(k, v []byte) (xmldoc.Node, bool)) *Scan {
	var cur *btree.Cursor
	started := false
	needsValue := tree == s.elems || tree == s.clustered || tree == s.values
	return &Scan{next: func() (xmldoc.Node, bool, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if cur == nil {
			cur = tree.NewCursor()
		}
		for {
			var ok bool
			if !started {
				started = true
				if reverse {
					ok = cur.SeekBefore(hi)
				} else {
					ok = cur.Seek(lo)
				}
			} else {
				if reverse {
					ok = cur.Prev()
				} else {
					ok = cur.Next()
				}
			}
			if !ok {
				return xmldoc.Node{}, false, cur.Err()
			}
			if reverse {
				if string(cur.Key()) < string(lo) {
					return xmldoc.Node{}, false, nil
				}
			} else if !cur.InRange(hi) {
				return xmldoc.Node{}, false, nil
			}
			var v []byte
			if needsValue {
				var err error
				if v, err = cur.Value(); err != nil {
					return xmldoc.Node{}, false, err
				}
			}
			if n, keep := accept(cur.Key(), v); keep {
				return n, true, nil
			}
		}
	}}
}

// materializeValues fills in Value for text nodes coming out of the texts
// index (which stores no content) by probing the clustered index.
func (s *Store) materializeValues(d DocID, in *Scan) *Scan {
	return &Scan{next: func() (xmldoc.Node, bool, error) {
		n, ok := in.Next()
		if !ok {
			return xmldoc.Node{}, false, in.Err()
		}
		s.mu.Lock()
		full, ok2, err := s.nodeLocked(d, n.Key)
		s.mu.Unlock()
		if err != nil {
			return xmldoc.Node{}, false, err
		}
		if ok2 {
			return full, true, nil
		}
		return n, true, nil
	}}
}

func (s *Store) parentScan(d DocID, ctx flex.Key, test NodeTest) *Scan {
	done := false
	return &Scan{next: func() (xmldoc.Node, bool, error) {
		if done {
			return xmldoc.Node{}, false, nil
		}
		done = true
		p := ctx.Parent()
		if p == "" {
			return xmldoc.Node{}, false, nil
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		n, ok, err := s.nodeLocked(d, p)
		if err != nil || !ok {
			return xmldoc.Node{}, false, err
		}
		if test.Matches(n, xmldoc.KindElement) {
			return n, true, nil
		}
		return xmldoc.Node{}, false, nil
	}}
}

// ancestorScan yields matching ancestors nearest-first (reverse document
// order, as XPath requires for this reverse axis).
func (s *Store) ancestorScan(d DocID, ctx flex.Key, test NodeTest, orSelf bool) *Scan {
	k := ctx
	if !orSelf {
		k = ctx.Parent()
	}
	return &Scan{next: func() (xmldoc.Node, bool, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		for k != "" {
			n, ok, err := s.nodeLocked(d, k)
			if err != nil {
				return xmldoc.Node{}, false, err
			}
			cur := k
			k = k.Parent()
			if !ok || !test.Matches(n, xmldoc.KindElement) {
				continue
			}
			// An attribute context node is reachable only as "self" (and
			// only via node()); attributes never appear as ancestors.
			if n.Kind == xmldoc.KindAttribute || n.Kind == xmldoc.KindNamespace {
				if orSelf && cur == ctx && test.Type == TestNode {
					return n, true, nil
				}
				continue
			}
			return n, true, nil
		}
		return xmldoc.Node{}, false, nil
	}}
}

func (s *Store) followingSiblingScan(d DocID, ctx flex.Key, test NodeTest) *Scan {
	parent := ctx.Parent()
	if parent == "" {
		return emptyScan() // the root has no siblings
	}
	// Attribute and namespace context nodes have no siblings.
	if kind, err := s.kindOf(d, ctx); err != nil {
		return errScan(err)
	} else if kind == xmldoc.KindAttribute || kind == xmldoc.KindNamespace {
		return emptyScan()
	}
	if test.Type == TestName || test.Type == TestWildcard {
		return s.rangeScan(d, test, ctx.SubtreeUpper(), parent.SubtreeUpper(), false, ctx.Depth(), "")
	}
	return s.clusteredSkipScan(d, test, ctx.SubtreeUpper(), parent.SubtreeUpper())
}

func (s *Store) precedingSiblingScan(d DocID, ctx flex.Key, test NodeTest) *Scan {
	parent := ctx.Parent()
	if parent == "" {
		return emptyScan()
	}
	if kind, err := s.kindOf(d, ctx); err != nil {
		return errScan(err)
	} else if kind == xmldoc.KindAttribute || kind == xmldoc.KindNamespace {
		return emptyScan()
	}
	if test.Type == TestName || test.Type == TestWildcard {
		return s.rangeScan(d, test, parent.DescLower(), ctx, true, ctx.Depth(), "")
	}
	// Clustered walk, one sibling at a time, backwards: the entry just
	// before the current sibling's key is the deepest node of the
	// preceding sibling's subtree (or an attribute of the parent, which
	// terminates the walk).
	cur := ctx
	depth := ctx.Depth()
	lo := clusteredKey(d, parent.DescLower())
	return &Scan{next: func() (xmldoc.Node, bool, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		c := s.clustered.NewCursor()
		for {
			if !c.SeekBefore(clusteredKey(d, cur)) {
				return xmldoc.Node{}, false, c.Err()
			}
			if string(c.Key()) < string(lo) {
				return xmldoc.Node{}, false, nil
			}
			_, fk := splitClusteredKey(c.Key())
			sib := fk.AncestorAtDepth(depth)
			if sib == "" {
				return xmldoc.Node{}, false, nil
			}
			n, ok, err := s.nodeLocked(d, sib)
			if err != nil || !ok {
				return xmldoc.Node{}, false, err
			}
			cur = sib
			if n.Kind == xmldoc.KindAttribute || n.Kind == xmldoc.KindNamespace {
				return xmldoc.Node{}, false, nil // reached the parent's attributes
			}
			if test.Matches(n, xmldoc.KindElement) {
				return n, true, nil
			}
		}
	}}
}

func (s *Store) kindOf(d DocID, k flex.Key) (xmldoc.Kind, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok, err := s.nodeLocked(d, k)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("mass: no node at %q", k)
	}
	return n.Kind, nil
}

// attributeScan yields ctx's attribute nodes. Attribute and namespace
// nodes precede all other child content in document order (an XPath data
// model invariant the loader and the update API maintain), so they form a
// contiguous clustered prefix directly under ctx: scan forward from the
// subtree start and stop at the first non-attribute node.
func (s *Store) attributeScan(d DocID, ctx flex.Key, test NodeTest) *Scan {
	hi := clusteredKey(d, ctx.SubtreeUpper())
	var cur *btree.Cursor
	started, done := false, false
	return &Scan{next: func() (xmldoc.Node, bool, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if done {
			return xmldoc.Node{}, false, nil
		}
		if cur == nil {
			cur = s.clustered.NewCursor()
		}
		for {
			var ok bool
			if !started {
				started = true
				ok = cur.Seek(clusteredKey(d, ctx.DescLower()))
			} else {
				ok = cur.Next()
			}
			if !ok || !cur.InRange(hi) {
				done = true
				return xmldoc.Node{}, false, cur.Err()
			}
			v, err := cur.Value()
			if err != nil {
				return xmldoc.Node{}, false, err
			}
			n, err := decodeRecord(v)
			if err != nil {
				return xmldoc.Node{}, false, err
			}
			if n.Kind != xmldoc.KindAttribute && n.Kind != xmldoc.KindNamespace {
				// First content child: no attributes follow it in
				// document order, so the scan is complete.
				done = true
				return xmldoc.Node{}, false, nil
			}
			_, fk := splitClusteredKey(cur.Key())
			n.Key = fk
			if n.Kind == xmldoc.KindAttribute && test.Matches(n, xmldoc.KindAttribute) {
				return n, true, nil
			}
		}
	}}
}

// namespaceScan yields the in-scope namespace nodes of ctx: declarations
// on ctx or the nearest ancestor, one per prefix, nearest-first.
func (s *Store) namespaceScan(d DocID, ctx flex.Key, test NodeTest) *Scan {
	s.mu.Lock()
	var out []xmldoc.Node
	seen := map[string]bool{}
	for k := ctx; k != ""; k = k.Parent() {
		lo := clusteredKey(d, k.DescLower()+"a")
		hi := clusteredKey(d, k.DescLower()+"b")
		c := s.clustered.NewCursor()
		for ok := c.Seek(lo); ok && c.InRange(hi); ok = c.Next() {
			v, err := c.Value()
			if err != nil {
				s.mu.Unlock()
				return errScan(err)
			}
			n, err := decodeRecord(v)
			if err != nil || n.Kind != xmldoc.KindNamespace || seen[n.Name] {
				continue
			}
			seen[n.Name] = true
			_, fk := splitClusteredKey(c.Key())
			n.Key = fk
			if test.Matches(n, xmldoc.KindNamespace) {
				out = append(out, n)
			}
		}
	}
	s.mu.Unlock()
	return sliceScan(out)
}

// ValueScan streams the text nodes within ctx's subtree whose string value
// equals value, in document order, using a single value-index range probe.
// This is the "one look-up" evaluation of value predicates the paper
// contrasts with eXist's traversal fallback.
func (s *Store) ValueScan(d DocID, ctx flex.Key, value string) *Scan {
	if ctx == "" {
		ctx = flex.Root
	}
	lo, hi := valueRange(valueTagText, value, d, ctx, ctx.SubtreeUpper())
	_, truncated := indexedValue(value)
	return s.indexScanV(s.values, lo, hi, false, func(k, flags []byte) (xmldoc.Node, bool) {
		_, _, _, fk := splitValueKey(k)
		n := xmldoc.Node{Key: fk, Kind: xmldoc.KindText, Value: value}
		if truncated || (len(flags) > 0 && flags[0]&valueFlagTruncated != 0) {
			// The key holds only a prefix; verify against the record.
			full, ok, err := s.nodeLocked(d, fk)
			if err != nil || !ok || full.Value != value {
				return xmldoc.Node{}, false
			}
			n = full
		}
		return n, true
	})
}

// AttrValueScan streams the attribute nodes within ctx's subtree whose
// value equals value, in document order.
func (s *Store) AttrValueScan(d DocID, ctx flex.Key, value string) *Scan {
	if ctx == "" {
		ctx = flex.Root
	}
	lo, hi := valueRange(valueTagAttr, value, d, ctx, ctx.SubtreeUpper())
	_, truncated := indexedValue(value)
	return s.indexScanV(s.values, lo, hi, false, func(k, flags []byte) (xmldoc.Node, bool) {
		_, _, _, fk := splitValueKey(k)
		full, ok, err := s.nodeLocked(d, fk)
		if err != nil || !ok {
			return xmldoc.Node{}, false
		}
		if (truncated || (len(flags) > 0 && flags[0]&valueFlagTruncated != 0)) && full.Value != value {
			return xmldoc.Node{}, false
		}
		return full, true
	})
}

// attrValueScanNamed restricts AttrValueScan to attributes named name
// (any name when empty).
func (s *Store) attrValueScanNamed(d DocID, ctx flex.Key, value, name string) *Scan {
	inner := s.AttrValueScan(d, ctx, value)
	if name == "" {
		return inner
	}
	return &Scan{next: func() (xmldoc.Node, bool, error) {
		for {
			n, ok := inner.Next()
			if !ok {
				return xmldoc.Node{}, false, inner.Err()
			}
			if n.Name == name {
				return n, true, nil
			}
		}
	}}
}

// concatScans chains scans in order.
func concatScans(scans ...*Scan) *Scan {
	i := 0
	return &Scan{next: func() (xmldoc.Node, bool, error) {
		for i < len(scans) {
			n, ok := scans[i].Next()
			if ok {
				return n, true, nil
			}
			if err := scans[i].Err(); err != nil {
				return xmldoc.Node{}, false, err
			}
			i++
		}
		return xmldoc.Node{}, false, nil
	}}
}
