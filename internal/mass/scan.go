package mass

import (
	"fmt"

	"vamana/internal/btree"
	"vamana/internal/flex"
	"vamana/internal/govern"
	"vamana/internal/xmldoc"
)

// AxisScan returns a lazy scan of the nodes reached from context node ctx
// by axis::test within document d, in axis order (document order for
// forward axes, reverse document order for reverse axes).
//
// Every axis is evaluated against the indexes; no in-memory tree is ever
// built. Name tests on the downward and horizontal axes are "index-only":
// they stream keys out of the name index without touching the clustered
// data at all.
//
// Each call allocates a fresh Scanner; callers that open many scans of the
// same step (one per context tuple) should hold a Scanner and rebind it
// with BindScan instead.
func (s *Store) AxisScan(d DocID, ctx flex.Key, axis Axis, test NodeTest) *Scan {
	return s.BindScan(new(Scanner), d, ctx, axis, test)
}

// ValueScan streams the text nodes within ctx's subtree whose string value
// equals value, in document order, using a single value-index range probe.
// This is the "one look-up" evaluation of value predicates the paper
// contrasts with eXist's traversal fallback.
func (s *Store) ValueScan(d DocID, ctx flex.Key, value string) *Scan {
	return s.BindScan(new(Scanner), d, ctx, AxisValue, NodeTest{Name: value})
}

// AttrValueScan streams the attribute nodes within ctx's subtree whose
// value equals value, in document order.
func (s *Store) AttrValueScan(d DocID, ctx flex.Key, value string) *Scan {
	return s.BindScan(new(Scanner), d, ctx, AxisAttrValue, NodeTest{Name: value})
}

// indexScan iterates tree keys in [lo, hi), mapping each through accept
// (which may reject). Only keys are touched, never values. The numeric
// index uses it; axis scans go through Scanner. lim (nil = ungoverned)
// is ticked per entry and charged for the cursor's page reads.
func (s *Store) indexScan(tree *btree.Tree, lo, hi []byte, reverse bool, lim *govern.Limiter, accept func(k []byte) (xmldoc.Node, bool)) *Scan {
	var cur *btree.Cursor
	started := false
	return &Scan{next: func() (xmldoc.Node, bool, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if cur == nil {
			cur = tree.NewCursor()
			cur.SetLimiter(lim)
		}
		for {
			if err := lim.Tick(); err != nil {
				return xmldoc.Node{}, false, err
			}
			var ok bool
			if !started {
				started = true
				if reverse {
					ok = cur.SeekBefore(hi)
				} else {
					ok = cur.Seek(lo)
				}
			} else {
				if reverse {
					ok = cur.Prev()
				} else {
					ok = cur.Next()
				}
			}
			if !ok {
				return xmldoc.Node{}, false, cur.Err()
			}
			if reverse {
				if string(cur.Key()) < string(lo) {
					return xmldoc.Node{}, false, nil
				}
			} else if !cur.InRange(hi) {
				return xmldoc.Node{}, false, nil
			}
			if n, keep := accept(cur.Key()); keep {
				return n, true, nil
			}
		}
	}}
}

// materializeValues fills in Value for text nodes coming out of a keys-only
// index (which stores no content) by probing the clustered index.
func (s *Store) materializeValues(d DocID, in *Scan, lim *govern.Limiter) *Scan {
	return &Scan{next: func() (xmldoc.Node, bool, error) {
		n, ok := in.Next()
		if !ok {
			return xmldoc.Node{}, false, in.Err()
		}
		s.mu.Lock()
		full, ok2, err := s.nodeLockedFor(d, n.Key, lim)
		s.mu.Unlock()
		if err != nil {
			return xmldoc.Node{}, false, err
		}
		if ok2 {
			return full, true, nil
		}
		return n, true, nil
	}}
}

func (s *Store) kindOf(d DocID, k flex.Key) (xmldoc.Kind, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok, err := s.nodeLocked(d, k)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("mass: no node at %q", k)
	}
	return n.Kind, nil
}

// namespaceScan yields the in-scope namespace nodes of ctx: declarations
// on ctx or the nearest ancestor, one per prefix, nearest-first.
func (s *Store) namespaceScan(d DocID, ctx flex.Key, test NodeTest) *Scan {
	s.mu.Lock()
	var out []xmldoc.Node
	seen := map[string]bool{}
	for k := ctx; k != ""; k = k.Parent() {
		lo := clusteredKey(d, k.DescLower()+"a")
		hi := clusteredKey(d, k.DescLower()+"b")
		c := s.clustered.NewCursor()
		for ok := c.Seek(lo); ok && c.InRange(hi); ok = c.Next() {
			v, err := c.Value()
			if err != nil {
				s.mu.Unlock()
				return errScan(err)
			}
			s.recordsDecoded++
			n, err := decodeRecord(v)
			if err != nil || n.Kind != xmldoc.KindNamespace || seen[n.Name] {
				continue
			}
			seen[n.Name] = true
			_, fk := splitClusteredKey(c.Key())
			n.Key = fk
			if test.Matches(n, xmldoc.KindNamespace) {
				out = append(out, n)
			}
		}
	}
	s.mu.Unlock()
	return sliceScan(out)
}
