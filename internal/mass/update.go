package mass

import (
	"errors"
	"fmt"

	"vamana/internal/flex"
	"vamana/internal/xmldoc"
)

// Document update support. The paper's cost model works because MASS
// statistics are "always up to date and accurate ... not affected by
// updates, inserts and deletes" (§I): every mutation below maintains all
// secondary indexes and the counted B+-trees transactionally within the
// store lock, so the very next COUNT/TC probe reflects it exactly. FLEX
// keys make sibling insertion renumbering-free: a fresh component is
// generated strictly between the neighbors' components (flex.Between).

// ErrNoNode is returned when an update references a missing node.
var ErrNoNode = errors.New("mass: no such node")

// ErrBadTarget is returned when an update targets a node of an
// incompatible kind.
var ErrBadTarget = errors.New("mass: node kind incompatible with this update")

// InsertElement inserts a new element named name as a content child of
// parent at position pos (0-based among existing content children;
// pos < 0 or past the end appends). It returns the new node's key.
func (s *Store) InsertElement(d DocID, parent flex.Key, pos int, name string) (flex.Key, error) {
	s.writer.Lock()
	defer s.writer.Unlock()
	return s.insertContent(d, parent, pos, xmldoc.Node{Kind: xmldoc.KindElement, Name: name})
}

// InsertText inserts a new text node with the given value as a content
// child of parent at position pos (see InsertElement).
func (s *Store) InsertText(d DocID, parent flex.Key, pos int, value string) (flex.Key, error) {
	s.writer.Lock()
	defer s.writer.Unlock()
	return s.insertContent(d, parent, pos, xmldoc.Node{Kind: xmldoc.KindText, Value: value})
}

// insertContent is the writer-lock-free inner body shared by the
// per-operation entry points above and Update transactions (which hold
// the writer lock for their whole span).
func (s *Store) insertContent(d DocID, parent flex.Key, pos int, n xmldoc.Node) (flex.Key, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ro {
		return "", ErrReadOnlySnapshot
	}
	defer s.bumpEpochLocked(d)
	pn, ok, err := s.nodeLocked(d, parent)
	if err != nil {
		return "", err
	}
	if !ok {
		return "", fmt.Errorf("%w: parent %q", ErrNoNode, parent)
	}
	if pn.Kind != xmldoc.KindElement && pn.Kind != xmldoc.KindDocument {
		return "", fmt.Errorf("%w: parent %q is a %s", ErrBadTarget, parent, pn.Kind)
	}
	comp, err := s.componentForInsert(d, parent, pos)
	if err != nil {
		return "", err
	}
	n.Key = parent.Child(comp)
	if err := s.indexNode(d, n); err != nil {
		return "", err
	}
	return n.Key, nil
}

// componentForInsert picks a FLEX component for a new content child of
// parent at position pos, strictly between its neighbors-to-be. The
// attribute prefix (attributes sort before all content) acts as the lower
// floor for insertions at the head.
func (s *Store) componentForInsert(d DocID, parent flex.Key, pos int) (flex.Component, error) {
	attrs, contents, err := s.childComponents(d, parent)
	if err != nil {
		return "", err
	}
	floor := flex.Component("")
	if len(attrs) > 0 {
		floor = attrs[len(attrs)-1]
	}
	switch {
	case len(contents) == 0:
		if floor != "" {
			return flex.After(floor), nil
		}
		return flex.Ordinal(0), nil
	case pos < 0 || pos >= len(contents):
		return flex.After(contents[len(contents)-1]), nil
	case pos == 0:
		return flex.Between(floor, contents[0])
	default:
		return flex.Between(contents[pos-1], contents[pos])
	}
}

// childComponents returns parent's attribute/namespace components and its
// content-child components, each in document order. It walks the
// clustered index skipping over each child's subtree.
func (s *Store) childComponents(d DocID, parent flex.Key) (attrs, contents []flex.Component, err error) {
	c := s.clustered.NewCursor()
	hi := clusteredKey(d, parent.SubtreeUpper())
	seek := clusteredKey(d, parent.DescLower())
	for {
		if !c.Seek(seek) || !c.InRange(hi) {
			return attrs, contents, c.Err()
		}
		_, fk := splitClusteredKey(c.Key())
		v, err := c.Value()
		if err != nil {
			return nil, nil, err
		}
		n, err := decodeRecord(v)
		if err != nil {
			return nil, nil, err
		}
		comp := fk.LastComponent()
		if n.Kind == xmldoc.KindAttribute || n.Kind == xmldoc.KindNamespace {
			attrs = append(attrs, comp)
		} else {
			contents = append(contents, comp)
		}
		seek = clusteredKey(d, fk.SubtreeUpper())
	}
}

// InsertAttribute adds an attribute to an element. The new attribute is
// placed after any existing attributes and before all content children,
// preserving document-order invariants.
func (s *Store) InsertAttribute(d DocID, owner flex.Key, name, value string) (flex.Key, error) {
	s.writer.Lock()
	defer s.writer.Unlock()
	return s.insertAttribute(d, owner, name, value)
}

func (s *Store) insertAttribute(d DocID, owner flex.Key, name, value string) (flex.Key, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ro {
		return "", ErrReadOnlySnapshot
	}
	defer s.bumpEpochLocked(d)
	on, ok, err := s.nodeLocked(d, owner)
	if err != nil {
		return "", err
	}
	if !ok {
		return "", fmt.Errorf("%w: element %q", ErrNoNode, owner)
	}
	if on.Kind != xmldoc.KindElement {
		return "", fmt.Errorf("%w: %q is a %s", ErrBadTarget, owner, on.Kind)
	}
	attrs, contents, err := s.childComponents(d, owner)
	if err != nil {
		return "", err
	}
	var comp flex.Component
	floor := flex.Component("")
	if len(attrs) > 0 {
		floor = attrs[len(attrs)-1]
	}
	if len(contents) > 0 {
		if comp, err = flex.Between(floor, contents[0]); err != nil {
			return "", err
		}
	} else if floor != "" {
		comp = flex.After(floor)
	} else {
		comp = flex.AttrOrdinal(0)
	}
	n := xmldoc.Node{Key: owner.Child(comp), Kind: xmldoc.KindAttribute, Name: name, Value: value}
	if err := s.indexNode(d, n); err != nil {
		return "", err
	}
	return n.Key, nil
}

// UpdateText replaces the value of a text or attribute node, keeping the
// value index (and therefore TC statistics) exact.
func (s *Store) UpdateText(d DocID, key flex.Key, newValue string) error {
	s.writer.Lock()
	defer s.writer.Unlock()
	return s.updateText(d, key, newValue)
}

func (s *Store) updateText(d DocID, key flex.Key, newValue string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ro {
		return ErrReadOnlySnapshot
	}
	defer s.bumpEpochLocked(d)
	n, ok, err := s.nodeLocked(d, key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoNode, key)
	}
	var tag byte
	switch n.Kind {
	case xmldoc.KindText:
		tag = valueTagText
	case xmldoc.KindAttribute:
		tag = valueTagAttr
	case xmldoc.KindComment, xmldoc.KindPI:
		// Not value-indexed; only the record changes.
		n.Value = newValue
		_, err := s.clustered.Put(clusteredKey(d, key), encodeRecord(n))
		return err
	default:
		return fmt.Errorf("%w: %q is a %s", ErrBadTarget, key, n.Kind)
	}
	if _, err := s.values.Delete(valueKey(tag, n.Value, d, key)); err != nil {
		return err
	}
	s.deleteNumericEntries(n.Kind, d, key, n.Value)
	n.Value = newValue
	if err := s.putValueEntry(tag, d, key, newValue); err != nil {
		return err
	}
	_, err = s.clustered.Put(clusteredKey(d, key), encodeRecord(n))
	return err
}

// RenameElement changes an element's name, maintaining the name index.
func (s *Store) RenameElement(d DocID, key flex.Key, newName string) error {
	s.writer.Lock()
	defer s.writer.Unlock()
	return s.renameElement(d, key, newName)
}

func (s *Store) renameElement(d DocID, key flex.Key, newName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ro {
		return ErrReadOnlySnapshot
	}
	defer s.bumpEpochLocked(d)
	n, ok, err := s.nodeLocked(d, key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoNode, key)
	}
	if n.Kind != xmldoc.KindElement {
		return fmt.Errorf("%w: %q is a %s", ErrBadTarget, key, n.Kind)
	}
	if len(newName) > maxIndexedValue {
		return fmt.Errorf("mass: name exceeds %d bytes", maxIndexedValue)
	}
	if _, err := s.names.Delete(nameKey(n.Name, d, key)); err != nil {
		return err
	}
	if _, err := s.names.Put(nameKey(newName, d, key), nil); err != nil {
		return err
	}
	if _, err := s.elems.Put(docKey(d, key), []byte(newName)); err != nil {
		return err
	}
	n.Name = newName
	_, err = s.clustered.Put(clusteredKey(d, key), encodeRecord(n))
	return err
}

// DeleteSubtree removes the node at key together with its whole subtree
// (descendants, attributes, text), cleaning every index. Deleting the
// document node is rejected; use DropDocument.
func (s *Store) DeleteSubtree(d DocID, key flex.Key) error {
	s.writer.Lock()
	defer s.writer.Unlock()
	return s.deleteSubtree(d, key)
}

func (s *Store) deleteSubtree(d DocID, key flex.Key) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ro {
		return ErrReadOnlySnapshot
	}
	defer s.bumpEpochLocked(d)
	if key == flex.Root {
		return fmt.Errorf("%w: cannot delete the document node", ErrBadTarget)
	}
	n, ok, err := s.nodeLocked(d, key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoNode, key)
	}
	_ = n
	// Collect first: cursors do not survive mutation.
	type victim struct {
		key  flex.Key
		node xmldoc.Node
	}
	var victims []victim
	c := s.clustered.NewCursor()
	lo := clusteredKey(d, key)
	hi := clusteredKey(d, key.SubtreeUpper())
	for ok := c.Seek(lo); ok && c.InRange(hi); ok = c.Next() {
		_, fk := splitClusteredKey(c.Key())
		v, err := c.Value()
		if err != nil {
			return err
		}
		rec, err := decodeRecord(v)
		if err != nil {
			return err
		}
		rec.Key = fk
		victims = append(victims, victim{fk, rec})
	}
	if err := c.Err(); err != nil {
		return err
	}
	for _, v := range victims {
		s.deleteNodeIndexEntries(d, v.node)
		if _, err := s.clustered.Delete(clusteredKey(d, v.key)); err != nil {
			return err
		}
	}
	return nil
}
