package mass

import (
	"encoding/binary"
	"fmt"

	"vamana/internal/xmldoc"
)

// encodeRecord serializes a node for the clustered index. The FLEX key is
// not stored — it is the index key. Layout:
//
//	[kind 1][uvarint name length][name bytes][value bytes ...]
func encodeRecord(n xmldoc.Node) []byte {
	out := make([]byte, 0, 1+binary.MaxVarintLen32+len(n.Name)+len(n.Value))
	out = append(out, byte(n.Kind))
	var lenBuf [binary.MaxVarintLen32]byte
	w := binary.PutUvarint(lenBuf[:], uint64(len(n.Name)))
	out = append(out, lenBuf[:w]...)
	out = append(out, n.Name...)
	out = append(out, n.Value...)
	return out
}

// decodeRecord parses a clustered-index record.
func decodeRecord(b []byte) (xmldoc.Node, error) {
	if len(b) < 2 {
		return xmldoc.Node{}, fmt.Errorf("mass: record too short (%d bytes)", len(b))
	}
	var n xmldoc.Node
	n.Kind = xmldoc.Kind(b[0])
	nameLen, w := binary.Uvarint(b[1:])
	if w <= 0 || 1+w+int(nameLen) > len(b) {
		return xmldoc.Node{}, fmt.Errorf("mass: corrupt record")
	}
	off := 1 + w
	n.Name = string(b[off : off+int(nameLen)])
	n.Value = string(b[off+int(nameLen):])
	return n, nil
}
