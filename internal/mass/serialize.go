package mass

import (
	"encoding/xml"
	"fmt"
	"io"

	"vamana/internal/flex"
	"vamana/internal/xmldoc"
)

// SerializeSubtree writes the XML serialization of the node at key (and
// its subtree) to w. Element/attribute structure, text, comments and
// processing instructions round-trip; namespace declarations are emitted
// as xmlns attributes. Serializing the document node emits the whole
// document.
func (s *Store) SerializeSubtree(d DocID, key flex.Key, w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	root, ok, err := s.nodeLocked(d, key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoNode, key)
	}
	ser := &serializer{s: s, d: d, w: w}
	ser.node(root)
	return ser.err
}

type serializer struct {
	s   *Store
	d   DocID
	w   io.Writer
	err error
}

func (z *serializer) printf(format string, args ...any) {
	if z.err != nil {
		return
	}
	_, z.err = fmt.Fprintf(z.w, format, args...)
}

func (z *serializer) node(n xmldoc.Node) {
	if z.err != nil {
		return
	}
	switch n.Kind {
	case xmldoc.KindDocument:
		z.children(n.Key)
	case xmldoc.KindElement:
		z.printf("<%s", n.Name)
		// Attributes and namespace declarations are the leading children
		// in key order.
		content := z.openTagAttrs(n.Key)
		if !content {
			z.printf("/>")
			return
		}
		z.printf(">")
		z.children(n.Key)
		z.printf("</%s>", n.Name)
	case xmldoc.KindText:
		z.escaped(n.Value)
	case xmldoc.KindComment:
		z.printf("<!--%s-->", n.Value)
	case xmldoc.KindPI:
		z.printf("<?%s %s?>", n.Name, n.Value)
	case xmldoc.KindAttribute:
		// A bare attribute serializes as name="value".
		z.printf("%s=%q", n.Name, n.Value)
	}
}

// openTagAttrs emits the element's attributes and reports whether any
// non-attribute content follows.
func (z *serializer) openTagAttrs(key flex.Key) bool {
	content := false
	z.eachChild(key, func(c xmldoc.Node) bool {
		switch c.Kind {
		case xmldoc.KindAttribute:
			z.printf(" %s=%q", c.Name, c.Value)
		case xmldoc.KindNamespace:
			if c.Name == "" {
				z.printf(" xmlns=%q", c.Value)
			} else {
				z.printf(" xmlns:%s=%q", c.Name, c.Value)
			}
		default:
			content = true
			return false
		}
		return true
	})
	return content
}

// children serializes all non-attribute children of key.
func (z *serializer) children(key flex.Key) {
	z.eachChild(key, func(c xmldoc.Node) bool {
		if c.Kind != xmldoc.KindAttribute && c.Kind != xmldoc.KindNamespace {
			z.node(c)
		}
		return z.err == nil
	})
}

// eachChild visits the direct children of key in document order,
// skip-scanning so grandchildren are never touched here.
func (z *serializer) eachChild(key flex.Key, visit func(xmldoc.Node) bool) {
	if z.err != nil {
		return
	}
	c := z.s.clustered.NewCursor()
	hi := clusteredKey(z.d, key.SubtreeUpper())
	seek := clusteredKey(z.d, key.DescLower())
	for {
		if !c.Seek(seek) || !c.InRange(hi) {
			if err := c.Err(); err != nil && z.err == nil {
				z.err = err
			}
			return
		}
		_, fk := splitClusteredKey(c.Key())
		v, err := c.Value()
		if err != nil {
			z.err = err
			return
		}
		n, err := decodeRecord(v)
		if err != nil {
			z.err = err
			return
		}
		n.Key = fk
		if !visit(n) {
			return
		}
		seek = clusteredKey(z.d, fk.SubtreeUpper())
	}
}

func (z *serializer) escaped(s string) {
	if z.err != nil {
		return
	}
	z.err = xml.EscapeText(z.w, []byte(s))
}
