package mass

import (
	"fmt"
	"sync"
	"testing"

	"vamana/internal/flex"
	"vamana/internal/xmark"
)

// TestConcurrentReads runs many goroutines issuing interleaved scans and
// statistics probes against one store. Run with -race to validate the
// locking discipline.
func TestConcurrentReads(t *testing.T) {
	s := openMem(t)
	src := xmark.GenerateString(xmark.Config{Factor: 0.002, Seed: 71})
	d := loadDoc(t, s, "auction", src)

	wantPersons, err := s.CountName(d, "person")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch (g + i) % 3 {
				case 0:
					sc := s.AxisScan(d, flex.Root, AxisDescendant, NodeTest{Type: TestName, Name: "person"})
					n := 0
					for {
						if _, ok := sc.Next(); !ok {
							break
						}
						n++
					}
					if sc.Err() != nil {
						errs <- sc.Err()
						return
					}
					if uint64(n) != wantPersons {
						errs <- fmt.Errorf("goroutine %d: scan saw %d persons, want %d", g, n, wantPersons)
						return
					}
				case 1:
					if got, err := s.CountName(d, "person"); err != nil || got != wantPersons {
						errs <- fmt.Errorf("goroutine %d: count %d (%v)", g, got, err)
						return
					}
				default:
					if _, err := s.TextCount(d, "Yung Flach", ""); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
