package mass

import (
	"encoding/binary"
	"math"
	"strconv"
	"strings"

	"vamana/internal/flex"
	"vamana/internal/govern"
	"vamana/internal/xmldoc"
)

// Numeric value index support. Text and attribute values that parse as
// numbers are additionally indexed under an order-preserving float64
// encoding, so range predicates ([price > 100]) become index range scans
// and range cardinalities become counted-B+-tree probes — the "range
// predicates" the paper lists among MASS-supported predicate forms.
//
// Key layout: tag 'N' (text) / 'M' (attribute) ++ enc(float64) ++ docID
// ++ flexKey. enc flips the sign bit for non-negative values and all bits
// for negative ones, making byte order equal numeric order.

const (
	numTagText = 'N'
	numTagAttr = 'M'
)

// encodeFloat renders f so that byte comparison equals numeric comparison
// (NaN is never indexed).
func encodeFloat(f float64) [8]byte {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits // negative: flip everything
	} else {
		bits |= 1 << 63 // non-negative: set the sign bit
	}
	var out [8]byte
	binary.BigEndian.PutUint64(out[:], bits)
	return out
}

// decodeFloat inverts encodeFloat.
func decodeFloat(b [8]byte) float64 {
	bits := binary.BigEndian.Uint64(b[:])
	if bits&(1<<63) != 0 {
		bits &^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits)
}

// numericValue parses a value per XPath number() semantics, reporting
// whether it is an indexable number.
func numericValue(s string) (float64, bool) {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || math.IsNaN(f) {
		return 0, false
	}
	return f, true
}

func numKey(tag byte, f float64, d DocID, k flex.Key) []byte {
	enc := encodeFloat(f)
	out := make([]byte, 0, 1+8+4+len(k))
	out = append(out, tag)
	out = append(out, enc[:]...)
	var db [4]byte
	binary.BigEndian.PutUint32(db[:], uint32(d))
	out = append(out, db[:]...)
	out = append(out, k...)
	return out
}

// numRange bounds the numeric index to values in [lo, hi] / (lo, hi)
// depending on inclusivity, within doc d; ±Inf make a bound unbounded.
//
// Bounds exploit the key layout: within one (value, doc) group, every
// entry's key is tag ++ enc ++ doc ++ flexKey. "Just past all entries of
// (f, d)" is tag ++ enc(f) ++ (d+1), because no flex key sorts at or above
// the next doc id prefix.
func numRange(tag byte, d DocID, lo float64, loIncl bool, hi float64, hiIncl bool) (lob, hib []byte) {
	build := func(f float64, pastAll bool) []byte {
		enc := encodeFloat(f)
		out := make([]byte, 0, 1+8+4)
		out = append(out, tag)
		out = append(out, enc[:]...)
		var db [4]byte
		if pastAll {
			binary.BigEndian.PutUint32(db[:], uint32(d)+1)
		} else {
			binary.BigEndian.PutUint32(db[:], uint32(d))
		}
		return append(out, db[:]...)
	}
	if loIncl {
		lob = build(lo, false)
	} else {
		lob = build(lo, true)
	}
	if hiIncl {
		hib = build(hi, true)
	} else {
		hib = build(hi, false)
	}
	return lob, hib
}

// putNumericEntries indexes a value's numeric interpretation, if any.
func (s *Store) putNumericEntries(kind xmldoc.Kind, d DocID, k flex.Key, v string) error {
	f, ok := numericValue(v)
	if !ok {
		return nil
	}
	tag := byte(numTagText)
	if kind == xmldoc.KindAttribute {
		tag = numTagAttr
	}
	_, err := s.values.Put(numKey(tag, f, d, k), nil)
	return err
}

func (s *Store) deleteNumericEntries(kind xmldoc.Kind, d DocID, k flex.Key, v string) {
	f, ok := numericValue(v)
	if !ok {
		return
	}
	tag := byte(numTagText)
	if kind == xmldoc.KindAttribute {
		tag = numTagAttr
	}
	s.values.Delete(numKey(tag, f, d, k))
}

// NumericRangeCount returns the number of text nodes in d whose numeric
// value lies in the given range (bounds per loIncl/hiIncl; use -Inf/+Inf
// for open ends). One counted-index probe.
func (s *Store) NumericRangeCount(d DocID, lo float64, loIncl bool, hi float64, hiIncl bool) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lob, hib := numRange(numTagText, d, lo, loIncl, hi, hiIncl)
	return s.values.Count(lob, hib)
}

// NumericRangeScan streams the text nodes of d whose numeric value lies in
// the range, restricted to ctx's subtree, ordered by numeric value. This
// backs the optimizer's range-predicate rewrite.
func (s *Store) NumericRangeScan(d DocID, ctx flex.Key, lo float64, loIncl bool, hi float64, hiIncl bool) *Scan {
	return s.NumericRangeScanLim(d, ctx, lo, loIncl, hi, hiIncl, nil)
}

// NumericRangeScanLim is NumericRangeScan under query governance: lim
// (nil = ungoverned) is ticked per index entry and charged for every page
// read and record decode the scan causes.
func (s *Store) NumericRangeScanLim(d DocID, ctx flex.Key, lo float64, loIncl bool, hi float64, hiIncl bool, lim *govern.Limiter) *Scan {
	if ctx == "" {
		ctx = flex.Root
	}
	lob, hib := numRange(numTagText, d, lo, loIncl, hi, hiIncl)
	inner := s.indexScan(s.values, lob, hib, false, lim, func(k []byte) (xmldoc.Node, bool) {
		fk := flex.Key(k[1+8+4:])
		if !(fk == ctx || ctx.IsAncestorOf(fk)) {
			return xmldoc.Node{}, false
		}
		return xmldoc.Node{Key: fk, Kind: xmldoc.KindText}, true
	})
	return s.materializeValues(d, inner, lim)
}
