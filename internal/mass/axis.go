package mass

import (
	"fmt"

	"vamana/internal/flex"
	"vamana/internal/xmldoc"
)

// Axis identifies one of the 13 XPath axes, plus VAMANA's value:: pseudo
// axis introduced by the optimizer's value-index rewrite (paper §VI-C.2).
type Axis uint8

const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisFollowing
	AxisFollowingSibling
	AxisPreceding
	AxisPrecedingSibling
	AxisSelf
	AxisAttribute
	AxisNamespace
	// AxisValue is VAMANA's internal pseudo axis: "value::'literal'" scans
	// the value index for nodes whose string value equals the literal,
	// within the context subtree. It is how value-based queries are
	// "translated into a location step" (paper §VI-C.2).
	AxisValue
	// AxisAttrValue is the attribute-flavored value pseudo axis: it scans
	// the value index for attribute nodes whose value equals the literal
	// (NodeTest.Name), optionally restricted to one attribute name
	// (NodeTest.Attr). An extension beyond the paper's text() rewrite,
	// enabled by the same one-probe value index.
	AxisAttrValue
	// AxisNumRange is the numeric-range pseudo axis: it scans the numeric
	// value index for text nodes whose number() lies in a range. The range
	// bounds live on the plan step (plan.Step.Num*), not in the node test;
	// the execution engine dispatches this axis to
	// Store.NumericRangeScan directly.
	AxisNumRange
)

// AxisCount is the number of axes (real and pseudo), for sizing per-axis
// counter arrays in instrumentation code.
const AxisCount = int(AxisNumRange) + 1

var axisNames = [...]string{
	AxisChild:            "child",
	AxisDescendant:       "descendant",
	AxisDescendantOrSelf: "descendant-or-self",
	AxisParent:           "parent",
	AxisAncestor:         "ancestor",
	AxisAncestorOrSelf:   "ancestor-or-self",
	AxisFollowing:        "following",
	AxisFollowingSibling: "following-sibling",
	AxisPreceding:        "preceding",
	AxisPrecedingSibling: "preceding-sibling",
	AxisSelf:             "self",
	AxisAttribute:        "attribute",
	AxisNamespace:        "namespace",
	AxisValue:            "value",
	AxisAttrValue:        "attr-value",
	AxisNumRange:         "num-range",
}

// String returns the XPath spelling of the axis.
func (a Axis) String() string {
	if int(a) < len(axisNames) {
		return axisNames[a]
	}
	return fmt.Sprintf("axis(%d)", uint8(a))
}

// ParseAxis resolves an XPath axis name.
func ParseAxis(s string) (Axis, bool) {
	for a, n := range axisNames {
		if n == s {
			return Axis(a), true
		}
	}
	return 0, false
}

// Reverse reports whether the axis is a reverse axis (nodes are delivered
// in reverse document order, per XPath 1.0 §2.4).
func (a Axis) Reverse() bool {
	switch a {
	case AxisAncestor, AxisAncestorOrSelf, AxisPreceding, AxisPrecedingSibling, AxisParent:
		return true
	}
	return false
}

// Principal returns the axis's principal node kind (XPath 1.0 §2.3): a
// name or wildcard test selects nodes of this kind.
func (a Axis) Principal() xmldoc.Kind {
	switch a {
	case AxisAttribute, AxisAttrValue:
		return xmldoc.KindAttribute
	case AxisNamespace:
		return xmldoc.KindNamespace
	default:
		return xmldoc.KindElement
	}
}

// TestType classifies an XPath node test.
type TestType uint8

const (
	// TestName matches principal-kind nodes with a specific name.
	TestName TestType = iota
	// TestWildcard ("*") matches every principal-kind node.
	TestWildcard
	// TestText ("text()") matches text nodes.
	TestText
	// TestNode ("node()") matches every node on the axis.
	TestNode
	// TestComment ("comment()") matches comment nodes.
	TestComment
	// TestPI ("processing-instruction()") matches PI nodes, optionally
	// with a specific target name.
	TestPI
)

// NodeTest is the node-test part of a location step.
type NodeTest struct {
	Type TestType
	Name string // for TestName and optionally TestPI; the literal for value axes
	// Attr restricts the attr-value pseudo axis to attributes with this
	// name; empty matches any attribute name.
	Attr string
}

// String returns the XPath spelling of the node test.
func (t NodeTest) String() string {
	switch t.Type {
	case TestName:
		return t.Name
	case TestWildcard:
		return "*"
	case TestText:
		return "text()"
	case TestNode:
		return "node()"
	case TestComment:
		return "comment()"
	case TestPI:
		if t.Name != "" {
			return fmt.Sprintf("processing-instruction(%q)", t.Name)
		}
		return "processing-instruction()"
	default:
		return fmt.Sprintf("test(%d)", uint8(t.Type))
	}
}

// Matches reports whether node n satisfies the test on an axis whose
// principal node kind is principal.
func (t NodeTest) Matches(n xmldoc.Node, principal xmldoc.Kind) bool {
	switch t.Type {
	case TestName:
		return n.Kind == principal && n.Name == t.Name
	case TestWildcard:
		return n.Kind == principal
	case TestText:
		return n.Kind == xmldoc.KindText
	case TestComment:
		return n.Kind == xmldoc.KindComment
	case TestPI:
		return n.Kind == xmldoc.KindPI && (t.Name == "" || n.Name == t.Name)
	case TestNode:
		// node() matches everything reachable on the axis. Attribute and
		// namespace nodes are reachable only on their own axes, which is
		// enforced by the axis scans, not here.
		return true
	default:
		return false
	}
}

// Scan iterates the nodes selected by an axis step, lazily, in axis order
// (document order for forward axes, reverse document order for reverse
// axes). It is the unit of MASS's pipelined, index-based access.
type Scan struct {
	next func() (xmldoc.Node, bool, error)
	// sc, when set, replaces next: the scan dispatches straight to the
	// owning Scanner's shape state, avoiding the method-value allocation a
	// func field would cost on every Scanner.
	sc   *Scanner
	err  error
	done bool
}

// Next returns the next node, or ok == false when the scan is exhausted or
// failed (check Err).
func (s *Scan) Next() (xmldoc.Node, bool) {
	if s.done {
		return xmldoc.Node{}, false
	}
	var (
		n   xmldoc.Node
		ok  bool
		err error
	)
	if s.sc != nil {
		n, ok, err = s.sc.nextNode()
	} else {
		n, ok, err = s.next()
	}
	if err != nil {
		s.err = err
		s.done = true
		return xmldoc.Node{}, false
	}
	if !ok {
		s.done = true
		return xmldoc.Node{}, false
	}
	return n, true
}

// NextKeys fills dst with the FLEX keys of the scan's next nodes and
// returns how many it produced: len(dst), unless the scan is exhausted
// or failed first (a short count means exhausted-or-error; once drained,
// further calls return 0). It is the batched pull the execution engine
// uses when only keys matter: forward range shapes advance the
// underlying B+-tree cursor in bulk under a single store-lock
// acquisition per call instead of one per entry. The keys preceding a
// failure are valid and are delivered along with the error.
//
// NextKeys and Next must not be mixed on one binding — their cursor
// protocols differ.
func (s *Scan) NextKeys(dst []flex.Key) (int, error) {
	if s.done {
		return 0, s.err
	}
	var (
		n   int
		err error
	)
	if s.sc != nil {
		n, err = s.sc.nextKeys(dst)
	} else {
		for n < len(dst) {
			node, ok, nerr := s.next()
			if nerr != nil {
				err = nerr
				break
			}
			if !ok {
				break
			}
			dst[n] = node.Key
			n++
		}
	}
	if err != nil {
		s.err, s.done = err, true
		return n, err
	}
	if n < len(dst) {
		s.done = true
	}
	return n, nil
}

// Err returns the first error the scan encountered.
func (s *Scan) Err() error { return s.err }

// emptyScan yields nothing.
func emptyScan() *Scan {
	return &Scan{next: func() (xmldoc.Node, bool, error) { return xmldoc.Node{}, false, nil }}
}

// errScan yields an immediate error.
func errScan(err error) *Scan {
	return &Scan{next: func() (xmldoc.Node, bool, error) { return xmldoc.Node{}, false, err }}
}

// sliceScan yields a fixed slice (used by the small reverse axes).
func sliceScan(nodes []xmldoc.Node) *Scan {
	i := 0
	return &Scan{next: func() (xmldoc.Node, bool, error) {
		if i >= len(nodes) {
			return xmldoc.Node{}, false, nil
		}
		n := nodes[i]
		i++
		return n, true, nil
	}}
}
