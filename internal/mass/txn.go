package mass

import (
	"errors"

	"vamana/internal/btree"
	"vamana/internal/flex"
	"vamana/internal/pager"
	"vamana/internal/xmldoc"
)

// Write transactions. An Update batches any number of mutations into one
// atomic publication: BeginUpdate publishes the current state (so the
// rollback baseline is exactly the last committed version), opens a
// pager-level bracket that buffers every page write, and holds the
// store's writer lock for the transaction's whole span — one writer at a
// time, readers unaffected. Commit publishes the batch as a single new
// pager version; Rollback discards the buffered pages and reloads the
// index trees at their pre-transaction roots, as if nothing happened.
//
// Durability is group-committed: Commit returns the published version
// epoch, and SyncCommitted(epoch) makes it durable with one journal
// flush that covers every transaction committed up to that point —
// concurrent committers coalesce on one fsync instead of paying one
// each.

// ErrTxnDone is returned when a finished Update is used again.
var ErrTxnDone = errors.New("mass: transaction already committed or rolled back")

// Update is an open write transaction. It is not safe for concurrent
// use; the goroutine running the transaction owns it.
type Update struct {
	s       *Store
	roots   map[string]pager.PageID // index tree roots at begin, for rollback
	catRoot pager.PageID
	done    bool
}

// BeginUpdate opens a write transaction. It blocks while another
// transaction or per-operation mutation holds the writer lock. The
// returned Update must be finished with Commit or Rollback.
func (s *Store) BeginUpdate() (*Update, error) {
	if s.ro {
		return nil, ErrReadOnlySnapshot
	}
	s.writer.Lock()
	s.mu.Lock()
	// Publish pending state first: the transaction's rollback baseline
	// must be exactly the committed version readers can already see.
	if err := s.publishLocked(); err != nil {
		s.mu.Unlock()
		s.writer.Unlock()
		return nil, err
	}
	u := &Update{s: s, roots: make(map[string]pager.PageID, 6), catRoot: s.catalog.Root()}
	for name, slot := range s.treeNames() {
		u.roots[name] = (*slot).Root()
	}
	s.pg.BeginUpdate()
	s.inTxn = true // buffered writes leave commitGen alone until Commit
	s.mu.Unlock()
	return u, nil
}

// Commit publishes the transaction's mutations as one new pager version
// and releases the writer lock. It returns the published version epoch —
// pass it to SyncCommitted for group-committed durability. On error the
// transaction is rolled back.
func (u *Update) Commit() (epoch uint64, err error) {
	return u.commit(nil, nil)
}

// CommitWith is Commit plus an atomically-installed snapshot: after the
// new version publishes — but before the new commit generation becomes
// visible through CommitGen — it freezes the just-committed state and
// hands the snapshot to install. A reader that validates a shared
// snapshot against CommitGen therefore never observes a stale window
// around a transaction commit: until the handoff it sees the old commit
// generation (matching the snapshot it already holds, still the latest
// committed state), and by the time the generation advances the new
// snapshot is installed. install runs with the writer lock held and must
// not call back into mutating store operations; swapping a pointer and
// releasing the previous snapshot is fine. If freezing fails the commit
// still succeeds and install is skipped.
//
// prev, when non-nil, is the caller's currently-installed snapshot. If
// it is exactly one commit generation behind and the transaction
// published at most one pager version, the new snapshot adopts prev's
// decoded-node caches for every unchanged page (see snapshotLocked) —
// otherwise prev is ignored and the snapshot starts cold.
func (u *Update) CommitWith(prev *Snapshot, install func(*Snapshot)) (epoch uint64, err error) {
	return u.commit(prev, install)
}

func (u *Update) commit(prev *Snapshot, install func(*Snapshot)) (epoch uint64, err error) {
	if u.done {
		return 0, ErrTxnDone
	}
	u.done = true
	s := u.s
	s.mu.Lock()
	if err := s.publishLocked(); err != nil {
		s.rollbackLocked(u)
		s.mu.Unlock()
		s.writer.Unlock()
		return 0, err
	}
	s.pg.CommitUpdate()
	epoch = s.pg.VersionEpoch()
	s.inTxn = false
	next := s.commitGen.Load() + 1 // commitGen only moves under writer, held here
	var sn *Snapshot
	if install != nil {
		var changed []pager.PageID
		if prev != nil && prev.gen+1 == next {
			switch epoch {
			case prev.epoch:
				// Nothing published (empty transaction): every page is
				// identical, adopt everything.
			case prev.epoch + 1:
				// Exactly this transaction's publish separates the two
				// versions; its page set is the precise delta.
				changed = s.pg.LastCommitPages()
			default:
				prev = nil // intervening commits; delta unknown
			}
		} else {
			prev = nil // prev is not the directly preceding committed state
		}
		sn, _ = s.snapshotLocked(next, prev, changed) // on error: commit stands, no install
	}
	s.mu.Unlock()
	if sn != nil {
		install(sn)
	}
	s.commitGen.Store(next)
	s.writer.Unlock()
	return epoch, nil
}

// Rollback discards every mutation made through the transaction and
// releases the writer lock. Idempotent after Commit/Rollback only in the
// sense that it reports ErrTxnDone.
func (u *Update) Rollback() error {
	if u.done {
		return ErrTxnDone
	}
	u.done = true
	s := u.s
	s.mu.Lock()
	err := s.rollbackLocked(u)
	s.mu.Unlock()
	s.writer.Unlock()
	return err
}

// rollbackLocked discards the pager bracket and reloads the index trees
// at their pre-transaction roots. Statistics epochs bumped by the
// aborted mutations stay bumped — they are monotonic staleness markers,
// and a spurious bump only costs cache refills.
func (s *Store) rollbackLocked(u *Update) error {
	s.inTxn = false
	s.pg.RollbackUpdate()
	for name, slot := range s.treeNames() {
		t, err := btree.Load(s.pg, u.roots[name])
		if err != nil {
			return err
		}
		*slot = t
	}
	cat, err := btree.Load(s.pg, u.catRoot)
	if err != nil {
		return err
	}
	s.catalog = cat
	s.applyCacheBudget(s.cachePages)
	return nil
}

// Transaction mutation methods: the same operations as the store-level
// per-op mutators, bound to the open transaction (which already holds
// the writer lock).

// InsertElement is Store.InsertElement within the transaction.
func (u *Update) InsertElement(d DocID, parent flex.Key, pos int, name string) (flex.Key, error) {
	if u.done {
		return "", ErrTxnDone
	}
	return u.s.insertContent(d, parent, pos, xmldoc.Node{Kind: xmldoc.KindElement, Name: name})
}

// InsertText is Store.InsertText within the transaction.
func (u *Update) InsertText(d DocID, parent flex.Key, pos int, value string) (flex.Key, error) {
	if u.done {
		return "", ErrTxnDone
	}
	return u.s.insertContent(d, parent, pos, xmldoc.Node{Kind: xmldoc.KindText, Value: value})
}

// InsertAttribute is Store.InsertAttribute within the transaction.
func (u *Update) InsertAttribute(d DocID, owner flex.Key, name, value string) (flex.Key, error) {
	if u.done {
		return "", ErrTxnDone
	}
	return u.s.insertAttribute(d, owner, name, value)
}

// UpdateText is Store.UpdateText within the transaction.
func (u *Update) UpdateText(d DocID, key flex.Key, newValue string) error {
	if u.done {
		return ErrTxnDone
	}
	return u.s.updateText(d, key, newValue)
}

// RenameElement is Store.RenameElement within the transaction.
func (u *Update) RenameElement(d DocID, key flex.Key, newName string) error {
	if u.done {
		return ErrTxnDone
	}
	return u.s.renameElement(d, key, newName)
}

// DeleteSubtree is Store.DeleteSubtree within the transaction.
func (u *Update) DeleteSubtree(d DocID, key flex.Key) error {
	if u.done {
		return ErrTxnDone
	}
	return u.s.deleteSubtree(d, key)
}

// SyncCommitted makes every version committed at or before epoch durable
// with at most one journal flush — the group-commit path. Concurrent
// callers coalesce: whoever gets the sync lock first flushes for the
// whole group, and the rest find their epoch already covered. In-memory
// stores have no durability and return immediately.
func (s *Store) SyncCommitted(epoch uint64) error {
	if s.pg.InMemory() {
		return nil
	}
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.syncedEpoch >= epoch {
		return nil // a concurrent committer's flush already covered us
	}
	// The flush will cover everything committed up to now, which may be
	// later than the caller's epoch — record the higher watermark.
	cover := s.pg.VersionEpoch()
	if err := s.pg.Flush(); err != nil {
		return err
	}
	if cover > s.syncedEpoch {
		s.syncedEpoch = cover
	}
	return nil
}
