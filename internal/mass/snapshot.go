package mass

import (
	"errors"
	"sync/atomic"

	"vamana/internal/btree"
	"vamana/internal/pager"
)

// Snapshot support: a Snapshot freezes the store at the latest published
// pager version. It hands out a read-only *Store clone whose seven index
// trees read through an epoch-pinned pager view, so every existing read
// path — scanners, statistics probes, the executor — works against it
// unchanged while the live store keeps mutating. Snapshots are
// refcounted: the creating handle holds one reference and every
// in-flight iterator holds another (via BeginRead/EndRead on the clone),
// so closing a snapshot with readers still streaming defers the release
// until the last of them finishes.

// ErrReadOnlySnapshot is returned by mutating operations on a snapshot's
// read-only store.
var ErrReadOnlySnapshot = errors.New("mass: snapshot is read-only")

// ErrDocumentBusy is returned by DropDocument while open snapshots or
// in-flight iterators could still read the document's pages.
var ErrDocumentBusy = errors.New("mass: document is busy")

// Snapshot is a refcounted frozen view of the store.
type Snapshot struct {
	parent *Store
	view   *pager.View
	st     *Store // read-only clone
	gen    uint64 // commit generation the snapshot captured
	epoch  uint64 // pinned pager version epoch

	refs   atomic.Int64
	closed atomic.Bool
}

// snapshotCacheDivisor scales a snapshot store's node-cache budget
// relative to the live store's: snapshots are many and usually
// short-lived, so each gets a quarter of the configured budget.
const snapshotCacheDivisor = 4

// Snapshot publishes any unpublished state and returns a frozen view of
// it. The returned snapshot must be Closed; until then DropDocument
// refuses and retired page versions its view pins stay retained.
func (s *Store) Snapshot() (*Snapshot, error) {
	if s.ro {
		return nil, errors.New("mass: cannot snapshot a snapshot")
	}
	s.writer.Lock()
	defer s.writer.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.publishLocked(); err != nil {
		return nil, err
	}
	return s.snapshotLocked(s.commitGen.Load(), nil, nil)
}

// snapshotLocked freezes the current published pager version as a
// snapshot capturing commit generation gen. Callers hold writer and mu
// and have already published (Snapshot) or committed (Update.CommitWith)
// the state the view should pin.
//
// When prev is the snapshot of the immediately preceding committed
// version and changed lists every page that differs between the two, the
// new snapshot's trees adopt prev's decoded-node caches for all other
// pages: a snapshot taken per commit starts warm instead of re-reading
// its working set, which is what keeps the auto-snapshot serving path
// near direct-read speed under a busy writer.
func (s *Store) snapshotLocked(gen uint64, prev *Snapshot, changed []pager.PageID) (*Snapshot, error) {
	view := s.pg.PinView()
	ro := &Store{
		pg:         s.pg,
		ro:         true,
		docs:       make(map[string]DocID, len(s.docs)),
		epochs:     make(map[DocID]uint64, len(s.epochs)),
		readers:    make(map[DocID]int),
		nextDoc:    s.nextDoc,
		cachePages: s.cachePages,
	}
	for n, d := range s.docs {
		ro.docs[n] = d
	}
	for d, e := range s.epochs {
		ro.epochs[d] = e
	}
	var err error
	load := func(root pager.PageID) *btree.Tree {
		if err != nil {
			return nil
		}
		var t *btree.Tree
		t, err = btree.Load(view, root)
		return t
	}
	ro.catalog = load(s.catalog.Root())
	ro.clustered = load(s.clustered.Root())
	ro.names = load(s.names.Root())
	ro.attrs = load(s.attrs.Root())
	ro.elems = load(s.elems.Root())
	ro.texts = load(s.texts.Root())
	ro.values = load(s.values.Root())
	if err != nil {
		view.Close()
		return nil, err
	}
	budget := s.cachePages
	if budget <= 0 {
		budget = 6144
	}
	ro.applyCacheBudget(budget / snapshotCacheDivisor)
	if prev != nil {
		var skip func(pager.PageID) bool
		if len(changed) > 0 {
			dirty := make(map[pager.PageID]struct{}, len(changed))
			for _, id := range changed {
				dirty[id] = struct{}{}
			}
			skip = func(id pager.PageID) bool { _, ok := dirty[id]; return ok }
		}
		// prev's trees may be serving in-flight readers; its mu
		// serializes them against the cache walk. Lock order: the live
		// store's mu (held by the caller) is always taken before a
		// snapshot clone's — no snapshot code path takes them the other
		// way around.
		ps := prev.st
		ps.mu.Lock()
		ro.catalog.AdoptCache(ps.catalog, skip)
		ro.clustered.AdoptCache(ps.clustered, skip)
		ro.names.AdoptCache(ps.names, skip)
		ro.attrs.AdoptCache(ps.attrs, skip)
		ro.elems.AdoptCache(ps.elems, skip)
		ro.texts.AdoptCache(ps.texts, skip)
		ro.values.AdoptCache(ps.values, skip)
		ps.mu.Unlock()
	}
	sn := &Snapshot{parent: s, view: view, st: ro, gen: gen, epoch: view.Epoch()}
	sn.refs.Store(1)
	ro.snapOwner = sn
	s.snapCount++
	return sn, nil
}

// Store returns the snapshot's read-only store clone. All read
// operations work; mutations fail with ErrReadOnlySnapshot.
func (sn *Snapshot) Store() *Store { return sn.st }

// Gen returns the commit generation the snapshot captured: the snapshot
// equals the latest committed state exactly while the live store's
// CommitGen has not moved past it.
func (sn *Snapshot) Gen() uint64 { return sn.gen }

// Epoch returns the pinned pager version epoch.
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// Ref acquires an additional reference. Each Ref must be paired with an
// Unref.
func (sn *Snapshot) Ref() { sn.refs.Add(1) }

// TryRef acquires a reference only if the snapshot is still live,
// reporting success. It is the race-safe acquisition path for shared
// snapshots: a handle that just dropped to zero can no longer be
// revived.
func (sn *Snapshot) TryRef() bool {
	for {
		n := sn.refs.Load()
		if n <= 0 {
			return false
		}
		if sn.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Unref releases one reference; the last release unpins the pager view
// (reclaiming retired page versions) and unregisters from the parent.
func (sn *Snapshot) Unref() {
	if sn.refs.Add(-1) != 0 {
		return
	}
	sn.view.Close()
	sn.parent.mu.Lock()
	sn.parent.snapCount--
	sn.parent.mu.Unlock()
}

// Close releases the creating reference. Idempotent. If iterators are
// still streaming from the snapshot, the underlying view stays pinned
// until the last of them finishes.
func (sn *Snapshot) Close() error {
	if sn.closed.CompareAndSwap(false, true) {
		sn.Unref()
	}
	return nil
}

// BeginRead registers an in-flight iterator over document d. On a live
// store it counts readers per document (DropDocument refuses while any
// are live); on a snapshot store it refs the owning snapshot so the view
// outlives a Close with readers still streaming.
func (s *Store) BeginRead(d DocID) {
	if s.snapOwner != nil {
		s.snapOwner.Ref()
		return
	}
	s.mu.Lock()
	s.readers[d]++
	s.mu.Unlock()
}

// EndRead unregisters an iterator previously registered with BeginRead.
func (s *Store) EndRead(d DocID) {
	if s.snapOwner != nil {
		s.snapOwner.Unref()
		return
	}
	s.mu.Lock()
	if s.readers[d] > 0 {
		s.readers[d]--
	}
	s.mu.Unlock()
}

// Readers returns the number of in-flight iterators over d (live stores).
func (s *Store) Readers(d DocID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readers[d]
}

// OpenSnapshots returns the number of open snapshots of this store.
func (s *Store) OpenSnapshots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapCount
}
