package mass

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"vamana/internal/flex"
)

// TestEncodeFloatOrderPreserving: byte order of the encoding equals
// numeric order for arbitrary float pairs.
func TestEncodeFloatOrderPreserving(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea, eb := encodeFloat(a), encodeFloat(b)
		switch {
		case a < b:
			return string(ea[:]) < string(eb[:])
		case a > b:
			return string(ea[:]) > string(eb[:])
		default:
			return ea == eb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Round-trip.
	for _, v := range []float64{0, -0.0, 1, -1, 12.5, -99.25, math.Inf(1), math.Inf(-1), 1e-300, -1e300} {
		if got := decodeFloat(encodeFloat(v)); got != v && !(v == 0 && got == 0) {
			t.Errorf("round trip %g -> %g", v, got)
		}
	}
}

func TestNumericRangeCountAndScan(t *testing.T) {
	s := openMem(t)
	var b []byte
	b = append(b, "<r>"...)
	vals := []string{"5", "10", "10.5", "-3", "100", "42", "notanumber", "  7 ", "10"}
	for _, v := range vals {
		b = append(b, fmt.Sprintf("<x>%s</x>", v)...)
	}
	b = append(b, "</r>"...)
	d := loadDoc(t, s, "doc", string(b))

	cases := []struct {
		lo     float64
		loIncl bool
		hi     float64
		hiIncl bool
		want   uint64
	}{
		{math.Inf(-1), true, math.Inf(1), true, 8}, // all numeric (notanumber excluded)
		{10, true, 10, true, 2},                    // [10,10] -> the two "10"s
		{10, false, math.Inf(1), true, 3},          // >10 -> 10.5, 42, 100
		{0, true, 10, false, 3},                    // [0,10) -> 5, 7, ... wait: 5, 7 -> and? see below
		{-5, true, 0, false, 1},                    // -3
		{1000, true, math.Inf(1), true, 0},
	}
	// [0,10): 5 and 7 only — fix expectation.
	cases[3].want = 2
	for _, c := range cases {
		got, err := s.NumericRangeCount(d, c.lo, c.loIncl, c.hi, c.hiIncl)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("count(lo=%g incl=%v, hi=%g incl=%v) = %d, want %d",
				c.lo, c.loIncl, c.hi, c.hiIncl, got, c.want)
		}
	}
	// Scan returns the text nodes with their values materialized.
	sc := s.NumericRangeScan(d, "", 10, false, math.Inf(1), true)
	var got []string
	for {
		n, ok := sc.Next()
		if !ok {
			break
		}
		got = append(got, n.Value)
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	sort.Strings(got)
	want := []string{"10.5", "100", "42"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
}

func TestNumericIndexMaintainedUnderUpdates(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "doc", `<r><x>50</x></r>`)
	if n, _ := s.NumericRangeCount(d, 0, true, 100, true); n != 1 {
		t.Fatal("setup failed")
	}
	texts := collect(t, s.AxisScan(d, flex.Root, AxisDescendant, NodeTest{Type: TestText}))
	// Numeric -> numeric.
	if err := s.UpdateText(d, texts[0].Key, "500"); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.NumericRangeCount(d, 0, true, 100, true); n != 0 {
		t.Error("old numeric entry survived update")
	}
	if n, _ := s.NumericRangeCount(d, 400, true, 600, true); n != 1 {
		t.Error("new numeric entry missing")
	}
	// Numeric -> non-numeric.
	if err := s.UpdateText(d, texts[0].Key, "n/a"); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.NumericRangeCount(d, math.Inf(-1), true, math.Inf(1), true); n != 0 {
		t.Error("numeric entry survived non-numeric update")
	}
	// Insert + delete.
	r := firstNamed(t, s, d, "r")
	k, err := s.InsertText(d, r, -1, "77")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := s.NumericRangeCount(d, 77, true, 77, true); n != 1 {
		t.Error("inserted numeric text not indexed")
	}
	if err := s.DeleteSubtree(d, k); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.NumericRangeCount(d, 77, true, 77, true); n != 0 {
		t.Error("deleted numeric text still indexed")
	}
}

// TestNumericRangeAgainstBruteForce randomizes values and ranges.
func TestNumericRangeAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var b []byte
	b = append(b, "<r>"...)
	var vals []float64
	for i := 0; i < 300; i++ {
		v := math.Round(rng.Float64()*2000-1000) / 4
		vals = append(vals, v)
		b = append(b, fmt.Sprintf("<x>%g</x>", v)...)
	}
	b = append(b, "</r>"...)
	s := openMem(t)
	d := loadDoc(t, s, "doc", string(b))

	for trial := 0; trial < 200; trial++ {
		lo := rng.Float64()*2000 - 1000
		hi := rng.Float64()*2000 - 1000
		if lo > hi {
			lo, hi = hi, lo
		}
		loIncl, hiIncl := rng.Intn(2) == 0, rng.Intn(2) == 0
		var want uint64
		for _, v := range vals {
			okLo := v > lo || (loIncl && v == lo)
			okHi := v < hi || (hiIncl && v == hi)
			if okLo && okHi {
				want++
			}
		}
		got, err := s.NumericRangeCount(d, lo, loIncl, hi, hiIncl)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: count(%g..%g, %v/%v) = %d, want %d",
				trial, lo, hi, loIncl, hiIncl, got, want)
		}
	}
}
