package mass

import (
	"fmt"

	"vamana/internal/btree"
	"vamana/internal/flex"
	"vamana/internal/govern"
	"vamana/internal/xmldoc"
)

// Scanner holds the reusable state behind an axis scan: the B+-tree cursor,
// the encoded range-key buffers, and the Scan object handed to the caller.
// The execution engine keeps one Scanner per step operator and rebinds it
// to each context tuple, so the per-binding cost of a step is pure index
// work with no allocations (the dominant cost of pipelined evaluation,
// where a non-leaf step opens one scan per context tuple).
//
// A Scanner serves one binding at a time: BindScan invalidates the Scan
// returned by the previous call. Scanners are not safe for concurrent use;
// the Store's internal locking protects the underlying trees, not the
// Scanner's own state.
type Scanner struct {
	store *Store
	d     DocID
	test  NodeTest
	ctx   flex.Key
	shape scanShape

	// Range state (shapeRange, shapeSelfThenRange): a [lo, hi) walk of
	// tree, mapping entries through the accept filter selected by kind.
	// shapeSkip and shapeAttribute reuse lo as seek buffer and hi as the
	// range bound; shapePrevSibWalk reuses lo as the bound and hi as the
	// per-step seek buffer.
	tree       *btree.Tree
	lo, hi     []byte
	reverse    bool
	needsValue bool
	kind       acceptKind
	depth      int      // keep only nodes at this FLEX depth (0 = any)
	skipAnc    flex.Key // drop ancestors of this key ("" = none)
	truncated  bool     // value scans: the probe value itself was truncated
	cur        btree.Cursor
	started    bool

	// Walk state (self, parent, ancestor, preceding-sibling).
	walkKey  flex.Key
	orSelf   bool
	selfDone bool
	done     bool

	bindErr error

	// lim is the owning query's governance limiter (nil = ungoverned):
	// hot loops tick it for amortized cancellation, record decodes charge
	// it, and BindScan installs it on the cursor for page accounting.
	lim *govern.Limiter

	// keyBuf/keyLens are batched-pull scratch: one pull's accepted key
	// bytes accumulate in keyBuf so a single string conversion backs the
	// whole batch (each emitted key is a substring view), instead of one
	// allocation per key.
	keyBuf  []byte
	keyLens []int

	scan Scan
}

// SetLimiter attaches a query-governance limiter to the scanner. It
// applies from the next BindScan on; the executor sets it once per run
// (scanners are pooled across runs, so every run must set it, including
// setting nil for ungoverned runs).
func (sc *Scanner) SetLimiter(l *govern.Limiter) { sc.lim = l }

// scanShape selects the iteration strategy a binding uses.
type scanShape uint8

const (
	shapeEmpty scanShape = iota
	shapeErr
	shapeSelf
	shapeParent
	shapeAncestor
	shapeRange
	shapeSelfThenRange // descendant-or-self: self candidate, then subtree
	shapeSkip          // clustered skip-scan (child/sibling non-name tests)
	shapeAttribute
	shapePrevSibWalk // preceding-sibling without a name test
)

// acceptKind selects the per-entry filter of a range shape.
type acceptKind uint8

const (
	acceptName acceptKind = iota
	acceptWildcard
	acceptText
	acceptNode
	acceptValue
	acceptAttrValue
)

// BindScan points sc at axis::test from context node ctx within document d
// and returns its scan. The returned Scan is owned by sc and is invalidated
// by the next BindScan on the same Scanner. Binding reuses sc's cursor and
// key buffers, so repeated bindings (one per context tuple) allocate
// nothing after the first.
func (s *Store) BindScan(sc *Scanner, d DocID, ctx flex.Key, axis Axis, test NodeTest) *Scan {
	if ctx == "" {
		ctx = flex.Root
	}
	sc.scan.sc = sc
	sc.store, sc.d, sc.test, sc.ctx = s, d, test, ctx
	sc.scan.err, sc.scan.done = nil, false
	sc.started, sc.done, sc.selfDone = false, false, false
	sc.reverse, sc.depth, sc.skipAnc = false, 0, ""
	sc.bindErr = nil

	switch axis {
	case AxisSelf:
		sc.shape = shapeSelf
	case AxisChild:
		if test.Type == TestName || test.Type == TestWildcard {
			sc.setRange(ctx, flex.Sep, ctx, flex.SubtreeSentinel)
			sc.depth = ctx.Depth() + 1
		} else {
			sc.setSkip(ctx, flex.Sep, ctx, flex.SubtreeSentinel)
		}
	case AxisDescendant:
		sc.setRange(ctx, flex.Sep, ctx, flex.SubtreeSentinel)
	case AxisDescendantOrSelf:
		sc.setRange(ctx, flex.Sep, ctx, flex.SubtreeSentinel)
		sc.shape = shapeSelfThenRange
	case AxisParent:
		sc.shape = shapeParent
	case AxisAncestor:
		sc.shape = shapeAncestor
		sc.walkKey, sc.orSelf = ctx.Parent(), false
	case AxisAncestorOrSelf:
		sc.shape = shapeAncestor
		sc.walkKey, sc.orSelf = ctx, true
	case AxisFollowing:
		sc.setRange(ctx, flex.SubtreeSentinel, flex.Root, flex.SubtreeSentinel)
	case AxisFollowingSibling:
		sc.bindFollowingSibling(ctx, test)
	case AxisPreceding:
		// Everything before ctx in document order, minus ancestors.
		sc.setRange(flex.Root, 0, ctx, 0)
		sc.reverse, sc.skipAnc = true, ctx
	case AxisPrecedingSibling:
		sc.bindPrecedingSibling(ctx, test)
	case AxisAttribute:
		sc.shape = shapeAttribute
		sc.lo = append(appendClusteredKey(sc.lo[:0], d, ctx), flex.Sep)
		sc.hi = append(appendClusteredKey(sc.hi[:0], d, ctx), flex.SubtreeSentinel)
		sc.cur.Reset(s.clustered)
	case AxisNamespace:
		// In-scope namespaces need an ancestor walk with prefix shadowing;
		// rare enough to keep on the allocating slow path.
		return s.namespaceScan(d, ctx, test)
	case AxisValue:
		sc.setValueRange(valueTagText, acceptValue, ctx)
	case AxisAttrValue:
		sc.setValueRange(valueTagAttr, acceptAttrValue, ctx)
	default:
		sc.shape = shapeErr
		sc.bindErr = fmt.Errorf("mass: unknown axis %d", axis)
	}
	// Every bind re-targets the cursor (Reset clears its limiter), so the
	// query's limiter is re-installed here, after the shape is chosen.
	sc.cur.SetLimiter(sc.lim)
	return &sc.scan
}

// setRange prepares a range walk over FLEX keys [klo·loExt, khi·hiExt)
// (a 0 extension byte appends nothing), picking the narrowest index for
// the node test.
func (sc *Scanner) setRange(klo flex.Key, loExt byte, khi flex.Key, hiExt byte) {
	s := sc.store
	switch sc.test.Type {
	case TestName:
		sc.tree, sc.kind = s.names, acceptName
		sc.lo = appendNameKey(sc.lo[:0], sc.test.Name, sc.d, klo)
		sc.hi = appendNameKey(sc.hi[:0], sc.test.Name, sc.d, khi)
	case TestWildcard:
		sc.tree, sc.kind = s.elems, acceptWildcard
		sc.lo = appendClusteredKey(sc.lo[:0], sc.d, klo)
		sc.hi = appendClusteredKey(sc.hi[:0], sc.d, khi)
	case TestText:
		sc.tree, sc.kind = s.texts, acceptText
		sc.lo = appendClusteredKey(sc.lo[:0], sc.d, klo)
		sc.hi = appendClusteredKey(sc.hi[:0], sc.d, khi)
	default: // node(), comment(), processing-instruction()
		sc.tree, sc.kind = s.clustered, acceptNode
		sc.lo = appendClusteredKey(sc.lo[:0], sc.d, klo)
		sc.hi = appendClusteredKey(sc.hi[:0], sc.d, khi)
	}
	if loExt != 0 {
		sc.lo = append(sc.lo, loExt)
	}
	if hiExt != 0 {
		sc.hi = append(sc.hi, hiExt)
	}
	sc.needsValue = sc.tree == s.elems || sc.tree == s.clustered || sc.tree == s.values
	sc.cur.Reset(sc.tree)
	sc.shape = shapeRange
}

// setValueRange prepares a value-index walk for entries whose (possibly
// truncated) value equals the probe literal, within ctx's subtree.
func (sc *Scanner) setValueRange(tag byte, kind acceptKind, ctx flex.Key) {
	_, sc.truncated = indexedValue(sc.test.Name)
	sc.lo = appendValueKey(sc.lo[:0], tag, sc.test.Name, sc.d, ctx)
	sc.hi = append(appendValueKey(sc.hi[:0], tag, sc.test.Name, sc.d, ctx), flex.SubtreeSentinel)
	sc.tree, sc.kind, sc.needsValue = sc.store.values, kind, true
	sc.cur.Reset(sc.tree)
	sc.shape = shapeRange
}

// setSkip prepares a clustered skip-scan over [klo·loExt, khi·hiExt): it
// visits only the top-level nodes of the range, seeking past each node's
// whole subtree, which keeps child and sibling iteration proportional to
// the number of children, not descendants.
func (sc *Scanner) setSkip(klo flex.Key, loExt byte, khi flex.Key, hiExt byte) {
	sc.lo = appendClusteredKey(sc.lo[:0], sc.d, klo)
	if loExt != 0 {
		sc.lo = append(sc.lo, loExt)
	}
	sc.hi = appendClusteredKey(sc.hi[:0], sc.d, khi)
	if hiExt != 0 {
		sc.hi = append(sc.hi, hiExt)
	}
	sc.cur.Reset(sc.store.clustered)
	sc.shape = shapeSkip
}

func (sc *Scanner) bindFollowingSibling(ctx flex.Key, test NodeTest) {
	parent := ctx.Parent()
	if parent == "" {
		sc.shape = shapeEmpty // the root has no siblings
		return
	}
	// Attribute and namespace context nodes have no siblings.
	if kind, err := sc.store.kindOf(sc.d, ctx); err != nil {
		sc.shape, sc.bindErr = shapeErr, err
		return
	} else if kind == xmldoc.KindAttribute || kind == xmldoc.KindNamespace {
		sc.shape = shapeEmpty
		return
	}
	if test.Type == TestName || test.Type == TestWildcard {
		sc.setRange(ctx, flex.SubtreeSentinel, parent, flex.SubtreeSentinel)
		sc.depth = ctx.Depth()
		return
	}
	sc.setSkip(ctx, flex.SubtreeSentinel, parent, flex.SubtreeSentinel)
}

func (sc *Scanner) bindPrecedingSibling(ctx flex.Key, test NodeTest) {
	parent := ctx.Parent()
	if parent == "" {
		sc.shape = shapeEmpty
		return
	}
	if kind, err := sc.store.kindOf(sc.d, ctx); err != nil {
		sc.shape, sc.bindErr = shapeErr, err
		return
	} else if kind == xmldoc.KindAttribute || kind == xmldoc.KindNamespace {
		sc.shape = shapeEmpty
		return
	}
	if test.Type == TestName || test.Type == TestWildcard {
		sc.setRange(parent, flex.Sep, ctx, 0)
		sc.reverse, sc.depth = true, ctx.Depth()
		return
	}
	// Clustered walk, one sibling at a time, backwards: the entry just
	// before the current sibling's key is the deepest node of the preceding
	// sibling's subtree (or an attribute of the parent, which terminates
	// the walk). lo bounds the walk; hi doubles as the seek buffer.
	sc.shape = shapePrevSibWalk
	sc.walkKey, sc.depth = ctx, ctx.Depth()
	sc.lo = append(appendClusteredKey(sc.lo[:0], sc.d, parent), flex.Sep)
	sc.cur.Reset(sc.store.clustered)
}

// nextNode dispatches to the bound shape (invoked directly by Scan.Next);
// rebinding swaps the shape state underneath it.
func (sc *Scanner) nextNode() (xmldoc.Node, bool, error) {
	switch sc.shape {
	case shapeEmpty:
		return xmldoc.Node{}, false, nil
	case shapeErr:
		return xmldoc.Node{}, false, sc.bindErr
	case shapeSelf:
		if sc.done {
			return xmldoc.Node{}, false, nil
		}
		sc.done = true
		return sc.evalSelf()
	case shapeSelfThenRange:
		if !sc.selfDone {
			sc.selfDone = true
			n, ok, err := sc.evalSelf()
			if err != nil || ok {
				return n, ok, err
			}
		}
		return sc.nextRange()
	case shapeParent:
		return sc.nextParent()
	case shapeAncestor:
		return sc.nextAncestor()
	case shapeRange:
		return sc.nextRange()
	case shapeSkip:
		return sc.nextSkip()
	case shapeAttribute:
		return sc.nextAttribute()
	case shapePrevSibWalk:
		return sc.nextPrevSib()
	default:
		return xmldoc.Node{}, false, fmt.Errorf("mass: scanner in unknown shape %d", sc.shape)
	}
}

// nextKeys is the batched pull behind Scan.NextKeys: forward range
// shapes walk the cursor in bulk (one lock acquisition and one bulk
// cursor advance per batch, a tight per-leaf loop underneath); every
// other shape falls back to the per-entry walk, which still amortizes
// the executor's virtual-dispatch cost across the batch.
func (sc *Scanner) nextKeys(dst []flex.Key) (int, error) {
	if (sc.shape == shapeRange || sc.shape == shapeSelfThenRange) && !sc.reverse {
		return sc.nextKeysRange(dst)
	}
	n := 0
	for n < len(dst) {
		node, ok, err := sc.nextNode()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		dst[n] = node.Key
		n++
	}
	return n, nil
}

// nextKeysRange bulk-walks a forward [lo, hi) range, filling dst with
// accepted keys. Governance semantics are identical to the per-entry
// walk: the limiter ticks once per index entry examined (preserving the
// 256-tick cancellation cadence), record decodes charge AddRecords
// exactly where accept would, and page reads charge through the cursor's
// limiter at leaf crossings.
func (sc *Scanner) nextKeysRange(dst []flex.Key) (int, error) {
	n := 0
	if sc.shape == shapeSelfThenRange && !sc.selfDone {
		sc.selfDone = true
		node, ok, err := sc.evalSelf()
		if err != nil {
			return 0, err
		}
		if ok {
			dst[0] = node.Key
			n = 1
			if n == len(dst) {
				return n, nil
			}
		}
	}
	if sc.done {
		return n, nil
	}
	s := sc.store
	s.mu.Lock()
	defer s.mu.Unlock()
	if !sc.started {
		sc.started = true
		if !sc.cur.Seek(sc.lo) {
			sc.done = true
			return n, sc.cur.Err()
		}
	}
	// The wildcard filter needs no value (the key suffix alone identifies
	// the element); skipping the fetch avoids touching value cells at all
	// on '*' scans.
	needVal := sc.needsValue && sc.kind != acceptWildcard
	var entryErr error
	var more bool
	if sc.kind == acceptName || sc.kind == acceptWildcard {
		// Filtering runs on byte views and accepted key bytes accumulate
		// in keyBuf; one string conversion per pull then backs every
		// emitted key as a substring — the scan-heavy common case makes
		// one allocation per batch instead of one per key.
		base := n
		sc.keyBuf, sc.keyLens = sc.keyBuf[:0], sc.keyLens[:0]
		more = sc.cur.ScanBatch(sc.hi, needVal, func(k, _ []byte) bool {
			if err := sc.lim.Tick(); err != nil {
				entryErr = err
				return false
			}
			if kb, keep := sc.acceptKeyView(k); keep {
				sc.keyBuf = append(sc.keyBuf, kb...)
				sc.keyLens = append(sc.keyLens, len(kb))
				n++
			}
			return n < len(dst)
		})
		if n > base {
			batch := string(sc.keyBuf)
			off := 0
			for i, l := range sc.keyLens {
				dst[base+i] = flex.Key(batch[off : off+l])
				off += l
			}
		}
	} else {
		// Text, node() and value entries keep the materializing accept
		// path so record decoding (and its governance charging) stays
		// byte-for-byte identical to the per-entry walk.
		more = sc.cur.ScanBatch(sc.hi, needVal, func(k, v []byte) bool {
			if err := sc.lim.Tick(); err != nil {
				entryErr = err
				return false
			}
			node, keep, err := sc.accept(k, v)
			if err != nil {
				entryErr = err
				return false
			}
			if keep {
				dst[n] = node.Key
				n++
			}
			return n < len(dst)
		})
	}
	if entryErr != nil {
		sc.done = true
		return n, entryErr
	}
	if !more {
		sc.done = true
		if err := sc.cur.Err(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// acceptKeyView is accept for batched name/wildcard pulls: identical
// filtering, returning the FLEX-key byte view instead of a materialized
// node — the caller batches the string allocation. Runs with the store
// lock held; the returned view is tree-owned and must be copied before
// the lock is released.
func (sc *Scanner) acceptKeyView(k []byte) ([]byte, bool) {
	var kb []byte
	if sc.kind == acceptName {
		_, kb, _ = splitNameKeyView(k)
	} else {
		kb = clusteredKeySuffix(k)
	}
	if sc.depth > 0 && flex.DepthOf(kb) != sc.depth {
		return nil, false
	}
	if sc.skipAnc != "" && flex.BytesIsAncestorOf(kb, sc.skipAnc) {
		return nil, false
	}
	return kb, true
}

// evalSelf tests the context node itself (self:: and the self half of
// descendant-or-self::).
func (sc *Scanner) evalSelf() (xmldoc.Node, bool, error) {
	s := sc.store
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok, err := s.nodeLockedFor(sc.d, sc.ctx, sc.lim)
	if err != nil || !ok {
		return xmldoc.Node{}, false, err
	}
	// Attribute and namespace nodes are visible to self:: only via node()
	// and (for attributes that are the context) name tests with the element
	// principal do not match them.
	if sc.test.Matches(n, xmldoc.KindElement) && n.Kind != xmldoc.KindAttribute && n.Kind != xmldoc.KindNamespace ||
		(sc.test.Type == TestNode && (n.Kind == xmldoc.KindAttribute || n.Kind == xmldoc.KindNamespace)) {
		return n, true, nil
	}
	return xmldoc.Node{}, false, nil
}

func (sc *Scanner) nextParent() (xmldoc.Node, bool, error) {
	if sc.done {
		return xmldoc.Node{}, false, nil
	}
	sc.done = true
	p := sc.ctx.Parent()
	if p == "" {
		return xmldoc.Node{}, false, nil
	}
	s := sc.store
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok, err := s.nodeLockedFor(sc.d, p, sc.lim)
	if err != nil || !ok {
		return xmldoc.Node{}, false, err
	}
	if sc.test.Matches(n, xmldoc.KindElement) {
		return n, true, nil
	}
	return xmldoc.Node{}, false, nil
}

// nextAncestor yields matching ancestors nearest-first (reverse document
// order, as XPath requires for this reverse axis).
func (sc *Scanner) nextAncestor() (xmldoc.Node, bool, error) {
	s := sc.store
	s.mu.Lock()
	defer s.mu.Unlock()
	for sc.walkKey != "" {
		if err := sc.lim.Tick(); err != nil {
			return xmldoc.Node{}, false, err
		}
		n, ok, err := s.nodeLockedFor(sc.d, sc.walkKey, sc.lim)
		if err != nil {
			return xmldoc.Node{}, false, err
		}
		cur := sc.walkKey
		sc.walkKey = sc.walkKey.Parent()
		if !ok || !sc.test.Matches(n, xmldoc.KindElement) {
			continue
		}
		// An attribute context node is reachable only as "self" (and only
		// via node()); attributes never appear as ancestors.
		if n.Kind == xmldoc.KindAttribute || n.Kind == xmldoc.KindNamespace {
			if sc.orSelf && cur == sc.ctx && sc.test.Type == TestNode {
				return n, true, nil
			}
			continue
		}
		return n, true, nil
	}
	return xmldoc.Node{}, false, nil
}

// nextRange walks tree entries in [lo, hi), mapping each through the
// accept filter. Only trees that store values are ever read for values,
// and values are passed as tree-owned views.
func (sc *Scanner) nextRange() (xmldoc.Node, bool, error) {
	s := sc.store
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := sc.lim.Tick(); err != nil {
			return xmldoc.Node{}, false, err
		}
		var ok bool
		if !sc.started {
			sc.started = true
			if sc.reverse {
				ok = sc.cur.SeekBefore(sc.hi)
			} else {
				ok = sc.cur.Seek(sc.lo)
			}
		} else {
			if sc.reverse {
				ok = sc.cur.Prev()
			} else {
				ok = sc.cur.Next()
			}
		}
		if !ok {
			return xmldoc.Node{}, false, sc.cur.Err()
		}
		if sc.reverse {
			if string(sc.cur.Key()) < string(sc.lo) {
				return xmldoc.Node{}, false, nil
			}
		} else if !sc.cur.InRange(sc.hi) {
			return xmldoc.Node{}, false, nil
		}
		var v []byte
		if sc.needsValue {
			var err error
			if v, err = sc.cur.ValueView(); err != nil {
				return xmldoc.Node{}, false, err
			}
		}
		n, keep, err := sc.accept(sc.cur.Key(), v)
		if err != nil {
			return xmldoc.Node{}, false, err
		}
		if keep {
			return n, true, nil
		}
	}
}

// accept maps one index entry to a node, or rejects it. It runs with the
// store lock held; key and value slices are tree-owned views.
func (sc *Scanner) accept(k, v []byte) (xmldoc.Node, bool, error) {
	switch sc.kind {
	case acceptName:
		// Every entry in the name range carries exactly test.Name, so the
		// emitted node reuses that string; filters run on byte views and
		// the only per-entry allocation is the emitted key itself.
		_, kb, _ := splitNameKeyView(k)
		if sc.depth > 0 && flex.DepthOf(kb) != sc.depth {
			return xmldoc.Node{}, false, nil
		}
		if sc.skipAnc != "" && flex.BytesIsAncestorOf(kb, sc.skipAnc) {
			return xmldoc.Node{}, false, nil
		}
		return xmldoc.Node{Key: flex.Key(kb), Kind: xmldoc.KindElement, Name: sc.test.Name}, true, nil
	case acceptWildcard:
		kb := clusteredKeySuffix(k)
		if sc.depth > 0 && flex.DepthOf(kb) != sc.depth {
			return xmldoc.Node{}, false, nil
		}
		if sc.skipAnc != "" && flex.BytesIsAncestorOf(kb, sc.skipAnc) {
			return xmldoc.Node{}, false, nil
		}
		return xmldoc.Node{Key: flex.Key(kb), Kind: xmldoc.KindElement, Name: string(v)}, true, nil
	case acceptText:
		kb := clusteredKeySuffix(k)
		if sc.depth > 0 && flex.DepthOf(kb) != sc.depth {
			return xmldoc.Node{}, false, nil
		}
		// The texts index stores no content: materialize the value from the
		// clustered record (text nodes cannot be ancestors, so the
		// preceding-axis ancestor filter never applies here).
		fk := flex.Key(kb)
		full, ok, err := sc.store.nodeLockedFor(sc.d, fk, sc.lim)
		if err != nil {
			return xmldoc.Node{}, false, err
		}
		if ok {
			return full, true, nil
		}
		return xmldoc.Node{Key: fk, Kind: xmldoc.KindText}, true, nil
	case acceptNode:
		_, fk := splitClusteredKey(k)
		if err := sc.lim.AddRecords(1); err != nil {
			return xmldoc.Node{}, false, err
		}
		sc.store.recordsDecoded++
		n, err := decodeRecord(v)
		if err != nil {
			return xmldoc.Node{}, false, nil
		}
		n.Key = fk
		if n.Kind == xmldoc.KindAttribute || n.Kind == xmldoc.KindNamespace {
			return xmldoc.Node{}, false, nil
		}
		if sc.depth > 0 && fk.Depth() != sc.depth {
			return xmldoc.Node{}, false, nil
		}
		if sc.skipAnc != "" && fk.IsAncestorOf(sc.skipAnc) {
			return xmldoc.Node{}, false, nil
		}
		if !sc.test.Matches(n, xmldoc.KindElement) {
			return xmldoc.Node{}, false, nil
		}
		return n, true, nil
	case acceptValue:
		_, kb, _ := splitValueKeyView(k)
		fk := flex.Key(kb)
		n := xmldoc.Node{Key: fk, Kind: xmldoc.KindText, Value: sc.test.Name}
		if sc.truncated || (len(v) > 0 && v[0]&valueFlagTruncated != 0) {
			// The key holds only a prefix; verify against the record.
			full, ok, err := sc.store.nodeLockedFor(sc.d, fk, sc.lim)
			if err != nil {
				return xmldoc.Node{}, false, err
			}
			if !ok || full.Value != sc.test.Name {
				return xmldoc.Node{}, false, nil
			}
			n = full
		}
		return n, true, nil
	case acceptAttrValue:
		_, kb, _ := splitValueKeyView(k)
		fk := flex.Key(kb)
		full, ok, err := sc.store.nodeLockedFor(sc.d, fk, sc.lim)
		if err != nil {
			return xmldoc.Node{}, false, err
		}
		if !ok {
			return xmldoc.Node{}, false, nil
		}
		if (sc.truncated || (len(v) > 0 && v[0]&valueFlagTruncated != 0)) && full.Value != sc.test.Name {
			return xmldoc.Node{}, false, nil
		}
		if sc.test.Attr != "" && full.Name != sc.test.Attr {
			return xmldoc.Node{}, false, nil
		}
		return full, true, nil
	default:
		return xmldoc.Node{}, false, fmt.Errorf("mass: unknown accept kind %d", sc.kind)
	}
}

// nextSkip advances the clustered skip-scan: after yielding (or rejecting)
// a node it seeks past the node's whole subtree. lo is the reused seek
// buffer; hi the range bound.
func (sc *Scanner) nextSkip() (xmldoc.Node, bool, error) {
	s := sc.store
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := sc.lim.Tick(); err != nil {
			return xmldoc.Node{}, false, err
		}
		if !sc.cur.Seek(sc.lo) || !sc.cur.InRange(sc.hi) {
			return xmldoc.Node{}, false, sc.cur.Err()
		}
		v, err := sc.cur.ValueView()
		if err != nil {
			return xmldoc.Node{}, false, err
		}
		if err := sc.lim.AddRecords(1); err != nil {
			return xmldoc.Node{}, false, err
		}
		s.recordsDecoded++
		n, err := decodeRecord(v)
		if err != nil {
			return xmldoc.Node{}, false, err
		}
		// Reuse the seek buffer: next time, resume past this node's whole
		// subtree (key ++ sentinel).
		sc.lo = append(append(sc.lo[:0], sc.cur.Key()...), flex.SubtreeSentinel)
		if n.Kind == xmldoc.KindAttribute || n.Kind == xmldoc.KindNamespace {
			continue // not children
		}
		if sc.test.Matches(n, xmldoc.KindElement) {
			n.Key = flex.Key(clusteredKeySuffix(sc.lo[:len(sc.lo)-1]))
			return n, true, nil
		}
	}
}

// nextAttribute yields ctx's attribute nodes. Attribute and namespace
// nodes precede all other child content in document order (an XPath data
// model invariant the loader and the update API maintain), so they form a
// contiguous clustered prefix directly under ctx: scan forward from the
// subtree start and stop at the first non-attribute node.
func (sc *Scanner) nextAttribute() (xmldoc.Node, bool, error) {
	s := sc.store
	s.mu.Lock()
	defer s.mu.Unlock()
	if sc.done {
		return xmldoc.Node{}, false, nil
	}
	for {
		if err := sc.lim.Tick(); err != nil {
			return xmldoc.Node{}, false, err
		}
		var ok bool
		if !sc.started {
			sc.started = true
			ok = sc.cur.Seek(sc.lo)
		} else {
			ok = sc.cur.Next()
		}
		if !ok || !sc.cur.InRange(sc.hi) {
			sc.done = true
			return xmldoc.Node{}, false, sc.cur.Err()
		}
		v, err := sc.cur.ValueView()
		if err != nil {
			return xmldoc.Node{}, false, err
		}
		if err := sc.lim.AddRecords(1); err != nil {
			return xmldoc.Node{}, false, err
		}
		s.recordsDecoded++
		n, err := decodeRecord(v)
		if err != nil {
			return xmldoc.Node{}, false, err
		}
		if n.Kind != xmldoc.KindAttribute && n.Kind != xmldoc.KindNamespace {
			// First content child: no attributes follow it in document
			// order, so the scan is complete.
			sc.done = true
			return xmldoc.Node{}, false, nil
		}
		_, fk := splitClusteredKey(sc.cur.Key())
		n.Key = fk
		if n.Kind == xmldoc.KindAttribute && sc.test.Matches(n, xmldoc.KindAttribute) {
			return n, true, nil
		}
	}
}

// nextPrevSib walks preceding siblings one at a time, backwards: the
// clustered entry just before the current sibling's key is the deepest
// node of the preceding sibling's subtree.
func (sc *Scanner) nextPrevSib() (xmldoc.Node, bool, error) {
	s := sc.store
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := sc.lim.Tick(); err != nil {
			return xmldoc.Node{}, false, err
		}
		sc.hi = appendClusteredKey(sc.hi[:0], sc.d, sc.walkKey)
		if !sc.cur.SeekBefore(sc.hi) {
			return xmldoc.Node{}, false, sc.cur.Err()
		}
		if string(sc.cur.Key()) < string(sc.lo) {
			return xmldoc.Node{}, false, nil
		}
		_, fk := splitClusteredKey(sc.cur.Key())
		sib := fk.AncestorAtDepth(sc.depth)
		if sib == "" {
			return xmldoc.Node{}, false, nil
		}
		n, ok, err := s.nodeLockedFor(sc.d, sib, sc.lim)
		if err != nil || !ok {
			return xmldoc.Node{}, false, err
		}
		sc.walkKey = sib
		if n.Kind == xmldoc.KindAttribute || n.Kind == xmldoc.KindNamespace {
			return xmldoc.Node{}, false, nil // reached the parent's attributes
		}
		if sc.test.Matches(n, xmldoc.KindElement) {
			return n, true, nil
		}
	}
}
