package mass

import (
	"vamana/internal/flex"
)

// The statistics primitives below are what the paper means by "gathering
// accurate statistics about the XML data from the underlying storage
// structure MASS, directly" (§I contribution 2). Each is one or two
// counted-B+-tree range counts: O(log n), no data pages touched, and
// always exact and current — there is no histogram to maintain under
// updates.

// CountName returns the number of elements named name. d == 0 counts
// across every document in the store (database-wide statistics, §I).
func (s *Store) CountName(d DocID, name string) (uint64, error) {
	return s.CountNameWithin(d, name, "")
}

// CountNameWithin restricts CountName to the subtree rooted at ctx
// (inclusive bounds handled by the caller semantics: the count covers
// descendants-or-self of ctx). Empty ctx means the whole document.
func (s *Store) CountNameWithin(d DocID, name string, ctx flex.Key) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.statProbes++
	var lo, hi []byte
	if ctx == "" {
		lo, hi = nameRange(name, d, "", "")
	} else {
		lo, hi = nameRange(name, d, ctx, ctx.SubtreeUpper())
	}
	return s.names.Count(lo, hi)
}

// CountElements returns the number of element nodes in d (ctx == "" for
// the whole document, otherwise the subtree of ctx).
func (s *Store) CountElements(d DocID, ctx flex.Key) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.statProbes++
	klo, khi := subtreeBounds(ctx)
	lo, hi := docKeyRange(d, klo, khi)
	return s.elems.Count(lo, hi)
}

// CountTexts returns the number of text nodes in d (or ctx's subtree).
func (s *Store) CountTexts(d DocID, ctx flex.Key) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.statProbes++
	klo, khi := subtreeBounds(ctx)
	lo, hi := docKeyRange(d, klo, khi)
	return s.texts.Count(lo, hi)
}

// CountNodes returns the total number of stored nodes in d (all kinds,
// including attributes and the document node).
func (s *Store) CountNodes(d DocID) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.statProbes++
	lo, hi := clusteredDocRange(d)
	return s.clustered.Count(lo, hi)
}

// CountAttrName returns the number of attributes named name in d
// (d == 0: all documents).
func (s *Store) CountAttrName(d DocID, name string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.statProbes++
	lo, hi := nameRange(name, d, "", "")
	return s.attrs.Count(lo, hi)
}

// TextCount returns TC(v): the number of text nodes whose value is v, in
// document d (0 = all documents), optionally restricted to ctx's subtree.
// For values longer than the indexed prefix the count is an upper bound
// (the exact set is produced by ValueScan's verification step), which is
// the safe direction for the cost model's output estimates.
func (s *Store) TextCount(d DocID, v string, ctx flex.Key) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.statProbes++
	var lo, hi []byte
	if ctx == "" {
		lo, hi = valueRange(valueTagText, v, d, "", "")
	} else {
		lo, hi = valueRange(valueTagText, v, d, ctx, ctx.SubtreeUpper())
	}
	return s.values.Count(lo, hi)
}

// AttrValueCount is TextCount for attribute values.
func (s *Store) AttrValueCount(d DocID, v string, ctx flex.Key) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.statProbes++
	var lo, hi []byte
	if ctx == "" {
		lo, hi = valueRange(valueTagAttr, v, d, "", "")
	} else {
		lo, hi = valueRange(valueTagAttr, v, d, ctx, ctx.SubtreeUpper())
	}
	return s.values.Count(lo, hi)
}

// TestCount returns COUNT(test): the number of nodes in d satisfying the
// node test, independent of axis — the quantity the paper's cost model
// gathers per step operator (§VI-B item 1). ctx restricts the count to a
// subtree ("or even a specific point within one XML document", §I).
func (s *Store) TestCount(d DocID, test NodeTest, ctx flex.Key) (uint64, error) {
	switch test.Type {
	case TestName:
		return s.CountNameWithin(d, test.Name, ctx)
	case TestWildcard:
		return s.CountElements(d, ctx)
	case TestText:
		return s.CountTexts(d, ctx)
	default:
		// node(), comment(), PI: fall back to the clustered count, an
		// upper bound for the latter two (exactness matters only for the
		// common name/wildcard/text cases the optimizer reasons about).
		s.mu.Lock()
		defer s.mu.Unlock()
		s.statProbes++
		klo, khi := subtreeBounds(ctx)
		lo, hi := docKeyRange(d, klo, khi)
		return s.clustered.Count(lo, hi)
	}
}

// StorageStats reports physical storage statistics ("number of tuples per
// page, number of pages, etc.", §IV-B).
type StorageStats struct {
	Pages     int    // total pages in the pager, all indexes
	Nodes     uint64 // clustered index entries
	Elements  uint64
	Texts     uint64
	InMemory  bool
	Documents int
}

// Stats returns storage statistics for the whole store.
func (s *Store) Stats() (StorageStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st StorageStats
	st.Pages = s.pg.NumPages()
	st.InMemory = s.pg.InMemory()
	st.Documents = len(s.docs)
	var err error
	if st.Nodes, err = s.clustered.Len(); err != nil {
		return st, err
	}
	if st.Elements, err = s.elems.Len(); err != nil {
		return st, err
	}
	if st.Texts, err = s.texts.Len(); err != nil {
		return st, err
	}
	return st, nil
}

// subtreeBounds converts a context key to subtree [lo, hi) FLEX bounds
// (whole document when ctx is empty).
func subtreeBounds(ctx flex.Key) (flex.Key, flex.Key) {
	if ctx == "" {
		return "", ""
	}
	return ctx, ctx.SubtreeUpper()
}
