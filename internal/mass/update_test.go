package mass

import (
	"fmt"
	"strings"
	"testing"

	"vamana/internal/flex"
	"vamana/internal/xmldoc"
)

func firstNamed(t *testing.T, s *Store, d DocID, name string) flex.Key {
	t.Helper()
	sc := s.AxisScan(d, flex.Root, AxisDescendant, NodeTest{Type: TestName, Name: name})
	n, ok := sc.Next()
	if !ok {
		t.Fatalf("no %s element", name)
	}
	return n.Key
}

func childNames(t *testing.T, s *Store, d DocID, parent flex.Key) []string {
	t.Helper()
	var out []string
	sc := s.AxisScan(d, parent, AxisChild, NodeTest{Type: TestNode})
	for {
		n, ok := sc.Next()
		if !ok {
			break
		}
		if n.Kind == xmldoc.KindElement {
			out = append(out, n.Name)
		} else {
			out = append(out, "#"+n.Kind.String())
		}
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	return out
}

func TestInsertElementPositions(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "doc", `<r><a/><b/><c/></r>`)
	r := firstNamed(t, s, d, "r")

	if _, err := s.InsertElement(d, r, 0, "head"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertElement(d, r, -1, "tail"); err != nil {
		t.Fatal(err)
	}
	// Now: head a b c tail; insert between a and b (content position 2).
	if _, err := s.InsertElement(d, r, 2, "mid"); err != nil {
		t.Fatal(err)
	}
	got := childNames(t, s, d, r)
	want := []string{"head", "a", "mid", "b", "c", "tail"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("children = %v, want %v", got, want)
	}
	// Counts reflect the inserts immediately and exactly.
	for _, name := range []string{"head", "mid", "tail"} {
		if n, _ := s.CountName(d, name); n != 1 {
			t.Errorf("CountName(%s) = %d", name, n)
		}
	}
}

// TestDenseInsertion hammers the same gap to prove FLEX keys never run
// out of room and order stays exact — the no-renumbering property.
func TestDenseInsertion(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "doc", `<r><first/><last/></r>`)
	r := firstNamed(t, s, d, "r")
	for i := 0; i < 150; i++ {
		if _, err := s.InsertElement(d, r, 1, fmt.Sprintf("n%03d", i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	got := childNames(t, s, d, r)
	if len(got) != 152 {
		t.Fatalf("children = %d", len(got))
	}
	if got[0] != "first" || got[len(got)-1] != "last" {
		t.Fatalf("bounds disturbed: %v ... %v", got[0], got[len(got)-1])
	}
	// Each insert landed at content position 1, so the later the insert
	// the earlier it appears: n149, n148, ..., n000.
	for i := 0; i < 150; i++ {
		want := fmt.Sprintf("n%03d", 149-i)
		if got[1+i] != want {
			t.Fatalf("child %d = %s, want %s", 1+i, got[1+i], want)
		}
	}
	// All keys remain valid FLEX keys.
	sc := s.AxisScan(d, r, AxisChild, NodeTest{Type: TestWildcard})
	for {
		n, ok := sc.Next()
		if !ok {
			break
		}
		if !n.Key.Valid() {
			t.Fatalf("invalid key generated: %q", n.Key)
		}
	}
}

func TestInsertTextAndTC(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "doc", `<r><a>old</a></r>`)
	a := firstNamed(t, s, d, "a")
	if _, err := s.InsertText(d, a, -1, "fresh value"); err != nil {
		t.Fatal(err)
	}
	if tc, _ := s.TextCount(d, "fresh value", ""); tc != 1 {
		t.Fatalf("TC(fresh value) = %d", tc)
	}
	hits := collect(t, s.ValueScan(d, "", "fresh value"))
	if len(hits) != 1 {
		t.Fatalf("value scan hits = %d", len(hits))
	}
	sv, _ := s.StringValue(d, a)
	if sv != "oldfresh value" {
		t.Fatalf("string value = %q", sv)
	}
}

func TestUpdateText(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "doc", `<r><a>before</a></r>`)
	hits := collect(t, s.ValueScan(d, "", "before"))
	if len(hits) != 1 {
		t.Fatal("setup failed")
	}
	if err := s.UpdateText(d, hits[0].Key, "after"); err != nil {
		t.Fatal(err)
	}
	if tc, _ := s.TextCount(d, "before", ""); tc != 0 {
		t.Errorf("TC(before) = %d after update", tc)
	}
	if tc, _ := s.TextCount(d, "after", ""); tc != 1 {
		t.Errorf("TC(after) = %d", tc)
	}
	n, _, _ := s.Node(d, hits[0].Key)
	if n.Value != "after" {
		t.Errorf("record value = %q", n.Value)
	}
}

func TestUpdateAttributeValue(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "doc", `<r a="x"/>`)
	r := firstNamed(t, s, d, "r")
	attrs := collect(t, s.AxisScan(d, r, AxisAttribute, NodeTest{Type: TestWildcard}))
	if len(attrs) != 1 {
		t.Fatal("setup failed")
	}
	if err := s.UpdateText(d, attrs[0].Key, "y"); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, s.AttrValueScan(d, "", "y")); len(got) != 1 {
		t.Fatalf("attr value scan after update = %d", len(got))
	}
	if got := collect(t, s.AttrValueScan(d, "", "x")); len(got) != 0 {
		t.Fatalf("stale attr value remains: %d", len(got))
	}
}

func TestInsertAttribute(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "doc", `<r id="1"><child/>text</r>`)
	r := firstNamed(t, s, d, "r")
	if _, err := s.InsertAttribute(d, r, "lang", "en"); err != nil {
		t.Fatal(err)
	}
	attrs := collect(t, s.AxisScan(d, r, AxisAttribute, NodeTest{Type: TestWildcard}))
	if len(attrs) != 2 {
		t.Fatalf("attributes = %d, want 2", len(attrs))
	}
	// Document-order invariant: every attribute key precedes the first
	// content child's key.
	kids := collect(t, s.AxisScan(d, r, AxisChild, NodeTest{Type: TestNode}))
	for _, a := range attrs {
		if a.Key >= kids[0].Key {
			t.Fatalf("attribute %q not before content %q", a.Key, kids[0].Key)
		}
	}
	if n, _ := s.CountAttrName(d, "lang"); n != 1 {
		t.Errorf("CountAttrName(lang) = %d", n)
	}
	// Attribute insertion into an element that has no children yet.
	c := kids[0].Key
	if _, err := s.InsertAttribute(d, c, "x", "1"); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, s.AxisScan(d, c, AxisAttribute, NodeTest{Type: TestWildcard})); len(got) != 1 {
		t.Fatalf("child attrs = %d", len(got))
	}
}

func TestRenameElement(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "doc", `<r><old/><old/></r>`)
	k := firstNamed(t, s, d, "old")
	if err := s.RenameElement(d, k, "new"); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.CountName(d, "old"); n != 1 {
		t.Errorf("CountName(old) = %d", n)
	}
	if n, _ := s.CountName(d, "new"); n != 1 {
		t.Errorf("CountName(new) = %d", n)
	}
	// Wildcard scans (elems index) must see the new name too.
	sc := s.AxisScan(d, flex.Root, AxisDescendant, NodeTest{Type: TestWildcard})
	found := false
	for {
		n, ok := sc.Next()
		if !ok {
			break
		}
		if n.Name == "new" {
			found = true
		}
	}
	if !found {
		t.Error("renamed element invisible to wildcard scan")
	}
}

func TestDeleteSubtree(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "doc", personXML)
	persons := collect(t, s.AxisScan(d, flex.Root, AxisDescendant, NodeTest{Type: TestName, Name: "person"}))
	if len(persons) != 2 {
		t.Fatal("setup failed")
	}
	before, _ := s.CountNodes(d)
	if err := s.DeleteSubtree(d, persons[0].Key); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.CountName(d, "person"); n != 1 {
		t.Errorf("persons after delete = %d", n)
	}
	if n, _ := s.CountName(d, "watch"); n != 0 {
		t.Errorf("watches after delete = %d (descendants must go too)", n)
	}
	if tc, _ := s.TextCount(d, "Yung Flach", ""); tc != 0 {
		t.Errorf("TC(Yung Flach) = %d after deleting its person", tc)
	}
	after, _ := s.CountNodes(d)
	if after >= before {
		t.Errorf("node count %d -> %d", before, after)
	}
	// The other person is untouched.
	if _, ok, _ := s.Node(d, persons[1].Key); !ok {
		t.Error("sibling person lost")
	}
	// Deleting the document node is rejected.
	if err := s.DeleteSubtree(d, flex.Root); err == nil {
		t.Error("deleting document node succeeded")
	}
}

func TestUpdateErrors(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "doc", `<r><a>t</a></r>`)
	if _, err := s.InsertElement(d, "a.zz", 0, "x"); err == nil {
		t.Error("insert under missing parent succeeded")
	}
	texts := collect(t, s.AxisScan(d, flex.Root, AxisDescendant, NodeTest{Type: TestText}))
	if _, err := s.InsertElement(d, texts[0].Key, 0, "x"); err == nil {
		t.Error("insert under a text node succeeded")
	}
	r := firstNamed(t, s, d, "r")
	if err := s.UpdateText(d, r, "v"); err == nil {
		t.Error("UpdateText on an element succeeded")
	}
	if err := s.RenameElement(d, texts[0].Key, "x"); err == nil {
		t.Error("RenameElement on a text node succeeded")
	}
	if err := s.DeleteSubtree(d, "a.zz"); err == nil {
		t.Error("deleting a missing node succeeded")
	}
}

// TestStatisticsCurrencyAfterUpdates is the paper's core update claim:
// after arbitrary mutations, statistics probes are exactly right with no
// maintenance step, so cost estimates stay accurate.
func TestStatisticsCurrencyAfterUpdates(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "doc", `<r><zone/></r>`)
	zone := firstNamed(t, s, d, "zone")
	for i := 0; i < 500; i++ {
		k, err := s.InsertElement(d, zone, -1, "item")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.InsertText(d, k, -1, fmt.Sprintf("v%d", i%7)); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := s.CountName(d, "item"); n != 500 {
		t.Fatalf("CountName(item) = %d", n)
	}
	// v0 appears for i = 0, 7, 14, ... -> ceil(500/7) = 72.
	if tc, _ := s.TextCount(d, "v0", ""); tc != 72 {
		t.Fatalf("TC(v0) = %d, want 72", tc)
	}
	// Delete half the items and re-check.
	items := collect(t, s.AxisScan(d, zone, AxisChild, NodeTest{Type: TestName, Name: "item"}))
	for i := 0; i < 250; i++ {
		if err := s.DeleteSubtree(d, items[i].Key); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := s.CountName(d, "item"); n != 250 {
		t.Fatalf("CountName(item) after deletes = %d", n)
	}
	var wantTC uint64
	for i := 250; i < 500; i++ {
		if i%7 == 0 {
			wantTC++
		}
	}
	if tc, _ := s.TextCount(d, "v0", ""); tc != wantTC {
		t.Fatalf("TC(v0) after deletes = %d, want %d", tc, wantTC)
	}
}
