package mass

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"vamana/internal/flex"
)

const snapTestDoc = `<lib><book id="1"><title>A</title></book><book id="2"><title>B</title></book></lib>`

func openSnapStore(t *testing.T, path string) *Store {
	t.Helper()
	s, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	if path == "" {
		t.Cleanup(func() { s.Close() })
	}
	return s
}

func loadSnapDoc(t *testing.T, s *Store, name string) DocID {
	t.Helper()
	d, err := s.LoadDocument(name, strings.NewReader(snapTestDoc))
	if err != nil {
		t.Fatalf("load document: %v", err)
	}
	return d
}

// TestStoreSnapshotIsolation: a snapshot taken before a mutation keeps
// serving the pre-mutation bytes; one taken after sees the mutation.
func TestStoreSnapshotIsolation(t *testing.T) {
	for _, mode := range []string{"memory", "file"} {
		t.Run(mode, func(t *testing.T) {
			path := ""
			if mode == "file" {
				path = filepath.Join(t.TempDir(), "snap.vamana")
			}
			s := openSnapStore(t, path)
			if path != "" {
				defer s.Close()
			}
			d := loadSnapDoc(t, s, "lib")
			before := serialize(t, s, d, flex.Root)

			sn1, err := s.Snapshot()
			if err != nil {
				t.Fatalf("snapshot 1: %v", err)
			}
			defer sn1.Close()

			// Mutate through the live store.
			k, err := s.InsertElement(d, flex.Root.Child(flex.Ordinal(0)), -1, "appendix")
			if err != nil {
				t.Fatalf("insert: %v", err)
			}
			if _, err := s.InsertText(d, k, -1, "new content"); err != nil {
				t.Fatalf("insert text: %v", err)
			}
			after := serialize(t, s, d, flex.Root)
			if before == after {
				t.Fatal("mutation did not change the serialization")
			}

			sn2, err := s.Snapshot()
			if err != nil {
				t.Fatalf("snapshot 2: %v", err)
			}
			defer sn2.Close()

			if got := serialize(t, sn1.Store(), d, flex.Root); got != before {
				t.Fatalf("snapshot 1 drifted:\n got %q\nwant %q", got, before)
			}
			if got := serialize(t, sn2.Store(), d, flex.Root); got != after {
				t.Fatalf("snapshot 2 wrong:\n got %q\nwant %q", got, after)
			}
			// Re-reads are stable.
			if got := serialize(t, sn1.Store(), d, flex.Root); got != before {
				t.Fatalf("snapshot 1 unstable on re-read")
			}
		})
	}
}

// TestSnapshotReadOnly: every mutator on a snapshot store fails typed.
func TestSnapshotReadOnly(t *testing.T) {
	s := openSnapStore(t, "")
	d := loadSnapDoc(t, s, "lib")
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	defer sn.Close()
	ro := sn.Store()
	if _, err := ro.InsertElement(d, flex.Root, -1, "x"); !errors.Is(err, ErrReadOnlySnapshot) {
		t.Fatalf("InsertElement: %v", err)
	}
	if err := ro.DeleteSubtree(d, flex.Root.Child(flex.Ordinal(0))); !errors.Is(err, ErrReadOnlySnapshot) {
		t.Fatalf("DeleteSubtree: %v", err)
	}
	if _, err := ro.LoadDocument("other", strings.NewReader("<a/>")); !errors.Is(err, ErrReadOnlySnapshot) {
		t.Fatalf("LoadDocument: %v", err)
	}
	if err := ro.DropDocument("lib"); !errors.Is(err, ErrReadOnlySnapshot) {
		t.Fatalf("DropDocument: %v", err)
	}
	if err := ro.Flush(); !errors.Is(err, ErrReadOnlySnapshot) {
		t.Fatalf("Flush: %v", err)
	}
	if _, err := ro.Snapshot(); err == nil {
		t.Fatal("snapshot of a snapshot must fail")
	}
}

// TestDropDocumentBusy: open snapshots and registered readers block
// DropDocument with the typed error; after release it succeeds.
func TestDropDocumentBusy(t *testing.T) {
	s := openSnapStore(t, "")
	d := loadSnapDoc(t, s, "lib")

	sn, err := s.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := s.DropDocument("lib"); !errors.Is(err, ErrDocumentBusy) {
		t.Fatalf("drop with open snapshot: %v, want ErrDocumentBusy", err)
	}
	sn.Close()

	s.BeginRead(d)
	if err := s.DropDocument("lib"); !errors.Is(err, ErrDocumentBusy) {
		t.Fatalf("drop with reader: %v, want ErrDocumentBusy", err)
	}
	s.EndRead(d)

	if err := s.DropDocument("lib"); err != nil {
		t.Fatalf("drop after release: %v", err)
	}
}

// TestSnapshotRefsDeferRelease: closing a snapshot with a reader still
// registered keeps the view pinned until EndRead.
func TestSnapshotRefsDeferRelease(t *testing.T) {
	s := openSnapStore(t, "")
	d := loadSnapDoc(t, s, "lib")
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	before := serialize(t, sn.Store(), d, flex.Root)

	sn.Store().BeginRead(d) // iterator in flight
	sn.Close()              // user handle closed first
	if got := s.OpenSnapshots(); got != 1 {
		t.Fatalf("snapshot released with reader in flight: open=%d", got)
	}
	// The reader can still stream the frozen state.
	if err := s.DeleteSubtree(d, flex.Root.Child(flex.Ordinal(0))); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if got := serialize(t, sn.Store(), d, flex.Root); got != before {
		t.Fatalf("frozen state drifted after close+mutation")
	}
	sn.Store().EndRead(d)
	if got := s.OpenSnapshots(); got != 0 {
		t.Fatalf("snapshot not released after last reader: open=%d", got)
	}
}

// TestUpdateTxnAtomicCommitAndRollback: a transaction's mutations are
// invisible to snapshots until Commit; Rollback restores the exact
// pre-transaction state.
func TestUpdateTxnAtomicCommitAndRollback(t *testing.T) {
	for _, mode := range []string{"memory", "file"} {
		t.Run(mode, func(t *testing.T) {
			path := ""
			if mode == "file" {
				path = filepath.Join(t.TempDir(), "txn.vamana")
			}
			s := openSnapStore(t, path)
			if path != "" {
				defer s.Close()
			}
			d := loadSnapDoc(t, s, "lib")
			base := serialize(t, s, d, flex.Root)
			root := flex.Root.Child(flex.Ordinal(0))

			// Rolled-back transaction: no trace remains.
			u, err := s.BeginUpdate()
			if err != nil {
				t.Fatalf("begin: %v", err)
			}
			if _, err := u.InsertElement(d, root, -1, "junk"); err != nil {
				t.Fatalf("txn insert: %v", err)
			}
			if err := u.DeleteSubtree(d, root.Child(flex.Ordinal(0))); err != nil {
				t.Fatalf("txn delete: %v", err)
			}
			if err := u.Rollback(); err != nil {
				t.Fatalf("rollback: %v", err)
			}
			if got := serialize(t, s, d, flex.Root); got != base {
				t.Fatalf("rollback left changes:\n got %q\nwant %q", got, base)
			}

			// Committed transaction: all or nothing, one published version.
			u, err = s.BeginUpdate()
			if err != nil {
				t.Fatalf("begin 2: %v", err)
			}
			k, err := u.InsertElement(d, root, -1, "chapter")
			if err != nil {
				t.Fatalf("txn insert 2: %v", err)
			}
			if _, err := u.InsertText(d, k, -1, "body"); err != nil {
				t.Fatalf("txn text: %v", err)
			}
			if err := u.RenameElement(d, k, "section"); err != nil {
				t.Fatalf("txn rename: %v", err)
			}
			epoch, err := u.Commit()
			if err != nil {
				t.Fatalf("commit: %v", err)
			}
			if err := s.SyncCommitted(epoch); err != nil {
				t.Fatalf("sync: %v", err)
			}
			got := serialize(t, s, d, flex.Root)
			if got == base || !strings.Contains(got, "<section>body</section>") {
				t.Fatalf("commit lost changes: %q", got)
			}
			// Double-finish is typed.
			if _, err := u.Commit(); !errors.Is(err, ErrTxnDone) {
				t.Fatalf("second commit: %v", err)
			}
			if err := u.Rollback(); !errors.Is(err, ErrTxnDone) {
				t.Fatalf("rollback after commit: %v", err)
			}

			// Reopen file-backed stores: the committed state survives.
			if path != "" {
				if err := s.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}
				s2, err := Open(Options{Path: path})
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				defer s2.Close()
				d2, ok := s2.DocID("lib")
				if !ok {
					t.Fatal("document lost on reopen")
				}
				if got2 := serialize(t, s2, d2, flex.Root); got2 != got {
					t.Fatalf("reopen state differs:\n got %q\nwant %q", got2, got)
				}
			}
		})
	}
}

// TestDocumentsSortedOrder: the catalog listing is sorted, not map order.
func TestDocumentsSortedOrder(t *testing.T) {
	s := openSnapStore(t, "")
	for _, n := range []string{"zeta", "alpha", "mid", "beta"} {
		if _, err := s.LoadDocument(n, strings.NewReader("<r/>")); err != nil {
			t.Fatalf("load %s: %v", n, err)
		}
	}
	got := s.Documents()
	want := []string{"alpha", "beta", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("Documents() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Documents() = %v, want %v", got, want)
		}
	}
}

// TestGroupCommitCoalesces: a flush that covers a later epoch satisfies
// earlier waiters without another journal commit.
func TestGroupCommitCoalesces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.vamana")
	s := openSnapStore(t, path)
	defer s.Close()
	d := loadSnapDoc(t, s, "lib")
	root := flex.Root.Child(flex.Ordinal(0))

	var epochs []uint64
	for i := 0; i < 3; i++ {
		u, err := s.BeginUpdate()
		if err != nil {
			t.Fatalf("begin %d: %v", i, err)
		}
		if _, err := u.InsertElement(d, root, -1, "note"); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		e, err := u.Commit()
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		epochs = append(epochs, e)
	}
	before := s.Metrics().Pager.Commits
	// One sync at the newest epoch covers all three.
	if err := s.SyncCommitted(epochs[2]); err != nil {
		t.Fatalf("sync: %v", err)
	}
	mid := s.Metrics().Pager.Commits
	if mid != before+1 {
		t.Fatalf("sync cost %d journal commits, want 1", mid-before)
	}
	for _, e := range epochs {
		if err := s.SyncCommitted(e); err != nil {
			t.Fatalf("covered sync: %v", err)
		}
	}
	if after := s.Metrics().Pager.Commits; after != mid {
		t.Fatalf("covered syncs re-flushed: %d -> %d", mid, after)
	}
}
