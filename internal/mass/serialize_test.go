package mass

import (
	"strings"
	"testing"

	"vamana/internal/flex"
	"vamana/internal/xmldoc"
)

func serialize(t *testing.T, s *Store, d DocID, key flex.Key) string {
	t.Helper()
	var b strings.Builder
	if err := s.SerializeSubtree(d, key, &b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestSerializeRoundTrip(t *testing.T) {
	src := `<site><person id="p1"><name>Yung Flach</name><note><!--hi--><?pi data?></note><empty/></person></site>`
	s := openMem(t)
	d := loadDoc(t, s, "doc", src)
	out := serialize(t, s, d, flex.Root)

	// Re-shred the output and compare the node streams structurally.
	var orig, round []xmldoc.Node
	if err := xmldoc.Parse(strings.NewReader(src), func(n xmldoc.Node) error {
		orig = append(orig, n)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := xmldoc.Parse(strings.NewReader(out), func(n xmldoc.Node) error {
		round = append(round, n)
		return nil
	}); err != nil {
		t.Fatalf("serialized output is not well-formed: %v\n%s", err, out)
	}
	if len(orig) != len(round) {
		t.Fatalf("node count %d -> %d\n%s", len(orig), len(round), out)
	}
	for i := range orig {
		if orig[i].Kind != round[i].Kind || orig[i].Name != round[i].Name || orig[i].Value != round[i].Value {
			t.Fatalf("node %d: %+v vs %+v", i, orig[i], round[i])
		}
	}
}

func TestSerializeSubtreeOnly(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "doc", `<r><a><x>1</x></a><b/></r>`)
	a := firstNamed(t, s, d, "a")
	out := serialize(t, s, d, a)
	if out != "<a><x>1</x></a>" {
		t.Fatalf("subtree = %q", out)
	}
}

func TestSerializeEscaping(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "doc", `<r>a &lt; b &amp; c</r>`)
	out := serialize(t, s, d, flex.Root)
	if !strings.Contains(out, "a &lt; b &amp; c") {
		t.Fatalf("escaping lost: %q", out)
	}
}

func TestSerializeAfterUpdates(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "doc", `<r><a/></r>`)
	r := firstNamed(t, s, d, "r")
	a := firstNamed(t, s, d, "a")
	if _, err := s.InsertElement(d, r, 0, "pre"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertAttribute(d, a, "k", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertText(d, a, -1, "body"); err != nil {
		t.Fatal(err)
	}
	out := serialize(t, s, d, flex.Root)
	if out != `<r><pre/><a k="v">body</a></r>` {
		t.Fatalf("serialized = %q", out)
	}
}
