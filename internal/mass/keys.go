package mass

import (
	"encoding/binary"

	"vamana/internal/flex"
)

// DocID identifies a document within a Store. Documents are numbered from
// 1; 0 is invalid.
type DocID uint32

// Composite index key layouts. All integers are big-endian so byte order
// equals numeric order, and FLEX keys appear last so every range of
// interest (per name, per document, per subtree) is contiguous.
//
//	clustered: docID(4) ++ flexKey            -> node record
//	names:     name ++ 0x00 ++ docID ++ key   -> nil          (elements)
//	attrs:     name ++ 0x00 ++ docID ++ key   -> nil          (attributes)
//	elems:     docID ++ flexKey               -> element name
//	texts:     docID ++ flexKey               -> nil          (text nodes)
//	values:    tag(1) ++ val ++ 0x00 ++ docID ++ key -> flags (text 'T' / attr 'A')
//
// The 0x00 separator is safe because XML names and character data cannot
// contain NUL.

const (
	valueTagText = 'T'
	valueTagAttr = 'A'
)

// maxIndexedValue caps the number of value bytes embedded in a values-index
// key. Longer values are truncated in the key and flagged, so exact-match
// scans verify against the clustered record and counts become upper bounds
// (which is the direction the cost model needs).
const maxIndexedValue = 256

// valueFlagTruncated marks a values-index entry whose key holds only a
// prefix of the node's value.
const valueFlagTruncated = 0x01

// appendClusteredKey encodes a clustered-index key into dst's spare
// capacity. The append-into-scratch variants below let hot scan loops
// reuse one buffer per cursor instead of allocating per probe.
func appendClusteredKey(dst []byte, d DocID, k flex.Key) []byte {
	var db [4]byte
	binary.BigEndian.PutUint32(db[:], uint32(d))
	dst = append(dst, db[:]...)
	return append(dst, k...)
}

func clusteredKey(d DocID, k flex.Key) []byte {
	return appendClusteredKey(make([]byte, 0, 4+len(k)), d, k)
}

// clusteredDocRange returns the key range holding every node of d.
func clusteredDocRange(d DocID) (lo, hi []byte) {
	lo = make([]byte, 4)
	binary.BigEndian.PutUint32(lo, uint32(d))
	hi = make([]byte, 4)
	binary.BigEndian.PutUint32(hi, uint32(d)+1)
	return lo, hi
}

func splitClusteredKey(b []byte) (DocID, flex.Key) {
	return DocID(binary.BigEndian.Uint32(b)), flex.Key(b[4:])
}

// clusteredKeySuffix returns the FLEX-key bytes of a clustered/doc-major
// entry as a view into b, for zero-allocation scan filtering.
func clusteredKeySuffix(b []byte) []byte { return b[4:] }

func appendNameKey(dst []byte, name string, d DocID, k flex.Key) []byte {
	dst = append(dst, name...)
	dst = append(dst, 0)
	var db [4]byte
	binary.BigEndian.PutUint32(db[:], uint32(d))
	dst = append(dst, db[:]...)
	return append(dst, k...)
}

func nameKey(name string, d DocID, k flex.Key) []byte {
	return appendNameKey(make([]byte, 0, len(name)+1+4+len(k)), name, d, k)
}

// nameRange returns the range of nameKey entries for name within doc d
// restricted to FLEX keys in [klo, khi). Empty klo/khi mean the whole
// document; d == 0 means all documents (whole-database statistics).
func nameRange(name string, d DocID, klo, khi flex.Key) (lo, hi []byte) {
	if d == 0 {
		lo = append(append([]byte{}, name...), 0)
		hi = append(append([]byte{}, name...), 1)
		return lo, hi
	}
	if klo == "" {
		klo = flex.Root
	}
	if khi == "" {
		khi = flex.Root.SubtreeUpper()
	}
	return nameKey(name, d, klo), nameKey(name, d, khi)
}

func splitNameKey(b []byte) (name string, d DocID, k flex.Key) {
	nb, kb, d := splitNameKeyView(b)
	return string(nb), d, flex.Key(kb)
}

// splitNameKeyView is splitNameKey without materializing strings: the
// returned slices alias b and are only valid while the source cursor is
// positioned on the entry. Scan filters use it to reject entries with
// zero allocations.
func splitNameKeyView(b []byte) (name, k []byte, d DocID) {
	for i := 0; i < len(b); i++ {
		if b[i] == 0 {
			return b[:i], b[i+5:], DocID(binary.BigEndian.Uint32(b[i+1 : i+5]))
		}
	}
	return nil, nil, 0
}

func docKey(d DocID, k flex.Key) []byte { return clusteredKey(d, k) }

// docKeyRange bounds doc-major trees (elems, texts) to FLEX keys in
// [klo, khi) within doc d; empty bounds mean the whole document.
func docKeyRange(d DocID, klo, khi flex.Key) (lo, hi []byte) {
	if klo == "" {
		klo = flex.Root
	}
	if khi == "" {
		khi = flex.Root.SubtreeUpper()
	}
	return docKey(d, klo), docKey(d, khi)
}

// indexedValue returns the value bytes embedded in index keys and whether
// truncation occurred.
func indexedValue(v string) (string, bool) {
	if len(v) <= maxIndexedValue {
		return v, false
	}
	return v[:maxIndexedValue], true
}

func appendValueKey(dst []byte, tag byte, v string, d DocID, k flex.Key) []byte {
	iv, _ := indexedValue(v)
	dst = append(dst, tag)
	dst = append(dst, iv...)
	dst = append(dst, 0)
	var db [4]byte
	binary.BigEndian.PutUint32(db[:], uint32(d))
	dst = append(dst, db[:]...)
	return append(dst, k...)
}

func valueKey(tag byte, v string, d DocID, k flex.Key) []byte {
	iv, _ := indexedValue(v)
	return appendValueKey(make([]byte, 0, 1+len(iv)+1+4+len(k)), tag, v, d, k)
}

// valueRange bounds the values index to entries with exactly the given
// (possibly truncated) value, within doc d (0 = all docs) and FLEX keys
// [klo, khi).
func valueRange(tag byte, v string, d DocID, klo, khi flex.Key) (lo, hi []byte) {
	iv, _ := indexedValue(v)
	if d == 0 {
		prefix := append([]byte{tag}, iv...)
		lo = append(append([]byte{}, prefix...), 0)
		hi = append(append([]byte{}, prefix...), 1)
		return lo, hi
	}
	if klo == "" {
		klo = flex.Root
	}
	if khi == "" {
		khi = flex.Root.SubtreeUpper()
	}
	return valueKey(tag, v, d, klo), valueKey(tag, v, d, khi)
}

func splitValueKey(b []byte) (tag byte, v string, d DocID, k flex.Key) {
	vb, kb, d := splitValueKeyView(b)
	if len(b) > 0 {
		tag = b[0]
	}
	return tag, string(vb), d, flex.Key(kb)
}

// splitValueKeyView is splitValueKey without materializing strings; the
// returned slices alias b (see splitNameKeyView).
func splitValueKeyView(b []byte) (v, k []byte, d DocID) {
	for i := 1; i < len(b); i++ {
		if b[i] == 0 {
			return b[1:i], b[i+5:], DocID(binary.BigEndian.Uint32(b[i+1 : i+5]))
		}
	}
	return nil, nil, 0
}
