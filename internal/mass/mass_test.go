package mass

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"vamana/internal/flex"
	"vamana/internal/xmldoc"
)

const personXML = `<site>
 <regions><europe/></regions>
 <people>
  <person id="person144">
   <name>Yung Flach</name>
   <emailaddress>Flach@auth.gr</emailaddress>
   <address>
    <street>92 Pfisterer St</street>
    <city>Monroe</city>
    <province>Vermont</province>
    <country>United States</country>
    <zipcode>12</zipcode>
   </address>
   <watches>
    <watch open_auction="open_auction108"/>
    <watch open_auction="open_auction94"/>
    <watch open_auction="open_auction110"/>
   </watches>
  </person>
  <person id="person145">
   <name>Jaak Tempesti</name>
   <address>
    <street>1 Curie Place</street>
    <city>Ottawa</city>
    <country>Canada</country>
    <zipcode>99</zipcode>
   </address>
  </person>
 </people>
</site>`

func openMem(t testing.TB) *Store {
	t.Helper()
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func loadDoc(t testing.TB, s *Store, name, src string) DocID {
	t.Helper()
	d, err := s.LoadDocument(name, strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func collect(t *testing.T, sc *Scan) []xmldoc.Node {
	t.Helper()
	var out []xmldoc.Node
	for {
		n, ok := sc.Next()
		if !ok {
			break
		}
		out = append(out, n)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func keysOf(ns []xmldoc.Node) []flex.Key {
	out := make([]flex.Key, len(ns))
	for i, n := range ns {
		out[i] = n.Key
	}
	return out
}

func TestLoadAndFetch(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "person", personXML)
	n, ok, err := s.Node(d, flex.Root)
	if err != nil || !ok {
		t.Fatalf("root fetch: %v %v", ok, err)
	}
	if n.Kind != xmldoc.KindDocument {
		t.Fatalf("root kind = %v", n.Kind)
	}
	if _, ok, _ := s.Node(d, "a.zz.zz"); ok {
		t.Fatal("phantom node found")
	}
}

func TestDuplicateDocumentName(t *testing.T) {
	s := openMem(t)
	loadDoc(t, s, "doc", personXML)
	if _, err := s.LoadDocument("doc", strings.NewReader(personXML)); err == nil {
		t.Fatal("duplicate load succeeded")
	}
}

func TestFailedLoadLeavesNoResidue(t *testing.T) {
	s := openMem(t)
	if _, err := s.LoadDocument("bad", strings.NewReader("<a><b></a>")); err == nil {
		t.Fatal("malformed load succeeded")
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 0 || st.Elements != 0 {
		t.Fatalf("residue after failed load: %+v", st)
	}
	// The name must be reusable.
	if _, err := s.LoadDocument("bad", strings.NewReader("<a/>")); err != nil {
		t.Fatalf("reload after failure: %v", err)
	}
}

func TestBasicCounts(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "person", personXML)
	cases := []struct {
		name string
		want uint64
	}{
		{"person", 2}, {"name", 2}, {"address", 2}, {"watch", 3},
		{"province", 1}, {"site", 1}, {"nosuch", 0},
	}
	for _, c := range cases {
		got, err := s.CountName(d, c.name)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("CountName(%q) = %d, want %d", c.name, got, c.want)
		}
	}
	if got, _ := s.CountAttrName(d, "open_auction"); got != 3 {
		t.Errorf("CountAttrName(open_auction) = %d, want 3", got)
	}
	if got, _ := s.CountAttrName(d, "id"); got != 2 {
		t.Errorf("CountAttrName(id) = %d, want 2", got)
	}
	if got, _ := s.TextCount(d, "Yung Flach", ""); got != 1 {
		t.Errorf("TextCount(Yung Flach) = %d, want 1", got)
	}
	if got, _ := s.TextCount(d, "nothing here", ""); got != 0 {
		t.Errorf("TextCount(miss) = %d, want 0", got)
	}
}

func TestSubtreeCounts(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "person", personXML)
	// Find the first person's key.
	sc := s.AxisScan(d, flex.Root, AxisDescendant, NodeTest{Type: TestName, Name: "person"})
	persons := collect(t, sc)
	if len(persons) != 2 {
		t.Fatalf("persons = %d", len(persons))
	}
	p1 := persons[0].Key
	if got, _ := s.CountNameWithin(d, "street", p1); got != 1 {
		t.Errorf("street within person1 = %d, want 1", got)
	}
	if got, _ := s.CountNameWithin(d, "watch", p1); got != 3 {
		t.Errorf("watch within person1 = %d, want 3", got)
	}
	p2 := persons[1].Key
	if got, _ := s.CountNameWithin(d, "watch", p2); got != 0 {
		t.Errorf("watch within person2 = %d, want 0", got)
	}
	if got, _ := s.TextCount(d, "Ottawa", p2); got != 1 {
		t.Errorf("TextCount(Ottawa, person2) = %d, want 1", got)
	}
	if got, _ := s.TextCount(d, "Ottawa", p1); got != 0 {
		t.Errorf("TextCount(Ottawa, person1) = %d, want 0", got)
	}
}

func TestDatabaseWideCounts(t *testing.T) {
	s := openMem(t)
	loadDoc(t, s, "d1", personXML)
	loadDoc(t, s, "d2", personXML)
	if got, _ := s.CountName(0, "person"); got != 4 {
		t.Errorf("db-wide person count = %d, want 4", got)
	}
	if got, _ := s.TextCount(0, "Yung Flach", ""); got != 2 {
		t.Errorf("db-wide TC = %d, want 2", got)
	}
}

func TestValueScan(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "person", personXML)
	got := collect(t, s.ValueScan(d, "", "Yung Flach"))
	if len(got) != 1 {
		t.Fatalf("ValueScan hits = %d, want 1", len(got))
	}
	if got[0].Kind != xmldoc.KindText || got[0].Value != "Yung Flach" {
		t.Fatalf("hit = %+v", got[0])
	}
	// Parent of the text node is the name element.
	n, ok, _ := s.Node(d, got[0].Key.Parent())
	if !ok || n.Name != "name" {
		t.Fatalf("value hit parent = %+v", n)
	}
	if hits := collect(t, s.ValueScan(d, "", "Vermont")); len(hits) != 1 {
		t.Fatalf("Vermont hits = %d", len(hits))
	}
	if hits := collect(t, s.ValueScan(d, "", "absent")); len(hits) != 0 {
		t.Fatalf("absent hits = %d", len(hits))
	}
}

func TestAttrValueScan(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "person", personXML)
	hits := collect(t, s.AttrValueScan(d, "", "open_auction108"))
	if len(hits) != 1 || hits[0].Name != "open_auction" {
		t.Fatalf("attr value hits = %+v", hits)
	}
}

func TestLongValueTruncation(t *testing.T) {
	s := openMem(t)
	long1 := strings.Repeat("x", 300) + "SUFFIX-ONE"
	long2 := strings.Repeat("x", 300) + "SUFFIX-TWO"
	src := fmt.Sprintf("<a><b>%s</b><c>%s</c></a>", long1, long2)
	d := loadDoc(t, s, "long", src)
	// Both share the first 256 bytes, so TC is an upper bound...
	tc, _ := s.TextCount(d, long1, "")
	if tc != 2 {
		t.Fatalf("truncated TC = %d, want 2 (upper bound)", tc)
	}
	// ...but the scan verifies and returns exactly one.
	hits := collect(t, s.ValueScan(d, "", long1))
	if len(hits) != 1 || hits[0].Value != long1 {
		t.Fatalf("verified hits = %d", len(hits))
	}
}

func TestStringValue(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "person", personXML)
	persons := collect(t, s.AxisScan(d, flex.Root, AxisDescendant, NodeTest{Type: TestName, Name: "name"}))
	sv, err := s.StringValue(d, persons[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	if sv != "Yung Flach" {
		t.Fatalf("StringValue(name) = %q", sv)
	}
	// Element with nested text.
	addr := collect(t, s.AxisScan(d, flex.Root, AxisDescendant, NodeTest{Type: TestName, Name: "address"}))
	sv, _ = s.StringValue(d, addr[1].Key)
	want := "1 Curie PlaceOttawaCanada99"
	if sv != want {
		t.Fatalf("StringValue(address2) = %q, want %q", sv, want)
	}
}

// --- Reference oracle ------------------------------------------------

// refDoc is a naive in-memory model built directly from the shredder
// stream. Every axis is computed by brute force over the node list, then
// compared against the store's index-based scans.
type refDoc struct {
	nodes []xmldoc.Node // document order
	byKey map[flex.Key]xmldoc.Node
}

func buildRef(t testing.TB, src string) *refDoc {
	t.Helper()
	r := &refDoc{byKey: map[flex.Key]xmldoc.Node{}}
	if err := xmldoc.Parse(strings.NewReader(src), func(n xmldoc.Node) error {
		r.nodes = append(r.nodes, n)
		r.byKey[n.Key] = n
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *refDoc) isAttrLike(n xmldoc.Node) bool {
	return n.Kind == xmldoc.KindAttribute || n.Kind == xmldoc.KindNamespace
}

// axis returns the reference node set for axis::test from ctx, in axis
// order.
func (r *refDoc) axis(ctx flex.Key, axis Axis, test NodeTest) []xmldoc.Node {
	var out []xmldoc.Node
	principal := axis.Principal()
	add := func(n xmldoc.Node) {
		if test.Matches(n, principal) {
			out = append(out, n)
		}
	}
	cn := r.byKey[ctx]
	switch axis {
	case AxisSelf:
		if !r.isAttrLike(cn) || test.Type == TestNode {
			add(cn)
		}
	case AxisChild:
		for _, n := range r.nodes {
			if n.Key.Parent() == ctx && !r.isAttrLike(n) {
				add(n)
			}
		}
	case AxisDescendant, AxisDescendantOrSelf:
		// The context node itself is included whatever its kind (an
		// attribute context is reachable via self), though name and
		// wildcard tests still require the element principal.
		if axis == AxisDescendantOrSelf && (!r.isAttrLike(cn) || test.Type == TestNode) {
			add(cn)
		}
		for _, n := range r.nodes {
			if ctx.IsAncestorOf(n.Key) && !r.isAttrLike(n) {
				add(n)
			}
		}
	case AxisParent:
		if p := ctx.Parent(); p != "" {
			add(r.byKey[p])
		}
	case AxisAncestor, AxisAncestorOrSelf:
		if axis == AxisAncestorOrSelf && (!r.isAttrLike(cn) || test.Type == TestNode) {
			add(cn)
		}
		for p := ctx.Parent(); p != ""; p = p.Parent() {
			add(r.byKey[p])
		}
	case AxisFollowing:
		for _, n := range r.nodes {
			if n.Key > ctx && !ctx.IsAncestorOf(n.Key) && !r.isAttrLike(n) {
				add(n)
			}
		}
	case AxisPreceding:
		for i := len(r.nodes) - 1; i >= 0; i-- {
			n := r.nodes[i]
			if n.Key < ctx && !n.Key.IsAncestorOf(ctx) && !r.isAttrLike(n) {
				add(n)
			}
		}
	case AxisFollowingSibling:
		if r.isAttrLike(cn) {
			return nil
		}
		for _, n := range r.nodes {
			if n.Key.Parent() == ctx.Parent() && n.Key > ctx && !r.isAttrLike(n) {
				add(n)
			}
		}
	case AxisPrecedingSibling:
		if r.isAttrLike(cn) {
			return nil
		}
		for i := len(r.nodes) - 1; i >= 0; i-- {
			n := r.nodes[i]
			if n.Key.Parent() == ctx.Parent() && n.Key < ctx && !r.isAttrLike(n) {
				add(n)
			}
		}
	case AxisAttribute:
		for _, n := range r.nodes {
			if n.Key.Parent() == ctx && n.Kind == xmldoc.KindAttribute {
				add(n)
			}
		}
	}
	return out
}

// randomXML generates a deterministic pseudo-random document exercising
// nesting, repeated names, attributes, text and mixed content.
func randomXML(seed int64, elems int) string {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"alpha", "beta", "gamma", "delta", "eps"}
	var b strings.Builder
	b.WriteString("<root>")
	depth := 1
	var stack []string
	for i := 0; i < elems; i++ {
		switch {
		case depth > 1 && rng.Intn(4) == 0:
			b.WriteString("</" + stack[len(stack)-1] + ">")
			stack = stack[:len(stack)-1]
			depth--
		default:
			n := names[rng.Intn(len(names))]
			b.WriteString("<" + n)
			if rng.Intn(3) == 0 {
				fmt.Fprintf(&b, " id=%q", fmt.Sprintf("v%d", rng.Intn(20)))
			}
			if rng.Intn(4) == 0 {
				fmt.Fprintf(&b, " class=%q", names[rng.Intn(len(names))])
			}
			b.WriteString(">")
			if rng.Intn(3) == 0 {
				fmt.Fprintf(&b, "text%d", rng.Intn(30))
			}
			if rng.Intn(2) == 0 {
				b.WriteString("</" + n + ">")
			} else {
				stack = append(stack, n)
				depth++
			}
		}
	}
	for len(stack) > 0 {
		b.WriteString("</" + stack[len(stack)-1] + ">")
		stack = stack[:len(stack)-1]
	}
	b.WriteString("</root>")
	return b.String()
}

// TestAllAxesAgainstOracle is the central correctness test of MASS: for a
// random document, every axis is scanned from every node with several node
// tests and compared against the brute-force oracle.
func TestAllAxesAgainstOracle(t *testing.T) {
	src := randomXML(99, 400)
	ref := buildRef(t, src)
	s := openMem(t)
	d := loadDoc(t, s, "rand", src)

	axes := []Axis{
		AxisSelf, AxisChild, AxisDescendant, AxisDescendantOrSelf,
		AxisParent, AxisAncestor, AxisAncestorOrSelf,
		AxisFollowing, AxisFollowingSibling, AxisPreceding,
		AxisPrecedingSibling, AxisAttribute,
	}
	tests := []NodeTest{
		{Type: TestName, Name: "alpha"},
		{Type: TestName, Name: "beta"},
		{Type: TestName, Name: "id"}, // matters for the attribute axis
		{Type: TestWildcard},
		{Type: TestText},
		{Type: TestNode},
	}
	checked := 0
	for _, ctxNode := range ref.nodes {
		ctx := ctxNode.Key
		for _, ax := range axes {
			for _, nt := range tests {
				want := keysOf(ref.axis(ctx, ax, nt))
				got := keysOf(collect(t, s.AxisScan(d, ctx, ax, nt)))
				if !equalKeys(got, want) {
					t.Fatalf("axis %s::%s from %q (%s %s):\n got  %v\n want %v",
						ax, nt, ctx, ctxNode.Kind, ctxNode.Name, got, want)
				}
				checked++
			}
		}
	}
	if checked < 1000 {
		t.Fatalf("oracle comparison covered only %d combinations", checked)
	}
}

func equalKeys(a, b []flex.Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCountsMatchScans checks that every statistics probe agrees with the
// cardinality of the corresponding scan on a random document.
func TestCountsMatchScans(t *testing.T) {
	src := randomXML(7, 800)
	s := openMem(t)
	d := loadDoc(t, s, "rand", src)
	ref := buildRef(t, src)

	for _, name := range []string{"alpha", "beta", "gamma", "delta", "eps", "root"} {
		want := len(collect(t, s.AxisScan(d, flex.Root, AxisDescendant, NodeTest{Type: TestName, Name: name})))
		got, err := s.CountName(d, name)
		if err != nil {
			t.Fatal(err)
		}
		if int(got) != want {
			t.Errorf("CountName(%q) = %d, scan = %d", name, got, want)
		}
	}
	// Subtree counts from random context nodes.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		ctxNode := ref.nodes[rng.Intn(len(ref.nodes))]
		if ctxNode.Kind != xmldoc.KindElement {
			continue
		}
		nt := NodeTest{Type: TestName, Name: "alpha"}
		scanned := len(collect(t, s.AxisScan(d, ctxNode.Key, AxisDescendant, nt)))
		if ctxNode.Name == "alpha" {
			scanned++ // CountNameWithin covers descendant-or-self
		}
		got, err := s.CountNameWithin(d, "alpha", ctxNode.Key)
		if err != nil {
			t.Fatal(err)
		}
		if int(got) != scanned {
			t.Errorf("CountNameWithin(alpha, %q) = %d, scan = %d", ctxNode.Key, got, scanned)
		}
	}
	// Element totals.
	wantElems := 0
	for _, n := range ref.nodes {
		if n.Kind == xmldoc.KindElement {
			wantElems++
		}
	}
	if got, _ := s.CountElements(d, ""); int(got) != wantElems {
		t.Errorf("CountElements = %d, want %d", got, wantElems)
	}
}

func TestTestCountDispatch(t *testing.T) {
	s := openMem(t)
	d := loadDoc(t, s, "person", personXML)
	if got, _ := s.TestCount(d, NodeTest{Type: TestName, Name: "watch"}, ""); got != 3 {
		t.Errorf("TestCount(watch) = %d", got)
	}
	elems, _ := s.CountElements(d, "")
	if got, _ := s.TestCount(d, NodeTest{Type: TestWildcard}, ""); got != elems {
		t.Errorf("TestCount(*) = %d, want %d", got, elems)
	}
	texts, _ := s.CountTexts(d, "")
	if got, _ := s.TestCount(d, NodeTest{Type: TestText}, ""); got != texts {
		t.Errorf("TestCount(text()) = %d, want %d", got, texts)
	}
}

func TestDropDocument(t *testing.T) {
	s := openMem(t)
	loadDoc(t, s, "keep", personXML)
	loadDoc(t, s, "drop", personXML)
	if err := s.DropDocument("drop"); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.CountName(0, "person"); got != 2 {
		t.Errorf("after drop, db-wide persons = %d, want 2", got)
	}
	if _, ok := s.DocID("drop"); ok {
		t.Error("dropped doc still resolvable")
	}
	if err := s.DropDocument("nosuch"); err == nil {
		t.Error("dropping unknown doc succeeded")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mass.vam")
	s, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	src := randomXML(5, 500)
	ref := buildRef(t, src)
	if _, err := s.LoadDocument("doc", strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	wantPersons, _ := s.CountName(1, "alpha")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	d, ok := s2.DocID("doc")
	if !ok {
		t.Fatal("document lost after reopen")
	}
	if got, _ := s2.CountName(d, "alpha"); got != wantPersons {
		t.Fatalf("alpha count after reopen = %d, want %d", got, wantPersons)
	}
	// Spot-check an axis against the oracle after reopen.
	nt := NodeTest{Type: TestName, Name: "beta"}
	want := keysOf(ref.axis(flex.Root, AxisDescendant, nt))
	var got []flex.Key
	sc := s2.AxisScan(d, flex.Root, AxisDescendant, nt)
	for {
		n, ok := sc.Next()
		if !ok {
			break
		}
		got = append(got, n.Key)
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if !equalKeys(got, want) {
		t.Fatalf("descendant::beta after reopen mismatch: %d vs %d", len(got), len(want))
	}
}

func TestDocumentsSorted(t *testing.T) {
	s := openMem(t)
	loadDoc(t, s, "b", "<x/>")
	loadDoc(t, s, "a", "<x/>")
	docs := s.Documents()
	sort.Strings(docs)
	if len(docs) != 2 || docs[0] != "a" || docs[1] != "b" {
		t.Fatalf("Documents = %v", docs)
	}
}
