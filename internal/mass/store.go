// Package mass implements the Multi-Axis Storage Structure (MASS) that
// VAMANA is built around (Deschler & Rundensteiner, CIKM 2003). MASS
// stores shredded XML documents in a clustered index ordered by FLEX key
// (= document order) plus secondary indexes over element names, attribute
// names and node values. Together these provide:
//
//   - index-based access for every XPath axis from any context node,
//   - value-based lookups in a single index probe, and
//   - O(log n) counting of axis- and value-based node sets without
//     fetching any data — the statistics feed for VAMANA's cost model.
//
// A Store is safe for concurrent use; operations are serialized
// internally. Scans hold cursor state and must not span mutations of the
// store (load/update/delete); interleaving scans of the same store with
// each other is fine.
package mass

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"vamana/internal/btree"
	"vamana/internal/flex"
	"vamana/internal/govern"
	"vamana/internal/pager"
	"vamana/internal/xmldoc"
)

// Store is a MASS database: a set of indexed XML documents.
type Store struct {
	// writer serializes mutators at the operation level (legacy per-op
	// mutations) or transaction level (an Update holds it from Begin to
	// Commit/Rollback), and is ordered strictly before mu: a goroutine
	// may take mu while holding writer, never the reverse. Readers never
	// touch it, so queries keep flowing while a writer works — they
	// contend only on the short mu critical sections.
	writer sync.Mutex
	mu     sync.Mutex
	pg     *pager.Pager

	catalog   *btree.Tree // persistent metadata: tree roots, document registry
	clustered *btree.Tree // docID ++ flexKey -> node record
	names     *btree.Tree // element name index
	attrs     *btree.Tree // attribute name index
	elems     *btree.Tree // docID ++ flexKey -> element name (wildcard scans/counts)
	texts     *btree.Tree // docID ++ flexKey -> nil (text() scans/counts)
	values    *btree.Tree // value index over text nodes and attribute values

	docs    map[string]DocID
	nextDoc DocID

	// epochs tracks a per-document statistics epoch, bumped by every
	// mutation of that document (load, insert, update, delete, drop).
	// Consumers that cache document-derived state — compiled plans,
	// memoized statistics probes — key their entries by epoch and treat a
	// mismatch as an invalidation. Epochs are in-memory only: a reopened
	// store starts at epoch 0 with empty caches, which is trivially
	// consistent.
	epochs map[DocID]uint64

	// keyBuf is a scratch buffer for transient clustered-key lookups.
	// Only valid under mu and only for keys not retained by the callee.
	keyBuf []byte

	// recordsDecoded and statProbes are plain counters guarded by mu:
	// node records decoded from the clustered index, and statistics
	// probes (COUNT/TC) executed against storage. Probes answered by the
	// optimizer's memo never reach the store, so this is the memo-miss
	// side of the probe split.
	recordsDecoded uint64
	statProbes     uint64

	// Snapshot/transaction state — see snapshot.go and txn.go.
	//
	// gen counts mutations — every one, including those buffered inside
	// an open transaction — and drives the publish short-circuit.
	// commitGen counts changes to the *committed* state only: legacy
	// per-op mutations and transaction commits advance it; buffered
	// transaction writes do not (inTxn, guarded by mu, tells the two
	// apart). Lock-free reads of commitGen let DB.Query test whether a
	// shared snapshot still equals the latest committed version — during
	// an open transaction it does, however many writes the transaction
	// has buffered. publishedGen/pubValid record the generation whose
	// state was last published to the pager's committed layer.
	// cachePages remembers the configured cache budget so snapshot
	// stores and post-rollback reloads size their node caches
	// consistently.
	gen          atomic.Uint64
	commitGen    atomic.Uint64
	inTxn        bool
	publishedGen uint64
	pubValid     bool
	cachePages   int

	// ro marks a snapshot store: a frozen read-only clone whose trees
	// read through an epoch-pinned pager view. snapOwner points back at
	// the owning Snapshot so iterator pinning refcounts it.
	ro        bool
	snapOwner *Snapshot

	// readers counts in-flight iterators per document on a live store;
	// snapCount counts open snapshots. Both make DropDocument refuse
	// with ErrDocumentBusy instead of deleting pages under a reader.
	readers   map[DocID]int
	snapCount int

	// syncMu serializes durable group commits; syncedEpoch is the newest
	// pager version epoch known durable (both file-backed stores only).
	syncMu      sync.Mutex
	syncedEpoch uint64
}

// StoreMetrics is a snapshot of the store's storage-level activity:
// pager I/O, B+-tree node-cache traffic aggregated across all seven
// index trees, clustered records decoded, and statistics probes that
// reached storage.
type StoreMetrics struct {
	Pager          pager.Metrics
	Index          btree.Metrics
	RecordsDecoded uint64
	StatProbes     uint64
}

// Metrics returns a snapshot of the store's storage counters.
func (s *Store) Metrics() StoreMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := StoreMetrics{
		Pager:          s.pg.Metrics(),
		RecordsDecoded: s.recordsDecoded,
		StatProbes:     s.statProbes,
	}
	m.Index.Add(s.catalog.Metrics())
	for _, slot := range s.treeNames() {
		m.Index.Add((*slot).Metrics())
	}
	return m
}

// Options configures a Store.
type Options struct {
	// Path is the backing page file. Empty means an in-memory store.
	Path string
	// CachePages bounds the total deserialized index pages kept in
	// memory for file-backed stores (spread across the six index trees).
	// 0 means the default (~6K pages, about 50 MB of 8 KiB pages). Lower
	// it for memory-constrained deployments; raise it for hot stores.
	CachePages int
	// Backend, when non-nil, overrides Path as the storage to open the
	// pager over (used by tests to inject faults below the pager).
	Backend pager.Backend
	// DisableChecksumVerify skips per-page CRC verification on reads.
	// Diagnostics and benchmarking only.
	DisableChecksumVerify bool
}

// ErrNoDoc is returned when an operation names a document that is not
// loaded in the store.
var ErrNoDoc = errors.New("mass: unknown document")

// Open creates or reopens a store.
func Open(opts Options) (*Store, error) {
	var pg *pager.Pager
	var err error
	switch {
	case opts.Backend != nil:
		pg, err = pager.OpenBackend(pager.Config{
			Backend:               opts.Backend,
			DisableChecksumVerify: opts.DisableChecksumVerify,
		})
		if err != nil {
			return nil, err
		}
	case opts.Path == "":
		pg = pager.NewMemory()
	default:
		b, berr := pager.NewFileBackend(opts.Path)
		if berr != nil {
			return nil, berr
		}
		pg, err = pager.OpenBackend(pager.Config{
			Backend:               b,
			DisableChecksumVerify: opts.DisableChecksumVerify,
		})
		if err != nil {
			b.Close()
			return nil, err
		}
	}
	s := &Store{
		pg:         pg,
		docs:       make(map[string]DocID),
		epochs:     make(map[DocID]uint64),
		readers:    make(map[DocID]int),
		nextDoc:    1,
		cachePages: opts.CachePages,
	}
	meta := pg.UserMeta()
	catalogRoot := pager.PageID(binary.LittleEndian.Uint32(meta[:4]))
	if catalogRoot == pager.InvalidPage {
		if err := s.initTrees(); err != nil {
			pg.Close()
			return nil, err
		}
		s.applyCacheBudget(opts.CachePages)
		return s, nil
	}
	if err := s.loadCatalog(catalogRoot); err != nil {
		pg.Close()
		return nil, err
	}
	s.applyCacheBudget(opts.CachePages)
	return s, nil
}

// applyCacheBudget spreads the page-cache budget across the index trees.
// The clustered index gets half (it sees most traffic); the rest share
// the remainder.
func (s *Store) applyCacheBudget(pages int) {
	if pages <= 0 {
		pages = 6144
	}
	s.clustered.SetMaxCache(pages / 2)
	rest := pages / 2 / 5
	for _, t := range []*btree.Tree{s.names, s.attrs, s.elems, s.texts, s.values} {
		t.SetMaxCache(rest)
	}
	s.catalog.SetMaxCache(16)
}

func (s *Store) initTrees() error {
	var err error
	newTree := func() *btree.Tree {
		if err != nil {
			return nil
		}
		var t *btree.Tree
		t, err = btree.New(s.pg)
		return t
	}
	s.catalog = newTree()
	s.clustered = newTree()
	s.names = newTree()
	s.attrs = newTree()
	s.elems = newTree()
	s.texts = newTree()
	s.values = newTree()
	return err
}

// catalog key prefixes.
const (
	catTree = "T" // catTree + name -> root page id (u32)
	catDoc  = "D" // catDoc + docName -> docID (u32)
	catSeq  = "S" // next document id (u32)
)

func (s *Store) treeNames() map[string]**btree.Tree {
	return map[string]**btree.Tree{
		"clustered": &s.clustered,
		"names":     &s.names,
		"attrs":     &s.attrs,
		"elems":     &s.elems,
		"texts":     &s.texts,
		"values":    &s.values,
	}
}

func (s *Store) loadCatalog(root pager.PageID) error {
	var err error
	s.catalog, err = btree.Load(s.pg, root)
	if err != nil {
		return fmt.Errorf("mass: load catalog: %w", err)
	}
	for name, slot := range s.treeNames() {
		v, ok, err := s.catalog.Get([]byte(catTree + name))
		if err != nil {
			return err
		}
		if !ok || len(v) != 4 {
			return fmt.Errorf("mass: catalog missing tree %q", name)
		}
		t, err := btree.Load(s.pg, pager.PageID(binary.LittleEndian.Uint32(v)))
		if err != nil {
			return fmt.Errorf("mass: load tree %q: %w", name, err)
		}
		*slot = t
	}
	if v, ok, err := s.catalog.Get([]byte(catSeq)); err != nil {
		return err
	} else if ok && len(v) == 4 {
		s.nextDoc = DocID(binary.LittleEndian.Uint32(v))
	}
	// Restore the document registry.
	c := s.catalog.NewCursor()
	for ok := c.Seek([]byte(catDoc)); ok && len(c.Key()) > 0 && c.Key()[0] == catDoc[0]; ok = c.Next() {
		v, err := c.Value()
		if err != nil {
			return err
		}
		if len(v) == 4 {
			s.docs[string(c.Key()[1:])] = DocID(binary.LittleEndian.Uint32(v))
		}
	}
	return c.Err()
}

// Flush persists all index pages and the catalog.
func (s *Store) Flush() error {
	if s.ro {
		return ErrReadOnlySnapshot
	}
	s.writer.Lock()
	defer s.writer.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

// publishLocked flushes every tree's dirty nodes to the pager, records
// the tree roots in the catalog, and commits the batch as the next pager
// version — the point at which the current state becomes visible to new
// snapshots. Publication is cheap when nothing changed since the last
// one, and durability is separate (flushLocked, SyncCommitted).
func (s *Store) publishLocked() error {
	if s.pubValid && s.gen.Load() == s.publishedGen {
		return nil
	}
	for name, slot := range s.treeNames() {
		t := *slot
		if err := t.Flush(); err != nil {
			return err
		}
		var v [4]byte
		binary.LittleEndian.PutUint32(v[:], uint32(t.Root()))
		if err := s.catalogPutIfChanged([]byte(catTree+name), v[:]); err != nil {
			return err
		}
	}
	var seq [4]byte
	binary.LittleEndian.PutUint32(seq[:], uint32(s.nextDoc))
	if err := s.catalogPutIfChanged([]byte(catSeq), seq[:]); err != nil {
		return err
	}
	if err := s.catalog.Flush(); err != nil {
		return err
	}
	var meta [32]byte
	binary.LittleEndian.PutUint32(meta[:4], uint32(s.catalog.Root()))
	if s.pg.UserMeta() != meta {
		s.pg.SetUserMeta(meta)
	}
	if err := s.pg.CommitVersion(); err != nil {
		return err
	}
	s.publishedGen = s.gen.Load()
	s.pubValid = true
	return nil
}

func (s *Store) flushLocked() error {
	if err := s.publishLocked(); err != nil {
		return err
	}
	return s.pg.Flush()
}

// catalogPutIfChanged writes a catalog entry only when its value actually
// changes, keeping Flush idempotent: a flush of an unmodified store
// dirties no pages (which also keeps VerifyPages from re-stamping — and
// thereby hiding — damage in catalog pages before the sweep reads them).
func (s *Store) catalogPutIfChanged(k, v []byte) error {
	cur, ok, err := s.catalog.Get(k)
	if err != nil {
		return err
	}
	if ok && bytes.Equal(cur, v) {
		return nil
	}
	_, err = s.catalog.Put(k, v)
	return err
}

// Close flushes and releases the store.
func (s *Store) Close() error {
	if s.ro {
		return ErrReadOnlySnapshot
	}
	s.writer.Lock()
	defer s.writer.Unlock()
	s.mu.Lock()
	err := s.flushLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.pg.Close()
}

// VerifyPages checksums every durable page of the store after flushing
// any buffered state, returning the number of pages checked and the ids
// that failed verification. In-memory stores report zero pages checked.
func (s *Store) VerifyPages() (checked int, corrupt []pager.PageID, err error) {
	if s.ro {
		return 0, nil, ErrReadOnlySnapshot
	}
	s.writer.Lock()
	defer s.writer.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.pg.InMemory() {
		if err := s.flushLocked(); err != nil {
			return 0, nil, err
		}
	}
	return s.pg.Verify()
}

// LoadDocument shreds the XML document from r and indexes it under the
// given unique name, returning its DocID. Loading is streaming: memory use
// is bounded by the index caches, not the document size.
func (s *Store) LoadDocument(name string, r io.Reader) (DocID, error) {
	s.writer.Lock()
	defer s.writer.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ro {
		return 0, ErrReadOnlySnapshot
	}
	if _, exists := s.docs[name]; exists {
		return 0, fmt.Errorf("mass: document %q already loaded", name)
	}
	d := s.nextDoc
	s.nextDoc++
	s.bumpEpochLocked(d)
	err := xmldoc.Parse(r, func(n xmldoc.Node) error { return s.indexNode(d, n) })
	if err != nil {
		// Loading failed midway; remove the partial document so the store
		// stays consistent.
		s.removeDocNodesLocked(d)
		return 0, err
	}
	s.docs[name] = d
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], uint32(d))
	if _, err := s.catalog.Put([]byte(catDoc+name), v[:]); err != nil {
		return 0, err
	}
	return d, nil
}

// indexNode inserts one shredded node into every applicable index.
func (s *Store) indexNode(d DocID, n xmldoc.Node) error {
	if len(n.Name) > maxIndexedValue {
		return fmt.Errorf("mass: name %q exceeds %d bytes", n.Name[:32]+"...", maxIndexedValue)
	}
	if _, err := s.clustered.Put(clusteredKey(d, n.Key), encodeRecord(n)); err != nil {
		return err
	}
	switch n.Kind {
	case xmldoc.KindElement:
		if _, err := s.names.Put(nameKey(n.Name, d, n.Key), nil); err != nil {
			return err
		}
		if _, err := s.elems.Put(docKey(d, n.Key), []byte(n.Name)); err != nil {
			return err
		}
	case xmldoc.KindAttribute:
		if _, err := s.attrs.Put(nameKey(n.Name, d, n.Key), nil); err != nil {
			return err
		}
		if err := s.putValueEntry(valueTagAttr, d, n.Key, n.Value); err != nil {
			return err
		}
	case xmldoc.KindText:
		if _, err := s.texts.Put(docKey(d, n.Key), nil); err != nil {
			return err
		}
		if err := s.putValueEntry(valueTagText, d, n.Key, n.Value); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) putValueEntry(tag byte, d DocID, k flex.Key, v string) error {
	_, trunc := indexedValue(v)
	var flags []byte
	if trunc {
		flags = []byte{valueFlagTruncated}
	}
	if _, err := s.values.Put(valueKey(tag, v, d, k), flags); err != nil {
		return err
	}
	kind := xmldoc.KindText
	if tag == valueTagAttr {
		kind = xmldoc.KindAttribute
	}
	return s.putNumericEntries(kind, d, k, v)
}

// removeDocNodesLocked deletes every index entry belonging to doc d. Used
// for cleanup of failed loads and by DropDocument.
func (s *Store) removeDocNodesLocked(d DocID) {
	lo, hi := clusteredDocRange(d)
	c := s.clustered.NewCursor()
	// Collect first (cursors don't survive mutation), then delete.
	type entry struct {
		key  flex.Key
		node xmldoc.Node
	}
	var all []entry
	for ok := c.Seek(lo); ok && c.InRange(hi); ok = c.Next() {
		_, fk := splitClusteredKey(c.Key())
		v, err := c.Value()
		if err != nil {
			continue
		}
		n, err := decodeRecord(v)
		if err != nil {
			continue
		}
		n.Key = fk
		all = append(all, entry{fk, n})
	}
	for _, e := range all {
		s.deleteNodeIndexEntries(d, e.node)
		s.clustered.Delete(clusteredKey(d, e.key))
	}
}

func (s *Store) deleteNodeIndexEntries(d DocID, n xmldoc.Node) {
	switch n.Kind {
	case xmldoc.KindElement:
		s.names.Delete(nameKey(n.Name, d, n.Key))
		s.elems.Delete(docKey(d, n.Key))
	case xmldoc.KindAttribute:
		s.attrs.Delete(nameKey(n.Name, d, n.Key))
		s.values.Delete(valueKey(valueTagAttr, n.Value, d, n.Key))
		s.deleteNumericEntries(n.Kind, d, n.Key, n.Value)
	case xmldoc.KindText:
		s.texts.Delete(docKey(d, n.Key))
		s.values.Delete(valueKey(valueTagText, n.Value, d, n.Key))
		s.deleteNumericEntries(n.Kind, d, n.Key, n.Value)
	}
}

// Epoch returns the document's current statistics epoch. Any mutation of
// the document bumps it, so an epoch captured alongside cached
// document-derived state (an optimized plan, a memoized COUNT probe)
// detects staleness with one comparison.
func (s *Store) Epoch(d DocID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epochs[d]
}

// bumpEpochLocked invalidates cached document-derived state after a
// mutation. Called with mu held, including on failed partial mutations —
// a spurious bump only costs one redundant recomputation. It also
// advances the store generation, and — outside a transaction, where the
// mutation changes committed state immediately — the commit generation,
// which marks any shared auto-snapshot stale. Buffered transaction
// writes leave commitGen alone: the latest committed version is
// unchanged until Commit, which advances it once for the whole batch.
func (s *Store) bumpEpochLocked(d DocID) {
	s.epochs[d]++
	s.gen.Add(1)
	if !s.inTxn {
		s.commitGen.Add(1)
	}
}

// Gen returns the store's mutation generation: it advances on every
// mutation of any document, including writes buffered inside an open
// transaction.
func (s *Store) Gen() uint64 { return s.gen.Load() }

// CommitGen returns the store's commit generation: it advances exactly
// when the committed state changes (per-op mutations, transaction
// commits, document loads and drops). Lock-free, so the serving path can
// test a shared snapshot's freshness with one atomic load.
func (s *Store) CommitGen() uint64 { return s.commitGen.Load() }

// BumpEpoch advances the document's statistics epoch without a data
// mutation, dropping cached plans and memoized probes derived from it.
// The cost-calibration feedback loop calls this when a correction factor
// drifts far enough that plans costed under the old factor should be
// re-optimized on their next lookup.
func (s *Store) BumpEpoch(d DocID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpEpochLocked(d)
}

// DocID resolves a document name.
func (s *Store) DocID(name string) (DocID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.docs[name]
	return d, ok
}

// DocName resolves a document id back to its name, empty when unknown.
// Documents are few (one catalog entry each), so a linear sweep beats
// maintaining a reverse map; callers are trace/log paths, not hot ones.
func (s *Store) DocName(d DocID) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for n, id := range s.docs {
		if id == d {
			return n
		}
	}
	return ""
}

// Documents returns the loaded document names, sorted.
func (s *Store) Documents() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.docs))
	for n := range s.docs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DropDocument removes a document and all its index entries. It refuses
// with ErrDocumentBusy while any snapshot is open or any iterator is
// streaming the document: dropping would delete pages mid-read.
func (s *Store) DropDocument(name string) error {
	s.writer.Lock()
	defer s.writer.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ro {
		return ErrReadOnlySnapshot
	}
	d, ok := s.docs[name]
	if !ok {
		return ErrNoDoc
	}
	if s.snapCount > 0 {
		return fmt.Errorf("%w: %q has %d open snapshot(s)", ErrDocumentBusy, name, s.snapCount)
	}
	if n := s.readers[d]; n > 0 {
		return fmt.Errorf("%w: %q has %d in-flight reader(s)", ErrDocumentBusy, name, n)
	}
	s.removeDocNodesLocked(d)
	s.bumpEpochLocked(d)
	delete(s.docs, name)
	delete(s.readers, d)
	_, err := s.catalog.Delete([]byte(catDoc + name))
	return err
}

// Node fetches the node stored under (d, k).
func (s *Store) Node(d DocID, k flex.Key) (xmldoc.Node, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodeLocked(d, k)
}

// nodeLockedFor is nodeLocked with per-query governance: the record decode
// is charged against lim's decoded-records budget before the probe runs.
func (s *Store) nodeLockedFor(d DocID, k flex.Key, lim *govern.Limiter) (xmldoc.Node, bool, error) {
	if err := lim.AddRecords(1); err != nil {
		return xmldoc.Node{}, false, err
	}
	return s.nodeLocked(d, k)
}

func (s *Store) nodeLocked(d DocID, k flex.Key) (xmldoc.Node, bool, error) {
	// Hot path: executed once per parent/self probe during pipelined
	// execution. The scratch key and the zero-copy View avoid two
	// allocations per probe.
	s.keyBuf = s.keyBuf[:0]
	var db [4]byte
	binary.BigEndian.PutUint32(db[:], uint32(d))
	s.keyBuf = append(append(s.keyBuf, db[:]...), k...)
	var n xmldoc.Node
	var decodeErr error
	s.recordsDecoded++
	ok, err := s.clustered.View(s.keyBuf, func(v []byte) {
		n, decodeErr = decodeRecord(v)
	})
	if err != nil || !ok {
		return xmldoc.Node{}, ok, err
	}
	if decodeErr != nil {
		return xmldoc.Node{}, false, decodeErr
	}
	n.Key = k
	return n, true, nil
}

// StringValue computes the XPath string-value of the node at (d, k): for
// text/attribute/comment/PI nodes their content; for element and document
// nodes the concatenation of all descendant text nodes in document order.
func (s *Store) StringValue(d DocID, k flex.Key) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok, err := s.nodeLocked(d, k)
	if err != nil {
		return "", err
	}
	if !ok {
		return "", fmt.Errorf("mass: no node at %q", k)
	}
	switch n.Kind {
	case xmldoc.KindElement, xmldoc.KindDocument:
		var out []byte
		lo, hi := docKeyRange(d, k.DescLower(), k.SubtreeUpper())
		c := s.texts.NewCursor()
		for ok := c.Seek(lo); ok && c.InRange(hi); ok = c.Next() {
			_, fk := splitClusteredKey(c.Key())
			tn, ok2, err := s.nodeLocked(d, fk)
			if err != nil {
				return "", err
			}
			if ok2 {
				out = append(out, tn.Value...)
			}
		}
		if err := c.Err(); err != nil {
			return "", err
		}
		return string(out), nil
	default:
		return n.Value, nil
	}
}
