package opt

import (
	"sort"
	"strings"
	"testing"

	"vamana/internal/baseline/dom"
	"vamana/internal/cost"
	"vamana/internal/exec"
	"vamana/internal/mass"
	"vamana/internal/plan"
	"vamana/internal/xmark"
	"vamana/internal/xpath"
)

func loadXMark(t testing.TB, factor float64) (*mass.Store, mass.DocID, string) {
	t.Helper()
	s, err := mass.Open(mass.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	src := xmark.GenerateString(xmark.Config{Factor: factor, Seed: 21})
	d, err := s.LoadDocument("auction", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return s, d, src
}

func buildPlan(t testing.TB, expr string) *plan.Plan {
	t.Helper()
	ast, err := xpath.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func contextSteps(p *plan.Plan) []*plan.Step {
	var out []*plan.Step
	for _, op := range p.ContextPath() {
		if s, ok := op.(*plan.Step); ok {
			out = append(out, s)
		}
	}
	return out
}

func TestCleanupSelfMerge(t *testing.T) {
	// Paper Fig. 5: descendant::name/parent::*/self::person/address.
	p := buildPlan(t, "/descendant::name/parent::*/self::person/address")
	Cleanup(p)
	steps := contextSteps(p)
	if len(steps) != 3 {
		t.Fatalf("after cleanup: %d steps\n%s", len(steps), p)
	}
	// Top-down: child::address <- parent::person <- descendant::name.
	if steps[0].Axis != mass.AxisChild || steps[0].Test.Name != "address" {
		t.Errorf("step0 = %s", steps[0].Label())
	}
	if steps[1].Axis != mass.AxisParent || steps[1].Test.Name != "person" {
		t.Errorf("merged step = %s, want parent::person", steps[1].Label())
	}
	if steps[2].Axis != mass.AxisDescendant || steps[2].Test.Name != "name" {
		t.Errorf("leaf = %s", steps[2].Label())
	}
}

func TestCleanupDoubleSlashCollapse(t *testing.T) {
	p := buildPlan(t, "//person/address")
	Cleanup(p)
	steps := contextSteps(p)
	if len(steps) != 2 {
		t.Fatalf("steps = %d\n%s", len(steps), p)
	}
	if steps[1].Axis != mass.AxisDescendant || steps[1].Test.Name != "person" {
		t.Errorf("leaf = %s, want descendant::person", steps[1].Label())
	}
}

func TestCleanupDotRemoval(t *testing.T) {
	p := buildPlan(t, "//person/./name")
	Cleanup(p)
	if got := len(contextSteps(p)); got != 2 {
		t.Fatalf("steps = %d\n%s", got, p)
	}
}

func TestCleanupInsidePredicates(t *testing.T) {
	p := buildPlan(t, "//person[.//province]")
	Cleanup(p)
	// The predicate's descendant-or-self::node()/child chain must also
	// collapse.
	person := contextSteps(p)[0]
	ex, ok := person.Preds[0].(*plan.Exist)
	if !ok {
		t.Fatalf("pred = %T", person.Preds[0])
	}
	inner, ok := ex.Pred.(*plan.Step)
	if !ok || inner.Axis != mass.AxisDescendant || inner.Test.Name != "province" {
		t.Fatalf("predicate subplan not cleaned: %s", p)
	}
}

func optimize(t testing.TB, s *mass.Store, d mass.DocID, expr string) (*plan.Plan, *plan.Plan) {
	t.Helper()
	p := buildPlan(t, expr)
	o := &Optimizer{Store: s, Doc: d}
	q, err := o.Optimize(p)
	if err != nil {
		t.Fatalf("optimize %q: %v", expr, err)
	}
	// Annotate the default plan too, for cost comparisons.
	est := &cost.Estimator{Store: s, Doc: d}
	Cleanup(p)
	if err := est.Estimate(p); err != nil {
		t.Fatal(err)
	}
	return p, q
}

// TestOptimizeQ1Shape checks the paper's Fig. 8 -> Fig. 11 outcome: the
// selective address step is pushed to the leaf with existential parent
// filters.
func TestOptimizeQ1Shape(t *testing.T) {
	s, d, _ := loadXMark(t, 0.01)
	_, q := optimize(t, s, d, "/descendant::name/parent::*/self::person/address")
	steps := contextSteps(q)
	if len(steps) != 1 {
		t.Fatalf("optimized context path has %d steps, want 1:\n%s", len(steps), q)
	}
	top := steps[0]
	if top.Axis != mass.AxisDescendant || top.Test.Name != "address" {
		t.Fatalf("top step = %s, want descendant::address\n%s", top.Label(), q)
	}
	if len(top.Preds) != 1 {
		t.Fatalf("top preds = %d\n%s", len(top.Preds), q)
	}
	ex := top.Preds[0].(*plan.Exist)
	parent := ex.Pred.(*plan.Step)
	if parent.Axis != mass.AxisParent || parent.Test.Name != "person" {
		t.Fatalf("pushed-down filter = %s\n%s", parent.Label(), q)
	}
	if len(parent.Preds) != 1 {
		t.Fatalf("parent::person should retain the child::name filter\n%s", q)
	}
}

// TestOptimizeQ2ValueIndex checks the Fig. 9 outcome: the value predicate
// becomes a value:: location step.
func TestOptimizeQ2ValueIndex(t *testing.T) {
	s, d, _ := loadXMark(t, 0.01)
	_, q := optimize(t, s, d, "//name[ text() = 'Yung Flach' ]/following-sibling::emailaddress")
	var valueStep *plan.Step
	for _, op := range q.Operators() {
		if st, ok := op.(*plan.Step); ok && st.Axis == mass.AxisValue {
			valueStep = st
		}
	}
	if valueStep == nil {
		t.Fatalf("no value:: step in optimized plan:\n%s", q)
	}
	if valueStep.Test.Name != "Yung Flach" {
		t.Fatalf("value step literal = %q", valueStep.Test.Name)
	}
	steps := contextSteps(q)
	// Chain: following-sibling::emailaddress <- parent::name <- value::.
	if steps[0].Axis != mass.AxisFollowingSibling {
		t.Fatalf("top step = %s\n%s", steps[0].Label(), q)
	}
	if steps[1].Axis != mass.AxisParent || steps[1].Test.Name != "name" {
		t.Fatalf("middle step = %s\n%s", steps[1].Label(), q)
	}
}

// TestOptimizeQ2Dedup checks the //watches/watch/ancestor::person rewrite
// into //watches[watch]/ancestor-or-self::person.
func TestOptimizeQ2Dedup(t *testing.T) {
	s, d, _ := loadXMark(t, 0.01)
	_, q := optimize(t, s, d, "//watches/watch/ancestor::person")
	steps := contextSteps(q)
	if len(steps) != 2 {
		t.Fatalf("steps = %d\n%s", len(steps), q)
	}
	if steps[0].Axis != mass.AxisAncestorOrSelf || steps[0].Test.Name != "person" {
		t.Fatalf("top = %s\n%s", steps[0].Label(), q)
	}
	watches := steps[1]
	if watches.Test.Name != "watches" || len(watches.Preds) != 1 {
		t.Fatalf("leaf = %s with %d preds\n%s", watches.Label(), len(watches.Preds), q)
	}
}

// TestOptimizerNeverIncreasesEstimatedWork is the paper's §I contribution
// 5 guarantee at the estimate level.
func TestOptimizerNeverIncreasesEstimatedWork(t *testing.T) {
	s, d, _ := loadXMark(t, 0.01)
	queries := []string{
		"//person/address",
		"//watches/watch/ancestor::person",
		"/descendant::name/parent::*/self::person/address",
		"//itemref/following-sibling::price/parent::*",
		"//province[text()='Vermont']/ancestor::person",
		"//person/name",
		"//open_auction/bidder/increase",
	}
	for _, qstr := range queries {
		def, opt := optimize(t, s, d, qstr)
		wd, wo := cost.Work(def.Root), cost.Work(opt.Root)
		if wo > wd {
			t.Errorf("%s: optimized work %d > default %d", qstr, wo, wd)
		}
	}
}

// TestOptimizedPlansEquivalent is the safety net: for a broad query set,
// the optimized plan's result set must equal the default plan's and the
// DOM oracle's.
func TestOptimizedPlansEquivalent(t *testing.T) {
	s, d, src := loadXMark(t, 0.004)
	domDoc, err := dom.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	oracle := dom.New(domDoc, dom.Options{})

	queries := []string{
		"//person/address",
		"//watches/watch/ancestor::person",
		"/descendant::name/parent::*/self::person/address",
		"//itemref/following-sibling::price/parent::*",
		"//province[text()='Vermont']/ancestor::person",
		"//name[ text() = 'Yung Flach' ]/following-sibling::emailaddress",
		"//person[address/province]",
		"//person[name='Yung Flach']",
		"//item/name",
		"//closed_auction/itemref",
		"//bidder/personref",
		"//person[watches]/name",
		"//address[city='Monroe']/parent::person",
		"//watch/parent::watches/parent::person",
		"//category/name",
		"//person/watches/watch",
		"//edge/parent::catgraph",
		"//province/ancestor::people",
	}
	for _, qstr := range queries {
		def := buildPlan(t, qstr)
		o := &Optimizer{Store: s, Doc: d}
		optp, err := o.Optimize(def)
		if err != nil {
			t.Fatalf("optimize %q: %v", qstr, err)
		}
		want := runDOM(t, oracle, qstr)
		gotDef := runPlan(t, s, d, def)
		gotOpt := runPlan(t, s, d, optp)
		if !equal(gotDef, want) {
			t.Errorf("%s: DEFAULT diverges from oracle (%d vs %d keys)", qstr, len(gotDef), len(want))
		}
		if !equal(gotOpt, want) {
			t.Errorf("%s: OPTIMIZED diverges from oracle (%d vs %d keys)\n%s", qstr, len(gotOpt), len(want), optp)
		}
	}
}

func runPlan(t testing.TB, s *mass.Store, d mass.DocID, p *plan.Plan) []string {
	t.Helper()
	it, err := exec.Run(p, exec.Context{Store: s, Doc: d})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := it.Collect()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = string(k)
	}
	sort.Strings(out)
	return out
}

func runDOM(t testing.TB, e *dom.Engine, expr string) []string {
	t.Helper()
	ns, err := e.Eval(expr)
	if err != nil {
		t.Fatal(err)
	}
	return dom.Keys(ns)
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRulesRespectDistinct(t *testing.T) {
	s, d, _ := loadXMark(t, 0.005)
	p := buildPlan(t, "//watches/watch/ancestor::person")
	p.Root.Distinct = false
	o := &Optimizer{Store: s, Doc: d}
	q, err := o.Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	// Without duplicate elimination the dedup rewrite must not fire: the
	// ancestor axis must survive.
	found := false
	for _, st := range contextSteps(q) {
		if st.Axis == mass.AxisAncestor {
			found = true
		}
	}
	if !found {
		t.Fatalf("multiplicity-changing rewrite applied to a non-distinct plan:\n%s", q)
	}
}

func TestOptimizeIsIdempotentOnOptimalPlans(t *testing.T) {
	s, d, _ := loadXMark(t, 0.005)
	_, q1 := optimize(t, s, d, "//person/address")
	o := &Optimizer{Store: s, Doc: d}
	q2, err := o.Optimize(q1)
	if err != nil {
		t.Fatal(err)
	}
	if q1.String() != q2.String() {
		t.Fatalf("re-optimization changed an optimal plan:\n%s\nvs\n%s", q1, q2)
	}
}

func TestTrace(t *testing.T) {
	s, d, _ := loadXMark(t, 0.005)
	p := buildPlan(t, "//person/address")
	var lines []string
	o := &Optimizer{Store: s, Doc: d, Trace: func(f string, a ...any) {
		lines = append(lines, f)
	}}
	if _, err := o.Optimize(p); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no trace output for a plan with applicable rewrites")
	}
}

func TestExplainOutput(t *testing.T) {
	s, d, _ := loadXMark(t, 0.005)
	_, q := optimize(t, s, d, "//person/address")
	out := Explain(q)
	if !strings.Contains(out, "ordered list") || !strings.Contains(out, "δ=") {
		t.Fatalf("Explain output incomplete:\n%s", out)
	}
}

// TestOptimizeAttrValueIndex covers the attribute-value extension:
// //person[@id='...'] should be driven from the value index.
func TestOptimizeAttrValueIndex(t *testing.T) {
	s, d, _ := loadXMark(t, 0.01)
	_, q := optimize(t, s, d, "//person[@id='person144']")
	var valueStep *plan.Step
	for _, op := range q.Operators() {
		if st, ok := op.(*plan.Step); ok && st.Axis == mass.AxisAttrValue {
			valueStep = st
		}
	}
	if valueStep == nil {
		t.Fatalf("no attr-value step:\n%s", q)
	}
	if valueStep.Test.Name != "person144" || valueStep.Test.Attr != "id" {
		t.Fatalf("attr-value step = %+v", valueStep.Test)
	}
	// And it must return exactly the right person.
	got := runPlan(t, s, d, q)
	if len(got) != 1 {
		t.Fatalf("results = %d, want 1", len(got))
	}
}

// TestAttrValueEquivalence cross-checks the rewrite against both the
// default plan and the DOM oracle.
func TestAttrValueEquivalence(t *testing.T) {
	s, d, src := loadXMark(t, 0.004)
	domDoc, err := dom.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	oracle := dom.New(domDoc, dom.Options{})
	queries := []string{
		"//person[@id='person7']",
		"//watch[@open_auction='open_auction3']",
		"//item[@id='item12']/name",
		"//person[@id='nosuch']",
	}
	for _, qstr := range queries {
		def := buildPlan(t, qstr)
		o := &Optimizer{Store: s, Doc: d}
		optp, err := o.Optimize(def)
		if err != nil {
			t.Fatal(err)
		}
		want := runDOM(t, oracle, qstr)
		if got := runPlan(t, s, d, optp); !equal(got, want) {
			t.Errorf("%s: optimized %d keys, oracle %d keys", qstr, len(got), len(want))
		}
	}
}

// TestOptimizeNumericRange covers the numeric-range extension:
// //zipcode[text() >= 10 and text() < 50] should be driven from the
// numeric value index.
func TestOptimizeNumericRange(t *testing.T) {
	s, d, _ := loadXMark(t, 0.01)
	_, q := optimize(t, s, d, "//zipcode[text() >= 10 and text() < 50]/parent::address")
	var rangeStep *plan.Step
	for _, op := range q.Operators() {
		if st, ok := op.(*plan.Step); ok && st.Axis == mass.AxisNumRange {
			rangeStep = st
		}
	}
	if rangeStep == nil {
		t.Fatalf("no num-range step:\n%s", q)
	}
	if rangeStep.NumLo != 10 || !rangeStep.NumLoIncl || rangeStep.NumHi != 50 || rangeStep.NumHiIncl {
		t.Fatalf("range = %+v", rangeStep)
	}
}

// TestNumericRangeEquivalence cross-checks range rewrites against both
// the default plan and the DOM oracle.
func TestNumericRangeEquivalence(t *testing.T) {
	s, d, src := loadXMark(t, 0.004)
	domDoc, err := dom.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	oracle := dom.New(domDoc, dom.Options{})
	queries := []string{
		"//zipcode[text() > 50]",
		"//zipcode[text() >= 10 and text() < 50]",
		"//price[text() <= 100]/parent::closed_auction",
		"//quantity[text() = 5]",
		"//zipcode[text() > 990]",
	}
	for _, qstr := range queries {
		def := buildPlan(t, qstr)
		o := &Optimizer{Store: s, Doc: d}
		optp, err := o.Optimize(def)
		if err != nil {
			t.Fatal(err)
		}
		want := runDOM(t, oracle, qstr)
		gotDef := runPlan(t, s, d, def)
		gotOpt := runPlan(t, s, d, optp)
		if !equal(gotDef, want) {
			t.Errorf("%s: default diverges from oracle (%d vs %d)", qstr, len(gotDef), len(want))
		}
		if !equal(gotOpt, want) {
			t.Errorf("%s: optimized diverges (%d vs %d)\n%s", qstr, len(gotOpt), len(want), optp)
		}
	}
}
