// Package opt implements VAMANA's cost-driven, rule-based optimizer
// (paper §VI). Optimization iterates three phases — expression clean-up,
// cost gathering, and rewriting — until no further transformation helps:
//
//  1. Cleanup normalizes the plan (self-axis merging, // collapse).
//  2. The cost estimator annotates every operator with COUNT/TC/IN/OUT
//     and selectivity δ from live index statistics.
//  3. Walking the ordered list L(P) from the most selective operator
//     down, the first applicable library rule whose estimated work does
//     not regress is committed, and the cycle repeats.
//
// Because every accepted rewrite is an algebraic equivalence whose cost
// bound is no worse, "the optimizer always generates a query plan having
// the same or faster performance with respect to the default query plan"
// (§VIII).
package opt

import (
	"fmt"

	"vamana/internal/cost"
	"vamana/internal/mass"
	"vamana/internal/plan"
)

// Optimizer rewrites plans for one document using its live statistics.
type Optimizer struct {
	Store *mass.Store
	Doc   mass.DocID
	// Probes overrides the statistics source used for costing; nil means
	// probing Store directly. The engine passes a shared cost.MemoProbes
	// here so repeated optimizations between updates reuse probe results.
	Probes cost.Probes
	// MaxIterations bounds the rewrite loop; 0 means the default (16).
	MaxIterations int
	// Rules overrides the transformation library; nil means Library().
	Rules []Rule
	// Trace, when non-nil, receives a line per optimization decision —
	// surfaced by the engine's EXPLAIN facility.
	Trace func(format string, args ...any)
	// Calibrate is threaded into the cost estimator (see
	// cost.Estimator.Calibrate) so rewrite acceptance ranks candidates
	// under the same corrected estimates the serving path reports on.
	Calibrate func(s *plan.Step, out uint64) uint64
}

const defaultMaxIterations = 16

// Optimize returns an optimized copy of p; the input plan is not
// modified. The result always carries final cost annotations.
func (o *Optimizer) Optimize(p *plan.Plan) (*plan.Plan, error) {
	q := p.Clone()
	rules := o.Rules
	if rules == nil {
		rules = Library()
	}
	maxIter := o.MaxIterations
	if maxIter <= 0 {
		maxIter = defaultMaxIterations
	}
	probes := o.Probes
	if probes == nil {
		probes = o.Store
	}
	est := &cost.Estimator{Store: probes, Doc: o.Doc, Calibrate: o.Calibrate}

	Cleanup(q)
	for iter := 0; iter < maxIter; iter++ {
		if err := est.Estimate(q); err != nil {
			return nil, err
		}
		applied, err := o.applyOne(q, rules, est)
		if err != nil {
			return nil, err
		}
		if !applied {
			break
		}
		Cleanup(q)
	}
	if err := est.Estimate(q); err != nil {
		return nil, err
	}
	q.AssignIDs()
	return q, nil
}

// applyOne walks L(P) from the most selective operator and commits the
// first cost-improving transformation, reporting whether one was applied.
func (o *Optimizer) applyOne(q *plan.Plan, rules []Rule, est *cost.Estimator) (bool, error) {
	slots := contextPathSlots(q)
	for _, entry := range cost.OrderedList(q) {
		s, ok := entry.Op.(*plan.Step)
		if !ok {
			continue
		}
		set, onCtxPath := slots[entry.Op]
		if !onCtxPath {
			continue
		}
		for _, r := range rules {
			if r.RequiresDistinct && !q.Root.Distinct {
				continue
			}
			candidate, ok := r.Apply(s)
			if !ok {
				continue
			}
			// Tag the rewritten subtree with the rule's name before
			// costing, so calibration factors keyed on provenance apply to
			// the candidate the same way they will to the committed plan.
			// Rejected candidates are discarded, so stamping is free.
			stampProvenance(candidate, r.Name)
			// Dynamic costing of the transformed subtree only — "this is
			// inexpensive compared to costing the entire query plan"
			// (§VI-C).
			if err := est.EstimateSubtree(candidate); err != nil {
				return false, err
			}
			oldWork, newWork := cost.Work(s), cost.Work(candidate)
			if newWork >= oldWork {
				o.tracef("rule %s on %s rejected: work %d -> %d", r.Name, s.Label(), oldWork, newWork)
				continue
			}
			o.tracef("rule %s on %s applied: work %d -> %d", r.Name, s.Label(), oldWork, newWork)
			set(candidate)
			q.AssignIDs()
			return true, nil
		}
	}
	return false, nil
}

// stampProvenance records the rewrite rule on every step of a candidate
// subtree that no earlier rule claimed (steps cloned from the original
// plan carry an empty Prov; steps moved by a previous iteration keep the
// rule that first touched them).
func stampProvenance(op plan.Op, rule string) {
	if s, ok := op.(*plan.Step); ok && s.Prov == "" {
		s.Prov = rule
	}
	for _, c := range op.Children() {
		stampProvenance(c, rule)
	}
}

func (o *Optimizer) tracef(format string, args ...any) {
	if o.Trace != nil {
		o.Trace(format, args...)
	}
}

// contextPathSlots maps each operator on the plan's context path to a
// setter that replaces it (and its subtree) in the plan. Rules are only
// applied on the context path: their rewrites re-anchor subtree leaves,
// which is exactly the paper's push-down of selective operators.
func contextPathSlots(q *plan.Plan) map[plan.Op]func(plan.Op) {
	slots := map[plan.Op]func(plan.Op){}
	root := q.Root
	if root.Context != nil {
		slots[root.Context] = func(n plan.Op) { root.Context = n }
		cur := root.Context
		for {
			st, ok := cur.(*plan.Step)
			if !ok || st.Context == nil {
				break
			}
			child := st.Context
			slots[child] = func(n plan.Op) { st.Context = n }
			cur = child
		}
	}
	return slots
}

// Explain renders a plan with its cost annotations plus the ordered list
// L(P) — the full picture the optimizer reasons over.
func Explain(p *plan.Plan) string {
	out := p.String()
	out += "ordered list L(P), most selective first:\n"
	for _, e := range cost.OrderedList(p) {
		out += fmt.Sprintf("  δ=%.3f  %s\n", e.Sel, e.Op.Label())
	}
	return out
}
