package opt

import (
	"vamana/internal/mass"
	"vamana/internal/plan"
	"vamana/internal/xmldoc"
)

// Cleanup is the optimizer's first phase (paper §VI-A): a cost-free
// normalization pass applied before each costing round. It:
//
//   - removes no-op self::node() steps ("." with no predicates),
//   - collapses the descendant-or-self::node() steps introduced by the
//     abbreviated // syntax into the following step's axis, and
//   - merges self-axis steps into their context child, the paper's
//     Fig. 5 example: parent::* / self::person  =>  parent::person.
//
// All rewrites are applied recursively, inside predicate subplans too, and
// iterate to a fixpoint.
func Cleanup(p *plan.Plan) {
	p.Root.Context = cleanupOp(p.Root.Context)
	p.AssignIDs()
}

func cleanupOp(op plan.Op) plan.Op {
	switch t := op.(type) {
	case *plan.Step:
		return cleanupStep(t)
	case *plan.Exist:
		t.Pred = cleanupOp(t.Pred)
		return t
	case *plan.BinaryPred:
		t.Left = cleanupOp(t.Left)
		t.Right = cleanupOp(t.Right)
		return t
	case *plan.Join:
		t.Left = cleanupOp(t.Left)
		t.Right = cleanupOp(t.Right)
		return t
	default:
		return op
	}
}

func cleanupStep(s *plan.Step) plan.Op {
	if s.Context != nil {
		s.Context = cleanupOp(s.Context)
	}
	for i, p := range s.Preds {
		s.Preds[i] = cleanupOp(p)
	}

	// self::node() with no predicates is the identity.
	if s.Axis == mass.AxisSelf && s.Test.Type == mass.TestNode && len(s.Preds) == 0 && s.Context != nil {
		return s.Context
	}

	// Collapse the // expansion: descendant-or-self::node() (no preds)
	// followed by a downward step. Positional predicates on the downward
	// step pin it to per-parent grouping (//x[2] != /descendant::x[2]),
	// so they block the collapse.
	if ctx, ok := s.Context.(*plan.Step); ok &&
		ctx.Axis == mass.AxisDescendantOrSelf && ctx.Test.Type == mass.TestNode &&
		len(ctx.Preds) == 0 && orderFree(s.Preds) {
		switch s.Axis {
		case mass.AxisChild, mass.AxisDescendant:
			s.Axis = mass.AxisDescendant
			s.Context = ctx.Context
			return cleanupStep(s)
		case mass.AxisDescendantOrSelf:
			s.Context = ctx.Context
			return cleanupStep(s)
		}
	}

	// Merge a self step into its context child (paper Fig. 5). Safe only
	// when the context step selects element-principal nodes, so the
	// merged name test keeps meaning the same thing — and only for
	// order-free predicates: a positional predicate on a self step sees a
	// singleton set (position() = last() = 1 always), while the same
	// predicate hoisted onto the context step would select by position
	// within the context step's whole generated set.
	if s.Axis == mass.AxisSelf && s.Context != nil && orderFree(s.Preds) {
		if ctx, ok := s.Context.(*plan.Step); ok && ctx.Axis.Principal() == xmldoc.KindElement && ctx.Axis != mass.AxisValue {
			if merged, ok := mergeTests(ctx.Test, s.Test); ok {
				// Narrowing the context step's test changes which nodes its
				// positional predicates count (child::*[2]/self::cc is the
				// 2nd element if it is a cc, not the 2nd cc), so a test
				// change also requires the context's predicates order-free.
				if merged == ctx.Test || orderFree(ctx.Preds) {
					ctx.Test = merged
					ctx.Preds = append(ctx.Preds, s.Preds...)
					return cleanupStep(ctx)
				}
			}
		}
	}
	return s
}

// mergeTests intersects two node tests applied to the same element-
// principal node, returning the combined test. It reports false when the
// intersection is not expressible as a single test (or is empty).
func mergeTests(t1, t2 mass.NodeTest) (mass.NodeTest, bool) {
	elemish := func(t mass.NodeTest) bool {
		return t.Type == mass.TestName || t.Type == mass.TestWildcard
	}
	switch {
	case t2.Type == mass.TestNode:
		// self::node() accepts everything the context step produced.
		return t1, true
	case t2.Type == mass.TestWildcard && elemish(t1):
		return t1, true
	case t2.Type == mass.TestWildcard && t1.Type == mass.TestNode:
		// child::node()/self::*  =>  child::* .
		return t2, true
	case t2.Type == mass.TestName && (t1.Type == mass.TestWildcard || t1.Type == mass.TestNode):
		return t2, true
	case t1.Type == mass.TestName && t2.Type == mass.TestName && t1.Name == t2.Name:
		return t1, true
	default:
		// Disjoint (e.g. text() vs. a name, or two different names): the
		// result is empty; leaving the steps unmerged preserves that.
		return mass.NodeTest{}, false
	}
}
