package opt

import (
	"math"

	"vamana/internal/mass"
	"vamana/internal/plan"
)

// The transformation library (paper §I contribution 3, §VI-C): equivalence
// rules over the physical algebra, adapted from the XPath rewriting
// literature [Olteanu et al., "XPath: Looking Forward"]. Each rule matches
// a step on the plan's context path and produces an equivalent replacement
// subtree; the optimizer accepts it only if the estimated work does not
// increase.
//
// Safety notes common to several rules:
//
//   - Positional predicates (ε operators) pin a step to its delivery
//     order, so rules that change that order require the moved or
//     retained predicates to be order-free (ξ / β only).
//   - Rules that re-anchor a step at the document root require the
//     rewritten chain to start at the context-path leaf (whose context
//     is the document node, which no name test matches).

// A Rule matches a context-path step and returns an equivalent
// replacement for the subtree rooted at that step.
type Rule struct {
	Name string
	// RequiresDistinct marks rules that change result multiplicities
	// (though never the result set); they apply only when the plan root
	// eliminates duplicates — "this optimization is done only when
	// duplicate elimination is desired" (§VIII).
	RequiresDistinct bool
	// Apply returns the replacement subtree (sharing no mutable state
	// with the original) and true when the rule matches s.
	Apply func(s *plan.Step) (plan.Op, bool)
}

// Library returns the built-in transformation rules in the order the
// optimizer tries them.
func Library() []Rule {
	return []Rule{
		{Name: "parent-inversion", RequiresDistinct: true, Apply: parentInversion},
		{Name: "upward-exist-dedup", RequiresDistinct: true, Apply: upwardExistDedup},
		{Name: "child-pushdown", Apply: childPushdown},
		{Name: "value-index", RequiresDistinct: true, Apply: valueIndex},
		{Name: "attr-value-index", Apply: attrValueIndex},
		{Name: "numeric-range-index", RequiresDistinct: true, Apply: numericRangeIndex},
	}
}

// orderFree reports whether every predicate is insensitive to candidate
// order (no ε / positional predicates).
func orderFree(preds []plan.Op) bool {
	for _, p := range preds {
		switch p.(type) {
		case *plan.Exist, *plan.BinaryPred:
		default:
			return false
		}
	}
	return true
}

func elemTest(t mass.NodeTest) bool {
	return t.Type == mass.TestName || t.Type == mass.TestWildcard
}

func clone(op plan.Op) plan.Op {
	if op == nil {
		return nil
	}
	return plan.CloneOp(op)
}

func clonePreds(preds []plan.Op) []plan.Op {
	out := make([]plan.Op, len(preds))
	for i, p := range preds {
		out[i] = clone(p)
	}
	return out
}

// parentInversion rewrites   X::A / parent::P   into an index-driven scan
// of P with an existential child filter — the paper's first Q1 rewrite
// (Fig. 8):
//
//	descendant::A/parent::P  =>  descendant-or-self::P[child::A]
//	child::A/parent::P       =>  self::P[child::A]
//
// It pays off when P is rarer than A (COUNT(P) < COUNT(A)).
func parentInversion(s *plan.Step) (plan.Op, bool) {
	if s.Axis != mass.AxisParent {
		return nil, false
	}
	x, ok := s.Context.(*plan.Step)
	if !ok || !elemTest(x.Test) || !orderFree(x.Preds) || !orderFree(s.Preds) {
		return nil, false
	}
	var newAxis mass.Axis
	switch x.Axis {
	case mass.AxisDescendant:
		newAxis = mass.AxisDescendantOrSelf
	case mass.AxisChild:
		newAxis = mass.AxisSelf
	default:
		return nil, false
	}
	inner := &plan.Step{Axis: mass.AxisChild, Test: x.Test, Preds: clonePreds(x.Preds)}
	preds := append([]plan.Op{&plan.Exist{Pred: inner}}, clonePreds(s.Preds)...)
	return &plan.Step{Axis: newAxis, Test: s.Test, Context: clone(x.Context), Preds: preds}, true
}

// upwardExistDedup rewrites an upward step over a child step into an
// existential filter on the grandparent chain — the paper's Q2 rewrite:
//
//	X / child::W / ancestor::P  =>  X[child::W] / ancestor-or-self::P
//	X / child::W / parent::P    =>  X[child::W] / self::P
//
// Every W child of the same X node produces the same ancestor set, so the
// original plan generates duplicates that the rewritten one never
// materializes ("this optimization is done only when duplicate
// elimination is desired", §VIII).
func upwardExistDedup(s *plan.Step) (plan.Op, bool) {
	if s.Axis != mass.AxisAncestor && s.Axis != mass.AxisParent {
		return nil, false
	}
	x, ok := s.Context.(*plan.Step)
	if !ok || x.Axis != mass.AxisChild || x.Context == nil || !orderFree(s.Preds) {
		return nil, false
	}
	newAxis := mass.AxisAncestorOrSelf
	if s.Axis == mass.AxisParent {
		newAxis = mass.AxisSelf
	}
	y := clone(x.Context)
	ys, ok := y.(*plan.Step)
	if !ok {
		return nil, false
	}
	inner := &plan.Step{Axis: mass.AxisChild, Test: x.Test, Preds: clonePreds(x.Preds)}
	ys.Preds = append(ys.Preds, &plan.Exist{Pred: inner})
	return &plan.Step{Axis: newAxis, Test: s.Test, Context: ys, Preds: clonePreds(s.Preds)}, true
}

// childPushdown pushes a selective child step below its context — the
// paper's second Q1 rewrite (Fig. 8b -> Fig. 11):
//
//	descendant::P[q] / child::C  =>  descendant::C[parent::P[q]]
//
// Applied when the chain starts at the context-path leaf (anchored at the
// document node, which no name test can match, keeping the rewrite
// exact). It pays off when C is rarer than P's output.
func childPushdown(s *plan.Step) (plan.Op, bool) {
	if s.Axis != mass.AxisChild || !elemTest(s.Test) || !orderFree(s.Preds) {
		return nil, false
	}
	x, ok := s.Context.(*plan.Step)
	if !ok || (x.Axis != mass.AxisDescendant && x.Axis != mass.AxisDescendantOrSelf) ||
		!elemTest(x.Test) || x.Context != nil {
		return nil, false
	}
	inner := &plan.Step{Axis: mass.AxisParent, Test: x.Test, Preds: clonePreds(x.Preds)}
	preds := append([]plan.Op{&plan.Exist{Pred: inner}}, clonePreds(s.Preds)...)
	return &plan.Step{Axis: mass.AxisDescendant, Test: s.Test, Preds: preds}, true
}

// valueIndex translates a value-based equality predicate into a value::
// location step — the paper's Q2 rewrite (Fig. 9):
//
//	descendant::T[text() = 'lit']  =>  value::'lit' / parent::T
//
// The value index answers the literal lookup in one probe (TC(lit)
// results), replacing a scan of every T with TC(lit) parent fetches.
func valueIndex(s *plan.Step) (plan.Op, bool) {
	if s.Axis != mass.AxisDescendant || !elemTest(s.Test) || s.Context != nil {
		return nil, false
	}
	for i, pred := range s.Preds {
		b, ok := pred.(*plan.BinaryPred)
		if !ok || b.Cond != plan.CondEQ {
			continue
		}
		lit := splitValueEq(b)
		if lit == nil {
			continue
		}
		rest := append(clonePreds(s.Preds[:i]), clonePreds(s.Preds[i+1:])...)
		if !orderFree(rest) {
			continue
		}
		valueStep := &plan.Step{
			Axis: mass.AxisValue,
			Test: mass.NodeTest{Type: mass.TestName, Name: lit.Value},
		}
		return &plan.Step{Axis: mass.AxisParent, Test: s.Test, Context: valueStep, Preds: rest}, true
	}
	return nil, false
}

// attrValueIndex extends the value-index rewrite to attribute equality —
// the same one-probe value lookup the paper describes for eXist's missing
// case ("predicate expressions involving attributes ... will involve more
// than just one look-up, while in VAMANA the index structure supports
// value-based comparisons in one look-up", §II):
//
//	descendant::T[@a = 'lit']  =>  attr-value::@a='lit' / parent::T
//
// Attribute names are unique per element, so each surviving element is
// produced exactly once; no duplicate elimination is required.
func attrValueIndex(s *plan.Step) (plan.Op, bool) {
	if s.Axis != mass.AxisDescendant || !elemTest(s.Test) || s.Context != nil {
		return nil, false
	}
	for i, pred := range s.Preds {
		b, ok := pred.(*plan.BinaryPred)
		if !ok || b.Cond != plan.CondEQ {
			continue
		}
		lit, attr := splitAttrValueEq(b)
		if lit == nil {
			continue
		}
		rest := append(clonePreds(s.Preds[:i]), clonePreds(s.Preds[i+1:])...)
		if !orderFree(rest) {
			continue
		}
		valueStep := &plan.Step{
			Axis: mass.AxisAttrValue,
			Test: mass.NodeTest{Type: mass.TestName, Name: lit.Value, Attr: attr},
		}
		return &plan.Step{Axis: mass.AxisParent, Test: s.Test, Context: valueStep, Preds: rest}, true
	}
	return nil, false
}

// numericRangeIndex rewrites numeric comparisons on text content into a
// numeric-range index scan — MASS's support for range predicates:
//
//	descendant::T[text() > 100]           =>  num-range::(100,+Inf) / parent::T
//	descendant::T[text() >= a and
//	              text() < b]             =>  num-range::[a,b) / parent::T
//
// Duplicate elimination is required: an element with two in-range text
// children would otherwise be produced twice.
func numericRangeIndex(s *plan.Step) (plan.Op, bool) {
	if s.Axis != mass.AxisDescendant || !elemTest(s.Test) || s.Context != nil {
		return nil, false
	}
	for i, pred := range s.Preds {
		lo, loIncl, hi, hiIncl, ok := extractNumRange(pred)
		if !ok {
			continue
		}
		rest := append(clonePreds(s.Preds[:i]), clonePreds(s.Preds[i+1:])...)
		if !orderFree(rest) {
			continue
		}
		rangeStep := &plan.Step{
			Axis:      mass.AxisNumRange,
			Test:      mass.NodeTest{Type: mass.TestText},
			NumLo:     lo,
			NumLoIncl: loIncl,
			NumHi:     hi,
			NumHiIncl: hiIncl,
		}
		return &plan.Step{Axis: mass.AxisParent, Test: s.Test, Context: rangeStep, Preds: rest}, true
	}
	return nil, false
}

// extractNumRange recognizes a numeric-comparison predicate over
// child::text() — a single comparison or an AND of two — and returns the
// equivalent value range.
func extractNumRange(op plan.Op) (lo float64, loIncl bool, hi float64, hiIncl bool, ok bool) {
	lo, hi = math.Inf(-1), math.Inf(1)
	loIncl, hiIncl = true, true
	b, isB := op.(*plan.BinaryPred)
	if !isB {
		return 0, false, 0, false, false
	}
	apply := func(cmp *plan.BinaryPred) bool {
		bound, dir, ok := numBound(cmp)
		if !ok {
			return false
		}
		switch dir {
		case plan.CondEQ:
			if bound > lo || (bound == lo && loIncl) {
				lo, loIncl = bound, true
			}
			if bound < hi || (bound == hi && hiIncl) {
				hi, hiIncl = bound, true
			}
		case plan.CondGT:
			if bound >= lo {
				lo, loIncl = bound, false
			}
		case plan.CondGE:
			if bound > lo {
				lo, loIncl = bound, true
			}
		case plan.CondLT:
			if bound <= hi {
				hi, hiIncl = bound, false
			}
		case plan.CondLE:
			if bound < hi {
				hi, hiIncl = bound, true
			}
		}
		return true
	}
	if b.Cond == plan.CondAND {
		l, lok := b.Left.(*plan.BinaryPred)
		r, rok := b.Right.(*plan.BinaryPred)
		if !lok || !rok || !apply(l) || !apply(r) {
			return 0, false, 0, false, false
		}
		return lo, loIncl, hi, hiIncl, true
	}
	if !apply(b) {
		return 0, false, 0, false, false
	}
	return lo, loIncl, hi, hiIncl, true
}

// numBound matches one comparison β over (child::text(), numeric literal)
// in either order, returning the bound value and the direction normalized
// to "text() DIR bound".
func numBound(b *plan.BinaryPred) (float64, plan.PredCond, bool) {
	isTextStep := func(op plan.Op) bool {
		st, ok := op.(*plan.Step)
		return ok && st.Axis == mass.AxisChild && st.Test.Type == mass.TestText &&
			st.Context == nil && len(st.Preds) == 0
	}
	numLit := func(op plan.Op) (float64, bool) {
		l, ok := op.(*plan.Literal)
		if ok && l.Numeric && !math.IsNaN(l.Num) {
			return l.Num, true
		}
		return 0, false
	}
	switch {
	case isTextStep(b.Left):
		if v, ok := numLit(b.Right); ok {
			switch b.Cond {
			case plan.CondEQ, plan.CondGT, plan.CondGE, plan.CondLT, plan.CondLE:
				return v, b.Cond, true
			}
		}
	case isTextStep(b.Right):
		if v, ok := numLit(b.Left); ok {
			// lit DIR text()  ==  text() flip(DIR) lit
			switch b.Cond {
			case plan.CondEQ:
				return v, plan.CondEQ, true
			case plan.CondGT:
				return v, plan.CondLT, true
			case plan.CondGE:
				return v, plan.CondLE, true
			case plan.CondLT:
				return v, plan.CondGT, true
			case plan.CondLE:
				return v, plan.CondGE, true
			}
		}
	}
	return 0, 0, false
}

// splitAttrValueEq recognizes β(EQ) over (attribute::name, literal) and
// returns the literal and attribute name, or nil when it does not match.
func splitAttrValueEq(b *plan.BinaryPred) (*plan.Literal, string) {
	classify := func(op plan.Op) (*plan.Literal, bool) {
		if l, ok := op.(*plan.Literal); ok && !l.Numeric {
			return l, true
		}
		return nil, false
	}
	attrStep := func(op plan.Op) (string, bool) {
		st, ok := op.(*plan.Step)
		if ok && st.Axis == mass.AxisAttribute && st.Test.Type == mass.TestName &&
			st.Context == nil && len(st.Preds) == 0 {
			return st.Test.Name, true
		}
		return "", false
	}
	if l, ok := classify(b.Left); ok {
		if a, ok := attrStep(b.Right); ok {
			return l, a
		}
	}
	if l, ok := classify(b.Right); ok {
		if a, ok := attrStep(b.Left); ok {
			return l, a
		}
	}
	return nil, ""
}

// splitValueEq recognizes β(EQ) over (child::text(), literal) in either
// order and returns the literal, or nil when the shape does not match.
func splitValueEq(b *plan.BinaryPred) *plan.Literal {
	classify := func(op plan.Op) (*plan.Literal, bool) {
		if l, ok := op.(*plan.Literal); ok && !l.Numeric {
			return l, true
		}
		return nil, false
	}
	isTextStep := func(op plan.Op) bool {
		st, ok := op.(*plan.Step)
		return ok && st.Axis == mass.AxisChild && st.Test.Type == mass.TestText &&
			st.Context == nil && len(st.Preds) == 0
	}
	if l, ok := classify(b.Left); ok && isTextStep(b.Right) {
		return l
	}
	if l, ok := classify(b.Right); ok && isTextStep(b.Left) {
		return l
	}
	return nil
}
