package xpath

import (
	"fmt"
	"strconv"
	"strings"

	"vamana/internal/mass"
)

// Expr is an XPath expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// LocationPath is a sequence of location steps, optionally absolute
// (anchored at the document root).
type LocationPath struct {
	Absolute bool
	Steps    []*Step
}

// Step is one location step: axis :: node-test [predicates...].
type Step struct {
	Axis       mass.Axis
	Test       mass.NodeTest
	Predicates []Expr
}

// BinaryOp enumerates binary operators.
type BinaryOp uint8

const (
	OpOr BinaryOp = iota
	OpAnd
	OpEq
	OpNeq
	OpLt
	OpLte
	OpGt
	OpGte
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpUnion
)

var binaryOpNames = [...]string{
	OpOr: "or", OpAnd: "and", OpEq: "=", OpNeq: "!=",
	OpLt: "<", OpLte: "<=", OpGt: ">", OpGte: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "div", OpMod: "mod",
	OpUnion: "|",
}

// String returns the XPath spelling of the operator.
func (op BinaryOp) String() string {
	if int(op) < len(binaryOpNames) {
		return binaryOpNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Comparison reports whether the operator is a general comparison
// (candidates for VAMANA's value-index rewrite).
func (op BinaryOp) Comparison() bool {
	switch op {
	case OpEq, OpNeq, OpLt, OpLte, OpGt, OpGte:
		return true
	}
	return false
}

// Binary is a binary expression.
type Binary struct {
	Op          BinaryOp
	Left, Right Expr
}

// Unary is unary minus.
type Unary struct {
	Operand Expr
}

// Literal is a quoted string literal.
type Literal struct {
	Value string
}

// Number is a numeric literal.
type Number struct {
	Value float64
}

// FuncCall is a core-library function call.
type FuncCall struct {
	Name string
	Args []Expr
}

// VarRef is a variable reference ($name); variables are bound by the
// execution context (used for XQuery-style context feeding, paper §V-A).
type VarRef struct {
	Name string
}

// Filter is a primary expression with predicates and an optional trailing
// relative path, e.g. (…)[2]/child::x .
type Filter struct {
	Primary    Expr
	Predicates []Expr
	Path       *LocationPath // nil when there is no trailing path
}

func (*LocationPath) exprNode() {}
func (*Binary) exprNode()       {}
func (*Unary) exprNode()        {}
func (*Literal) exprNode()      {}
func (*Number) exprNode()       {}
func (*FuncCall) exprNode()     {}
func (*VarRef) exprNode()       {}
func (*Filter) exprNode()       {}

// String renders the path in unabbreviated XPath syntax.
func (p *LocationPath) String() string {
	var b strings.Builder
	if p.Absolute {
		b.WriteByte('/')
	}
	for i, s := range p.Steps {
		if i > 0 {
			b.WriteByte('/')
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// String renders the step in unabbreviated syntax.
func (s *Step) String() string {
	var b strings.Builder
	if s.Axis == mass.AxisValue || s.Axis == mass.AxisAttrValue {
		fmt.Fprintf(&b, "%s::%s", s.Axis, strconv.Quote(s.Test.Name))
	} else {
		fmt.Fprintf(&b, "%s::%s", s.Axis, s.Test)
	}
	for _, p := range s.Predicates {
		fmt.Fprintf(&b, "[%s]", p)
	}
	return b.String()
}

func (e *Binary) String() string {
	return fmt.Sprintf("%s %s %s", e.Left, e.Op, e.Right)
}

func (e *Unary) String() string { return fmt.Sprintf("-%s", e.Operand) }

// String renders the literal in XPath 1.0 syntax, which has no escape
// sequences: the value is wrapped in whichever quote kind it does not
// contain. A parsed literal can hold at most one quote kind, so one of
// the two delimiters is always available.
func (e *Literal) String() string {
	if strings.ContainsRune(e.Value, '\'') {
		return `"` + e.Value + `"`
	}
	return "'" + e.Value + "'"
}

// String renders the number without an exponent — the XPath 1.0 Number
// production is digits-and-dot only, so 'g' formatting (1e+08) would not
// reparse. Parsed numbers are always finite and non-negative, which 'f'
// renders lexably for any magnitude.
func (e *Number) String() string {
	return strconv.FormatFloat(e.Value, 'f', -1, 64)
}

func (e *FuncCall) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
}

func (e *VarRef) String() string { return "$" + e.Name }

func (e *Filter) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s)", e.Primary)
	for _, p := range e.Predicates {
		fmt.Fprintf(&b, "[%s]", p)
	}
	if e.Path != nil {
		b.WriteByte('/')
		b.WriteString(e.Path.String())
	}
	return b.String()
}
