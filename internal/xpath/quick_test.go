package xpath

import (
	"math/rand"
	"testing"
)

// TestRoundTripStability: for randomly generated expressions, String()
// output re-parses to an AST whose rendering is identical (a fixpoint
// after one round trip). This pins the parser and printer against each
// other across the whole grammar.
func TestRoundTripStability(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 3000; i++ {
		expr := randomExpr(rng, 0)
		e1, err := Parse(expr)
		if err != nil {
			t.Fatalf("generated expression does not parse: %q: %v", expr, err)
		}
		r1 := e1.String()
		e2, err := Parse(r1)
		if err != nil {
			t.Fatalf("rendering does not re-parse: %q (from %q): %v", r1, expr, err)
		}
		if r2 := e2.String(); r1 != r2 {
			t.Fatalf("round trip unstable:\n orig: %q\n r1:   %q\n r2:   %q", expr, r1, r2)
		}
	}
}

var rtNames = []string{"person", "address", "name", "a", "b-c", "x_1"}
var rtAxes = []string{
	"child", "descendant", "descendant-or-self", "parent", "ancestor",
	"ancestor-or-self", "following", "following-sibling", "preceding",
	"preceding-sibling", "self", "attribute",
}
var rtFuncs = []string{"count", "not", "string", "number", "boolean", "normalize-space"}

// randomExpr generates a syntactically valid XPath expression.
func randomExpr(rng *rand.Rand, depth int) string {
	if depth > 3 {
		return rtNames[rng.Intn(len(rtNames))]
	}
	switch rng.Intn(8) {
	case 0:
		return randomPath(rng, depth)
	case 1:
		return "'" + rtNames[rng.Intn(len(rtNames))] + "'"
	case 2:
		return []string{"0", "1", "42", "3.5", "100"}[rng.Intn(5)]
	case 3:
		op := []string{"=", "!=", "<", "<=", ">", ">=", "and", "or", "+", "-", "*", "div", "mod"}[rng.Intn(13)]
		return randomExpr(rng, depth+1) + " " + op + " " + randomExpr(rng, depth+1)
	case 4:
		return rtFuncs[rng.Intn(len(rtFuncs))] + "(" + randomPath(rng, depth+1) + ")"
	case 5:
		return randomPath(rng, depth) + " | " + randomPath(rng, depth+1)
	case 6:
		return "position() = " + []string{"1", "2", "last()"}[rng.Intn(3)]
	default:
		return randomPath(rng, depth)
	}
}

func randomPath(rng *rand.Rand, depth int) string {
	var out string
	if rng.Intn(2) == 0 {
		out = "//"
	} else if rng.Intn(2) == 0 {
		out = "/"
	}
	steps := 1 + rng.Intn(3)
	for i := 0; i < steps; i++ {
		if i > 0 {
			if rng.Intn(4) == 0 {
				out += "//"
			} else {
				out += "/"
			}
		}
		out += randomStep(rng, depth)
	}
	return out
}

func randomStep(rng *rand.Rand, depth int) string {
	var step string
	switch rng.Intn(6) {
	case 0:
		step = rtAxes[rng.Intn(len(rtAxes))] + "::" + rtNames[rng.Intn(len(rtNames))]
	case 1:
		step = "@" + rtNames[rng.Intn(len(rtNames))]
	case 2:
		step = "*"
	case 3:
		step = "text()"
	default:
		step = rtNames[rng.Intn(len(rtNames))]
	}
	if depth < 3 && rng.Intn(3) == 0 {
		step += "[" + randomExpr(rng, depth+2) + "]"
	}
	return step
}
