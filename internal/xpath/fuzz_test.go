package xpath

import (
	"fmt"
	"testing"
)

// FuzzParse asserts the parser's two robustness properties on arbitrary
// input: it never panics, and any expression it accepts round-trips
// through String() — the rendering reparses successfully and renders to
// the same string again (String is a fixed point after one step; the
// original source may differ in whitespace or abbreviations).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"//person/address",
		"/descendant::name/parent::*/self::person/address",
		"//province[text()='Vermont']/ancestor::person",
		"//person[@id='person5']",
		"//address[zipcode > 50]/city",
		"//person[count(watches/watch) > 1]/name",
		"//item[contains(name, 'gold')]",
		"//category | //edge",
		"//person[2]/name | //a[last()]",
		"substring-before(//a, 'x')",
		"-(1 + 2.5) * $v",
		"book/../@*",
		"//a[not(b)][starts-with(c, \"d\")]",
		"a[b='it''s']",
		"'lone",
		"((",
		"@",
		"a::b::c",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		e, err := Parse(expr) // must not panic
		if err != nil {
			return
		}
		s1 := fmt.Sprint(e)
		e2, err := Parse(s1)
		if err != nil {
			t.Fatalf("String() output does not reparse:\n  source: %q\n  render: %q\n  error: %v", expr, s1, err)
		}
		s2 := fmt.Sprint(e2)
		if s1 != s2 {
			t.Fatalf("String() is not a fixed point:\n  source: %q\n  first:  %q\n  second: %q", expr, s1, s2)
		}
	})
}
