package xpath

import (
	"strings"
	"testing"

	"vamana/internal/mass"
)

func mustParse(t *testing.T, expr string) Expr {
	t.Helper()
	e, err := Parse(expr)
	if err != nil {
		t.Fatalf("Parse(%q): %v", expr, err)
	}
	return e
}

func pathOf(t *testing.T, expr string) *LocationPath {
	t.Helper()
	e := mustParse(t, expr)
	lp, ok := e.(*LocationPath)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *LocationPath", expr, e)
	}
	return lp
}

func TestPaperQueries(t *testing.T) {
	// The five experiment queries (§VIII) plus the running examples.
	queries := []string{
		"//person/address",
		"//watches/watch/ancestor::person",
		"/descendant::name/parent::*/self::person/address",
		"//itemref/following-sibling::price/parent::*",
		"//province[text()='Vermont']/ancestor::person",
		"descendant::name/parent::*/self::person/address",
		"//name[ text() = 'Yung Flach' ]/following-sibling::emailaddress",
	}
	for _, q := range queries {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
}

func TestAbbreviatedExpansion(t *testing.T) {
	lp := pathOf(t, "//person/address")
	if !lp.Absolute {
		t.Fatal("// path must be absolute")
	}
	if len(lp.Steps) != 3 {
		t.Fatalf("steps = %d, want 3 (descendant-or-self::node, child::person, child::address)", len(lp.Steps))
	}
	if lp.Steps[0].Axis != mass.AxisDescendantOrSelf || lp.Steps[0].Test.Type != mass.TestNode {
		t.Fatalf("step0 = %s", lp.Steps[0])
	}
	if lp.Steps[1].Axis != mass.AxisChild || lp.Steps[1].Test.Name != "person" {
		t.Fatalf("step1 = %s", lp.Steps[1])
	}
}

func TestAllAxesParse(t *testing.T) {
	axes := []string{
		"child", "descendant", "descendant-or-self", "parent", "ancestor",
		"ancestor-or-self", "following", "following-sibling", "preceding",
		"preceding-sibling", "self", "attribute", "namespace",
	}
	for _, a := range axes {
		lp := pathOf(t, a+"::x")
		want, _ := mass.ParseAxis(a)
		if lp.Steps[0].Axis != want {
			t.Errorf("axis %q parsed as %v", a, lp.Steps[0].Axis)
		}
	}
}

func TestAbbreviations(t *testing.T) {
	cases := []struct {
		expr string
		axis mass.Axis
		test mass.TestType
	}{
		{".", mass.AxisSelf, mass.TestNode},
		{"..", mass.AxisParent, mass.TestNode},
		{"@id", mass.AxisAttribute, mass.TestName},
		{"@*", mass.AxisAttribute, mass.TestWildcard},
		{"*", mass.AxisChild, mass.TestWildcard},
		{"text()", mass.AxisChild, mass.TestText},
		{"node()", mass.AxisChild, mass.TestNode},
		{"comment()", mass.AxisChild, mass.TestComment},
	}
	for _, c := range cases {
		lp := pathOf(t, c.expr)
		if len(lp.Steps) != 1 {
			t.Fatalf("%q: steps = %d", c.expr, len(lp.Steps))
		}
		s := lp.Steps[0]
		if s.Axis != c.axis || s.Test.Type != c.test {
			t.Errorf("%q parsed as %s::%s", c.expr, s.Axis, s.Test)
		}
	}
}

func TestRootOnly(t *testing.T) {
	lp := pathOf(t, "/")
	if !lp.Absolute || len(lp.Steps) != 0 {
		t.Fatalf("bare / = %+v", lp)
	}
}

func TestPredicateStructure(t *testing.T) {
	lp := pathOf(t, "//province[text()='Vermont']/ancestor::person")
	prov := lp.Steps[1]
	if len(prov.Predicates) != 1 {
		t.Fatalf("predicates = %d", len(prov.Predicates))
	}
	b, ok := prov.Predicates[0].(*Binary)
	if !ok || b.Op != OpEq {
		t.Fatalf("predicate = %s", prov.Predicates[0])
	}
	if _, ok := b.Left.(*LocationPath); !ok {
		t.Fatalf("predicate left = %T", b.Left)
	}
	lit, ok := b.Right.(*Literal)
	if !ok || lit.Value != "Vermont" {
		t.Fatalf("predicate right = %v", b.Right)
	}
}

func TestPositionPredicates(t *testing.T) {
	lp := pathOf(t, "//person[3]")
	pred := lp.Steps[1].Predicates[0]
	n, ok := pred.(*Number)
	if !ok || n.Value != 3 {
		t.Fatalf("positional predicate = %v", pred)
	}
	lp = pathOf(t, "//person[position()=last()]")
	b, ok := lp.Steps[1].Predicates[0].(*Binary)
	if !ok || b.Op != OpEq {
		t.Fatalf("predicate = %v", lp.Steps[1].Predicates[0])
	}
	if f, ok := b.Left.(*FuncCall); !ok || f.Name != "position" {
		t.Fatalf("left = %v", b.Left)
	}
}

func TestRangePredicates(t *testing.T) {
	lp := pathOf(t, "//person[zipcode >= 10 and zipcode < 99]")
	pred, ok := lp.Steps[1].Predicates[0].(*Binary)
	if !ok || pred.Op != OpAnd {
		t.Fatalf("predicate = %v", lp.Steps[1].Predicates[0])
	}
	l, r := pred.Left.(*Binary), pred.Right.(*Binary)
	if l.Op != OpGte || r.Op != OpLt {
		t.Fatalf("ops = %v %v", l.Op, r.Op)
	}
}

func TestBooleanPrecedence(t *testing.T) {
	e := mustParse(t, "a or b and c")
	b := e.(*Binary)
	if b.Op != OpOr {
		t.Fatalf("top op = %v, want or", b.Op)
	}
	if rb := b.Right.(*Binary); rb.Op != OpAnd {
		t.Fatalf("right = %v, want and", rb.Op)
	}
}

func TestArithmetic(t *testing.T) {
	e := mustParse(t, "1 + 2 * 3")
	b := e.(*Binary)
	if b.Op != OpAdd {
		t.Fatalf("top = %v", b.Op)
	}
	if rb := b.Right.(*Binary); rb.Op != OpMul {
		t.Fatalf("right = %v", rb.Op)
	}
	e = mustParse(t, "10 div 2 mod 3")
	if e.(*Binary).Op != OpMod {
		t.Fatalf("div/mod chain top = %v", e.(*Binary).Op)
	}
	e = mustParse(t, "-5 + 1")
	if _, ok := e.(*Binary).Left.(*Unary); !ok {
		t.Fatalf("unary minus lost: %v", e)
	}
}

func TestUnion(t *testing.T) {
	e := mustParse(t, "//a | //b | //c")
	b, ok := e.(*Binary)
	if !ok || b.Op != OpUnion {
		t.Fatalf("union = %v", e)
	}
	if lb := b.Left.(*Binary); lb.Op != OpUnion {
		t.Fatalf("left assoc broken: %v", b.Left)
	}
}

func TestFunctionCalls(t *testing.T) {
	e := mustParse(t, "count(//person)")
	f, ok := e.(*FuncCall)
	if !ok || f.Name != "count" || len(f.Args) != 1 {
		t.Fatalf("count parse = %v", e)
	}
	e = mustParse(t, "contains(name, 'Flach')")
	f = e.(*FuncCall)
	if len(f.Args) != 2 {
		t.Fatalf("contains args = %d", len(f.Args))
	}
	e = mustParse(t, "true()")
	if f = e.(*FuncCall); len(f.Args) != 0 {
		t.Fatalf("true() args = %d", len(f.Args))
	}
}

func TestFilterWithTrailingPath(t *testing.T) {
	e := mustParse(t, "(//person)[1]/address")
	f, ok := e.(*Filter)
	if !ok {
		t.Fatalf("filter = %T", e)
	}
	if len(f.Predicates) != 1 || f.Path == nil {
		t.Fatalf("filter = %+v", f)
	}
	if f.Path.Steps[0].Test.Name != "address" {
		t.Fatalf("trailing path = %s", f.Path)
	}
}

func TestVariableReference(t *testing.T) {
	e := mustParse(t, "$ctx/child::name")
	f, ok := e.(*Filter)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if _, ok := f.Primary.(*VarRef); !ok {
		t.Fatalf("primary = %T", f.Primary)
	}
}

func TestDoubleSlashInside(t *testing.T) {
	lp := pathOf(t, "/site//person")
	if len(lp.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(lp.Steps))
	}
	if lp.Steps[1].Axis != mass.AxisDescendantOrSelf {
		t.Fatalf("middle step = %s", lp.Steps[1])
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"", "//", "person[", "person]", "foo::bar", "//person[", "@",
		"descendant::", "a='unterminated", "a ! b", "value::x",
		"person[]", "f(", "(a", "..b", "1.2.3:",
	}
	for _, expr := range bad {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", expr)
		} else if !strings.Contains(err.Error(), "xpath:") {
			t.Errorf("Parse(%q) error lacks context: %v", expr, err)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	// String() output must itself re-parse to an equal AST rendering.
	exprs := []string{
		"//person/address",
		"//province[text()='Vermont']/ancestor::person",
		"//person[position()=2]",
		"count(//person) > 5",
		"//a | //b",
	}
	for _, expr := range exprs {
		e := mustParse(t, expr)
		r1 := e.String()
		e2, err := Parse(r1)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", r1, expr, err)
		}
		if r2 := e2.String(); r1 != r2 {
			t.Errorf("round-trip unstable: %q -> %q", r1, r2)
		}
	}
}

func TestParsePath(t *testing.T) {
	if _, err := ParsePath("//person"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParsePath("1 + 2"); err == nil {
		t.Fatal("ParsePath accepted a non-path")
	}
}
