package xpath

import (
	"fmt"
	"strconv"

	"vamana/internal/mass"
)

// Parse compiles an XPath 1.0 expression into its AST.
func Parse(expr string) (Expr, error) {
	toks, err := lex(expr)
	if err != nil {
		return nil, err
	}
	p := &parser{expr: expr, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %s", p.peek().kind)
	}
	return e, nil
}

// ParsePath compiles an expression that must be a location path (the form
// the VAMANA engine executes at top level).
func ParsePath(expr string) (*LocationPath, error) {
	e, err := Parse(expr)
	if err != nil {
		return nil, err
	}
	lp, ok := e.(*LocationPath)
	if !ok {
		return nil, &SyntaxError{Expr: expr, Pos: 0, Msg: "expression is not a location path"}
	}
	return lp, nil
}

type parser struct {
	expr string
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token { // one token of lookahead past peek
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(k tokenKind) bool {
	if p.peek().kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.peek().kind != k {
		return token{}, p.errorf("expected %s, found %s", k, p.peek().kind)
	}
	return p.next(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Expr: p.expr, Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

// parseExpr parses a full expression (OrExpr).
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && p.peek().text == "or" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && p.peek().text == "and" {
		p.next()
		right, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseEquality() (Expr, error) {
	left, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch p.peek().kind {
		case tokEq:
			op = OpEq
		case tokNeq:
			op = OpNeq
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseRelational() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch p.peek().kind {
		case tokLt:
			op = OpLt
		case tokLte:
			op = OpLte
		case tokGt:
			op = OpGt
		case tokGte:
			op = OpGte
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch p.peek().kind {
		case tokPlus:
			op = OpAdd
		case tokMinus:
			op = OpSub
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.peek().kind == tokStar:
			op = OpMul
		case p.peek().kind == tokIdent && p.peek().text == "div":
			op = OpDiv
		case p.peek().kind == tokIdent && p.peek().text == "mod":
			op = OpMod
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokMinus) {
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Operand: operand}, nil
	}
	return p.parseUnion()
}

func (p *parser) parseUnion() (Expr, error) {
	left, err := p.parsePathExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPipe) {
		right, err := p.parsePathExpr()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpUnion, Left: left, Right: right}
	}
	return left, nil
}

// parsePathExpr parses a PathExpr: either a location path, or a filter
// expression optionally followed by '/' RelativeLocationPath.
func (p *parser) parsePathExpr() (Expr, error) {
	if p.startsFilter() {
		prim, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		f := &Filter{Primary: prim}
		for p.peek().kind == tokLBracket {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			f.Predicates = append(f.Predicates, pred)
		}
		if p.peek().kind == tokSlash || p.peek().kind == tokSlash2 {
			dslash := p.next().kind == tokSlash2
			path := &LocationPath{}
			if dslash {
				path.Steps = append(path.Steps, descOrSelfStep())
			}
			if err := p.parseRelativePath(path); err != nil {
				return nil, err
			}
			f.Path = path
		}
		if len(f.Predicates) == 0 && f.Path == nil {
			return prim, nil
		}
		return f, nil
	}
	return p.parseLocationPath()
}

// startsFilter reports whether the upcoming tokens begin a filter/primary
// expression rather than a location path. A lone identifier followed by
// '(' is a function call — except the node-test spellings.
func (p *parser) startsFilter() bool {
	switch p.peek().kind {
	case tokLiteral, tokNumber, tokDollar:
		return true
	case tokLParen:
		return true
	case tokIdent:
		if p.peek2().kind != tokLParen {
			return false
		}
		switch p.peek().text {
		case "node", "text", "comment", "processing-instruction":
			return false // node tests, not functions
		}
		return true
	}
	return false
}

func (p *parser) parsePrimary() (Expr, error) {
	switch t := p.peek(); t.kind {
	case tokLiteral:
		p.next()
		return &Literal{Value: t.text}, nil
	case tokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &Number{Value: v}, nil
	case tokDollar:
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		return &VarRef{Name: name.text}, nil
	case tokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		name := p.next().text
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		call := &FuncCall{Name: name}
		if p.peek().kind != tokRParen {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.accept(tokComma) {
					break
				}
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return call, nil
	default:
		return nil, p.errorf("expected expression, found %s", t.kind)
	}
}

func descOrSelfStep() *Step {
	return &Step{Axis: mass.AxisDescendantOrSelf, Test: mass.NodeTest{Type: mass.TestNode}}
}

func (p *parser) parseLocationPath() (Expr, error) {
	path := &LocationPath{}
	switch p.peek().kind {
	case tokSlash:
		p.next()
		path.Absolute = true
		if !p.startsStep() {
			return path, nil // bare "/" selects the document root
		}
	case tokSlash2:
		p.next()
		path.Absolute = true
		path.Steps = append(path.Steps, descOrSelfStep())
	}
	if err := p.parseRelativePath(path); err != nil {
		return nil, err
	}
	return path, nil
}

func (p *parser) startsStep() bool {
	switch p.peek().kind {
	case tokIdent, tokStar, tokAt, tokDot, tokDotDot:
		return true
	}
	return false
}

func (p *parser) parseRelativePath(path *LocationPath) error {
	for {
		step, err := p.parseStep()
		if err != nil {
			return err
		}
		path.Steps = append(path.Steps, step)
		switch p.peek().kind {
		case tokSlash:
			p.next()
		case tokSlash2:
			p.next()
			path.Steps = append(path.Steps, descOrSelfStep())
		default:
			return nil
		}
	}
}

func (p *parser) parseStep() (*Step, error) {
	step := &Step{Axis: mass.AxisChild}
	switch p.peek().kind {
	case tokDot:
		p.next()
		step.Axis = mass.AxisSelf
		step.Test = mass.NodeTest{Type: mass.TestNode}
		return p.parsePredicates(step)
	case tokDotDot:
		p.next()
		step.Axis = mass.AxisParent
		step.Test = mass.NodeTest{Type: mass.TestNode}
		return p.parsePredicates(step)
	case tokAt:
		p.next()
		step.Axis = mass.AxisAttribute
	case tokIdent:
		// Axis specifier?
		if p.peek2().kind == tokAxis {
			axis, ok := mass.ParseAxis(p.peek().text)
			if !ok || axis == mass.AxisValue || axis == mass.AxisAttrValue || axis == mass.AxisNumRange {
				return nil, p.errorf("unknown axis %q", p.peek().text)
			}
			p.next()
			p.next() // '::'
			step.Axis = axis
		}
	}
	test, err := p.parseNodeTest(step.Axis)
	if err != nil {
		return nil, err
	}
	step.Test = test
	return p.parsePredicates(step)
}

func (p *parser) parseNodeTest(axis mass.Axis) (mass.NodeTest, error) {
	switch t := p.peek(); t.kind {
	case tokStar:
		p.next()
		return mass.NodeTest{Type: mass.TestWildcard}, nil
	case tokIdent:
		name := p.next().text
		if p.peek().kind == tokLParen {
			p.next()
			var nt mass.NodeTest
			switch name {
			case "text":
				nt = mass.NodeTest{Type: mass.TestText}
			case "node":
				nt = mass.NodeTest{Type: mass.TestNode}
			case "comment":
				nt = mass.NodeTest{Type: mass.TestComment}
			case "processing-instruction":
				nt = mass.NodeTest{Type: mass.TestPI}
				if p.peek().kind == tokLiteral {
					nt.Name = p.next().text
				}
			default:
				return mass.NodeTest{}, p.errorf("unknown node type %q", name)
			}
			if _, err := p.expect(tokRParen); err != nil {
				return mass.NodeTest{}, err
			}
			return nt, nil
		}
		return mass.NodeTest{Type: mass.TestName, Name: name}, nil
	default:
		return mass.NodeTest{}, p.errorf("expected node test, found %s", t.kind)
	}
}

func (p *parser) parsePredicates(step *Step) (*Step, error) {
	for p.peek().kind == tokLBracket {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		step.Predicates = append(step.Predicates, pred)
	}
	return step, nil
}

func (p *parser) parsePredicate() (Expr, error) {
	if _, err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	return e, nil
}
