// Package xpath implements the XPath 1.0 front-end of VAMANA: a lexer, a
// recursive-descent parser and the abstract syntax tree the plan builder
// consumes. The supported language covers location paths over all 13
// axes, abbreviated syntax (//, @, ., ..), value/range/position
// predicates, the boolean connectives, node-set union, arithmetic, and
// the core function library the paper's workloads need.
package xpath

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLiteral  // quoted string
	tokSlash    // /
	tokSlash2   // //
	tokLBracket // [
	tokRBracket // ]
	tokLParen   // (
	tokRParen   // )
	tokAt       // @
	tokComma    // ,
	tokAxis     // ::
	tokDot      // .
	tokDotDot   // ..
	tokStar     // *
	tokPipe     // |
	tokEq       // =
	tokNeq      // !=
	tokLt       // <
	tokLte      // <=
	tokGt       // >
	tokGte      // >=
	tokPlus     // +
	tokMinus    // -
	tokDollar   // $
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of expression"
	case tokIdent:
		return "name"
	case tokNumber:
		return "number"
	case tokLiteral:
		return "literal"
	case tokSlash:
		return "'/'"
	case tokSlash2:
		return "'//'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokAt:
		return "'@'"
	case tokComma:
		return "','"
	case tokAxis:
		return "'::'"
	case tokDot:
		return "'.'"
	case tokDotDot:
		return "'..'"
	case tokStar:
		return "'*'"
	case tokPipe:
		return "'|'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLte:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGte:
		return "'>='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokDollar:
		return "'$'"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// SyntaxError reports a lexical or grammatical error with its byte offset
// in the expression.
type SyntaxError struct {
	Expr string
	Pos  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xpath: %s at offset %d in %q", e.Msg, e.Pos, e.Expr)
}

// lex tokenizes the expression.
func lex(expr string) ([]token, error) {
	var toks []token
	i := 0
	fail := func(pos int, format string, args ...any) error {
		return &SyntaxError{Expr: expr, Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
	emit := func(k tokenKind, text string, pos int) {
		toks = append(toks, token{kind: k, text: text, pos: pos})
	}
	for i < len(expr) {
		c := expr[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/':
			if i+1 < len(expr) && expr[i+1] == '/' {
				emit(tokSlash2, "//", i)
				i += 2
			} else {
				emit(tokSlash, "/", i)
				i++
			}
		case c == '[':
			emit(tokLBracket, "[", i)
			i++
		case c == ']':
			emit(tokRBracket, "]", i)
			i++
		case c == '(':
			emit(tokLParen, "(", i)
			i++
		case c == ')':
			emit(tokRParen, ")", i)
			i++
		case c == '@':
			emit(tokAt, "@", i)
			i++
		case c == ',':
			emit(tokComma, ",", i)
			i++
		case c == '$':
			emit(tokDollar, "$", i)
			i++
		case c == '|':
			emit(tokPipe, "|", i)
			i++
		case c == '*':
			emit(tokStar, "*", i)
			i++
		case c == '+':
			emit(tokPlus, "+", i)
			i++
		case c == '-':
			emit(tokMinus, "-", i)
			i++
		case c == '=':
			emit(tokEq, "=", i)
			i++
		case c == '!':
			if i+1 < len(expr) && expr[i+1] == '=' {
				emit(tokNeq, "!=", i)
				i += 2
			} else {
				return nil, fail(i, "unexpected '!'")
			}
		case c == '<':
			if i+1 < len(expr) && expr[i+1] == '=' {
				emit(tokLte, "<=", i)
				i += 2
			} else {
				emit(tokLt, "<", i)
				i++
			}
		case c == '>':
			if i+1 < len(expr) && expr[i+1] == '=' {
				emit(tokGte, ">=", i)
				i += 2
			} else {
				emit(tokGt, ">", i)
				i++
			}
		case c == ':':
			if i+1 < len(expr) && expr[i+1] == ':' {
				emit(tokAxis, "::", i)
				i += 2
			} else {
				return nil, fail(i, "unexpected ':' (did you mean '::'?)")
			}
		case c == '.':
			switch {
			case i+1 < len(expr) && expr[i+1] == '.':
				emit(tokDotDot, "..", i)
				i += 2
			case i+1 < len(expr) && isDigit(expr[i+1]):
				start := i
				i++
				for i < len(expr) && isDigit(expr[i]) {
					i++
				}
				emit(tokNumber, expr[start:i], start)
			default:
				emit(tokDot, ".", i)
				i++
			}
		case c == '\'' || c == '"':
			quote := c
			start := i
			i++
			j := strings.IndexByte(expr[i:], quote)
			if j < 0 {
				return nil, fail(start, "unterminated string literal")
			}
			emit(tokLiteral, expr[i:i+j], start)
			i += j + 1
		case isDigit(c):
			start := i
			for i < len(expr) && isDigit(expr[i]) {
				i++
			}
			if i < len(expr) && expr[i] == '.' {
				i++
				for i < len(expr) && isDigit(expr[i]) {
					i++
				}
			}
			emit(tokNumber, expr[start:i], start)
		case isNameStart(rune(c)):
			start := i
			for i < len(expr) && isNameChar(rune(expr[i])) {
				i++
			}
			emit(tokIdent, expr[start:i], start)
		default:
			return nil, fail(i, "unexpected character %q", c)
		}
	}
	emit(tokEOF, "", len(expr))
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
