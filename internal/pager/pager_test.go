package pager

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func fill(b byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestMemoryRoundTrip(t *testing.T) {
	p := NewMemory()
	defer p.Close()
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id == InvalidPage {
		t.Fatal("allocated invalid page id")
	}
	want := fill(0xAB)
	if err := p.Write(id, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := p.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("page contents mismatch")
	}
}

func TestAllocateDistinct(t *testing.T) {
	p := NewMemory()
	defer p.Close()
	seen := map[PageID]bool{}
	for i := 0; i < 100; i++ {
		id, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("page %d allocated twice", id)
		}
		seen[id] = true
	}
}

func TestFreeListReuse(t *testing.T) {
	p := NewMemory()
	defer p.Close()
	id, _ := p.Allocate()
	if err := p.Free(id); err != nil {
		t.Fatal(err)
	}
	id2, _ := p.Allocate()
	if id2 != id {
		t.Fatalf("freed page not reused: got %d, want %d", id2, id)
	}
}

func TestPageRangeErrors(t *testing.T) {
	p := NewMemory()
	defer p.Close()
	buf := make([]byte, PageSize)
	if err := p.Read(99, buf); err != ErrPageRange {
		t.Fatalf("Read out of range: %v", err)
	}
	if err := p.Write(99, buf); err != ErrPageRange {
		t.Fatalf("Write out of range: %v", err)
	}
	if err := p.Free(0); err != ErrPageRange {
		t.Fatalf("Free meta page 0: %v", err)
	}
	if err := p.Free(1); err != ErrPageRange {
		t.Fatalf("Free meta page 1: %v", err)
	}
}

func TestBadBufferSize(t *testing.T) {
	p := NewMemory()
	defer p.Close()
	id, _ := p.Allocate()
	if err := p.Write(id, make([]byte, 10)); err == nil {
		t.Fatal("short write buffer accepted")
	}
	if err := p.Read(id, make([]byte, 10)); err == nil {
		t.Fatal("short read buffer accepted")
	}
}

func TestFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.vam")
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if err := p.Write(id, fill(byte('A'+i))); err != nil {
			t.Fatal(err)
		}
	}
	// Free one page so the free list round-trips too.
	if err := p.Free(ids[2]); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	buf := make([]byte, PageSize)
	for i, id := range ids {
		if i == 2 {
			continue
		}
		if err := p2.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte('A'+i) {
			t.Fatalf("page %d content lost: %q", id, buf[0])
		}
	}
	// The freed page must be reused before any new page.
	id, err := p2.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != ids[2] {
		t.Fatalf("free list not restored: got %d, want %d", id, ids[2])
	}
}

func TestClosedErrors(t *testing.T) {
	p := NewMemory()
	p.Close()
	if _, err := p.Allocate(); err != ErrClosed {
		t.Fatalf("Allocate after close: %v", err)
	}
	if err := p.Read(0, make([]byte, PageSize)); err != ErrClosed {
		t.Fatalf("Read after close: %v", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.vam")
	junk := make([]byte, 2*DiskPageSize)
	copy(junk, []byte("NOTAPAGEFILE"))
	if err := os.WriteFile(path, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path)
	if !errors.Is(err, ErrTornMeta) {
		t.Fatalf("Open of a non-pager file: got %v, want ErrTornMeta", err)
	}
}

func TestUserMetaPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.vam")
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var m [userMetaSize]byte
	copy(m[:], []byte("catalog-root=42"))
	p.SetUserMeta(m)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.UserMeta(); got != m {
		t.Fatalf("user meta lost: %q", got[:])
	}
}
