package pager

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

// vfill returns a PageSize buffer of repeated b.
func vfill(b byte) []byte {
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

// newTestPagers returns a memory pager and a file pager, so every MVCC
// test runs against both modes.
func newTestPagers(t *testing.T) map[string]*Pager {
	t.Helper()
	fp, err := Open(filepath.Join(t.TempDir(), "mvcc.vamana"))
	if err != nil {
		t.Fatalf("open file pager: %v", err)
	}
	t.Cleanup(func() { fp.Close() })
	mp := NewMemory()
	t.Cleanup(func() { mp.Close() })
	return map[string]*Pager{"memory": mp, "file": fp}
}

func mustAlloc(t *testing.T, p *Pager) PageID {
	t.Helper()
	id, err := p.Allocate()
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	return id
}

func mustWrite(t *testing.T, p *Pager, id PageID, img []byte) {
	t.Helper()
	if err := p.Write(id, img); err != nil {
		t.Fatalf("write page %d: %v", id, err)
	}
}

func readVia(t *testing.T, v *View, id PageID) []byte {
	t.Helper()
	buf := make([]byte, PageSize)
	if err := v.Read(id, buf); err != nil {
		t.Fatalf("view read page %d: %v", id, err)
	}
	return buf
}

// TestViewPinsCommittedImage is the pager-level isolation property: a
// view pinned before later commits keeps reading the images current at
// its epoch, across any number of overwrites, in both pager modes.
func TestViewPinsCommittedImage(t *testing.T) {
	for mode, p := range newTestPagers(t) {
		t.Run(mode, func(t *testing.T) {
			id := mustAlloc(t, p)
			mustWrite(t, p, id, vfill('a'))
			if err := p.CommitVersion(); err != nil {
				t.Fatalf("commit a: %v", err)
			}
			va := p.PinView()
			defer va.Close()

			mustWrite(t, p, id, vfill('b'))
			if err := p.CommitVersion(); err != nil {
				t.Fatalf("commit b: %v", err)
			}
			vb := p.PinView()
			defer vb.Close()

			mustWrite(t, p, id, vfill('c'))
			if err := p.CommitVersion(); err != nil {
				t.Fatalf("commit c: %v", err)
			}

			if got := readVia(t, va, id); got[0] != 'a' {
				t.Fatalf("view a sees %q, want 'a'", got[0])
			}
			if got := readVia(t, vb, id); got[0] != 'b' {
				t.Fatalf("view b sees %q, want 'b'", got[0])
			}
			// The live read path sees the newest committed image.
			buf := make([]byte, PageSize)
			if err := p.Read(id, buf); err != nil {
				t.Fatalf("live read: %v", err)
			}
			if buf[0] != 'c' {
				t.Fatalf("live read sees %q, want 'c'", buf[0])
			}
		})
	}
}

// TestViewIgnoresUncommittedWrites: dirty writes are invisible through a
// view until CommitVersion, and visible to the regular read path
// immediately (read-your-writes).
func TestViewIgnoresUncommittedWrites(t *testing.T) {
	for mode, p := range newTestPagers(t) {
		t.Run(mode, func(t *testing.T) {
			id := mustAlloc(t, p)
			mustWrite(t, p, id, vfill('a'))
			if err := p.CommitVersion(); err != nil {
				t.Fatalf("commit: %v", err)
			}
			v := p.PinView()
			defer v.Close()

			mustWrite(t, p, id, vfill('z')) // uncommitted
			if got := readVia(t, v, id); got[0] != 'a' {
				t.Fatalf("view sees uncommitted write: %q", got[0])
			}
			buf := make([]byte, PageSize)
			if err := p.Read(id, buf); err != nil {
				t.Fatalf("live read: %v", err)
			}
			if buf[0] != 'z' {
				t.Fatalf("live read does not see own write: %q", buf[0])
			}
		})
	}
}

// TestViewReclamation: closing the last pin at an epoch drops the
// retired versions kept for it.
func TestViewReclamation(t *testing.T) {
	for mode, p := range newTestPagers(t) {
		t.Run(mode, func(t *testing.T) {
			id := mustAlloc(t, p)
			mustWrite(t, p, id, vfill('a'))
			if err := p.CommitVersion(); err != nil {
				t.Fatalf("commit: %v", err)
			}
			v := p.PinView()
			mustWrite(t, p, id, vfill('b'))
			if err := p.CommitVersion(); err != nil {
				t.Fatalf("commit: %v", err)
			}
			if pins, retained := p.Pins(); pins != 1 || retained == 0 {
				t.Fatalf("want 1 pin with retained versions, got pins=%d retained=%d", pins, retained)
			}
			v.Close()
			if pins, retained := p.Pins(); pins != 0 || retained != 0 {
				t.Fatalf("want everything reclaimed after close, got pins=%d retained=%d", pins, retained)
			}
			if _, err := p.Allocate(); err != nil {
				t.Fatalf("allocate after reclaim: %v", err)
			}
			// Double close is a no-op.
			v.Close()
			if err := v.Read(id, make([]byte, PageSize)); !errors.Is(err, ErrViewClosed) {
				t.Fatalf("read after close: %v, want ErrViewClosed", err)
			}
		})
	}
}

// TestViewRejectsMutation: the read-only surface errors on writes.
func TestViewRejectsMutation(t *testing.T) {
	p := NewMemory()
	defer p.Close()
	v := p.PinView()
	defer v.Close()
	if err := v.Write(firstDataPage, vfill('x')); !errors.Is(err, ErrReadOnlyView) {
		t.Fatalf("Write: %v, want ErrReadOnlyView", err)
	}
	if _, err := v.Allocate(); !errors.Is(err, ErrReadOnlyView) {
		t.Fatalf("Allocate: %v, want ErrReadOnlyView", err)
	}
	if err := v.Free(firstDataPage); !errors.Is(err, ErrReadOnlyView) {
		t.Fatalf("Free: %v, want ErrReadOnlyView", err)
	}
}

// TestUpdateBracketRollback: writes and allocations inside a bracket
// vanish on rollback; the allocator state is restored exactly.
func TestUpdateBracketRollback(t *testing.T) {
	for mode, p := range newTestPagers(t) {
		t.Run(mode, func(t *testing.T) {
			id := mustAlloc(t, p)
			mustWrite(t, p, id, vfill('a'))
			if err := p.CommitVersion(); err != nil {
				t.Fatalf("commit: %v", err)
			}
			before := p.NumPages()

			p.BeginUpdate()
			mustWrite(t, p, id, vfill('b'))
			extra := mustAlloc(t, p)
			mustWrite(t, p, extra, vfill('x'))
			p.RollbackUpdate()

			if got := p.NumPages(); got != before {
				t.Fatalf("npages after rollback: %d, want %d", got, before)
			}
			buf := make([]byte, PageSize)
			if err := p.Read(id, buf); err != nil {
				t.Fatalf("read after rollback: %v", err)
			}
			if buf[0] != 'a' {
				t.Fatalf("rollback did not restore page: %q", buf[0])
			}
			// The freed id range is reusable.
			if got := mustAlloc(t, p); got != extra {
				t.Fatalf("allocate after rollback: page %d, want %d", got, extra)
			}
		})
	}
}

// TestUpdateBracketCommit: a committed bracket publishes atomically via
// CommitVersion; a view pinned mid-bracket never sees its writes.
func TestUpdateBracketCommit(t *testing.T) {
	for mode, p := range newTestPagers(t) {
		t.Run(mode, func(t *testing.T) {
			id := mustAlloc(t, p)
			mustWrite(t, p, id, vfill('a'))
			if err := p.CommitVersion(); err != nil {
				t.Fatalf("commit: %v", err)
			}

			p.BeginUpdate()
			mustWrite(t, p, id, vfill('b'))
			v := p.PinView() // pinned while the bracket is open
			defer v.Close()
			if err := p.Flush(); err != nil {
				t.Fatalf("flush during bracket: %v", err)
			}
			if got := readVia(t, v, id); got[0] != 'a' {
				t.Fatalf("mid-bracket view sees in-flight write: %q", got[0])
			}
			if err := p.CommitVersion(); err != nil {
				t.Fatalf("publish: %v", err)
			}
			p.CommitUpdate()

			if got := readVia(t, v, id); got[0] != 'a' {
				t.Fatalf("pinned view moved forward: %q", got[0])
			}
			buf := make([]byte, PageSize)
			if err := p.Read(id, buf); err != nil {
				t.Fatalf("live read: %v", err)
			}
			if buf[0] != 'b' {
				t.Fatalf("commit lost the bracket's write: %q", buf[0])
			}
		})
	}
}

// TestViewSurvivesFlushAndReopen: a file pager's committed-but-pinned
// old images survive Flush (which rewrites pages in place), and the
// newest committed state is what a reopen recovers.
func TestViewSurvivesFlushAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mvcc.vamana")
	p, err := Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	id := mustAlloc(t, p)
	mustWrite(t, p, id, vfill('a'))
	if err := p.Flush(); err != nil {
		t.Fatalf("flush a: %v", err)
	}
	v := p.PinView()
	mustWrite(t, p, id, vfill('b'))
	if err := p.Flush(); err != nil {
		t.Fatalf("flush b: %v", err)
	}
	if got := readVia(t, v, id); got[0] != 'a' {
		t.Fatalf("view after flush sees %q, want 'a'", got[0])
	}
	v.Close()
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	p2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.Close()
	buf := make([]byte, PageSize)
	if err := p2.Read(id, buf); err != nil {
		t.Fatalf("read after reopen: %v", err)
	}
	if !bytes.Equal(buf, vfill('b')) {
		t.Fatalf("reopen recovered %q, want 'b'", buf[0])
	}
}
