// Package pager provides fixed-size page storage for the MASS indexes. A
// Pager stores pages either wholly in memory or backed by a file on disk.
// Higher layers (internal/btree) own page contents and caching; the pager
// is responsible for durable allocation, reads, writes, the free list —
// and, for file-backed stores, crash safety:
//
//   - every on-disk page carries a CRC32C trailer, stamped on write and
//     verified on read, so torn writes and bit rot surface as a typed
//     ErrChecksum instead of garbage propagating up the B+-trees;
//   - metadata lives in two "ping-pong" meta pages (pages 0 and 1) with a
//     monotonic epoch, so a crash during a metadata write always leaves
//     one older-but-valid copy to recover from (ErrTornMeta is returned
//     only when neither survives);
//   - client writes are buffered and committed by Flush through a
//     double-write journal: new page images are made durable in a journal
//     region past the data pages before any page is overwritten in place,
//     making every Flush atomic — after a crash at any point, reopening
//     yields either the pre-Flush or the post-Flush store, never a mix.
//
// Open transparently recovers: it picks the newer valid meta page and
// replays a committed-but-unapplied journal. Page payloads are verified
// lazily, on first read.
package pager

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// DiskPageSize is the on-disk footprint of every page: the client payload
// plus the integrity trailer.
const DiskPageSize = 8192

// pageTrailerSize is the per-page integrity trailer: 4 reserved bytes
// (covered by the checksum, zero for now) and the 4-byte CRC32C.
const pageTrailerSize = 8

// PageSize is the size in bytes of every page payload — the unit clients
// read and write.
const PageSize = DiskPageSize - pageTrailerSize

// PageID identifies a page. Pages 0 and 1 are reserved for the pager's
// ping-pong metadata; the first allocatable page is 2.
type PageID uint32

// InvalidPage is the zero PageID, never returned by Allocate.
const InvalidPage PageID = 0

// firstDataPage is the first allocatable page id; pages below it hold the
// two metadata copies.
const firstDataPage PageID = 2

var (
	// ErrPageRange is returned when a page id is out of range.
	ErrPageRange = errors.New("pager: page id out of range")
	// ErrClosed is returned when the pager has been closed.
	ErrClosed = errors.New("pager: closed")
	// ErrChecksum is returned when a page read back from disk fails its
	// CRC32C verification — a torn write, bit rot, or a truncated file.
	// Errors wrapping it identify the page.
	ErrChecksum = errors.New("pager: page checksum mismatch")
	// ErrTornMeta is returned by Open when no valid metadata copy exists:
	// both ping-pong meta pages are corrupt (or the file is not a VAMANA
	// page file), or a committed journal they reference is unreadable.
	ErrTornMeta = errors.New("pager: no valid metadata page")
)

// Pager is a page allocator and reader/writer. It is safe for concurrent
// use.
type Pager struct {
	mu      sync.Mutex
	backend Backend  // nil in memory mode
	mem     [][]byte // memory mode storage, indexed by PageID
	npages  PageID   // number of pages including the two meta pages
	free    []PageID // free list (in-memory; persisted in the meta page on Flush)
	epoch   uint64   // meta epoch of the newest durable meta page
	verify  bool     // verify page checksums on read

	// pending holds committed page images not yet durable (file mode
	// only). Flush makes the whole batch durable atomically via the
	// journal.
	pending   map[PageID][]byte
	metaDirty bool // allocation/free-list/userMeta changes since last commit

	// Snapshot machinery — see mvcc.go. dirty buffers writes since the
	// last version commit (always on file pagers; on memory pagers only
	// while a snapshot pin or an update bracket is live). versions holds
	// retired committed images still visible to pinned epochs.
	dirty      map[PageID][]byte
	vEpoch     uint64
	pins       map[uint64]int
	versions   map[PageID][]pageVersion
	inTxn      bool
	txnMark    txnMark
	lastCommit []PageID // pages changed by the newest version commit

	userMeta [userMetaSize]byte
	closed   bool
	m        Metrics // plain counters, guarded by mu

	scratch []byte // DiskPageSize buffer reused for backend I/O
}

// Metrics counts the pager's I/O activity since open. All fields are
// cumulative; Pages is the current page count (including the meta pages).
type Metrics struct {
	Reads  uint64 // page reads served (memory copies, buffered writes, or file reads)
	Writes uint64 // page writes accepted (buffered until commit on file backends)
	Allocs uint64 // pages allocated (fresh or recycled)
	Frees  uint64 // pages returned to the free list
	Pages  uint64 // current page count including the reserved meta pages

	// Durability and corruption counters (file backends only).
	Commits        uint64 // Flush commits that reached the backend
	ChecksumFails  uint64 // page reads that failed CRC verification
	MetaFallbacks  uint64 // opens that lost one meta copy and recovered from the other
	JournalReplays uint64 // opens that completed an interrupted commit from its journal

	// Snapshot counters (see mvcc.go).
	VersionCommits uint64 // version commits that published buffered writes
	PagesStashed   uint64 // committed images retired into version lists for live snapshots
}

// Metrics returns a snapshot of the pager's I/O counters.
func (p *Pager) Metrics() Metrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.m
	m.Pages = uint64(p.npages)
	return m
}

// userMetaSize is the number of client metadata bytes persisted with the
// pager metadata. The MASS store records its catalog tree root here.
const userMetaSize = 32

// UserMeta returns the client metadata bytes persisted with the pager.
func (p *Pager) UserMeta() [userMetaSize]byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.userMeta
}

// SetUserMeta stores client metadata; it is persisted by the next Flush.
func (p *Pager) SetUserMeta(m [userMetaSize]byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.userMeta = m
	p.metaDirty = true
}

// NewMemory returns a Pager that keeps all pages in memory. Memory pagers
// have no durability concerns: writes apply immediately, Flush is a no-op
// and no checksums are kept.
func NewMemory() *Pager {
	p := &Pager{
		npages:   firstDataPage,
		dirty:    make(map[PageID][]byte),
		pins:     make(map[uint64]int),
		versions: make(map[PageID][]pageVersion),
	}
	p.mem = make([][]byte, firstDataPage)
	for i := range p.mem {
		p.mem[i] = make([]byte, PageSize)
	}
	return p
}

// Config configures OpenBackend.
type Config struct {
	// Backend is the storage to open the pager over.
	Backend Backend
	// DisableChecksumVerify skips CRC verification on page reads (pages
	// are still stamped on write). For benchmarking and forensics only:
	// it trades corruption detection for a few nanoseconds per read.
	DisableChecksumVerify bool
}

// Open opens (or creates) a file-backed pager at path. An existing file
// has its metadata validated (picking the newer of the two meta copies)
// and any interrupted commit completed from its journal.
func Open(path string) (*Pager, error) {
	b, err := openFileBackend(path)
	if err != nil {
		return nil, err
	}
	p, err := OpenBackend(Config{Backend: b})
	if err != nil {
		b.Close()
		return nil, err
	}
	return p, nil
}

// OpenBackend opens (or creates) a pager over an arbitrary Backend. The
// caller retains ownership of the backend only on error; on success the
// pager closes it.
func OpenBackend(cfg Config) (*Pager, error) {
	p := &Pager{
		backend:  cfg.Backend,
		verify:   !cfg.DisableChecksumVerify,
		pending:  make(map[PageID][]byte),
		dirty:    make(map[PageID][]byte),
		pins:     make(map[uint64]int),
		versions: make(map[PageID][]pageVersion),
		scratch:  make([]byte, DiskPageSize),
	}
	size, err := cfg.Backend.Size()
	if err != nil {
		return nil, fmt.Errorf("pager: size: %w", err)
	}
	if size == 0 {
		// Fresh file: establish the first valid meta copy so a crash
		// immediately after creation still reopens cleanly.
		p.npages = firstDataPage
		p.metaDirty = true
		if err := p.commitLocked(); err != nil {
			return nil, err
		}
		return p, nil
	}
	if err := p.recoverLocked(size); err != nil {
		return nil, err
	}
	return p, nil
}

// Allocate returns a fresh (or recycled) page id. The page contents are
// undefined until written.
func (p *Pager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return InvalidPage, ErrClosed
	}
	p.m.Allocs++
	p.metaDirty = true
	if n := len(p.free); n > 0 {
		id := p.free[n-1]
		p.free = p.free[:n-1]
		return id, nil
	}
	id := p.npages
	p.npages++
	if p.backend == nil {
		p.mem = append(p.mem, make([]byte, PageSize))
	}
	return id, nil
}

// Free returns a page to the free list for reuse.
func (p *Pager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if id < firstDataPage || id >= p.npages {
		return ErrPageRange
	}
	p.m.Frees++
	p.metaDirty = true
	p.free = append(p.free, id)
	return nil
}

// Read copies the contents of page id into buf, which must be PageSize
// bytes long. File-backed reads verify the page's CRC32C and return an
// error wrapping ErrChecksum on mismatch.
func (p *Pager) Read(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if id >= p.npages {
		return ErrPageRange
	}
	if len(buf) != PageSize {
		return fmt.Errorf("pager: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	p.m.Reads++
	// Writes buffered since the last version commit shadow everything:
	// the writer always reads its own writes.
	if len(p.dirty) != 0 {
		if img, ok := p.dirty[id]; ok {
			copy(buf, img)
			return nil
		}
	}
	if p.backend == nil {
		copy(buf, p.mem[id])
		return nil
	}
	if img, ok := p.pending[id]; ok {
		copy(buf, img)
		return nil
	}
	return p.readDisk(id, buf)
}

// readDisk reads and verifies page id from the backend into buf (PageSize
// bytes). Short reads (a page past the durable end of file) fail
// verification like any other torn page.
func (p *Pager) readDisk(id PageID, buf []byte) error {
	n, err := p.backend.ReadAt(p.scratch, int64(id)*DiskPageSize)
	if err != nil && n < DiskPageSize {
		for i := n; i < DiskPageSize; i++ {
			p.scratch[i] = 0
		}
		// A short read at the tail is a verification failure below, not
		// an I/O error; a failed full-length read is surfaced as-is.
		if n == 0 && !errors.Is(err, io.EOF) {
			return fmt.Errorf("pager: read page %d: %w", id, err)
		}
	}
	if p.verify && !verifyPage(p.scratch, id) {
		p.m.ChecksumFails++
		return fmt.Errorf("%w: page %d", ErrChecksum, id)
	}
	copy(buf, p.scratch[:PageSize])
	return nil
}

// Write stores buf (PageSize bytes) as the contents of page id. On file
// backends the write is buffered; Flush commits the whole batch
// atomically.
func (p *Pager) Write(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if id >= p.npages {
		return ErrPageRange
	}
	if len(buf) != PageSize {
		return fmt.Errorf("pager: write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	p.m.Writes++
	// Memory fast path: with no snapshot pinned, no update bracket open
	// and no dirty overlay to shadow it, the write applies in place —
	// the pre-snapshot behavior, kept allocation- and map-free.
	if p.backend == nil && !p.inTxn && len(p.pins) == 0 && len(p.dirty) == 0 {
		copy(p.mem[id], buf)
		return nil
	}
	img, ok := p.dirty[id]
	if !ok {
		img = make([]byte, PageSize)
		p.dirty[id] = img
	}
	copy(img, buf)
	return nil
}

// Flush atomically commits all buffered page writes and the pager
// metadata (page count, free list, user metadata). In memory mode it is a
// no-op. A crash at any point during Flush leaves the store recoverable
// to either its pre-Flush or post-Flush state.
func (p *Pager) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.backend == nil {
		// Nothing to make durable, but an outstanding dirty overlay (a
		// snapshot was pinned when the writes landed) still becomes the
		// committed state — unless an update bracket is open, in which
		// case its in-flight writes stay buffered until it resolves.
		if p.inTxn {
			return nil
		}
		return p.commitVersionLocked()
	}
	return p.commitLocked()
}

// NumPages returns the number of pages, including the reserved meta pages.
func (p *Pager) NumPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.npages)
}

// InMemory reports whether the pager has no backing file.
func (p *Pager) InMemory() bool { return p.backend == nil }

// Close flushes metadata and releases the backing file, if any.
func (p *Pager) Close() error {
	if err := p.Flush(); err != nil && err != ErrClosed {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	if p.backend != nil {
		return p.backend.Close()
	}
	p.mem = nil
	return nil
}

// Verify checks the CRC32C of every durable allocated page (free-listed
// pages hold stale images and are skipped) and returns the number of
// pages checked plus the ids that failed verification. Buffered writes
// are committed first so the scan sees the current state, and checksums
// are checked even when the pager was opened with DisableChecksumVerify
// (that flag governs only the regular read path). Memory pagers have
// nothing to verify.
func (p *Pager) Verify() (checked int, corrupt []PageID, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, nil, ErrClosed
	}
	if p.backend == nil {
		return 0, nil, nil
	}
	if err := p.commitLocked(); err != nil {
		return 0, nil, err
	}
	skip := make(map[PageID]bool, len(p.free))
	for _, id := range p.free {
		skip[id] = true
	}
	saved := p.verify
	p.verify = true
	defer func() { p.verify = saved }()
	buf := make([]byte, PageSize)
	for id := firstDataPage; id < p.npages; id++ {
		if skip[id] {
			continue
		}
		checked++
		if err := p.readDisk(id, buf); err != nil {
			if errors.Is(err, ErrChecksum) {
				corrupt = append(corrupt, id)
				continue
			}
			return checked, corrupt, err
		}
	}
	return checked, corrupt, nil
}
