// Package pager provides fixed-size page storage for the MASS indexes. A
// Pager stores 8 KiB pages either wholly in memory or backed by a file on
// disk. Higher layers (internal/btree) own page contents and caching; the
// pager is only responsible for durable allocation, reads, writes, and the
// free list.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// PageSize is the size in bytes of every page.
const PageSize = 8192

// PageID identifies a page. Page 0 is reserved for pager metadata (the free
// list head and page count); the first allocatable page is 1.
type PageID uint32

// InvalidPage is the zero PageID, never returned by Allocate.
const InvalidPage PageID = 0

var (
	// ErrPageRange is returned when a page id is out of range.
	ErrPageRange = errors.New("pager: page id out of range")
	// ErrClosed is returned when the pager has been closed.
	ErrClosed = errors.New("pager: closed")
)

// metaMagic identifies a pager file. Stored at the start of page 0.
var metaMagic = [8]byte{'V', 'A', 'M', 'A', 'N', 'A', 'P', '1'}

// Pager is a page allocator and reader/writer. It is safe for concurrent
// use.
type Pager struct {
	mu       sync.Mutex
	file     *os.File // nil in memory mode
	mem      [][]byte // memory mode storage, indexed by PageID
	npages   PageID   // number of pages including page 0
	free     []PageID // free list (in-memory; persisted in page 0 on Flush)
	userMeta [userMetaSize]byte
	closed   bool
	m        Metrics // plain counters, guarded by mu
}

// Metrics counts the pager's I/O activity since open. All fields are
// cumulative; Pages is the current page count (including the meta page).
type Metrics struct {
	Reads  uint64 // page reads served (memory copies or file reads)
	Writes uint64 // page writes performed (write-through)
	Allocs uint64 // pages allocated (fresh or recycled)
	Frees  uint64 // pages returned to the free list
	Pages  uint64 // current page count including the reserved meta page
}

// Metrics returns a snapshot of the pager's I/O counters.
func (p *Pager) Metrics() Metrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.m
	m.Pages = uint64(p.npages)
	return m
}

// userMetaSize is the number of client metadata bytes persisted in page 0.
// The MASS store records its catalog tree root here.
const userMetaSize = 32

// UserMeta returns the client metadata bytes persisted with the pager.
func (p *Pager) UserMeta() [userMetaSize]byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.userMeta
}

// SetUserMeta stores client metadata; it is persisted by the next Flush.
func (p *Pager) SetUserMeta(m [userMetaSize]byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.userMeta = m
}

// NewMemory returns a Pager that keeps all pages in memory.
func NewMemory() *Pager {
	p := &Pager{npages: 1}
	p.mem = make([][]byte, 1)
	p.mem[0] = make([]byte, PageSize)
	return p
}

// Open opens (or creates) a file-backed pager at path. An existing file has
// its metadata page validated and its free list restored.
func Open(path string) (*Pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: stat %s: %w", path, err)
	}
	p := &Pager{file: f}
	if st.Size() == 0 {
		p.npages = 1
		if err := p.writePage(0, make([]byte, PageSize)); err != nil {
			f.Close()
			return nil, err
		}
		if err := p.Flush(); err != nil {
			f.Close()
			return nil, err
		}
		return p, nil
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("pager: %s: size %d not a multiple of page size", path, st.Size())
	}
	p.npages = PageID(st.Size() / PageSize)
	if err := p.loadMeta(); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

// loadMeta restores the free list from page 0.
func (p *Pager) loadMeta() error {
	buf := make([]byte, PageSize)
	if err := p.readPage(0, buf); err != nil {
		return err
	}
	if [8]byte(buf[:8]) != metaMagic {
		return errors.New("pager: bad magic: not a VAMANA page file")
	}
	n := binary.LittleEndian.Uint32(buf[8:12])
	if PageID(n) > p.npages {
		return fmt.Errorf("pager: meta page count %d exceeds file pages %d", n, p.npages)
	}
	p.npages = PageID(n)
	copy(p.userMeta[:], buf[12:12+userMetaSize])
	stored := binary.LittleEndian.Uint32(buf[12+userMetaSize : 16+userMetaSize])
	p.free = p.free[:0]
	off := 16 + userMetaSize
	for i := uint32(0); i < stored; i++ {
		if off+4 > PageSize {
			return errors.New("pager: corrupt free list")
		}
		p.free = append(p.free, PageID(binary.LittleEndian.Uint32(buf[off:off+4])))
		off += 4
	}
	return nil
}

// Flush persists pager metadata (page count and free list). Page writes
// themselves are write-through, so this is cheap. In memory mode it is a
// no-op.
func (p *Pager) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.file == nil {
		return nil
	}
	buf := make([]byte, PageSize)
	copy(buf[:8], metaMagic[:])
	binary.LittleEndian.PutUint32(buf[8:12], uint32(p.npages))
	copy(buf[12:12+userMetaSize], p.userMeta[:])
	// The free list that fits in the meta page is persisted; overflow
	// pages are simply leaked on reopen, which is safe (never reused but
	// never referenced).
	maxFree := (PageSize - 16 - userMetaSize) / 4
	n := len(p.free)
	if n > maxFree {
		n = maxFree
	}
	binary.LittleEndian.PutUint32(buf[12+userMetaSize:16+userMetaSize], uint32(n))
	off := 16 + userMetaSize
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[off:off+4], uint32(p.free[i]))
		off += 4
	}
	if err := p.writePage(0, buf); err != nil {
		return err
	}
	return p.file.Sync()
}

// Allocate returns a fresh (or recycled) page id. The page contents are
// undefined until written.
func (p *Pager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return InvalidPage, ErrClosed
	}
	p.m.Allocs++
	if n := len(p.free); n > 0 {
		id := p.free[n-1]
		p.free = p.free[:n-1]
		return id, nil
	}
	id := p.npages
	p.npages++
	if p.file == nil {
		p.mem = append(p.mem, make([]byte, PageSize))
	}
	return id, nil
}

// Free returns a page to the free list for reuse.
func (p *Pager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if id == 0 || id >= p.npages {
		return ErrPageRange
	}
	p.m.Frees++
	p.free = append(p.free, id)
	return nil
}

// Read copies the contents of page id into buf, which must be PageSize
// bytes long.
func (p *Pager) Read(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if id >= p.npages {
		return ErrPageRange
	}
	p.m.Reads++
	return p.readPage(id, buf)
}

// Write stores buf (PageSize bytes) as the contents of page id.
func (p *Pager) Write(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if id >= p.npages {
		return ErrPageRange
	}
	p.m.Writes++
	return p.writePage(id, buf)
}

func (p *Pager) readPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("pager: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if p.file == nil {
		copy(buf, p.mem[id])
		return nil
	}
	_, err := p.file.ReadAt(buf, int64(id)*PageSize)
	if err != nil && err != io.EOF {
		return fmt.Errorf("pager: read page %d: %w", id, err)
	}
	return nil
}

func (p *Pager) writePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("pager: write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if p.file == nil {
		copy(p.mem[id], buf)
		return nil
	}
	if _, err := p.file.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	return nil
}

// NumPages returns the number of pages, including the reserved meta page.
func (p *Pager) NumPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.npages)
}

// InMemory reports whether the pager has no backing file.
func (p *Pager) InMemory() bool { return p.file == nil }

// Close flushes metadata and releases the backing file, if any.
func (p *Pager) Close() error {
	if err := p.Flush(); err != nil && err != ErrClosed {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	if p.file != nil {
		return p.file.Close()
	}
	p.mem = nil
	return nil
}
