package pager

import (
	"fmt"
	"io"
	"os"
)

// Backend is the pager's storage seam: the minimal random-access file
// surface the pager needs. The production implementation wraps *os.File;
// tests substitute fault-injecting implementations (see
// internal/pager/faultfs) to exercise torn writes, I/O errors and
// crash-recovery paths that a real filesystem cannot produce on demand.
//
// The pager serializes all Backend calls under its own lock, so
// implementations do not need to be safe for concurrent use by the pager
// (though test harnesses may touch them from other goroutines and
// typically lock internally).
type Backend interface {
	io.ReaderAt
	io.WriterAt
	// Sync makes previously written data durable. Commit-protocol
	// ordering depends on it: writes before a Sync must be durable before
	// any write after it.
	Sync() error
	// Size returns the current backing size in bytes.
	Size() (int64, error)
	Close() error
}

// fileBackend adapts *os.File to Backend.
type fileBackend struct{ f *os.File }

// NewFileBackend opens (or creates) path as a pager Backend. Callers that
// need non-default pager configuration pass the result to OpenBackend;
// plain Open does both steps.
func NewFileBackend(path string) (Backend, error) {
	return openFileBackend(path)
}

func openFileBackend(path string) (Backend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	return &fileBackend{f: f}, nil
}

func (b *fileBackend) ReadAt(p []byte, off int64) (int, error)  { return b.f.ReadAt(p, off) }
func (b *fileBackend) WriteAt(p []byte, off int64) (int, error) { return b.f.WriteAt(p, off) }
func (b *fileBackend) Sync() error                              { return b.f.Sync() }
func (b *fileBackend) Close() error                             { return b.f.Close() }

func (b *fileBackend) Size() (int64, error) {
	st, err := b.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
