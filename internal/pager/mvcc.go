package pager

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// Multi-version page store: the machinery under snapshot reads.
//
// The pager distinguishes three layers of page state:
//
//   - dirty:     writes buffered since the last version commit. Regular
//     reads see them (read-your-writes); snapshot reads never do. This
//     is also the rollback unit: an aborted store transaction discards
//     the dirty overlay wholesale.
//   - committed: the current committed image of every page — mem[] for
//     memory pagers, the pending map + the file for file pagers (pending
//     holds committed-but-not-yet-durable images; Flush journals them).
//   - versions:  retired committed images kept only while a live
//     snapshot can still see them. stash-on-overwrite: when a version
//     commit replaces a page's committed image and at least one snapshot
//     is pinned, the old image is appended to the page's version list,
//     tagged with the epoch through which it was current.
//
// CommitVersion is the snapshot visibility point: it applies the dirty
// overlay to the committed layer and bumps the version epoch. PinView
// pins the current epoch and returns a read-only View that resolves
// every page to its image as of that epoch. When the last pin at or
// below a version's tag closes, the version is reclaimed.
//
// Durability is unchanged: Flush still commits through the double-write
// journal (see commit.go); version commits are purely in-memory.

// ErrReadOnlyView is returned by mutating operations on a snapshot View.
var ErrReadOnlyView = errors.New("pager: view is read-only")

// ErrViewClosed is returned when reading through a closed snapshot View.
var ErrViewClosed = errors.New("pager: view closed")

// pageVersion is one retired committed page image. data is the image
// that was current for every epoch <= asOf; nil records that the page
// had no readable committed image when it was first overwritten (a page
// allocated and written inside the commit that stashed it, or one whose
// prior on-disk image failed verification).
type pageVersion struct {
	asOf uint64
	data []byte
}

// txnMark captures the allocator state at BeginUpdate so RollbackUpdate
// can restore it: pages allocated by the aborted transaction are
// un-allocated and free-list pops are undone.
type txnMark struct {
	npages    PageID
	free      []PageID
	metaDirty bool
}

// VersionEpoch returns the current version epoch — the number of
// version commits since open. Snapshots pin the epoch current at pin
// time.
func (p *Pager) VersionEpoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.vEpoch
}

// LastCommitPages returns the ids of the pages changed by the most
// recent version commit — the page-level delta between the two newest
// committed versions, used to carry decoded-node caches across adjacent
// snapshots. The returned slice is owned by the pager and valid only
// until the next commit; callers hold the store's writer lock, which
// serializes commits.
func (p *Pager) LastCommitPages() []PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastCommit
}

// CommitVersion publishes all buffered writes as the next committed
// version: the dirty overlay is applied to the committed layer (with
// prior images stashed for any live snapshot) and the version epoch is
// bumped. A no-op when nothing was written. Durability is separate —
// see Flush.
func (p *Pager) CommitVersion() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	return p.commitVersionLocked()
}

// commitVersionLocked is CommitVersion with mu held.
func (p *Pager) commitVersionLocked() error {
	if len(p.dirty) == 0 {
		return nil
	}
	stash := len(p.pins) > 0
	p.lastCommit = p.lastCommit[:0]
	for id, img := range p.dirty {
		p.lastCommit = append(p.lastCommit, id)
		if stash {
			p.stashLocked(id)
		}
		if p.backend == nil {
			// Allocate grows mem eagerly, so id is always in range.
			p.mem[id] = img
		} else {
			p.pending[id] = img
		}
		delete(p.dirty, id)
	}
	p.vEpoch++
	p.m.VersionCommits++
	return nil
}

// stashLocked retires page id's current committed image into its version
// list, tagged with the epoch through which it was current. Called
// before the commit loop overwrites the committed layer.
func (p *Pager) stashLocked(id PageID) {
	var old []byte
	switch {
	case p.backend == nil:
		if int(id) < len(p.mem) {
			// Move, not copy: mem[id] is about to be replaced and nothing
			// else references the old slice.
			old = p.mem[id]
		}
	default:
		if img, ok := p.pending[id]; ok {
			// Same move semantics: the pending entry is replaced next.
			old = img
		} else {
			buf := make([]byte, PageSize)
			// A failed read means the page never had a committed image
			// (first write of a fresh page) or is damaged; a nil version
			// makes a snapshot read of it fail loudly instead of seeing
			// the newer image.
			if err := p.readDisk(id, buf); err == nil {
				old = buf
			}
		}
	}
	p.versions[id] = append(p.versions[id], pageVersion{asOf: p.vEpoch, data: old})
	p.m.PagesStashed++
}

// readAtEpoch resolves page id to its committed image as of epoch.
func (p *Pager) readAtEpoch(epoch uint64, id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if id >= p.npages {
		return ErrPageRange
	}
	if len(buf) != PageSize {
		return fmt.Errorf("pager: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	p.m.Reads++
	if vs := p.versions[id]; len(vs) > 0 {
		// The first version tagged at or after the pinned epoch holds the
		// image that was current then; a page never overwritten since the
		// pin falls through to the committed layer.
		i := sort.Search(len(vs), func(i int) bool { return vs[i].asOf >= epoch })
		if i < len(vs) {
			if vs[i].data == nil {
				return fmt.Errorf("%w: page %d has no committed image at epoch %d", ErrChecksum, id, epoch)
			}
			copy(buf, vs[i].data)
			return nil
		}
	}
	if p.backend == nil {
		copy(buf, p.mem[id])
		return nil
	}
	if img, ok := p.pending[id]; ok {
		copy(buf, img)
		return nil
	}
	return p.readDisk(id, buf)
}

// PinView pins the current version epoch and returns a read-only View
// of it. Every Read through the view resolves pages to their committed
// image as of the pinned epoch, whatever the writer does afterwards.
// Close the view to release the pin; retired page versions are
// reclaimed when no pin can reach them.
func (p *Pager) PinView() *View {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pins[p.vEpoch]++
	return &View{p: p, epoch: p.vEpoch}
}

// unpin releases one pin at epoch and reclaims unreachable versions.
func (p *Pager) unpin(epoch uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := p.pins[epoch]; n > 1 {
		p.pins[epoch] = n - 1
		return
	}
	delete(p.pins, epoch)
	p.reclaimLocked()
}

// reclaimLocked drops retired versions no live pin can reach: with no
// pins everything goes; otherwise versions tagged strictly before the
// oldest pinned epoch (a reader at epoch E resolves the first version
// tagged >= E, so anything tagged < min(pins) is dead).
func (p *Pager) reclaimLocked() {
	if len(p.pins) == 0 {
		clear(p.versions)
		return
	}
	min := uint64(1<<64 - 1)
	for e := range p.pins {
		if e < min {
			min = e
		}
	}
	for id, vs := range p.versions {
		i := sort.Search(len(vs), func(i int) bool { return vs[i].asOf >= min })
		if i == 0 {
			continue
		}
		if i == len(vs) {
			delete(p.versions, id)
			continue
		}
		p.versions[id] = vs[i:]
	}
}

// Pins returns the number of distinct pinned epochs and retained retired
// page versions — the snapshot footprint, for metrics.
func (p *Pager) Pins() (pins, retained int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, vs := range p.versions {
		retained += len(vs)
	}
	return len(p.pins), retained
}

// View is a read-only handle onto the pager pinned at one version
// epoch. It satisfies the same page-access surface as the Pager itself
// (so index trees can run over either), with every mutation rejected.
// Views are safe for concurrent use.
type View struct {
	p      *Pager
	epoch  uint64
	closed atomic.Bool
}

// Epoch returns the pinned version epoch.
func (v *View) Epoch() uint64 { return v.epoch }

// Read copies page id's committed image as of the pinned epoch into buf.
func (v *View) Read(id PageID, buf []byte) error {
	if v.closed.Load() {
		return ErrViewClosed
	}
	return v.p.readAtEpoch(v.epoch, id, buf)
}

// Write rejects mutation through a view.
func (v *View) Write(PageID, []byte) error { return ErrReadOnlyView }

// Allocate rejects allocation through a view.
func (v *View) Allocate() (PageID, error) { return InvalidPage, ErrReadOnlyView }

// Free rejects page release through a view.
func (v *View) Free(PageID) error { return ErrReadOnlyView }

// InMemory reports whether the underlying pager is memory-backed.
func (v *View) InMemory() bool { return v.p.InMemory() }

// Close releases the pin, allowing retired page versions the view kept
// alive to be reclaimed. Idempotent; reads after Close fail with
// ErrViewClosed.
func (v *View) Close() {
	if v.closed.CompareAndSwap(false, true) {
		v.p.unpin(v.epoch)
	}
}

// BeginUpdate opens a pager-level transaction bracket: writes buffer in
// the dirty overlay (even on memory pagers, whose writes otherwise apply
// in place) and the allocator state is checkpointed, so RollbackUpdate
// can discard the whole batch. The caller serializes brackets (the MASS
// store holds its writer lock across one) and must close with
// CommitUpdate or RollbackUpdate. Flush during a bracket journals only
// previously committed state, never the in-flight overlay.
func (p *Pager) BeginUpdate() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.inTxn = true
	p.txnMark = txnMark{
		npages:    p.npages,
		free:      append([]PageID(nil), p.free...),
		metaDirty: p.metaDirty,
	}
}

// CommitUpdate closes a transaction bracket, keeping its writes. The
// caller publishes them with CommitVersion first (or leaves them dirty
// for a later commit).
func (p *Pager) CommitUpdate() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.inTxn = false
	p.txnMark = txnMark{}
}

// RollbackUpdate closes a transaction bracket, discarding every write
// buffered since BeginUpdate and restoring the allocator (page count,
// free list) to its checkpoint. Committed state is untouched.
func (p *Pager) RollbackUpdate() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.inTxn {
		return
	}
	clear(p.dirty)
	if p.backend == nil && int(p.txnMark.npages) <= len(p.mem) {
		p.mem = p.mem[:p.txnMark.npages]
	}
	p.npages = p.txnMark.npages
	p.free = p.txnMark.free
	p.metaDirty = p.txnMark.metaDirty
	p.inTxn = false
	p.txnMark = txnMark{}
}
