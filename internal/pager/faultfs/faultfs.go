// Package faultfs provides an in-memory, fault-injecting implementation
// of the pager's Backend seam. It is the attack harness for the storage
// stack's crash-safety machinery: tests arm it to fail the Nth write
// (optionally tearing the write at a byte offset first), fail the Nth
// sync, flip bits or overwrite ranges behind the pager's back, stall
// operations, or die outright — then snapshot the surviving bytes and
// reopen them as a fresh "post-crash" file.
//
// The package deliberately imports nothing from internal/pager: it
// satisfies pager.Backend structurally, so the pager's own internal tests
// can use it without an import cycle.
//
// Fault model. A write that hits its fault point applies its first
// tearBytes bytes (modelling a torn sector write) and then kills the
// backend: the injected error is returned, and every subsequent
// operation fails with ErrCrashed, like a process whose disk vanished
// mid-operation. Writes that complete before the fault point are durable
// in the snapshot — the model is a crash, not a power loss with volatile
// caches (syncs order the protocol; the pager may not rely on un-synced
// writes being absent).
package faultfs

import (
	"errors"
	"io"
	"sync"
	"time"
)

var (
	// ErrInjected is returned by the operation that hits an armed fault
	// point.
	ErrInjected = errors.New("faultfs: injected fault")
	// ErrCrashed is returned by every operation after a fault has killed
	// the backend (or after Crash was called).
	ErrCrashed = errors.New("faultfs: backend crashed")
)

// Op identifies a backend operation for the BeforeOp hook.
type Op int

// Operations observable through BeforeOp.
const (
	OpRead Op = iota
	OpWrite
	OpSync
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	default:
		return "unknown"
	}
}

// Backend is an in-memory fault-injecting file. The zero value is not
// usable; create with New or FromBytes. It is safe for concurrent use
// (the pager serializes its own calls, but tests may poke it from the
// test goroutine while a query runs).
type Backend struct {
	mu   sync.Mutex
	data []byte
	dead bool

	writes int // completed or attempted WriteAt calls
	syncs  int // completed or attempted Sync calls
	reads  int

	failWriteN int // fail the Nth write (1-based); 0 = never
	tearBytes  int // bytes of the failing write applied before the fault
	failSyncN  int // fail the Nth sync (1-based); 0 = never

	delay time.Duration // stall applied before every operation

	// BeforeOp, when set, runs before every operation (under the
	// backend's lock); returning a non-nil error fails the operation
	// with that error and kills the backend. off and n are -1 for Sync.
	BeforeOp func(op Op, off int64, n int) error
}

// New returns an empty backend.
func New() *Backend { return &Backend{} }

// FromBytes returns a backend whose initial contents are a copy of b —
// typically a Snapshot from a previous (crashed) backend, reopened as
// the surviving file.
func FromBytes(b []byte) *Backend {
	return &Backend{data: append([]byte(nil), b...)}
}

// FailWrite arms a fault at the nth (1-based) WriteAt call counted from
// now: the write applies its first tearBytes bytes, then the backend
// dies. tearBytes <= 0 fails the write before any byte lands.
func (b *Backend) FailWrite(n, tearBytes int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failWriteN = b.writes + n
	b.tearBytes = tearBytes
}

// FailSync arms a fault at the nth (1-based) Sync call counted from now.
func (b *Backend) FailSync(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failSyncN = b.syncs + n
}

// Stall makes every subsequent operation sleep for d first.
func (b *Backend) Stall(d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.delay = d
}

// Crash kills the backend immediately: every subsequent operation
// returns ErrCrashed. The current contents remain available through
// Snapshot — this is the reusable "bypass Close's flush" trick for
// leaving a file in whatever state the protocol had reached.
func (b *Backend) Crash() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dead = true
}

// FlipBit flips one bit behind the pager's back, simulating bit rot. A
// no-op when off is past the end of the data.
func (b *Backend) FlipBit(off int64, bit uint) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if off >= 0 && off < int64(len(b.data)) {
		b.data[off] ^= 1 << (bit % 8)
	}
}

// Corrupt overwrites a byte range behind the pager's back, extending the
// file if needed.
func (b *Backend) Corrupt(off int64, junk []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if grow := off + int64(len(junk)) - int64(len(b.data)); grow > 0 {
		b.data = append(b.data, make([]byte, grow)...)
	}
	copy(b.data[off:], junk)
}

// Snapshot returns a copy of the current contents — the bytes that
// survive the crash. Usable even after the backend has died.
func (b *Backend) Snapshot() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.data...)
}

// Writes returns the number of WriteAt calls observed so far.
func (b *Backend) Writes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.writes
}

// Syncs returns the number of Sync calls observed so far.
func (b *Backend) Syncs() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.syncs
}

// Dead reports whether the backend has crashed.
func (b *Backend) Dead() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dead
}

// gate runs the common pre-operation checks under the lock.
func (b *Backend) gate(op Op, off int64, n int) error {
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	if b.dead {
		return ErrCrashed
	}
	if b.BeforeOp != nil {
		if err := b.BeforeOp(op, off, n); err != nil {
			b.dead = true
			return err
		}
	}
	return nil
}

// ReadAt implements io.ReaderAt with standard short-read/EOF semantics.
func (b *Backend) ReadAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reads++
	if err := b.gate(OpRead, off, len(p)); err != nil {
		return 0, err
	}
	if off >= int64(len(b.data)) {
		return 0, io.EOF
	}
	n := copy(p, b.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, honoring any armed write fault.
func (b *Backend) WriteAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.writes++
	if err := b.gate(OpWrite, off, len(p)); err != nil {
		return 0, err
	}
	apply := len(p)
	injected := false
	if b.failWriteN > 0 && b.writes >= b.failWriteN {
		injected = true
		apply = b.tearBytes
		if apply < 0 {
			apply = 0
		}
		if apply > len(p) {
			apply = len(p)
		}
	}
	if grow := off + int64(apply) - int64(len(b.data)); grow > 0 {
		b.data = append(b.data, make([]byte, grow)...)
	}
	copy(b.data[off:], p[:apply])
	if injected {
		b.dead = true
		return apply, ErrInjected
	}
	return len(p), nil
}

// Sync honors any armed sync fault; otherwise it is a no-op (writes are
// modelled as immediately durable).
func (b *Backend) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.syncs++
	if err := b.gate(OpSync, -1, -1); err != nil {
		return err
	}
	if b.failSyncN > 0 && b.syncs >= b.failSyncN {
		b.dead = true
		return ErrInjected
	}
	return nil
}

// Size returns the current length of the backing data.
func (b *Backend) Size() (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		return 0, ErrCrashed
	}
	return int64(len(b.data)), nil
}

// Close marks the backend closed. A dead backend still "closes" cleanly
// so post-crash cleanup paths do not cascade errors.
func (b *Backend) Close() error { return nil }
