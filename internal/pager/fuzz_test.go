package pager

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"vamana/internal/pager/faultfs"
)

// fuzzBase lazily builds the canonical clean snapshot shared by fuzz
// iterations: pages 2 and 3 with known fills and user meta "v1".
var fuzzBase struct {
	once sync.Once
	snap []byte
	pa   PageID
	pb   PageID
}

func fuzzBaseSnapshot(t *testing.T) ([]byte, PageID, PageID) {
	fuzzBase.once.Do(func() {
		b := faultfs.New()
		p, err := OpenBackend(Config{Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		fuzzBase.pa, _ = p.Allocate()
		fuzzBase.pb, _ = p.Allocate()
		if err := p.Write(fuzzBase.pa, fill('A')); err != nil {
			t.Fatal(err)
		}
		if err := p.Write(fuzzBase.pb, fill('B')); err != nil {
			t.Fatal(err)
		}
		p.SetUserMeta(userMetaOf("v1"))
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		fuzzBase.snap = b.Snapshot()
	})
	return fuzzBase.snap, fuzzBase.pa, fuzzBase.pb
}

// FuzzPagerReopen feeds the pager two hostile inputs per iteration:
//
//  1. raw bytes opened as a page file — Open must return a typed error or
//     a usable pager, never panic, and no page read may panic;
//  2. the canonical clean snapshot with one byte XORed — Open must
//     succeed (at most one meta copy can be damaged), and every live page
//     read must either fail with ErrChecksum or return exactly the
//     expected payload. Silent corruption fails the fuzz run.
func FuzzPagerReopen(f *testing.F) {
	f.Add([]byte{}, uint64(0), byte(0))
	f.Add([]byte("not a page file"), uint64(5), byte(0xFF))
	f.Add(bytes.Repeat([]byte{0xAA}, 3*DiskPageSize), uint64(DiskPageSize), byte(1))
	f.Add(bytes.Repeat([]byte{0x00}, 2*DiskPageSize+17), uint64(2*DiskPageSize), byte(0x80))

	f.Fuzz(func(t *testing.T, raw []byte, off uint64, xor byte) {
		// Part 1: arbitrary bytes as a page file.
		if p, err := OpenBackend(Config{Backend: faultfs.FromBytes(raw)}); err == nil {
			buf := make([]byte, PageSize)
			n := p.NumPages()
			if n > 64 { // garbage meta may claim a huge page count; sample
				n = 64
			}
			for id := int(firstDataPage); id < n; id++ {
				_ = p.Read(PageID(id), buf) // must not panic; errors are fine
			}
			p.Close()
		}

		// Part 2: one-byte damage to a known-good snapshot.
		snap, pa, pb := fuzzBaseSnapshot(t)
		img := append([]byte(nil), snap...)
		if xor != 0 && len(img) > 0 {
			img[off%uint64(len(img))] ^= xor
		}
		p, err := OpenBackend(Config{Backend: faultfs.FromBytes(img)})
		if err != nil {
			t.Fatalf("open with one damaged byte must recover via the surviving meta copy: %v", err)
		}
		defer p.Close()
		buf := make([]byte, PageSize)
		for _, pg := range []struct {
			id   PageID
			want byte
		}{{pa, 'A'}, {pb, 'B'}} {
			err := p.Read(pg.id, buf)
			if err != nil {
				if !errors.Is(err, ErrChecksum) {
					t.Fatalf("page %d read failed with untyped error: %v", pg.id, err)
				}
				continue
			}
			for i, b := range buf {
				if b != pg.want {
					t.Fatalf("silent corruption: page %d byte %d is %#x, want %q", pg.id, i, b, pg.want)
				}
			}
		}
	})
}
