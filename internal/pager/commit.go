package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// On-disk integrity and commit protocol.
//
// Every DiskPageSize page ends in an 8-byte trailer: 4 reserved bytes
// (zero, covered by the checksum) and a CRC32C over the rest of the page
// with the page's id mixed in — so a page written to the wrong offset
// (a misdirected write) fails verification just like a torn one.
//
// Metadata lives in two ping-pong copies (pages 0 and 1). Each commit
// bumps a monotonic epoch and writes to slot epoch%2, which is always the
// slot NOT holding the newest valid copy; a torn meta write therefore
// destroys at most the older copy. Open picks the valid copy with the
// higher epoch.
//
// Flush commits buffered page writes with a double-write journal:
//
//  1. journal header page(s) + full images of every dirty page are
//     written past the data region and synced;
//  2. meta (epoch+1, referencing the journal, describing the POST-commit
//     state) is written and synced — this is the commit point;
//  3. images are applied in place and synced;
//  4. meta (epoch+2, journal cleared) is written and synced.
//
// Crash before 2: the old meta wins; the journal tail is garbage and
// ignored. Crash between 2 and 4: Open finds the journal reference,
// verifies every journal page, and replays the images (idempotent —
// full-page redo). Only if the committed journal itself fails
// verification does Open refuse with ErrTornMeta; in-place applies have
// then partially overwritten pages, and completing or undoing them is
// impossible, so a typed error is the honest outcome.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// pageCRC computes the trailer checksum: CRC32C over the page bytes
// before the checksum field, then the page id.
func pageCRC(disk []byte, id PageID) uint32 {
	crc := crc32.Update(0, castagnoli, disk[:DiskPageSize-4])
	var idb [4]byte
	binary.LittleEndian.PutUint32(idb[:], uint32(id))
	return crc32.Update(crc, castagnoli, idb[:])
}

// stampPage writes the trailer checksum into a DiskPageSize buffer.
func stampPage(disk []byte, id PageID) {
	binary.LittleEndian.PutUint32(disk[DiskPageSize-4:], pageCRC(disk, id))
}

// verifyPage checks a DiskPageSize buffer's trailer checksum.
func verifyPage(disk []byte, id PageID) bool {
	return binary.LittleEndian.Uint32(disk[DiskPageSize-4:]) == pageCRC(disk, id)
}

// metaMagic identifies a pager file (format 2: checksummed pages,
// ping-pong metadata, journaled commits). Format-1 files (unchecksummed,
// single meta page) are not readable by this version.
var metaMagic = [8]byte{'V', 'A', 'M', 'A', 'N', 'A', 'P', '2'}

// journalMagic identifies a journal header page.
var journalMagic = [8]byte{'V', 'A', 'M', 'A', 'J', 'R', 'N', '1'}

// Meta page payload layout (offsets within the page):
//
//	[0:8]   magic
//	[8:16]  epoch
//	[16:20] npages (including the two meta pages)
//	[20:24] journal start page (0 = no journal)
//	[24:28] journal image count
//	[28:60] user metadata
//	[60:64] free-list length
//	[64:..] free-list entries (u32 each)
const (
	metaOffEpoch     = 8
	metaOffNPages    = 16
	metaOffJStart    = 20
	metaOffJCount    = 24
	metaOffUserMeta  = 28
	metaOffFreeCount = metaOffUserMeta + userMetaSize
	metaOffFree      = metaOffFreeCount + 4
	// maxMetaFree is the free-list capacity of a meta page. Overflowing
	// entries are leaked on reopen, which is safe (never reused but never
	// referenced).
	maxMetaFree = (PageSize - metaOffFree) / 4
)

// Journal header payload layout. The first header page carries the magic,
// epoch and total image count followed by destination page ids;
// subsequent header pages are raw arrays of further ids. Image pages
// follow the header pages in the same order, each stamped with its
// DESTINATION page id so replay can copy the disk bytes verbatim.
const (
	jhdrOffCount   = 16
	jhdrOffIDs     = 20
	jhdrFirstCap   = (PageSize - jhdrOffIDs) / 4
	jhdrRestCap    = PageSize / 4
	jhdrSentinelID = PageID(0xFFFFFFFF) // headers are stamped with sentinel - index
)

// journalHeaderPages returns how many header pages a commit of n images
// needs.
func journalHeaderPages(n int) int {
	if n <= jhdrFirstCap {
		return 1
	}
	return 1 + (n-jhdrFirstCap+jhdrRestCap-1)/jhdrRestCap
}

// commitLocked is the file-backed Flush: the four-step journaled commit
// described above. Called with mu held. A no-op when nothing changed
// since the last commit.
func (p *Pager) commitLocked() error {
	// Fold the dirty overlay into the committed (pending) layer first —
	// durability implies version-commit. An open update bracket keeps
	// its in-flight writes out: only previously committed state is
	// journaled.
	if !p.inTxn {
		if err := p.commitVersionLocked(); err != nil {
			return err
		}
	}
	if !p.metaDirty && len(p.pending) == 0 {
		return nil
	}
	if len(p.pending) == 0 {
		// Metadata-only commit: the meta page write is itself atomic
		// (single-page ping-pong), no journal needed.
		p.epoch++
		if err := p.writeMetaLocked(0, 0); err != nil {
			return err
		}
		p.metaDirty = false
		p.m.Commits++
		return nil
	}

	ids := make([]PageID, 0, len(p.pending))
	for id := range p.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Step 1: journal header pages + images past the data region.
	jstart := p.npages
	nhdr := journalHeaderPages(len(ids))
	if err := p.writeJournalLocked(jstart, ids, nhdr); err != nil {
		return err
	}
	if err := p.backend.Sync(); err != nil {
		return fmt.Errorf("pager: sync journal: %w", err)
	}

	// Step 2: commit point — meta referencing the journal.
	p.epoch++
	if err := p.writeMetaLocked(jstart, uint32(len(ids))); err != nil {
		return err
	}

	// Step 3: apply images in place.
	for _, id := range ids {
		if err := p.writeDiskLocked(id, p.pending[id]); err != nil {
			return err
		}
	}
	if err := p.backend.Sync(); err != nil {
		return fmt.Errorf("pager: sync apply: %w", err)
	}

	// Step 4: clear the journal reference.
	p.epoch++
	if err := p.writeMetaLocked(0, 0); err != nil {
		return err
	}
	for id := range p.pending {
		delete(p.pending, id)
	}
	p.metaDirty = false
	p.m.Commits++
	return nil
}

// writeDiskLocked stamps payload with id's trailer and writes the disk
// page at its home offset.
func (p *Pager) writeDiskLocked(id PageID, payload []byte) error {
	copy(p.scratch, payload)
	for i := PageSize; i < DiskPageSize; i++ {
		p.scratch[i] = 0
	}
	stampPage(p.scratch, id)
	if _, err := p.backend.WriteAt(p.scratch, int64(id)*DiskPageSize); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	return nil
}

// writeJournalLocked writes the journal header pages and images starting
// at page jstart. Header pages are stamped with sentinel ids (they have
// no home page); image pages are stamped with their destination id.
func (p *Pager) writeJournalLocked(jstart PageID, ids []PageID, nhdr int) error {
	idx := 0
	for h := 0; h < nhdr; h++ {
		for i := range p.scratch {
			p.scratch[i] = 0
		}
		off, cap_ := jhdrOffIDs, jhdrFirstCap
		if h == 0 {
			copy(p.scratch[:8], journalMagic[:])
			binary.LittleEndian.PutUint64(p.scratch[8:16], p.epoch+1)
			binary.LittleEndian.PutUint32(p.scratch[jhdrOffCount:], uint32(len(ids)))
		} else {
			off, cap_ = 0, jhdrRestCap
		}
		for i := 0; i < cap_ && idx < len(ids); i++ {
			binary.LittleEndian.PutUint32(p.scratch[off:off+4], uint32(ids[idx]))
			off += 4
			idx++
		}
		hid := jhdrSentinelID - PageID(h)
		stampPage(p.scratch, hid)
		if _, err := p.backend.WriteAt(p.scratch, int64(jstart+PageID(h))*DiskPageSize); err != nil {
			return fmt.Errorf("pager: write journal header %d: %w", h, err)
		}
	}
	for i, id := range ids {
		copy(p.scratch, p.pending[id])
		for j := PageSize; j < DiskPageSize; j++ {
			p.scratch[j] = 0
		}
		stampPage(p.scratch, id)
		at := int64(jstart+PageID(nhdr+i)) * DiskPageSize
		if _, err := p.backend.WriteAt(p.scratch, at); err != nil {
			return fmt.Errorf("pager: write journal image for page %d: %w", id, err)
		}
	}
	return nil
}

// writeMetaLocked builds, stamps, writes and syncs the meta page for the
// current epoch into slot epoch%2.
func (p *Pager) writeMetaLocked(jstart PageID, jcount uint32) error {
	for i := range p.scratch {
		p.scratch[i] = 0
	}
	copy(p.scratch[:8], metaMagic[:])
	binary.LittleEndian.PutUint64(p.scratch[metaOffEpoch:], p.epoch)
	binary.LittleEndian.PutUint32(p.scratch[metaOffNPages:], uint32(p.npages))
	binary.LittleEndian.PutUint32(p.scratch[metaOffJStart:], uint32(jstart))
	binary.LittleEndian.PutUint32(p.scratch[metaOffJCount:], jcount)
	copy(p.scratch[metaOffUserMeta:metaOffUserMeta+userMetaSize], p.userMeta[:])
	nfree := len(p.free)
	if nfree > maxMetaFree {
		nfree = maxMetaFree
	}
	binary.LittleEndian.PutUint32(p.scratch[metaOffFreeCount:], uint32(nfree))
	off := metaOffFree
	for i := 0; i < nfree; i++ {
		binary.LittleEndian.PutUint32(p.scratch[off:off+4], uint32(p.free[i]))
		off += 4
	}
	slot := PageID(p.epoch % 2)
	stampPage(p.scratch, slot)
	if _, err := p.backend.WriteAt(p.scratch, int64(slot)*DiskPageSize); err != nil {
		return fmt.Errorf("pager: write meta page %d: %w", slot, err)
	}
	if err := p.backend.Sync(); err != nil {
		return fmt.Errorf("pager: sync meta: %w", err)
	}
	return nil
}

// metaState is one decoded meta page.
type metaState struct {
	epoch    uint64
	npages   PageID
	jstart   PageID
	jcount   uint32
	userMeta [userMetaSize]byte
	free     []PageID
}

// readMetaSlot reads and validates meta slot (0 or 1). Returns nil for a
// missing, foreign, or corrupt slot; zeroed reports whether the slot was
// entirely blank (an expected state for young files, not corruption).
func (p *Pager) readMetaSlot(slot PageID) (st *metaState, zeroed bool) {
	buf := make([]byte, DiskPageSize)
	n, err := p.backend.ReadAt(buf, int64(slot)*DiskPageSize)
	if n < DiskPageSize && (err == nil || err == io.EOF) {
		for i := n; i < DiskPageSize; i++ {
			buf[i] = 0
		}
	} else if err != nil && err != io.EOF {
		return nil, false
	}
	zeroed = true
	for _, b := range buf {
		if b != 0 {
			zeroed = false
			break
		}
	}
	if zeroed || !verifyPage(buf, slot) || [8]byte(buf[:8]) != metaMagic {
		return nil, zeroed
	}
	st = &metaState{
		epoch:  binary.LittleEndian.Uint64(buf[metaOffEpoch:]),
		npages: PageID(binary.LittleEndian.Uint32(buf[metaOffNPages:])),
		jstart: PageID(binary.LittleEndian.Uint32(buf[metaOffJStart:])),
		jcount: binary.LittleEndian.Uint32(buf[metaOffJCount:]),
	}
	copy(st.userMeta[:], buf[metaOffUserMeta:metaOffUserMeta+userMetaSize])
	nfree := binary.LittleEndian.Uint32(buf[metaOffFreeCount:])
	if nfree > maxMetaFree {
		return nil, false
	}
	off := metaOffFree
	for i := uint32(0); i < nfree; i++ {
		st.free = append(st.free, PageID(binary.LittleEndian.Uint32(buf[off:off+4])))
		off += 4
	}
	if st.npages < firstDataPage {
		return nil, false
	}
	return st, false
}

// recoverLocked restores pager state from an existing file: pick the
// newer valid meta copy, then complete any committed-but-unapplied
// journal it references.
func (p *Pager) recoverLocked(size int64) error {
	a, azero := p.readMetaSlot(0)
	b, bzero := p.readMetaSlot(1)
	st := a
	if st == nil || (b != nil && b.epoch > st.epoch) {
		st = b
	}
	if st == nil {
		return fmt.Errorf("%w: neither meta copy is valid (not a VAMANA page file, or both copies torn)", ErrTornMeta)
	}
	// Exactly one surviving copy beyond the file's first commit means the
	// other was lost to a torn write and this open recovered around it.
	if (a == nil) != (b == nil) && !(azero || bzero) {
		p.m.MetaFallbacks++
	}
	p.epoch = st.epoch
	p.npages = st.npages
	p.userMeta = st.userMeta
	p.free = st.free
	if st.jcount > 0 {
		if err := p.replayJournalLocked(st, size); err != nil {
			return err
		}
	}
	return nil
}

// replayJournalLocked completes an interrupted commit: verify the whole
// journal, apply every image to its home page, sync, and clear the
// journal reference. Full-page redo is idempotent, so replaying an
// already-applied journal is harmless.
func (p *Pager) replayJournalLocked(st *metaState, size int64) error {
	// The journal was fully synced before the meta referencing it, so it
	// must lie entirely within the file; a reference past the end is
	// corruption (and guards the allocations below against garbage).
	if int64(st.jcount) > size/DiskPageSize {
		return fmt.Errorf("%w: journal image count %d exceeds file size", ErrTornMeta, st.jcount)
	}
	nhdr := journalHeaderPages(int(st.jcount))
	if end := int64(st.jstart) + int64(nhdr) + int64(st.jcount); end*DiskPageSize > size {
		return fmt.Errorf("%w: journal [%d..%d) extends past end of file", ErrTornMeta, st.jstart, end)
	}
	ids := make([]PageID, 0, st.jcount)
	buf := make([]byte, DiskPageSize)
	readJournalPage := func(i int, id PageID) error {
		n, err := p.backend.ReadAt(buf, int64(st.jstart+PageID(i))*DiskPageSize)
		if err != nil && !(err == io.EOF && n == DiskPageSize) {
			return fmt.Errorf("%w: journal page %d unreadable: %v", ErrTornMeta, i, err)
		}
		if !verifyPage(buf, id) {
			return fmt.Errorf("%w: journal page %d failed verification", ErrTornMeta, i)
		}
		return nil
	}
	for h := 0; h < nhdr; h++ {
		if err := readJournalPage(h, jhdrSentinelID-PageID(h)); err != nil {
			return err
		}
		off, cap_ := jhdrOffIDs, jhdrFirstCap
		if h == 0 {
			if [8]byte(buf[:8]) != journalMagic {
				return fmt.Errorf("%w: journal header magic mismatch", ErrTornMeta)
			}
			if got := binary.LittleEndian.Uint64(buf[8:16]); got != st.epoch {
				return fmt.Errorf("%w: journal epoch %d does not match meta epoch %d", ErrTornMeta, got, st.epoch)
			}
			if got := binary.LittleEndian.Uint32(buf[jhdrOffCount:]); got != st.jcount {
				return fmt.Errorf("%w: journal image count %d does not match meta %d", ErrTornMeta, got, st.jcount)
			}
		} else {
			off, cap_ = 0, jhdrRestCap
		}
		for i := 0; i < cap_ && len(ids) < int(st.jcount); i++ {
			ids = append(ids, PageID(binary.LittleEndian.Uint32(buf[off:off+4])))
			off += 4
		}
	}
	// Verify every image before applying any: replay must be all-or-
	// nothing, and the failure mode is a typed error, not a partial redo.
	for i, id := range ids {
		if id < firstDataPage || id >= st.npages {
			return fmt.Errorf("%w: journal image %d targets page %d out of range", ErrTornMeta, i, id)
		}
		if err := readJournalPage(nhdr+i, id); err != nil {
			return err
		}
	}
	for i, id := range ids {
		if err := readJournalPage(nhdr+i, id); err != nil {
			return err
		}
		if _, err := p.backend.WriteAt(buf, int64(id)*DiskPageSize); err != nil {
			return fmt.Errorf("pager: replay page %d: %w", id, err)
		}
	}
	if err := p.backend.Sync(); err != nil {
		return fmt.Errorf("pager: sync replay: %w", err)
	}
	p.epoch++
	if err := p.writeMetaLocked(0, 0); err != nil {
		return err
	}
	p.m.JournalReplays++
	return nil
}
