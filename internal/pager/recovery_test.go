package pager

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"vamana/internal/pager/faultfs"
)

// Crash-safety tests for the pager's commit protocol, driven through the
// fault-injecting backend. The convention throughout: build a store over
// a faultfs.Backend, arm a fault (or call Crash to abandon the pager
// mid-protocol — the reusable replacement for the old "close the file
// handle under the pager" trick), take faultfs Snapshot bytes as the
// surviving file, and reopen them with FromBytes as the post-crash world.

// buildBase creates a clean two-data-page store (page 2 filled with 'A',
// page 3 with 'B', user meta "v1") and returns its snapshot plus the ids.
func buildBase(t *testing.T) (snap []byte, pa, pb PageID) {
	t.Helper()
	b := faultfs.New()
	p, err := OpenBackend(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	pa, err = p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pb, err = p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(pa, fill('A')); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(pb, fill('B')); err != nil {
		t.Fatal(err)
	}
	p.SetUserMeta(userMetaOf("v1"))
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return b.Snapshot(), pa, pb
}

func userMetaOf(s string) [userMetaSize]byte {
	var m [userMetaSize]byte
	copy(m[:], s)
	return m
}

// mutate applies the canonical state transition v1 -> v2: rewrite both
// pages and the user metadata in one batch.
func mutate(t *testing.T, p *Pager, pa, pb PageID) {
	t.Helper()
	if err := p.Write(pa, fill('a')); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(pb, fill('b')); err != nil {
		t.Fatal(err)
	}
	p.SetUserMeta(userMetaOf("v2"))
}

// checkAtomic asserts the store is wholly in state v1 or wholly in state
// v2, using the user metadata as the witness: pages and metadata commit
// atomically, so they must agree.
func checkAtomic(t *testing.T, p *Pager, pa, pb PageID) (state string) {
	t.Helper()
	um := p.UserMeta()
	var wantA, wantB byte
	switch {
	case bytes.HasPrefix(um[:], []byte("v2")):
		state, wantA, wantB = "v2", 'a', 'b'
	case bytes.HasPrefix(um[:], []byte("v1")):
		state, wantA, wantB = "v1", 'A', 'B'
	default:
		t.Fatalf("user meta is neither v1 nor v2: %q", um[:4])
	}
	buf := make([]byte, PageSize)
	for _, pg := range []struct {
		id   PageID
		want byte
	}{{pa, wantA}, {pb, wantB}} {
		if err := p.Read(pg.id, buf); err != nil {
			t.Fatalf("state %s: read page %d: %v", state, pg.id, err)
		}
		if buf[0] != pg.want || buf[PageSize-1] != pg.want {
			t.Fatalf("state %s: page %d holds %q..%q, want %q (torn across states)",
				state, pg.id, buf[0], buf[PageSize-1], pg.want)
		}
	}
	return state
}

func TestChecksumDetectsBitRot(t *testing.T) {
	snap, pa, _ := buildBase(t)
	b := faultfs.FromBytes(snap)
	// Flip one bit in the middle of page pa's payload behind the pager.
	b.FlipBit(int64(pa)*DiskPageSize+1234, 3)
	p, err := OpenBackend(Config{Backend: b})
	if err != nil {
		t.Fatalf("open after payload bit flip: %v", err)
	}
	defer p.Close()
	buf := make([]byte, PageSize)
	if err := p.Read(pa, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("read of rotted page: got %v, want ErrChecksum", err)
	}
	if m := p.Metrics(); m.ChecksumFails == 0 {
		t.Fatal("ChecksumFails counter not incremented")
	}
}

func TestDisableChecksumVerify(t *testing.T) {
	snap, pa, _ := buildBase(t)
	b := faultfs.FromBytes(snap)
	b.FlipBit(int64(pa)*DiskPageSize+1234, 3)
	p, err := OpenBackend(Config{Backend: b, DisableChecksumVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	buf := make([]byte, PageSize)
	if err := p.Read(pa, buf); err != nil {
		t.Fatalf("unverified read should pass through rot: %v", err)
	}
}

func TestMisdirectedWriteDetected(t *testing.T) {
	// Copy page pa's (valid, checksummed) disk image over page pb: each
	// byte of pb is "correct" for pa, but the id mixed into the CRC makes
	// the misdirected page fail verification at its new home.
	snap, pa, pb := buildBase(t)
	b := faultfs.FromBytes(snap)
	img := make([]byte, DiskPageSize)
	copy(img, snap[int64(pa)*DiskPageSize:int64(pa+1)*DiskPageSize])
	b.Corrupt(int64(pb)*DiskPageSize, img)
	p, err := OpenBackend(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	buf := make([]byte, PageSize)
	if err := p.Read(pb, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("misdirected write: got %v, want ErrChecksum", err)
	}
}

func TestMetaPingPongFallback(t *testing.T) {
	snap, pa, pb := buildBase(t)
	junk := bytes.Repeat([]byte{0xEE}, DiskPageSize)
	for slot := int64(0); slot < 2; slot++ {
		b := faultfs.FromBytes(snap)
		b.Corrupt(slot*DiskPageSize, junk)
		p, err := OpenBackend(Config{Backend: b})
		if err != nil {
			t.Fatalf("open with meta slot %d destroyed: %v", slot, err)
		}
		checkAtomic(t, p, pa, pb)
		if m := p.Metrics(); m.MetaFallbacks != 1 {
			t.Fatalf("slot %d: MetaFallbacks = %d, want 1", slot, m.MetaFallbacks)
		}
		p.Close()
	}

	// Both slots destroyed: the only honest outcome is a typed error.
	b := faultfs.FromBytes(snap)
	b.Corrupt(0, junk)
	b.Corrupt(DiskPageSize, junk)
	if _, err := OpenBackend(Config{Backend: b}); !errors.Is(err, ErrTornMeta) {
		t.Fatalf("open with both meta slots destroyed: got %v, want ErrTornMeta", err)
	}
}

func TestCrashAbandonsBufferedWrites(t *testing.T) {
	// The promoted "bypass Close's flush" helper: Crash() kills the
	// backend so buffered writes never reach it; the snapshot is the
	// pre-mutation store.
	snap, pa, pb := buildBase(t)
	b := faultfs.FromBytes(snap)
	p, err := OpenBackend(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, p, pa, pb)
	b.Crash()
	if err := p.Flush(); err == nil {
		t.Fatal("Flush on a crashed backend succeeded")
	}
	p2, err := OpenBackend(Config{Backend: faultfs.FromBytes(b.Snapshot())})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if st := checkAtomic(t, p2, pa, pb); st != "v1" {
		t.Fatalf("crashed-before-commit store recovered to %s, want v1", st)
	}
}

// TestFlushCrashMatrix kills the backend at every write and every sync of
// a Flush commit — with the failing write torn at several byte offsets —
// and asserts the reopened store is always wholly pre-Flush or wholly
// post-Flush.
func TestFlushCrashMatrix(t *testing.T) {
	snap, pa, pb := buildBase(t)

	// Clean run to count the commit's backend operations.
	clean := faultfs.FromBytes(snap)
	p, err := OpenBackend(Config{Backend: clean})
	if err != nil {
		t.Fatal(err)
	}
	w0, s0 := clean.Writes(), clean.Syncs()
	mutate(t, p, pa, pb)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	nWrites, nSyncs := clean.Writes()-w0, clean.Syncs()-s0
	p.Close()
	if nWrites < 4 || nSyncs < 4 {
		t.Fatalf("commit used %d writes / %d syncs; protocol expects at least 4 of each", nWrites, nSyncs)
	}

	sawPre, sawPost := false, false
	run := func(name string, arm func(b *faultfs.Backend)) {
		b := faultfs.FromBytes(snap)
		p, err := OpenBackend(Config{Backend: b})
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		mutate(t, p, pa, pb)
		arm(b)
		if err := p.Flush(); err == nil {
			t.Fatalf("%s: Flush survived an injected fault", name)
		}
		p.Close() // backend is dead; errors expected and irrelevant

		p2, err := OpenBackend(Config{Backend: faultfs.FromBytes(b.Snapshot())})
		if err != nil {
			t.Fatalf("%s: reopen after crash: %v", name, err)
		}
		switch checkAtomic(t, p2, pa, pb) {
		case "v1":
			sawPre = true
		case "v2":
			sawPost = true
		}
		p2.Close()
	}

	for k := 1; k <= nWrites; k++ {
		for _, tear := range []int{0, 17, DiskPageSize / 2, DiskPageSize} {
			k, tear := k, tear
			run(fmt.Sprintf("write%d/tear%d", k, tear), func(b *faultfs.Backend) {
				b.FailWrite(k, tear)
			})
		}
	}
	for k := 1; k <= nSyncs; k++ {
		k := k
		run(fmt.Sprintf("sync%d", k), func(b *faultfs.Backend) {
			b.FailSync(k)
		})
	}
	if !sawPre || !sawPost {
		t.Fatalf("matrix did not exercise both outcomes: pre=%v post=%v", sawPre, sawPost)
	}
}

func TestJournalReplayOnReopen(t *testing.T) {
	// Crash after the commit-point meta but before the in-place apply
	// completes: reopen must finish the commit from the journal.
	snap, pa, pb := buildBase(t)
	b := faultfs.FromBytes(snap)
	p, err := OpenBackend(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, p, pa, pb)
	// Commit layout for this batch: 1 journal header + 2 images, meta,
	// 2 in-place applies, meta. Fail the first in-place apply (write 5),
	// torn halfway.
	b.FailWrite(5, DiskPageSize/2)
	if err := p.Flush(); err == nil {
		t.Fatal("Flush survived the injected apply fault")
	}
	p.Close()

	p2, err := OpenBackend(Config{Backend: faultfs.FromBytes(b.Snapshot())})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.Close()
	if st := checkAtomic(t, p2, pa, pb); st != "v2" {
		t.Fatalf("committed journal not replayed: recovered to %s, want v2", st)
	}
	if m := p2.Metrics(); m.JournalReplays != 1 {
		t.Fatalf("JournalReplays = %d, want 1", m.JournalReplays)
	}
}

func TestVerifyFindsCorruptPages(t *testing.T) {
	snap, pa, pb := buildBase(t)
	b := faultfs.FromBytes(snap)
	b.FlipBit(int64(pb)*DiskPageSize+99, 0)
	p, err := OpenBackend(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	checked, corrupt, err := p.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if checked != 2 {
		t.Fatalf("Verify checked %d pages, want 2", checked)
	}
	if len(corrupt) != 1 || corrupt[0] != pb {
		t.Fatalf("Verify corrupt list = %v, want [%d]", corrupt, pb)
	}
	_ = pa
}

func TestFreedPagesSkippedByVerify(t *testing.T) {
	snap, _, pb := buildBase(t)
	b := faultfs.FromBytes(snap)
	p, err := OpenBackend(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Free(pb); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// Rot the freed page: Verify must not care.
	b.FlipBit(int64(pb)*DiskPageSize+7, 1)
	checked, corrupt, err := p.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) != 0 {
		t.Fatalf("Verify flagged freed pages: %v", corrupt)
	}
	if checked != 1 {
		t.Fatalf("Verify checked %d pages, want 1", checked)
	}
}
