// Package flex implements FLEX (Fast Lexicographical) keys, the structural
// encoding that MASS uses to identify XML nodes (Deschler & Rundensteiner,
// CIKM 2003; used by VAMANA, ICDE 2005).
//
// A FLEX key is a dotted sequence of components, e.g. "a.d.y.c". Each
// component is a non-empty string over the alphabet 'a'..'z' that does not
// end in 'a'. The dotted serialization has a central property: comparing two
// keys as raw bytes yields exactly document order. This holds because the
// separator '.' (0x2E) is smaller than every alphabet byte, so an ancestor
// (a strict prefix at a component boundary) sorts immediately before its
// descendants, and descendants of an earlier sibling sort before the later
// sibling.
//
// The encoding supports insertion of new siblings between any two existing
// siblings without renumbering (see Between), which is what keeps index
// statistics valid under document updates — a property the VAMANA cost
// model depends on.
package flex

import (
	"bytes"
	"strings"
)

// Key is the dotted serialization of a FLEX key. The empty string is not a
// valid key; it is used as the "no key" / virtual-super-root sentinel.
type Key string

// Root is the key of the document node. Every other node in a document is a
// descendant of Root.
const Root Key = "a"

// sep separates components. It must be smaller than every alphabet byte for
// byte comparison to equal document order.
const sep = '.'

// subtreeSentinel terminates a subtree range. It must be strictly greater
// than sep and strictly smaller than every alphabet byte.
const subtreeSentinel = '/'

// SubtreeSentinel is the byte SubtreeUpper appends, exported so byte-level
// range builders can extend a raw key in place instead of materializing
// key + sentinel strings.
const SubtreeSentinel byte = subtreeSentinel

// Sep is the component separator byte, exported (like SubtreeSentinel) so
// byte-level range builders can form DescLower bounds in place.
const Sep byte = sep

// IsRoot reports whether k is the document root key.
func (k Key) IsRoot() bool { return k == Root }

// Valid reports whether k is a well-formed FLEX key: one or more valid
// components joined by '.'.
func (k Key) Valid() bool {
	if len(k) == 0 {
		return false
	}
	start := 0
	s := string(k)
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == sep {
			if !validComponent(s[start:i]) {
				return false
			}
			start = i + 1
		}
	}
	return true
}

func validComponent(c string) bool {
	// A component must not end in 'a' (the zero digit), so that a sibling
	// can always be inserted between any two components (see Between).
	// The single-character component "a" is allowed as a special case: it
	// is the root component, and the root never has siblings.
	if len(c) == 0 || (len(c) > 1 && c[len(c)-1] == minDigit) {
		return false
	}
	for i := 0; i < len(c); i++ {
		if c[i] < 'a' || c[i] > 'z' {
			return false
		}
	}
	return true
}

// Compare returns -1, 0, or +1 as k sorts before, equal to, or after o in
// document order. Document order equals raw byte order of the serialized
// keys; this function exists to make call sites self-documenting.
func (k Key) Compare(o Key) int {
	switch {
	case k < o:
		return -1
	case k > o:
		return 1
	default:
		return 0
	}
}

// Parent returns the key of k's parent, or "" if k is the root (or empty).
func (k Key) Parent() Key {
	i := strings.LastIndexByte(string(k), sep)
	if i < 0 {
		return ""
	}
	return k[:i]
}

// Depth returns the number of components in k. The root has depth 1; the
// empty key has depth 0.
func (k Key) Depth() int {
	if len(k) == 0 {
		return 0
	}
	return strings.Count(string(k), string(rune(sep))) + 1
}

// LastComponent returns the final component of k, or "" for the empty key.
func (k Key) LastComponent() Component {
	i := strings.LastIndexByte(string(k), sep)
	return Component(k[i+1:])
}

// Child returns the key formed by appending component c to k.
func (k Key) Child(c Component) Key {
	if len(k) == 0 {
		return Key(c)
	}
	return k + Key(rune(sep)) + Key(c)
}

// IsAncestorOf reports whether k is a strict ancestor of d.
func (k Key) IsAncestorOf(d Key) bool {
	if len(k) == 0 {
		return len(d) != 0 // the virtual super-root is an ancestor of all keys
	}
	return len(d) > len(k)+1 && d[len(k)] == sep && d[:len(k)] == k
}

// IsDescendantOf reports whether k is a strict descendant of a.
func (k Key) IsDescendantOf(a Key) bool { return a.IsAncestorOf(k) }

// DepthOf is Depth for a key still in raw index-entry bytes, letting scan
// filters reject entries without materializing a Key.
func DepthOf(b []byte) int {
	if len(b) == 0 {
		return 0
	}
	return bytes.Count(b, []byte{sep}) + 1
}

// BytesIsAncestorOf reports whether the key in raw index-entry bytes b is
// a strict ancestor of d, without materializing a Key.
func BytesIsAncestorOf(b []byte, d Key) bool {
	if len(b) == 0 {
		return len(d) != 0
	}
	return len(d) > len(b)+1 && d[len(b)] == sep && string(d[:len(b)]) == string(b)
}

// DescLower returns the smallest byte string greater than k that every
// descendant key of k is >= to. The half-open range [k.DescLower(),
// k.SubtreeUpper()) covers exactly the descendants of k.
func (k Key) DescLower() Key { return k + Key(rune(sep)) }

// SubtreeUpper returns the exclusive upper bound of k's subtree: the
// smallest byte string greater than k and all of k's descendants. The
// half-open range [k, k.SubtreeUpper()) covers k and its descendants.
func (k Key) SubtreeUpper() Key { return k + Key(rune(subtreeSentinel)) }

// Ancestors returns the keys of k's strict ancestors, nearest first
// (parent, grandparent, ..., root). The root itself has no ancestors.
func (k Key) Ancestors() []Key {
	var out []Key
	for p := k.Parent(); len(p) != 0; p = p.Parent() {
		out = append(out, p)
	}
	return out
}

// AncestorAtDepth returns the ancestor-or-self of k at the given depth
// (1 = root), or "" if depth exceeds k's depth or is < 1.
func (k Key) AncestorAtDepth(depth int) Key {
	if depth < 1 {
		return ""
	}
	s := string(k)
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			n++
			if n == depth {
				return Key(s[:i])
			}
		}
	}
	if n+1 == depth {
		return k
	}
	return ""
}

// CommonAncestor returns the deepest key that is an ancestor-or-self of
// both a and b, or "" if they share none (which cannot happen for two valid
// keys of the same document, as both descend from the root).
func CommonAncestor(a, b Key) Key {
	da, db := a.Depth(), b.Depth()
	d := da
	if db < d {
		d = db
	}
	for ; d >= 1; d-- {
		pa, pb := a.AncestorAtDepth(d), b.AncestorAtDepth(d)
		if pa == pb {
			return pa
		}
	}
	return ""
}
