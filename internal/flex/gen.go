package flex

import (
	"errors"
	"fmt"
	"strings"
)

// Component is a single level of a FLEX key: a non-empty string over
// 'a'..'z' that does not end in 'a'. Components within one parent are
// totally ordered lexicographically; between any two distinct components
// another component can always be constructed (see Between), which is what
// lets MASS insert siblings without renumbering.
type Component string

// Alphabet parameters for generated components. Ordinal encoding uses the
// digits minOrdDigit..maxOrdDigit (base ordBase) with a run of 'z' bytes as
// a length-class prefix, so longer encodings sort after all shorter ones.
const (
	minDigit    = 'a' // smallest alphabet byte; components must not end in it
	maxDigit    = 'z'
	minOrdDigit = 'b'
	maxOrdDigit = 'y'
	ordBase     = int(maxOrdDigit-minOrdDigit) + 1 // 24
)

// Ordinal returns the i-th (0-based) generated child component. The
// sequence is strictly increasing in lexicographic order:
//
//	b, c, ..., y, zbb, zbc, ..., zyy, zzbbb, ...
//
// Level L (1-based) consists of (L-1) 'z' bytes followed by L base-24
// digits drawn from 'b'..'y', giving 24^L values per level. Every level-L
// string sorts after every level-(L-1) string because the (L-1)-th byte of
// the former is 'z' while the latter has a digit < 'z' there (or has ended).
func Ordinal(i int) Component {
	if i < 0 {
		panic(fmt.Sprintf("flex: negative ordinal %d", i))
	}
	level := 1
	levelCap := ordBase
	for i >= levelCap {
		i -= levelCap
		level++
		if levelCap > (1<<31)/ordBase { // avoid overflow; depth this large is unreachable in practice
			panic("flex: ordinal out of range")
		}
		levelCap *= ordBase
	}
	var b strings.Builder
	b.Grow(2*level - 1)
	for j := 1; j < level; j++ {
		b.WriteByte(maxDigit)
	}
	digits := make([]byte, level)
	for j := level - 1; j >= 0; j-- {
		digits[j] = byte(minOrdDigit + i%ordBase)
		i /= ordBase
	}
	b.Write(digits)
	return Component(b.String())
}

// AttrOrdinal returns the i-th (0-based) generated attribute component.
// Attribute components are the element ordinal sequence prefixed with 'a',
// so every attribute of a node sorts before every non-attribute child of
// that node (generated child components start at 'b' or later) while
// remaining inside the node's subtree key range.
func AttrOrdinal(i int) Component {
	return Component(string(rune(minDigit))) + Ordinal(i)
}

// IsAttr reports whether c lies in the attribute component range (starts
// with 'a'). Generated non-attribute components never start with 'a';
// components produced by Between between an attribute and an element
// component are steered out of the attribute range by the caller supplying
// bounds (see mass).
func (c Component) IsAttr() bool { return len(c) > 0 && c[0] == minDigit }

// ErrNoRoom is returned by Between when no component exists strictly
// between the given bounds (only possible when a >= b).
var ErrNoRoom = errors.New("flex: no component strictly between bounds")

// Between returns a component strictly between a and b in lexicographic
// order. a may be "" to mean "unbounded below" and b may be "" to mean
// "unbounded above". The result never ends in 'a' and, like all
// components, contains only bytes in 'a'..'z'.
//
// The construction is the classic fractional-indexing midpoint over base-26
// digit strings with 'a' playing the role of zero: find the first position
// where the bounds differ, and either pick an intermediate digit or recurse
// into the gap below b.
func Between(a, b Component) (Component, error) {
	if b != "" && a >= b {
		return "", ErrNoRoom
	}
	var out []byte
	i := 0
	for {
		var da, db int
		if i < len(a) {
			da = int(a[i] - minDigit)
		}
		if i < len(b) {
			db = int(b[i] - minDigit)
		} else if b == "" {
			db = int(maxDigit-minDigit) + 1 // virtual digit above 'z'
		} else {
			// b is exhausted: since a < b and out so far is a prefix of
			// both, this cannot happen (a would not sort below b).
			return "", ErrNoRoom
		}
		if da == db {
			out = append(out, byte(minDigit+da))
			i++
			continue
		}
		if db-da >= 2 {
			// Room for a digit strictly between; pick the midpoint digit.
			mid := (da + db) / 2
			out = append(out, byte(minDigit+mid))
			return Component(out), nil
		}
		// db == da+1: no intermediate digit. Emit da and find something
		// strictly above the remainder of a (or above "" if a exhausted)
		// in the space below the implicit top.
		out = append(out, byte(minDigit+da))
		i++
		for {
			var ra int
			if i < len(a) {
				ra = int(a[i] - minDigit)
			}
			if ra < int(maxDigit-minDigit) {
				// pick a digit strictly above ra, as high as possible but
				// leaving room: midpoint between ra and top+1.
				mid := (ra + int(maxDigit-minDigit) + 1 + 1) / 2
				if mid <= ra {
					mid = ra + 1
				}
				out = append(out, byte(minDigit+mid))
				return Component(out), nil
			}
			out = append(out, maxDigit)
			i++
		}
	}
}

// After returns a component strictly greater than a. It is used when
// appending a sibling at the end of a node's child list, where any larger
// component is safe.
func After(a Component) Component {
	if a == "" {
		return Ordinal(0)
	}
	last := a[len(a)-1]
	if last < maxOrdDigit {
		return a[:len(a)-1] + Component(last+1)
	}
	return a + Component(rune(minOrdDigit))
}

// Before returns a component strictly smaller than b, or an error when no
// such component exists (b is the minimal component "b"... actually the
// space below any component except those collapsing onto all-'a' prefixes
// is non-empty; the error is returned when b <= the attribute floor given).
// floor is an exclusive lower bound ("" for unbounded).
func Before(floor, b Component) (Component, error) {
	return Between(floor, b)
}
