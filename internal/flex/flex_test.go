package flex

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestRootProperties(t *testing.T) {
	if !Root.Valid() {
		t.Fatal("root key must be valid")
	}
	if !Root.IsRoot() {
		t.Fatal("Root.IsRoot() = false")
	}
	if got := Root.Parent(); got != "" {
		t.Fatalf("Root.Parent() = %q, want empty", got)
	}
	if got := Root.Depth(); got != 1 {
		t.Fatalf("Root.Depth() = %d, want 1", got)
	}
}

func TestValid(t *testing.T) {
	valid := []Key{"a", "a.d", "a.d.y", "a.d.y.c", "b", "zz.bb", "a.ab"}
	for _, k := range valid {
		if !k.Valid() {
			t.Errorf("Key(%q).Valid() = false, want true", k)
		}
	}
	invalid := []Key{"", ".", "a.", ".a", "a..b", "a.A", "a.1", "a.da.", "a.ba.c" /* component "ba" ends in 'a' */}
	for _, k := range invalid {
		if k.Valid() {
			t.Errorf("Key(%q).Valid() = true, want false", k)
		}
	}
}

func TestParentDepthChild(t *testing.T) {
	k := Key("a.d.y.c")
	if got := k.Parent(); got != "a.d.y" {
		t.Fatalf("Parent = %q", got)
	}
	if got := k.Depth(); got != 4 {
		t.Fatalf("Depth = %d", got)
	}
	if got := k.Parent().Child("c"); got != k {
		t.Fatalf("Child roundtrip = %q", got)
	}
	if got := k.LastComponent(); got != "c" {
		t.Fatalf("LastComponent = %q", got)
	}
	if got := Key("").Depth(); got != 0 {
		t.Fatalf("empty Depth = %d", got)
	}
}

func TestAncestry(t *testing.T) {
	a, d := Key("a.d.y"), Key("a.d.y.c.b")
	if !a.IsAncestorOf(d) {
		t.Fatal("a.d.y should be ancestor of a.d.y.c.b")
	}
	if !d.IsDescendantOf(a) {
		t.Fatal("IsDescendantOf mismatch")
	}
	if a.IsAncestorOf(a) {
		t.Fatal("key is not its own strict ancestor")
	}
	// "a.d.yb" is a sibling-ish key, not a descendant of "a.d.y".
	if a.IsAncestorOf("a.d.yb") {
		t.Fatal("prefix without component boundary must not count as ancestor")
	}
	if !Key("").IsAncestorOf("a") {
		t.Fatal("virtual super-root is ancestor of root")
	}
	got := Key("a.d.y.c").Ancestors()
	want := []Key{"a.d.y", "a.d", "a"}
	if len(got) != len(want) {
		t.Fatalf("Ancestors = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ancestors[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAncestorAtDepth(t *testing.T) {
	k := Key("a.d.y.c")
	cases := []struct {
		depth int
		want  Key
	}{{1, "a"}, {2, "a.d"}, {3, "a.d.y"}, {4, "a.d.y.c"}, {5, ""}, {0, ""}}
	for _, c := range cases {
		if got := k.AncestorAtDepth(c.depth); got != c.want {
			t.Errorf("AncestorAtDepth(%d) = %q, want %q", c.depth, got, c.want)
		}
	}
}

func TestCommonAncestor(t *testing.T) {
	cases := []struct{ a, b, want Key }{
		{"a.d.y.c", "a.d.y.d", "a.d.y"},
		{"a.d.y", "a.d.y.c", "a.d.y"},
		{"a.b", "a.c", "a"},
		{"a", "a", "a"},
	}
	for _, c := range cases {
		if got := CommonAncestor(c.a, c.b); got != c.want {
			t.Errorf("CommonAncestor(%q,%q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
}

// TestDocumentOrderEqualsByteOrder builds a random tree, assigns keys via
// Ordinal in pre-order, and verifies that sorting the serialized keys as
// plain strings reproduces pre-order (= document order) exactly. This is
// the central FLEX property everything above relies on.
func TestDocumentOrderEqualsByteOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var preorder []Key
	var build func(k Key, depth int)
	build = func(k Key, depth int) {
		preorder = append(preorder, k)
		if depth >= 5 {
			return
		}
		nattr := rng.Intn(3)
		for i := 0; i < nattr; i++ {
			preorder = append(preorder, k.Child(AttrOrdinal(i)))
		}
		nkids := rng.Intn(30)
		for i := 0; i < nkids; i++ {
			if rng.Intn(3) == 0 {
				build(k.Child(Ordinal(i)), depth+1)
			} else {
				preorder = append(preorder, k.Child(Ordinal(i)))
			}
		}
	}
	build(Root, 1)

	sorted := append([]Key(nil), preorder...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := range preorder {
		if preorder[i] != sorted[i] {
			t.Fatalf("document order != byte order at %d: %q vs %q", i, preorder[i], sorted[i])
		}
	}
}

func TestSubtreeBounds(t *testing.T) {
	k := Key("a.d.y")
	inside := []Key{"a.d.y.b", "a.d.y.zz.b", "a.d.y.ab"}
	for _, d := range inside {
		if !(d > Key(k.DescLower()) || d >= k.DescLower()) || d >= k.SubtreeUpper() {
			t.Errorf("descendant %q outside [%q,%q)", d, k.DescLower(), k.SubtreeUpper())
		}
	}
	outside := []Key{"a.d.y", "a.d.z", "a.d", "a.e", "a.d.yb"}
	for _, o := range outside {
		if o >= k.DescLower() && o < k.SubtreeUpper() {
			t.Errorf("non-descendant %q inside subtree range of %q", o, k)
		}
	}
	// Self-inclusive range [k, upper) contains k.
	if !(k >= k && k < k.SubtreeUpper()) {
		t.Error("self not in subtree-or-self range")
	}
}

func TestOrdinalSequence(t *testing.T) {
	if Ordinal(0) != "b" || Ordinal(1) != "c" || Ordinal(23) != "y" {
		t.Fatalf("first level wrong: %q %q %q", Ordinal(0), Ordinal(1), Ordinal(23))
	}
	if Ordinal(24) != "zbb" {
		t.Fatalf("Ordinal(24) = %q, want zbb", Ordinal(24))
	}
	prev := Component("")
	for i := 0; i < 50000; i++ {
		c := Ordinal(i)
		if !validComponent(string(c)) {
			t.Fatalf("Ordinal(%d) = %q invalid", i, c)
		}
		if c <= prev {
			t.Fatalf("Ordinal not increasing at %d: %q <= %q", i, c, prev)
		}
		prev = c
	}
}

func TestAttrOrdinalSortsBeforeChildren(t *testing.T) {
	for i := 0; i < 1000; i++ {
		a := AttrOrdinal(i)
		if !validComponent(string(a)) {
			t.Fatalf("AttrOrdinal(%d) = %q invalid", i, a)
		}
		if !a.IsAttr() {
			t.Fatalf("AttrOrdinal(%d) = %q not in attr range", i, a)
		}
		if a >= Ordinal(0) {
			t.Fatalf("attr component %q does not sort before first child %q", a, Ordinal(0))
		}
	}
	if AttrOrdinal(0) >= AttrOrdinal(1) {
		t.Fatal("attr ordinals not increasing")
	}
}

func TestBetweenBasics(t *testing.T) {
	cases := []struct{ a, b Component }{
		{"", ""}, {"b", "c"}, {"b", "bb"}, {"", "b"}, {"z", ""}, {"y", ""},
		{"bz", "c"}, {"bn", "c"}, {"n", "nb"}, {"ab", "b"}, {"zzz", ""},
	}
	for _, c := range cases {
		m, err := Between(c.a, c.b)
		if err != nil {
			t.Fatalf("Between(%q,%q): %v", c.a, c.b, err)
		}
		if !validComponent(string(m)) {
			t.Fatalf("Between(%q,%q) = %q invalid", c.a, c.b, m)
		}
		if c.a != "" && m <= c.a {
			t.Fatalf("Between(%q,%q) = %q not above lower bound", c.a, c.b, m)
		}
		if c.b != "" && m >= c.b {
			t.Fatalf("Between(%q,%q) = %q not below upper bound", c.a, c.b, m)
		}
	}
	if _, err := Between("c", "c"); err == nil {
		t.Fatal("Between(c,c) should fail")
	}
	if _, err := Between("d", "c"); err == nil {
		t.Fatal("Between(d,c) should fail")
	}
}

// randomComponent produces a valid component for property tests.
func randomComponent(rng *rand.Rand) Component {
	n := 1 + rng.Intn(6)
	var b strings.Builder
	for i := 0; i < n; i++ {
		lo := byte('a')
		if i == n-1 {
			lo = 'b' // must not end in 'a'
		}
		b.WriteByte(lo + byte(rng.Intn(int('z'-lo)+1)))
	}
	return Component(b.String())
}

func TestBetweenProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		a, b := randomComponent(rng), randomComponent(rng)
		if a > b {
			a, b = b, a
		}
		if a == b {
			continue
		}
		m, err := Between(a, b)
		if err != nil {
			t.Fatalf("Between(%q,%q): %v", a, b, err)
		}
		if !(a < m && m < b) {
			t.Fatalf("Between(%q,%q) = %q out of bounds", a, b, m)
		}
		if !validComponent(string(m)) {
			t.Fatalf("Between(%q,%q) = %q invalid", a, b, m)
		}
	}
}

// TestBetweenDensity repeatedly subdivides the same interval to confirm the
// space never runs out (the property that lets MASS insert without
// renumbering).
func TestBetweenDensity(t *testing.T) {
	lo, hi := Component("b"), Component("c")
	for i := 0; i < 200; i++ {
		m, err := Between(lo, hi)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !(lo < m && m < hi) {
			t.Fatalf("iteration %d: %q not in (%q,%q)", i, m, lo, hi)
		}
		if i%2 == 0 {
			lo = m
		} else {
			hi = m
		}
	}
	if len(lo) > 220 {
		t.Fatalf("keys grew pathologically: %d bytes", len(lo))
	}
}

func TestAfter(t *testing.T) {
	cases := []Component{"", "b", "n", "y", "z", "az", "zy", "ab"}
	for _, c := range cases {
		a := After(c)
		if !validComponent(string(a)) {
			t.Fatalf("After(%q) = %q invalid", c, a)
		}
		if c != "" && a <= c {
			t.Fatalf("After(%q) = %q not greater", c, a)
		}
	}
}

func TestAfterQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComponent(rng)
		a := After(c)
		return a > c && validComponent(string(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	if Key("a.d").Compare("a.d.b") != -1 {
		t.Fatal("ancestor must precede descendant")
	}
	if Key("a.d.y").Compare("a.d.y") != 0 {
		t.Fatal("equal keys")
	}
	if Key("a.e").Compare("a.d/") != 1 {
		t.Fatal("subtree sentinel must sort before following sibling")
	}
}
