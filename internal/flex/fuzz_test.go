package flex

import (
	"sort"
	"testing"
)

// FuzzFlexKey drives random sibling insertions from a byte script: each
// byte picks a gap in an ordered sibling list (front, end, or between two
// existing components) and inserts a fresh component there via the same
// generators MASS uses (Ordinal for the first child, After for appends,
// Between for middle inserts). Invariants checked after every insertion:
//
//   - every generated component is valid (alphabet, no trailing 'a');
//   - the list stays strictly increasing — fractional indexing never
//     renumbers an existing sibling;
//   - child keys built from the components preserve ancestry (Parent,
//     IsAncestorOf, Depth) and document order (Compare), and stay inside
//     the parent's subtree scan bounds (DescLower, SubtreeUpper).
func FuzzFlexKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 254, 253, 252, 251, 250})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5})
	f.Add([]byte{7, 3, 200, 11, 0, 0, 99, 1, 42, 17, 250, 6})

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			script = script[:512] // bound quadratic invariant checks
		}
		parent := Root.Child(Ordinal(0)).Child(Ordinal(1)) // depth-3 parent
		var comps []Component
		for step, b := range script {
			gap := int(b) % (len(comps) + 1)
			var c Component
			var err error
			switch {
			case len(comps) == 0:
				c = Ordinal(0)
			case gap == len(comps):
				c = After(comps[len(comps)-1])
			case gap == 0:
				c, err = Between("", comps[0])
			default:
				c, err = Between(comps[gap-1], comps[gap])
			}
			if err != nil {
				// Between's only error is a >= b, which would mean the list
				// is already out of order — an invariant violation itself.
				t.Fatalf("step %d: gap %d: %v (list %q)", step, gap, err, comps)
			}
			comps = append(comps, "")
			copy(comps[gap+1:], comps[gap:])
			comps[gap] = c

			// The list must be strictly increasing without renumbering.
			if !sort.SliceIsSorted(comps, func(i, j int) bool { return comps[i] < comps[j] }) {
				t.Fatalf("step %d: siblings out of order after inserting %q at %d: %q", step, c, gap, comps)
			}
			for i := 1; i < len(comps); i++ {
				if comps[i-1] == comps[i] {
					t.Fatalf("step %d: duplicate component %q", step, comps[i])
				}
			}

			k := parent.Child(c)
			if !k.Valid() {
				t.Fatalf("step %d: generated invalid key %q", step, k)
			}
			if k.Parent() != parent {
				t.Fatalf("step %d: %q.Parent() = %q, want %q", step, k, k.Parent(), parent)
			}
			if !parent.IsAncestorOf(k) || k.IsAncestorOf(parent) {
				t.Fatalf("step %d: ancestry broken for %q under %q", step, k, parent)
			}
			if k.Depth() != parent.Depth()+1 {
				t.Fatalf("step %d: depth %d, want %d", step, k.Depth(), parent.Depth()+1)
			}
			if k <= parent.DescLower() || k >= parent.SubtreeUpper() {
				t.Fatalf("step %d: %q escapes subtree bounds (%q, %q)", step, k, parent.DescLower(), parent.SubtreeUpper())
			}
		}
		// Key order must equal component order (document order of siblings).
		for i := 1; i < len(comps); i++ {
			a, b := parent.Child(comps[i-1]), parent.Child(comps[i])
			if a.Compare(b) >= 0 {
				t.Fatalf("sibling keys out of document order: %q vs %q", a, b)
			}
		}
	})
}
