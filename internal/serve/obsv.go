package serve

// Request observability: the serving half of the flight recorder. Every
// /v1/query request gets a wire request ID (generated, or adopted from
// X-Vamana-Request / a W3C traceparent), echoed on the response and
// stamped into the engine's trace context, so one identifier joins the
// client's log line, the access log, the recent/slow request rings, and
// the span timeline in `vamana traces`. The serve layer's own phases —
// admission wait, prepare, engine execution, first byte, stream drain —
// are grafted as parent spans above the engine's operator span tree and
// recorded as one combined trace per request.
//
// Everything here is gated by Config.DisableRequestObs; the daemon's
// behavior with it set is byte-identical to a daemon without this file
// (minus the cumulative tenant counters, which are accounting, not
// observability).

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vamana"
	"vamana/internal/obs"
)

// Wire headers for request observability.
const (
	// RequestHeader carries the request ID: client-supplied on the
	// request (adopted when valid), always echoed on the response.
	RequestHeader = "X-Vamana-Request"
	// TraceparentHeader is the W3C trace-context header; its trace-id
	// field is adopted as the request ID when no RequestHeader is given.
	TraceparentHeader = "traceparent"
	// QueueWaitHeader reports, on the response, how long the request sat
	// in the admission queue (Go duration string; "0s" when a slot was
	// free on arrival).
	QueueWaitHeader = "X-Vamana-Queue-Wait"
)

// Request outcomes — the closed label set for the per-tenant SLO
// histograms. Finer detail (rejection reason, error code) rides in the
// access log and request rings, not in metric labels.
const (
	OutcomeOK       = "ok"
	OutcomeRejected = "rejected"
	OutcomeError    = "error"
	OutcomeCanceled = "canceled"
)

// classifyOutcome maps a request's terminal error to its outcome label.
func classifyOutcome(err error) string {
	switch {
	case err == nil:
		return OutcomeOK
	default:
		switch errorCode(err) {
		case CodeOverloaded, CodeDraining:
			return OutcomeRejected
		case CodeCanceled:
			return OutcomeCanceled
		default:
			return OutcomeError
		}
	}
}

// validRequestID accepts client-supplied request IDs: 1-64 bytes of
// URL-safe ASCII (alphanumerics, '-', '_', '.'), so IDs embed cleanly
// in headers, logs, and trace output without escaping.
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// traceparentID extracts the trace-id field from a W3C traceparent
// header ("00-<32 hex>-<16 hex>-<2 hex>"), empty when malformed or
// all-zero.
func traceparentID(tp string) string {
	if len(tp) < 55 || tp[2] != '-' || tp[35] != '-' || tp[52] != '-' {
		return ""
	}
	id := tp[3:35]
	zero := true
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return ""
		}
		if c != '0' {
			zero = false
		}
	}
	if zero {
		return ""
	}
	return id
}

// RequestRecord is one finished /v1/query request as the access log and
// the /debug/vamana/requests rings report it.
type RequestRecord struct {
	Time     time.Time `json:"time"`
	ID       string    `json:"id"`
	Tenant   string    `json:"tenant"`
	Doc      string    `json:"doc"`
	Expr     string    `json:"expr"`
	ExprHash string    `json:"expr_hash"`
	Outcome  string    `json:"outcome"`
	// Reason is the admission rejection reason, empty otherwise.
	Reason string `json:"reason,omitempty"`
	Status int    `json:"status"`
	// QueueWait is the admission queue wait; TTFB the time to the
	// response's first byte (zero when nothing was written); Total the
	// end-to-end request duration.
	QueueWait time.Duration `json:"queue_wait_ns"`
	TTFB      time.Duration `json:"ttfb_ns,omitempty"`
	Total     time.Duration `json:"total_ns"`
	Results   uint64        `json:"results"`
	Bytes     uint64        `json:"bytes"`
	// TraceID links the record to its flight-recorder trace (vamana
	// traces), zero when the run was not traced.
	TraceID uint64 `json:"trace_id,omitempty"`
}

// exprHash is a stable short hash of a query expression — the access
// log's join key for "same query, many requests" aggregation without
// logging unbounded expression text twice.
func exprHash(expr string) string {
	h := fnv.New64a()
	_, _ = io.WriteString(h, expr)
	return strconv.FormatUint(h.Sum64(), 16)
}

// appendRecord appends rec as one NDJSON access-log line. Hand-built
// for fixed field order and one allocation-free pass (the log is on the
// request path when configured).
func appendRecord(dst []byte, rec *RequestRecord) []byte {
	dst = append(dst, `{"time":`...)
	dst = appendJSONString(dst, rec.Time.Format(time.RFC3339Nano))
	dst = append(dst, `,"id":`...)
	dst = appendJSONString(dst, rec.ID)
	dst = append(dst, `,"tenant":`...)
	dst = appendJSONString(dst, rec.Tenant)
	dst = append(dst, `,"doc":`...)
	dst = appendJSONString(dst, rec.Doc)
	dst = append(dst, `,"expr":`...)
	dst = appendJSONString(dst, rec.Expr)
	dst = append(dst, `,"expr_hash":`...)
	dst = appendJSONString(dst, rec.ExprHash)
	dst = append(dst, `,"outcome":`...)
	dst = appendJSONString(dst, rec.Outcome)
	if rec.Reason != "" {
		dst = append(dst, `,"reason":`...)
		dst = appendJSONString(dst, rec.Reason)
	}
	dst = append(dst, `,"status":`...)
	dst = strconv.AppendInt(dst, int64(rec.Status), 10)
	dst = append(dst, `,"queue_wait_ns":`...)
	dst = strconv.AppendInt(dst, rec.QueueWait.Nanoseconds(), 10)
	if rec.TTFB > 0 {
		dst = append(dst, `,"ttfb_ns":`...)
		dst = strconv.AppendInt(dst, rec.TTFB.Nanoseconds(), 10)
	}
	dst = append(dst, `,"total_ns":`...)
	dst = strconv.AppendInt(dst, rec.Total.Nanoseconds(), 10)
	dst = append(dst, `,"results":`...)
	dst = strconv.AppendUint(dst, rec.Results, 10)
	dst = append(dst, `,"bytes":`...)
	dst = strconv.AppendUint(dst, rec.Bytes, 10)
	if rec.TraceID != 0 {
		dst = append(dst, `,"trace_id":`...)
		dst = strconv.AppendUint(dst, rec.TraceID, 10)
	}
	return append(dst, '}', '\n')
}

// accessLog serializes NDJSON record lines onto one writer.
type accessLog struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
}

func (l *accessLog) write(rec *RequestRecord) {
	l.mu.Lock()
	l.buf = appendRecord(l.buf[:0], rec)
	_, _ = l.w.Write(l.buf)
	l.mu.Unlock()
}

// requestRing is a bounded ring of finished requests, most recent
// first on snapshot — the /debug/vamana/requests payload.
type requestRing struct {
	mu   sync.Mutex
	ring []RequestRecord
	n    uint64
}

func newRequestRing(size int) *requestRing {
	return &requestRing{ring: make([]RequestRecord, size)}
}

func (r *requestRing) add(rec RequestRecord) {
	r.mu.Lock()
	r.ring[r.n%uint64(len(r.ring))] = rec
	r.n++
	r.mu.Unlock()
}

func (r *requestRing) snapshot() []RequestRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if n > uint64(len(r.ring)) {
		n = uint64(len(r.ring))
	}
	out := make([]RequestRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.ring[(r.n-1-i)%uint64(len(r.ring))])
	}
	return out
}

// requestObs is the server's request-observability state: ID
// generation, the optional access log, and the recent/slow rings.
type requestObs struct {
	log    *accessLog   // nil: no access log
	recent *requestRing // nil: ring disabled
	slow   *requestRing // nil: slow ring disabled
	slowAt time.Duration

	salt uint64
	seq  atomic.Uint64
}

func newRequestObs(logW io.Writer, ringSize int, slowAt time.Duration) *requestObs {
	o := &requestObs{slowAt: slowAt}
	// One syscall at startup, none per request: IDs are the process salt
	// XOR a Weyl sequence, so concurrent requests get distinct,
	// unpredictable-enough 16-hex-digit IDs without contending on a
	// global rand.
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		o.salt = binary.LittleEndian.Uint64(b[:])
	}
	if logW != nil {
		o.log = &accessLog{w: logW}
	}
	if ringSize > 0 {
		o.recent = newRequestRing(ringSize)
		if slowAt > 0 {
			o.slow = newRequestRing(ringSize)
		}
	}
	return o
}

// requestID resolves the request's wire ID: a valid client-supplied
// X-Vamana-Request wins, then a traceparent trace-id, else a generated
// ID.
func (o *requestObs) requestID(r *http.Request) string {
	if id := r.Header.Get(RequestHeader); id != "" && validRequestID(id) {
		return id
	}
	if id := traceparentID(r.Header.Get(TraceparentHeader)); id != "" {
		return id
	}
	v := o.salt ^ (o.seq.Add(1) * 0x9e3779b97f4a7c15)
	var hex [16]byte
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		hex[i] = digits[v&0xf]
		v >>= 4
	}
	return string(hex[:])
}

// record folds one finished request into the log and rings.
func (o *requestObs) record(rec *RequestRecord) {
	if o.log != nil {
		o.log.write(rec)
	}
	if o.recent != nil {
		o.recent.add(*rec)
	}
	if o.slow != nil && (rec.Total >= o.slowAt || rec.Outcome == OutcomeError) {
		o.slow.add(*rec)
	}
}

// handleRequests serves /debug/vamana/requests: the recent and slow
// request rings, most recent first.
func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var payload struct {
		Recent []RequestRecord `json:"recent"`
		Slow   []RequestRecord `json:"slow"`
	}
	if s.obs != nil {
		if s.obs.recent != nil {
			payload.Recent = s.obs.recent.snapshot()
		}
		if s.obs.slow != nil {
			payload.Slow = s.obs.slow.snapshot()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(payload)
}

// countingWriter wraps the response writer to capture status, first-
// byte time, and body bytes. Headers are committed (and flushed by
// net/http) at WriteHeader, so TTFB is measured there — the later
// bufio-buffered body writes don't skew it.
type countingWriter struct {
	http.ResponseWriter
	start  time.Time
	status int
	ttfb   time.Duration
	bytes  uint64
}

func (c *countingWriter) WriteHeader(code int) {
	if c.status == 0 {
		c.status = code
		c.ttfb = time.Since(c.start)
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.status == 0 {
		c.status = http.StatusOK
		c.ttfb = time.Since(c.start)
	}
	n, err := c.ResponseWriter.Write(p)
	c.bytes += uint64(n)
	return n, err
}

// reqState threads one request's observability through handleQuery.
type reqState struct {
	srv   *Server
	tn    *tenant
	cw    *countingWriter
	start time.Time
	id    string
	doc   string
	expr  string

	queueWait time.Duration
	admitEnd  time.Duration // offset from start: admission decided
	execStart time.Duration // offset from start: engine query issued
	err       error         // terminal error (nil = clean stream)

	rt vamana.RequestTrace
}

// beginRequest opens request observability: resolve the ID and echo it
// on the response. cw is the handler's counting writer (always present;
// byte accounting is not gated on observability).
func (s *Server) beginRequest(cw *countingWriter, r *http.Request, tn *tenant, req queryRequest, start time.Time) *reqState {
	rs := &reqState{
		srv:   s,
		tn:    tn,
		cw:    cw,
		start: start,
		id:    s.obs.requestID(r),
		doc:   req.doc,
		expr:  req.expr,
	}
	rs.rt.ID = rs.id
	rs.rt.Tenant = tn.name
	cw.Header().Set(RequestHeader, rs.id)
	return rs
}

// admitted records the admission decision; the queue-wait response
// header goes out with whatever is written next.
func (rs *reqState) admitted(wait time.Duration, err error) {
	rs.queueWait = wait
	rs.admitEnd = time.Since(rs.start)
	rs.err = err
	rs.cw.Header().Set(QueueWaitHeader, wait.String())
}

// executing marks the hand-off to the engine.
func (rs *reqState) executing() { rs.execStart = time.Since(rs.start) }

// fail records the request's terminal error (first one wins — a stream
// that failed mid-flight keeps the stream error even if cleanup also
// errors).
func (rs *reqState) fail(err error) {
	if rs.err == nil {
		rs.err = err
	}
}

// finish closes out the request: histograms, access log, rings, and —
// when the engine captured a trace for this request — the combined
// serve+engine trace into the flight recorder. Runs deferred, after
// res.Close has fired the engine's finish hook (which fills
// rt.Captured).
func (rs *reqState) finish(results uint64) {
	total := time.Since(rs.start)
	outcome := classifyOutcome(rs.err)
	obs.ServerRequestLatency.Observe(total, rs.tn.name, outcome)
	obs.ServerRequestQueueWait.Observe(rs.queueWait, rs.tn.name, outcome)

	rec := RequestRecord{
		Time:      rs.start,
		ID:        rs.id,
		Tenant:    rs.tn.name,
		Doc:       rs.doc,
		Expr:      rs.expr,
		ExprHash:  exprHash(rs.expr),
		Outcome:   outcome,
		Status:    rs.cw.status,
		QueueWait: rs.queueWait,
		TTFB:      rs.cw.ttfb,
		Total:     total,
		Results:   results,
		Bytes:     rs.cw.bytes,
	}
	var oe *OverloadError
	if errors.As(rs.err, &oe) {
		rec.Reason = string(oe.Reason)
	}
	if rs.rt.Captured != nil {
		rec.TraceID = rs.rt.Captured.ID
		rs.srv.db.RecordTrace(rs.buildTrace(&rec))
	}
	rs.srv.obs.record(&rec)
}

// buildTrace grafts the serve-layer spans above the engine's captured
// span tree, producing one request-rooted trace:
//
//	request
//	├─ admission     arrival → slot grant (attrs: queue wait)
//	├─ prepare       grant → engine hand-off (tenant, doc, quota)
//	├─ <engine root> the operator span tree, shifted onto the
//	│                request timeline
//	├─ ttfb          zero-width marker at the first response byte
//	└─ stream        engine finish → last byte flushed
func (rs *reqState) buildTrace(rec *RequestRecord) *obs.QueryTrace {
	cap := rs.rt.Captured
	totalNS := rec.Total.Nanoseconds()
	// Engine span offsets are relative to the engine query's start;
	// shift them onto the request timeline.
	delta := cap.Start.Sub(rs.start).Nanoseconds()
	if delta < 0 {
		delta = 0
	}
	shiftSpans(cap.Root, delta)
	engineEnd := delta + cap.Total.Nanoseconds()
	if engineEnd > totalNS {
		engineEnd = totalNS
	}

	root := &obs.Span{
		Name: "request", Kind: "serve",
		StartNS: 0, EndNS: totalNS,
		Out: cap.Results,
		Attrs: map[string]string{
			"request": rec.ID,
			"tenant":  rec.Tenant,
			"outcome": rec.Outcome,
			"bytes":   strconv.FormatUint(rec.Bytes, 10),
		},
	}
	root.Children = append(root.Children, &obs.Span{
		Name: "admission", Kind: "serve",
		StartNS: 0, EndNS: rs.admitEnd.Nanoseconds(),
		Attrs: map[string]string{"queue_wait": rs.queueWait.String()},
	})
	root.Children = append(root.Children, &obs.Span{
		Name: "prepare", Kind: "serve",
		StartNS: rs.admitEnd.Nanoseconds(), EndNS: rs.execStart.Nanoseconds(),
	})
	if cap.Root != nil {
		root.Children = append(root.Children, cap.Root)
	}
	if rec.TTFB > 0 {
		root.Children = append(root.Children, &obs.Span{
			Name: "ttfb", Kind: "serve",
			StartNS: rec.TTFB.Nanoseconds(), EndNS: rec.TTFB.Nanoseconds(),
		})
	}
	root.Children = append(root.Children, &obs.Span{
		Name: "stream", Kind: "serve",
		StartNS: engineEnd, EndNS: totalNS,
		Out:   rec.Results,
		Attrs: map[string]string{"bytes": strconv.FormatUint(rec.Bytes, 10)},
	})

	t := *cap
	t.Start = rs.start
	t.Total = rec.Total
	t.Root = root
	return &t
}

// shiftSpans moves a span tree forward by delta nanoseconds.
func shiftSpans(s *obs.Span, delta int64) {
	if s == nil || delta == 0 {
		return
	}
	s.StartNS += delta
	s.EndNS += delta
	for _, c := range s.Children {
		shiftSpans(c, delta)
	}
}
