package serve

// Admission control: the daemon's first line of defense against
// overload. Every query request passes through one admission point that
// enforces a global concurrency ceiling (MaxInflight executing
// requests), a bounded FIFO queue in front of it (QueueDepth waiters,
// each for at most QueueWait), and per-tenant in-flight caps. Everything
// past the ceiling is rejected *immediately* with a typed error carrying
// a retry-after hint — the load-shedding posture a daemon needs so that
// overload degrades into fast, honest rejections instead of unbounded
// queueing and collapsed tail latency.
//
// The state machine has five transitions, each with its own typed
// outcome and wire status (see admission_test.go for the table):
//
//	admit         in-flight < MaxInflight          → run now
//	queue         in-flight full, queue has room   → wait, then admit
//	reject-full   queue at QueueDepth              → OverloadError{queue-full}
//	reject-wait   queued longer than QueueWait     → OverloadError{queue-timeout}
//	reject-tenant tenant at its in-flight cap      → OverloadError{tenant-busy}
//
// plus drain: Drain rejects new arrivals and queued waiters with
// OverloadError{draining} while admitted requests finish undisturbed.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"vamana/internal/obs"
)

// RejectReason classifies an admission rejection.
type RejectReason string

// Rejection reasons, also used as the "reason" field on the wire.
const (
	// RejectQueueFull: the admission queue was already at QueueDepth.
	RejectQueueFull RejectReason = "queue-full"
	// RejectQueueTimeout: the request waited QueueWait without a slot
	// freeing up.
	RejectQueueTimeout RejectReason = "queue-timeout"
	// RejectDraining: the server is draining and accepts no new work.
	RejectDraining RejectReason = "draining"
	// RejectTenantBusy: the request's tenant is at its in-flight cap.
	RejectTenantBusy RejectReason = "tenant-busy"
)

// ErrOverloaded is the sentinel every admission rejection unwraps to;
// the concrete error is always an *OverloadError.
var ErrOverloaded = errors.New("vamanad: overloaded")

// OverloadError is a typed admission rejection: which limit tripped,
// which tenant the request belonged to, and how long the client should
// back off before retrying. On the wire it maps to HTTP 429 (503 for
// draining) with a Retry-After header.
type OverloadError struct {
	Reason     RejectReason
	Tenant     string
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("vamanad: request rejected (%s, tenant %q, retry after %v)",
		e.Reason, e.Tenant, e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// waiter is one queued request. The granter (a releasing request, or
// Drain) sends exactly one value on ready: nil for an admission (the
// in-flight slot and tenant count are already transferred) or a typed
// rejection.
type waiter struct {
	ready chan error
	tn    *tenant
}

// admission is the daemon's admission controller. One instance guards
// one Server; all fields are set at construction and immutable except
// the mutex-guarded state.
type admission struct {
	maxInflight int
	queueDepth  int
	queueWait   time.Duration

	mu       sync.Mutex
	inflight int
	queue    []*waiter
	draining bool
}

func newAdmission(maxInflight, queueDepth int, queueWait time.Duration) *admission {
	return &admission{maxInflight: maxInflight, queueDepth: queueDepth, queueWait: queueWait}
}

// retryAfter is the backoff hint attached to a rejection: long enough
// that an obedient client re-arrives after the queue has had a chance to
// turn over, short enough that capacity freed by a drained queue is not
// left idle.
func (a *admission) retryAfter() time.Duration {
	if a.queueWait > 0 {
		return a.queueWait
	}
	return time.Second
}

// acquire admits the request, queues it, or rejects it with a typed
// error. On nil return the caller holds one in-flight slot (global and
// tenant) and must release(tn) exactly once when the request finishes.
func (a *admission) acquire(ctx context.Context, tn *tenant) error {
	_, err := a.admit(ctx, tn)
	return err
}

// admit is acquire reporting how long the request sat in the admission
// queue (zero when a slot was free on arrival) — the serving layer
// records it per tenant and echoes it on the wire.
func (a *admission) admit(ctx context.Context, tn *tenant) (time.Duration, error) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		obs.ServerRejectedDraining.Inc()
		obs.TenantRejections.Inc(tn.name)
		tn.rejected.Add(1)
		return 0, &OverloadError{Reason: RejectDraining, Tenant: tn.name, RetryAfter: a.retryAfter()}
	}
	if tn.cfg.MaxInflight > 0 && tn.inflight >= tn.cfg.MaxInflight {
		a.mu.Unlock()
		obs.ServerRejectedTenant.Inc()
		obs.TenantRejections.Inc(tn.name)
		tn.rejected.Add(1)
		return 0, &OverloadError{Reason: RejectTenantBusy, Tenant: tn.name, RetryAfter: a.retryAfter()}
	}
	if a.inflight < a.maxInflight {
		a.inflight++
		tn.inflight++
		obs.ServerInflight.Set(int64(a.inflight))
		a.mu.Unlock()
		obs.ServerAdmitted.Inc()
		return 0, nil
	}
	if len(a.queue) >= a.queueDepth {
		a.mu.Unlock()
		obs.ServerRejectedQueueFull.Inc()
		obs.TenantRejections.Inc(tn.name)
		tn.rejected.Add(1)
		return 0, &OverloadError{Reason: RejectQueueFull, Tenant: tn.name, RetryAfter: a.retryAfter()}
	}
	w := &waiter{ready: make(chan error, 1), tn: tn}
	a.queue = append(a.queue, w)
	obs.ServerQueueDepth.Set(int64(len(a.queue)))
	a.mu.Unlock()
	obs.ServerQueuedTotal.Inc()

	start := time.Now()
	timer := time.NewTimer(a.queueWait)
	defer timer.Stop()
	select {
	case err := <-w.ready:
		// Granted a transferred slot, or rejected by Drain / a tenant-cap
		// check at grant time.
		wait := time.Since(start)
		if err == nil {
			obs.ServerQueueWait.Observe(wait)
			obs.ServerAdmitted.Inc()
		}
		return wait, err
	case <-ctx.Done():
		if a.abandon(w) {
			obs.ServerQueueCanceled.Inc()
			return time.Since(start), ctxError(ctx)
		}
		// A grant (or rejection) raced the cancellation; the client is
		// gone either way, so give any granted slot straight back.
		if err := <-w.ready; err == nil {
			a.release(tn)
		}
		obs.ServerQueueCanceled.Inc()
		return time.Since(start), ctxError(ctx)
	case <-timer.C:
		if a.abandon(w) {
			obs.ServerRejectedQueueTimeout.Inc()
			obs.TenantRejections.Inc(tn.name)
			tn.rejected.Add(1)
			return time.Since(start), &OverloadError{Reason: RejectQueueTimeout, Tenant: tn.name, RetryAfter: a.retryAfter()}
		}
		// The grant beat the timer by a hair — the request is still live,
		// so take the slot and run.
		wait := time.Since(start)
		if err := <-w.ready; err != nil {
			return wait, err
		}
		obs.ServerQueueWait.Observe(wait)
		obs.ServerAdmitted.Inc()
		return wait, nil
	}
}

// release returns the request's slot. If an eligible waiter is queued
// the slot transfers directly to it (the global in-flight count never
// dips, so no late arrival can steal ahead of the queue); waiters whose
// tenant has meanwhile reached its cap are rejected on the spot, exactly
// as they would have been at arrival.
func (a *admission) release(tn *tenant) {
	a.mu.Lock()
	tn.inflight--
	for len(a.queue) > 0 {
		w := a.queue[0]
		a.queue = a.queue[1:]
		if w.tn.cfg.MaxInflight > 0 && w.tn.inflight >= w.tn.cfg.MaxInflight {
			obs.ServerRejectedTenant.Inc()
			obs.TenantRejections.Inc(w.tn.name)
			w.tn.rejected.Add(1)
			w.ready <- &OverloadError{Reason: RejectTenantBusy, Tenant: w.tn.name, RetryAfter: a.retryAfter()}
			continue
		}
		w.tn.inflight++
		obs.ServerQueueDepth.Set(int64(len(a.queue)))
		a.mu.Unlock()
		w.ready <- nil
		return
	}
	a.inflight--
	obs.ServerInflight.Set(int64(a.inflight))
	a.mu.Unlock()
}

// abandon removes w from the queue if it is still waiting. A false
// return means a granter already popped it and its ready channel holds
// (or will imminently hold) the decision.
func (a *admission) abandon(w *waiter) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			obs.ServerQueueDepth.Set(int64(len(a.queue)))
			return true
		}
	}
	return false
}

// drain flips the controller into draining mode: every queued waiter is
// rejected with a typed draining error, and every future acquire is
// rejected at the door. Requests already admitted are untouched — their
// release still runs, it just finds no waiters.
func (a *admission) drain() {
	a.mu.Lock()
	a.draining = true
	queued := a.queue
	a.queue = nil
	obs.ServerQueueDepth.Set(0)
	retry := a.retryAfter()
	a.mu.Unlock()
	for _, w := range queued {
		obs.ServerRejectedDraining.Inc()
		obs.TenantRejections.Inc(w.tn.name)
		w.tn.rejected.Add(1)
		w.ready <- &OverloadError{Reason: RejectDraining, Tenant: w.tn.name, RetryAfter: retry}
	}
}

// stats reports the controller's instantaneous state.
func (a *admission) stats() (inflight, queued int, draining bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight, len(a.queue), a.draining
}

// ctxError maps a done context to the governance error taxonomy the
// rest of the engine uses.
func ctxError(ctx context.Context) error {
	if err := ctx.Err(); errors.Is(err, context.DeadlineExceeded) {
		return context.DeadlineExceeded
	}
	return context.Canceled
}
