package serve

// Goroutine-leak detection for the server test battery. Every serving
// test registers checkGoroutines at setup; at teardown it polls until
// the goroutine count returns to the pre-test baseline (in-flight
// handlers, queue waiters, and drain helpers all terminating) and fails
// with a full stack dump if any goroutine outlives the test.

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// checkGoroutines snapshots the goroutine baseline and registers a
// cleanup that fails the test if goroutines created during the test are
// still alive shortly after it finishes.
func checkGoroutines(t *testing.T) {
	t.Helper()
	base := countServeGoroutines()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for time.Now().Before(deadline) {
			if n = countServeGoroutines(); n <= base {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d serve-related goroutines alive, baseline %d\n%s", n, base, buf)
	})
}

// countServeGoroutines counts goroutines whose stacks mention this
// module — counting everything would make the check flaky against
// runtime and testing-framework helpers that come and go on their own
// schedule.
func countServeGoroutines() int {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	n := 0
	for _, g := range strings.Split(string(buf), "\n\n") {
		if strings.Contains(g, "vamana/internal/serve") || strings.Contains(g, "vamana.(") {
			n++
		}
	}
	return n
}
