package serve

// Tenants: the unit of isolation the daemon multiplexes one engine
// across. A tenant carries three kinds of entitlement:
//
//   - resource ceilings (vamana.Limits) clamped over every query's own
//     budgets — a tenant can ask for less than its ceiling, never more;
//   - an in-flight cap, enforced by the admission controller;
//   - a plan-cache quota: how many distinct expressions the tenant may
//     hold in the engine's shared plan cache. Queries beyond the quota
//     still run, they just compile uncached per call — one tenant
//     spraying unique expressions cannot evict the working set the
//     other tenants' serving latency depends on.

import (
	"sync"
	"sync/atomic"
	"time"

	"vamana"
	"vamana/internal/obs"
)

// TenantConfig is one tenant's entitlements. The zero value is fully
// open: no budget ceilings, no in-flight cap, no plan quota.
type TenantConfig struct {
	// Limits caps every query's resource budgets, field-wise (see
	// govern.Limits.Clamp): a request inherits each non-zero ceiling it
	// does not set tighter itself.
	Limits vamana.Limits `json:"limits"`
	// MaxInflight caps the tenant's concurrently executing queries;
	// requests beyond it are rejected with OverloadError{tenant-busy}.
	MaxInflight int `json:"max_inflight"`
	// PlanQuota bounds the distinct expressions this tenant may retain
	// in the shared plan cache; 0 is unlimited.
	PlanQuota int `json:"plan_quota"`
}

// tenant is the registry's live record for one tenant.
type tenant struct {
	name string
	cfg  TenantConfig

	// inflight is guarded by the admission controller's mutex — the cap
	// check and the queue decision must be one atomic step.
	inflight int

	// Cumulative traffic counters. Unlike the obs metrics these are not
	// gated on collection being enabled: Stats and /v1/stats report them
	// as facts about the tenant, and facts must stay truthful with the
	// metrics layer switched off.
	served   atomic.Uint64 // requests admitted and finished (any outcome)
	rejected atomic.Uint64 // admission rejections, all reasons
	bytesOut atomic.Uint64 // response body bytes streamed

	// plans is the tenant's cacheable-expression set, capped at
	// PlanQuota; nil when the quota is unlimited.
	mu    sync.Mutex
	plans map[string]struct{}
}

func newTenant(name string, cfg TenantConfig) *tenant {
	t := &tenant{name: name, cfg: cfg}
	if cfg.PlanQuota > 0 {
		t.plans = make(map[string]struct{}, cfg.PlanQuota)
	}
	return t
}

// allowCached reports whether expr may go through the engine's plan
// cache for this tenant. Expressions already admitted always may
// (repeat queries stay fast); new expressions are admitted until the
// quota is full, after which they compile uncached.
func (t *tenant) allowCached(expr string) bool {
	if t.plans == nil {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.plans[expr]; ok {
		return true
	}
	if len(t.plans) < t.cfg.PlanQuota {
		t.plans[expr] = struct{}{}
		return true
	}
	return false
}

// TenantStats is one tenant's live serving state, reported by
// Server.Stats and /v1/stats: the instantaneous admission picture,
// cumulative traffic since process start, and request-latency quantiles
// aggregated across outcomes (power-of-two upper bounds, zero until the
// tenant has finished a request or metrics collection is off).
type TenantStats struct {
	Inflight    int `json:"inflight"`
	MaxInflight int `json:"max_inflight,omitempty"`
	PlanQuota   int `json:"plan_quota,omitempty"`
	PlansCached int `json:"plans_cached"`

	Served        uint64 `json:"served"`
	Rejected      uint64 `json:"rejected"`
	BytesStreamed uint64 `json:"bytes_streamed"`

	LatencyP50 time.Duration `json:"latency_p50_ns,omitempty"`
	LatencyP95 time.Duration `json:"latency_p95_ns,omitempty"`
	LatencyP99 time.Duration `json:"latency_p99_ns,omitempty"`
}

// registry resolves tenant names to live tenant records. Configured
// tenants are materialized up front; unknown names share the default
// entitlements but are tracked individually, so their metrics and
// in-flight caps stay per-tenant.
type registry struct {
	def TenantConfig

	mu sync.RWMutex
	m  map[string]*tenant
}

func newRegistry(def TenantConfig, tenants map[string]TenantConfig) *registry {
	r := &registry{def: def, m: make(map[string]*tenant, len(tenants)+1)}
	for name, cfg := range tenants {
		r.m[name] = newTenant(name, cfg)
	}
	return r
}

// DefaultTenantName is the tenant requests without an explicit tenant
// identity are attributed to.
const DefaultTenantName = "default"

// get returns the live record for name, creating a default-entitled one
// on first sight.
func (r *registry) get(name string) *tenant {
	if name == "" {
		name = DefaultTenantName
	}
	r.mu.RLock()
	t := r.m[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.m[name]; t == nil {
		t = newTenant(name, r.def)
		r.m[name] = t
	}
	return t
}

// snapshot reports every known tenant's live state.
func (r *registry) snapshot(adm *admission) map[string]TenantStats {
	r.mu.RLock()
	names := make([]*tenant, 0, len(r.m))
	for _, t := range r.m {
		names = append(names, t)
	}
	r.mu.RUnlock()
	// One pass over the latency family gives every tenant's quantiles:
	// cells are (tenant, outcome), merged per tenant across outcomes.
	byTenant := make(map[string]obs.HistogramSnapshot)
	for _, c := range obs.ServerRequestLatency.Cells() {
		s := byTenant[c.Values[0]]
		s.Merge(c.HistogramSnapshot)
		byTenant[c.Values[0]] = s
	}
	out := make(map[string]TenantStats, len(names))
	for _, t := range names {
		t.mu.Lock()
		cached := len(t.plans)
		t.mu.Unlock()
		adm.mu.Lock()
		inflight := t.inflight
		adm.mu.Unlock()
		st := TenantStats{
			Inflight:      inflight,
			MaxInflight:   t.cfg.MaxInflight,
			PlanQuota:     t.cfg.PlanQuota,
			PlansCached:   cached,
			Served:        t.served.Load(),
			Rejected:      t.rejected.Load(),
			BytesStreamed: t.bytesOut.Load(),
		}
		if lat, ok := byTenant[t.name]; ok && lat.Count > 0 {
			st.LatencyP50 = lat.Quantile(0.50)
			st.LatencyP95 = lat.Quantile(0.95)
			st.LatencyP99 = lat.Quantile(0.99)
		}
		out[t.name] = st
	}
	return out
}
