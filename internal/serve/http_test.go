package serve

// Wire-level tests: the admission state machine's transitions observed
// through real HTTP — status codes, Retry-After, JSON error envelopes —
// plus the query endpoint's streaming protocol, tenant budget clamping,
// and plan-cache quotas.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vamana"
)

// newTestDB opens an in-memory DB with one small document.
func newTestDB(t *testing.T) *vamana.DB {
	t.Helper()
	db, err := vamana.Open(vamana.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	var sb strings.Builder
	sb.WriteString("<lib>")
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&sb, "<book id=\"b%d\"><title>Title %d</title></book>", i, i)
	}
	sb.WriteString("</lib>")
	if _, err := db.LoadXMLString("lib", sb.String()); err != nil {
		t.Fatal(err)
	}
	return db
}

// newTestServer builds a Server over a fresh DB and an httptest server
// in front of it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = newTestDB(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// get performs a query request with optional tenant and returns the
// response with its body read.
func get(t *testing.T, ts *httptest.Server, tenant, params string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/query?"+params, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// decodeWireError parses the JSON error envelope.
func decodeWireError(t *testing.T, body string) wireError {
	t.Helper()
	var we wireError
	if err := json.Unmarshal([]byte(body), &we); err != nil {
		t.Fatalf("error body is not a JSON envelope: %v (%s)", err, body)
	}
	return we
}

func TestHTTPQueryStream(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{})

	resp, body := get(t, ts, "", "doc=lib&q=//title")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type = %q", ct)
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) != 21 { // 20 titles + terminal
		t.Fatalf("stream lines = %d, want 21:\n%s", len(lines), body)
	}
	var node struct {
		Key, Kind, Name, Value string
	}
	if err := json.Unmarshal([]byte(lines[0]), &node); err != nil {
		t.Fatalf("node line: %v (%s)", err, lines[0])
	}
	if node.Kind != "element" || node.Name != "title" {
		t.Fatalf("first node = %+v", node)
	}
	var term struct {
		Done  bool   `json:"done"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal([]byte(lines[20]), &term); err != nil || !term.Done || term.Count != 20 {
		t.Fatalf("terminal line = %s (%v)", lines[20], err)
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{})

	for _, tc := range []struct {
		name, params string
		status       int
		code         ErrorCode
	}{
		{"no such document", "doc=nope&q=//a", http.StatusNotFound, CodeNoSuchDocument},
		{"syntax error", "doc=lib&q=//[[[", http.StatusBadRequest, CodeSyntax},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := get(t, ts, "", tc.params)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			if we := decodeWireError(t, body); we.Code != tc.code {
				t.Fatalf("code = %q, want %q", we.Code, tc.code)
			}
		})
	}

	t.Run("missing params", func(t *testing.T) {
		resp, _ := get(t, ts, "", "doc=lib")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	})
	t.Run("bad method", func(t *testing.T) {
		resp, err := ts.Client().Head(ts.URL + "/v1/query?doc=lib&q=//a")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	})
}

// TestHTTPAdmissionOnTheWire drives the queue-full and queue-timeout
// rejections through real HTTP and asserts status, Retry-After, and
// envelope fields.
func TestHTTPAdmissionOnTheWire(t *testing.T) {
	checkGoroutines(t)

	// release blocks admitted requests so the test controls the
	// admission state deterministically.
	release := make(chan struct{})
	admitted := make(chan string, 16)
	var once sync.Once
	defer once.Do(func() { close(release) })

	s, ts := newTestServer(t, Config{
		MaxInflight: 1,
		QueueDepth:  1,
		QueueWait:   100 * time.Millisecond,
		Hooks: Hooks{PostAdmit: func(tenant string) {
			admitted <- tenant
			<-release
		}},
	})

	// Occupy the single in-flight slot.
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := get(t, ts, "", "doc=lib&q=//title")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("held request status = %d", resp.StatusCode)
		}
	}()
	<-admitted

	// Fill the one queue slot with a second request; with the holder
	// pinned it will time out at QueueWait — the queue-timeout case.
	timeoutDone := make(chan wireError, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, body := get(t, ts, "", "doc=lib&q=//title")
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("queued request status = %d, want 429 (%s)", resp.StatusCode, body)
		}
		timeoutDone <- decodeWireError(t, body)
	}()
	waitQueued(t, s.adm, 1)

	t.Run("queue-full is 429 with Retry-After", func(t *testing.T) {
		resp, body := get(t, ts, "", "doc=lib&q=//title")
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status = %d (%s)", resp.StatusCode, body)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
			t.Fatalf("Retry-After = %q", ra)
		}
		we := decodeWireError(t, body)
		if we.Code != CodeOverloaded || we.Reason != string(RejectQueueFull) {
			t.Fatalf("envelope = %+v", we)
		}
		if we.RetryAfterMS <= 0 {
			t.Fatalf("retry_after_ms = %d", we.RetryAfterMS)
		}
	})

	t.Run("queue-timeout is 429", func(t *testing.T) {
		we := <-timeoutDone
		if we.Code != CodeOverloaded || we.Reason != string(RejectQueueTimeout) {
			t.Fatalf("envelope = %+v", we)
		}
	})

	once.Do(func() { close(release) })
}

// TestHTTPTenantBusyOnTheWire asserts a per-tenant budget trip maps to
// 429 with the tenant named in the envelope while other tenants keep
// being served.
func TestHTTPTenantBusyOnTheWire(t *testing.T) {
	checkGoroutines(t)

	release := make(chan struct{})
	admitted := make(chan string, 16)

	_, ts := newTestServer(t, Config{
		MaxInflight: 8,
		Tenants: map[string]TenantConfig{
			"capped": {MaxInflight: 1},
		},
		Hooks: Hooks{PostAdmit: func(tenant string) {
			if tenant == "capped" {
				admitted <- tenant
				<-release
			}
		}},
	})

	var wg sync.WaitGroup
	defer wg.Wait()      // runs second: holder exits once released
	defer close(release) // runs first: unpin the holder
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := get(t, ts, "capped", "doc=lib&q=//title")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("capped holder status = %d", resp.StatusCode)
		}
	}()
	<-admitted

	resp, body := get(t, ts, "capped", "doc=lib&q=//title")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	we := decodeWireError(t, body)
	if we.Code != CodeOverloaded || we.Reason != string(RejectTenantBusy) || we.Tenant != "capped" {
		t.Fatalf("envelope = %+v", we)
	}

	// An uncapped tenant sails through while capped is pinned.
	resp, body = get(t, ts, "other", "doc=lib&q=//title")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant status = %d (%s)", resp.StatusCode, body)
	}
}

func TestHTTPDrainingStatus(t *testing.T) {
	checkGoroutines(t)
	s, ts := newTestServer(t, Config{})

	resp, _ := get(t, ts, "", "doc=lib&q=//title")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain status = %d", resp.StatusCode)
	}
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz pre-drain = %d", hresp.StatusCode)
	}

	s.adm.drain()

	resp, body := get(t, ts, "", "doc=lib&q=//title")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503 (%s)", resp.StatusCode, body)
	}
	we := decodeWireError(t, body)
	if we.Code != CodeDraining || we.Reason != string(RejectDraining) {
		t.Fatalf("envelope = %+v", we)
	}
	hresp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz draining = %d, want 503", hresp.StatusCode)
	}
}

func TestHTTPTenantLimitsClamped(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{
		Tenants: map[string]TenantConfig{
			"small": {Limits: vamana.Limits{MaxResults: 5}},
		},
	})

	// The tenant ceiling truncates the stream via the engine's budget.
	resp, body := get(t, ts, "small", "doc=lib&q=//title")
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	if got := strings.Count(body, `"kind"`); got > 5 {
		t.Fatalf("tenant ceiling leaked: %d result lines (%s)", got, body)
	}
	// An explicit tighter request budget still applies.
	resp, body = get(t, ts, "small", "doc=lib&q=//title&max_results=2")
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	if got := strings.Count(body, `"kind"`); got > 2 {
		t.Fatalf("request budget ignored: %d result lines", got)
	}
	// The default tenant is unclamped.
	_, body = get(t, ts, "", "doc=lib&q=//title")
	if got := strings.Count(body, `"kind"`); got != 20 {
		t.Fatalf("default tenant rows = %d, want 20", got)
	}
}

func TestHTTPPlanQuota(t *testing.T) {
	checkGoroutines(t)
	db := newTestDB(t)
	s, ts := newTestServer(t, Config{
		DB: db,
		Tenants: map[string]TenantConfig{
			"quota": {PlanQuota: 2},
		},
	})

	exprs := []string{"//title", "//book", "//book/title", "//lib"}
	for _, e := range exprs {
		resp, body := get(t, ts, "quota", "doc=lib&q="+e)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d (%s)", e, resp.StatusCode, body)
		}
	}
	st := s.Stats()
	ten, ok := st.Tenants["quota"]
	if !ok {
		t.Fatalf("tenant missing from stats: %+v", st)
	}
	if ten.PlansCached != 2 {
		t.Fatalf("plans cached = %d, want 2", ten.PlansCached)
	}
}

func TestHTTPStatsAndDocs(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/v1/docs")
	if err != nil {
		t.Fatal(err)
	}
	var docs []string
	if err := json.NewDecoder(resp.Body).Decode(&docs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(docs) != 1 || docs[0] != "lib" {
		t.Fatalf("docs = %v", docs)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.MaxInflight != 64 || st.Draining {
		t.Fatalf("stats = %+v", st)
	}

	// Debug endpoints are mounted.
	resp, err = ts.Client().Get(ts.URL + "/debug/vamana/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug metrics status = %d", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
}
