package serve

// Request-observability tests: wire request IDs (generated, adopted,
// echoed), the access log and request rings, per-tenant cumulative
// counters and latency quantiles in Stats, and the combined
// serve+engine span tree in the flight recorder.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"vamana"
)

var generatedIDPattern = regexp.MustCompile(`^[0-9a-f]{16}$`)

// syncBuffer is a goroutine-safe bytes.Buffer: rs.finish writes the
// access log after the response is complete, so the test must not race
// the handler's deferred write.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitFor polls cond until true or the deadline — request records land
// in deferred handlers after the response body is flushed.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRequestIDValidation(t *testing.T) {
	for id, want := range map[string]bool{
		"abc-123_x.y":              true,
		"a":                        true,
		strings.Repeat("a", 64):    true,
		"":                         false,
		strings.Repeat("a", 65):    false,
		"has space":                false,
		"quote\"inside":            false,
		"non-ascii-\xc3\xa9":       false,
		"newline\ninjection":       false,
		"semi;colon":               false,
		"0123456789abcdefABCDEF-.": true,
	} {
		if got := validRequestID(id); got != want {
			t.Errorf("validRequestID(%q) = %v, want %v", id, got, want)
		}
	}
}

func TestTraceparentID(t *testing.T) {
	for tp, want := range map[string]string{
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01": "4bf92f3577b34da6a3ce929d0e0e4736",
		// All-zero trace-id is invalid per the W3C spec.
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01": "",
		// Uppercase hex is invalid (spec requires lowercase).
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01": "",
		"garbage":                      "",
		"":                             "",
		"00-short-00f067aa0ba902b7-01": "",
	} {
		if got := traceparentID(tp); got != want {
			t.Errorf("traceparentID(%q) = %q, want %q", tp, got, want)
		}
	}
}

// TestRequestIDPropagation drives the three ID sources through real
// HTTP: client-supplied X-Vamana-Request wins, then the traceparent
// trace-id, else a generated 16-hex ID; invalid client IDs are replaced
// and the resolved ID is always echoed.
func TestRequestIDPropagation(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{})

	do := func(hdr map[string]string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/query?doc=lib&q=//title", nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	t.Run("generated", func(t *testing.T) {
		resp := do(nil)
		id := resp.Header.Get(RequestHeader)
		if !generatedIDPattern.MatchString(id) {
			t.Fatalf("generated ID = %q, want 16 hex digits", id)
		}
		// Distinct per request.
		if id2 := do(nil).Header.Get(RequestHeader); id2 == id {
			t.Fatalf("two requests got the same generated ID %q", id)
		}
	})
	t.Run("client-supplied", func(t *testing.T) {
		resp := do(map[string]string{RequestHeader: "client-req-42"})
		if got := resp.Header.Get(RequestHeader); got != "client-req-42" {
			t.Fatalf("echoed ID = %q, want the client's", got)
		}
	})
	t.Run("invalid client ID replaced", func(t *testing.T) {
		resp := do(map[string]string{RequestHeader: "has spaces!"})
		got := resp.Header.Get(RequestHeader)
		if !generatedIDPattern.MatchString(got) {
			t.Fatalf("invalid client ID should be replaced with a generated one, got %q", got)
		}
	})
	t.Run("traceparent adopted", func(t *testing.T) {
		resp := do(map[string]string{
			TraceparentHeader: "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		})
		if got := resp.Header.Get(RequestHeader); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Fatalf("traceparent trace-id not adopted: %q", got)
		}
	})
	t.Run("explicit header beats traceparent", func(t *testing.T) {
		resp := do(map[string]string{
			RequestHeader:     "explicit-wins",
			TraceparentHeader: "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		})
		if got := resp.Header.Get(RequestHeader); got != "explicit-wins" {
			t.Fatalf("ID = %q, want the explicit header", got)
		}
	})
	t.Run("queue wait header present", func(t *testing.T) {
		resp := do(nil)
		qw := resp.Header.Get(QueueWaitHeader)
		if qw == "" {
			t.Fatal("no X-Vamana-Queue-Wait header")
		}
		if _, err := time.ParseDuration(qw); err != nil {
			t.Fatalf("queue wait %q is not a duration: %v", qw, err)
		}
	})
}

// TestAccessLogAndRequestRings checks one request's record is visible,
// with the same wire ID, in the NDJSON access log, the recent ring, and
// (below the 1ns threshold everything is slow) the slow ring.
func TestAccessLogAndRequestRings(t *testing.T) {
	checkGoroutines(t)
	var logBuf syncBuffer
	_, ts := newTestServer(t, Config{
		AccessLog:            &logBuf,
		SlowRequestThreshold: time.Nanosecond,
	})

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/query?doc=lib&q=//title", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestHeader, "ring-test-1")
	req.Header.Set(TenantHeader, "ringer")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	waitFor(t, "access log line", func() bool {
		return strings.Contains(logBuf.String(), "ring-test-1")
	})
	line := strings.TrimSpace(logBuf.String())
	var rec RequestRecord
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access log line is not JSON: %v\n%s", err, line)
	}
	if rec.ID != "ring-test-1" || rec.Tenant != "ringer" || rec.Doc != "lib" ||
		rec.Expr != "//title" || rec.Outcome != OutcomeOK || rec.Status != http.StatusOK {
		t.Fatalf("access log record = %+v", rec)
	}
	if rec.Results != 20 || rec.Bytes == 0 || rec.Total <= 0 || rec.ExprHash == "" {
		t.Fatalf("access log counters = %+v", rec)
	}
	if rec.TTFB <= 0 || rec.TTFB > rec.Total {
		t.Fatalf("ttfb = %v outside (0, total=%v]", rec.TTFB, rec.Total)
	}

	// The same record, most recent first, in both debug rings.
	dresp, err := ts.Client().Get(ts.URL + "/debug/vamana/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var payload struct {
		Recent []RequestRecord `json:"recent"`
		Slow   []RequestRecord `json:"slow"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Recent) == 0 || payload.Recent[0].ID != "ring-test-1" {
		t.Fatalf("recent ring = %+v", payload.Recent)
	}
	if len(payload.Slow) == 0 || payload.Slow[0].ID != "ring-test-1" {
		t.Fatalf("slow ring (1ns threshold) = %+v", payload.Slow)
	}
}

// TestAccessLogRejectionRecord: a rejected request still produces a
// complete record, with the typed rejection reason and outcome.
func TestAccessLogRejectionRecord(t *testing.T) {
	checkGoroutines(t)
	var logBuf syncBuffer
	s, ts := newTestServer(t, Config{AccessLog: &logBuf})
	s.adm.drain()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/query?doc=lib&q=//title", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestHeader, "rejected-req-1")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}

	waitFor(t, "rejection log line", func() bool {
		return strings.Contains(logBuf.String(), "rejected-req-1")
	})
	var rec RequestRecord
	if err := json.Unmarshal([]byte(strings.TrimSpace(logBuf.String())), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != OutcomeRejected || rec.Reason != string(RejectDraining) ||
		rec.Status != http.StatusServiceUnavailable {
		t.Fatalf("rejection record = %+v", rec)
	}
}

// TestTenantCumulativeStats: served/rejected/bytes-streamed counters and
// latency quantiles per tenant in Stats and on /v1/stats.
func TestTenantCumulativeStats(t *testing.T) {
	checkGoroutines(t)
	s, ts := newTestServer(t, Config{})

	for i := 0; i < 3; i++ {
		resp, body := get(t, ts, "cumulative", "doc=lib&q=//title")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d (%s)", resp.StatusCode, body)
		}
	}

	// Counters are bumped in deferred handlers after the body is
	// flushed; poll until they land.
	waitFor(t, "served counter", func() bool {
		return s.Stats().Tenants["cumulative"].Served == 3
	})
	st := s.Stats().Tenants["cumulative"]
	if st.Rejected != 0 {
		t.Fatalf("rejected = %d, want 0", st.Rejected)
	}
	if st.BytesStreamed == 0 {
		t.Fatalf("bytes streamed = 0 after 3 streamed responses")
	}
	if st.LatencyP50 <= 0 || st.LatencyP95 < st.LatencyP50 || st.LatencyP99 < st.LatencyP95 {
		t.Fatalf("latency quantiles not monotone: p50=%v p95=%v p99=%v",
			st.LatencyP50, st.LatencyP95, st.LatencyP99)
	}

	// A rejection (drain) increments rejected but not served.
	s.adm.drain()
	resp, _ := get(t, ts, "cumulative", "doc=lib&q=//title")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	waitFor(t, "rejected counter", func() bool {
		return s.Stats().Tenants["cumulative"].Rejected == 1
	})
	if got := s.Stats().Tenants["cumulative"].Served; got != 3 {
		t.Fatalf("served after rejection = %d, want 3", got)
	}

	// The same numbers over the wire.
	hresp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var wire Stats
	if err := json.NewDecoder(hresp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	wt, ok := wire.Tenants["cumulative"]
	if !ok || wt.Served != 3 || wt.Rejected != 1 || wt.BytesStreamed != st.BytesStreamed {
		t.Fatalf("/v1/stats tenant = %+v (ok=%v)", wt, ok)
	}
}

// TestRequestTraceNesting is the acceptance check: one traced request
// lands in the flight recorder as a single combined trace — serve-layer
// spans (admission, prepare, ttfb, stream) nested above the engine's
// operator span tree, stamped with the wire request ID and tenant, and
// exportable as one Chrome-trace timeline.
func TestRequestTraceNesting(t *testing.T) {
	checkGoroutines(t)
	db, err := vamana.Open(vamana.Options{FlightRecorderSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.LoadXMLString("lib", "<lib><a><b/></a><a><b/></a></lib>"); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{DB: db})

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/query?doc=lib&q=//b", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestHeader, "trace-nest-1")
	req.Header.Set(TenantHeader, "tracer")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	// The combined trace is recorded by a deferred handler after the
	// response completes.
	var tr *vamana.QueryTrace
	waitFor(t, "combined trace in the flight recorder", func() bool {
		for _, c := range db.RecentTraces() {
			if c.Request == "trace-nest-1" {
				tr = c
				return true
			}
		}
		return false
	})

	if tr.Tenant != "tracer" {
		t.Fatalf("trace tenant = %q", tr.Tenant)
	}
	root := tr.Root
	if root == nil || root.Name != "request" || root.Kind != "serve" {
		t.Fatalf("trace root = %+v, want the serve-layer request span", root)
	}
	if root.Attrs["request"] != "trace-nest-1" || root.Attrs["tenant"] != "tracer" ||
		root.Attrs["outcome"] != OutcomeOK {
		t.Fatalf("request span attrs = %v", root.Attrs)
	}

	// The children: admission, prepare, the engine operator tree, the
	// ttfb marker, and the stream drain — all inside [0, root.EndNS].
	names := make(map[string]bool)
	var engineRoot bool
	for _, c := range root.Children {
		names[c.Name] = true
		if c.Kind != "serve" {
			engineRoot = true // the grafted operator span tree
			if len(c.Children) == 0 && c.Name == "" {
				t.Fatalf("engine child looks empty: %+v", c)
			}
		}
		if c.StartNS < 0 || c.EndNS > root.EndNS || c.StartNS > c.EndNS {
			t.Fatalf("child span %q [%d,%d] outside request [0,%d]",
				c.Name, c.StartNS, c.EndNS, root.EndNS)
		}
	}
	for _, want := range []string{"admission", "prepare", "stream", "ttfb"} {
		if !names[want] {
			t.Fatalf("missing serve span %q in %v", want, names)
		}
	}
	if !engineRoot {
		t.Fatalf("engine operator span tree not grafted under the request span: %v", names)
	}

	// The whole thing exports as one Chrome trace with the wire ID.
	var chrome bytes.Buffer
	if err := vamana.WriteChromeTrace(&chrome, []*vamana.QueryTrace{tr}); err != nil {
		t.Fatal(err)
	}
	out := chrome.String()
	for _, want := range []string{"trace-nest-1", `"request"`, `"admission"`, `"stream"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome export missing %s:\n%s", want, out)
		}
	}
}

// TestDisableRequestObs: with request observability off the wire is
// clean — no ID/queue-wait headers, empty rings — but the cumulative
// tenant counters stay truthful.
func TestDisableRequestObs(t *testing.T) {
	checkGoroutines(t)
	s, ts := newTestServer(t, Config{DisableRequestObs: true})

	resp, body := get(t, ts, "plain", "doc=lib&q=//title")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	if id := resp.Header.Get(RequestHeader); id != "" {
		t.Fatalf("request ID header present with obs disabled: %q", id)
	}
	if qw := resp.Header.Get(QueueWaitHeader); qw != "" {
		t.Fatalf("queue wait header present with obs disabled: %q", qw)
	}

	dresp, err := ts.Client().Get(ts.URL + "/debug/vamana/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var payload struct {
		Recent []RequestRecord `json:"recent"`
		Slow   []RequestRecord `json:"slow"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Recent) != 0 || len(payload.Slow) != 0 {
		t.Fatalf("rings populated with obs disabled: %+v", payload)
	}

	waitFor(t, "served counter with obs disabled", func() bool {
		st := s.Stats().Tenants["plain"]
		return st.Served == 1 && st.BytesStreamed > 0
	})
}
