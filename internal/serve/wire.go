package serve

// The wire protocol. Queries stream newline-delimited JSON
// (application/x-ndjson): one object per result node, then exactly one
// terminal object that either confirms completion with the delivered
// count or carries the query's typed error. The terminal line exists
// because HTTP commits the status code before the first result — a
// budget trip halfway through a stream can only be reported in-band.
//
//	{"key":"a.b.c","kind":"element","name":"address","value":""}
//	...
//	{"done":true,"count":412}
//
// or, after a mid-stream governance trip:
//
//	{"error":"vamana: query deadline exceeded","code":"deadline-exceeded"}
//
// Errors before the first result use plain HTTP statuses with a JSON
// body; admission rejections additionally set Retry-After. Encoding is
// deterministic (fixed field order, stdlib JSON string escaping), which
// is what lets the server test battery assert byte-identical streams
// against in-process execution.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"vamana"
)

// ErrorCode classifies a query failure on the wire; clients switch on it
// instead of parsing error strings.
type ErrorCode string

// Wire error codes.
const (
	CodeCanceled         ErrorCode = "canceled"
	CodeDeadlineExceeded ErrorCode = "deadline-exceeded"
	CodeBudgetExceeded   ErrorCode = "budget-exceeded"
	CodeNoSuchDocument   ErrorCode = "no-such-document"
	CodeSyntax           ErrorCode = "syntax"
	CodeOverloaded       ErrorCode = "overloaded"
	CodeDraining         ErrorCode = "draining"
	CodeInternal         ErrorCode = "internal"
)

// errorCode maps an engine error to its wire code.
func errorCode(err error) ErrorCode {
	var se *vamana.SyntaxError
	var oe *OverloadError
	switch {
	case errors.Is(err, vamana.ErrCanceled) || errors.Is(err, context.Canceled):
		return CodeCanceled
	case errors.Is(err, vamana.ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded):
		return CodeDeadlineExceeded
	case errors.Is(err, vamana.ErrBudgetExceeded):
		return CodeBudgetExceeded
	case errors.Is(err, vamana.ErrNoSuchDocument):
		return CodeNoSuchDocument
	case errors.As(err, &se):
		return CodeSyntax
	case errors.As(err, &oe):
		if oe.Reason == RejectDraining {
			return CodeDraining
		}
		return CodeOverloaded
	default:
		return CodeInternal
	}
}

// httpStatus maps an error that occurred before any result streamed to
// its HTTP status.
func httpStatus(err error) int {
	var oe *OverloadError
	switch {
	case errors.As(err, &oe):
		if oe.Reason == RejectDraining {
			return http.StatusServiceUnavailable
		}
		return http.StatusTooManyRequests
	case errors.Is(err, vamana.ErrNoSuchDocument):
		return http.StatusNotFound
	case errorCode(err) == CodeSyntax:
		return http.StatusBadRequest
	case errors.Is(err, vamana.ErrBudgetExceeded),
		errors.Is(err, vamana.ErrDeadlineExceeded),
		errors.Is(err, context.DeadlineExceeded):
		// Tripped before the first result (e.g. a pages-read budget hit
		// during the first batch): the client's request was too hungry,
		// not the server's fault.
		return http.StatusUnprocessableEntity
	case errors.Is(err, vamana.ErrCanceled), errors.Is(err, context.Canceled):
		// Client went away; 499 in the nginx tradition.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// wireError is the JSON error envelope, used both as a pre-stream body
// and as the in-band terminal line.
type wireError struct {
	Error        string    `json:"error"`
	Code         ErrorCode `json:"code"`
	Reason       string    `json:"reason,omitempty"`
	Tenant       string    `json:"tenant,omitempty"`
	RetryAfterMS int64     `json:"retry_after_ms,omitempty"`
}

// writeError writes a pre-stream failure: HTTP status, Retry-After for
// overload rejections, JSON envelope.
func writeError(w http.ResponseWriter, err error) {
	env := wireError{Error: err.Error(), Code: errorCode(err)}
	var oe *OverloadError
	if errors.As(err, &oe) {
		env.Reason = string(oe.Reason)
		env.Tenant = oe.Tenant
		env.RetryAfterMS = oe.RetryAfter.Milliseconds()
		// Retry-After is whole seconds; round up so "after 250ms" never
		// becomes "now".
		secs := int64(math.Ceil(oe.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(httpStatus(err))
	enc := json.NewEncoder(w)
	_ = enc.Encode(env)
}

// appendJSONString appends s as a JSON string literal: quote, backslash
// and control characters escaped, everything else passed through. This
// replaces json.Marshal on the per-node hot path — no HTML escaping, no
// allocation, one pass.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' || c == '\\' || c < 0x20 {
			dst = append(dst, s[start:i]...)
			switch c {
			case '"', '\\':
				dst = append(dst, '\\', c)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				const hex = "0123456789abcdef"
				dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
			}
			start = i + 1
		}
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendNode appends one result node as a single NDJSON line. Fields
// are emitted in fixed order with deterministic escaping, so identical
// result streams produce identical bytes.
func appendNode(dst []byte, n vamana.Node) []byte {
	dst = append(dst, `{"key":`...)
	dst = appendJSONString(dst, n.Key)
	dst = append(dst, `,"kind":`...)
	dst = appendJSONString(dst, n.Kind.String())
	dst = append(dst, `,"name":`...)
	dst = appendJSONString(dst, n.Name)
	dst = append(dst, `,"value":`...)
	dst = appendJSONString(dst, n.Value)
	return append(dst, '}', '\n')
}

// encodeNode writes one result node as a single NDJSON line (the
// allocation-reusing form is appendNode; this wrapper serves the
// expected-bytes helpers).
func encodeNode(w io.Writer, n vamana.Node) error {
	_, err := w.Write(appendNode(nil, n))
	return err
}

// encodeDone writes the success terminal line.
func encodeDone(w io.Writer, count uint64) error {
	_, err := fmt.Fprintf(w, `{"done":true,"count":%d}`+"\n", count)
	return err
}

// encodeStreamError writes the in-band terminal error line.
func encodeStreamError(w io.Writer, qerr error) error {
	msg, _ := json.Marshal(qerr.Error())
	_, err := fmt.Fprintf(w, `{"error":%s,"code":%q}`+"\n", msg, errorCode(qerr))
	return err
}
