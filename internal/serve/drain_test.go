package serve

// Graceful-drain tests: SIGTERM arriving mid-stream must let every
// in-flight result stream finish byte-complete, flip /healthz to 503,
// reject new connections with a typed draining error, and return within
// the drain deadline — losing zero in-flight queries. A separate test
// crashes the store *during* the drain window and verifies the pager's
// double-write journal recovers the last committed state on restart.

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"vamana"
	"vamana/internal/pager/faultfs"
)

func TestDrainSIGTERMFinishesInflightStreams(t *testing.T) {
	checkGoroutines(t)
	db := newTestDB(t)
	staticDoc, err := db.Document("lib")
	if err != nil {
		t.Fatal(err)
	}
	want := expectedStream(t, db, staticDoc, "//title")

	// The hook pins admitted requests so the drain provably starts while
	// they are mid-flight.
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		DB:           db,
		DrainTimeout: 10 * time.Second,
		Hooks: Hooks{PostAdmit: func(string) {
			started <- struct{}{}
			<-release
		}},
	})

	// Three in-flight streams.
	const inflight = 3
	bodies := make(chan []byte, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := get(t, ts, "", "doc=lib&q=//title")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("in-flight stream status = %d", resp.StatusCode)
			}
			bodies <- []byte(body)
		}()
	}
	for i := 0; i < inflight; i++ {
		<-started
	}

	// Deliver a real SIGTERM to this process; the server's signal
	// handler must start the drain.
	drained := s.HandleSignals(syscall.SIGTERM)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Draining state must become observable while the streams are still
	// pinned in flight.
	waitDraining(t, s)

	// New work is rejected with the typed draining error while the
	// in-flight streams are still running.
	resp, body := get(t, ts, "", "doc=lib&q=//title")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new request during drain: status = %d (%s)", resp.StatusCode, body)
	}
	if we := decodeWireError(t, body); we.Code != CodeDraining {
		t.Fatalf("drain envelope = %+v", we)
	}

	// Unpin: the in-flight streams finish and must be byte-complete.
	close(release)
	wg.Wait()
	for i := 0; i < inflight; i++ {
		if got := <-bodies; !bytes.Equal(got, want) {
			t.Fatalf("drained stream truncated: got %d bytes, want %d", len(got), len(want))
		}
	}

	// The drain completes well within its deadline.
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not complete after in-flight streams finished")
	}

	if inflightN, queued, draining := s.adm.stats(); inflightN != 0 || queued != 0 || !draining {
		t.Fatalf("post-drain stats = %d/%d/%v", inflightN, queued, draining)
	}
}

func TestDrainDeadlineExpires(t *testing.T) {
	checkGoroutines(t)
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s, ts := newTestServer(t, Config{
		Hooks: Hooks{PostAdmit: func(string) {
			started <- struct{}{}
			<-release
		}},
	})

	var wg sync.WaitGroup
	defer wg.Wait()
	defer close(release)
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, ts, "", "doc=lib&q=//title")
	}()
	<-started

	// A drain bounded tighter than the stuck request must give up with
	// the context's error rather than hang.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("expired drain err = %v, want context.DeadlineExceeded", err)
	}
}

// TestCrashDuringDrainRecovers kills the store mid-drain — after a
// transaction committed but with a stream still in flight — and
// verifies the journal brings the reopened store back to exactly the
// last committed version.
func TestCrashDuringDrainRecovers(t *testing.T) {
	checkGoroutines(t)
	backend := faultfs.New()
	db, err := vamana.Open(vamana.Options{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			db.Close()
		}
	}()
	doc, err := db.LoadXMLString("d", "<log><entry>base</entry></log>")
	if err != nil {
		t.Fatal(err)
	}

	// One committed transaction: this is the state recovery must restore.
	if err := db.Update(func(tx *vamana.Txn) error {
		res, err := db.Query(doc, "/log")
		if err != nil {
			return err
		}
		keys, err := res.Keys()
		if err != nil {
			return err
		}
		k, err := tx.InsertElement(doc, keys[0], -1, "entry")
		if err != nil {
			return err
		}
		_, err = tx.InsertText(doc, k, -1, "committed")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		DB: db,
		Hooks: Hooks{PostAdmit: func(string) {
			started <- struct{}{}
			<-release
		}},
	})

	// Pin a stream in flight, then start draining.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, ts, "", "doc=d&q=//entry")
	}()
	<-started
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainDone <- s.Drain(ctx)
	}()
	waitDraining(t, s)

	// Crash while the drain is waiting on the in-flight stream: all
	// unsynced writes are lost, exactly like a machine losing power
	// before a clean shutdown.
	backend.Crash()
	crashImage := backend.Snapshot()

	// Let the test's server machinery wind down (the in-flight request
	// finishes against the in-memory state; its result no longer
	// matters — the durability claim is about the store).
	close(release)
	wg.Wait()
	<-drainDone

	// Restart from the crash image: journal recovery must yield the
	// committed two-entry document.
	db2, err := vamana.Open(vamana.Options{Backend: faultfs.FromBytes(crashImage)})
	if err != nil {
		t.Fatalf("reopen after crash-during-drain: %v", err)
	}
	defer db2.Close()
	doc2, err := db2.Document("d")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := doc2.CountName("entry"); err != nil || n != 2 {
		t.Fatalf("recovered entries = %d, %v; want 2", n, err)
	}
	var sb strings.Builder
	if err := doc2.WriteXML("a", &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "committed") {
		t.Fatalf("recovered document lost committed text: %s", sb.String())
	}
}

// waitDraining blocks until the server reports draining.
func waitDraining(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, draining := s.adm.stats(); draining {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("server never entered draining state")
}
