// Package serve is the VAMANA multi-tenant serving daemon: one engine
// (one *vamana.DB) multiplexed across many tenants over HTTP, with
// admission control in front of execution and a graceful drain path
// behind it.
//
// The layering is deliberate: the engine already enforces *per-query*
// governance (timeouts, result/page/record budgets) and *per-store*
// consistency (MVCC snapshots, crash-safe commits). What a daemon adds
// is the *cross-query* discipline — how many queries run at once, which
// tenant they bill to, what happens to the excess, and how the process
// stops without severing in-flight result streams. All of that lives
// here; the engine below is unchanged.
//
// Request path for /v1/query:
//
//	resolve tenant → admission (admit / queue / typed reject)
//	  → clamp request budgets to the tenant's ceilings
//	  → plan-cache quota check (over quota ⇒ compile uncached)
//	  → execute against the engine's shared MVCC snapshot
//	  → stream results as NDJSON with an in-band terminal line
//
// Drain (SIGTERM or Server.Drain) flips /healthz to 503, rejects new and
// queued requests with OverloadError{draining}, and waits for admitted
// result streams to finish before returning.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"time"

	"vamana"
	"vamana/internal/obs"
)

// Config configures a Server. DB is required; every other field has a
// serving-grade default.
type Config struct {
	// DB is the engine the daemon serves. The Server does not own it:
	// Close and Drain leave the DB open for the caller.
	DB *vamana.DB

	// MaxInflight is the global cap on concurrently executing queries.
	// Default 64.
	MaxInflight int
	// QueueDepth is the admission queue bound; requests arriving with
	// the queue full are rejected immediately. Default 256.
	QueueDepth int
	// QueueWait is the longest a request may sit queued before a
	// queue-timeout rejection. Default 1s.
	QueueWait time.Duration
	// MaxConns caps concurrently accepted TCP connections (0 =
	// unlimited). Accepts beyond the cap block in the listener until a
	// connection closes, bounding per-connection memory before HTTP
	// parsing even starts.
	MaxConns int
	// DrainTimeout bounds Drain: in-flight streams get this long to
	// finish before the HTTP server is torn down anyway. Default 30s.
	DrainTimeout time.Duration

	// DefaultTenant is the entitlement set for requests whose tenant has
	// no explicit entry in Tenants (including the anonymous "default"
	// tenant). The zero value is fully open.
	DefaultTenant TenantConfig
	// Tenants maps tenant names to explicit entitlements.
	Tenants map[string]TenantConfig

	// AccessLog receives one structured NDJSON line per finished
	// /v1/query request (id, tenant, expr hash, outcome, queue wait,
	// TTFB, total, bytes). nil disables the log; rings and metrics are
	// unaffected.
	AccessLog io.Writer
	// RequestRingSize bounds the recent-requests ring served at
	// /debug/vamana/requests (the slow ring has the same capacity).
	// Default 256; negative disables the rings.
	RequestRingSize int
	// SlowRequestThreshold routes requests at or above this end-to-end
	// duration (and every errored request) into the slow-request ring.
	// Default 500ms; negative disables the slow ring.
	SlowRequestThreshold time.Duration
	// DisableRequestObs turns off per-request observability entirely —
	// request IDs, SLO histograms, access log, request rings, combined
	// serve+engine traces. The cumulative tenant counters in TenantStats
	// keep counting (they are accounting, not observability).
	DisableRequestObs bool

	// Hooks expose deterministic test points; nil in production.
	Hooks Hooks
}

// Hooks are test seams. Each is called synchronously on the request
// goroutine when non-nil.
type Hooks struct {
	// PostAdmit runs after admission succeeds and before execution,
	// while the request holds its in-flight slot. Tests block here to
	// pin the admission state machine in a known configuration.
	PostAdmit func(tenant string)
}

// Server is the serving daemon. Create with New, expose with Handler
// (for tests and embedding) or ListenAndServe, stop with Drain.
type Server struct {
	cfg Config
	db  *vamana.DB
	adm *admission
	reg *registry
	obs *requestObs // nil when Config.DisableRequestObs
	mux *http.ServeMux

	// wg tracks in-flight query handlers so Handler-only deployments
	// (httptest, embedding) can drain without an http.Server.
	wg sync.WaitGroup

	mu   sync.Mutex
	http *http.Server
	ln   net.Listener
}

// New builds a Server over cfg.DB.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("serve: Config.DB is required")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.RequestRingSize == 0 {
		cfg.RequestRingSize = 256
	}
	if cfg.SlowRequestThreshold == 0 {
		cfg.SlowRequestThreshold = 500 * time.Millisecond
	}
	s := &Server{
		cfg: cfg,
		db:  cfg.DB,
		adm: newAdmission(cfg.MaxInflight, cfg.QueueDepth, cfg.QueueWait),
		reg: newRegistry(cfg.DefaultTenant, cfg.Tenants),
	}
	if !cfg.DisableRequestObs {
		s.obs = newRequestObs(cfg.AccessLog, cfg.RequestRingSize, cfg.SlowRequestThreshold)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/docs", s.handleDocs)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", cfg.DB.MetricsHandler())
	mux.HandleFunc("/debug/vamana/requests", s.handleRequests)
	mux.Handle("/debug/vamana/", cfg.DB.DebugHandler("/debug/vamana"))
	s.mux = mux
	return s, nil
}

// Handler returns the daemon's HTTP handler, for httptest servers and
// embedding into a larger mux.
func (s *Server) Handler() http.Handler { return s.mux }

// TenantHeader is the request header carrying the tenant identity.
// Absent or empty means DefaultTenantName.
const TenantHeader = "X-Vamana-Tenant"

// ListenAndServe listens on addr and serves until Drain or a listener
// error. It returns http.ErrServerClosed after a completed Drain, like
// net/http.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on ln (applying Config.MaxConns) until Drain or a
// listener error.
func (s *Server) Serve(ln net.Listener) error {
	if s.cfg.MaxConns > 0 {
		ln = &limitListener{Listener: ln, sem: make(chan struct{}, s.cfg.MaxConns)}
	}
	hs := &http.Server{Handler: s.mux}
	s.mu.Lock()
	s.http = hs
	s.ln = ln
	s.mu.Unlock()
	// A drain that raced server startup saw http==nil and could not
	// shut it down; honor it now instead of serving forever.
	if _, _, draining := s.adm.stats(); draining {
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		_ = hs.Shutdown(ctx)
		return http.ErrServerClosed
	}
	return hs.Serve(ln)
}

// Addr returns the listening address, or "" before Serve.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Drain gracefully stops the daemon: new and queued requests are
// rejected with OverloadError{draining} (503 on the wire, /healthz goes
// unhealthy), while every admitted request keeps its connection and
// finishes its result stream. Drain returns when all in-flight work is
// done or ctx expires, whichever is first.
func (s *Server) Drain(ctx context.Context) error {
	s.adm.drain()

	// Wait for in-flight handlers regardless of how requests arrived
	// (owned http.Server or external Handler).
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}

	s.mu.Lock()
	hs := s.http
	s.mu.Unlock()
	if hs != nil {
		// Shutdown closes the listener and waits for idle connections;
		// in-flight ones already finished above (or ctx expired and we
		// propagate its error).
		if serr := hs.Shutdown(ctx); err == nil {
			err = serr
		}
	}
	return err
}

// HandleSignals arranges for the given signals (SIGTERM/SIGINT
// typically) to trigger a Drain bounded by Config.DrainTimeout. The
// returned channel receives the Drain result once a signal has been
// handled.
func (s *Server) HandleSignals(sig ...os.Signal) <-chan error {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sig...)
	done := make(chan error, 1)
	go func() {
		<-ch
		signal.Stop(ch)
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		done <- s.Drain(ctx)
	}()
	return done
}

// Stats is the daemon's instantaneous serving state.
type Stats struct {
	Inflight    int                    `json:"inflight"`
	Queued      int                    `json:"queued"`
	Draining    bool                   `json:"draining"`
	MaxInflight int                    `json:"max_inflight"`
	QueueDepth  int                    `json:"queue_depth"`
	Tenants     map[string]TenantStats `json:"tenants"`
}

// Stats reports the daemon's current admission and tenant state.
func (s *Server) Stats() Stats {
	inflight, queued, draining := s.adm.stats()
	return Stats{
		Inflight:    inflight,
		Queued:      queued,
		Draining:    draining,
		MaxInflight: s.cfg.MaxInflight,
		QueueDepth:  s.cfg.QueueDepth,
		Tenants:     s.reg.snapshot(s.adm),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if _, _, draining := s.adm.stats(); draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.db.Documents())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.Stats())
}

// queryRequest is the parsed form of one /v1/query call.
type queryRequest struct {
	doc     string
	expr    string
	ordered bool
	limits  vamana.Limits
}

// parseQuery reads request parameters from the URL query (GET) or form
// body (POST). Durations are Go duration strings; counts are base-10.
func parseQuery(r *http.Request) (queryRequest, error) {
	var q queryRequest
	q.doc = r.FormValue("doc")
	q.expr = r.FormValue("q")
	if q.expr == "" {
		q.expr = r.FormValue("query")
	}
	if q.doc == "" || q.expr == "" {
		return q, errors.New("serve: parameters doc and q are required")
	}
	q.ordered = r.FormValue("ordered") == "1" || r.FormValue("ordered") == "true"
	if v := r.FormValue("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return q, fmt.Errorf("serve: bad timeout %q", v)
		}
		q.limits.Timeout = d
	}
	for _, p := range []struct {
		name string
		dst  *uint64
	}{
		{"max_results", &q.limits.MaxResults},
		{"max_pages", &q.limits.MaxPagesRead},
		{"max_records", &q.limits.MaxDecodedRecords},
	} {
		if v := r.FormValue(p.name); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return q, fmt.Errorf("serve: bad %s %q", p.name, v)
			}
			*p.dst = n
		}
	}
	return q, nil
}

// handleQuery is the daemon's main endpoint: admission, tenancy,
// execution, NDJSON streaming — with one request ID threading the
// serve-layer spans, the engine trace, the SLO histograms, and the
// access log together (see obsv.go).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	req, err := parseQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tn := s.reg.get(r.Header.Get(TenantHeader))

	s.wg.Add(1)
	defer s.wg.Done()

	// Byte accounting stays on unconditionally (TenantStats must be
	// truthful); everything else hangs off rs, nil when request
	// observability is disabled. rs.finish is deferred first so it runs
	// last — after res.Close has fired the engine's finish hook and
	// filled the captured trace.
	cw := &countingWriter{ResponseWriter: w, start: start}
	w = cw
	var count uint64
	var rs *reqState
	if s.obs != nil {
		rs = s.beginRequest(cw, r, tn, req, start)
		defer func() { rs.finish(count) }()
	}

	queueWait, err := s.adm.admit(r.Context(), tn)
	if rs != nil {
		rs.admitted(queueWait, err)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	defer s.adm.release(tn)
	defer func() {
		tn.served.Add(1)
		tn.bytesOut.Add(cw.bytes)
	}()
	if s.cfg.Hooks.PostAdmit != nil {
		s.cfg.Hooks.PostAdmit(tn.name)
	}
	defer obs.TenantQueries.Inc(tn.name)

	// The tenant's ceilings clamp whatever the request asked for: a
	// request can always tighten its own budgets, never exceed the
	// entitlement.
	limits := req.limits.Clamp(tn.cfg.Limits)
	opts := []vamana.QueryOption{vamana.WithLimits(limits)}
	if req.ordered {
		opts = append(opts, vamana.Ordered())
	}

	doc, err := s.db.Document(req.doc)
	if err != nil {
		if rs != nil {
			rs.fail(err)
		}
		writeError(w, err)
		return
	}

	ctx := r.Context()
	if rs != nil {
		// A traced engine run joins the request: it stamps the wire ID
		// into its trace and hands the export back for span grafting.
		ctx = vamana.WithRequestTrace(ctx, &rs.rt)
		rs.executing()
	}
	var res *vamana.Results
	if tn.allowCached(req.expr) {
		res, err = s.db.QueryContext(ctx, doc, req.expr, opts...)
	} else {
		// Plan quota exhausted: compile a throwaway plan so this tenant
		// cannot churn the shared plan cache.
		obs.TenantUncached.Inc(tn.name)
		var q *vamana.Query
		q, err = s.db.Prepare(req.expr, vamana.WithDocument(doc), vamana.WithoutCache())
		if err == nil {
			res, err = q.Run(ctx, doc, opts...)
		}
	}
	if err != nil {
		if rs != nil {
			rs.fail(err)
		}
		writeError(w, err)
		return
	}
	defer res.Close()

	// Stream. The 200 status is committed with the first payload line;
	// failures before that still get a real HTTP status. Lines go
	// through one buffered writer so a large result set is framed in
	// few big chunks instead of one chunk (and potentially one syscall)
	// per node.
	var bw *bufio.Writer
	startStream := func() {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		bw = bufio.NewWriterSize(w, 32<<10)
	}
	var line []byte // reused per-node scratch
	for res.Next() {
		n, nerr := res.Node()
		if nerr != nil {
			if rs != nil {
				rs.fail(nerr)
			}
			if bw == nil {
				writeError(w, nerr)
				return
			}
			_ = encodeStreamError(bw, nerr)
			_ = bw.Flush()
			obs.TenantResults.Add(tn.name, count)
			return
		}
		if bw == nil {
			startStream()
		}
		line = appendNode(line[:0], n)
		if _, werr := bw.Write(line); werr != nil {
			// Client went away mid-stream; nothing left to tell it.
			if rs != nil {
				rs.fail(context.Canceled)
			}
			obs.TenantResults.Add(tn.name, count)
			return
		}
		count++
	}
	obs.TenantResults.Add(tn.name, count)
	if qerr := res.Err(); qerr != nil {
		if rs != nil {
			rs.fail(qerr)
		}
		if bw == nil {
			writeError(w, qerr)
			return
		}
		_ = encodeStreamError(bw, qerr)
		_ = bw.Flush()
		return
	}
	if bw == nil {
		startStream()
	}
	_ = encodeDone(bw, count)
	_ = bw.Flush()
}

// limitListener bounds concurrently accepted connections: Accept blocks
// once MaxConns connections are open and resumes as they close.
type limitListener struct {
	net.Listener
	sem chan struct{}
}

func (l *limitListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	return &limitConn{Conn: c, release: func() { <-l.sem }}, nil
}

// limitConn releases its listener slot exactly once on Close.
type limitConn struct {
	net.Conn
	once    sync.Once
	release func()
}

func (c *limitConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(c.release)
	return err
}
