package serve

// White-box table tests for the admission state machine: every
// transition in the admission.go table — admit, queue-then-admit,
// reject-at-depth, queue-timeout, per-tenant budget trips at arrival
// and at grant time, cancellation while queued, and drain-while-queued
// — with the typed error asserted each time. The HTTP mapping of the
// same transitions is covered in http_test.go.

import (
	"context"
	"errors"
	"testing"
	"time"

	"vamana"
)

// limits builds a Limits with the two budgets these tests exercise.
func limits(results, pages uint64) vamana.Limits {
	return vamana.Limits{MaxResults: results, MaxPagesRead: pages}
}

// admitted holds a slot acquired in the test body; release via fn.
type admitted struct {
	tn *tenant
}

func mustAcquire(t *testing.T, a *admission, tn *tenant) admitted {
	t.Helper()
	if err := a.acquire(context.Background(), tn); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	return admitted{tn: tn}
}

// wantReject asserts err is an *OverloadError with the given reason that
// unwraps to ErrOverloaded.
func wantReject(t *testing.T, err error, reason RejectReason, tenant string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want %s rejection, got admit", reason)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("rejection does not unwrap to ErrOverloaded: %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("rejection is not *OverloadError: %T %v", err, err)
	}
	if oe.Reason != reason {
		t.Fatalf("rejection reason = %s, want %s (%v)", oe.Reason, reason, err)
	}
	if tenant != "" && oe.Tenant != tenant {
		t.Fatalf("rejection tenant = %q, want %q", oe.Tenant, tenant)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("rejection retry-after = %v, want > 0", oe.RetryAfter)
	}
}

func TestAdmissionTransitions(t *testing.T) {
	ctx := context.Background()

	t.Run("admit", func(t *testing.T) {
		checkGoroutines(t)
		a := newAdmission(2, 2, 50*time.Millisecond)
		tn := newTenant("t", TenantConfig{})
		g1 := mustAcquire(t, a, tn)
		g2 := mustAcquire(t, a, tn)
		inflight, queued, draining := a.stats()
		if inflight != 2 || queued != 0 || draining {
			t.Fatalf("stats = %d/%d/%v, want 2/0/false", inflight, queued, draining)
		}
		a.release(g1.tn)
		a.release(g2.tn)
		if inflight, _, _ := a.stats(); inflight != 0 {
			t.Fatalf("inflight after release = %d", inflight)
		}
	})

	t.Run("queue then admit FIFO", func(t *testing.T) {
		checkGoroutines(t)
		a := newAdmission(1, 4, time.Second)
		tn := newTenant("t", TenantConfig{})
		g := mustAcquire(t, a, tn)

		// Two queued requests; the slot must transfer in arrival order.
		order := make(chan int, 2)
		ready := make(chan struct{}, 2)
		for i := 1; i <= 2; i++ {
			go func(i int) {
				// Serialize arrival so FIFO order is deterministic.
				<-ready
				if err := a.acquire(ctx, tn); err != nil {
					t.Errorf("queued acquire %d: %v", i, err)
					order <- -i
					return
				}
				order <- i
			}(i)
			ready <- struct{}{}
			waitQueued(t, a, i)
		}

		a.release(g.tn) // transfers to waiter 1
		if got := <-order; got != 1 {
			t.Fatalf("first admitted waiter = %d, want 1", got)
		}
		a.release(tn) // transfers to waiter 2
		if got := <-order; got != 2 {
			t.Fatalf("second admitted waiter = %d, want 2", got)
		}
		a.release(tn)
	})

	t.Run("reject at queue depth", func(t *testing.T) {
		checkGoroutines(t)
		a := newAdmission(1, 1, time.Second)
		tn := newTenant("t", TenantConfig{})
		g := mustAcquire(t, a, tn)
		done := make(chan error, 1)
		go func() { done <- a.acquire(ctx, tn) }()
		waitQueued(t, a, 1)

		// Queue full: immediate typed rejection.
		wantReject(t, a.acquire(ctx, tn), RejectQueueFull, "t")

		a.release(g.tn)
		if err := <-done; err != nil {
			t.Fatalf("queued request: %v", err)
		}
		a.release(tn)
	})

	t.Run("queue timeout", func(t *testing.T) {
		checkGoroutines(t)
		a := newAdmission(1, 4, 20*time.Millisecond)
		tn := newTenant("t", TenantConfig{})
		g := mustAcquire(t, a, tn)
		err := a.acquire(ctx, tn) // queues, then times out
		wantReject(t, err, RejectQueueTimeout, "t")
		a.release(g.tn)
	})

	t.Run("tenant budget trip at arrival", func(t *testing.T) {
		checkGoroutines(t)
		a := newAdmission(8, 8, time.Second)
		tn := newTenant("capped", TenantConfig{MaxInflight: 1})
		g := mustAcquire(t, a, tn)
		wantReject(t, a.acquire(ctx, tn), RejectTenantBusy, "capped")
		// Another tenant is unaffected.
		other := newTenant("other", TenantConfig{})
		g2 := mustAcquire(t, a, other)
		a.release(g.tn)
		a.release(g2.tn)
	})

	t.Run("tenant budget trip at grant time", func(t *testing.T) {
		checkGoroutines(t)
		// A waiter passes the arrival-time tenant check but its tenant
		// reaches the cap while it is queued; the grant must reject it
		// exactly as arrival would have.
		a := newAdmission(1, 4, time.Second)
		capped := newTenant("capped", TenantConfig{MaxInflight: 1})
		other := newTenant("other", TenantConfig{})
		gOther := mustAcquire(t, a, other) // fills the single global slot

		done := make(chan error, 1)
		go func() { done <- a.acquire(ctx, capped) }() // queues: tenant idle, global full
		waitQueued(t, a, 1)

		// capped reaches its cap through a slot handed over directly.
		a.mu.Lock()
		capped.inflight = 1 // simulate a concurrently admitted capped request
		a.mu.Unlock()

		a.release(gOther.tn) // grant reaches the waiter, finds its tenant at cap
		wantReject(t, <-done, RejectTenantBusy, "capped")

		// The slot fell back to the free pool (no waiters left).
		if inflight, queued, _ := a.stats(); inflight != 0 || queued != 0 {
			t.Fatalf("stats after grant-time reject = %d/%d, want 0/0", inflight, queued)
		}
		a.mu.Lock()
		capped.inflight = 0
		a.mu.Unlock()
	})

	t.Run("cancel while queued", func(t *testing.T) {
		checkGoroutines(t)
		a := newAdmission(1, 4, time.Second)
		tn := newTenant("t", TenantConfig{})
		g := mustAcquire(t, a, tn)
		cctx, cancel := context.WithCancel(ctx)
		done := make(chan error, 1)
		go func() { done <- a.acquire(cctx, tn) }()
		waitQueued(t, a, 1)
		cancel()
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled waiter err = %v, want context.Canceled", err)
		}
		a.release(g.tn)
		if inflight, queued, _ := a.stats(); inflight != 0 || queued != 0 {
			t.Fatalf("stats after cancel = %d/%d, want 0/0", inflight, queued)
		}
	})

	t.Run("drain while queued", func(t *testing.T) {
		checkGoroutines(t)
		a := newAdmission(1, 4, time.Minute)
		tn := newTenant("t", TenantConfig{})
		g := mustAcquire(t, a, tn)
		done := make(chan error, 1)
		go func() { done <- a.acquire(ctx, tn) }()
		waitQueued(t, a, 1)

		a.drain()
		wantReject(t, <-done, RejectDraining, "t")
		// New arrivals rejected at the door.
		wantReject(t, a.acquire(ctx, tn), RejectDraining, "t")
		// The admitted request is untouched and its release is clean.
		if inflight, _, draining := a.stats(); inflight != 1 || !draining {
			t.Fatalf("stats during drain = %d inflight, draining=%v", inflight, draining)
		}
		a.release(g.tn)
		if inflight, _, _ := a.stats(); inflight != 0 {
			t.Fatalf("inflight after drained release = %d", inflight)
		}
	})
}

// waitQueued blocks until the admission queue holds n waiters.
func waitQueued(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, queued, _ := a.stats(); queued >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d waiters", n)
}

func TestTenantPlanQuota(t *testing.T) {
	tn := newTenant("q", TenantConfig{PlanQuota: 2})
	if !tn.allowCached("//a") || !tn.allowCached("//b") {
		t.Fatal("first two distinct expressions must be cacheable")
	}
	if tn.allowCached("//c") {
		t.Fatal("third distinct expression exceeded the quota but was allowed")
	}
	// Repeats of admitted expressions stay cacheable; the rejected one
	// stays rejected.
	if !tn.allowCached("//a") || !tn.allowCached("//b") || tn.allowCached("//c") {
		t.Fatal("quota membership not sticky")
	}
	// Unlimited tenant.
	open := newTenant("open", TenantConfig{})
	for _, e := range []string{"//a", "//b", "//c", "//d"} {
		if !open.allowCached(e) {
			t.Fatalf("unlimited tenant rejected %s", e)
		}
	}
}

func TestLimitsClampInConfig(t *testing.T) {
	// The serving path clamps request limits against the tenant ceiling;
	// spot-check the integration here (full matrix in internal/govern).
	tn := newTenant("t", TenantConfig{Limits: limits(100, 0)})
	got := limits(0, 0).Clamp(tn.cfg.Limits)
	if got.MaxResults != 100 {
		t.Fatalf("unset request budget did not inherit ceiling: %+v", got)
	}
	got = limits(10, 0).Clamp(tn.cfg.Limits)
	if got.MaxResults != 10 {
		t.Fatalf("tighter request budget was loosened: %+v", got)
	}
	got = limits(500, 0).Clamp(tn.cfg.Limits)
	if got.MaxResults != 100 {
		t.Fatalf("over-ceiling request budget not clamped: %+v", got)
	}
}
