package serve

// The server-grade battery: many tenants hammering the daemon over real
// HTTP while a writer commits transactions underneath. Run under -race
// by scripts/check.sh. Asserts three properties end to end:
//
//   - every response is either a complete, byte-identical copy of the
//     in-process execution of the same query, or a typed admission
//     rejection — never a torn stream, never a hang;
//   - per-tenant accounting holds (rejections land on the tenant that
//     overflowed, not on its neighbors);
//   - no goroutine outlives the battery (checkGoroutines).
//
// Byte-identity is decidable because the writer only mutates a scratch
// document: queries against the static document must see exactly the
// same bytes whether or not a transaction is mid-commit, which is the
// MVCC auto-snapshot guarantee carried through the serving layer.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vamana"
)

// expectedStream renders the exact NDJSON bytes the daemon must produce
// for expr, using the same encoder the handler uses.
func expectedStream(t *testing.T, db *vamana.DB, doc *vamana.Document, expr string) []byte {
	t.Helper()
	res, err := db.QueryContext(context.Background(), doc, expr)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	var buf bytes.Buffer
	var count uint64
	for res.Next() {
		n, err := res.Node()
		if err != nil {
			t.Fatal(err)
		}
		if err := encodeNode(&buf, n); err != nil {
			t.Fatal(err)
		}
		count++
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if err := encodeDone(&buf, count); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestServerBatteryConcurrentTenantsVsWriter(t *testing.T) {
	if testing.Short() {
		t.Skip("battery test skipped in -short mode")
	}
	checkGoroutines(t)

	db := newTestDB(t)
	scratch, err := db.LoadXMLString("scratch", "<pad><row/></pad>")
	if err != nil {
		t.Fatal(err)
	}
	staticDoc, err := db.Document("lib")
	if err != nil {
		t.Fatal(err)
	}

	exprs := []string{
		"//title",
		"//book",
		"/lib/book/title",
		"//book[title='Title 3']",
	}
	want := make(map[string][]byte, len(exprs))
	for _, e := range exprs {
		want[e] = expectedStream(t, db, staticDoc, e)
	}

	s, ts := newTestServer(t, Config{
		DB:          db,
		MaxInflight: 8,
		QueueDepth:  64,
		QueueWait:   5 * time.Second,
		Tenants: map[string]TenantConfig{
			"capped": {MaxInflight: 2},
		},
	})

	// Committing writer: insert and delete rows in the scratch document
	// so every commit churns pages, versions, and the shared snapshot
	// without changing any query's correct answer.
	stopWriter := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		var keys []string
		var commits int
		for {
			select {
			case <-stopWriter:
				writerDone <- nil
				return
			default:
			}
			err := db.Update(func(tx *vamana.Txn) error {
				root, err := queryRoot(db, scratch)
				if err != nil {
					return err
				}
				k, err := tx.InsertElement(scratch, root, -1, "row")
				if err != nil {
					return err
				}
				keys = append(keys, k)
				if len(keys) > 8 {
					if err := tx.DeleteSubtree(scratch, keys[0]); err != nil {
						return err
					}
					keys = keys[1:]
				}
				return nil
			})
			if err != nil {
				writerDone <- fmt.Errorf("writer commit %d: %w", commits, err)
				return
			}
			commits++
		}
	}()

	const (
		tenants   = 4
		perTenant = 3
		rounds    = 25
	)
	var rejected, served atomic.Int64
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		tenantName := fmt.Sprintf("tenant-%d", ti)
		if ti == 0 {
			tenantName = "capped"
		}
		for c := 0; c < perTenant; c++ {
			wg.Add(1)
			go func(tenant string, worker int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					expr := exprs[(worker+r)%len(exprs)]
					resp, body := get(t, ts, tenant,
						url.Values{"doc": {"lib"}, "q": {expr}}.Encode())
					switch resp.StatusCode {
					case http.StatusOK:
						if !bytes.Equal([]byte(body), want[expr]) {
							t.Errorf("tenant %s round %d: stream for %s diverged from in-process bytes\nwant %d bytes, got %d:\n%.200s",
								tenant, r, expr, len(want[expr]), len(body), body)
							return
						}
						served.Add(1)
					case http.StatusTooManyRequests:
						we := decodeWireError(t, body)
						if we.Tenant != tenant {
							t.Errorf("rejection billed to %q, request was %q", we.Tenant, tenant)
						}
						rejected.Add(1)
					default:
						t.Errorf("tenant %s: unexpected status %d (%s)", tenant, resp.StatusCode, body)
						return
					}
				}
			}(tenantName, ti*perTenant+c)
		}
	}
	wg.Wait()
	close(stopWriter)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}

	if served.Load() == 0 {
		t.Fatal("battery served zero successful streams")
	}
	t.Logf("battery: %d streams byte-verified, %d typed rejections", served.Load(), rejected.Load())

	// Nothing may be left in flight or queued.
	if inflight, queued, _ := s.adm.stats(); inflight != 0 || queued != 0 {
		t.Fatalf("post-battery admission state = %d inflight, %d queued", inflight, queued)
	}

	// The scratch document is still consistent after the writer's churn.
	res, err := db.Query(scratch, "//row")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("scratch document lost its rows")
	}
}

// queryRoot returns the FLEX key of the scratch document's root element.
func queryRoot(db *vamana.DB, doc *vamana.Document) (string, error) {
	res, err := db.Query(doc, "/pad")
	if err != nil {
		return "", err
	}
	keys, err := res.Keys()
	if err != nil {
		return "", err
	}
	if len(keys) != 1 {
		return "", fmt.Errorf("scratch root: %d matches", len(keys))
	}
	return keys[0], nil
}

// TestServerStreamsSeeCommittedStateOnly pins one committed version's
// bytes: a stream started before a commit must not mix versions, and a
// stream started after must see the new version. Uses the scratch-free
// static document plus a mutable one.
func TestServerStreamsSeeCommittedStateOnly(t *testing.T) {
	checkGoroutines(t)
	db := newTestDB(t)
	mut, err := db.LoadXMLString("mut", "<m><v>one</v></m>")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{DB: db})

	before, _ := get(t, ts, "", "doc=mut&q=//v")
	if before.StatusCode != http.StatusOK {
		t.Fatalf("pre-commit status = %d", before.StatusCode)
	}

	if err := db.Update(func(tx *vamana.Txn) error {
		res, err := db.Query(mut, "/m")
		if err != nil {
			return err
		}
		keys, err := res.Keys()
		if err != nil {
			return err
		}
		k, err := tx.InsertElement(mut, keys[0], -1, "v")
		if err != nil {
			return err
		}
		if _, err := tx.InsertText(mut, k, -1, "two"); err != nil {
			return err
		}
		// Mid-transaction, the wire must still serve the committed
		// single-v version.
		resp, body := get(t, ts, "", "doc=mut&q=//v")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("mid-txn status = %d", resp.StatusCode)
		}
		if got := strings.Count(body, `"kind"`); got != 1 {
			t.Errorf("mid-txn stream rows = %d, want 1 (dirty read on the wire)\n%s", got, body)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	resp, body := get(t, ts, "", "doc=mut&q=//v")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-commit status = %d", resp.StatusCode)
	}
	if got := strings.Count(body, `"kind"`); got != 2 {
		t.Fatalf("post-commit stream rows = %d, want 2\n%s", got, body)
	}
}
