package plan

import (
	"strings"
	"testing"

	"vamana/internal/mass"
	"vamana/internal/xpath"
)

func build(t *testing.T, expr string) *Plan {
	t.Helper()
	ast, err := xpath.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildPaperQ2Shape(t *testing.T) {
	// Fig. 4b: //name[text()='Yung Flach']/following-sibling::emailaddress.
	p := build(t, "//name[ text() = 'Yung Flach' ]/following-sibling::emailaddress")
	email, ok := p.Root.Context.(*Step)
	if !ok || email.Axis != mass.AxisFollowingSibling || email.Test.Name != "emailaddress" {
		t.Fatalf("top = %v", p.Root.Context)
	}
	name, ok := email.Context.(*Step)
	if !ok || name.Test.Name != "name" {
		t.Fatalf("context = %v", email.Context)
	}
	// The // collapses into a single descendant operator at build time,
	// matching the paper's "φ //::name" single-operator default plans.
	if name.Axis != mass.AxisDescendant || name.Context != nil {
		t.Fatalf("name step = %s (ctx %v)", name.Label(), name.Context)
	}
	if len(name.Preds) != 1 {
		t.Fatalf("preds = %d", len(name.Preds))
	}
	beta, ok := name.Preds[0].(*BinaryPred)
	if !ok || beta.Cond != CondEQ {
		t.Fatalf("pred = %v", name.Preds[0])
	}
	if _, ok := beta.Left.(*Step); !ok {
		t.Fatalf("β left = %T", beta.Left)
	}
	lit, ok := beta.Right.(*Literal)
	if !ok || lit.Value != "Yung Flach" {
		t.Fatalf("β right = %v", beta.Right)
	}
}

func TestBuildPredicateKinds(t *testing.T) {
	p := build(t, "//a[b][text()='x'][2][position()=last()][b and c]")
	top := p.Root.Context.(*Step)
	if len(top.Preds) != 5 {
		t.Fatalf("preds = %d", len(top.Preds))
	}
	if _, ok := top.Preds[0].(*Exist); !ok {
		t.Errorf("pred0 = %T, want Exist", top.Preds[0])
	}
	if b, ok := top.Preds[1].(*BinaryPred); !ok || b.Cond != CondEQ {
		t.Errorf("pred1 = %v, want β(EQ)", top.Preds[1])
	}
	if _, ok := top.Preds[2].(*ExprPred); !ok {
		t.Errorf("pred2 = %T, want ExprPred (positional)", top.Preds[2])
	}
	if _, ok := top.Preds[3].(*ExprPred); !ok {
		t.Errorf("pred3 = %T, want ExprPred", top.Preds[3])
	}
	if b, ok := top.Preds[4].(*BinaryPred); !ok || b.Cond != CondAND {
		t.Errorf("pred4 = %v, want β(AND)", top.Preds[4])
	}
}

func TestPositionalBlocksSlashCollapse(t *testing.T) {
	// //x[2] must keep the descendant-or-self::node() helper (grouping).
	p := build(t, "//x[2]")
	x := p.Root.Context.(*Step)
	if x.Axis != mass.AxisChild {
		t.Fatalf("step axis = %v, want child (no collapse)", x.Axis)
	}
	dos, ok := x.Context.(*Step)
	if !ok || dos.Axis != mass.AxisDescendantOrSelf {
		t.Fatalf("context = %v", x.Context)
	}
	// ...while the order-free version collapses.
	p2 := build(t, "//x[y]")
	x2 := p2.Root.Context.(*Step)
	if x2.Axis != mass.AxisDescendant || x2.Context != nil {
		t.Fatalf("order-free // did not collapse: %s", p2)
	}
}

func TestBuildUnion(t *testing.T) {
	p := build(t, "//a | //b")
	j, ok := p.Root.Context.(*Join)
	if !ok || j.Cond != JoinUnion {
		t.Fatalf("top = %v", p.Root.Context)
	}
}

func TestBuildRejectsNonNodeSet(t *testing.T) {
	for _, expr := range []string{"1 + 2", "'lit'", "count(//a)"} {
		ast, err := xpath.Parse(expr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Build(ast); err == nil {
			t.Errorf("Build(%q) succeeded", expr)
		}
	}
}

func TestAssignIDsPreorder(t *testing.T) {
	p := build(t, "//a[b]/c")
	ids := map[int]bool{}
	for _, op := range p.Operators() {
		id := op.(interface{ base() *Base }).base().ID
		if id <= 0 || ids[id] {
			t.Fatalf("bad or duplicate id %d", id)
		}
		ids[id] = true
	}
	if p.Root.ID != 1 {
		t.Fatalf("root id = %d", p.Root.ID)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := build(t, "//a[b='x']/c")
	q := p.Clone()
	// Mutate the clone thoroughly.
	for _, op := range q.Operators() {
		if s, ok := op.(*Step); ok {
			s.Test.Name = "mutated"
			s.Preds = nil
		}
	}
	// The original is untouched.
	for _, op := range p.Operators() {
		if s, ok := op.(*Step); ok && s.Test.Name == "mutated" {
			t.Fatal("Clone shares step state with the original")
		}
	}
	top := p.Root.Context.(*Step)
	inner := top.Context.(*Step)
	if len(inner.Preds) == 0 {
		t.Fatal("Clone shares predicate slices with the original")
	}
}

func TestContextPath(t *testing.T) {
	p := build(t, "/a/b/c")
	cp := p.ContextPath()
	if len(cp) != 3 {
		t.Fatalf("context path = %d ops", len(cp))
	}
	names := make([]string, len(cp))
	for i, op := range cp {
		names[i] = op.(*Step).Test.Name
	}
	if names[0] != "c" || names[1] != "b" || names[2] != "a" {
		t.Fatalf("context path order = %v", names)
	}
}

func TestStringRendering(t *testing.T) {
	p := build(t, "//name[text()='x']")
	out := p.String()
	for _, want := range []string{"R1", "descendant::name", "β", "L", `"x"`} {
		if !strings.Contains(out, want) {
			t.Errorf("plan rendering missing %q:\n%s", want, out)
		}
	}
}

func TestBuildPathHelper(t *testing.T) {
	ast, _ := xpath.Parse("a/b")
	lp := ast.(*xpath.LocationPath)
	op, err := BuildPath(lp)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*Step); !ok {
		t.Fatalf("BuildPath = %T", op)
	}
}
