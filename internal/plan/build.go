package plan

import (
	"fmt"

	"vamana/internal/mass"
	"vamana/internal/xpath"
)

// Build translates a parsed XPath expression into the default VAMANA query
// plan: "each node of the parse tree [is replaced] with its equivalent
// VAMANA algebra operator" (paper §V-A). No optimization is applied.
//
// The top-level expression must denote a node set: a location path or a
// union of location paths.
func Build(expr xpath.Expr) (*Plan, error) {
	b := &builder{}
	var ctxOp Op
	var err error
	switch e := expr.(type) {
	case *xpath.LocationPath:
		ctxOp, err = b.path(e)
	case *xpath.Binary:
		if e.Op == xpath.OpUnion {
			ctxOp, err = b.union(e)
		} else {
			err = fmt.Errorf("plan: top-level expression %q is not a node set", expr)
		}
	default:
		err = fmt.Errorf("plan: top-level expression %q is not a node set", expr)
	}
	if err != nil {
		return nil, err
	}
	p := &Plan{Root: &Root{Context: ctxOp, Distinct: true}}
	p.AssignIDs()
	p.nextID = len(p.Operators())
	return p, nil
}

// BuildPath translates a location path into a bare operator chain (no Root
// on top). The execution engine uses it to evaluate paths nested inside
// general predicate expressions.
func BuildPath(lp *xpath.LocationPath) (Op, error) {
	return (&builder{}).path(lp)
}

type builder struct{}

// path builds the context chain for a location path: the first location
// step becomes the leaf operator, each later step takes the previous one
// as its context child (paper Fig. 4).
func (b *builder) path(lp *xpath.LocationPath) (Op, error) {
	if len(lp.Steps) == 0 {
		// Bare "/": the document root itself; a self::node() step on the
		// engine-provided root context.
		return &Step{Axis: mass.AxisSelf, Test: mass.NodeTest{Type: mass.TestNode}}, nil
	}
	var cur Op
	for _, st := range lp.Steps {
		sop := &Step{Axis: st.Axis, Test: st.Test, Context: cur}
		for _, pred := range st.Predicates {
			pop, err := b.predicate(pred)
			if err != nil {
				return nil, err
			}
			sop.Preds = append(sop.Preds, pop)
		}
		// The compiler maps each parse-tree location step to exactly one
		// operator; the abbreviated // syntax becomes a single
		// descendant-flavored step (the paper's default plans show
		// "φ //::name" as one operator, Fig. 4), so fold the
		// descendant-or-self::node() helper into the step it prefixes.
		// Positional predicates pin the step to per-parent candidate
		// grouping (//x[2] != /descendant::x[2]), so the fold requires
		// every predicate to be order-free (ξ / β only).
		if prev, ok := cur.(*Step); ok &&
			prev.Axis == mass.AxisDescendantOrSelf && prev.Test.Type == mass.TestNode &&
			len(prev.Preds) == 0 && predsOrderFree(sop.Preds) {
			switch st.Axis {
			case mass.AxisChild, mass.AxisDescendant:
				sop.Axis = mass.AxisDescendant
				sop.Context = prev.Context
			case mass.AxisDescendantOrSelf:
				sop.Context = prev.Context
			}
		}
		cur = sop
	}
	return cur, nil
}

func (b *builder) union(e *xpath.Binary) (Op, error) {
	build := func(side xpath.Expr) (Op, error) {
		switch s := side.(type) {
		case *xpath.LocationPath:
			return b.path(s)
		case *xpath.Binary:
			if s.Op == xpath.OpUnion {
				return b.union(s)
			}
		}
		return nil, fmt.Errorf("plan: union operand %q is not a path", side)
	}
	left, err := build(e.Left)
	if err != nil {
		return nil, err
	}
	right, err := build(e.Right)
	if err != nil {
		return nil, err
	}
	return &Join{Cond: JoinUnion, Left: left, Right: right}, nil
}

// predicate compiles a predicate expression to a predicate operator:
//
//   - a location path        -> ξ (exists)
//   - path/literal compares  -> β(EQ/NE/LT/LE/GT/GE)
//   - and/or of predicates   -> β(AND/OR)
//   - anything else          -> ε (general expression predicate)
//
// Keeping comparisons in β form (rather than ε) is what lets the
// optimizer recognize the value-index rewrite (paper §VI-C.2).
func (b *builder) predicate(e xpath.Expr) (Op, error) {
	switch t := e.(type) {
	case *xpath.LocationPath:
		sub, err := b.path(t)
		if err != nil {
			return nil, err
		}
		return &Exist{Pred: sub}, nil
	case *xpath.Binary:
		switch t.Op {
		case xpath.OpAnd, xpath.OpOr:
			l, err := b.predicate(t.Left)
			if err != nil {
				return nil, err
			}
			r, err := b.predicate(t.Right)
			if err != nil {
				return nil, err
			}
			cond := CondAND
			if t.Op == xpath.OpOr {
				cond = CondOR
			}
			return &BinaryPred{Cond: cond, Left: l, Right: r}, nil
		case xpath.OpEq, xpath.OpNeq, xpath.OpLt, xpath.OpLte, xpath.OpGt, xpath.OpGte:
			l, lok := b.compareSide(t.Left)
			r, rok := b.compareSide(t.Right)
			if lok && rok {
				return &BinaryPred{Cond: condOf(t.Op), Left: l, Right: r}, nil
			}
		}
		return &ExprPred{Expr: e}, nil
	default:
		return &ExprPred{Expr: e}, nil
	}
}

// compareSide builds an operand of a β comparison: a literal, a number or
// a relative path. Other operand forms (functions, arithmetic) fall back
// to ε via the caller.
func (b *builder) compareSide(e xpath.Expr) (Op, bool) {
	switch t := e.(type) {
	case *xpath.Literal:
		return &Literal{Value: t.Value}, true
	case *xpath.Number:
		return &Literal{Value: t.String(), Numeric: true, Num: t.Value}, true
	case *xpath.LocationPath:
		sub, err := b.path(t)
		if err != nil {
			return nil, false
		}
		return sub, true
	default:
		return nil, false
	}
}

// predsOrderFree reports whether every predicate operator is insensitive
// to candidate order and grouping (no ε / positional predicates).
func predsOrderFree(preds []Op) bool {
	for _, p := range preds {
		switch p.(type) {
		case *Exist, *BinaryPred:
		default:
			return false
		}
	}
	return true
}

func condOf(op xpath.BinaryOp) PredCond {
	switch op {
	case xpath.OpEq:
		return CondEQ
	case xpath.OpNeq:
		return CondNE
	case xpath.OpLt:
		return CondLT
	case xpath.OpLte:
		return CondLE
	case xpath.OpGt:
		return CondGT
	default:
		return CondGE
	}
}
