// Package plan defines VAMANA's physical algebra (paper §V): the operator
// trees that the compiler produces from XPath parse trees, the cost
// estimator annotates, the optimizer rewrites, and the execution engine
// runs.
//
// An operator is written opᶜᵒⁿᵈ_id in the paper; here every operator
// carries a numeric ID and a Cost annotation block. The operator kinds are
// exactly the paper's: Root (R), Step (φ), Literal (L), Exist predicate
// (ξ), Binary predicate (β) and Join (J), plus ExprPred, a catch-all
// predicate operator for general XPath expressions (functions, position,
// arithmetic) that the paper's algebra leaves implicit.
package plan

import (
	"fmt"
	"strings"

	"vamana/internal/mass"
	"vamana/internal/xpath"
)

// Cost is the estimator's annotation on an operator (paper §VI-B):
// COUNT(op), TC(op), IN(op), OUT(op) and the scaled selectivity ratio δ.
type Cost struct {
	Count uint64 // nodes satisfying the node test in the index
	TC    uint64 // text count (literal operators)
	In    uint64 // max tuples received from the context child
	Out   uint64 // max tuples produced
	// RawOut is Out before any calibration correction was applied; the
	// observatory learns correction factors against it so feedback never
	// compounds on its own output. Equal to Out when calibration is off.
	RawOut uint64
	Sel    float64 // selectivity ratio δ scaled to [0,1]
	Done   bool    // set once the estimator has visited the operator
}

// Base carries the identity and cost annotation every operator shares.
type Base struct {
	ID   int
	Cost Cost
}

// base returns the embedded Base (implements Op).
func (b *Base) base() *Base { return b }

// Op is a physical operator.
type Op interface {
	base() *Base
	// Children returns all child operators (context children first).
	Children() []Op
	// Label renders the operator head, e.g. "φ3 parent::person".
	Label() string
}

// Root is R: the top of a query plan. It returns every tuple produced by
// its context child (paper §V-C.1). Distinct requests duplicate
// elimination on the output node-set.
type Root struct {
	Base
	Context  Op
	Distinct bool
}

// Step is φ(axis::nodetest): one location step evaluated against the MASS
// indexes (paper §V-C.2). A nil Context makes it a leaf whose context is
// set dynamically by the execution engine (the document root, or the
// filtered tuple on a predicate path). Preds are applied in order; the
// paper's "at most one predicate operator" corresponds to len(Preds) <= 1,
// the generalization supports XPath's chained predicates.
type Step struct {
	Base
	Axis    mass.Axis
	Test    mass.NodeTest
	Context Op
	Preds   []Op
	// Numeric range bounds, used only when Axis is mass.AxisNumRange
	// (the optimizer's range-predicate rewrite). ±Inf open a side.
	NumLo, NumHi         float64
	NumLoIncl, NumHiIncl bool
	// Prov names the rewrite rule that produced or moved this step
	// (empty for steps straight out of the compiler). The cost
	// observatory keys q-error profiles by axis × Prov so estimation
	// error can be traced back to the rewrite that introduced it.
	Prov string
}

// Literal is L(value) (paper §V-C.3).
type Literal struct {
	Base
	Value string
	// Numeric is set when the literal originated from a number token, in
	// which case comparisons coerce numerically.
	Numeric bool
	Num     float64
}

// Exist is ξ: an exists predicate with one predicate child (paper §V-C.4).
// The child subplan's leaf context is bound to each candidate tuple.
type Exist struct {
	Base
	Pred Op
}

// PredCond is a binary predicate condition.
type PredCond uint8

const (
	CondEQ PredCond = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
	CondAND
	CondOR
)

var condNames = [...]string{"EQ", "NE", "LT", "LE", "GT", "GE", "AND", "OR"}

// String returns the condition mnemonic used in plan displays.
func (c PredCond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("COND(%d)", uint8(c))
}

// BinaryPred is β(cond): a predicate with two predicate children
// (paper §V-C.5).
type BinaryPred struct {
	Base
	Cond        PredCond
	Left, Right Op
}

// ExprPred evaluates an arbitrary XPath expression as a predicate —
// positions, functions, arithmetic. It exists so VAMANA supports the full
// predicate language even where the paper's algebra shows only ξ and β.
type ExprPred struct {
	Base
	Expr xpath.Expr
}

// JoinCond is a join operator condition.
type JoinCond uint8

const (
	// JoinUnion merges two node streams, eliminating duplicates —
	// XPath's '|' operator.
	JoinUnion JoinCond = iota
)

// String returns the join-condition mnemonic.
func (c JoinCond) String() string {
	if c == JoinUnion {
		return "UNION"
	}
	return fmt.Sprintf("JOIN(%d)", uint8(c))
}

// Join is J(cond) with two context children (paper §V-C.6).
type Join struct {
	Base
	Cond        JoinCond
	Left, Right Op
}

// Children implementations.

func (r *Root) Children() []Op {
	if r.Context == nil {
		return nil
	}
	return []Op{r.Context}
}

func (s *Step) Children() []Op {
	var out []Op
	if s.Context != nil {
		out = append(out, s.Context)
	}
	out = append(out, s.Preds...)
	return out
}

func (l *Literal) Children() []Op    { return nil }
func (e *Exist) Children() []Op      { return []Op{e.Pred} }
func (b *BinaryPred) Children() []Op { return []Op{b.Left, b.Right} }
func (e *ExprPred) Children() []Op   { return nil }
func (j *Join) Children() []Op       { return []Op{j.Left, j.Right} }

// Label implementations, matching the paper's plan figures.

func (r *Root) Label() string { return fmt.Sprintf("R%d", r.ID) }

func (s *Step) Label() string {
	switch s.Axis {
	case mass.AxisValue:
		return fmt.Sprintf("φ%d value::%q", s.ID, s.Test.Name)
	case mass.AxisAttrValue:
		if s.Test.Attr != "" {
			return fmt.Sprintf("φ%d attr-value::@%s=%q", s.ID, s.Test.Attr, s.Test.Name)
		}
		return fmt.Sprintf("φ%d attr-value::%q", s.ID, s.Test.Name)
	case mass.AxisNumRange:
		lb, rb := "(", ")"
		if s.NumLoIncl {
			lb = "["
		}
		if s.NumHiIncl {
			rb = "]"
		}
		return fmt.Sprintf("φ%d num-range::%s%g,%g%s", s.ID, lb, s.NumLo, s.NumHi, rb)
	default:
		return fmt.Sprintf("φ%d %s::%s", s.ID, s.Axis, s.Test)
	}
}

func (l *Literal) Label() string { return fmt.Sprintf("L%d %q", l.ID, l.Value) }

func (e *Exist) Label() string { return fmt.Sprintf("ξ%d", e.ID) }

func (b *BinaryPred) Label() string { return fmt.Sprintf("β%d %s", b.ID, b.Cond) }

func (e *ExprPred) Label() string { return fmt.Sprintf("ε%d [%s]", e.ID, e.Expr) }

func (j *Join) Label() string { return fmt.Sprintf("J%d %s", j.ID, j.Cond) }

// Plan is a complete query plan.
type Plan struct {
	Root   *Root
	nextID int
}

// Operators returns every operator in the plan, preorder.
func (p *Plan) Operators() []Op {
	var out []Op
	var walk func(Op)
	walk = func(op Op) {
		out = append(out, op)
		for _, c := range op.Children() {
			walk(c)
		}
	}
	walk(p.Root)
	return out
}

// AssignIDs renumbers every operator 1..m preorder; called after
// construction and after each rewrite so displays stay coherent.
func (p *Plan) AssignIDs() {
	id := 1
	for _, op := range p.Operators() {
		op.base().ID = id
		id++
	}
}

// NewID mints an operator id beyond those assigned (used mid-rewrite).
func (p *Plan) NewID() int {
	p.nextID++
	return p.nextID
}

// String renders the plan as an indented tree, costs included when
// estimated — the textual equivalent of the paper's plan figures.
func (p *Plan) String() string {
	var b strings.Builder
	var walk func(op Op, indent string, role string)
	walk = func(op Op, indent string, role string) {
		b.WriteString(indent)
		if role != "" {
			b.WriteString(role)
			b.WriteByte(' ')
		}
		b.WriteString(op.Label())
		if c := op.base().Cost; c.Done {
			fmt.Fprintf(&b, "  {COUNT=%d TC=%d IN=%d OUT=%d δ=%.3f}", c.Count, c.TC, c.In, c.Out, c.Sel)
		}
		b.WriteByte('\n')
		switch t := op.(type) {
		case *Step:
			if t.Context != nil {
				walk(t.Context, indent+"  ", "ctx:")
			}
			for _, pr := range t.Preds {
				walk(pr, indent+"  ", "pred:")
			}
		default:
			for _, c := range op.Children() {
				walk(c, indent+"  ", "")
			}
		}
	}
	walk(p.Root, "", "")
	return b.String()
}

// ContextPath returns the plan's context path (paper §V-A): the chain of
// operators from which context is iteratively obtained, starting at the
// root's context child and following context children to the leaf.
func (p *Plan) ContextPath() []Op {
	var out []Op
	var cur Op = p.Root.Context
	for cur != nil {
		out = append(out, cur)
		switch t := cur.(type) {
		case *Step:
			cur = t.Context
		default:
			cur = nil
		}
	}
	return out
}

// Clone deep-copies the plan (used by the optimizer to test rewrites
// without destroying the original).
func (p *Plan) Clone() *Plan {
	return &Plan{Root: cloneOp(p.Root).(*Root), nextID: p.nextID}
}

// CloneOp deep-copies an operator subtree.
func CloneOp(op Op) Op { return cloneOp(op) }

// CostOf returns a pointer to the operator's cost annotation block.
func CostOf(op Op) *Cost { return &op.base().Cost }

func cloneOp(op Op) Op {
	switch t := op.(type) {
	case *Root:
		c := *t
		if t.Context != nil {
			c.Context = cloneOp(t.Context)
		}
		return &c
	case *Step:
		c := *t
		if t.Context != nil {
			c.Context = cloneOp(t.Context)
		}
		c.Preds = make([]Op, len(t.Preds))
		for i, p := range t.Preds {
			c.Preds[i] = cloneOp(p)
		}
		return &c
	case *Literal:
		c := *t
		return &c
	case *Exist:
		c := *t
		c.Pred = cloneOp(t.Pred)
		return &c
	case *BinaryPred:
		c := *t
		c.Left = cloneOp(t.Left)
		c.Right = cloneOp(t.Right)
		return &c
	case *ExprPred:
		c := *t
		return &c
	case *Join:
		c := *t
		c.Left = cloneOp(t.Left)
		c.Right = cloneOp(t.Right)
		return &c
	default:
		panic(fmt.Sprintf("plan: unknown operator %T", op))
	}
}
