// Package xmldoc shreds XML documents into node records carrying FLEX
// keys. It is the loader front-end of the MASS storage structure: the
// stream of Node values it emits is exactly what mass.Store indexes.
//
// The shredder is streaming — documents are never materialized in memory —
// which is what allows MASS to load documents "many gigabytes in size"
// (paper §IV-B) without the DOM engines' main-memory bound.
package xmldoc

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"vamana/internal/flex"
)

// Kind classifies a document node, following the XPath 1.0 data model.
type Kind uint8

const (
	// KindDocument is the document root node (FLEX key "a").
	KindDocument Kind = iota
	// KindElement is an element node.
	KindElement
	// KindAttribute is an attribute node.
	KindAttribute
	// KindText is a text node.
	KindText
	// KindComment is a comment node.
	KindComment
	// KindPI is a processing-instruction node.
	KindPI
	// KindNamespace is a namespace-declaration node (xmlns / xmlns:p).
	KindNamespace
)

// String returns the XPath-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindDocument:
		return "document"
	case KindElement:
		return "element"
	case KindAttribute:
		return "attribute"
	case KindText:
		return "text"
	case KindComment:
		return "comment"
	case KindPI:
		return "processing-instruction"
	case KindNamespace:
		return "namespace"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Node is one shredded document node. Name is the element or attribute
// name (or PI target, or namespace prefix); Value is the attribute value,
// text content, comment text, or PI data.
type Node struct {
	Key   flex.Key
	Kind  Kind
	Name  string
	Value string
}

// Options configures parsing.
type Options struct {
	// KeepWhitespace retains whitespace-only text nodes. By default they
	// are dropped, matching how XML databases typically load
	// data-oriented documents.
	KeepWhitespace bool
	// MaxDepth bounds element nesting; 0 means the default (512).
	MaxDepth int
}

const defaultMaxDepth = 512

// Parse streams the XML document from r and invokes emit once per node in
// document order. The first node is always the document node with key
// flex.Root. Attribute and namespace nodes are emitted directly after
// their element, before any child content, mirroring their FLEX key order.
func Parse(r io.Reader, emit func(Node) error) error {
	return ParseWith(r, Options{}, emit)
}

// ParseWith is Parse with explicit options.
func ParseWith(r io.Reader, opts Options, emit func(Node) error) error {
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = defaultMaxDepth
	}
	dec := xml.NewDecoder(r)

	type frame struct {
		key      flex.Key
		children int // ordinal counter for non-attribute children
	}
	stack := []frame{{key: flex.Root}}
	if err := emit(Node{Key: flex.Root, Kind: KindDocument, Name: "#document"}); err != nil {
		return err
	}
	sawElement := false

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("xmldoc: parse: %w", err)
		}
		top := &stack[len(stack)-1]
		switch t := tok.(type) {
		case xml.StartElement:
			if len(stack) >= maxDepth {
				return fmt.Errorf("xmldoc: document exceeds maximum depth %d", maxDepth)
			}
			if len(stack) == 1 && sawElement {
				return fmt.Errorf("xmldoc: multiple root elements (%s)", t.Name.Local)
			}
			key := top.key.Child(flex.Ordinal(top.children))
			top.children++
			if err := emit(Node{Key: key, Kind: KindElement, Name: elementName(t.Name)}); err != nil {
				return err
			}
			nattr := 0
			for _, a := range t.Attr {
				n := Node{Key: key.Child(flex.AttrOrdinal(nattr))}
				nattr++
				switch {
				case a.Name.Space == "xmlns":
					n.Kind, n.Name, n.Value = KindNamespace, a.Name.Local, a.Value
				case a.Name.Space == "" && a.Name.Local == "xmlns":
					n.Kind, n.Name, n.Value = KindNamespace, "", a.Value
				default:
					n.Kind, n.Name, n.Value = KindAttribute, attributeName(a.Name), a.Value
				}
				if err := emit(n); err != nil {
					return err
				}
			}
			stack = append(stack, frame{key: key})
			sawElement = true
		case xml.EndElement:
			if len(stack) <= 1 {
				return fmt.Errorf("xmldoc: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text := string(t)
			if !opts.KeepWhitespace && strings.TrimSpace(text) == "" {
				continue
			}
			key := top.key.Child(flex.Ordinal(top.children))
			top.children++
			if err := emit(Node{Key: key, Kind: KindText, Value: text}); err != nil {
				return err
			}
		case xml.Comment:
			key := top.key.Child(flex.Ordinal(top.children))
			top.children++
			if err := emit(Node{Key: key, Kind: KindComment, Value: string(t)}); err != nil {
				return err
			}
		case xml.ProcInst:
			if t.Target == "xml" {
				continue // the XML declaration is not a node
			}
			key := top.key.Child(flex.Ordinal(top.children))
			top.children++
			if err := emit(Node{Key: key, Kind: KindPI, Name: t.Target, Value: string(t.Inst)}); err != nil {
				return err
			}
		case xml.Directive:
			// DOCTYPE etc. — not part of the XPath data model.
		}
	}
	if len(stack) != 1 {
		return fmt.Errorf("xmldoc: unexpected EOF inside element")
	}
	if !sawElement {
		return fmt.Errorf("xmldoc: document has no root element")
	}
	return nil
}

// elementName renders a possibly-namespaced element name. VAMANA matches
// on local names (XMark documents use no namespaces); the namespace URI is
// preserved for diagnostics by prefixing it in braces, Clark-notation
// style, only when present.
func elementName(n xml.Name) string {
	return n.Local
}

func attributeName(n xml.Name) string {
	return n.Local
}
