package xmldoc

import (
	"sort"
	"strings"
	"testing"

	"vamana/internal/flex"
)

const personXML = `<?xml version="1.0"?>
<site>
 <person id="person144">
  <name>Yung Flach</name>
  <emailaddress>Flach@auth.gr</emailaddress>
  <address>
   <street>92 Pfisterer St</street>
   <city>Monroe</city>
   <country>United States</country>
   <zipcode>12</zipcode>
  </address>
  <watches>
   <watch open_auction="open_auction108"/>
   <watch open_auction="open_auction94"/>
   <watch open_auction="open_auction110"/>
  </watches>
 </person>
</site>`

func parseAll(t *testing.T, src string, opts Options) []Node {
	t.Helper()
	var nodes []Node
	if err := ParseWith(strings.NewReader(src), opts, func(n Node) error {
		nodes = append(nodes, n)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return nodes
}

func TestParsePersonDocument(t *testing.T) {
	nodes := parseAll(t, personXML, Options{})
	if nodes[0].Kind != KindDocument || nodes[0].Key != flex.Root {
		t.Fatalf("first node = %+v, want document at root", nodes[0])
	}
	if nodes[1].Kind != KindElement || nodes[1].Name != "site" {
		t.Fatalf("second node = %+v, want site element", nodes[1])
	}

	var kinds = map[Kind]int{}
	var names []string
	for _, n := range nodes {
		kinds[n.Kind]++
		if n.Kind == KindElement {
			names = append(names, n.Name)
		}
	}
	if kinds[KindElement] != 13 { // site person name emailaddress address street city country zipcode watches watch×3
		t.Errorf("element count = %d, want 13 (%v)", kinds[KindElement], names)
	}
	if kinds[KindAttribute] != 4 { // id + 3×open_auction
		t.Errorf("attribute count = %d, want 4", kinds[KindAttribute])
	}
	if kinds[KindText] != 6 {
		t.Errorf("text count = %d, want 6", kinds[KindText])
	}
}

func TestKeysAreDocumentOrderedAndValid(t *testing.T) {
	nodes := parseAll(t, personXML, Options{})
	for i, n := range nodes {
		if !n.Key.Valid() {
			t.Fatalf("node %d has invalid key %q", i, n.Key)
		}
		if i > 0 && nodes[i-1].Key >= n.Key {
			t.Fatalf("keys not strictly increasing at %d: %q >= %q", i, nodes[i-1].Key, n.Key)
		}
	}
	// Sorting by key must be a no-op (emission order == document order).
	sorted := append([]Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for i := range nodes {
		if sorted[i].Key != nodes[i].Key {
			t.Fatalf("key order != emission order at %d", i)
		}
	}
}

func TestParentChildKeyStructure(t *testing.T) {
	nodes := parseAll(t, personXML, Options{})
	byName := map[string]Node{}
	for _, n := range nodes {
		if n.Kind == KindElement {
			byName[n.Name] = n
		}
	}
	person, name, street := byName["person"], byName["name"], byName["street"]
	if name.Key.Parent() != person.Key {
		t.Fatalf("name parent = %q, want %q", name.Key.Parent(), person.Key)
	}
	if !person.Key.IsAncestorOf(street.Key) {
		t.Fatalf("person %q should be ancestor of street %q", person.Key, street.Key)
	}
	if got := person.Key.Parent().Parent(); got != flex.Root {
		t.Fatalf("person grandparent = %q, want root", got)
	}
}

func TestAttributesPrecedeChildren(t *testing.T) {
	nodes := parseAll(t, personXML, Options{})
	var personKey flex.Key
	for _, n := range nodes {
		if n.Kind == KindElement && n.Name == "person" {
			personKey = n.Key
		}
	}
	var attrKey, firstChildKey flex.Key
	for _, n := range nodes {
		if n.Key.Parent() == personKey {
			if n.Kind == KindAttribute && attrKey == "" {
				attrKey = n.Key
			}
			if n.Kind == KindElement && firstChildKey == "" {
				firstChildKey = n.Key
			}
		}
	}
	if attrKey == "" || firstChildKey == "" {
		t.Fatal("did not find person attribute and child")
	}
	if attrKey >= firstChildKey {
		t.Fatalf("attribute key %q must precede child key %q", attrKey, firstChildKey)
	}
}

func TestWhitespaceHandling(t *testing.T) {
	src := "<a>  <b>x</b>  </a>"
	drop := parseAll(t, src, Options{})
	keep := parseAll(t, src, Options{KeepWhitespace: true})
	countText := func(ns []Node) int {
		c := 0
		for _, n := range ns {
			if n.Kind == KindText {
				c++
			}
		}
		return c
	}
	if got := countText(drop); got != 1 {
		t.Errorf("default text nodes = %d, want 1", got)
	}
	if got := countText(keep); got != 3 {
		t.Errorf("KeepWhitespace text nodes = %d, want 3", got)
	}
}

func TestCommentsAndPIs(t *testing.T) {
	src := `<a><!-- hello --><?php echo ?><b/></a>`
	nodes := parseAll(t, src, Options{})
	var haveComment, havePI bool
	for _, n := range nodes {
		if n.Kind == KindComment && strings.Contains(n.Value, "hello") {
			haveComment = true
		}
		if n.Kind == KindPI && n.Name == "php" {
			havePI = true
		}
	}
	if !haveComment || !havePI {
		t.Fatalf("comment=%v pi=%v, want both", haveComment, havePI)
	}
}

func TestNamespaceDeclarations(t *testing.T) {
	src := `<a xmlns="urn:d" xmlns:p="urn:p"><p:b p:x="1"/></a>`
	nodes := parseAll(t, src, Options{})
	var nsCount, attrCount int
	for _, n := range nodes {
		switch n.Kind {
		case KindNamespace:
			nsCount++
		case KindAttribute:
			attrCount++
		}
	}
	if nsCount != 2 {
		t.Errorf("namespace nodes = %d, want 2", nsCount)
	}
	if attrCount != 1 {
		t.Errorf("attribute nodes = %d, want 1", attrCount)
	}
}

func TestMalformedXML(t *testing.T) {
	bad := []string{"<a><b></a>", "<a>", "just text", "", "<a></a><b></b>"}
	for _, src := range bad {
		err := Parse(strings.NewReader(src), func(Node) error { return nil })
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestEmitErrorStopsParse(t *testing.T) {
	calls := 0
	err := Parse(strings.NewReader(personXML), func(Node) error {
		calls++
		if calls == 3 {
			return errStop
		}
		return nil
	})
	if err != errStop {
		t.Fatalf("err = %v, want errStop", err)
	}
	if calls != 3 {
		t.Fatalf("emit called %d times after stop", calls)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }

func TestDepthLimit(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 20; i++ {
		b.WriteString("<d>")
	}
	for i := 0; i < 20; i++ {
		b.WriteString("</d>")
	}
	err := ParseWith(strings.NewReader(b.String()), Options{MaxDepth: 10}, func(Node) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("err = %v, want depth error", err)
	}
}
