package xmark

import (
	"strings"
	"testing"

	"vamana/internal/xmldoc"
)

func TestDeterministic(t *testing.T) {
	cfg := Config{Factor: 0.002, Seed: 1}
	a := GenerateString(cfg)
	b := GenerateString(cfg)
	if a != b {
		t.Fatal("same config produced different documents")
	}
	c := GenerateString(Config{Factor: 0.002, Seed: 2})
	if a == c {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestWellFormed(t *testing.T) {
	src := GenerateString(Config{Factor: 0.005, Seed: 3})
	nodes := 0
	err := xmldoc.Parse(strings.NewReader(src), func(xmldoc.Node) error {
		nodes++
		return nil
	})
	if err != nil {
		t.Fatalf("generated document is not well-formed: %v", err)
	}
	if nodes < 1000 {
		t.Fatalf("suspiciously few nodes: %d", nodes)
	}
}

// TestPaperCardinalities verifies the element-count calibration that the
// paper's worked examples rely on (Fig. 6: 10 MB => 2550 person, 4825
// name).
func TestPaperCardinalities(t *testing.T) {
	c := CountsFor(0.1)
	if c.Persons != 2550 {
		t.Errorf("persons at f=0.1: %d, want 2550", c.Persons)
	}
	names := c.Persons + c.Items + c.Categories
	if names != 4825 {
		t.Errorf("name elements at f=0.1: %d, want 4825", names)
	}
	if c.Categories != 100 {
		t.Errorf("categories = %d, want 100", c.Categories)
	}
}

func TestSizeCalibration(t *testing.T) {
	// A small factor should land within 2x of the nominal target.
	cfg := Config{Factor: FactorForBytes(1 << 20), Seed: 4}
	src := GenerateString(cfg)
	size := len(src)
	if size < (1<<20)/2 || size > (1<<20)*2 {
		t.Fatalf("1 MiB target produced %d bytes", size)
	}
}

func TestRunningExamplePresence(t *testing.T) {
	src := GenerateString(Config{Factor: 0.01, Seed: 5})
	if got := strings.Count(src, "<name>Yung Flach</name>"); got != 1 {
		t.Errorf("Yung Flach occurrences = %d, want exactly 1", got)
	}
	for _, needle := range []string{
		"<province>", "<watches>", "<watch open_auction=", "<itemref item=",
		"<price>", "<closed_auction>", "<open_auction id=", "<zipcode>",
	} {
		if !strings.Contains(src, needle) {
			t.Errorf("generated document lacks %q", needle)
		}
	}
	// Vermont must appear so Q5 has hits (provinces cycle through a short
	// list, so any non-trivial document includes it).
	if !strings.Contains(src, "<province>Vermont</province>") {
		t.Error("no Vermont province in generated document")
	}
}

func TestElementCountsMatchConfig(t *testing.T) {
	cfg := Config{Factor: 0.004, Seed: 6}
	want := CountsFor(cfg.Factor)
	src := GenerateString(cfg)
	count := func(tag string) int { return strings.Count(src, "<"+tag) }
	if got := count("person id="); got != want.Persons {
		t.Errorf("persons = %d, want %d", got, want.Persons)
	}
	if got := count("item id="); got != want.Items {
		t.Errorf("items = %d, want %d", got, want.Items)
	}
	if got := count("open_auction id="); got != want.OpenAuctions {
		t.Errorf("open auctions = %d, want %d", got, want.OpenAuctions)
	}
	if got := count("closed_auction>"); got != want.ClosedAuctions {
		t.Errorf("closed auctions = %d, want %d", got, want.ClosedAuctions)
	}
}
