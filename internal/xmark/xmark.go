// Package xmark generates auction-site XML documents shaped like the
// XMark benchmark's auction.xml (Schmidt et al., VLDB 2002), which the
// paper's experimental study uses (§III, §VIII). The real XMark generator
// is a C program; this reimplementation reproduces the element vocabulary,
// structure and cardinality ratios that the paper's queries and worked
// examples depend on:
//
//   - at factor f: ~25500·f person, ~21750·f item, ~1000·f category
//     elements, so that name counts come out at ~48250·f — the paper's
//     10 MB document (f = 0.1) reports COUNT(name) = 4825 and
//     COUNT(person) = 2550 (Fig. 6);
//   - address is optional (roughly half the persons), province optional
//     inside address with US state values including "Vermont" (Q5);
//   - closed auctions contain itemref followed by price siblings (Q4);
//   - watches/watch elements reference open auctions (Q2);
//   - exactly one person is named "Yung Flach" (the running example).
//
// Output is deterministic for a given Config.
package xmark

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// Config controls document generation.
type Config struct {
	// Factor is the XMark scale factor; 1.0 targets roughly 100 MB.
	// Use FactorForBytes to aim at a byte size.
	Factor float64
	// Seed drives all pseudo-random choices; documents with equal
	// configs are byte-identical.
	Seed int64
}

// FactorForBytes returns the scale factor that generates approximately
// target bytes of XML.
func FactorForBytes(target int) float64 {
	const bytesPerFactor = 100 << 20 // ~100 MB at factor 1.0
	return float64(target) / bytesPerFactor
}

// Counts reports the element cardinalities a config will generate.
type Counts struct {
	Persons, Items, Categories, OpenAuctions, ClosedAuctions int
}

// CountsFor computes the cardinalities for a factor.
func CountsFor(f float64) Counts {
	n := func(base int) int {
		v := int(float64(base) * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	return Counts{
		Persons:        n(25500),
		Items:          n(21750),
		Categories:     n(1000),
		OpenAuctions:   n(12000),
		ClosedAuctions: n(9750),
	}
}

var (
	firstNames = []string{
		"Yung", "Jaak", "Mehmet", "Ewa", "Kawon", "Sandeepan", "Dov", "Mitsuyuki",
		"Farouk", "Benedikte", "Emilio", "Takahiro", "Gopal", "Ratko", "Wanda",
		"Vibhanshu", "Xiaoqiu", "Morrie", "Annegret", "Piyush", "Larbi", "Odysseas",
	}
	lastNames = []string{
		"Flach", "Tempesti", "Acer", "Banerjee", "Dittrich", "Fagin", "Gyssens",
		"Haritsa", "Ioannidis", "Jagadish", "Kanellakis", "Lakshmanan", "Mendelzon",
		"Naughton", "Ooi", "Paredaens", "Ramakrishnan", "Suciu", "Tannen", "Ullman",
	}
	cities = []string{
		"Monroe", "Ottawa", "Madison", "Springfield", "Georgetown", "Clinton",
		"Franklin", "Greenville", "Bristol", "Fairview", "Salem", "Arlington",
	}
	provinces = []string{
		"Vermont", "Quebec", "Ontario", "Bavaria", "Tuscany", "Andalusia",
		"Hokkaido", "Gauteng", "Queensland", "Patagonia",
	}
	countries = []string{
		"United States", "Canada", "Germany", "Italy", "Spain", "Japan",
		"South Africa", "Australia", "Argentina", "Greece",
	}
	streets = []string{
		"Pfisterer St", "Curie Place", "Main St", "Oak Ave", "Maple Dr",
		"Cedar Ln", "Institute Rd", "Park Blvd", "Lake View", "Hill Crest",
	}
	regions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	words   = []string{
		"gold", "brass", "carved", "antique", "vintage", "rare", "pristine",
		"ornate", "gilded", "ceramic", "walnut", "ivory", "silver", "amber",
		"lacquered", "enameled", "woven", "etched", "polished", "burnished",
		"timepiece", "cabinet", "locket", "tapestry", "manuscript", "sextant",
		"astrolabe", "chalice", "figurine", "medallion", "snuffbox", "candelabra",
	}
	auctionTypes = []string{"Regular", "Featured", "Dutch"}
	interests    = []string{"category1", "category7", "category12", "category19", "category23"}
)

// Generate writes the document to w and returns the number of bytes
// written.
func Generate(w io.Writer, cfg Config) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	g := &gen{w: bw, rng: rand.New(rand.NewSource(cfg.Seed + 7919))}
	c := CountsFor(cfg.Factor)
	g.document(c)
	if g.err != nil {
		return g.n, g.err
	}
	if err := bw.Flush(); err != nil {
		return g.n, err
	}
	return g.n, nil
}

// GenerateString renders the document into memory. Intended for tests and
// small factors; large documents should stream via Generate.
func GenerateString(cfg Config) string {
	var b strings.Builder
	if _, err := Generate(&b, cfg); err != nil {
		// strings.Builder cannot fail; any error is a generator bug.
		panic(err)
	}
	return b.String()
}

type gen struct {
	w   *bufio.Writer
	rng *rand.Rand
	n   int64
	err error
}

func (g *gen) emit(format string, args ...any) {
	if g.err != nil {
		return
	}
	n, err := fmt.Fprintf(g.w, format, args...)
	g.n += int64(n)
	g.err = err
}

func (g *gen) pick(list []string) string { return list[g.rng.Intn(len(list))] }

// personName generates a random full name that is never the running
// example's unique "Yung Flach" (which is emitted exactly once, by
// person()).
func (g *gen) personName() string {
	first, last := g.pick(firstNames), g.pick(lastNames)
	if first == "Yung" && last == "Flach" {
		last = "Flachsbart"
	}
	return first + " " + last
}

func (g *gen) chance(p float64) bool { return g.rng.Float64() < p }

// sentence emits ~n words of deterministic prose.
func (g *gen) sentence(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(g.pick(words))
	}
	return b.String()
}

func (g *gen) document(c Counts) {
	g.emit("<?xml version=\"1.0\" standalone=\"yes\"?>\n<site>\n")
	g.regions(c)
	g.categories(c)
	g.catgraph(c)
	g.people(c)
	g.openAuctions(c)
	g.closedAuctions(c)
	g.emit("</site>\n")
}

func (g *gen) regions(c Counts) {
	g.emit("<regions>\n")
	perRegion := c.Items / len(regions)
	extra := c.Items % len(regions)
	id := 0
	for ri, region := range regions {
		n := perRegion
		if ri < extra {
			n++
		}
		g.emit("<%s>\n", region)
		for i := 0; i < n; i++ {
			g.item(id, c)
			id++
		}
		g.emit("</%s>\n", region)
	}
	g.emit("</regions>\n")
}

func (g *gen) item(id int, c Counts) {
	g.emit("<item id=\"item%d\">\n", id)
	g.emit("<location>%s</location>\n", g.pick(countries))
	g.emit("<quantity>%d</quantity>\n", 1+g.rng.Intn(9))
	g.emit("<name>%s %s</name>\n", g.pick(words), g.pick(words))
	g.emit("<payment>Creditcard</payment>\n")
	g.emit("<description><text>%s</text></description>\n", g.sentence(150+g.rng.Intn(380)))
	g.emit("<shipping>Will ship internationally</shipping>\n")
	if g.chance(0.4) {
		g.emit("<incategory category=\"category%d\"/>\n", g.rng.Intn(c.Categories))
	}
	g.emit("<mailbox>\n")
	for i := 0; i < g.rng.Intn(3); i++ {
		g.emit("<mail><from>%s</from><to>%s</to><date>%02d/%02d/2000</date><text>%s</text></mail>\n",
			g.personName(), g.personName(),
			1+g.rng.Intn(12), 1+g.rng.Intn(28), g.sentence(30+g.rng.Intn(90)))
	}
	g.emit("</mailbox>\n")
	g.emit("</item>\n")
}

func (g *gen) categories(c Counts) {
	g.emit("<categories>\n")
	for i := 0; i < c.Categories; i++ {
		g.emit("<category id=\"category%d\">\n", i)
		g.emit("<name>%s %s</name>\n", g.pick(words), g.pick(words))
		g.emit("<description><text>%s</text></description>\n", g.sentence(30+g.rng.Intn(140)))
		g.emit("</category>\n")
	}
	g.emit("</categories>\n")
}

func (g *gen) catgraph(c Counts) {
	g.emit("<catgraph>\n")
	edges := c.Categories
	for i := 0; i < edges; i++ {
		g.emit("<edge from=\"category%d\" to=\"category%d\"/>\n",
			g.rng.Intn(c.Categories), g.rng.Intn(c.Categories))
	}
	g.emit("</catgraph>\n")
}

func (g *gen) people(c Counts) {
	g.emit("<people>\n")
	// The running example's person appears exactly once, at a
	// deterministic position.
	flachAt := 144 % c.Persons
	for i := 0; i < c.Persons; i++ {
		g.person(i, i == flachAt, c)
	}
	g.emit("</people>\n")
}

func (g *gen) person(id int, isFlach bool, c Counts) {
	g.emit("<person id=\"person%d\">\n", id)
	if isFlach {
		g.emit("<name>Yung Flach</name>\n")
		g.emit("<emailaddress>Flach@auth.gr</emailaddress>\n")
	} else {
		name := g.personName()
		g.emit("<name>%s</name>\n", name)
		last := name[strings.IndexByte(name, ' ')+1:]
		g.emit("<emailaddress>%s@example%d.net</emailaddress>\n", strings.ToLower(last), g.rng.Intn(99))
	}
	if g.chance(0.5) {
		g.emit("<phone>+%d (%d) %d</phone>\n", 1+g.rng.Intn(98), 100+g.rng.Intn(899), 1000000+g.rng.Intn(8999999))
	}
	if g.chance(0.493) {
		g.emit("<address>\n")
		g.emit("<street>%d %s</street>\n", 1+g.rng.Intn(99), g.pick(streets))
		g.emit("<city>%s</city>\n", g.pick(cities))
		if g.chance(0.25) {
			g.emit("<province>%s</province>\n", g.pick(provinces))
		}
		g.emit("<country>%s</country>\n", g.pick(countries))
		g.emit("<zipcode>%d</zipcode>\n", 1+g.rng.Intn(99))
		g.emit("</address>\n")
	}
	if g.chance(0.3) {
		g.emit("<homepage>http://www.example%d.org/~p%d</homepage>\n", g.rng.Intn(99), id)
	}
	if g.chance(0.4) {
		g.emit("<creditcard>%04d %04d %04d %04d</creditcard>\n",
			g.rng.Intn(10000), g.rng.Intn(10000), g.rng.Intn(10000), g.rng.Intn(10000))
	}
	if g.chance(0.6) {
		g.emit("<profile income=\"%d.%02d\">\n", 9000+g.rng.Intn(90000), g.rng.Intn(100))
		for i := 0; i < g.rng.Intn(4); i++ {
			g.emit("<interest category=\"%s\"/>\n", g.pick(interests))
		}
		if g.chance(0.5) {
			g.emit("<education>Graduate School</education>\n")
		}
		g.emit("<business>%s</business>\n", map[bool]string{true: "Yes", false: "No"}[g.chance(0.5)])
		g.emit("</profile>\n")
	}
	if g.chance(0.35) {
		g.emit("<watches>\n")
		for i := 0; i < 1+g.rng.Intn(4); i++ {
			g.emit("<watch open_auction=\"open_auction%d\"/>\n", g.rng.Intn(c.OpenAuctions))
		}
		g.emit("</watches>\n")
	}
	g.emit("</person>\n")
}

func (g *gen) openAuctions(c Counts) {
	g.emit("<open_auctions>\n")
	for i := 0; i < c.OpenAuctions; i++ {
		g.emit("<open_auction id=\"open_auction%d\">\n", i)
		g.emit("<initial>%d.%02d</initial>\n", 1+g.rng.Intn(300), g.rng.Intn(100))
		for b := 0; b < g.rng.Intn(4); b++ {
			g.emit("<bidder><date>%02d/%02d/2000</date><time>%02d:%02d:%02d</time><personref person=\"person%d\"/><increase>%d.%02d</increase></bidder>\n",
				1+g.rng.Intn(12), 1+g.rng.Intn(28), g.rng.Intn(24), g.rng.Intn(60), g.rng.Intn(60),
				g.rng.Intn(c.Persons), 1+g.rng.Intn(20), g.rng.Intn(100))
		}
		g.emit("<current>%d.%02d</current>\n", 1+g.rng.Intn(600), g.rng.Intn(100))
		g.emit("<itemref item=\"item%d\"/>\n", g.rng.Intn(c.Items))
		g.emit("<seller person=\"person%d\"/>\n", g.rng.Intn(c.Persons))
		g.emit("<annotation><description><text>%s</text></description></annotation>\n", g.sentence(25+g.rng.Intn(90)))
		g.emit("<quantity>%d</quantity>\n", 1+g.rng.Intn(9))
		g.emit("<type>%s</type>\n", g.pick(auctionTypes))
		g.emit("<interval><start>%02d/%02d/2000</start><end>%02d/%02d/2001</end></interval>\n",
			1+g.rng.Intn(12), 1+g.rng.Intn(28), 1+g.rng.Intn(12), 1+g.rng.Intn(28))
		g.emit("</open_auction>\n")
	}
	g.emit("</open_auctions>\n")
}

func (g *gen) closedAuctions(c Counts) {
	g.emit("<closed_auctions>\n")
	for i := 0; i < c.ClosedAuctions; i++ {
		g.emit("<closed_auction>\n")
		g.emit("<seller person=\"person%d\"/>\n", g.rng.Intn(c.Persons))
		g.emit("<buyer person=\"person%d\"/>\n", g.rng.Intn(c.Persons))
		g.emit("<itemref item=\"item%d\"/>\n", g.rng.Intn(c.Items))
		g.emit("<price>%d.%02d</price>\n", 1+g.rng.Intn(500), g.rng.Intn(100))
		g.emit("<date>%02d/%02d/2000</date>\n", 1+g.rng.Intn(12), 1+g.rng.Intn(28))
		g.emit("<quantity>%d</quantity>\n", 1+g.rng.Intn(9))
		g.emit("<type>%s</type>\n", g.pick(auctionTypes))
		g.emit("<annotation><description><text>%s</text></description></annotation>\n", g.sentence(20+g.rng.Intn(70)))
		g.emit("</closed_auction>\n")
	}
	g.emit("</closed_auctions>\n")
}
