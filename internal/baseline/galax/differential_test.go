package galax

import (
	"strings"
	"testing"

	"vamana/internal/baseline/dom"
	"vamana/internal/xmark"
)

// TestDifferentialAgainstPlainDOM: the Galax-strategy engine shares the
// DOM substrate but takes the sorted-set path at every step; results must
// nevertheless be identical to the plain engine's on every supported
// query.
func TestDifferentialAgainstPlainDOM(t *testing.T) {
	src := xmark.GenerateString(xmark.Config{Factor: 0.003, Seed: 43})
	g, err := New(src)
	if err != nil {
		t.Fatal(err)
	}
	plainDoc, err := dom.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	plain := dom.New(plainDoc, dom.Options{})

	queries := []string{
		"//person/address",
		"//watches/watch/ancestor::person",
		"/descendant::name/parent::*/self::person/address",
		"//province[text()='Vermont']/ancestor::person",
		"//person[@id='person5']",
		"//address[zipcode > 50]/city",
		"//open_auction/bidder/personref",
		"//person[count(watches/watch) > 1]/name",
		"//item[contains(name, 'gold')]",
		"//category | //edge",
		"//person[2]/name",
	}
	for _, q := range queries {
		got, err := g.Eval(q)
		if err != nil {
			t.Errorf("galax %q: %v", q, err)
			continue
		}
		want, err := plain.Eval(q)
		if err != nil {
			t.Fatalf("plain %q: %v", q, err)
		}
		gk, wk := dom.Keys(got), dom.Keys(want)
		if len(gk) != len(wk) {
			t.Errorf("%q: galax %d keys, plain %d", q, len(gk), len(wk))
			continue
		}
		for i := range gk {
			if gk[i] != wk[i] {
				t.Errorf("%q: key %d differs (%s vs %s)", q, i, gk[i], wk[i])
				break
			}
		}
	}
}
