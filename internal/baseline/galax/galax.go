// Package galax models the Galax XQuery engine's evaluation strategy as
// the paper characterizes it (§II, §VIII): a DOM-based engine with
// logical, statistics-free optimization, full node-set (sorted, distinct)
// semantics maintained at every step, and gaps in axis support — "Galax
// does not support certain axes like following-sibling".
package galax

import (
	"strings"

	"vamana/internal/baseline/dom"
	"vamana/internal/mass"
)

// Engine evaluates XPath the Galax way. It is a configured dom.Engine:
// the strategy (materialized DOM + top-down traversal) is shared; the
// options model Galax's documented behavior.
type Engine struct {
	*dom.Engine
}

// New parses src and returns a Galax-strategy engine.
func New(src string) (*Engine, error) {
	doc, err := dom.Parse(strings.NewReader(src))
	if err != nil {
		return nil, err
	}
	e := dom.New(doc, dom.Options{
		SortEveryStep: true,
		UnsupportedAxes: []mass.Axis{
			mass.AxisFollowingSibling,
			mass.AxisPrecedingSibling,
		},
	})
	return &Engine{Engine: e}, nil
}
