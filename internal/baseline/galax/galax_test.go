package galax

import (
	"errors"
	"testing"

	"vamana/internal/baseline/dom"
	"vamana/internal/xmark"
)

func TestEvaluatesSupportedQueries(t *testing.T) {
	src := xmark.GenerateString(xmark.Config{Factor: 0.002, Seed: 41})
	e, err := New(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Eval("//person/address")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no addresses found")
	}
}

func TestAxisGap(t *testing.T) {
	src := xmark.GenerateString(xmark.Config{Factor: 0.001, Seed: 42})
	e, err := New(src)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: "Galax does not support certain axes like
	// following-sibling" — Q4 must fail on this engine.
	if _, err := e.Eval("//itemref/following-sibling::price/parent::*"); err == nil {
		t.Fatal("following-sibling should be unsupported")
	} else {
		var ua *dom.ErrUnsupportedAxis
		if !errors.As(err, &ua) {
			t.Fatalf("error type %T: %v", err, err)
		}
	}
}
