package dom

import (
	"errors"
	"strings"
	"testing"

	"vamana/internal/mass"
	"vamana/internal/xmldoc"
	"vamana/internal/xpath"
)

const bookXML = `<library>
  <shelf id="s1">
    <book lang="en"><title>Systems</title><year>1999</year></book>
    <book lang="de"><title>Datenbanken</title><year>2003</year></book>
    <book lang="en"><title>Indexing</title><year>2001</year></book>
  </shelf>
  <shelf id="s2">
    <book lang="fr"><title>Requêtes</title><year>2001</year></book>
  </shelf>
</library>`

func engine(t *testing.T, src string, opts Options) *Engine {
	t.Helper()
	doc, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return New(doc, opts)
}

func titles(t *testing.T, e *Engine, expr string) []string {
	t.Helper()
	ns, err := e.Eval(expr)
	if err != nil {
		t.Fatalf("%s: %v", expr, err)
	}
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.StringValue()
	}
	return out
}

func TestKnownAnswers(t *testing.T) {
	e := engine(t, bookXML, Options{})
	cases := []struct {
		expr string
		want []string
	}{
		{"//book/title", []string{"Systems", "Datenbanken", "Indexing", "Requêtes"}},
		{"//book[@lang='en']/title", []string{"Systems", "Indexing"}},
		{"//book[year=2001]/title", []string{"Indexing", "Requêtes"}},
		{"//shelf[@id='s2']//title", []string{"Requêtes"}},
		{"//book[2]/title", []string{"Datenbanken"}},
		{"//book[last()]/title", []string{"Indexing", "Requêtes"}},
		{"//title[text()='Systems']", []string{"Systems"}},
		{"//year[.='1999']/preceding-sibling::title", []string{"Systems"}},
		{"//book[not(@lang='en')]/title", []string{"Datenbanken", "Requêtes"}},
		{"//book[year>1999 and year<2003]/title", []string{"Indexing", "Requêtes"}},
		{"//shelf[count(book)=3]/@id", []string{"s1"}},
		{"//book[starts-with(title,'Index')]/year", []string{"2001"}},
	}
	for _, c := range cases {
		got := titles(t, e, c.expr)
		if strings.Join(got, "|") != strings.Join(c.want, "|") {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestDocumentOrderAndDedup(t *testing.T) {
	e := engine(t, bookXML, Options{})
	// ancestor-or-self from multiple contexts produces duplicates that
	// Eval must fold, in document order.
	ns, err := e.Eval("//title/ancestor::shelf")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 {
		t.Fatalf("shelves = %d, want 2", len(ns))
	}
	if ns[0].Pos > ns[1].Pos {
		t.Fatal("results out of document order")
	}
}

func TestStringValueNested(t *testing.T) {
	e := engine(t, `<a>x<b>y<c>z</c></b>w</a>`, Options{})
	ns, _ := e.Eval("/a")
	if got := ns[0].StringValue(); got != "xyzw" {
		t.Fatalf("string value = %q", got)
	}
}

func TestUnsupportedAxisOption(t *testing.T) {
	e := engine(t, bookXML, Options{UnsupportedAxes: []mass.Axis{mass.AxisFollowingSibling}})
	_, err := e.Eval("//title/following-sibling::year")
	var ua *ErrUnsupportedAxis
	if !errors.As(err, &ua) {
		t.Fatalf("err = %v, want ErrUnsupportedAxis", err)
	}
	if ua.Axis != mass.AxisFollowingSibling {
		t.Fatalf("axis = %v", ua.Axis)
	}
	// Other axes still work.
	if _, err := e.Eval("//book/title"); err != nil {
		t.Fatal(err)
	}
}

func TestParseBuildsLinks(t *testing.T) {
	doc, err := Parse(strings.NewReader(bookXML))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Kind != xmldoc.KindDocument {
		t.Fatal("root is not the document node")
	}
	var book *Node
	for _, n := range doc.Nodes {
		if n.Kind == xmldoc.KindElement && n.Name == "book" {
			book = n
			break
		}
	}
	if book == nil {
		t.Fatal("no book element")
	}
	if book.Parent == nil || book.Parent.Name != "shelf" {
		t.Fatalf("book parent = %+v", book.Parent)
	}
	if len(book.Attrs) != 1 || book.Attrs[0].Name != "lang" {
		t.Fatalf("book attrs = %v", book.Attrs)
	}
	if len(book.Children) != 2 {
		t.Fatalf("book children = %d", len(book.Children))
	}
	// Document order positions are strictly increasing.
	for i := 1; i < len(doc.Nodes); i++ {
		if doc.Nodes[i].Pos != i {
			t.Fatalf("node %d has Pos %d", i, doc.Nodes[i].Pos)
		}
	}
}

func TestEvalPredicateHook(t *testing.T) {
	e := engine(t, bookXML, Options{})
	ns, _ := e.Eval("//book")
	ast, err := xpath.Parse("year > 2000")
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for i, n := range ns {
		ok, err := e.EvalPredicate(ast, n, i+1, len(ns))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			kept++
		}
	}
	if kept != 3 {
		t.Fatalf("books after 2000 = %d, want 3", kept)
	}
}
