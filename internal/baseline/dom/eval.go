package dom

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"vamana/internal/xpath"
)

// The DOM engine's expression evaluator: standard XPath 1.0 semantics over
// materialized node sets. Kept deliberately independent from the VAMANA
// executor so the two implementations can cross-check each other.

type nodeSet []*Node

type evalCtx struct {
	node *Node
	pos  int
	last int
}

func (e *Engine) evalExpr(x xpath.Expr, c evalCtx) (any, error) {
	switch t := x.(type) {
	case *xpath.Literal:
		return t.Value, nil
	case *xpath.Number:
		return t.Value, nil
	case *xpath.Unary:
		v, err := e.evalExpr(t.Operand, c)
		if err != nil {
			return nil, err
		}
		return -e.num(v), nil
	case *xpath.LocationPath:
		return e.evalPath(t, c.node)
	case *xpath.Filter:
		return e.evalFilter(t, c)
	case *xpath.FuncCall:
		return e.evalFunc(t, c)
	case *xpath.Binary:
		return e.evalBinary(t, c)
	case *xpath.VarRef:
		return nil, fmt.Errorf("dom: variables are not supported")
	default:
		return nil, fmt.Errorf("dom: cannot evaluate %T", x)
	}
}

// evalPath is the conventional top-down strategy (§II): each step maps the
// whole current node set through the axis, materializing every
// intermediate result.
func (e *Engine) evalPath(lp *xpath.LocationPath, ctx *Node) (nodeSet, error) {
	cur := nodeSet{ctx}
	if lp.Absolute {
		cur = nodeSet{e.doc.Root}
	}
	for _, step := range lp.Steps {
		var next nodeSet
		for _, n := range cur {
			axisNodes, err := e.axisNodes(n, step.Axis)
			if err != nil {
				return nil, err
			}
			var cand nodeSet
			for _, a := range axisNodes {
				if matches(a, step.Test, step.Axis) {
					cand = append(cand, a)
				}
			}
			for _, pred := range step.Predicates {
				var kept nodeSet
				for i, a := range cand {
					v, err := e.evalExpr(pred, evalCtx{node: a, pos: i + 1, last: len(cand)})
					if err != nil {
						return nil, err
					}
					keep := false
					if num, ok := v.(float64); ok {
						keep = float64(i+1) == num
					} else {
						keep = e.bool_(v)
					}
					if keep {
						kept = append(kept, a)
					}
				}
				cand = kept
			}
			next = append(next, cand...)
		}
		cur = e.orderedSet(next)
	}
	return cur, nil
}

// orderedSet dedups and document-orders an intermediate node set. When
// SortEveryStep is false the dedup still happens (node-set semantics) but
// via the cheaper hash path.
func (e *Engine) orderedSet(ns nodeSet) nodeSet {
	if e.opts.SortEveryStep {
		return e.ordered(ns)
	}
	seen := make(map[*Node]struct{}, len(ns))
	out := ns[:0]
	for _, n := range ns {
		if _, dup := seen[n]; !dup {
			seen[n] = struct{}{}
			out = append(out, n)
		}
	}
	return out
}

func (e *Engine) evalFilter(f *xpath.Filter, c evalCtx) (any, error) {
	prim, err := e.evalExpr(f.Primary, c)
	if err != nil {
		return nil, err
	}
	ns, ok := prim.(nodeSet)
	if !ok {
		if len(f.Predicates) > 0 || f.Path != nil {
			return nil, fmt.Errorf("dom: filter applied to non-node-set")
		}
		return prim, nil
	}
	ns = e.ordered(ns)
	for _, pred := range f.Predicates {
		var kept nodeSet
		for i, n := range ns {
			v, err := e.evalExpr(pred, evalCtx{node: n, pos: i + 1, last: len(ns)})
			if err != nil {
				return nil, err
			}
			keep := false
			if num, ok := v.(float64); ok {
				keep = float64(i+1) == num
			} else {
				keep = e.bool_(v)
			}
			if keep {
				kept = append(kept, n)
			}
		}
		ns = kept
	}
	if f.Path == nil {
		return ns, nil
	}
	var out nodeSet
	for _, n := range ns {
		sub, err := e.evalPath(f.Path, n)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	return nodeSet(e.ordered(out)), nil
}

func (e *Engine) evalBinary(b *xpath.Binary, c evalCtx) (any, error) {
	switch b.Op {
	case xpath.OpOr, xpath.OpAnd:
		l, err := e.evalExpr(b.Left, c)
		if err != nil {
			return nil, err
		}
		lb := e.bool_(l)
		if b.Op == xpath.OpOr && lb {
			return true, nil
		}
		if b.Op == xpath.OpAnd && !lb {
			return false, nil
		}
		r, err := e.evalExpr(b.Right, c)
		if err != nil {
			return nil, err
		}
		return e.bool_(r), nil
	case xpath.OpUnion:
		l, err := e.evalExpr(b.Left, c)
		if err != nil {
			return nil, err
		}
		r, err := e.evalExpr(b.Right, c)
		if err != nil {
			return nil, err
		}
		ln, lok := l.(nodeSet)
		rn, rok := r.(nodeSet)
		if !lok || !rok {
			return nil, fmt.Errorf("dom: union of non-node-sets")
		}
		return nodeSet(e.ordered(append(append(nodeSet{}, ln...), rn...))), nil
	case xpath.OpAdd, xpath.OpSub, xpath.OpMul, xpath.OpDiv, xpath.OpMod:
		l, err := e.evalExpr(b.Left, c)
		if err != nil {
			return nil, err
		}
		r, err := e.evalExpr(b.Right, c)
		if err != nil {
			return nil, err
		}
		x, y := e.num(l), e.num(r)
		switch b.Op {
		case xpath.OpAdd:
			return x + y, nil
		case xpath.OpSub:
			return x - y, nil
		case xpath.OpMul:
			return x * y, nil
		case xpath.OpDiv:
			return x / y, nil
		default:
			return math.Mod(x, y), nil
		}
	default:
		l, err := e.evalExpr(b.Left, c)
		if err != nil {
			return nil, err
		}
		r, err := e.evalExpr(b.Right, c)
		if err != nil {
			return nil, err
		}
		return e.compare(b.Op, l, r), nil
	}
}

func (e *Engine) compare(op xpath.BinaryOp, l, r any) bool {
	lns, lok := l.(nodeSet)
	rns, rok := r.(nodeSet)
	rel := op == xpath.OpLt || op == xpath.OpLte || op == xpath.OpGt || op == xpath.OpGte
	cmpS := func(a, b string) bool {
		switch op {
		case xpath.OpEq:
			return a == b
		case xpath.OpNeq:
			return a != b
		}
		return false
	}
	cmpN := func(a, b float64) bool {
		switch op {
		case xpath.OpEq:
			return a == b
		case xpath.OpNeq:
			return a != b
		case xpath.OpLt:
			return a < b
		case xpath.OpLte:
			return a <= b
		case xpath.OpGt:
			return a > b
		case xpath.OpGte:
			return a >= b
		}
		return false
	}
	switch {
	case lok && rok:
		for _, a := range lns {
			for _, b := range rns {
				if rel {
					if cmpN(toNum(a.StringValue()), toNum(b.StringValue())) {
						return true
					}
				} else if cmpS(a.StringValue(), b.StringValue()) {
					return true
				}
			}
		}
		return false
	case lok || rok:
		ns, other, flip := lns, r, false
		if rok {
			ns, other, flip = rns, l, true
		}
		if ob, isB := other.(bool); isB {
			a, b := len(ns) > 0, ob
			if flip {
				a, b = b, a
			}
			return cmpN(boolNum(a), boolNum(b))
		}
		for _, n := range ns {
			sv := n.StringValue()
			var hit bool
			if onum, isN := other.(float64); isN || rel {
				var b float64
				if isN {
					b = onum
				} else {
					b = e.num(other)
				}
				a := toNum(sv)
				if flip {
					a, b = b, a
				}
				hit = cmpN(a, b)
			} else {
				a, b := sv, e.str(other)
				if flip {
					a, b = b, a
				}
				hit = cmpS(a, b)
			}
			if hit {
				return true
			}
		}
		return false
	default:
		if _, isB := l.(bool); isB {
			return cmpN(boolNum(e.bool_(l)), boolNum(e.bool_(r)))
		}
		if _, isB := r.(bool); isB {
			return cmpN(boolNum(e.bool_(l)), boolNum(e.bool_(r)))
		}
		if rel {
			return cmpN(e.num(l), e.num(r))
		}
		if _, isN := l.(float64); isN {
			return cmpN(e.num(l), e.num(r))
		}
		if _, isN := r.(float64); isN {
			return cmpN(e.num(l), e.num(r))
		}
		return cmpS(e.str(l), e.str(r))
	}
}

func boolNum(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (e *Engine) evalFunc(f *xpath.FuncCall, c evalCtx) (any, error) {
	arg := func(i int) (any, error) { return e.evalExpr(f.Args[i], c) }
	switch f.Name {
	case "position":
		return float64(c.pos), nil
	case "last":
		return float64(c.last), nil
	case "count":
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		ns, ok := v.(nodeSet)
		if !ok {
			return nil, fmt.Errorf("dom: count() needs a node set")
		}
		return float64(len(e.ordered(ns))), nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	case "not":
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		return !e.bool_(v), nil
	case "boolean":
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		return e.bool_(v), nil
	case "number":
		if len(f.Args) == 0 {
			return toNum(c.node.StringValue()), nil
		}
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		return e.num(v), nil
	case "string":
		if len(f.Args) == 0 {
			return c.node.StringValue(), nil
		}
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		return e.str(v), nil
	case "concat":
		var b strings.Builder
		for i := range f.Args {
			v, err := arg(i)
			if err != nil {
				return nil, err
			}
			b.WriteString(e.str(v))
		}
		return b.String(), nil
	case "contains":
		a, err := arg(0)
		if err != nil {
			return nil, err
		}
		b, err := arg(1)
		if err != nil {
			return nil, err
		}
		return strings.Contains(e.str(a), e.str(b)), nil
	case "starts-with":
		a, err := arg(0)
		if err != nil {
			return nil, err
		}
		b, err := arg(1)
		if err != nil {
			return nil, err
		}
		return strings.HasPrefix(e.str(a), e.str(b)), nil
	case "string-length":
		if len(f.Args) == 0 {
			return float64(len([]rune(c.node.StringValue()))), nil
		}
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		return float64(len([]rune(e.str(v)))), nil
	case "normalize-space":
		s := ""
		if len(f.Args) == 0 {
			s = c.node.StringValue()
		} else {
			v, err := arg(0)
			if err != nil {
				return nil, err
			}
			s = e.str(v)
		}
		return strings.Join(strings.Fields(s), " "), nil
	case "name", "local-name":
		n := c.node
		if len(f.Args) == 1 {
			v, err := arg(0)
			if err != nil {
				return nil, err
			}
			ns, ok := v.(nodeSet)
			if !ok || len(ns) == 0 {
				return "", nil
			}
			n = e.ordered(ns)[0]
		}
		return n.Name, nil
	case "sum":
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		ns, ok := v.(nodeSet)
		if !ok {
			return nil, fmt.Errorf("dom: sum() needs a node set")
		}
		total := 0.0
		for _, n := range ns {
			total += toNum(n.StringValue())
		}
		return total, nil
	case "floor", "ceiling", "round":
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		n := e.num(v)
		switch f.Name {
		case "floor":
			return math.Floor(n), nil
		case "ceiling":
			return math.Ceil(n), nil
		default:
			return math.Round(n), nil
		}
	default:
		return nil, fmt.Errorf("dom: unknown function %s()", f.Name)
	}
}

func (e *Engine) bool_(v any) bool {
	switch t := v.(type) {
	case bool:
		return t
	case float64:
		return t != 0 && !math.IsNaN(t)
	case string:
		return len(t) > 0
	case nodeSet:
		return len(t) > 0
	}
	return false
}

func (e *Engine) num(v any) float64 {
	switch t := v.(type) {
	case float64:
		return t
	case bool:
		return boolNum(t)
	case string:
		return toNum(t)
	case nodeSet:
		return toNum(e.str(v))
	}
	return math.NaN()
}

func (e *Engine) str(v any) string {
	switch t := v.(type) {
	case string:
		return t
	case bool:
		if t {
			return "true"
		}
		return "false"
	case float64:
		if t == math.Trunc(t) && !math.IsInf(t, 0) && math.Abs(t) < 1e15 {
			return strconv.FormatInt(int64(t), 10)
		}
		return strconv.FormatFloat(t, 'g', -1, 64)
	case nodeSet:
		if len(t) == 0 {
			return ""
		}
		first := t[0]
		for _, n := range t[1:] {
			if n.Pos < first.Pos {
				first = n
			}
		}
		return first.StringValue()
	}
	return ""
}

func toNum(s string) float64 {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return math.NaN()
	}
	return f
}

// Keys returns the FLEX keys of a result node list, for cross-engine
// comparisons.
func Keys(ns []*Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = string(n.Key)
	}
	sort.Strings(out)
	return out
}
