// Package dom implements a DOM-based XPath engine in the style of Jaxen
// and Galax as characterized by the paper (§II): the entire document is
// materialized in main memory and queries are evaluated by conventional
// top-down tree traversal with fully materialized intermediate node sets.
//
// It exists for two reasons: it is one of the comparison engines of the
// experimental study (§VIII), and — because it is simple enough to audit —
// it serves as the differential-testing oracle for the VAMANA engine.
package dom

import (
	"fmt"
	"io"
	"sort"

	"vamana/internal/flex"
	"vamana/internal/mass"
	"vamana/internal/xmldoc"
	"vamana/internal/xpath"
)

// Node is a DOM node with full parent/child links.
type Node struct {
	Kind     xmldoc.Kind
	Name     string
	Value    string
	Key      flex.Key // retained so results can be compared across engines
	Parent   *Node
	Children []*Node // child content (elements, text, comments, PIs)
	Attrs    []*Node // attribute and namespace nodes
	Pos      int     // document-order index
}

// Document is a fully materialized XML document.
type Document struct {
	Root  *Node // the document node
	Nodes []*Node
}

// Parse builds the DOM from r. This is the step whose memory footprint
// bounds DOM engines ("the maximum document size is bounded by the amount
// of physical main memory", §I).
func Parse(r io.Reader) (*Document, error) {
	d := &Document{}
	stack := []*Node{}
	err := xmldoc.Parse(r, func(n xmldoc.Node) error {
		node := &Node{Kind: n.Kind, Name: n.Name, Value: n.Value, Key: n.Key, Pos: len(d.Nodes)}
		d.Nodes = append(d.Nodes, node)
		if n.Kind == xmldoc.KindDocument {
			d.Root = node
			stack = append(stack[:0], node)
			return nil
		}
		// Pop to the node's parent (keys encode ancestry).
		for len(stack) > 0 && stack[len(stack)-1].Key != n.Key.Parent() {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			return fmt.Errorf("dom: orphan node %q", n.Key)
		}
		parent := stack[len(stack)-1]
		node.Parent = parent
		switch n.Kind {
		case xmldoc.KindAttribute, xmldoc.KindNamespace:
			parent.Attrs = append(parent.Attrs, node)
		default:
			parent.Children = append(parent.Children, node)
			if n.Kind == xmldoc.KindElement {
				stack = append(stack, node)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// StringValue computes the XPath string-value of n.
func (n *Node) StringValue() string {
	switch n.Kind {
	case xmldoc.KindElement, xmldoc.KindDocument:
		var out []byte
		var walk func(*Node)
		walk = func(m *Node) {
			if m.Kind == xmldoc.KindText {
				out = append(out, m.Value...)
			}
			for _, c := range m.Children {
				walk(c)
			}
		}
		walk(n)
		return string(out)
	default:
		return n.Value
	}
}

// Options tunes the engine to model a specific published system's
// behavior. The zero value is the full Jaxen-style engine.
type Options struct {
	// UnsupportedAxes lists axes the engine rejects, modelling Galax's
	// axis gaps the paper reports ("Galax does not support certain axes
	// like following-sibling", §VIII).
	UnsupportedAxes []mass.Axis
	// SortEveryStep re-sorts and deduplicates the node set after every
	// location step (Galax's set semantics), adding per-step overhead.
	SortEveryStep bool
	// MaxDocumentBytes, when > 0, refuses documents larger than this,
	// modelling the published size limits (Jaxen >= 10 MB fails, §II).
	MaxDocumentBytes int
}

// ErrUnsupportedAxis is returned when the engine is configured without an
// axis a query requires.
type ErrUnsupportedAxis struct{ Axis mass.Axis }

func (e *ErrUnsupportedAxis) Error() string {
	return fmt.Sprintf("dom: axis %s is not supported by this engine", e.Axis)
}

// Engine evaluates XPath queries over one Document.
type Engine struct {
	doc  *Document
	opts Options
	bad  map[mass.Axis]bool
}

// New creates an engine over doc.
func New(doc *Document, opts Options) *Engine {
	bad := map[mass.Axis]bool{}
	for _, a := range opts.UnsupportedAxes {
		bad[a] = true
	}
	return &Engine{doc: doc, opts: opts, bad: bad}
}

// Eval parses and evaluates expr with the document root as context,
// returning the resulting node set in document order.
func (e *Engine) Eval(expr string) ([]*Node, error) {
	ast, err := xpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	v, err := e.evalExpr(ast, evalCtx{node: e.doc.Root, pos: 1, last: 1})
	if err != nil {
		return nil, err
	}
	ns, ok := v.(nodeSet)
	if !ok {
		return nil, fmt.Errorf("dom: expression %q is not a node set", expr)
	}
	return e.ordered(ns), nil
}

// EvalPredicate evaluates a predicate expression against one context node
// with explicit proximity position and context size, returning the XPath
// truth value (numeric results compare against the position). The
// path-join baseline uses this as its "switch back to conventional
// memory-based tree traversal" for value predicates (paper §II on eXist).
func (e *Engine) EvalPredicate(expr xpath.Expr, ctx *Node, pos, last int) (bool, error) {
	v, err := e.evalExpr(expr, evalCtx{node: ctx, pos: pos, last: last})
	if err != nil {
		return false, err
	}
	if n, ok := v.(float64); ok {
		return float64(pos) == n, nil
	}
	return e.bool_(v), nil
}

// ordered sorts a node set into document order and removes duplicates.
func (e *Engine) ordered(ns nodeSet) []*Node {
	out := append([]*Node(nil), ns...)
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	dedup := out[:0]
	var prev *Node
	for _, n := range out {
		if n != prev {
			dedup = append(dedup, n)
		}
		prev = n
	}
	return dedup
}

// axisNodes materializes the axis node list from ctx, in axis order. This
// is the naive traversal at the heart of the DOM strategy: no indexes,
// just pointer chasing over the whole (sub)tree.
func (e *Engine) axisNodes(ctx *Node, axis mass.Axis) ([]*Node, error) {
	if e.bad[axis] {
		return nil, &ErrUnsupportedAxis{Axis: axis}
	}
	var out []*Node
	switch axis {
	case mass.AxisSelf:
		out = []*Node{ctx}
	case mass.AxisChild:
		out = append(out, ctx.Children...)
	case mass.AxisDescendant, mass.AxisDescendantOrSelf:
		if axis == mass.AxisDescendantOrSelf {
			out = append(out, ctx)
		}
		var walk func(*Node)
		walk = func(n *Node) {
			for _, c := range n.Children {
				out = append(out, c)
				walk(c)
			}
		}
		walk(ctx)
	case mass.AxisParent:
		if ctx.Parent != nil {
			out = []*Node{ctx.Parent}
		}
	case mass.AxisAncestor, mass.AxisAncestorOrSelf:
		if axis == mass.AxisAncestorOrSelf {
			out = append(out, ctx)
		}
		for p := ctx.Parent; p != nil; p = p.Parent {
			out = append(out, p)
		}
	case mass.AxisFollowing:
		// Walk the whole document after ctx, skipping ctx's subtree.
		inSubtree := func(n *Node) bool {
			for p := n; p != nil; p = p.Parent {
				if p == ctx {
					return true
				}
			}
			return false
		}
		for _, n := range e.doc.Nodes {
			if n.Pos > ctx.Pos && n.Kind != xmldoc.KindAttribute && n.Kind != xmldoc.KindNamespace && !inSubtree(n) {
				out = append(out, n)
			}
		}
	case mass.AxisPreceding:
		isAncestor := func(n *Node) bool {
			for p := ctx.Parent; p != nil; p = p.Parent {
				if p == n {
					return true
				}
			}
			return false
		}
		for i := len(e.doc.Nodes) - 1; i >= 0; i-- {
			n := e.doc.Nodes[i]
			if n.Pos < ctx.Pos && n.Kind != xmldoc.KindAttribute && n.Kind != xmldoc.KindNamespace && !isAncestor(n) {
				out = append(out, n)
			}
		}
	case mass.AxisFollowingSibling:
		if ctx.Parent != nil && ctx.Kind != xmldoc.KindAttribute && ctx.Kind != xmldoc.KindNamespace {
			found := false
			for _, s := range ctx.Parent.Children {
				if found {
					out = append(out, s)
				}
				if s == ctx {
					found = true
				}
			}
		}
	case mass.AxisPrecedingSibling:
		if ctx.Parent != nil && ctx.Kind != xmldoc.KindAttribute && ctx.Kind != xmldoc.KindNamespace {
			var before []*Node
			for _, s := range ctx.Parent.Children {
				if s == ctx {
					break
				}
				before = append(before, s)
			}
			for i := len(before) - 1; i >= 0; i-- {
				out = append(out, before[i])
			}
		}
	case mass.AxisAttribute:
		for _, a := range ctx.Attrs {
			if a.Kind == xmldoc.KindAttribute {
				out = append(out, a)
			}
		}
	case mass.AxisNamespace:
		seen := map[string]bool{}
		for n := ctx; n != nil; n = n.Parent {
			for _, a := range n.Attrs {
				if a.Kind == xmldoc.KindNamespace && !seen[a.Name] {
					seen[a.Name] = true
					out = append(out, a)
				}
			}
		}
	default:
		return nil, &ErrUnsupportedAxis{Axis: axis}
	}
	return out, nil
}

func matches(n *Node, test mass.NodeTest, axis mass.Axis) bool {
	return test.Matches(xmldoc.Node{Kind: n.Kind, Name: n.Name, Value: n.Value}, axis.Principal())
}
