// Package pathjoin implements an eXist-style native XPath engine as the
// paper characterizes it (§II): elements and attributes are indexed by
// name in inverted lists, location steps are evaluated with structural
// path-join algorithms over those lists, and value predicates fall back to
// conventional in-memory tree traversal. The DOM itself is kept in an XML
// data store (here: the dom package's document).
//
// Like eXist at the time of the study, the engine does not support the
// horizontal axes (following, following-sibling, preceding,
// preceding-sibling) and refuses documents beyond a configurable size.
package pathjoin

import (
	"fmt"
	"io"
	"sort"

	"vamana/internal/baseline/dom"
	"vamana/internal/mass"
	"vamana/internal/xmldoc"
	"vamana/internal/xpath"
)

// Options tunes the engine.
type Options struct {
	// MaxDocumentBytes models eXist's document size limit ("eXist is
	// unable [to] store large complex documents having sizes >= 20Mb",
	// §VIII). 0 disables the check.
	MaxDocumentBytes int
}

// ErrTooLarge is returned when a document exceeds the configured limit.
type ErrTooLarge struct{ Size, Limit int }

func (e *ErrTooLarge) Error() string {
	return fmt.Sprintf("pathjoin: document of %d bytes exceeds the %d byte store limit", e.Size, e.Limit)
}

// Engine is a path-join XPath evaluator over one document.
type Engine struct {
	doc      *dom.Document
	fallback *dom.Engine // tree-traversal fallback for predicates

	names map[string][]*dom.Node // element name -> nodes, document order
	attrs map[string][]*dom.Node // attribute name -> nodes, document order
	end   map[*dom.Node]int      // subtree interval end (max Pos in subtree)
}

// New parses and indexes the document from src (a string keeps the size
// check honest).
func New(src string, opts Options) (*Engine, error) {
	if opts.MaxDocumentBytes > 0 && len(src) > opts.MaxDocumentBytes {
		return nil, &ErrTooLarge{Size: len(src), Limit: opts.MaxDocumentBytes}
	}
	d, err := dom.Parse(readerOf(src))
	if err != nil {
		return nil, err
	}
	e := &Engine{
		doc:      d,
		fallback: dom.New(d, dom.Options{}),
		names:    map[string][]*dom.Node{},
		attrs:    map[string][]*dom.Node{},
		end:      make(map[*dom.Node]int, len(d.Nodes)),
	}
	// Build the inverted name indexes ("eXist indexes elements or
	// attributes based on their corresponding names", §II) and the
	// subtree intervals the structural joins merge on.
	for _, n := range d.Nodes {
		switch n.Kind {
		case xmldoc.KindElement:
			e.names[n.Name] = append(e.names[n.Name], n)
		case xmldoc.KindAttribute:
			e.attrs[n.Name] = append(e.attrs[n.Name], n)
		}
	}
	var assign func(n *dom.Node) int
	assign = func(n *dom.Node) int {
		maxPos := n.Pos
		for _, a := range n.Attrs {
			e.end[a] = a.Pos
			if a.Pos > maxPos {
				maxPos = a.Pos
			}
		}
		for _, c := range n.Children {
			if m := assign(c); m > maxPos {
				maxPos = m
			}
		}
		e.end[n] = maxPos
		return maxPos
	}
	assign(d.Root)
	return e, nil
}

func readerOf(s string) io.Reader { return &stringReader{s: s} }

// stringReader avoids importing strings just for NewReader.
type stringReader struct {
	s string
	i int
}

func (r *stringReader) Read(p []byte) (int, error) {
	if r.i >= len(r.s) {
		return 0, io.EOF
	}
	n := copy(p, r.s[r.i:])
	r.i += n
	return n, nil
}

// ErrUnsupportedAxis reports an axis outside the engine's join algebra.
type ErrUnsupportedAxis struct{ Axis mass.Axis }

func (e *ErrUnsupportedAxis) Error() string {
	return fmt.Sprintf("pathjoin: axis %s is not supported by the path-join engine", e.Axis)
}

// Eval evaluates a location path (or union of paths) and returns the
// result node set in document order.
func (e *Engine) Eval(expr string) ([]*dom.Node, error) {
	ast, err := xpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	ns, err := e.evalExpr(ast)
	if err != nil {
		return nil, err
	}
	return ns, nil
}

func (e *Engine) evalExpr(ast xpath.Expr) ([]*dom.Node, error) {
	switch t := ast.(type) {
	case *xpath.LocationPath:
		return e.evalPath(t, e.doc.Root)
	case *xpath.Binary:
		if t.Op == xpath.OpUnion {
			l, err := e.evalExpr(t.Left)
			if err != nil {
				return nil, err
			}
			r, err := e.evalExpr(t.Right)
			if err != nil {
				return nil, err
			}
			return orderedMerge(l, r), nil
		}
	}
	return nil, fmt.Errorf("pathjoin: expression is not a location path")
}

// evalPath evaluates the steps with set-at-a-time structural joins.
func (e *Engine) evalPath(lp *xpath.LocationPath, root *dom.Node) ([]*dom.Node, error) {
	cur := []*dom.Node{root}
	for _, step := range lp.Steps {
		next, err := e.evalStep(cur, step)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

func (e *Engine) evalStep(cur []*dom.Node, step *xpath.Step) ([]*dom.Node, error) {
	cand, err := e.axisJoin(cur, step.Axis, step.Test)
	if err != nil {
		return nil, err
	}
	// Predicates: switch back to tree traversal, per eXist (§II). The
	// join algebra only covers the axis/nodetest part of a step.
	for _, pred := range step.Predicates {
		kept := cand[:0:0]
		for i, n := range cand {
			ok, err := e.fallback.EvalPredicate(pred, n, i+1, len(cand))
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, n)
			}
		}
		cand = kept
	}
	return cand, nil
}

// axisJoin computes the axis step with a structural join between the
// current node set and the name index's candidate list.
func (e *Engine) axisJoin(cur []*dom.Node, axis mass.Axis, test mass.NodeTest) ([]*dom.Node, error) {
	switch axis {
	case mass.AxisChild:
		cand := e.candidates(test, xmldoc.KindElement)
		if cand == nil {
			// No indexed list for this test: scan children directly.
			return e.scanChildren(cur, test), nil
		}
		inSet := make(map[*dom.Node]bool, len(cur))
		for _, n := range cur {
			inSet[n] = true
		}
		var out []*dom.Node
		for _, c := range cand {
			if c.Parent != nil && inSet[c.Parent] {
				out = append(out, c)
			}
		}
		return out, nil
	case mass.AxisDescendant, mass.AxisDescendantOrSelf:
		cand := e.candidates(test, xmldoc.KindElement)
		if cand == nil {
			return e.scanDescendants(cur, test, axis == mass.AxisDescendantOrSelf), nil
		}
		out := e.descendantJoin(cur, cand)
		if axis == mass.AxisDescendantOrSelf {
			var selves []*dom.Node
			for _, n := range cur {
				if matchNode(n, test) {
					selves = append(selves, n)
				}
			}
			out = orderedMerge(out, selves)
		}
		return out, nil
	case mass.AxisParent:
		seen := map[*dom.Node]bool{}
		var out []*dom.Node
		for _, n := range cur {
			p := n.Parent
			if p != nil && !seen[p] && matchNode(p, test) {
				seen[p] = true
				out = append(out, p)
			}
		}
		sortNodes(out)
		return out, nil
	case mass.AxisAncestor, mass.AxisAncestorOrSelf:
		seen := map[*dom.Node]bool{}
		var out []*dom.Node
		for _, n := range cur {
			start := n.Parent
			if axis == mass.AxisAncestorOrSelf {
				start = n
			}
			for p := start; p != nil; p = p.Parent {
				if !seen[p] {
					seen[p] = true
					if matchNode(p, test) {
						out = append(out, p)
					}
				}
			}
		}
		sortNodes(out)
		return out, nil
	case mass.AxisSelf:
		var out []*dom.Node
		for _, n := range cur {
			if matchNode(n, test) {
				out = append(out, n)
			}
		}
		return out, nil
	case mass.AxisAttribute:
		if test.Type == mass.TestName {
			cand := e.attrs[test.Name]
			inSet := make(map[*dom.Node]bool, len(cur))
			for _, n := range cur {
				inSet[n] = true
			}
			var out []*dom.Node
			for _, a := range cand {
				if inSet[a.Parent] {
					out = append(out, a)
				}
			}
			return out, nil
		}
		var out []*dom.Node
		for _, n := range cur {
			for _, a := range n.Attrs {
				if a.Kind == xmldoc.KindAttribute && test.Matches(nodeView(a), xmldoc.KindAttribute) {
					out = append(out, a)
				}
			}
		}
		return out, nil
	default:
		// following(-sibling), preceding(-sibling), namespace: outside
		// the engine's join algebra, as the paper reports for eXist.
		return nil, &ErrUnsupportedAxis{Axis: axis}
	}
}

// candidates returns the inverted-list candidates for a test, or nil when
// the test has no name list (wildcards, text(), node() ...).
func (e *Engine) candidates(test mass.NodeTest, kind xmldoc.Kind) []*dom.Node {
	if test.Type != mass.TestName {
		return nil
	}
	if kind == xmldoc.KindAttribute {
		return e.attrs[test.Name]
	}
	return e.names[test.Name]
}

// descendantJoin is the classic sorted structural join: both lists are in
// document order; a stack of open intervals from `cur` decides containment
// in O(|cur| + |cand|).
func (e *Engine) descendantJoin(cur, cand []*dom.Node) []*dom.Node {
	var out []*dom.Node
	var stack []*dom.Node
	ci := 0
	for _, c := range cand {
		// Pop intervals that end before this candidate starts.
		for len(stack) > 0 && e.end[stack[len(stack)-1]] < c.Pos {
			stack = stack[:len(stack)-1]
		}
		// Push intervals that start before this candidate.
		for ci < len(cur) && cur[ci].Pos < c.Pos {
			if e.end[cur[ci]] >= c.Pos {
				stack = append(stack, cur[ci])
			}
			ci++
		}
		if len(stack) > 0 {
			out = append(out, c)
		}
	}
	return out
}

func (e *Engine) scanChildren(cur []*dom.Node, test mass.NodeTest) []*dom.Node {
	var out []*dom.Node
	for _, n := range cur {
		for _, c := range n.Children {
			if matchAny(c, test) {
				out = append(out, c)
			}
		}
	}
	sortNodes(out)
	return dedup(out)
}

func (e *Engine) scanDescendants(cur []*dom.Node, test mass.NodeTest, orSelf bool) []*dom.Node {
	var out []*dom.Node
	var walk func(n *dom.Node)
	walk = func(n *dom.Node) {
		for _, c := range n.Children {
			if matchAny(c, test) {
				out = append(out, c)
			}
			walk(c)
		}
	}
	for _, n := range cur {
		if orSelf && matchAny(n, test) {
			out = append(out, n)
		}
		walk(n)
	}
	sortNodes(out)
	return dedup(out)
}

func nodeView(n *dom.Node) xmldoc.Node {
	return xmldoc.Node{Kind: n.Kind, Name: n.Name, Value: n.Value}
}

// matchNode matches element-principal tests.
func matchNode(n *dom.Node, test mass.NodeTest) bool {
	return test.Matches(nodeView(n), xmldoc.KindElement)
}

// matchAny matches element-principal tests but lets node()/text() accept
// non-element child content.
func matchAny(n *dom.Node, test mass.NodeTest) bool {
	return test.Matches(nodeView(n), xmldoc.KindElement)
}

func sortNodes(ns []*dom.Node) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].Pos < ns[j].Pos })
}

func dedup(ns []*dom.Node) []*dom.Node {
	out := ns[:0]
	var prev *dom.Node
	for _, n := range ns {
		if n != prev {
			out = append(out, n)
		}
		prev = n
	}
	return out
}

func orderedMerge(a, b []*dom.Node) []*dom.Node {
	out := append(append([]*dom.Node{}, a...), b...)
	sortNodes(out)
	return dedup(out)
}
