package pathjoin

import (
	"errors"
	"strings"
	"testing"

	"vamana/internal/baseline/dom"
	"vamana/internal/xmark"
)

func oracleFor(t *testing.T, src string) *dom.Engine {
	t.Helper()
	doc, err := dom.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return dom.New(doc, dom.Options{})
}

// TestDifferentialAgainstDOM cross-checks the join engine against the DOM
// oracle on every axis it supports.
func TestDifferentialAgainstDOM(t *testing.T) {
	src := xmark.GenerateString(xmark.Config{Factor: 0.003, Seed: 31})
	e, err := New(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := oracleFor(t, src)

	queries := []string{
		"//person",
		"//person/address",
		"//person/address/city",
		"/site/people/person",
		"//address/parent::person",
		"//city/ancestor::person",
		"//watch/ancestor-or-self::*",
		"//person/@id",
		"//person[address]",
		"//person[address/province]",
		"//province[text()='Vermont']/ancestor::person",
		"//address[zipcode > 50]",
		"//person[2]",
		"//person/descendant-or-self::address",
		"//name | //city",
		"//person[name='Yung Flach']",
	}
	for _, q := range queries {
		got, err := e.Eval(q)
		if err != nil {
			t.Errorf("pathjoin eval %q: %v", q, err)
			continue
		}
		want, err := oracle.Eval(q)
		if err != nil {
			t.Fatalf("oracle eval %q: %v", q, err)
		}
		g, w := dom.Keys(got), dom.Keys(want)
		if len(g) != len(w) {
			t.Errorf("%q: pathjoin %d keys, oracle %d", q, len(g), len(w))
			continue
		}
		for i := range g {
			if g[i] != w[i] {
				t.Errorf("%q: key %d differs: %s vs %s", q, i, g[i], w[i])
				break
			}
		}
	}
}

func TestUnsupportedAxes(t *testing.T) {
	src := xmark.GenerateString(xmark.Config{Factor: 0.001, Seed: 32})
	e, err := New(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"//itemref/following-sibling::price",
		"//price/preceding-sibling::itemref",
		"//name/following::city",
		"//city/preceding::name",
	} {
		if _, err := e.Eval(q); err == nil {
			t.Errorf("%q: expected unsupported-axis error", q)
		} else {
			var ua *ErrUnsupportedAxis
			if !errors.As(err, &ua) {
				t.Errorf("%q: error type %T", q, err)
			}
		}
	}
}

func TestSizeLimit(t *testing.T) {
	src := xmark.GenerateString(xmark.Config{Factor: 0.001, Seed: 33})
	if _, err := New(src, Options{MaxDocumentBytes: 1000}); err == nil {
		t.Fatal("expected size-limit error")
	} else {
		var tl *ErrTooLarge
		if !errors.As(err, &tl) {
			t.Fatalf("error type %T", err)
		}
	}
	if _, err := New(src, Options{MaxDocumentBytes: len(src) + 1}); err != nil {
		t.Fatalf("within limit: %v", err)
	}
}

func TestStructuralJoinCorners(t *testing.T) {
	// Nested same-name elements stress the interval stack.
	src := `<r><a><a><b/><a><b/></a></a></a><b/><a><b/></a></r>`
	e, err := New(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := oracleFor(t, src)
	for _, q := range []string{"//a//b", "//a/b", "//a//a", "//a/a", "//b/ancestor::a"} {
		got, err := e.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := oracle.Eval(q)
		if len(dom.Keys(got)) != len(dom.Keys(want)) {
			t.Errorf("%q: %d vs %d", q, len(got), len(want))
		}
	}
}

// TestDifferentialRandomDocs stresses the structural joins on dense
// random structures (nested repeated names) against the DOM oracle.
func TestDifferentialRandomDocs(t *testing.T) {
	build := func(seed int64) string {
		// A deterministic deeply-nested same-name document.
		var b strings.Builder
		b.WriteString("<r>")
		names := []string{"a", "b", "c"}
		depth := 0
		var stack []string
		n := int(seed%3) + 250
		for i := 0; i < n; i++ {
			if depth > 0 && (i+int(seed))%3 == 0 {
				b.WriteString("</" + stack[len(stack)-1] + ">")
				stack = stack[:len(stack)-1]
				depth--
				continue
			}
			nm := names[(i*7+int(seed))%3]
			b.WriteString("<" + nm + ">")
			if (i+1)%4 == 0 {
				b.WriteString("t")
			}
			if i%2 == 0 {
				b.WriteString("</" + nm + ">")
			} else {
				stack = append(stack, nm)
				depth++
			}
		}
		for len(stack) > 0 {
			b.WriteString("</" + stack[len(stack)-1] + ">")
			stack = stack[:len(stack)-1]
		}
		b.WriteString("</r>")
		return b.String()
	}
	queries := []string{
		"//a", "//a//b", "//a/b", "//b/parent::a", "//c/ancestor::a",
		"//a[b]", "//a/descendant-or-self::a", "//b[text()='t']",
		"//a//a//a", "//b/ancestor-or-self::*",
	}
	for seed := int64(1); seed <= 5; seed++ {
		src := build(seed)
		e, err := New(src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		oracle := oracleFor(t, src)
		for _, q := range queries {
			got, err := e.Eval(q)
			if err != nil {
				t.Fatalf("seed %d %q: %v", seed, q, err)
			}
			want, err := oracle.Eval(q)
			if err != nil {
				t.Fatal(err)
			}
			gk, wk := dom.Keys(got), dom.Keys(want)
			if len(gk) != len(wk) {
				t.Errorf("seed %d %q: pathjoin %d, oracle %d", seed, q, len(gk), len(wk))
				continue
			}
			for i := range gk {
				if gk[i] != wk[i] {
					t.Errorf("seed %d %q: key %d differs", seed, q, i)
					break
				}
			}
		}
	}
}
