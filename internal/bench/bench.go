// Package bench is the experiment harness for the paper's evaluation
// (§VIII): it generates XMark documents at the study's sizes, loads them
// into each engine, runs the five workload queries and reports execution
// times. cmd/vbench prints the figure series; the repository-root
// benchmarks time the same runs under testing.B.
package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"vamana/internal/baseline/dom"
	"vamana/internal/baseline/galax"
	"vamana/internal/baseline/pathjoin"
	"vamana/internal/core"
	"vamana/internal/mass"
	"vamana/internal/xmark"
)

// Query is one workload query of the experimental study.
type Query struct {
	ID    string // "Q1".."Q5"
	Fig   string // the figure it reproduces
	XPath string
}

// Queries are the five queries of §VIII, covering major forward and
// reverse axes and predicate expressions.
var Queries = []Query{
	{ID: "Q1", Fig: "Fig12", XPath: "//person/address"},
	{ID: "Q2", Fig: "Fig13", XPath: "//watches/watch/ancestor::person"},
	{ID: "Q3", Fig: "Fig14", XPath: "/descendant::name/parent::*/self::person/address"},
	{ID: "Q4", Fig: "Fig15", XPath: "//itemref/following-sibling::price/parent::*"},
	{ID: "Q5", Fig: "Fig16", XPath: "//province[text()='Vermont']/ancestor::person"},
}

// QueryByID resolves a workload query.
func QueryByID(id string) (Query, bool) {
	for _, q := range Queries {
		if q.ID == id {
			return q, true
		}
	}
	return Query{}, false
}

// Engine identifies one of the five engines compared in the study.
type Engine string

// The engines of the study. Galax, Jaxen and eXist are Go
// reimplementations of those systems' evaluation strategies as the paper
// describes them; VQP and VQP-OPT are VAMANA without and with the
// cost-driven optimizer.
const (
	EngineGalax  Engine = "Galax"
	EngineJaxen  Engine = "Jaxen"
	EngineEXist  Engine = "eXist"
	EngineVQP    Engine = "VQP"
	EngineVQPOpt Engine = "VQP-OPT"
)

// AllEngines lists the engines in the paper's chart order.
var AllEngines = []Engine{EngineGalax, EngineJaxen, EngineEXist, EngineVQP, EngineVQPOpt}

// Paper-documented capacity limits (§II, §VIII), applied when a Fixture
// is built with Faithful limits: Jaxen cannot handle documents >= 10 MB,
// eXist cannot store documents >= 20 MB, Galax times out beyond 30 MB.
const (
	JaxenLimitBytes = 10 << 20
	EXistLimitBytes = 20 << 20
	GalaxLimitBytes = 30 << 20
)

// ErrCapacity marks a configuration the original engine could not run, so
// harness output can show the paper's missing data points.
var ErrCapacity = errors.New("bench: document exceeds the engine's published capacity")

// Fixture is one generated document loaded into every engine on demand.
type Fixture struct {
	SizeBytes int
	Seed      int64
	// Faithful applies the published per-engine document-size limits so
	// that chart series stop where the paper's did.
	Faithful bool

	src string

	engine *core.Engine
	doc    mass.DocID

	domEng   *dom.Engine
	galaxEng *galax.Engine
	joinEng  *pathjoin.Engine
}

// NewFixture generates an XMark document of roughly target bytes and
// indexes it in VAMANA. Baseline engines are built lazily on first use.
func NewFixture(target int, seed int64, faithful bool) (*Fixture, error) {
	return NewFixtureExecBatch(target, seed, faithful, 0)
}

// NewFixtureExecBatch is NewFixture with an explicit executor pull-batch
// size for the VAMANA engine (0 = default) — the vbench -batch flag and
// the batch-size sweep use it.
func NewFixtureExecBatch(target int, seed int64, faithful bool, execBatch int) (*Fixture, error) {
	f := &Fixture{SizeBytes: target, Seed: seed, Faithful: faithful}
	f.src = xmark.GenerateString(xmark.Config{Factor: xmark.FactorForBytes(target), Seed: seed})
	var err error
	f.engine, err = core.Open(core.Options{ExecBatch: execBatch})
	if err != nil {
		return nil, err
	}
	f.doc, err = f.engine.LoadString("auction", f.src)
	if err != nil {
		f.engine.Close()
		return nil, err
	}
	return f, nil
}

// Close releases the fixture's stores.
func (f *Fixture) Close() error {
	if f.engine != nil {
		return f.engine.Close()
	}
	return nil
}

// ActualBytes returns the generated document's real size.
func (f *Fixture) ActualBytes() int { return len(f.src) }

// Source exposes the generated XML (e.g. to dump it to disk).
func (f *Fixture) Source() string { return f.src }

// VamanaEngine exposes the underlying engine (for EXPLAIN output).
func (f *Fixture) VamanaEngine() (*core.Engine, mass.DocID) { return f.engine, f.doc }

// Result is one timed query execution.
type Result struct {
	Engine   Engine
	Query    Query
	Size     int
	Count    int           // result cardinality
	Duration time.Duration // execution only; parse/load/optimize excluded
	OptTime  time.Duration // compile+optimize time (VQP-OPT only)
	Err      error         // capacity or axis-support failure
}

// Run executes one query on one engine, timing only query execution (the
// paper records "the total CPU elapsed time used for query execution";
// document loading and engine construction are excluded).
func (f *Fixture) Run(e Engine, q Query) Result {
	r := Result{Engine: e, Query: q, Size: f.SizeBytes}
	switch e {
	case EngineVQP:
		cq, err := f.engine.Compile(q.XPath)
		if err != nil {
			r.Err = err
			return r
		}
		r.Count, r.Duration, r.Err = f.timeVamana(cq)
	case EngineVQPOpt:
		t0 := time.Now()
		cq, err := f.engine.CompileOptimized(f.doc, q.XPath)
		r.OptTime = time.Since(t0)
		if err != nil {
			r.Err = err
			return r
		}
		r.Count, r.Duration, r.Err = f.timeVamana(cq)
	case EngineJaxen:
		if f.Faithful && f.ActualBytes() >= JaxenLimitBytes {
			r.Err = ErrCapacity
			return r
		}
		eng, err := f.jaxen()
		if err != nil {
			r.Err = err
			return r
		}
		t0 := time.Now()
		ns, err := eng.Eval(q.XPath)
		r.Duration, r.Count, r.Err = time.Since(t0), len(ns), err
	case EngineGalax:
		if f.Faithful && f.ActualBytes() >= GalaxLimitBytes {
			r.Err = ErrCapacity
			return r
		}
		eng, err := f.galax()
		if err != nil {
			r.Err = err
			return r
		}
		t0 := time.Now()
		ns, err := eng.Eval(q.XPath)
		r.Duration, r.Count, r.Err = time.Since(t0), len(ns), err
	case EngineEXist:
		if f.Faithful && f.ActualBytes() >= EXistLimitBytes {
			r.Err = ErrCapacity
			return r
		}
		eng, err := f.exist()
		if err != nil {
			r.Err = err
			return r
		}
		t0 := time.Now()
		ns, err := eng.Eval(q.XPath)
		r.Duration, r.Count, r.Err = time.Since(t0), len(ns), err
	default:
		r.Err = fmt.Errorf("bench: unknown engine %q", e)
	}
	return r
}

func (f *Fixture) timeVamana(cq *core.Query) (int, time.Duration, error) {
	t0 := time.Now()
	it, err := cq.Execute(f.doc)
	if err != nil {
		return 0, 0, err
	}
	n := 0
	for it.Next() {
		n++
	}
	return n, time.Since(t0), it.Err()
}

func (f *Fixture) jaxen() (*dom.Engine, error) {
	if f.domEng == nil {
		doc, err := dom.Parse(strings.NewReader(f.src))
		if err != nil {
			return nil, err
		}
		f.domEng = dom.New(doc, dom.Options{})
	}
	return f.domEng, nil
}

func (f *Fixture) galax() (*galax.Engine, error) {
	if f.galaxEng == nil {
		e, err := galax.New(f.src)
		if err != nil {
			return nil, err
		}
		f.galaxEng = e
	}
	return f.galaxEng, nil
}

func (f *Fixture) exist() (*pathjoin.Engine, error) {
	if f.joinEng == nil {
		limit := 0
		if f.Faithful {
			limit = EXistLimitBytes
		}
		e, err := pathjoin.New(f.src, pathjoin.Options{MaxDocumentBytes: limit})
		if err != nil {
			return nil, err
		}
		f.joinEng = e
	}
	return f.joinEng, nil
}

// Sweep runs every engine on one query across fixtures and returns the
// results grouped per engine — one paper figure.
func Sweep(fixtures []*Fixture, q Query, engines []Engine) []Result {
	var out []Result
	for _, f := range fixtures {
		for _, e := range engines {
			out = append(out, f.Run(e, q))
		}
	}
	return out
}

// FormatFigure renders a figure's results as the paper-style series
// table: one row per document size, one column per engine.
func FormatFigure(q Query, results []Result, engines []Engine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — execution time of %s (%s)\n", q.Fig, q.ID, q.XPath)
	fmt.Fprintf(&b, "%-10s", "size")
	for _, e := range engines {
		fmt.Fprintf(&b, "%14s", e)
	}
	b.WriteString("\n")
	bySize := map[int]map[Engine]Result{}
	var sizes []int
	for _, r := range results {
		if _, ok := bySize[r.Size]; !ok {
			bySize[r.Size] = map[Engine]Result{}
			sizes = append(sizes, r.Size)
		}
		bySize[r.Size][r.Engine] = r
	}
	for _, size := range sizes {
		fmt.Fprintf(&b, "%-10s", fmtSize(size))
		for _, e := range engines {
			r, ok := bySize[size][e]
			switch {
			case !ok:
				fmt.Fprintf(&b, "%14s", "-")
			case errors.Is(r.Err, ErrCapacity):
				fmt.Fprintf(&b, "%14s", "cap")
			case r.Err != nil:
				fmt.Fprintf(&b, "%14s", "n/a")
			default:
				fmt.Fprintf(&b, "%14s", r.Duration.Round(time.Microsecond))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func fmtSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
