package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"vamana/internal/baseline/dom"
	"vamana/internal/baseline/galax"
	"vamana/internal/baseline/pathjoin"
	"vamana/internal/core"
)

// MemoryResult reports the live-heap cost of holding one engine's
// document representation — the quantity behind the paper's scalability
// claims ("DOM-based engines load the entire document into main memory
// ... the maximum document size is bounded by the amount of physical main
// memory", §I).
type MemoryResult struct {
	Engine   Engine
	DocBytes int
	// HeapBytes is the live heap growth attributable to the loaded
	// engine (GC-settled).
	HeapBytes uint64
	Err       error
}

// MeasureEngineMemory loads src into the given engine and measures the
// settled heap growth. The VQP and VQP-OPT entries share one measurement
// (the MASS store); DOM-family engines each materialize their own tree.
func MeasureEngineMemory(src string, e Engine) MemoryResult {
	r := MemoryResult{Engine: e, DocBytes: len(src)}
	heapBefore := settledHeap()
	var keep any
	switch e {
	case EngineVQP, EngineVQPOpt:
		// VAMANA's large-document configuration is the file-backed MASS
		// store ("VAMANA exploits the large storage capacity of MASS (up
		// to several Gbs)", §VIII): pages live on disk, the heap holds
		// only the bounded node cache. DOM engines have no such mode —
		// that asymmetry is the paper's scalability argument.
		dir, err := os.MkdirTemp("", "vamana-mem-*")
		if err != nil {
			r.Err = err
			return r
		}
		defer os.RemoveAll(dir)
		// A deliberately modest cache (512 pages = 4 MiB of 8 KiB pages)
		// demonstrates the bounded-memory configuration; throughput-
		// oriented deployments raise it.
		eng, err := core.Open(core.Options{Path: filepath.Join(dir, "store.vam"), CachePages: 512})
		if err != nil {
			r.Err = err
			return r
		}
		if _, err := eng.LoadString("auction", src); err != nil {
			r.Err = err
			return r
		}
		keep = eng
	case EngineJaxen:
		doc, err := dom.Parse(strings.NewReader(src))
		if err != nil {
			r.Err = err
			return r
		}
		keep = dom.New(doc, dom.Options{})
	case EngineGalax:
		g, err := galax.New(src)
		if err != nil {
			r.Err = err
			return r
		}
		keep = g
	case EngineEXist:
		pj, err := pathjoin.New(src, pathjoin.Options{})
		if err != nil {
			r.Err = err
			return r
		}
		keep = pj
	default:
		r.Err = fmt.Errorf("bench: unknown engine %q", e)
		return r
	}
	heapAfter := settledHeap()
	runtime.KeepAlive(keep)
	if heapAfter > heapBefore {
		r.HeapBytes = heapAfter - heapBefore
	}
	// Release before returning so successive measurements don't stack.
	if c, ok := keep.(*core.Engine); ok {
		c.Close()
	}
	return r
}

func settledHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// FormatMemoryTable renders per-engine memory footprints.
func FormatMemoryTable(results []MemoryResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Engine memory footprint for a %.1f MB document (live heap after load):\n",
		float64(results[0].DocBytes)/(1<<20))
	fmt.Fprintf(&b, "%-10s%16s%10s\n", "engine", "heap", "x doc")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-10s%16s%10s\n", r.Engine, "n/a", "-")
			continue
		}
		fmt.Fprintf(&b, "%-10s%15.1fM%9.1fx\n", r.Engine,
			float64(r.HeapBytes)/(1<<20), float64(r.HeapBytes)/float64(r.DocBytes))
	}
	return b.String()
}
