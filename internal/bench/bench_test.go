package bench

import (
	"errors"
	"strings"
	"testing"
)

func smallFixture(t *testing.T, faithful bool) *Fixture {
	t.Helper()
	f, err := NewFixture(200<<10, 61, faithful) // ~200 KB
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestAllEnginesAgreeOnCounts: every engine that can run a query must
// report the same result cardinality — the cross-engine consistency check
// behind the paper's comparison charts.
func TestAllEnginesAgreeOnCounts(t *testing.T) {
	f := smallFixture(t, false)
	for _, q := range Queries {
		counts := map[Engine]int{}
		for _, e := range AllEngines {
			r := f.Run(e, q)
			if r.Err != nil {
				// Q4 is legitimately unsupported on Galax and eXist.
				if q.ID == "Q4" && (e == EngineGalax || e == EngineEXist) {
					continue
				}
				t.Errorf("%s on %s: %v", q.ID, e, r.Err)
				continue
			}
			counts[e] = r.Count
		}
		ref, ok := counts[EngineVQPOpt]
		if !ok {
			t.Fatalf("%s: VQP-OPT did not run", q.ID)
		}
		for e, c := range counts {
			if c != ref {
				t.Errorf("%s: %s returned %d results, VQP-OPT %d", q.ID, e, c, ref)
			}
		}
		if ref == 0 && q.ID != "Q5" {
			t.Errorf("%s: zero results", q.ID)
		}
	}
}

func TestQ4AxisGaps(t *testing.T) {
	f := smallFixture(t, false)
	q4, _ := QueryByID("Q4")
	if r := f.Run(EngineGalax, q4); r.Err == nil {
		t.Error("Galax strategy should fail Q4 (following-sibling)")
	}
	if r := f.Run(EngineEXist, q4); r.Err == nil {
		t.Error("eXist strategy should fail Q4 (following-sibling)")
	}
	if r := f.Run(EngineVQPOpt, q4); r.Err != nil {
		t.Errorf("VAMANA must support Q4: %v", r.Err)
	}
}

func TestFaithfulCapacityLimits(t *testing.T) {
	// A fixture bigger than Jaxen's published 10 MB limit.
	f, err := NewFixture(11<<20, 62, true)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	q1, _ := QueryByID("Q1")
	if r := f.Run(EngineJaxen, q1); !errors.Is(r.Err, ErrCapacity) {
		t.Errorf("Jaxen at 11MB: err = %v, want capacity", r.Err)
	}
	// Galax (30 MB limit) and VAMANA still run.
	if r := f.Run(EngineVQPOpt, q1); r.Err != nil {
		t.Errorf("VQP-OPT at 11MB: %v", r.Err)
	}
}

func TestOptimizedNeverSlowerByCount(t *testing.T) {
	// VQP and VQP-OPT must agree on result counts for every query (the
	// timing claim is benchmarked, not unit-tested).
	f := smallFixture(t, false)
	for _, q := range Queries {
		d := f.Run(EngineVQP, q)
		o := f.Run(EngineVQPOpt, q)
		if d.Err != nil || o.Err != nil {
			t.Fatalf("%s: %v / %v", q.ID, d.Err, o.Err)
		}
		if d.Count != o.Count {
			t.Errorf("%s: VQP=%d VQP-OPT=%d", q.ID, d.Count, o.Count)
		}
		if o.OptTime == 0 {
			t.Errorf("%s: optimization time not recorded", q.ID)
		}
	}
}

func TestFormatFigure(t *testing.T) {
	f := smallFixture(t, false)
	q1, _ := QueryByID("Q1")
	results := Sweep([]*Fixture{f}, q1, []Engine{EngineVQP, EngineVQPOpt})
	out := FormatFigure(q1, results, []Engine{EngineVQP, EngineVQPOpt})
	for _, want := range []string{"Fig12", "VQP", "VQP-OPT", "200KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestQueryByID(t *testing.T) {
	if _, ok := QueryByID("Q3"); !ok {
		t.Fatal("Q3 missing")
	}
	if _, ok := QueryByID("Q9"); ok {
		t.Fatal("Q9 should not exist")
	}
}

func TestMeasureEngineMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory measurement is slow under -short")
	}
	f := smallFixture(t, false)
	src := f.Source()
	var results []MemoryResult
	for _, e := range []Engine{EngineJaxen, EngineVQP} {
		r := MeasureEngineMemory(src, e)
		if r.Err != nil {
			t.Fatalf("%s: %v", e, r.Err)
		}
		if r.HeapBytes == 0 {
			t.Errorf("%s: zero heap growth for a %d byte document", e, len(src))
		}
		results = append(results, r)
	}
	out := FormatMemoryTable(results)
	if !strings.Contains(out, "Jaxen") || !strings.Contains(out, "VQP") {
		t.Fatalf("table incomplete:\n%s", out)
	}
}
