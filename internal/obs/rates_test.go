package obs

import (
	"testing"
	"time"
)

// TestRateWindow drives a RateWindow with an injected clock and counter
// source and checks windowed per-second rates, eviction, and counter-
// reset handling.
func TestRateWindow(t *testing.T) {
	now := time.Unix(1000, 0)
	vals := map[string]uint64{"a": 0, "b": 100}
	rw := NewRateWindow(10*time.Second, func() map[string]uint64 {
		out := make(map[string]uint64, len(vals))
		for k, v := range vals {
			out[k] = v
		}
		return out
	})
	rw.now = func() time.Time { return now }

	// First sample: no history, no rates.
	rates, window := rw.Rates()
	if window != 0 || len(rates) != 0 {
		t.Fatalf("first call: rates=%v window=%v, want empty/0", rates, window)
	}

	// 5s later, a grew by 50: 10/s over a 5s window.
	now = now.Add(5 * time.Second)
	vals["a"] = 50
	rates, window = rw.Rates()
	if window != 5*time.Second {
		t.Fatalf("window %v, want 5s", window)
	}
	if rates["a"] != 10 {
		t.Errorf("rate a=%v, want 10/s", rates["a"])
	}
	if rates["b"] != 0 {
		t.Errorf("rate b=%v, want 0/s", rates["b"])
	}

	// 20s later the old samples fall out of the 10s window; the rate is
	// computed against the newest surviving sample, not process start.
	now = now.Add(20 * time.Second)
	vals["a"] = 1050 // +1000 since the 5s-mark sample
	rates, window = rw.Rates()
	if window > 20*time.Second {
		t.Errorf("window %v did not shrink after eviction", window)
	}
	if rates["a"] != 50 {
		t.Errorf("rate a=%v, want 50/s (+1000 over 20s)", rates["a"])
	}

	// A counter that goes backwards (reset) yields no rate rather than a
	// huge bogus one.
	now = now.Add(5 * time.Second)
	vals["a"] = 3
	rates, _ = rw.Rates()
	if _, ok := rates["a"]; ok {
		t.Errorf("reset counter produced a rate: %v", rates["a"])
	}
}
