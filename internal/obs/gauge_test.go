package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestGaugeAndCounterVec(t *testing.T) {
	g := NewGauge("test_gauge_units", "Test gauge.")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge value = %d, want 3", got)
	}
	if NewGauge("test_gauge_units", "dup") != g {
		t.Fatal("duplicate gauge registration returned a new instance")
	}

	v := NewCounterVec("test_vec_total", "tenant", "Test vec.")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				v.Inc("alpha")
				v.Add("beta", 2)
			}
		}()
	}
	wg.Wait()
	if got := v.Value("alpha"); got != 800 {
		t.Fatalf("vec alpha = %d, want 800", got)
	}
	if got := v.Value("beta"); got != 1600 {
		t.Fatalf("vec beta = %d, want 1600", got)
	}
	if got := v.Value("never"); got != 0 {
		t.Fatalf("vec untouched label = %d, want 0", got)
	}

	snap := Snapshot()
	if snap["test_gauge_units"] != 3 {
		t.Fatalf("snapshot gauge = %d, want 3", snap["test_gauge_units"])
	}
	if snap[`test_vec_total{tenant="alpha"}`] != 800 {
		t.Fatalf("snapshot vec = %d, want 800", snap[`test_vec_total{tenant="alpha"}`])
	}

	var sb strings.Builder
	if err := WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE test_gauge_units gauge",
		"test_gauge_units 3",
		"# TYPE test_vec_total counter",
		`test_vec_total{tenant="alpha"} 800`,
		`test_vec_total{tenant="beta"} 1600`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Label values must appear sorted for deterministic scrapes.
	if strings.Index(text, `tenant="alpha"`) > strings.Index(text, `tenant="beta"`) {
		t.Error("vec label values not sorted in exposition")
	}
}
