package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fixedTraces is a synthetic pair of traces with every field pinned, so
// the exporters' output is byte-stable for the golden test.
func fixedTraces() []*QueryTrace {
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	return []*QueryTrace{
		{
			ID:             7,
			Expr:           "//person/address",
			Doc:            "auction",
			Start:          base,
			Compile:        120_000,
			Total:          2_500_000,
			CacheHit:       false,
			Results:        15,
			PagesRead:      3,
			RecordsDecoded: 40,
			NodeCacheHits:  12,
			Root: &Span{
				Name: "R1", Kind: "root", StartNS: 0, EndNS: 2_500_000,
				Out: 15, EstIn: 25, EstOut: 25, Estimated: true,
				Children: []*Span{{
					Name: "φ2 child::address", Kind: "axis",
					StartNS: 130_000, EndNS: 2_400_000,
					In: 15, Scanned: 15, Out: 15,
					PagesRead: 3, RecordsDecoded: 40,
					EstIn: 25, EstOut: 25, Estimated: true,
					Children: []*Span{{
						Name: "φ3 descendant::person", Kind: "axis",
						StartNS: 140_000, EndNS: 2_300_000,
						In: 1, Scanned: 25, Out: 15,
						EstIn: 1, EstOut: 25, Estimated: true,
					}},
				}},
			},
		},
		{
			ID:      8,
			Expr:    "//bogus",
			Doc:     "auction",
			Start:   base.Add(time.Millisecond),
			Compile: 80_000,
			Total:   90_000,
			Results: 0,
			Err:     "vamana: canceled",
		},
	}
}

// TestChromeTraceGolden pins the Chrome trace-event JSON shape against
// testdata/chrome_trace.golden. Regenerate with UPDATE_GOLDEN=1 after an
// intentional format change.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixedTraces()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace output drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Beyond byte equality: the file must be valid JSON in the
	// traceEvents envelope with only M/X phase events.
	var f struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			TS  float64 `json:"ts"`
			Dur float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "M" {
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("negative timestamp or duration: ts=%v dur=%v", ev.TS, ev.Dur)
		}
	}
}

// TestWriteTree checks the indented text rendering of a span tree.
func TestWriteTree(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedTraces()[0].WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], `trace 7 "//person/address" doc=auction`) {
		t.Errorf("bad header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "R1 ") {
		t.Errorf("root line not at depth 0: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "  φ2 ") || !strings.HasPrefix(lines[3], "    φ3 ") {
		t.Errorf("children not indented by depth:\n%s", out)
	}
	for _, want := range []string{"in=15", "scanned=15", "out=15", "est_in=25", "est_out=25", "pages=3", "records=40"} {
		if !strings.Contains(lines[2], want) {
			t.Errorf("step line missing %q: %s", want, lines[2])
		}
	}
	// A failed trace renders its error on the header line.
	buf.Reset()
	if err := fixedTraces()[1].WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `err="vamana: canceled"`) {
		t.Errorf("error trace missing err field: %s", buf.String())
	}
}
