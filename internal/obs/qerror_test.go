package obs

import (
	"math"
	"sync"
	"testing"
)

func TestQError(t *testing.T) {
	cases := []struct {
		est, act uint64
		want     float64
	}{
		{10, 10, 1},
		{100, 25, 4},
		{25, 100, 4},
		{0, 8, 8}, // zero estimate smoothed to 1
		{8, 0, 8}, // zero actual smoothed to 1
		{0, 0, 1}, // both zero: perfect
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := QError(c.est, c.act); got != c.want {
			t.Errorf("QError(%d, %d) = %g, want %g", c.est, c.act, got, c.want)
		}
	}
}

func TestQErrorAccumBuckets(t *testing.T) {
	var h QErrorAccum
	// One observation per target bucket: q in [2^i, 2^(i+1)) lands in
	// bucket i, on both the over- and under-estimate sides.
	h.Observe(1, 1)   // q=1     -> bucket 0
	h.Observe(3, 1)   // q=3     -> bucket 1
	h.Observe(1, 3)   // q=3     -> bucket 1, underestimate
	h.Observe(100, 3) // q=33.3  -> bucket 5
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Under != 1 {
		t.Errorf("under = %d, want 1", s.Under)
	}
	for i, want := range map[int]uint64{0: 1, 1: 2, 5: 1} {
		if s.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i], want)
		}
	}
	if got := s.Max; math.Abs(got-100.0/3.0) > 1e-9 {
		t.Errorf("max = %g, want 33.33", got)
	}
}

func TestQErrorQuantile(t *testing.T) {
	var h QErrorAccum
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
	// 90 observations at q=1, 10 at q in [8,16): p50 sits in bucket 0
	// (upper bound 2), p95 in bucket 3 (upper bound 16).
	for i := 0; i < 90; i++ {
		h.Observe(5, 5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(9, 1)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.50); got != 2 {
		t.Errorf("p50 = %g, want 2", got)
	}
	if got := s.Quantile(0.95); got != 16 {
		t.Errorf("p95 = %g, want 16", got)
	}
	if got := s.Quantile(1.0); got != 16 {
		t.Errorf("p100 = %g, want 16", got)
	}
}

func TestQErrorAccumDisabled(t *testing.T) {
	var h QErrorAccum
	SetEnabled(false)
	defer SetEnabled(true)
	if q := h.Observe(100, 1); q != 1 {
		t.Errorf("disabled Observe returned %g, want 1", q)
	}
	if s := h.Snapshot(); s.Count != 0 || s.Max != 0 {
		t.Errorf("disabled Observe recorded: %+v", s)
	}
}

func TestQErrorAccumOverflowBucket(t *testing.T) {
	var h QErrorAccum
	h.Observe(1<<40, 1) // q ~ 10^12, far past bucket 23's lower bound
	s := h.Snapshot()
	if s.Buckets[qerrBuckets-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", s.Buckets[qerrBuckets-1])
	}
	if s.Max != float64(uint64(1)<<40) {
		t.Errorf("max = %g, want 2^40", s.Max)
	}
}

// TestQErrorAccumConcurrent hammers one accumulator from many
// goroutines; run under -race it checks the striping, and the final
// snapshot must account for every observation.
func TestQErrorAccumConcurrent(t *testing.T) {
	var h QErrorAccum
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(uint64(1+(g+i)%64), uint64(1+i%7))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	if s.Max < 1 || s.Max > 64 {
		t.Errorf("max = %g, want within [1, 64]", s.Max)
	}
}
