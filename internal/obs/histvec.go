package obs

// Labeled histogram families, added for per-tenant serving SLOs: one
// latency histogram per (tenant, outcome) pair without pre-declaring
// either population. Cells share the striped power-of-two bucket layout
// of Histogram, so concurrent request finishes never serialize on one
// cache line, and snapshots merge cheaply for per-tenant quantiles.
//
// This file also owns the Prometheus label-value escaping helpers. The
// text exposition spec escapes exactly three characters inside label
// values — backslash, double-quote, newline — while Go's %q escapes
// tabs, non-printables and non-ASCII too, which corrupts round-trips of
// user-supplied values (tenant names flow into labels verbatim). Every
// labeled exposition path goes through appendPromLabel.

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"time"
)

// appendPromEscaped appends s escaped per the Prometheus text
// exposition rules for label values: `\` → `\\`, `"` → `\"`, newline →
// `\n`; every other byte (tabs, UTF-8, control characters) passes
// through verbatim.
func appendPromEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '"':
			dst = append(dst, '\\', '"')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// appendPromLabel appends one name="value" pair with spec-correct value
// escaping.
func appendPromLabel(dst []byte, name, value string) []byte {
	dst = append(dst, name...)
	dst = append(dst, '=', '"')
	dst = appendPromEscaped(dst, value)
	return append(dst, '"')
}

// promLabel renders one name="value" pair as a string (the convenience
// form for fmt-based writers).
func promLabel(name, value string) string {
	return string(appendPromLabel(make([]byte, 0, len(name)+len(value)+4), name, value))
}

// promLabelSet renders a full {n1="v1",n2="v2"} label set.
func promLabelSet(names, values []string) string {
	dst := make([]byte, 0, 32)
	dst = append(dst, '{')
	for i, n := range names {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendPromLabel(dst, n, values[i])
	}
	return string(append(dst, '}'))
}

// snapshotStripes folds one stripe set into a HistogramSnapshot —
// shared by Histogram and HistogramVec cells.
func snapshotStripes(stripes *[numStripes]histStripe) HistogramSnapshot {
	var s HistogramSnapshot
	for i := range stripes {
		st := &stripes[i]
		for j := range st.buckets {
			n := st.buckets[j].Load()
			s.Buckets[j] += n
			s.Count += n
		}
		s.SumNS += st.sumNS.Load()
	}
	return s
}

// Merge folds another snapshot into s — used to aggregate a tenant's
// per-outcome cells into one quantile-bearing distribution.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.SumNS += o.SumNS
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// HistogramVec is a family of latency histograms keyed by a fixed list
// of labels — per-tenant, per-outcome request latency. Cells
// materialize on first observation and live for the process; the
// serving layer bounds the label population (tenants come from
// configuration plus a catch-all, outcomes are a closed set), so the
// map never grows unbounded.
type HistogramVec struct {
	name   string
	help   string
	labels []string

	mu sync.RWMutex
	m  map[string]*histVecCell
}

// histVecCell is one label combination's histogram.
type histVecCell struct {
	values  []string
	stripes [numStripes]histStripe
}

// vecKeySep joins label values into map keys; label values containing
// it would collide, but it is a non-printable byte no sane tenant name
// or outcome label carries.
const vecKeySep = "\x1f"

// NewHistogramVec creates and registers a labeled histogram family
// (same uniqueness rule as NewCounter; uniqueness is by family name).
func NewHistogramVec(name, help string, labels ...string) *HistogramVec {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, v := range registry.histVecs {
		if v.name == name {
			return v
		}
	}
	v := &HistogramVec{name: name, help: help, labels: labels, m: make(map[string]*histVecCell)}
	registry.histVecs = append(registry.histVecs, v)
	return v
}

// Name returns the family's exposition name.
func (v *HistogramVec) Name() string { return v.name }

// cell returns (creating if needed) the histogram cell for one label
// combination. values must match the family's label count.
func (v *HistogramVec) cell(values []string) *histVecCell {
	key := strings.Join(values, vecKeySep)
	v.mu.RLock()
	c := v.m[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[key]; c == nil {
		c = &histVecCell{values: append([]string(nil), values...)}
		v.m[key] = c
	}
	return c
}

// Observe records one duration under the given label values when
// collection is enabled.
func (v *HistogramVec) Observe(d time.Duration, values ...string) {
	if !enabled.Load() {
		return
	}
	c := v.cell(values)
	ns := uint64(d.Nanoseconds())
	b := bits.Len64(ns)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	s := &c.stripes[stripeIdx()]
	s.buckets[b].Add(1)
	s.sumNS.Add(ns)
}

// Snapshot returns the current snapshot for one exact label
// combination (zero-valued when it was never observed).
func (v *HistogramVec) Snapshot(values ...string) HistogramSnapshot {
	key := strings.Join(values, vecKeySep)
	v.mu.RLock()
	c := v.m[key]
	v.mu.RUnlock()
	if c == nil {
		return HistogramSnapshot{}
	}
	return snapshotStripes(&c.stripes)
}

// LabeledHistogram is one cell's snapshot with its label values, in the
// family's label order.
type LabeledHistogram struct {
	Values []string
	HistogramSnapshot
}

// Cells snapshots every materialized label combination, sorted by label
// values for deterministic output.
func (v *HistogramVec) Cells() []LabeledHistogram {
	v.mu.RLock()
	cells := make([]*histVecCell, 0, len(v.m))
	for _, c := range v.m {
		cells = append(cells, c)
	}
	v.mu.RUnlock()
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i].values, cells[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	out := make([]LabeledHistogram, len(cells))
	for i, c := range cells {
		out[i] = LabeledHistogram{Values: c.values, HistogramSnapshot: snapshotStripes(&c.stripes)}
	}
	return out
}

// snapshotInto folds the family into out, one set of
// name{labels}_count/_sum_ns/_p50/_p95/_p99 entries per cell.
func (v *HistogramVec) snapshotInto(out map[string]uint64) {
	for _, c := range v.Cells() {
		base := v.name + promLabelSet(v.labels, c.Values)
		out[base+"_count"] = c.Count
		out[base+"_sum_ns"] = c.SumNS
		out[base+"_p50"] = uint64(c.Quantile(0.50))
		out[base+"_p95"] = uint64(c.Quantile(0.95))
		out[base+"_p99"] = uint64(c.Quantile(0.99))
	}
}

// writeText writes the family in Prometheus text exposition format:
// cumulative buckets with nanosecond le bounds per cell, plus
// precomputed per-cell quantile gauges so dashboards get per-tenant
// tail latency without PromQL bucket math.
func (v *HistogramVec) writeText(w io.Writer) error {
	cells := v.Cells()
	if len(cells) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", v.name, v.help, v.name); err != nil {
		return err
	}
	for _, c := range cells {
		labels := promLabelSet(v.labels, c.Values)
		inner := labels[1 : len(labels)-1] // without braces, to splice le in
		var cum uint64
		for i, n := range c.Buckets {
			cum += n
			if cum == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"%d\"} %d\n", v.name, inner, uint64(1)<<uint(i)-1, cum); err != nil {
				return err
			}
			if cum == c.Count {
				break
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n%s_sum%s %d\n%s_count%s %d\n",
			v.name, inner, c.Count, v.name, labels, c.SumNS, v.name, labels, c.Count); err != nil {
			return err
		}
	}
	for _, q := range [...]struct {
		suffix string
		q      float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
		if _, err := fmt.Fprintf(w, "# TYPE %s_%s gauge\n", v.name, q.suffix); err != nil {
			return err
		}
		for _, c := range cells {
			if _, err := fmt.Fprintf(w, "%s_%s%s %d\n",
				v.name, q.suffix, promLabelSet(v.labels, c.Values), uint64(c.Quantile(q.q))); err != nil {
				return err
			}
		}
	}
	return nil
}
