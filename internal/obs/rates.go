package obs

// Sliding-window counter rates. Lifetime totals are the wrong shape for
// a dashboard — an operator wants "pages read per second, now", not
// "pages read since the process started". RateWindow turns any
// map-of-counters sampler into per-second rates over a bounded sliding
// window by keeping a small ring of timestamped samples and diffing the
// newest against the oldest still inside the window.

import (
	"sync"
	"time"
)

// rateSample is one timestamped counter snapshot.
type rateSample struct {
	at     time.Time
	values map[string]uint64
}

// RateWindow computes per-second rates of monotonically increasing
// counters over a sliding time window. It samples lazily: each Rates
// call takes a fresh sample, evicts samples older than the window, and
// diffs against the oldest survivor — so an idle process does no
// background work.
type RateWindow struct {
	mu      sync.Mutex
	window  time.Duration
	sample  func() map[string]uint64
	now     func() time.Time // injectable for tests
	samples []rateSample     // oldest first
}

// NewRateWindow creates a rate window over the given duration. sample
// must return a snapshot of monotonically increasing counters keyed by
// name (e.g. obs.Snapshot).
func NewRateWindow(window time.Duration, sample func() map[string]uint64) *RateWindow {
	if window <= 0 {
		window = time.Minute
	}
	return &RateWindow{window: window, sample: sample, now: time.Now}
}

// Rates takes a fresh sample and returns the per-second rate of each
// counter over the elapsed window, plus the actual span the rates cover
// (shorter than the configured window until enough history
// accumulates, zero on the very first call).
func (r *RateWindow) Rates() (map[string]float64, time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	cur := rateSample{at: now, values: r.sample()}

	// Evict samples that fell out of the window, but always keep at
	// least one so the diff base never vanishes on an idle process.
	cutoff := now.Add(-r.window)
	i := 0
	for i < len(r.samples)-1 && r.samples[i+1].at.Before(cutoff) {
		i++
	}
	r.samples = append(r.samples[i:], cur)

	oldest := r.samples[0]
	elapsed := now.Sub(oldest.at)
	rates := make(map[string]float64, len(cur.values))
	if elapsed <= 0 {
		return rates, 0
	}
	secs := elapsed.Seconds()
	for k, v := range cur.values {
		prev, ok := oldest.values[k]
		if !ok || v < prev {
			// New counter mid-window, or a reset: no meaningful rate.
			continue
		}
		rates[k] = float64(v-prev) / secs
	}
	return rates, elapsed
}
