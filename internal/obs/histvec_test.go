package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPromEscaping pins the label-value escaping to the Prometheus text
// exposition spec: exactly backslash, double-quote, and newline are
// escaped; tabs, control bytes, and UTF-8 pass through verbatim. Go's
// %q (the bug this replaced) over-escapes the latter group.
func TestPromEscaping(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"alpha", `alpha`},
		{`back\slash`, `back\\slash`},
		{`say "hi"`, `say \"hi\"`},
		{"line\nbreak", `line\nbreak`},
		{"tab\there", "tab\there"},          // %q would emit \t
		{"\x01ctl", "\x01ctl"},              // %q would emit \x01
		{"ünïcode→", "ünïcode→"},            // %q would emit \u escapes
		{"mix\\\"\n\t", "mix\\\\\\\"\\n\t"}, // only the first three escape
	}
	for _, c := range cases {
		if got := string(appendPromEscaped(nil, c.in)); got != c.want {
			t.Errorf("appendPromEscaped(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := promLabel("tenant", `a"b`); got != `tenant="a\"b"` {
		t.Errorf("promLabel = %q", got)
	}
	if got := promLabelSet([]string{"tenant", "outcome"}, []string{"t\n1", "ok"}); got != `{tenant="t\n1",outcome="ok"}` {
		t.Errorf("promLabelSet = %q", got)
	}

	// End-to-end: a CounterVec with a hostile label value must expose
	// the spec form, not Go-quoted form.
	v := NewCounterVec("test_escape_total", "tenant", "Escape test.")
	v.Inc("tab\tand\"quote")
	var sb strings.Builder
	if err := v.writeText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "test_escape_total{tenant=\"tab\tand\\\"quote\"} 1\n"
	if !strings.Contains(sb.String(), want) {
		t.Errorf("exposition = %q, missing %q", sb.String(), want)
	}
	snap := make(map[string]uint64)
	v.snapshotInto(snap)
	if snap["test_escape_total{tenant=\"tab\tand\\\"quote\"}"] != 1 {
		t.Errorf("snapshot keys = %v", snap)
	}
}

func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec("test_hist_vec_ns", "Test labeled histogram.", "tenant", "outcome")
	if NewHistogramVec("test_hist_vec_ns", "dup", "x") != v {
		t.Fatal("duplicate histvec registration returned a new instance")
	}

	// Quantile correctness at power-of-two resolution: 90 fast and 10
	// slow observations put p50 in the fast bucket and p99 in the slow
	// one.
	for i := 0; i < 90; i++ {
		v.Observe(100*time.Nanosecond, "alpha", "ok")
	}
	for i := 0; i < 10; i++ {
		v.Observe(time.Millisecond, "alpha", "ok")
	}
	s := v.Snapshot("alpha", "ok")
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if p50 := s.Quantile(0.50); p50 >= time.Microsecond {
		t.Errorf("p50 = %v, want < 1µs", p50)
	}
	if p99 := s.Quantile(0.99); p99 < time.Millisecond/2 || p99 > 4*time.Millisecond {
		t.Errorf("p99 = %v, want ~1ms bucket", p99)
	}
	wantSum := uint64(90*100 + 10*1_000_000)
	if s.SumNS != wantSum {
		t.Errorf("sum = %d, want %d", s.SumNS, wantSum)
	}
	if z := v.Snapshot("alpha", "error"); z.Count != 0 {
		t.Errorf("untouched cell count = %d, want 0", z.Count)
	}

	// Merge aggregates across outcome cells for per-tenant quantiles.
	v.Observe(time.Second, "alpha", "error")
	merged := v.Snapshot("alpha", "ok")
	merged.Merge(v.Snapshot("alpha", "error"))
	if merged.Count != 101 {
		t.Errorf("merged count = %d, want 101", merged.Count)
	}
	if max := merged.Quantile(1.0); max < time.Second/2 {
		t.Errorf("merged max = %v, want ~1s", max)
	}

	// Cells returns label combinations sorted by values.
	v.Observe(time.Microsecond, "beta", "ok")
	cells := v.Cells()
	if len(cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(cells))
	}
	wantOrder := [][2]string{{"alpha", "error"}, {"alpha", "ok"}, {"beta", "ok"}}
	for i, c := range cells {
		if c.Values[0] != wantOrder[i][0] || c.Values[1] != wantOrder[i][1] {
			t.Fatalf("cell %d = %v, want %v", i, c.Values, wantOrder[i])
		}
	}

	// Exposition: per-cell cumulative buckets and quantile gauges.
	var sb strings.Builder
	if err := v.writeText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE test_hist_vec_ns histogram",
		`test_hist_vec_ns_count{tenant="alpha",outcome="ok"} 100`,
		`test_hist_vec_ns_bucket{tenant="alpha",outcome="ok",le="+Inf"} 100`,
		`test_hist_vec_ns_sum{tenant="beta",outcome="ok"} 1000`,
		"# TYPE test_hist_vec_ns_p99 gauge",
		`test_hist_vec_ns_p50{tenant="beta",outcome="ok"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}

	snap := make(map[string]uint64)
	v.snapshotInto(snap)
	if snap[`test_hist_vec_ns{tenant="alpha",outcome="ok"}_count`] != 100 {
		t.Errorf("snapshotInto keys = %v", snap)
	}
}

// TestHistogramVecConcurrent hammers one family from many goroutines
// while a reader snapshots — meaningful under -race, and checks no
// observations are lost.
func TestHistogramVecConcurrent(t *testing.T) {
	v := NewHistogramVec("test_hist_vec_conc_ns", "Concurrency test.", "tenant")
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				v.Snapshot("a")
				v.Cells()
			}
		}
	}()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := "a"
			if i%2 == 1 {
				tenant = "b"
			}
			for j := 0; j < perWorker; j++ {
				v.Observe(time.Duration(j)*time.Nanosecond, tenant)
			}
		}(i)
	}
	// Writers finish, then the reader is released; no observation may be
	// lost.
	deadline := time.After(10 * time.Second)
	for {
		a, b := v.Snapshot("a").Count, v.Snapshot("b").Count
		if a == workers/2*perWorker && b == workers/2*perWorker {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("counts did not settle: a=%d b=%d", a, b)
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
}
