package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter("test_counter_basics_total", "test")
	before := c.Value()
	c.Inc()
	c.Add(4)
	if got := c.Value() - before; got != 5 {
		t.Fatalf("counter delta = %d, want 5", got)
	}
	if NewCounter("test_counter_basics_total", "dup") != c {
		t.Fatalf("duplicate registration should return the existing counter")
	}
}

func TestCounterDisabled(t *testing.T) {
	c := NewCounter("test_counter_disabled_total", "test")
	SetEnabled(false)
	defer SetEnabled(true)
	before := c.Value()
	c.Inc()
	if c.Value() != before {
		t.Fatalf("counter moved while collection disabled")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter("test_counter_concurrent_total", "test")
	before := c.Value()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value() - before; got != 8000 {
		t.Fatalf("counter delta = %d, want 8000", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram("test_histogram_ns", "test")
	h.Observe(0)
	h.Observe(100 * time.Nanosecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	wantSum := uint64(100 + 3000 + 2000000)
	if s.SumNS != wantSum {
		t.Fatalf("sum = %d, want %d", s.SumNS, wantSum)
	}
	if q := s.Quantile(0.5); q < 100*time.Nanosecond || q > 10*time.Microsecond {
		t.Fatalf("p50 = %v, want within [100ns, 10µs]", q)
	}
	if q := s.Quantile(1.0); q < 2*time.Millisecond {
		t.Fatalf("p100 = %v, want >= 2ms", q)
	}
	if m := s.Mean(); m != time.Duration(wantSum/4) {
		t.Fatalf("mean = %v, want %v", m, time.Duration(wantSum/4))
	}
}

func TestSnapshotAndWriteText(t *testing.T) {
	c := NewCounter("test_exposition_total", "exposition test counter")
	c.Add(7)
	h := NewHistogram("test_exposition_ns", "exposition test histogram")
	h.Observe(time.Microsecond)

	snap := Snapshot()
	if snap["test_exposition_total"] == 0 {
		t.Fatalf("snapshot missing counter value")
	}
	if snap["test_exposition_ns_count"] == 0 {
		t.Fatalf("snapshot missing histogram count")
	}

	var b strings.Builder
	if err := WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE test_exposition_total counter",
		"test_exposition_total 7",
		"# TYPE test_exposition_ns histogram",
		"test_exposition_ns_bucket{le=\"+Inf\"}",
		"test_exposition_ns_count",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}
}
