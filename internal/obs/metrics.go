package obs

// Process-global metrics reported by the execution and serving layers.
// Per-store counters (pager I/O, B+-tree node cache, record decodes,
// statistics probes) are per-instance and exposed through
// mass.Store.Metrics / core.Engine.WriteMetrics instead.
var (
	// Execution layer — flushed once per iterator run, not per tuple.
	ExecRuns = NewCounter("vamana_exec_runs_total",
		"Iterator pipelines executed to completion or error.")
	ExecResults = NewCounter("vamana_exec_results_total",
		"Result tuples produced by completed iterator runs.")
	ExecEntriesScanned = NewCounter("vamana_exec_index_entries_scanned_total",
		"Index entries scanned by leaf operators across completed runs.")
	ExecAxisScans = NewCounter("vamana_exec_axis_scans_total",
		"Axis-scan bindings performed across completed runs (all axes).")

	// Serving layer (core.Engine.Query).
	QueryLatency = NewHistogram("vamana_query_latency_ns",
		"End-to-end latency of DB.Query calls in nanoseconds.")
	QueriesServedCached = NewCounter("vamana_queries_served_cached_total",
		"DB.Query calls whose plan came from the plan cache.")
	QueriesCompiled = NewCounter("vamana_queries_compiled_total",
		"DB.Query calls that compiled and optimized a fresh plan.")
	SlowQueries = NewCounter("vamana_slow_queries_total",
		"Queries exceeding the configured slow-query threshold.")
	TracesSampled = NewCounter("vamana_traces_sampled_total",
		"Queries that carried a sampled TraceContext.")

	// Cost-model observatory: est-vs-act cardinality accuracy and the
	// calibration feedback loop. Per-class q-error profiles are
	// per-engine (core.Engine.CostProfile); these are the process-wide
	// roll-ups.
	CostObservations = NewCounter("vamana_cost_observations_total",
		"Per-operator estimated-vs-actual cardinality pairs folded into q-error profiles.")
	CostUnderestimates = NewCounter("vamana_cost_underestimates_total",
		"Observations where the actual cardinality exceeded the estimate (upper-bound miss).")
	CostCalibrationBumps = NewCounter("vamana_cost_calibration_epoch_bumps_total",
		"Statistics-epoch bumps triggered by calibration-factor drift.")
	CostPlanRegressions = NewCounter("vamana_cost_plan_regressions_total",
		"Compiles where calibrated costs ranked a different plan cheapest than raw costs.")

	// Serving daemon (internal/serve): admission-control outcomes and
	// instantaneous load. Rejections are split by reason so an operator
	// can tell a saturated queue from an undersized tenant cap from a
	// drain in progress.
	ServerAdmitted = NewCounter("vamana_server_admitted_total",
		"Requests admitted to execute (immediately or after queueing).")
	ServerQueuedTotal = NewCounter("vamana_server_queued_total",
		"Requests that waited in the admission queue before a decision.")
	ServerRejectedQueueFull = NewCounter("vamana_server_rejected_queue_full_total",
		"Requests rejected because the admission queue was at depth.")
	ServerRejectedQueueTimeout = NewCounter("vamana_server_rejected_queue_timeout_total",
		"Queued requests rejected after waiting the maximum queue time.")
	ServerRejectedDraining = NewCounter("vamana_server_rejected_draining_total",
		"Requests rejected because the server was draining.")
	ServerRejectedTenant = NewCounter("vamana_server_rejected_tenant_total",
		"Requests rejected at a tenant's in-flight cap.")
	ServerQueueCanceled = NewCounter("vamana_server_queue_canceled_total",
		"Queued requests abandoned by the client before admission.")
	ServerInflight = NewGauge("vamana_server_inflight",
		"Requests currently executing (admitted, not yet finished).")
	ServerQueueDepth = NewGauge("vamana_server_queue_depth",
		"Requests currently waiting in the admission queue.")
	ServerQueueWait = NewHistogram("vamana_server_queue_wait_ns",
		"Time admitted requests spent in the admission queue in nanoseconds.")

	// Per-tenant SLO histograms: end-to-end request latency and
	// admission queue wait, labeled by tenant and outcome ("ok",
	// "rejected", "error", "canceled" — serve.classifyOutcome). These
	// are what /metrics p50/p95/p99 per tenant and the TenantStats
	// latency quantiles are computed from.
	ServerRequestLatency = NewHistogramVec("vamana_server_request_latency_ns",
		"End-to-end /v1/query latency per tenant and outcome in nanoseconds.",
		"tenant", "outcome")
	ServerRequestQueueWait = NewHistogramVec("vamana_server_request_queue_wait_ns",
		"Admission queue wait per tenant and outcome in nanoseconds (zero when a slot was free on arrival).",
		"tenant", "outcome")

	// Per-tenant traffic: the serving daemon stamps every outcome with
	// the tenant label, so dashboards can attribute load and rejections.
	TenantQueries = NewCounterVec("vamana_tenant_queries_total", "tenant",
		"Queries finished per tenant (successful or failed).")
	TenantRejections = NewCounterVec("vamana_tenant_rejections_total", "tenant",
		"Admission rejections per tenant (all reasons).")
	TenantResults = NewCounterVec("vamana_tenant_results_total", "tenant",
		"Result nodes streamed per tenant.")
	TenantUncached = NewCounterVec("vamana_tenant_uncached_compiles_total", "tenant",
		"Queries compiled without plan-cache retention because the tenant's plan quota was full.")

	// Governance layer: how query runs were stopped early. Classified at
	// run finish from the iterator's terminal error.
	QueriesCanceled = NewCounter("vamana_queries_canceled_total",
		"Query runs stopped because the caller's context was canceled.")
	QueriesDeadlineExceeded = NewCounter("vamana_queries_deadline_exceeded_total",
		"Query runs stopped by a context deadline or per-query timeout.")
	QueriesBudgetExceeded = NewCounter("vamana_queries_budget_exceeded_total",
		"Query runs stopped by a per-query resource budget (results, pages, records).")
)
