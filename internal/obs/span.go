package obs

// Span trees and trace export. A Span is one operator's slice of a
// query's execution: when it first produced work, when it exhausted,
// how many tuples flowed through it, and how much storage it consumed.
// The execution layer records the raw per-step numbers; the serving
// layer assembles them into the tree mirroring the plan shape and hands
// the result here for export — as an indented text tree for terminals,
// or as Chrome trace-event JSON loadable in Perfetto/chrome://tracing.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Span is one operator's recorded execution within a query. Timestamps
// are nanosecond offsets from the owning trace's start, so spans are
// self-contained and comparable across process restarts. Durations are
// inclusive: a parent span covers the time and storage consumption of
// the children nested under it, matching how trace viewers render
// flame-style nesting.
type Span struct {
	// Name is the operator's display label (e.g. "child::person" or
	// "pred").
	Name string `json:"name"`
	// Kind classifies the operator: "axis", "pred", "literal", "root".
	Kind string `json:"kind"`
	// StartNS/EndNS bound the span as offsets from the trace start.
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// In, Scanned, Out are the operator's actual tuple counts: context
	// tuples consumed, index entries scanned, tuples produced.
	In      uint64 `json:"in"`
	Scanned uint64 `json:"scanned,omitempty"`
	Out     uint64 `json:"out"`
	// PagesRead and RecordsDecoded are the storage consumption charged
	// while this operator (or a descendant) was advancing — inclusive,
	// like the timestamps.
	PagesRead      uint64 `json:"pages_read,omitempty"`
	RecordsDecoded uint64 `json:"records_decoded,omitempty"`
	// EstIn/EstOut are the optimizer's cardinality estimates for the
	// operator, present when the executed plan was costed (Estimated).
	// Comparing them against In/Out is the point of the whole exercise.
	EstIn     uint64 `json:"est_in,omitempty"`
	EstOut    uint64 `json:"est_out,omitempty"`
	Estimated bool   `json:"estimated,omitempty"`
	// Children are the spans nested under this one (context child first,
	// then predicate subtrees), in plan order.
	Children []*Span `json:"children,omitempty"`
	// Attrs carries exporter-visible annotations for spans assembled
	// outside the executor (serve-layer spans: request ID, byte counts,
	// outcome); nil for engine operator spans.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// QueryTrace is one query's complete recorded execution: identity,
// end-to-end timings, whole-query resource consumption, and the span
// tree. It is the unit the flight recorder stores and the exporters
// consume.
type QueryTrace struct {
	// ID is the engine-assigned trace sequence number, unique per engine
	// lifetime.
	ID uint64 `json:"id"`
	// Expr and Doc identify the query.
	Expr string `json:"expr"`
	Doc  string `json:"doc"`
	// Start is the wall-clock query start time.
	Start time.Time `json:"start"`
	// Compile and Total are the compile(+optimize) and end-to-end
	// durations.
	Compile time.Duration `json:"compile_ns"`
	Total   time.Duration `json:"total_ns"`
	// CacheHit reports whether the plan came from the plan cache.
	CacheHit bool `json:"cache_hit"`
	// Results is the number of result tuples delivered.
	Results uint64 `json:"results"`
	// Whole-query storage consumption.
	PagesRead      uint64 `json:"pages_read"`
	RecordsDecoded uint64 `json:"records_decoded"`
	NodeCacheHits  uint64 `json:"node_cache_hits"`
	// Err is the query's terminal error text, empty on success.
	Err string `json:"err,omitempty"`
	// Request and Tenant tie the trace to the serving-layer request it
	// ran under: the wire request ID (X-Vamana-Request) and the tenant
	// it billed to. Empty for queries not driven through vamanad.
	Request string `json:"request,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	// Root is the span tree, nil when spans were not recorded (e.g. the
	// query failed before execution).
	Root *Span `json:"root,omitempty"`
}

// WriteTree writes the trace as an indented text tree, one line per
// span: timings, actual tuple counts, estimated-vs-actual cardinality,
// and storage consumption. This is what `vamana query -trace` prints.
func (t *QueryTrace) WriteTree(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "trace %d %q doc=%s start=%s compile=%s total=%s results=%d pages=%d records=%d cachehits=%d",
		t.ID, t.Expr, t.Doc, t.Start.Format(time.RFC3339Nano), t.Compile, t.Total,
		t.Results, t.PagesRead, t.RecordsDecoded, t.NodeCacheHits); err != nil {
		return err
	}
	if t.Request != "" {
		if _, err := fmt.Fprintf(w, " req=%s", t.Request); err != nil {
			return err
		}
	}
	if t.Tenant != "" {
		if _, err := fmt.Fprintf(w, " tenant=%s", t.Tenant); err != nil {
			return err
		}
	}
	if t.CacheHit {
		if _, err := io.WriteString(w, " plan=cached"); err != nil {
			return err
		}
	}
	if t.Err != "" {
		if _, err := fmt.Fprintf(w, " err=%q", t.Err); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	if t.Root == nil {
		return nil
	}
	return writeSpanTree(w, t.Root, 0)
}

func writeSpanTree(w io.Writer, s *Span, depth int) error {
	dur := time.Duration(s.EndNS - s.StartNS)
	if _, err := fmt.Fprintf(w, "%s%s  %s  in=%d", strings.Repeat("  ", depth), s.Name, dur, s.In); err != nil {
		return err
	}
	if s.Scanned > 0 {
		if _, err := fmt.Fprintf(w, " scanned=%d", s.Scanned); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, " out=%d", s.Out); err != nil {
		return err
	}
	if s.Estimated {
		if _, err := fmt.Fprintf(w, " est_in=%d est_out=%d", s.EstIn, s.EstOut); err != nil {
			return err
		}
	}
	if s.PagesRead > 0 || s.RecordsDecoded > 0 {
		if _, err := fmt.Fprintf(w, " pages=%d records=%d", s.PagesRead, s.RecordsDecoded); err != nil {
			return err
		}
	}
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, " %s=%s", k, s.Attrs[k]); err != nil {
				return err
			}
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, c := range s.Children {
		if err := writeSpanTree(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace-event ("X" complete-event phase).
// Field order here fixes the JSON key order, which keeps the output
// deterministic for golden tests.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat"`
	Ph   string      `json:"ph"`
	TS   float64     `json:"ts"`  // microseconds
	Dur  float64     `json:"dur"` // microseconds
	PID  int         `json:"pid"`
	TID  uint64      `json:"tid"`
	Args interface{} `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	PID  int         `json:"pid"`
	TID  uint64      `json:"tid"`
	Args interface{} `json:"args"`
}

type chromeFile struct {
	TraceEvents []interface{} `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// spanArgs is the per-event metadata payload shown in the trace
// viewer's detail pane.
type spanArgs struct {
	Kind           string            `json:"kind"`
	In             uint64            `json:"in"`
	Scanned        uint64            `json:"scanned,omitempty"`
	Out            uint64            `json:"out"`
	PagesRead      uint64            `json:"pages_read,omitempty"`
	RecordsDecoded uint64            `json:"records_decoded,omitempty"`
	EstIn          uint64            `json:"est_in,omitempty"`
	EstOut         uint64            `json:"est_out,omitempty"`
	Attrs          map[string]string `json:"attrs,omitempty"`
}

// WriteChromeTrace writes the traces as a Chrome trace-event JSON
// object (the {"traceEvents": [...]} form) loadable in Perfetto or
// chrome://tracing. Each query becomes one "thread" (tid = trace ID)
// under a shared process, with its spans as nested "X" complete events;
// timestamps are microsecond offsets from the earliest trace's start so
// concurrent queries line up on the shared timeline.
func WriteChromeTrace(w io.Writer, traces []*QueryTrace) error {
	var base time.Time
	for _, t := range traces {
		if base.IsZero() || t.Start.Before(base) {
			base = t.Start
		}
	}
	f := chromeFile{TraceEvents: []interface{}{}, DisplayUnit: "ns"}
	for _, t := range traces {
		offUS := float64(t.Start.Sub(base).Nanoseconds()) / 1e3
		label := t.Expr
		if t.Doc != "" {
			label = t.Doc + ": " + t.Expr
		}
		f.TraceEvents = append(f.TraceEvents, chromeMeta{
			Name: "thread_name", Ph: "M", PID: 1, TID: t.ID,
			Args: map[string]string{"name": fmt.Sprintf("query %d %s", t.ID, label)},
		})
		// The whole-query envelope event covers compile + execution.
		// Request identity joins only when present, so engine-only
		// traces keep their exact historical (golden-tested) shape.
		qargs := map[string]interface{}{
			"expr": t.Expr, "doc": t.Doc, "results": t.Results,
			"cache_hit": t.CacheHit, "pages_read": t.PagesRead,
			"records_decoded": t.RecordsDecoded, "node_cache_hits": t.NodeCacheHits,
		}
		if t.Request != "" {
			qargs["request"] = t.Request
		}
		if t.Tenant != "" {
			qargs["tenant"] = t.Tenant
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "query", Cat: "query", Ph: "X",
			TS: offUS, Dur: float64(t.Total.Nanoseconds()) / 1e3,
			PID: 1, TID: t.ID,
			Args: qargs,
		})
		if t.Compile > 0 {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "compile", Cat: "compile", Ph: "X",
				TS: offUS, Dur: float64(t.Compile.Nanoseconds()) / 1e3,
				PID: 1, TID: t.ID,
			})
		}
		appendChromeSpans(&f.TraceEvents, t.Root, offUS, t.ID)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

func appendChromeSpans(events *[]interface{}, s *Span, offUS float64, tid uint64) {
	if s == nil {
		return
	}
	*events = append(*events, chromeEvent{
		Name: s.Name, Cat: s.Kind, Ph: "X",
		TS:  offUS + float64(s.StartNS)/1e3,
		Dur: float64(s.EndNS-s.StartNS) / 1e3,
		PID: 1, TID: tid,
		Args: spanArgs{
			Kind: s.Kind, In: s.In, Scanned: s.Scanned, Out: s.Out,
			PagesRead: s.PagesRead, RecordsDecoded: s.RecordsDecoded,
			EstIn: s.EstIn, EstOut: s.EstOut, Attrs: s.Attrs,
		},
	})
	for _, c := range s.Children {
		appendChromeSpans(events, c, offUS, tid)
	}
}
