package obs

// Q-error accumulators for the cost-model observatory: lock-free striped
// histograms over the multiplicative estimation error
//
//	q = max(est/act, act/est) >= 1
//
// in power-of-two buckets, mirroring the latency Histogram's layout. An
// accumulator is a plain data structure, not a registered metric: the
// cost observatory keys one per operator class (axis × rewrite-rule
// provenance) per engine, and the engine's exposition writes them out as
// labeled series. Observations are two or three atomic adds into the
// caller's stripe; the enabled switch gates them like every other
// obs write.

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// qerrBuckets is the number of power-of-two q-error buckets: bucket i
// counts observations with q in [2^i, 2^(i+1)), so bucket 0 is the
// within-2x band and bucket 23 absorbs errors beyond 8 million x.
const qerrBuckets = 24

// qerrStripe keeps one writer group's buckets on its own cache lines
// (trailing pad rounds the struct to a cache-line multiple).
type qerrStripe struct {
	buckets [qerrBuckets]atomic.Uint64
	under   atomic.Uint64 // observations with act > est (upper-bound miss)
	_       [48]byte
}

// QErrorAccum accumulates q-error observations for one operator class.
// The zero value is ready to use. Safe for concurrent use.
type QErrorAccum struct {
	stripes [numStripes]qerrStripe
	// maxBits holds the float64 bits of the largest q observed (q >= 1,
	// so the bit patterns order like the values and a CAS max works).
	maxBits atomic.Uint64
}

// QError returns the q-error of one (estimate, actual) pair:
// max(est/act, act/est), with zeroes smoothed to 1 so the ratio stays
// finite (an estimate of 0 against 8 actuals is a q-error of 8).
func QError(est, act uint64) float64 {
	e, a := est, act
	if e == 0 {
		e = 1
	}
	if a == 0 {
		a = 1
	}
	if e >= a {
		return float64(e) / float64(a)
	}
	return float64(a) / float64(e)
}

// Observe records one estimated-vs-actual cardinality pair when
// collection is enabled, and returns the pair's q-error (1 when
// collection is off, since nothing was recorded).
func (h *QErrorAccum) Observe(est, act uint64) float64 {
	if !enabled.Load() {
		return 1
	}
	e, a := est, act
	if e == 0 {
		e = 1
	}
	if a == 0 {
		a = 1
	}
	var ratio uint64
	under := a > e
	if under {
		ratio = a / e
	} else {
		ratio = e / a
	}
	// floor(log2(floor(x))) == floor(log2(x)) for x >= 1, so the integer
	// ratio lands in the same power-of-two bucket as the real one.
	b := bits.Len64(ratio) - 1
	if b >= qerrBuckets {
		b = qerrBuckets - 1
	}
	s := &h.stripes[stripeIdx()]
	s.buckets[b].Add(1)
	if under {
		s.under.Add(1)
	}
	q := QError(est, act)
	qb := math.Float64bits(q)
	for {
		cur := h.maxBits.Load()
		if qb <= cur || h.maxBits.CompareAndSwap(cur, qb) {
			break
		}
	}
	return q
}

// QErrorSnapshot is a point-in-time copy of an accumulator's state.
type QErrorSnapshot struct {
	Count   uint64
	Under   uint64 // observations where the actual exceeded the estimate
	Max     float64
	Buckets [qerrBuckets]uint64 // Buckets[i]: q in [2^i, 2^(i+1))
}

// Snapshot folds the stripes into a consistent-enough copy.
func (h *QErrorAccum) Snapshot() QErrorSnapshot {
	var s QErrorSnapshot
	for i := range h.stripes {
		st := &h.stripes[i]
		for j := range st.buckets {
			n := st.buckets[j].Load()
			s.Buckets[j] += n
			s.Count += n
		}
		s.Under += st.under.Load()
	}
	if b := h.maxBits.Load(); b != 0 {
		s.Max = math.Float64frombits(b)
	}
	return s
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed q-errors at power-of-two resolution: the top of the bucket
// containing the quantile. Zero when empty, never below 1 otherwise.
func (s QErrorSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= target {
			return float64(uint64(1) << uint(i+1))
		}
	}
	return float64(uint64(1) << uint(qerrBuckets))
}
