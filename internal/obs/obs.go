// Package obs is VAMANA's zero-dependency observability substrate:
// process-global atomic counters and lock-free latency histograms with a
// Prometheus-text / expvar-style exposition. Every storage and execution
// layer reports into it, so a serving process can answer "what did the
// engine actually do" — page reads, index seeks, cache hits, per-axis
// scans, query latencies — without a debugger or a recompile.
//
// Counters here are process-global (they aggregate over every open DB in
// the process); per-store counters (pager I/O, B+-tree node-cache
// traffic) live as plain fields under their owners' existing locks and
// are merged into the exposition by core.Engine.WriteMetrics.
//
// The whole layer can be switched off (SetEnabled, or the VAMANA_OBS=off
// environment variable), reducing every hot-path instrumentation site to
// one shared atomic load — the serving fast path stays allocation-free
// either way, because per-run counts are batched in the executor and
// flushed once per query.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// enabled gates every counter and histogram write. Default on; the
// VAMANA_OBS environment variable ("off", "0", "false") disables it at
// process start, and SetEnabled toggles it at runtime (used by the
// metrics-overhead benchmark gate).
var enabled atomic.Bool

func init() {
	switch os.Getenv("VAMANA_OBS") {
	case "off", "0", "false":
		enabled.Store(false)
	default:
		enabled.Store(true)
	}
}

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled switches metric collection on or off at runtime. Counters
// keep their accumulated values while disabled; they just stop moving.
func SetEnabled(on bool) { enabled.Store(on) }

// registry holds every metric in registration order for exposition.
var registry struct {
	mu         sync.Mutex
	counters   []*Counter
	histograms []*Histogram
	gauges     []*Gauge
	vecs       []*CounterVec
	histVecs   []*HistogramVec
}

// numStripes spreads each metric's hot atomics over independent cache
// lines. Concurrent serving goroutines would otherwise serialize on the
// same line for every counter bump, which costs several percent of warm
// query latency at GOMAXPROCS writers.
const numStripes = 8

// stripe is one cache-line-padded accumulator cell.
type stripe struct {
	v atomic.Uint64
	_ [56]byte
}

// stripeIdx derives a stripe from the current goroutine's stack address.
// Goroutine stacks live in distinct 2KB+ spans, so the bits above the
// frame offset spread concurrent writers across stripes at the cost of a
// couple of register instructions — no TLS, no extra atomics.
func stripeIdx() uint64 {
	var b byte
	return (uint64(uintptr(unsafe.Pointer(&b))) >> 11) & (numStripes - 1)
}

// Counter is a monotonically increasing striped atomic counter,
// registered under a unique exposition name. Increments are safe from
// any goroutine.
type Counter struct {
	name    string
	help    string
	stripes [numStripes]stripe
}

// NewCounter creates and registers a counter. Names must be unique;
// registering a duplicate returns the existing counter so package-level
// metric variables stay safe under test re-initialization.
func NewCounter(name, help string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counters {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name, help: help}
	registry.counters = append(registry.counters, c)
	return c
}

// Add increments the counter by n when collection is enabled.
func (c *Counter) Add(n uint64) {
	if enabled.Load() {
		c.stripes[stripeIdx()].v.Add(n)
	}
}

// Inc increments the counter by one when collection is enabled.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter's current value (the sum over stripes).
func (c *Counter) Value() uint64 {
	var v uint64
	for i := range c.stripes {
		v += c.stripes[i].v.Load()
	}
	return v
}

// Name returns the counter's exposition name.
func (c *Counter) Name() string { return c.name }

// histBuckets is the number of power-of-two latency buckets: bucket i
// counts observations with nanoseconds in [2^(i-1), 2^i), which spans
// sub-microsecond index probes through multi-minute scans.
const histBuckets = 41

// Histogram is a lock-free latency histogram over power-of-two
// nanosecond buckets. Observations are two atomic adds into the caller's
// stripe; readers take a consistent-enough snapshot without stopping
// writers.
type Histogram struct {
	name    string
	help    string
	stripes [numStripes]histStripe
}

// histStripe keeps one writer group's buckets together and away from the
// other stripes' lines (the trailing pad rounds the struct to a
// cache-line multiple).
type histStripe struct {
	buckets [histBuckets]atomic.Uint64
	sumNS   atomic.Uint64
	_       [48]byte
}

// NewHistogram creates and registers a histogram (same uniqueness rule
// as NewCounter).
func NewHistogram(name, help string) *Histogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, h := range registry.histograms {
		if h.name == name {
			return h
		}
	}
	h := &Histogram{name: name, help: help}
	registry.histograms = append(registry.histograms, h)
	return h
}

// Observe records one duration when collection is enabled.
func (h *Histogram) Observe(d time.Duration) {
	if !enabled.Load() {
		return
	}
	ns := uint64(d.Nanoseconds())
	b := bits.Len64(ns) // 0 for 0ns, else floor(log2)+1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	s := &h.stripes[stripeIdx()]
	s.buckets[b].Add(1)
	s.sumNS.Add(ns)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Count   uint64
	SumNS   uint64
	Buckets [histBuckets]uint64 // Buckets[i] counts observations < 2^i ns (non-cumulative)
}

// Snapshot copies the histogram's current buckets and sum, folding the
// stripes together.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return snapshotStripes(&h.stripes)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed durations, at power-of-two resolution. Zero when empty.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= target {
			return time.Duration(uint64(1)<<uint(i) - 1)
		}
	}
	return time.Duration(uint64(1)<<uint(histBuckets) - 1)
}

// Mean returns the mean observed duration, zero when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// Snapshot returns every registered metric's current value keyed by
// exposition name. Histograms contribute <name>_count and <name>_sum_ns.
// Intended for tests (monotonicity assertions) and expvar-style dumps.
func Snapshot() map[string]uint64 {
	registry.mu.Lock()
	counters := append([]*Counter(nil), registry.counters...)
	histograms := append([]*Histogram(nil), registry.histograms...)
	gauges := append([]*Gauge(nil), registry.gauges...)
	vecs := append([]*CounterVec(nil), registry.vecs...)
	histVecs := append([]*HistogramVec(nil), registry.histVecs...)
	registry.mu.Unlock()
	out := make(map[string]uint64, len(counters)+2*len(histograms))
	for _, c := range counters {
		out[c.name] = c.Value()
	}
	for _, g := range gauges {
		out[g.name] = uint64(g.Value())
	}
	for _, v := range vecs {
		v.snapshotInto(out)
	}
	for _, v := range histVecs {
		v.snapshotInto(out)
	}
	for _, h := range histograms {
		s := h.Snapshot()
		out[h.name+"_count"] = s.Count
		out[h.name+"_sum_ns"] = s.SumNS
		out[h.name+"_p50"] = uint64(s.Quantile(0.50))
		out[h.name+"_p95"] = uint64(s.Quantile(0.95))
		out[h.name+"_p99"] = uint64(s.Quantile(0.99))
	}
	return out
}

// WriteText writes every registered metric in Prometheus text exposition
// format (counters as `counter`, histograms as cumulative `histogram`
// with nanosecond `le` bounds).
func WriteText(w io.Writer) error {
	registry.mu.Lock()
	counters := append([]*Counter(nil), registry.counters...)
	histograms := append([]*Histogram(nil), registry.histograms...)
	gauges := append([]*Gauge(nil), registry.gauges...)
	vecs := append([]*CounterVec(nil), registry.vecs...)
	histVecs := append([]*HistogramVec(nil), registry.histVecs...)
	registry.mu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	for _, c := range counters {
		if err := WriteCounterText(w, c.name, c.help, c.Value()); err != nil {
			return err
		}
	}
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			g.name, g.help, g.name, g.name, g.Value()); err != nil {
			return err
		}
	}
	sort.Slice(vecs, func(i, j int) bool { return vecs[i].name < vecs[j].name })
	for _, v := range vecs {
		if err := v.writeText(w); err != nil {
			return err
		}
	}
	sort.Slice(histVecs, func(i, j int) bool { return histVecs[i].name < histVecs[j].name })
	for _, v := range histVecs {
		if err := v.writeText(w); err != nil {
			return err
		}
	}
	for _, h := range histograms {
		s := h.Snapshot()
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name); err != nil {
			return err
		}
		var cum uint64
		for i, n := range s.Buckets {
			cum += n
			// Skip empty leading/trailing buckets but keep the shape
			// readable: emit a bucket once anything at or below it exists.
			if cum == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", h.name, uint64(1)<<uint(i)-1, cum); err != nil {
				return err
			}
			if cum == s.Count {
				break
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			h.name, s.Count, h.name, s.SumNS, h.name, s.Count); err != nil {
			return err
		}
		// Precomputed quantile gauges (power-of-two upper bounds) so
		// dashboards get tail latency without PromQL bucket math.
		for _, q := range [...]struct {
			suffix string
			q      float64
		}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
			if _, err := fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %d\n",
				h.name, q.suffix, h.name, q.suffix, uint64(s.Quantile(q.q))); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCounterText writes one counter-typed metric line with its HELP/
// TYPE preamble — shared by the registry exposition and by layers that
// expose per-instance counters (store metrics, cache stats).
func WriteCounterText(w io.Writer, name, help string, v uint64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	return err
}

// Handler returns an HTTP handler that serves the metric exposition:
// the global registry plus any extra per-instance sections (e.g. a
// database's storage counters) appended by the callbacks.
func Handler(extra ...func(w io.Writer)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteText(w); err != nil {
			return
		}
		for _, fn := range extra {
			fn(w)
		}
	})
}
