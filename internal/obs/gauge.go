package obs

// Gauges and labeled counters, added for the serving daemon: queue
// depth and in-flight counts are instantaneous values (gauges), and
// per-tenant traffic needs one counter per label value (a vector)
// without pre-declaring the tenant population.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Gauge is an instantaneous value (current queue depth, in-flight
// queries), registered under a unique exposition name. Unlike Counter it
// can go down, and it is not gated on Enabled: gauges back admission
// decisions and health output, not just dashboards, so they must stay
// truthful with collection off.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// NewGauge creates and registers a gauge (same uniqueness rule as
// NewCounter).
func NewGauge(name, help string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, g := range registry.gauges {
		if g.name == name {
			return g
		}
	}
	g := &Gauge{name: name, help: help}
	registry.gauges = append(registry.gauges, g)
	return g
}

// Set stores the gauge's current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the gauge's exposition name.
func (g *Gauge) Name() string { return g.name }

// CounterVec is a family of monotonically increasing counters keyed by
// one label value — per-tenant queries, per-tenant rejections. Label
// values materialize their counter on first use and live for the
// process; the serving layer bounds the population (tenants come from
// configuration, plus one catch-all), so the map never grows unbounded.
type CounterVec struct {
	name  string
	help  string
	label string

	mu sync.RWMutex
	m  map[string]*atomic.Uint64
}

// NewCounterVec creates and registers a labeled counter family (same
// uniqueness rule as NewCounter; uniqueness is by family name).
func NewCounterVec(name, label, help string) *CounterVec {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, v := range registry.vecs {
		if v.name == name {
			return v
		}
	}
	v := &CounterVec{name: name, help: help, label: label, m: make(map[string]*atomic.Uint64)}
	registry.vecs = append(registry.vecs, v)
	return v
}

// cell returns (creating if needed) the counter cell for one label
// value.
func (v *CounterVec) cell(value string) *atomic.Uint64 {
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[value]; c == nil {
		c = new(atomic.Uint64)
		v.m[value] = c
	}
	return c
}

// Add increments the counter for the given label value when collection
// is enabled.
func (v *CounterVec) Add(value string, n uint64) {
	if enabled.Load() {
		v.cell(value).Add(n)
	}
}

// Inc increments the counter for the given label value by one.
func (v *CounterVec) Inc(value string) { v.Add(value, 1) }

// Value returns the current count for one label value (zero when the
// label has never been incremented).
func (v *CounterVec) Value(value string) uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if c := v.m[value]; c != nil {
		return c.Load()
	}
	return 0
}

// snapshotInto folds the family's current values into out, keyed
// name{label="value"} — the form Snapshot and dashboards consume. The
// label value is escaped per the Prometheus spec (appendPromLabel), not
// Go %q, so user-supplied values like tenant names round-trip.
func (v *CounterVec) snapshotInto(out map[string]uint64) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for value, c := range v.m {
		out[fmt.Sprintf("%s{%s}", v.name, promLabel(v.label, value))] = c.Load()
	}
}

// writeText writes the family in Prometheus text exposition format,
// label values sorted for deterministic output.
func (v *CounterVec) writeText(w io.Writer) error {
	v.mu.RLock()
	values := make([]string, 0, len(v.m))
	for value := range v.m {
		values = append(values, value)
	}
	counts := make(map[string]uint64, len(values))
	for value, c := range v.m {
		counts[value] = c.Load()
	}
	v.mu.RUnlock()
	if len(values) == 0 {
		return nil
	}
	sort.Strings(values)
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", v.name, v.help, v.name); err != nil {
		return err
	}
	for _, value := range values {
		if _, err := fmt.Fprintf(w, "%s{%s} %d\n", v.name, promLabel(v.label, value), counts[value]); err != nil {
			return err
		}
	}
	return nil
}
