package core

// The cost-model observatory: online estimated-vs-actual cardinality
// accuracy tracking, and the optional calibration feedback loop.
//
// Collection joins each finished run's per-step actual counters
// (exec.Iterator.StepStat) against the optimizer's Table I annotations
// already sitting on the executed plan, and folds the q-error
//
//	q = max(est/act, act/est)
//
// into one obs.QErrorAccum per operator class, where a class is the
// step's axis × the rewrite rule that produced it (plan.Step.Prov). The
// fold runs for every query on the serving path; it is allocation-free
// and all-atomic, so it rides inside the existing ≤1% observability
// budget (TestCalibrationOverheadGate pins this).
//
// Calibration (Options.CostCalibration) additionally maintains a
// per-class EWMA of log2(act/raw_est) — a running geometric mean of the
// model's multiplicative error — and exposes 2^EWMA (clamped to at most
// 1) as a correction factor applied inside cost estimation. Learning
// always reads Cost.RawOut, the pre-correction bound, so the loop never
// feeds on its own output. When a class's EWMA drifts more than
// calibDrift log2-units past the value it last published, the
// triggering document's statistics epoch is bumped, which invalidates
// cached plans and probe memos through the machinery updates already
// use. A plan-regression sentinel counts compiles where the calibrated
// cost model ranked a different plan cheapest than the raw model would
// have — the signal that calibration is actually changing decisions.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"vamana/internal/exec"
	"vamana/internal/mass"
	"vamana/internal/obs"
	"vamana/internal/opt"
	"vamana/internal/plan"
)

const (
	// calibAlpha is the EWMA smoothing constant: one observation moves
	// the running log-error 10% of the way toward itself.
	calibAlpha = 0.1
	// calibDrift is the log2 distance the EWMA must move from its last
	// published value before the statistics epoch is bumped (0.75 ≈ a
	// 1.7x change in the correction factor).
	calibDrift = 0.75
	// calibMinFactor floors the correction so a run of zero-result
	// queries cannot collapse every estimate to 1.
	calibMinFactor = 1.0 / 1024
)

// unseededBits marks an EWMA cell that has not absorbed a sample yet
// (NaN cannot arise from learning, which only stores finite values).
var unseededBits = math.Float64bits(math.NaN())

// provNames enumerates the provenance classes: index 0 is the compiler
// (no rewrite), then the library rules in order, then a catch-all for
// rules outside the default library.
var provNames = func() []string {
	names := []string{""}
	for _, r := range opt.Library() {
		names = append(names, r.Name)
	}
	return append(names, "other")
}()

var provIdx = func() map[string]int {
	m := make(map[string]int, len(provNames))
	for i, n := range provNames {
		m[n] = i
	}
	return m
}()

// CostOffender is the worst-misestimated observation recorded for a
// class: the expression and operator whose estimate missed by the most.
type CostOffender struct {
	Expr   string  `json:"expr"`
	Op     string  `json:"op"`
	Est    uint64  `json:"est"`
	Act    uint64  `json:"act"`
	QError float64 `json:"q_error"`
}

// CostClassProfile summarizes one operator class's q-error profile.
type CostClassProfile struct {
	Axis           string       `json:"axis"`
	Rewrite        string       `json:"rewrite"` // provenance rule; "" = compiler-built
	Samples        uint64       `json:"samples"`
	Underestimates uint64       `json:"underestimates"`
	P50            float64      `json:"p50_q_error"` // power-of-two upper bounds
	P95            float64      `json:"p95_q_error"`
	Max            float64      `json:"max_q_error"`
	Factor         float64      `json:"calibration_factor"` // applied correction; 1 = none
	Worst          CostOffender `json:"worst"`
}

// CostProfile is a point-in-time view of the observatory.
type CostProfile struct {
	Classes            []CostClassProfile `json:"classes"`
	Observations       uint64             `json:"observations"`
	Underestimates     uint64             `json:"underestimates"`
	CalibrationEnabled bool               `json:"calibration_enabled"`
	EpochBumps         uint64             `json:"epoch_bumps"`
	PlanRegressions    uint64             `json:"plan_regressions"`
}

// costClass is one axis × provenance accumulator cell.
type costClass struct {
	axis mass.Axis
	prov string
	acc  obs.QErrorAccum

	// Calibration state. ewmaBits holds the float64 bits of the running
	// EWMA of log2(act/raw_est); lastBumpBits the EWMA value at the last
	// epoch bump (zero value = 0.0, the uncalibrated baseline).
	ewmaBits     atomic.Uint64
	lastBumpBits atomic.Uint64

	// worstQBits gates the slow path below: float64 bits of the largest
	// q recorded as an offender (positive floats order like their bits).
	worstQBits atomic.Uint64
	worst      CostOffender // guarded by CostObservatory.mu
}

func newCostClass(axis mass.Axis, prov string) *costClass {
	c := &costClass{axis: axis, prov: prov}
	c.ewmaBits.Store(unseededBits)
	return c
}

// factor returns the class's current multiplicative correction in
// [calibMinFactor, 1].
func (c *costClass) factor() float64 {
	b := c.ewmaBits.Load()
	if b == unseededBits {
		return 1
	}
	ew := math.Float64frombits(b)
	if ew >= 0 {
		// The raw bound held or underestimated; never inflate past it.
		return 1
	}
	f := math.Exp2(ew)
	if f < calibMinFactor {
		return calibMinFactor
	}
	return f
}

// CostObservatory accumulates est-vs-act accuracy for one engine.
type CostObservatory struct {
	store       *mass.Store
	calibrating bool

	// cells is the flat [axis][provenance] table (allocated once at
	// construction); entries are created lazily under mu and then read
	// lock-free.
	cells []atomic.Pointer[costClass]

	mu sync.Mutex // guards cell creation and per-class worst offenders

	bumps       atomic.Uint64 // calibration epoch bumps issued
	regressions atomic.Uint64 // plan-regression sentinel hits
}

func newCostObservatory(store *mass.Store, calibrating bool) *CostObservatory {
	return &CostObservatory{
		store:       store,
		calibrating: calibrating,
		cells:       make([]atomic.Pointer[costClass], mass.AxisCount*len(provNames)),
	}
}

// class returns the accumulator cell for (axis, provenance), creating it
// on first use. The hot path is one atomic pointer load.
func (o *CostObservatory) class(axis mass.Axis, prov string) *costClass {
	pi := 0
	if prov != "" {
		var ok bool
		if pi, ok = provIdx[prov]; !ok {
			pi = len(provNames) - 1 // "other"
		}
	}
	i := int(axis)*len(provNames) + pi
	if c := o.cells[i].Load(); c != nil {
		return c
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if c := o.cells[i].Load(); c != nil {
		return c
	}
	c := newCostClass(axis, provNames[pi])
	o.cells[i].Store(c)
	return c
}

// fold joins the finished run's actual per-step cardinalities against
// the plan's estimates. It returns the worst-misestimated step and its
// q-error (nil, 0 when nothing was recorded) for the slow-query log.
// Allocation-free except when a class records a new worst offender.
func (o *CostObservatory) fold(it *exec.Iterator, doc mass.DocID, expr string) (*plan.Step, float64) {
	if !obs.Enabled() {
		return nil, 0
	}
	var worstOp *plan.Step
	var worstQ float64
	var nObs, nUnder uint64
	n := it.NumSteps()
	for i := 0; i < n; i++ {
		st := it.StepStat(i)
		if st.Op == nil || !st.Op.Cost.Done {
			continue
		}
		est := st.Op.Cost.Out
		cls := o.class(st.Op.Axis, st.Op.Prov)
		q := cls.acc.Observe(est, st.Out)
		nObs++
		if st.Out > est {
			nUnder++
		}
		if q > worstQ {
			worstQ, worstOp = q, st.Op
		}
		if math.Float64bits(q) > cls.worstQBits.Load() {
			o.recordOffender(cls, expr, st.Op, est, st.Out, q)
		}
		if o.calibrating {
			o.learn(cls, doc, st.Op.Cost.RawOut, st.Out)
		}
	}
	obs.CostObservations.Add(nObs)
	obs.CostUnderestimates.Add(nUnder)
	return worstOp, worstQ
}

// recordOffender replaces the class's worst offender if q still exceeds
// it under the lock. Rare: only fires while the running maximum grows.
func (o *CostObservatory) recordOffender(cls *costClass, expr string, s *plan.Step, est, act uint64, q float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if math.Float64bits(q) <= cls.worstQBits.Load() {
		return
	}
	cls.worst = CostOffender{Expr: expr, Op: s.Label(), Est: est, Act: act, QError: q}
	cls.worstQBits.Store(math.Float64bits(q))
}

// learn folds one (raw estimate, actual) pair into the class EWMA and
// bumps the statistics epoch when the factor has drifted.
func (o *CostObservatory) learn(cls *costClass, doc mass.DocID, rawEst, act uint64) {
	e, a := rawEst, act
	if e == 0 {
		e = 1
	}
	if a == 0 {
		a = 1
	}
	l := math.Log2(float64(a) / float64(e))
	var ew float64
	for {
		cur := cls.ewmaBits.Load()
		if cur == unseededBits {
			ew = l
		} else {
			ew = (1-calibAlpha)*math.Float64frombits(cur) + calibAlpha*l
		}
		if cls.ewmaBits.CompareAndSwap(cur, math.Float64bits(ew)) {
			break
		}
	}
	lastBits := cls.lastBumpBits.Load()
	if math.Abs(ew-math.Float64frombits(lastBits)) < calibDrift {
		return
	}
	// One goroutine wins the publish; the epoch bump invalidates cached
	// plans and probe memos for the triggering document exactly like a
	// data mutation would.
	if cls.lastBumpBits.CompareAndSwap(lastBits, math.Float64bits(ew)) {
		o.store.BumpEpoch(doc)
		o.bumps.Add(1)
		obs.CostCalibrationBumps.Inc()
	}
}

// calibrateStep is the correction hook handed to cost.Estimator: it
// scales a step's Table I OUT bound by the learned class factor.
func (o *CostObservatory) calibrateStep(s *plan.Step, out uint64) uint64 {
	pi := 0
	if s.Prov != "" {
		var ok bool
		if pi, ok = provIdx[s.Prov]; !ok {
			pi = len(provNames) - 1
		}
	}
	cls := o.cells[int(s.Axis)*len(provNames)+pi].Load()
	if cls == nil {
		return out
	}
	f := cls.factor()
	if f >= 1 {
		return out
	}
	v := uint64(float64(out)*f + 0.5)
	if v == 0 && out > 0 {
		v = 1 // keep nonzero bounds nonzero: selectivity math stays sane
	}
	return v
}

// calibrationActive reports whether any class has learned a correction
// that actually changes estimates (factor below 1). Cheap: a sweep of
// atomic pointer loads, called only on compile misses.
func (o *CostObservatory) calibrationActive() bool {
	for i := range o.cells {
		if cls := o.cells[i].Load(); cls != nil && cls.factor() < 1 {
			return true
		}
	}
	return false
}

// Profile snapshots every populated class, sorted worst-first (p95,
// then sample count).
func (o *CostObservatory) Profile() CostProfile {
	p := CostProfile{CalibrationEnabled: o.calibrating}
	o.mu.Lock()
	for i := range o.cells {
		cls := o.cells[i].Load()
		if cls == nil {
			continue
		}
		snap := cls.acc.Snapshot()
		if snap.Count == 0 {
			continue
		}
		factor := 1.0
		if o.calibrating {
			factor = cls.factor()
		}
		p.Classes = append(p.Classes, CostClassProfile{
			Axis:           cls.axis.String(),
			Rewrite:        cls.prov,
			Samples:        snap.Count,
			Underestimates: snap.Under,
			P50:            snap.Quantile(0.50),
			P95:            snap.Quantile(0.95),
			Max:            snap.Max,
			Factor:         factor,
			Worst:          cls.worst,
		})
		p.Observations += snap.Count
		p.Underestimates += snap.Under
	}
	o.mu.Unlock()
	sort.Slice(p.Classes, func(i, j int) bool {
		a, b := p.Classes[i], p.Classes[j]
		if a.P95 != b.P95 {
			return a.P95 > b.P95
		}
		if a.Samples != b.Samples {
			return a.Samples > b.Samples
		}
		if a.Axis != b.Axis {
			return a.Axis < b.Axis
		}
		return a.Rewrite < b.Rewrite
	})
	p.EpochBumps = o.bumps.Load()
	p.PlanRegressions = o.regressions.Load()
	return p
}

// WriteText renders the profile as an aligned human-readable table.
func (p CostProfile) WriteText(w io.Writer) {
	fmt.Fprintf(w, "cost-model observatory: %d observations, %d underestimates, calibration %v\n",
		p.Observations, p.Underestimates, p.CalibrationEnabled)
	fmt.Fprintf(w, "epoch bumps %d, plan regressions %d\n", p.EpochBumps, p.PlanRegressions)
	if len(p.Classes) == 0 {
		fmt.Fprintln(w, "(no observations yet)")
		return
	}
	fmt.Fprintf(w, "%-18s %-20s %9s %7s %8s %8s %10s %7s\n",
		"AXIS", "REWRITE", "SAMPLES", "UNDER", "P50", "P95", "MAX", "FACTOR")
	for _, c := range p.Classes {
		rw := c.Rewrite
		if rw == "" {
			rw = "(compiler)"
		}
		fmt.Fprintf(w, "%-18s %-20s %9d %7d %8.1f %8.1f %10.1f %7.3f\n",
			c.Axis, rw, c.Samples, c.Underestimates, c.P50, c.P95, c.Max, c.Factor)
	}
	fmt.Fprintln(w, "\nworst offenders:")
	for _, c := range p.Classes {
		if c.Worst.QError < 2 {
			continue
		}
		rw := c.Rewrite
		if rw == "" {
			rw = "(compiler)"
		}
		fmt.Fprintf(w, "  %s/%s: q=%.1f est=%d act=%d op=%q expr=%q\n",
			c.Axis, rw, c.Worst.QError, c.Worst.Est, c.Worst.Act, c.Worst.Op, c.Worst.Expr)
	}
}

// writeProm renders the profile as Prometheus exposition text with
// axis/rewrite labels, appended to the engine's metrics page.
func (p CostProfile) writeProm(w io.Writer) {
	if len(p.Classes) == 0 {
		return
	}
	families := []struct {
		name, help string
		value      func(c CostClassProfile) float64
	}{
		{"vamana_cost_class_samples", "Q-error observations folded per operator class.",
			func(c CostClassProfile) float64 { return float64(c.Samples) }},
		{"vamana_cost_class_underestimates", "Observations where the actual exceeded the estimate.",
			func(c CostClassProfile) float64 { return float64(c.Underestimates) }},
		{"vamana_cost_class_qerror_p50", "Median q-error (power-of-two bucket upper bound).",
			func(c CostClassProfile) float64 { return c.P50 }},
		{"vamana_cost_class_qerror_p95", "95th-percentile q-error (power-of-two bucket upper bound).",
			func(c CostClassProfile) float64 { return c.P95 }},
		{"vamana_cost_class_qerror_max", "Largest q-error observed.",
			func(c CostClassProfile) float64 { return c.Max }},
		{"vamana_cost_class_factor", "Calibration correction factor in effect (1 = none).",
			func(c CostClassProfile) float64 { return c.Factor }},
	}
	for _, f := range families {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", f.name, f.help, f.name)
		for _, c := range p.Classes {
			fmt.Fprintf(w, "%s{axis=%q,rewrite=%q} %g\n", f.name, c.Axis, c.Rewrite, f.value(c))
		}
	}
}

// planShape fingerprints a plan's operator tree, ignoring cost
// annotations: two plans with the same shape execute identically. Used
// by the plan-regression sentinel to compare the calibrated winner
// against the plan raw costs would have chosen.
func planShape(p *plan.Plan) string {
	var b strings.Builder
	writeShape(&b, p.Root)
	return b.String()
}

func writeShape(b *strings.Builder, op plan.Op) {
	b.WriteString(op.Label())
	ch := op.Children()
	if len(ch) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range ch {
		if i > 0 {
			b.WriteByte(',')
		}
		writeShape(b, c)
	}
	b.WriteByte(')')
}
