package core

// The flight recorder: a bounded ring of the last N complete query
// traces. Unlike TraceEvery sampling (which picks queries up front) the
// recorder keeps every recent query, so when one trips the slow-query
// threshold or a resource budget its full span tree is already captured
// — the diagnosis is retroactive, no re-run with tracing enabled needed.

import (
	"sync"

	"vamana/internal/obs"
)

// flightRecorder is a mutex-guarded ring of exported traces. Writes are
// one pointer store per query (only queries that recorded spans reach
// it); snapshots copy the pointers, never the trees, so a reader holds
// the lock for microseconds regardless of span fan-out.
type flightRecorder struct {
	mu   sync.Mutex
	ring []*obs.QueryTrace
	n    uint64 // total recorded; ring index is n % len(ring)
}

func newFlightRecorder(size int) *flightRecorder {
	return &flightRecorder{ring: make([]*obs.QueryTrace, size)}
}

func (f *flightRecorder) record(t *obs.QueryTrace) {
	f.mu.Lock()
	f.ring[f.n%uint64(len(f.ring))] = t
	f.n++
	f.mu.Unlock()
}

// RecordTrace appends an externally assembled trace to the flight ring.
// The serving layer uses it to record request-level traces — serve-layer
// spans grafted above a captured engine trace (see RequestTrace) — so
// `vamana traces` shows the whole request as one timeline. No-op when
// the recorder is off.
func (e *Engine) RecordTrace(t *obs.QueryTrace) {
	if e.flight != nil {
		e.flight.record(t)
	}
}

// snapshot returns the recorded traces, most recent first. The traces
// themselves are immutable once recorded; callers may hold them freely.
func (f *flightRecorder) snapshot() []*obs.QueryTrace {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.n
	if n > uint64(len(f.ring)) {
		n = uint64(len(f.ring))
	}
	out := make([]*obs.QueryTrace, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, f.ring[(f.n-1-i)%uint64(len(f.ring))])
	}
	return out
}
