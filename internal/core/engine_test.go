package core

import (
	"strings"
	"testing"

	"vamana/internal/flex"
	"vamana/internal/xmark"
)

func openEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestCompileExecutePipeline(t *testing.T) {
	e := openEngine(t)
	src := xmark.GenerateString(xmark.Config{Factor: 0.002, Seed: 81})
	d, err := e.LoadString("auction", src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile("//person/name")
	if err != nil {
		t.Fatal(err)
	}
	if q.Optimized() {
		t.Fatal("Compile produced an optimized query")
	}
	it, err := q.Execute(d)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := it.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := xmark.CountsFor(0.002).Persons
	if len(keys) != want {
		t.Fatalf("names = %d, want %d", len(keys), want)
	}

	qo, err := e.CompileOptimized(d, "//person/name")
	if err != nil {
		t.Fatal(err)
	}
	if !qo.Optimized() {
		t.Fatal("CompileOptimized not marked optimized")
	}
	it2, _ := qo.Execute(d)
	keys2, err := it2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys2) != len(keys) {
		t.Fatalf("optimized result = %d, default = %d", len(keys2), len(keys))
	}
}

func TestQueryReusableAcrossExecutions(t *testing.T) {
	e := openEngine(t)
	d, err := e.LoadString("doc", "<r><x/><x/></r>")
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile("//x")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		it, err := q.Execute(d)
		if err != nil {
			t.Fatal(err)
		}
		keys, err := it.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 2 {
			t.Fatalf("run %d: %d results", i, len(keys))
		}
	}
}

func TestExecuteFromContext(t *testing.T) {
	e := openEngine(t)
	d, err := e.LoadString("doc", "<r><a><x/></a><b><x/><x/></b></r>")
	if err != nil {
		t.Fatal(err)
	}
	q, _ := e.Compile("//b")
	it, _ := q.Execute(d)
	keys, _ := it.Collect()
	if len(keys) != 1 {
		t.Fatal("setup failed")
	}
	rel, err := e.Compile("x")
	if err != nil {
		t.Fatal(err)
	}
	it2, err := rel.ExecuteFrom(d, keys[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := it2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 {
		t.Fatalf("x under b = %d, want 2", len(sub))
	}
}

func TestExplainAndTrace(t *testing.T) {
	e := openEngine(t)
	src := xmark.GenerateString(xmark.Config{Factor: 0.003, Seed: 82})
	d, err := e.LoadString("auction", src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.CompileOptimized(d, "//person/address")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Trace()) == 0 {
		t.Error("no optimizer trace for a rewritable query")
	}
	out, err := q.Explain(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"query:", "rewrite:", "δ="} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q", want)
		}
	}
	if q.Plan() == nil || q.Expr() == "" {
		t.Error("plan/expr accessors broken")
	}
}

func TestEstimateOnly(t *testing.T) {
	e := openEngine(t)
	d, err := e.LoadString("doc", "<r><x>1</x></r>")
	if err != nil {
		t.Fatal(err)
	}
	q, _ := e.Compile("//x")
	p, err := q.Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Root.Cost.Done {
		t.Fatal("Estimate did not annotate the returned plan")
	}
	if q.Plan().Root.Cost.Done {
		t.Fatal("Estimate mutated the query's shared plan")
	}
	_ = flex.Root
}

func TestCompileErrorsPropagate(t *testing.T) {
	e := openEngine(t)
	if _, err := e.Compile("//["); err == nil {
		t.Error("syntax error not reported")
	}
	if _, err := e.Compile("3 * 4"); err == nil {
		t.Error("non-node-set expression compiled")
	}
}
