package core

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"vamana/internal/cost"
	"vamana/internal/exec"
	"vamana/internal/govern"
	"vamana/internal/mass"
	"vamana/internal/obs"
)

// Snapshots and transactions at the engine layer. An engine Snapshot
// wraps a mass.Snapshot (a frozen, refcounted store view) with its own
// query pipeline state: a private plan cache and statistics memo bound to
// the snapshot's store. The snapshot's statistics epochs never move, so
// its cached plans never invalidate and its memoized probes never reset —
// a long-lived snapshot serves a repeated query at full cache-hit speed
// no matter how hard the live store is being updated underneath.

// snapshotPlanCacheSize bounds each snapshot's private plan cache.
// Snapshots are expected to serve a small working set of queries; the
// engine-level cache (shared, epoch-validated) stays the big one.
const snapshotPlanCacheSize = 64

// Snapshot is a frozen, refcounted view of the engine for consistent
// reads. All query entry points work exactly like their Engine
// counterparts but observe the snapshot's state; mutations are rejected
// by the underlying read-only store.
type Snapshot struct {
	e  *Engine
	ms *mass.Snapshot
	st *mass.Store // ms.Store(), cached
	// probes and plans are private to the snapshot: its epochs are
	// frozen, so entries stay valid for the snapshot's whole life.
	probes *cost.MemoProbes
	plans  *planCache
	// finishFn is the iterator finish hook, bound once so the per-query
	// path does not allocate a method value.
	finishFn func(*exec.Iterator)

	queries atomic.Uint64
	results atomic.Uint64
	pages   atomic.Uint64
	records atomic.Uint64
}

// SnapshotUsage aggregates the work served from one snapshot.
type SnapshotUsage struct {
	Queries        uint64 // iterators finished
	Results        uint64 // result nodes delivered
	PagesRead      uint64 // pager reads charged to snapshot queries
	RecordsDecoded uint64 // clustered-index records decoded
}

// Snapshot freezes the engine's current committed state. The returned
// snapshot must be Closed; queries still streaming when Close is called
// keep the underlying view pinned until they finish.
func (e *Engine) Snapshot() (*Snapshot, error) {
	ms, err := e.store.Snapshot()
	if err != nil {
		return nil, err
	}
	st := ms.Store()
	sn := &Snapshot{e: e, ms: ms, st: st, probes: cost.NewMemoProbes(st), plans: newPlanCache(snapshotPlanCacheSize)}
	sn.finishFn = sn.queryFinished
	return sn, nil
}

// wrapShared wraps a mass.Snapshot for the auto-snapshot serving path:
// instead of private (frozen-forever) caches the snapshot reuses the
// engine's epoch-validated plan cache and statistics memo. Because the
// shared snapshot is always the newest committed state, its frozen
// epochs match the live store's, so engine-cache entries hit across
// commits for every document the commit did not touch — a writer
// updating one document does not evict every other document's plans.
// Entries stay epoch-validated, so even a snapshot gone stale compiles
// correct (merely conservative) plans.
func (e *Engine) wrapShared(ms *mass.Snapshot) *Snapshot {
	st := ms.Store()
	// plans is nil when caching is disabled; compile-per-call then.
	sn := &Snapshot{e: e, ms: ms, st: st, probes: e.probes, plans: e.plans}
	sn.finishFn = sn.queryFinished
	return sn
}

// Store returns the snapshot's read-only store view.
func (sn *Snapshot) Store() *mass.Store { return sn.st }

// Gen reports the commit generation the snapshot captured; the snapshot
// is the latest committed state exactly while the live store's CommitGen
// has not moved past it.
func (sn *Snapshot) Gen() uint64 { return sn.ms.Gen() }

// Epoch reports the pinned pager version epoch.
func (sn *Snapshot) Epoch() uint64 { return sn.ms.Epoch() }

// TryRef acquires an additional reference if the snapshot is still live
// (see mass.Snapshot.TryRef). Pair with Unref.
func (sn *Snapshot) TryRef() bool { return sn.ms.TryRef() }

// Unref releases a reference taken with TryRef.
func (sn *Snapshot) Unref() { sn.ms.Unref() }

// Usage reports the cumulative work served from this snapshot.
func (sn *Snapshot) Usage() SnapshotUsage {
	return SnapshotUsage{
		Queries:        sn.queries.Load(),
		Results:        sn.results.Load(),
		PagesRead:      sn.pages.Load(),
		RecordsDecoded: sn.records.Load(),
	}
}

// Close releases the snapshot's creating reference. Idempotent; safe
// while iterators opened from it are still streaming (the view stays
// pinned until the last one finishes).
func (sn *Snapshot) Close() error { return sn.ms.Close() }

// Query is the snapshot's serving path: Engine.Query against the frozen
// state.
func (sn *Snapshot) Query(doc mass.DocID, expr string) (*exec.Iterator, error) {
	return sn.QueryContext(context.Background(), doc, expr, govern.Limits{})
}

// QueryContext is Engine.QueryContext against the frozen state. Plans
// compile against the snapshot's statistics and land in its private
// cache, where they stay valid forever (the snapshot's epochs are
// frozen). Every run is accounted so Usage can report storage work.
func (sn *Snapshot) QueryContext(cctx context.Context, doc mass.DocID, expr string, limits govern.Limits) (*exec.Iterator, error) {
	start := time.Now()
	if err := govern.CheckContext(cctx); err != nil {
		return nil, err
	}
	q, hit, err := sn.e.compileCachedOn(sn.plans, sn.st, sn.probes, doc, expr, true)
	if err != nil {
		return nil, err
	}
	if hit {
		obs.QueriesServedCached.Inc()
	} else {
		obs.QueriesCompiled.Inc()
	}
	ctx := exec.Context{
		Store:       sn.st,
		Doc:         doc,
		Ctx:         cctx,
		Limits:      limits,
		OnFinish:    sn.finishFn,
		FinishStart: start,
		FinishObj:   q,
		Batch:       sn.e.execBatch,
		Account:     true,
	}
	// Mirror the engine path's flight-recorder tracing: after the first
	// Update the serving read path runs through shared snapshots, and
	// request traces must keep working there. Snapshots share the
	// engine's recorder and trace-ID sequence.
	traced := sn.e.flight != nil
	ctx.Trace = traced
	if traced {
		tc := &TraceContext{
			ID:       sn.e.traceSeq.Add(1),
			Expr:     expr,
			Doc:      doc,
			Start:    start,
			CacheHit: hit,
			Compile:  time.Since(start),
			traced:   true,
			q:        q,
		}
		if rt := requestTraceFrom(cctx); rt != nil {
			tc.Request, tc.Tenant, tc.req = rt.ID, rt.Tenant, rt
		}
		ctx.FinishObj = tc
	}
	return exec.Run(q.plan, ctx)
}

// queryFinished folds a finished snapshot query into the usage counters
// and, when the run was traced, assembles and records its span tree the
// way Engine.queryFinished does.
func (sn *Snapshot) queryFinished(it *exec.Iterator) {
	total := time.Since(it.StartTime())
	obs.QueryLatency.Observe(total)
	sn.queries.Add(1)
	sn.results.Add(it.Results())
	lim := it.Limiter()
	if lim != nil {
		sn.pages.Add(lim.PagesRead())
		sn.records.Add(lim.DecodedRecords())
	}
	tc, ok := it.FinishObj().(*TraceContext)
	if !ok {
		return
	}
	tc.Total = total
	tc.Results = it.Results()
	tc.Err = it.Err()
	if lim != nil {
		tc.PagesRead = lim.PagesRead()
		tc.RecordsDecoded = lim.DecodedRecords()
		tc.NodeCacheHits = lim.NodeCacheHits()
	}
	if !tc.traced {
		return
	}
	tc.DocName = sn.st.DocName(tc.Doc)
	tc.Root = buildSpanTree(tc.q.plan, it.StepSpans(), it.Results(), int64(total))
	if tc.req != nil {
		tc.req.Captured = tc.Export()
	} else if sn.e.flight != nil {
		sn.e.flight.record(tc.Export())
	}
}

// Update runs fn inside a write transaction: all mutations made through
// the passed mass.Update become visible atomically when fn returns nil,
// and are rolled back without trace when it returns an error (or
// panics). On success the commit is made durable through the
// group-commit path and the published version epoch is returned.
//
// When install is non-nil the just-committed state is frozen as a shared
// snapshot (engine caches, see wrapShared) and handed to install
// atomically with the commit — before the store's commit generation
// advances — so the auto-snapshot read path never sees a window where
// its snapshot is stale but no replacement exists. install runs with the
// store's writer lock held: it must only swap the snapshot in and
// release the previous one.
//
// prev, when non-nil, is the shared snapshot currently installed; if it
// is still the directly preceding committed state, the replacement
// adopts its decoded-node caches for every page the commit left
// untouched, so per-commit snapshots stay warm (see mass.CommitWith).
func (e *Engine) Update(fn func(*mass.Update) error, prev *Snapshot, install func(*Snapshot)) (epoch uint64, err error) {
	u, err := e.store.BeginUpdate()
	if err != nil {
		return 0, err
	}
	committed := false
	defer func() {
		if !committed {
			// fn panicked or errored: discard the batch. ErrTxnDone means
			// fn finished the transaction itself — nothing left to undo.
			if rerr := u.Rollback(); rerr != nil && !errors.Is(rerr, mass.ErrTxnDone) && err == nil {
				err = rerr
			}
		}
	}()
	if err := fn(u); err != nil {
		return 0, err
	}
	if install == nil {
		epoch, err = u.Commit()
	} else {
		var prevMass *mass.Snapshot
		if prev != nil {
			prevMass = prev.ms
		}
		epoch, err = u.CommitWith(prevMass, func(ms *mass.Snapshot) {
			install(e.wrapShared(ms))
		})
	}
	if err != nil {
		return 0, err
	}
	committed = true
	if err := e.store.SyncCommitted(epoch); err != nil {
		return epoch, err
	}
	return epoch, nil
}
