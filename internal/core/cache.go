package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"vamana/internal/mass"
)

// defaultPlanCacheSize is the total cached-plan capacity when Options
// leaves PlanCacheSize at 0.
const defaultPlanCacheSize = 256

// planCacheShards spreads the cache over independently-locked LRU shards
// so concurrent serving goroutines do not contend on one mutex.
const planCacheShards = 8

// planKey identifies a cached compilation. Unoptimized plans are built
// from the expression alone, so their entries use doc 0 and are shared by
// every document; optimized plans are compiled against one document's
// statistics and additionally carry the statistics epoch they saw.
type planKey struct {
	expr      string
	doc       mass.DocID
	optimized bool
}

type planEntry struct {
	key   planKey
	query *Query
	epoch uint64
}

// planCache is a sharded, bounded LRU of compiled queries. Validity is
// epoch-based: Store bumps a per-document statistics epoch on every
// update, and an optimized entry whose recorded epoch no longer matches
// is dropped on lookup — the cache never needs update hooks.
type planCache struct {
	capPerShard int
	shards      [planCacheShards]planShard

	hits, misses, evictions, invalidations atomic.Uint64
}

type planShard struct {
	mu  sync.Mutex
	lru *list.List // front = most recently used; values are *planEntry
	m   map[planKey]*list.Element
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheSize
	}
	per := (capacity + planCacheShards - 1) / planCacheShards
	c := &planCache{capPerShard: per}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].m = make(map[planKey]*list.Element)
	}
	return c
}

func (c *planCache) shard(k planKey) *planShard {
	// FNV-1a over the expression, folded with the document id.
	h := uint32(2166136261)
	for i := 0; i < len(k.expr); i++ {
		h = (h ^ uint32(k.expr[i])) * 16777619
	}
	h ^= uint32(k.doc) * 2654435761
	return &c.shards[h%planCacheShards]
}

// get returns the cached query for k when present and — for optimized
// entries — compiled at the document's current statistics epoch.
func (c *planCache) get(k planKey, epoch uint64) (*Query, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[k]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*planEntry)
	if k.optimized && e.epoch != epoch {
		s.lru.Remove(el)
		delete(s.m, k)
		c.invalidations.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	s.lru.MoveToFront(el)
	c.hits.Add(1)
	return e.query, true
}

func (c *planCache) put(k planKey, q *Query, epoch uint64) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[k]; ok {
		e := el.Value.(*planEntry)
		e.query, e.epoch = q, epoch
		s.lru.MoveToFront(el)
		return
	}
	s.m[k] = s.lru.PushFront(&planEntry{key: k, query: q, epoch: epoch})
	if s.lru.Len() > c.capPerShard {
		last := s.lru.Back()
		s.lru.Remove(last)
		delete(s.m, last.Value.(*planEntry).key)
		c.evictions.Add(1)
	}
}

// CacheStats reports the serving fast path's cache effectiveness: plan
// cache traffic plus the statistics memo underneath the optimizer.
type CacheStats struct {
	// Plan cache.
	Hits          uint64 // lookups served from cache
	Misses        uint64 // lookups that compiled
	Evictions     uint64 // entries dropped by LRU capacity
	Invalidations uint64 // entries dropped because the doc's epoch moved
	// Statistics memo (cost.MemoProbes).
	ProbeHits   uint64
	ProbeMisses uint64
	ProbeResets uint64 // memo generations discarded (epoch change or cap)
}
