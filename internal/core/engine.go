// Package core assembles VAMANA's components — the MASS store, the XPath
// compiler, the cost estimator, the optimizer and the execution engine —
// into the query engine of the paper's Fig. 2. The public API in the
// repository root package wraps this engine.
package core

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"

	"vamana/internal/cost"
	"vamana/internal/exec"
	"vamana/internal/flex"
	"vamana/internal/govern"
	"vamana/internal/mass"
	"vamana/internal/obs"
	"vamana/internal/opt"
	"vamana/internal/pager"
	"vamana/internal/plan"
	"vamana/internal/xpath"
)

// Options configures an Engine.
type Options struct {
	// Path is the page file backing the MASS store; empty runs fully in
	// memory.
	Path string
	// CachePages bounds the index page cache for file-backed stores
	// (see mass.Options.CachePages). 0 selects the default.
	CachePages int
	// Backend, when non-nil, overrides Path as the pager's storage (see
	// mass.Options.Backend). Used by crash-safety tests to inject faults.
	Backend pager.Backend
	// DisableChecksumVerify skips per-page CRC verification on reads.
	// Diagnostics and benchmarking only.
	DisableChecksumVerify bool
	// PlanCacheSize bounds the number of compiled plans the serving fast
	// path keeps (see Engine.Query). 0 selects the default (256);
	// negative disables plan caching.
	PlanCacheSize int
	// SlowQueryThreshold records Engine.Query calls whose end-to-end
	// latency meets or exceeds it into the slow-query ring (and
	// SlowQueryLog, when set). 0 disables slow-query tracking.
	SlowQueryThreshold time.Duration
	// SlowQueryLog, when non-nil, receives one line per slow query.
	SlowQueryLog io.Writer
	// TraceEvery samples a TraceContext for 1-in-N Engine.Query calls
	// (1 traces every query). 0 disables tracing; the unsampled cache-hit
	// path then allocates no per-query trace state at all.
	TraceEvery int
	// TraceSink receives each sampled TraceContext after its query
	// finishes. Called from the goroutine that drained the iterator;
	// implementations should be fast or hand off.
	TraceSink func(*TraceContext)
	// FlightRecorderSize keeps the last N complete query traces (with
	// full span trees) in a bounded ring, readable via Engine.Traces —
	// so a query that turns out slow or budget-tripped is already
	// captured. N>0 records spans for every query (independent of
	// TraceEvery sampling); 0 disables the recorder.
	FlightRecorderSize int
	// ExecBatch sets the executor's pull-batch size for every query this
	// engine runs (see exec.Context.Batch). 0 selects exec.DefaultBatch;
	// 1 degenerates to tuple-at-a-time execution. Exposed mainly for the
	// vbench batch sweep and the differential harness.
	ExecBatch int
	// DisableCostObservatory turns off est-vs-act accuracy collection on
	// the serving path (on by default; the fold is allocation-free and
	// inside the 1% observability budget). Benchmark pairing only.
	DisableCostObservatory bool
	// CostCalibration enables the observatory's feedback loop: learned
	// per-class correction factors are applied inside cost estimation,
	// cached plans are invalidated when a factor drifts, and the
	// plan-regression sentinel tracks decision changes. Results are
	// never affected — only plan choice. Implies the observatory.
	CostCalibration bool
}

// Engine is a VAMANA instance: one MASS store plus the query pipeline.
type Engine struct {
	store *mass.Store
	// probes memoizes statistics probes per (document, epoch), shared by
	// every optimization and estimation this engine runs.
	probes *cost.MemoProbes
	// plans is the serving fast path's compiled-plan cache; nil when
	// disabled.
	plans *planCache

	// finishFn is the iterator finish hook, bound once at Open so the
	// per-query serving path never allocates a method value.
	finishFn func(*exec.Iterator)
	// slow is the slow-query recorder; nil when no threshold is set.
	slow       *slowLog
	traceEvery uint64
	traceSink  func(*TraceContext)
	traceN     atomic.Uint64
	// flight is the bounded ring of recent complete traces; nil when
	// Options.FlightRecorderSize is 0.
	flight *flightRecorder
	// traceSeq mints TraceContext IDs.
	traceSeq atomic.Uint64
	// execBatch is Options.ExecBatch, stamped on every run's exec.Context.
	execBatch int
	// cost is the est-vs-act accuracy observatory; nil when disabled.
	cost *CostObservatory
}

// Open creates or reopens an engine.
func Open(opts Options) (*Engine, error) {
	s, err := mass.Open(mass.Options{
		Path:                  opts.Path,
		CachePages:            opts.CachePages,
		Backend:               opts.Backend,
		DisableChecksumVerify: opts.DisableChecksumVerify,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{store: s, probes: cost.NewMemoProbes(s), execBatch: opts.ExecBatch}
	if opts.PlanCacheSize >= 0 {
		e.plans = newPlanCache(opts.PlanCacheSize)
	}
	if !opts.DisableCostObservatory {
		e.cost = newCostObservatory(s, opts.CostCalibration)
	}
	e.finishFn = e.queryFinished
	if opts.SlowQueryThreshold > 0 {
		e.slow = &slowLog{threshold: opts.SlowQueryThreshold, w: opts.SlowQueryLog}
	}
	if opts.TraceEvery > 0 {
		e.traceEvery = uint64(opts.TraceEvery)
		e.traceSink = opts.TraceSink
	}
	if opts.FlightRecorderSize > 0 {
		e.flight = newFlightRecorder(opts.FlightRecorderSize)
	}
	return e, nil
}

// Store exposes the underlying MASS store (used by the benchmark harness
// and the CLI for statistics).
func (e *Engine) Store() *mass.Store { return e.store }

// Close flushes and releases the engine.
func (e *Engine) Close() error { return e.store.Close() }

// VerifyPages checksums every durable page of the backing store. See
// mass.Store.VerifyPages.
func (e *Engine) VerifyPages() (checked int, corrupt []pager.PageID, err error) {
	return e.store.VerifyPages()
}

// Load shreds and indexes an XML document under a unique name.
func (e *Engine) Load(name string, r io.Reader) (mass.DocID, error) {
	return e.store.LoadDocument(name, r)
}

// LoadString is Load from a string.
func (e *Engine) LoadString(name, src string) (mass.DocID, error) {
	return e.Load(name, strings.NewReader(src))
}

// Query is a compiled (and possibly optimized) XPath expression.
type Query struct {
	engine    *Engine
	expr      string
	plan      *plan.Plan
	optimized bool
	trace     []string
}

// Compile parses expr and builds the default (unoptimized) query plan —
// "VQP" in the paper's experiments. Parse failures wrap the underlying
// *xpath.SyntaxError, so callers can recover the offending position with
// errors.As.
func (e *Engine) Compile(expr string) (*Query, error) {
	ast, err := xpath.Parse(expr)
	if err != nil {
		return nil, fmt.Errorf("vamana: compile: %w", err)
	}
	p, err := plan.Build(ast)
	if err != nil {
		return nil, fmt.Errorf("vamana: compile: %w", err)
	}
	return &Query{engine: e, expr: expr, plan: p}, nil
}

// CompileOptimized parses expr and runs the cost-driven optimizer against
// doc's live statistics — "VQP-OPT".
func (e *Engine) CompileOptimized(doc mass.DocID, expr string) (*Query, error) {
	return e.compileOptimizedOn(e.store, e.probes, doc, expr)
}

// compileOptimizedOn is CompileOptimized parameterized by the store and
// statistics memo the optimizer probes — the engine's own for live
// compiles, a snapshot's frozen pair for snapshot compiles.
func (e *Engine) compileOptimizedOn(st *mass.Store, probes *cost.MemoProbes, doc mass.DocID, expr string) (*Query, error) {
	q, err := e.Compile(expr)
	if err != nil {
		return nil, err
	}
	defPlan := q.plan
	o := &opt.Optimizer{
		Store:     st,
		Doc:       doc,
		Probes:    probes,
		Calibrate: e.calibrateFn(),
		Trace: func(format string, args ...any) {
			q.trace = append(q.trace, fmt.Sprintf(format, args...))
		},
	}
	optPlan, err := o.Optimize(q.plan)
	if err != nil {
		return nil, err
	}
	q.plan = optPlan
	q.optimized = true
	// Plan-regression sentinel: once calibration has learned a real
	// correction, also optimize under raw costs and count compiles where
	// the two cost models rank different plans cheapest. Compile misses
	// are rare enough that the second optimization (probe-memoized) is
	// in the noise.
	if e.cost != nil && e.cost.calibrating && e.cost.calibrationActive() {
		raw := &opt.Optimizer{Store: st, Doc: doc, Probes: probes}
		if rawPlan, rerr := raw.Optimize(defPlan); rerr == nil && planShape(rawPlan) != planShape(optPlan) {
			e.cost.regressions.Add(1)
			obs.CostPlanRegressions.Inc()
		}
	}
	return q, nil
}

// CompileCached returns a compiled query for expr, consulting the plan
// cache first. Unoptimized plans depend only on the expression and are
// shared across documents; optimized plans are keyed by document and
// validated against the document's statistics epoch, so any update to the
// document transparently forces a recompile against fresh statistics.
func (e *Engine) CompileCached(doc mass.DocID, expr string, optimized bool) (*Query, error) {
	q, _, err := e.compileCached(doc, expr, optimized)
	return q, err
}

// compileCached is CompileCached plus a report of whether the plan came
// from the cache — the compile-vs-serve split the serving metrics track.
func (e *Engine) compileCached(doc mass.DocID, expr string, optimized bool) (*Query, bool, error) {
	return e.compileCachedOn(e.plans, e.store, e.probes, doc, expr, optimized)
}

// compileCachedOn is compileCached parameterized by the plan cache,
// store, and statistics memo it consults. Snapshot queries pass the
// snapshot's private triple: its epochs never move, so cached entries
// stay valid for the snapshot's whole life.
func (e *Engine) compileCachedOn(plans *planCache, st *mass.Store, probes *cost.MemoProbes, doc mass.DocID, expr string, optimized bool) (*Query, bool, error) {
	if plans == nil {
		var (
			q   *Query
			err error
		)
		if optimized {
			q, err = e.compileOptimizedOn(st, probes, doc, expr)
		} else {
			q, err = e.Compile(expr)
		}
		return q, false, err
	}
	k := planKey{expr: expr, optimized: optimized}
	var epoch uint64
	if optimized {
		k.doc = doc
		// Capture the epoch before compiling: if an update lands while the
		// optimizer is probing, the entry records the pre-update epoch and
		// the next lookup recompiles — conservative but always correct.
		epoch = st.Epoch(doc)
	}
	if q, ok := plans.get(k, epoch); ok {
		return q, true, nil
	}
	var (
		q   *Query
		err error
	)
	if optimized {
		q, err = e.compileOptimizedOn(st, probes, doc, expr)
	} else {
		q, err = e.Compile(expr)
	}
	if err != nil {
		return nil, false, err
	}
	plans.put(k, q, epoch)
	return q, false, nil
}

// Query is the one-shot serving fast path: compile expr with the
// cost-driven optimizer (through the plan cache) and execute it against
// doc. Steady-state serving of a repeated query costs one cache lookup
// plus execution — no parsing, no optimization, no statistics probes.
//
// Every call is instrumented: the compile-vs-serve split and an
// end-to-end latency histogram feed the global metrics, queries over
// Options.SlowQueryThreshold land in the slow-query log, and 1-in-
// TraceEvery calls carry a sampled TraceContext. On the common path
// (cache hit, unsampled) the instrumentation adds two time.Now calls
// and a handful of counter updates — no allocations.
func (e *Engine) Query(doc mass.DocID, expr string) (*exec.Iterator, error) {
	return e.QueryContext(context.Background(), doc, expr, govern.Limits{})
}

// QueryContext is Query under governance: the run observes ctx's
// cancellation and deadline, and limits' resource budgets (zero limits =
// unlimited). A pre-canceled or pre-expired ctx fails here, before the
// plan cache or storage is touched. With a Background context and zero
// limits the limiter is nil and the path is identical to Query.
func (e *Engine) QueryContext(cctx context.Context, doc mass.DocID, expr string, limits govern.Limits) (*exec.Iterator, error) {
	start := time.Now()
	// Pre-flight: a pre-canceled or pre-expired ctx fails here, before
	// the plan cache, the optimizer's statistics probes, or storage is
	// touched. This is the query's single immediate poll; from here on
	// cancellation rides the limiter's amortized ticks.
	if err := govern.CheckContext(cctx); err != nil {
		return nil, err
	}
	q, hit, err := e.compileCached(doc, expr, true)
	if err != nil {
		return nil, err
	}
	if hit {
		obs.QueriesServedCached.Inc()
	} else {
		obs.QueriesCompiled.Inc()
	}
	ctx := exec.Context{
		Store:       e.store,
		Doc:         doc,
		Ctx:         cctx,
		Limits:      limits,
		OnFinish:    e.finishFn,
		FinishStart: start,
		FinishObj:   q,
		Batch:       e.execBatch,
	}
	// A traced query records per-operator spans: 1-in-TraceEvery samples,
	// or every query when the flight recorder is on (so slow/budget-
	// tripped queries are captured retroactively). Slow-query tracking
	// alone arms the accounting limiter without spans, so every slow
	// entry carries its storage deltas.
	sampled := e.traceEvery > 0 && e.traceN.Add(1)%e.traceEvery == 0
	traced := sampled || e.flight != nil
	ctx.Trace = traced
	ctx.Account = e.slow != nil
	// A traced query (and the rare compile miss, whose cost dwarfs one
	// allocation) carries a TraceContext instead of the bare Query, so
	// the finish hook can report compile time and cache-hit status.
	if traced || !hit {
		tc := &TraceContext{
			ID:       e.traceSeq.Add(1),
			Expr:     expr,
			Doc:      doc,
			Start:    start,
			CacheHit: hit,
			Compile:  time.Since(start),
			sampled:  sampled,
			traced:   traced,
			q:        q,
		}
		if sampled {
			obs.TracesSampled.Inc()
		}
		// A traced run under a serving request joins the wire identity;
		// the finish hook then hands the export to the request instead of
		// the flight ring (the serving layer records the combined trace).
		if traced {
			if rt := requestTraceFrom(cctx); rt != nil {
				tc.Request, tc.Tenant, tc.req = rt.ID, rt.Tenant, rt
			}
		}
		ctx.FinishObj = tc
	}
	return exec.Run(q.plan, ctx)
}

// queryFinished is the serving path's iterator finish hook: it closes out
// the query's latency observation, slow-query record, and sampled trace.
func (e *Engine) queryFinished(it *exec.Iterator) {
	total := time.Since(it.StartTime())
	obs.QueryLatency.Observe(total)
	var (
		expr string
		hit  bool
		tc   *TraceContext
	)
	switch o := it.FinishObj().(type) {
	case *TraceContext:
		tc = o
		expr, hit = o.Expr, o.CacheHit
		tc.Total = total
		tc.Results = it.Results()
		tc.Err = it.Err()
		if lim := it.Limiter(); lim != nil {
			tc.PagesRead = lim.PagesRead()
			tc.RecordsDecoded = lim.DecodedRecords()
			tc.NodeCacheHits = lim.NodeCacheHits()
		}
		if tc.traced {
			tc.DocName = e.store.DocName(tc.Doc)
			tc.Root = buildSpanTree(tc.q.plan, it.StepSpans(), it.Results(), int64(total))
		}
	case *Query:
		// The unsampled cache-hit fast path carries the shared Query.
		expr, hit = o.expr, true
	}
	// Fold the run's actual per-step cardinalities against the plan's
	// estimates — every query feeds the cost observatory, not only the
	// sampled ones. Allocation-free on the steady path.
	var worstOp *plan.Step
	var worstQ float64
	if e.cost != nil {
		worstOp, worstQ = e.cost.fold(it, it.Doc(), expr)
	}
	if e.slow != nil && total >= e.slow.threshold {
		obs.SlowQueries.Inc()
		sq := SlowQuery{
			Expr:     expr,
			Doc:      it.Doc(),
			Start:    it.StartTime(),
			Total:    total,
			Results:  it.Results(),
			CacheHit: hit,
			Err:      it.Err(),
		}
		if lim := it.Limiter(); lim != nil {
			sq.PagesRead = lim.PagesRead()
			sq.RecordsDecoded = lim.DecodedRecords()
			sq.NodeCacheHits = lim.NodeCacheHits()
		}
		if tc != nil && tc.traced {
			sq.TraceID = tc.ID
		}
		// Name the worst-misestimated operator so a slow query points
		// straight at the cost-model miss that may have caused it.
		if worstOp != nil && worstQ >= 2 {
			sq.WorstOp = worstOp.Label()
			sq.WorstQErr = worstQ
		}
		e.slow.record(sq)
	}
	if tc != nil && tc.traced {
		if tc.req != nil {
			tc.req.Captured = tc.Export()
		} else if e.flight != nil {
			e.flight.record(tc.Export())
		}
	}
	if tc != nil && tc.sampled && e.traceSink != nil {
		e.traceSink(tc)
	}
}

// EnableFlightRecorder turns the flight recorder on (or resizes it)
// after Open — used by tools that benchmark untraced first and then
// want a traced pass on the same engine. Not safe to call concurrently
// with in-flight queries.
func (e *Engine) EnableFlightRecorder(size int) {
	if size <= 0 {
		e.flight = nil
		return
	}
	e.flight = newFlightRecorder(size)
}

// Traces returns the flight recorder's contents — the last N complete
// query traces with span trees, most recent first. Empty unless
// Options.FlightRecorderSize is set.
func (e *Engine) Traces() []*obs.QueryTrace {
	if e.flight == nil {
		return nil
	}
	return e.flight.snapshot()
}

// SlowQueries returns the recorded slow queries, most recent first (empty
// unless Options.SlowQueryThreshold is set).
func (e *Engine) SlowQueries() []SlowQuery {
	if e.slow == nil {
		return nil
	}
	return e.slow.snapshot()
}

// calibrateFn returns the cost-correction hook for this engine's
// estimations: nil unless Options.CostCalibration is on.
func (e *Engine) calibrateFn() func(*plan.Step, uint64) uint64 {
	if e.cost != nil && e.cost.calibrating {
		return e.cost.calibrateStep
	}
	return nil
}

// CostProfile snapshots the cost-model observatory: per-operator-class
// q-error profiles, worst offenders, and calibration state. The second
// return is false when the observatory is disabled.
func (e *Engine) CostProfile() (CostProfile, bool) {
	if e.cost == nil {
		return CostProfile{}, false
	}
	return e.cost.Profile(), true
}

// CacheStats reports plan-cache and statistics-memo counters.
func (e *Engine) CacheStats() CacheStats {
	var st CacheStats
	if e.plans != nil {
		st.Hits = e.plans.hits.Load()
		st.Misses = e.plans.misses.Load()
		st.Evictions = e.plans.evictions.Load()
		st.Invalidations = e.plans.invalidations.Load()
	}
	st.ProbeHits, st.ProbeMisses, st.ProbeResets = e.probes.Counters()
	return st
}

// WriteMetrics writes the full metric exposition for this engine in
// Prometheus text format: the process-global counters and histograms,
// followed by this engine's storage counters (pager I/O, index node
// cache, records decoded, statistics probes) and cache statistics.
func (e *Engine) WriteMetrics(w io.Writer) error {
	if err := obs.WriteText(w); err != nil {
		return err
	}
	m := e.store.Metrics()
	st := e.CacheStats()
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"vamana_pager_page_reads_total", "Pages read from the pager.", m.Pager.Reads},
		{"vamana_pager_page_writes_total", "Pages written to the pager.", m.Pager.Writes},
		{"vamana_pager_page_allocs_total", "Pages allocated (fresh or recycled).", m.Pager.Allocs},
		{"vamana_pager_page_frees_total", "Pages returned to the free list.", m.Pager.Frees},
		{"vamana_pager_pages", "Current page count including the meta pages.", m.Pager.Pages},
		{"vamana_pager_commits_total", "Atomic Flush commits that reached the backing file.", m.Pager.Commits},
		{"vamana_pager_checksum_failures_total", "Page reads that failed CRC32C verification.", m.Pager.ChecksumFails},
		{"vamana_pager_meta_fallbacks_total", "Opens that lost one metadata copy and recovered from the other.", m.Pager.MetaFallbacks},
		{"vamana_pager_journal_replays_total", "Opens that completed an interrupted commit from its journal.", m.Pager.JournalReplays},
		{"vamana_btree_cache_hits_total", "Index node loads served from cache.", m.Index.CacheHits},
		{"vamana_btree_cache_misses_total", "Index node loads that read a page.", m.Index.CacheMisses},
		{"vamana_btree_cache_evictions_total", "Index nodes evicted from cache.", m.Index.CacheEvictions},
		{"vamana_btree_node_splits_total", "Leaf and branch node splits.", m.Index.Splits},
		{"vamana_btree_cursor_seeks_total", "Cursor seeks across all index trees.", m.Index.Seeks},
		{"vamana_btree_count_probes_total", "Counted-range probes (Count/Rank).", m.Index.Counts},
		{"vamana_mass_records_decoded_total", "Clustered-index records decoded.", m.RecordsDecoded},
		{"vamana_mass_stat_probes_total", "Statistics probes that reached storage (memo misses).", m.StatProbes},
		{"vamana_plan_cache_hits_total", "Plan-cache lookups served from cache.", st.Hits},
		{"vamana_plan_cache_misses_total", "Plan-cache lookups that compiled.", st.Misses},
		{"vamana_plan_cache_evictions_total", "Plan-cache entries dropped by LRU capacity.", st.Evictions},
		{"vamana_plan_cache_invalidations_total", "Plan-cache entries dropped by epoch change.", st.Invalidations},
		{"vamana_stats_memo_hits_total", "Statistics-memo probe hits.", st.ProbeHits},
		{"vamana_stats_memo_misses_total", "Statistics-memo probe misses.", st.ProbeMisses},
		{"vamana_stats_memo_resets_total", "Statistics-memo generations discarded.", st.ProbeResets},
	} {
		if err := obs.WriteCounterText(w, c.name, c.help, c.v); err != nil {
			return err
		}
	}
	if e.cost != nil {
		e.cost.Profile().writeProm(w)
	}
	return nil
}

// Expr returns the source expression.
func (q *Query) Expr() string { return q.expr }

// Optimized reports whether the cost-driven optimizer ran.
func (q *Query) Optimized() bool { return q.optimized }

// Plan exposes the physical plan (cost-annotated after optimization or
// Estimate).
func (q *Query) Plan() *plan.Plan { return q.plan }

// Trace returns the optimizer's decision log.
func (q *Query) Trace() []string { return q.trace }

// Estimate annotates a copy of the plan with cost information for doc
// without executing it, and returns the annotated copy. The query's own
// plan is never written after compilation — a Query is immutable and safe
// for concurrent use by any number of goroutines (which is what lets the
// engine's plan cache share one Query across a serving fleet).
func (q *Query) Estimate(doc mass.DocID) (*plan.Plan, error) {
	p := q.plan.Clone()
	est := &cost.Estimator{Store: q.engine.probes, Doc: doc, Calibrate: q.engine.calibrateFn()}
	if err := est.Estimate(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Explain renders the cost-annotated plan and ordered list for doc.
func (q *Query) Explain(doc mass.DocID) (string, error) {
	p, err := q.Estimate(doc)
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("query: %s\noptimized: %v\n", q.expr, q.optimized)
	out += opt.Explain(p)
	for _, line := range q.trace {
		out += "rewrite: " + line + "\n"
	}
	return out, nil
}

// ExplainAnalyze estimates the plan, executes it to completion, and
// renders each operator's estimated bounds next to its actual execution
// counters — the empirical check that the cost model's OUT values really
// are upper bounds. The annotated clone is what executes, so the
// per-operator stats refer to operators carrying fresh estimates while
// the shared plan stays untouched. Use Analyze for the structured form.
func (q *Query) ExplainAnalyze(doc mass.DocID) (string, error) {
	a, err := q.Analyze(doc)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("query: %s\noptimized: %v\n", q.expr, q.optimized) + a.String(), nil
}

// RunContext executes the compiled query with every run parameter
// explicit: the store to read (nil selects the engine's live store;
// snapshot runs pass the snapshot's frozen store), the initial context
// node ("" selects the document root), variable bindings, document-order
// delivery, and governance. All Execute variants are shorthands for it.
func (q *Query) RunContext(ctx context.Context, st *mass.Store, doc mass.DocID, start flex.Key, vars map[string][]flex.Key, ordered bool, limits govern.Limits) (*exec.Iterator, error) {
	if err := govern.CheckContext(ctx); err != nil {
		return nil, err
	}
	if st == nil {
		st = q.engine.store
	}
	return exec.Run(q.plan, exec.Context{Store: st, Doc: doc, Start: start, Vars: vars, Ordered: ordered, Ctx: ctx, Limits: limits, Batch: q.engine.execBatch})
}

// Execute runs the query against doc with the document root as initial
// context.
func (q *Query) Execute(doc mass.DocID) (*exec.Iterator, error) {
	return q.ExecuteContext(context.Background(), doc, govern.Limits{})
}

// ExecuteContext is Execute under governance (see Engine.QueryContext).
func (q *Query) ExecuteContext(ctx context.Context, doc mass.DocID, limits govern.Limits) (*exec.Iterator, error) {
	return q.RunContext(ctx, nil, doc, "", nil, false, limits)
}

// ExecuteOrdered runs the query and delivers the result set in document
// order (materializing it first; use Execute for pipelined delivery).
func (q *Query) ExecuteOrdered(doc mass.DocID) (*exec.Iterator, error) {
	return q.ExecuteOrderedContext(context.Background(), doc, govern.Limits{})
}

// ExecuteOrderedContext is ExecuteOrdered under governance.
func (q *Query) ExecuteOrderedContext(ctx context.Context, doc mass.DocID, limits govern.Limits) (*exec.Iterator, error) {
	return q.RunContext(ctx, nil, doc, "", nil, true, limits)
}

// ExecuteFrom runs the query with an explicit initial context node — the
// XQuery-style context feeding of paper §V-A — and optional variable
// bindings.
func (q *Query) ExecuteFrom(doc mass.DocID, start flex.Key, vars map[string][]flex.Key) (*exec.Iterator, error) {
	return q.ExecuteFromContext(context.Background(), doc, start, vars, govern.Limits{})
}

// ExecuteFromContext is ExecuteFrom under governance.
func (q *Query) ExecuteFromContext(ctx context.Context, doc mass.DocID, start flex.Key, vars map[string][]flex.Key, limits govern.Limits) (*exec.Iterator, error) {
	return q.RunContext(ctx, nil, doc, start, vars, false, limits)
}
