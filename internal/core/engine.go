// Package core assembles VAMANA's components — the MASS store, the XPath
// compiler, the cost estimator, the optimizer and the execution engine —
// into the query engine of the paper's Fig. 2. The public API in the
// repository root package wraps this engine.
package core

import (
	"fmt"
	"io"
	"strings"

	"vamana/internal/cost"
	"vamana/internal/exec"
	"vamana/internal/flex"
	"vamana/internal/mass"
	"vamana/internal/opt"
	"vamana/internal/plan"
	"vamana/internal/xpath"
)

// Options configures an Engine.
type Options struct {
	// Path is the page file backing the MASS store; empty runs fully in
	// memory.
	Path string
	// CachePages bounds the index page cache for file-backed stores
	// (see mass.Options.CachePages). 0 selects the default.
	CachePages int
	// PlanCacheSize bounds the number of compiled plans the serving fast
	// path keeps (see Engine.Query). 0 selects the default (256);
	// negative disables plan caching.
	PlanCacheSize int
}

// Engine is a VAMANA instance: one MASS store plus the query pipeline.
type Engine struct {
	store *mass.Store
	// probes memoizes statistics probes per (document, epoch), shared by
	// every optimization and estimation this engine runs.
	probes *cost.MemoProbes
	// plans is the serving fast path's compiled-plan cache; nil when
	// disabled.
	plans *planCache
}

// Open creates or reopens an engine.
func Open(opts Options) (*Engine, error) {
	s, err := mass.Open(mass.Options{Path: opts.Path, CachePages: opts.CachePages})
	if err != nil {
		return nil, err
	}
	e := &Engine{store: s, probes: cost.NewMemoProbes(s)}
	if opts.PlanCacheSize >= 0 {
		e.plans = newPlanCache(opts.PlanCacheSize)
	}
	return e, nil
}

// Store exposes the underlying MASS store (used by the benchmark harness
// and the CLI for statistics).
func (e *Engine) Store() *mass.Store { return e.store }

// Close flushes and releases the engine.
func (e *Engine) Close() error { return e.store.Close() }

// Load shreds and indexes an XML document under a unique name.
func (e *Engine) Load(name string, r io.Reader) (mass.DocID, error) {
	return e.store.LoadDocument(name, r)
}

// LoadString is Load from a string.
func (e *Engine) LoadString(name, src string) (mass.DocID, error) {
	return e.Load(name, strings.NewReader(src))
}

// Query is a compiled (and possibly optimized) XPath expression.
type Query struct {
	engine    *Engine
	expr      string
	plan      *plan.Plan
	optimized bool
	trace     []string
}

// Compile parses expr and builds the default (unoptimized) query plan —
// "VQP" in the paper's experiments.
func (e *Engine) Compile(expr string) (*Query, error) {
	ast, err := xpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(ast)
	if err != nil {
		return nil, err
	}
	return &Query{engine: e, expr: expr, plan: p}, nil
}

// CompileOptimized parses expr and runs the cost-driven optimizer against
// doc's live statistics — "VQP-OPT".
func (e *Engine) CompileOptimized(doc mass.DocID, expr string) (*Query, error) {
	q, err := e.Compile(expr)
	if err != nil {
		return nil, err
	}
	o := &opt.Optimizer{
		Store:  e.store,
		Doc:    doc,
		Probes: e.probes,
		Trace: func(format string, args ...any) {
			q.trace = append(q.trace, fmt.Sprintf(format, args...))
		},
	}
	optPlan, err := o.Optimize(q.plan)
	if err != nil {
		return nil, err
	}
	q.plan = optPlan
	q.optimized = true
	return q, nil
}

// CompileCached returns a compiled query for expr, consulting the plan
// cache first. Unoptimized plans depend only on the expression and are
// shared across documents; optimized plans are keyed by document and
// validated against the document's statistics epoch, so any update to the
// document transparently forces a recompile against fresh statistics.
func (e *Engine) CompileCached(doc mass.DocID, expr string, optimized bool) (*Query, error) {
	if e.plans == nil {
		if optimized {
			return e.CompileOptimized(doc, expr)
		}
		return e.Compile(expr)
	}
	k := planKey{expr: expr, optimized: optimized}
	var epoch uint64
	if optimized {
		k.doc = doc
		// Capture the epoch before compiling: if an update lands while the
		// optimizer is probing, the entry records the pre-update epoch and
		// the next lookup recompiles — conservative but always correct.
		epoch = e.store.Epoch(doc)
	}
	if q, ok := e.plans.get(k, epoch); ok {
		return q, nil
	}
	var (
		q   *Query
		err error
	)
	if optimized {
		q, err = e.CompileOptimized(doc, expr)
	} else {
		q, err = e.Compile(expr)
	}
	if err != nil {
		return nil, err
	}
	e.plans.put(k, q, epoch)
	return q, nil
}

// Query is the one-shot serving fast path: compile expr with the
// cost-driven optimizer (through the plan cache) and execute it against
// doc. Steady-state serving of a repeated query costs one cache lookup
// plus execution — no parsing, no optimization, no statistics probes.
func (e *Engine) Query(doc mass.DocID, expr string) (*exec.Iterator, error) {
	q, err := e.CompileCached(doc, expr, true)
	if err != nil {
		return nil, err
	}
	return q.Execute(doc)
}

// CacheStats reports plan-cache and statistics-memo counters.
func (e *Engine) CacheStats() CacheStats {
	var st CacheStats
	if e.plans != nil {
		st.Hits = e.plans.hits.Load()
		st.Misses = e.plans.misses.Load()
		st.Evictions = e.plans.evictions.Load()
		st.Invalidations = e.plans.invalidations.Load()
	}
	st.ProbeHits, st.ProbeMisses = e.probes.Stats()
	return st
}

// Expr returns the source expression.
func (q *Query) Expr() string { return q.expr }

// Optimized reports whether the cost-driven optimizer ran.
func (q *Query) Optimized() bool { return q.optimized }

// Plan exposes the physical plan (cost-annotated after optimization or
// Estimate).
func (q *Query) Plan() *plan.Plan { return q.plan }

// Trace returns the optimizer's decision log.
func (q *Query) Trace() []string { return q.trace }

// Estimate annotates a copy of the plan with cost information for doc
// without executing it, and returns the annotated copy. The query's own
// plan is never written after compilation — a Query is immutable and safe
// for concurrent use by any number of goroutines (which is what lets the
// engine's plan cache share one Query across a serving fleet).
func (q *Query) Estimate(doc mass.DocID) (*plan.Plan, error) {
	p := q.plan.Clone()
	est := &cost.Estimator{Store: q.engine.probes, Doc: doc}
	if err := est.Estimate(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Explain renders the cost-annotated plan and ordered list for doc.
func (q *Query) Explain(doc mass.DocID) (string, error) {
	p, err := q.Estimate(doc)
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("query: %s\noptimized: %v\n", q.expr, q.optimized)
	out += opt.Explain(p)
	for _, line := range q.trace {
		out += "rewrite: " + line + "\n"
	}
	return out, nil
}

// ExplainAnalyze estimates the plan, executes it to completion, and
// renders estimated bounds next to actual per-operator tuple counts —
// the empirical check that the cost model's OUT values really are upper
// bounds. The annotated clone is what executes, so the per-operator stats
// refer to operators carrying fresh estimates while the shared plan stays
// untouched.
func (q *Query) ExplainAnalyze(doc mass.DocID) (string, error) {
	p, err := q.Estimate(doc)
	if err != nil {
		return "", err
	}
	it, err := exec.Run(p, exec.Context{Store: q.engine.store, Doc: doc})
	if err != nil {
		return "", err
	}
	results := 0
	for it.Next() {
		results++
	}
	if err := it.Err(); err != nil {
		return "", err
	}
	out := fmt.Sprintf("query: %s\noptimized: %v\nresults: %d\n", q.expr, q.optimized, results)
	out += p.String()
	out += "actual tuple counts (context path and predicate steps):\n"
	for _, st := range it.Stats() {
		c := st.Op.Cost
		out += fmt.Sprintf("  %-40s IN=%d/%d  scanned=%d  OUT=%d/%d\n",
			st.Op.Label(), st.In, c.In, st.Scanned, st.Out, c.Out)
	}
	return out, nil
}

// Execute runs the query against doc with the document root as initial
// context.
func (q *Query) Execute(doc mass.DocID) (*exec.Iterator, error) {
	return exec.Run(q.plan, exec.Context{Store: q.engine.store, Doc: doc})
}

// ExecuteOrdered runs the query and delivers the result set in document
// order (materializing it first; use Execute for pipelined delivery).
func (q *Query) ExecuteOrdered(doc mass.DocID) (*exec.Iterator, error) {
	return exec.Run(q.plan, exec.Context{Store: q.engine.store, Doc: doc, Ordered: true})
}

// ExecuteFrom runs the query with an explicit initial context node — the
// XQuery-style context feeding of paper §V-A — and optional variable
// bindings.
func (q *Query) ExecuteFrom(doc mass.DocID, start flex.Key, vars map[string][]flex.Key) (*exec.Iterator, error) {
	return exec.Run(q.plan, exec.Context{Store: q.engine.store, Doc: doc, Start: start, Vars: vars})
}
