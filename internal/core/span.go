package core

// Span-tree assembly: joining the executor's flat per-step span records
// back onto the plan tree they ran, producing the obs.Span tree that the
// flight recorder stores and the exporters render. The join is by
// operator identity (*plan.Step pointers), the same way Analysis joins
// estimated and actual cardinalities.

import (
	"strconv"

	"vamana/internal/exec"
	"vamana/internal/obs"
	"vamana/internal/plan"
)

// spanKind classifies a plan operator for trace display.
func spanKind(op plan.Op) string {
	switch op.(type) {
	case *plan.Root:
		return "root"
	case *plan.Step:
		return "axis"
	case *plan.Literal:
		return "literal"
	case *plan.Join:
		return "join"
	default:
		return "pred"
	}
}

// buildSpanTree mirrors the executed plan as an obs.Span tree. Step
// operators of the main pipeline carry their recorded timestamps, tuple
// counts, and storage deltas; the root span covers the whole run
// [0,totalNS] with the delivered result count as its output; operators
// with no recorded span (predicate subtrees run as transient subplans,
// literals, never-pulled steps) appear with estimates only, pinned to
// their parent's open timestamp so nesting stays valid.
func buildSpanTree(p *plan.Plan, spans []exec.StepSpan, results uint64, totalNS int64) *obs.Span {
	byOp := make(map[*plan.Step]exec.StepSpan, len(spans))
	for _, s := range spans {
		byOp[s.Op] = s
	}
	var walk func(op plan.Op, parentStart int64) *obs.Span
	walk = func(op plan.Op, parentStart int64) *obs.Span {
		sp := &obs.Span{
			Name:    op.Label(),
			Kind:    spanKind(op),
			StartNS: parentStart,
			EndNS:   parentStart,
		}
		if c := *plan.CostOf(op); c.Done {
			sp.EstIn, sp.EstOut, sp.Estimated = c.In, c.Out, true
		}
		recorded := false
		switch t := op.(type) {
		case *plan.Root:
			sp.StartNS, sp.EndNS = 0, totalNS
			sp.Out = results
			recorded = true
			if t.Context != nil {
				sp.Children = append(sp.Children, walk(t.Context, 0))
			}
		case *plan.Step:
			if rec, ok := byOp[t]; ok {
				sp.StartNS, sp.EndNS = rec.StartNS, rec.EndNS
				sp.In, sp.Scanned, sp.Out = rec.In, rec.Scanned, rec.Out
				sp.PagesRead, sp.RecordsDecoded = rec.PagesRead, rec.RecordsDecoded
				recorded = true
			}
			if t.Context != nil {
				sp.Children = append(sp.Children, walk(t.Context, sp.StartNS))
			}
			for _, pr := range t.Preds {
				sp.Children = append(sp.Children, walk(pr, sp.StartNS))
			}
		default:
			for _, c := range op.Children() {
				sp.Children = append(sp.Children, walk(c, sp.StartNS))
			}
		}
		if !recorded {
			// Operators without their own clock (predicate combinators,
			// literals) widen to enclose their children: steps inside a
			// predicate subplan do record spans, and nesting must hold.
			for _, c := range sp.Children {
				if c.StartNS < sp.StartNS {
					sp.StartNS = c.StartNS
				}
				if c.EndNS > sp.EndNS {
					sp.EndNS = c.EndNS
				}
			}
		}
		return sp
	}
	return walk(p.Root, 0)
}

// Export converts the trace to its wire form — the flat obs.QueryTrace
// the flight recorder stores and the Chrome/text exporters consume.
func (tc *TraceContext) Export() *obs.QueryTrace {
	t := &obs.QueryTrace{
		ID:             tc.ID,
		Expr:           tc.Expr,
		Doc:            tc.DocName,
		Start:          tc.Start,
		Compile:        tc.Compile,
		Total:          tc.Total,
		CacheHit:       tc.CacheHit,
		Results:        tc.Results,
		PagesRead:      tc.PagesRead,
		RecordsDecoded: tc.RecordsDecoded,
		NodeCacheHits:  tc.NodeCacheHits,
		Request:        tc.Request,
		Tenant:         tc.Tenant,
		Root:           tc.Root,
	}
	if t.Doc == "" {
		t.Doc = strconv.FormatUint(uint64(tc.Doc), 10)
	}
	if tc.Err != nil {
		t.Err = tc.Err.Error()
	}
	return t
}
