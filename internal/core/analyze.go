package core

import (
	"fmt"
	"strings"

	"vamana/internal/exec"
	"vamana/internal/mass"
	"vamana/internal/plan"
)

// Analysis is the structured result of Query.Analyze: the cost-annotated
// plan clone that executed, the number of result tuples it produced, and
// the per-step actual execution counters. Stats entries reference Step
// operators inside Plan, so estimated and actual cardinalities can be
// joined by operator identity.
type Analysis struct {
	Plan    *plan.Plan
	Results uint64
	Stats   []exec.OpStats
}

// Analyze estimates the plan for doc, executes it to completion, and
// returns the estimates and the actual per-operator counters side by
// side — the machinery behind ExplainAnalyze, exposed structurally so
// tests and tools can assert on the numbers instead of parsing text.
func (q *Query) Analyze(doc mass.DocID) (*Analysis, error) {
	p, err := q.Estimate(doc)
	if err != nil {
		return nil, err
	}
	it, err := exec.Run(p, exec.Context{Store: q.engine.store, Doc: doc})
	if err != nil {
		return nil, err
	}
	for it.Next() {
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return &Analysis{Plan: p, Results: it.Results(), Stats: it.Stats()}, nil
}

// String renders the plan tree with each operator's estimated bounds next
// to its actual execution counters:
//
//	R1                                        | act OUT=15
//	  φ2 child::address    est IN=25 OUT=25   | act IN=15 scanned=15 OUT=15
//
// Estimates are upper bounds (paper §VI-B), so act ≤ est per operator is
// the invariant this display lets a reader check at a glance. Steps
// executed as transient predicate subplans report no actuals and show
// estimates only.
func (a *Analysis) String() string {
	byOp := make(map[*plan.Step]exec.OpStats, len(a.Stats))
	for _, st := range a.Stats {
		byOp[st.Op] = st
	}
	var b strings.Builder
	fmt.Fprintf(&b, "results: %d\n", a.Results)
	var walk func(op plan.Op, indent, role string)
	walk = func(op plan.Op, indent, role string) {
		head := indent
		if role != "" {
			head += role + " "
		}
		head += op.Label()
		fmt.Fprintf(&b, "%-44s", head)
		if c := *plan.CostOf(op); c.Done {
			fmt.Fprintf(&b, "  est IN=%d OUT=%d", c.In, c.Out)
		}
		if st, ok := op.(*plan.Step); ok {
			if s, have := byOp[st]; have {
				fmt.Fprintf(&b, "  | act IN=%d scanned=%d OUT=%d", s.In, s.Scanned, s.Out)
			}
		} else if _, isRoot := op.(*plan.Root); isRoot {
			fmt.Fprintf(&b, "  | act OUT=%d", a.Results)
		}
		b.WriteByte('\n')
		switch t := op.(type) {
		case *plan.Step:
			if t.Context != nil {
				walk(t.Context, indent+"  ", "ctx:")
			}
			for _, pr := range t.Preds {
				walk(pr, indent+"  ", "pred:")
			}
		default:
			for _, c := range op.Children() {
				walk(c, indent+"  ", "")
			}
		}
	}
	walk(a.Plan.Root, "", "")
	return b.String()
}
