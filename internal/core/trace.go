package core

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"vamana/internal/mass"
	"vamana/internal/obs"
)

// RequestTrace carries a serving-layer request's identity into the
// engine and the finished engine trace back out. The serving layer
// attaches one to the query context (WithRequestTrace); a traced run
// stamps the request ID and tenant into its exported trace and, instead
// of recording into the flight ring directly, hands the export back via
// Captured — the serving layer grafts its own spans (queue wait, TTFB,
// stream drain) above the engine's root and records the combined tree
// (Engine.RecordTrace), so the ring holds one entry per request, not
// two.
type RequestTrace struct {
	// ID is the wire request ID (X-Vamana-Request), Tenant the tenant
	// the request billed to.
	ID     string
	Tenant string
	// Captured receives the engine's exported trace at query finish
	// when the run was traced; nil otherwise. Written by the finish
	// hook, read by the request goroutine after the iterator is closed
	// — the exactly-once finish contract orders the two.
	Captured *obs.QueryTrace
}

// requestTraceKey keys the context attachment of a *RequestTrace.
type requestTraceKey struct{}

// WithRequestTrace returns a context carrying rt; engine runs under it
// join their traces to the request (see RequestTrace).
func WithRequestTrace(ctx context.Context, rt *RequestTrace) context.Context {
	return context.WithValue(ctx, requestTraceKey{}, rt)
}

// requestTraceFrom extracts the request attachment, nil when absent.
// Only consulted on traced runs, so the untraced hot path never pays
// the context-value walk.
func requestTraceFrom(ctx context.Context) *RequestTrace {
	rt, _ := ctx.Value(requestTraceKey{}).(*RequestTrace)
	return rt
}

// TraceContext is a per-query execution trace, produced for 1-in-N
// Engine.Query calls when sampling is configured (Options.TraceEvery).
// Sampled queries carry their TraceContext through the iterator's finish
// hook; unsampled cache-hit queries allocate nothing.
type TraceContext struct {
	// ID is the engine-assigned trace sequence number, unique per engine
	// lifetime; the slow-query ring references it to link a slow entry to
	// its flight-recorder trace.
	ID       uint64
	Expr     string
	Doc      mass.DocID
	DocName  string // resolved document name, set when spans are recorded
	Start    time.Time
	CacheHit bool          // plan came from the plan cache
	Compile  time.Duration // time to produce the plan (lookup or compile)
	Total    time.Duration // end-to-end, set when the iterator finishes
	Results  uint64        // result tuples delivered
	Err      error         // execution error, if any

	// Whole-query storage consumption, filled at finish from the run's
	// accounting limiter (zero when the run was ungoverned).
	PagesRead      uint64
	RecordsDecoded uint64
	NodeCacheHits  uint64

	// Root is the assembled operator span tree — present when the run
	// recorded spans (sampled, or the flight recorder is on).
	Root *obs.Span

	// Request and Tenant tie the trace to the serving-layer request it
	// ran under (empty outside vamanad). req, when non-nil, receives the
	// exported trace at finish instead of the flight ring — see
	// RequestTrace.
	Request string
	Tenant  string
	req     *RequestTrace

	// sampled distinguishes a 1-in-N trace (delivered to TraceSink and
	// counted) from a TraceContext allocated only to carry cache-miss
	// detail to the slow-query log.
	sampled bool
	// traced marks a run that recorded executor spans; queryFinished
	// assembles Root from them.
	traced bool
	// q is the executed query, kept so span assembly can walk its plan.
	q *Query
}

// SlowQuery is one entry of the engine's slow-query ring.
type SlowQuery struct {
	Expr     string
	Doc      mass.DocID
	Start    time.Time
	Total    time.Duration
	Results  uint64
	CacheHit bool
	// Storage consumption deltas for this query, from the run's
	// accounting limiter: together they answer whether the query was
	// I/O-bound (pages), decode-bound (records), or riding the node
	// cache (hits). Zero when the engine tracks no slow queries — the
	// limiter is only force-armed when a slowLog is configured.
	PagesRead      uint64
	RecordsDecoded uint64
	NodeCacheHits  uint64
	// TraceID links the entry to its flight-recorder trace (Engine.
	// Traces), zero when the query was not traced.
	TraceID uint64
	// WorstOp names the query's worst-misestimated operator (largest
	// q-error, when at least 2x) and WorstQErr its q-error — the cost
	// observatory's pointer at a possible mis-planning cause. Empty/zero
	// when the observatory is off or every estimate was within 2x.
	WorstOp   string
	WorstQErr float64
	// Err is the run's terminal error, if any — a governance trip
	// (canceled, deadline, budget) or an execution failure. A slow entry
	// with a deadline error is the signature of a query killed by its
	// timeout rather than one that finished slowly.
	Err error
}

// slowRingCap bounds the in-memory slow-query ring. Old entries are
// overwritten; the log writer (Options.SlowQueryLog) sees every entry.
const slowRingCap = 128

// slowLog collects queries exceeding the configured threshold: a bounded
// ring for programmatic access plus an optional line-oriented writer.
type slowLog struct {
	threshold time.Duration
	w         io.Writer

	mu   sync.Mutex
	ring [slowRingCap]SlowQuery
	n    uint64 // total recorded; ring index is n % slowRingCap
}

func (l *slowLog) record(sq SlowQuery) {
	l.mu.Lock()
	l.ring[l.n%slowRingCap] = sq
	l.n++
	w := l.w
	l.mu.Unlock()
	if w != nil {
		miscost := ""
		if sq.WorstOp != "" {
			miscost = fmt.Sprintf(" worstop=%q qerr=%.1f", sq.WorstOp, sq.WorstQErr)
		}
		if sq.Err != nil {
			fmt.Fprintf(w, "slow query: %s doc=%d total=%v results=%d cached=%v pages=%d records=%d cachehits=%d%s err=%q\n",
				sq.Expr, sq.Doc, sq.Total, sq.Results, sq.CacheHit, sq.PagesRead, sq.RecordsDecoded, sq.NodeCacheHits, miscost, sq.Err)
		} else {
			fmt.Fprintf(w, "slow query: %s doc=%d total=%v results=%d cached=%v pages=%d records=%d cachehits=%d%s\n",
				sq.Expr, sq.Doc, sq.Total, sq.Results, sq.CacheHit, sq.PagesRead, sq.RecordsDecoded, sq.NodeCacheHits, miscost)
		}
	}
}

// snapshot returns the recorded slow queries, most recent first.
func (l *slowLog) snapshot() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.n
	if n > slowRingCap {
		n = slowRingCap
	}
	out := make([]SlowQuery, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, l.ring[(l.n-1-i)%slowRingCap])
	}
	return out
}
