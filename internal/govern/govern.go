// Package govern is VAMANA's query-governance substrate: per-query
// cancellation, deadlines, and resource budgets, threaded through every
// level of the read path (executor pull loops, MASS axis cursors, B+-tree
// seeks and page reads).
//
// The paper's premise is that worst-case XPath evaluation cost is
// unavoidable for some inputs; a serving engine therefore has to *bound*
// it. A Limiter is that bound for one query run: it carries the caller's
// context.Context, an optional wall-clock deadline, and optional resource
// budgets, and every storage layer charges its consumption against it.
// When a limit trips, the charge site returns a typed error that
// propagates up the pipeline like any other execution error, poisoning
// the iterator.
//
// A Limiter belongs to exactly one query run and is only touched by the
// goroutine driving that run, so none of its state is atomic — the whole
// fast path is one counter increment and one branch, amortizing the
// expensive checks (context poll, time.Now) to every checkInterval-th
// call. An ungoverned run uses a nil *Limiter; every method is nil-safe
// and free in that case, which is what keeps the default serving path at
// zero governance overhead.
package govern

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Error taxonomy. The sentinels unwrap to the matching context errors, so
// callers can test either level:
//
//	errors.Is(err, govern.ErrDeadlineExceeded) // engine-level
//	errors.Is(err, context.DeadlineExceeded)   // context-level
var (
	// ErrCanceled reports that the query's context was canceled.
	ErrCanceled error = &sentinelError{msg: "vamana: query canceled", base: context.Canceled}
	// ErrDeadlineExceeded reports that the query ran past its deadline —
	// either the context's or the per-query wall-clock Timeout budget.
	ErrDeadlineExceeded error = &sentinelError{msg: "vamana: query deadline exceeded", base: context.DeadlineExceeded}
	// ErrBudgetExceeded reports that a per-query resource budget tripped.
	// The concrete error is always a *BudgetError carrying which budget
	// and the consumption at trip time.
	ErrBudgetExceeded = errors.New("vamana: query resource budget exceeded")
)

// sentinelError is a stable package-level error that also satisfies
// errors.Is against the context error it corresponds to.
type sentinelError struct {
	msg  string
	base error
}

func (e *sentinelError) Error() string { return e.msg }
func (e *sentinelError) Unwrap() error { return e.base }

// BudgetError reports which resource budget a query tripped and how much
// it had consumed when it tripped. It unwraps to ErrBudgetExceeded.
type BudgetError struct {
	// Budget names the tripped budget: "results", "pages-read", or
	// "decoded-records".
	Budget string
	// Limit is the configured budget.
	Limit uint64
	// Used is the consumption at trip time (the first value > Limit).
	Used uint64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("vamana: query %s budget exceeded (limit %d, used %d)", e.Budget, e.Limit, e.Used)
}

func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// Limits configures a query's resource budgets. The zero value means
// fully unlimited; each individual zero field leaves that budget off.
type Limits struct {
	// Timeout bounds the query's wall-clock time from the moment
	// execution starts. It composes with any context deadline: the
	// earlier of the two wins.
	Timeout time.Duration
	// MaxResults bounds the number of result tuples delivered.
	MaxResults uint64
	// MaxPagesRead bounds the number of index pages read from the pager
	// on behalf of this query (node-cache misses; cache hits are free).
	MaxPagesRead uint64
	// MaxDecodedRecords bounds the number of clustered-index records
	// decoded on behalf of this query.
	MaxDecodedRecords uint64
}

// Unlimited reports whether no budget is set.
func (l Limits) Unlimited() bool { return l == Limits{} }

// Usage is a Limiter's consumption snapshot.
type Usage struct {
	Results        uint64
	PagesRead      uint64
	DecodedRecords uint64
	NodeCacheHits  uint64
	Elapsed        time.Duration
}

// checkInterval amortizes the expensive cancellation checks (context
// poll + time.Now) to one in every checkInterval cheap checks. Must be a
// power of two. At typical index-scan rates of tens of millions of
// entries per second this detects cancellation within microseconds while
// keeping the per-entry cost to an increment and a mask.
const checkInterval = 256

// Limiter enforces cancellation, a deadline and resource budgets for one
// query run. It is owned by the single goroutine driving the run and must
// not be shared. A nil *Limiter is valid and means "ungoverned": every
// method is a nil-check away from free.
type Limiter struct {
	ctx         context.Context
	cancelable  bool
	deadline    time.Time
	hasDeadline bool
	start       time.Time
	limits      Limits

	results, pagesRead, decodedRecords uint64
	// nodeCacheHits counts index node loads served from cache — pure
	// accounting (no budget trips on it); it exists so per-query trace and
	// slow-query records can tell an I/O-bound query from a CPU-bound one.
	nodeCacheHits uint64

	tick uint64
	err  error
}

// pool recycles limiters across runs: a governed serving path would
// otherwise pay one short-lived heap allocation per query.
var pool = sync.Pool{New: func() any { return new(Limiter) }}

// New builds the limiter for one query run, or returns nil when ctx can
// never be canceled and limits sets no budget — the ungoverned fast path.
// The limiter's clock starts now; limits.Timeout counts from this moment.
// Pass the limiter to Release when the run is over.
func New(ctx context.Context, limits Limits) *Limiter {
	if ctx == nil {
		ctx = context.Background()
	}
	cancelable := ctx.Done() != nil
	deadline, hasDeadline := ctx.Deadline()
	if !cancelable && !hasDeadline && limits.Unlimited() {
		return nil
	}
	l := pool.Get().(*Limiter)
	l.arm(ctx, limits, cancelable, deadline, hasDeadline)
	return l
}

// Arm is New into caller-owned memory: it initializes l (which must be
// zero — fresh or Disarmed) for one run and returns it, or returns nil
// and leaves l untouched when the run is ungoverned. Callers that pool
// their own per-run state embed a Limiter there and Arm it, avoiding New
// and Release's pool round-trip on every governed query; Disarm l before
// reusing the memory.
func Arm(l *Limiter, ctx context.Context, limits Limits) *Limiter {
	if ctx == nil {
		ctx = context.Background()
	}
	cancelable := ctx.Done() != nil
	deadline, hasDeadline := ctx.Deadline()
	if !cancelable && !hasDeadline && limits.Unlimited() {
		return nil
	}
	l.arm(ctx, limits, cancelable, deadline, hasDeadline)
	return l
}

// ArmAccounting is Arm for runs that need per-query resource accounting
// regardless of governance: it always arms l, even when ctx can never be
// canceled and limits sets no budget. Traced and slow-tracked queries use
// it so their span and slow-log records can report pages read, records
// decoded and cache hits — the budgets simply never trip when unset.
func ArmAccounting(l *Limiter, ctx context.Context, limits Limits) *Limiter {
	if ctx == nil {
		ctx = context.Background()
	}
	cancelable := ctx.Done() != nil
	deadline, hasDeadline := ctx.Deadline()
	l.arm(ctx, limits, cancelable, deadline, hasDeadline)
	return l
}

// NewAccounting is New with the ArmAccounting guarantee: the returned
// limiter is never nil. Pass it to Release when the run is over.
func NewAccounting(ctx context.Context, limits Limits) *Limiter {
	if ctx == nil {
		ctx = context.Background()
	}
	cancelable := ctx.Done() != nil
	deadline, hasDeadline := ctx.Deadline()
	l := pool.Get().(*Limiter)
	l.arm(ctx, limits, cancelable, deadline, hasDeadline)
	return l
}

func (l *Limiter) arm(ctx context.Context, limits Limits, cancelable bool, deadline time.Time, hasDeadline bool) {
	*l = Limiter{ctx: ctx, cancelable: cancelable, limits: limits}
	if limits.Timeout > 0 {
		// The start timestamp exists only to anchor Timeout (and Usage's
		// Elapsed); without one this path skips the time.Now call.
		l.start = time.Now()
		td := l.start.Add(limits.Timeout)
		if !hasDeadline || td.Before(deadline) {
			deadline = td
		}
		hasDeadline = true
	}
	l.deadline, l.hasDeadline = deadline, hasDeadline
}

// Disarm zeroes an Arm-ed limiter so its memory can be pooled or re-armed
// without pinning the run's context. Errors already returned remain
// valid — they are plain values.
func Disarm(l *Limiter) { *l = Limiter{} }

// Release returns a New-built limiter to the pool for reuse by a future
// run. The caller must drop every reference first; nil is a no-op. Errors
// already returned by the limiter remain valid — they are plain values.
func Release(l *Limiter) {
	if l == nil {
		return
	}
	*l = Limiter{}
	pool.Put(l)
}

// CheckContext maps ctx's current state to the governance taxonomy
// without building a limiter: ErrCanceled or ErrDeadlineExceeded when ctx
// is already done, nil otherwise (including for a nil ctx). It is the
// pre-flight for paths that arm their limiter later.
func CheckContext(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	switch ctx.Err() {
	case nil:
		return nil
	case context.Canceled:
		return ErrCanceled
	default:
		return ErrDeadlineExceeded
	}
}

// Err returns the governance error recorded so far, if any. Once set it
// is sticky: the run is considered poisoned.
func (l *Limiter) Err() error {
	if l == nil {
		return nil
	}
	return l.err
}

// Check polls cancellation and the deadline immediately (not amortized).
// Used at run boundaries; per-unit-of-work sites (tuple pulls, index
// entries) use the amortized Tick instead, and the serving path's one
// immediate poll per query is CheckContext, before the limiter exists.
func (l *Limiter) Check() error {
	if l == nil {
		return nil
	}
	if l.err != nil {
		return l.err
	}
	return l.checkNow()
}

func (l *Limiter) checkNow() error {
	// ctx.Err() is an atomic load on the stdlib context kinds — much
	// cheaper than a non-blocking receive on the Done channel, and this
	// runs on every immediate Check plus once per checkInterval ticks.
	if l.cancelable {
		if cerr := l.ctx.Err(); cerr != nil {
			if cerr == context.Canceled {
				l.err = ErrCanceled
			} else {
				l.err = ErrDeadlineExceeded
			}
			return l.err
		}
	}
	if l.hasDeadline && !time.Now().Before(l.deadline) {
		l.err = ErrDeadlineExceeded
		return l.err
	}
	return nil
}

// Tick is the amortized per-unit-of-work cancellation check: callers
// invoke it once per tuple pulled or index entry examined, and every
// checkInterval-th call performs the real poll. The units in between
// cost one increment and one branch — the body is small enough for the
// compiler to inline at every charge site, which is what keeps governed
// scans within the serving overhead budget.
func (l *Limiter) Tick() error {
	if l == nil {
		return nil
	}
	l.tick++
	if l.tick&(checkInterval-1) != 0 {
		return nil
	}
	return l.tickSlow()
}

// tickSlow is kept out of line so Tick itself stays under the inlining
// budget; it is reached once per checkInterval ticks.
//
//go:noinline
func (l *Limiter) tickSlow() error {
	if l.err != nil {
		return l.err
	}
	return l.checkNow()
}

// exceeded records and returns the budget trip. Kept out of the Add*
// fast paths so those stay inlinable.
func (l *Limiter) exceeded(budget string, limit, used uint64) error {
	l.err = &BudgetError{Budget: budget, Limit: limit, Used: used}
	return l.err
}

// AddResults charges n delivered result tuples against MaxResults.
func (l *Limiter) AddResults(n uint64) error {
	if l == nil {
		return nil
	}
	l.results += n
	if l.limits.MaxResults > 0 && l.results > l.limits.MaxResults {
		return l.exceeded("results", l.limits.MaxResults, l.results)
	}
	return nil
}

// AddPages charges n pager page reads against MaxPagesRead. Charged
// before the read happens, so a tripped budget prevents the I/O.
func (l *Limiter) AddPages(n uint64) error {
	if l == nil {
		return nil
	}
	l.pagesRead += n
	if l.limits.MaxPagesRead > 0 && l.pagesRead > l.limits.MaxPagesRead {
		return l.exceeded("pages-read", l.limits.MaxPagesRead, l.pagesRead)
	}
	return nil
}

// AddRecords charges n decoded clustered records against
// MaxDecodedRecords.
func (l *Limiter) AddRecords(n uint64) error {
	if l == nil {
		return nil
	}
	l.decodedRecords += n
	if l.limits.MaxDecodedRecords > 0 && l.decodedRecords > l.limits.MaxDecodedRecords {
		return l.exceeded("decoded-records", l.limits.MaxDecodedRecords, l.decodedRecords)
	}
	return nil
}

// AddCacheHits records n index node-cache hits — accounting only, no
// budget ever trips on it. Inlined at the hottest node-load site, so the
// body is one nil check and one add.
func (l *Limiter) AddCacheHits(n uint64) {
	if l != nil {
		l.nodeCacheHits += n
	}
}

// PagesRead returns the pager page reads charged so far (nil-safe).
func (l *Limiter) PagesRead() uint64 {
	if l == nil {
		return 0
	}
	return l.pagesRead
}

// DecodedRecords returns the clustered records decoded so far (nil-safe).
func (l *Limiter) DecodedRecords() uint64 {
	if l == nil {
		return 0
	}
	return l.decodedRecords
}

// NodeCacheHits returns the index node-cache hits recorded so far
// (nil-safe).
func (l *Limiter) NodeCacheHits() uint64 {
	if l == nil {
		return 0
	}
	return l.nodeCacheHits
}

// Usage snapshots the consumption so far. Elapsed is only tracked when a
// Timeout budget is set (the clock exists to anchor it).
func (l *Limiter) Usage() Usage {
	if l == nil {
		return Usage{}
	}
	u := Usage{
		Results:        l.results,
		PagesRead:      l.pagesRead,
		DecodedRecords: l.decodedRecords,
		NodeCacheHits:  l.nodeCacheHits,
	}
	if !l.start.IsZero() {
		u.Elapsed = time.Since(l.start)
	}
	return u
}
