package govern

import (
	"testing"
	"time"
)

func TestLimitsClamp(t *testing.T) {
	ceil := Limits{
		Timeout:           time.Second,
		MaxResults:        100,
		MaxPagesRead:      1000,
		MaxDecodedRecords: 0, // tenant leaves this budget open
	}
	cases := []struct {
		name string
		req  Limits
		want Limits
	}{
		{
			name: "unlimited request inherits every ceiling",
			req:  Limits{},
			want: Limits{Timeout: time.Second, MaxResults: 100, MaxPagesRead: 1000},
		},
		{
			name: "request below the ceiling keeps its own budgets",
			req:  Limits{Timeout: time.Millisecond, MaxResults: 5, MaxPagesRead: 10, MaxDecodedRecords: 7},
			want: Limits{Timeout: time.Millisecond, MaxResults: 5, MaxPagesRead: 10, MaxDecodedRecords: 7},
		},
		{
			name: "request above the ceiling is cut down",
			req:  Limits{Timeout: time.Minute, MaxResults: 10000, MaxPagesRead: 1 << 30},
			want: Limits{Timeout: time.Second, MaxResults: 100, MaxPagesRead: 1000},
		},
		{
			name: "open ceiling field leaves the request in force",
			req:  Limits{MaxDecodedRecords: 123456},
			want: Limits{Timeout: time.Second, MaxResults: 100, MaxPagesRead: 1000, MaxDecodedRecords: 123456},
		},
	}
	for _, tc := range cases {
		if got := tc.req.Clamp(ceil); got != tc.want {
			t.Errorf("%s: Clamp = %+v, want %+v", tc.name, got, tc.want)
		}
	}

	// A zero ceiling is the identity: clamping against "no tenant caps"
	// must never tighten anything.
	req := Limits{Timeout: time.Hour, MaxResults: 9, MaxPagesRead: 8, MaxDecodedRecords: 7}
	if got := req.Clamp(Limits{}); got != req {
		t.Errorf("zero ceiling changed limits: %+v", got)
	}

	// Clamp is idempotent: applying the same ceiling twice is a no-op.
	once := (Limits{}).Clamp(ceil)
	if twice := once.Clamp(ceil); twice != once {
		t.Errorf("Clamp not idempotent: %+v then %+v", once, twice)
	}
}
