package govern

// Per-tenant limit derivation. A serving daemon fronts one engine with
// many tenants, each entitled to its own resource ceilings. The tenant's
// configured Limits act as caps: a request may ask for less than its
// tenant allows, never more, and a request that asks for nothing
// inherits the tenant's ceiling outright. Deriving the effective budget
// for a run is therefore a field-wise clamp, kept here so the serving
// layer and any future multi-tenant frontend share one definition.

// Clamp derives the effective limits for a request under a tenant
// ceiling: for each budget, a non-zero ceiling field caps the request's
// value (a zero request field — "unlimited" — collapses to the ceiling,
// and a request above the ceiling is cut down to it); a zero ceiling
// field leaves the request's own value in force. The result is never
// more permissive than ceil in any dimension.
func (l Limits) Clamp(ceil Limits) Limits {
	out := l
	if ceil.Timeout > 0 && (out.Timeout == 0 || out.Timeout > ceil.Timeout) {
		out.Timeout = ceil.Timeout
	}
	if ceil.MaxResults > 0 && (out.MaxResults == 0 || out.MaxResults > ceil.MaxResults) {
		out.MaxResults = ceil.MaxResults
	}
	if ceil.MaxPagesRead > 0 && (out.MaxPagesRead == 0 || out.MaxPagesRead > ceil.MaxPagesRead) {
		out.MaxPagesRead = ceil.MaxPagesRead
	}
	if ceil.MaxDecodedRecords > 0 && (out.MaxDecodedRecords == 0 || out.MaxDecodedRecords > ceil.MaxDecodedRecords) {
		out.MaxDecodedRecords = ceil.MaxDecodedRecords
	}
	return out
}
