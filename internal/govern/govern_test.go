package govern

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilLimiterIsUngoverned(t *testing.T) {
	l := New(context.Background(), Limits{})
	if l != nil {
		t.Fatalf("New(Background, no limits) = %v, want nil", l)
	}
	// Every method must be a safe no-op on nil.
	if err := l.Check(); err != nil {
		t.Fatalf("nil.Check() = %v", err)
	}
	if err := l.Tick(); err != nil {
		t.Fatalf("nil.Tick() = %v", err)
	}
	if err := l.AddResults(1); err != nil {
		t.Fatalf("nil.AddResults() = %v", err)
	}
	if err := l.AddPages(1); err != nil {
		t.Fatalf("nil.AddPages() = %v", err)
	}
	if err := l.AddRecords(1); err != nil {
		t.Fatalf("nil.AddRecords() = %v", err)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("nil.Err() = %v", err)
	}
	if u := l.Usage(); u != (Usage{}) {
		t.Fatalf("nil.Usage() = %+v", u)
	}
}

func TestNilContextTreatedAsBackground(t *testing.T) {
	if l := New(nil, Limits{}); l != nil {
		t.Fatalf("New(nil ctx, no limits) = %v, want nil", l)
	}
	l := New(nil, Limits{MaxResults: 1})
	if l == nil {
		t.Fatal("New(nil ctx, budget) = nil, want limiter")
	}
	if err := l.Check(); err != nil {
		t.Fatalf("Check() = %v", err)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	l := New(ctx, Limits{})
	if l == nil {
		t.Fatal("cancelable ctx should produce a limiter")
	}
	if err := l.Check(); err != nil {
		t.Fatalf("Check() before cancel = %v", err)
	}
	cancel()
	err := l.Check()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Check() after cancel = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ErrCanceled should satisfy errors.Is(err, context.Canceled)")
	}
	// Sticky.
	if err := l.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Err() = %v, want sticky ErrCanceled", err)
	}
	if err := l.AddResults(1); !errors.Is(err, ErrCanceled) {
		// AddResults does not consult err first; but Tick/Check must.
		_ = err
	}
	// Tick's sticky-error check rides the amortized poll, so the recorded
	// error resurfaces within one check interval.
	var terr error
	for i := 0; i < checkInterval; i++ {
		if terr = l.Tick(); terr != nil {
			break
		}
	}
	if !errors.Is(terr, ErrCanceled) {
		t.Fatalf("Tick() within %d calls after trip = %v, want sticky ErrCanceled", checkInterval, terr)
	}
}

func TestTickAmortization(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	l := New(ctx, Limits{})
	cancel()
	// The first checkInterval-1 ticks may pass (amortized); by the
	// checkInterval-th the cancellation must be seen.
	var err error
	for i := 0; i < checkInterval; i++ {
		if err = l.Tick(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancellation not detected within %d ticks: %v", checkInterval, err)
	}
}

func TestContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	l := New(ctx, Limits{})
	err := l.Check()
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Check() past deadline = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("ErrDeadlineExceeded should satisfy errors.Is(err, context.DeadlineExceeded)")
	}
}

func TestTimeoutBudget(t *testing.T) {
	// Timeout alone (no cancelable context) must still govern.
	l := New(context.Background(), Limits{Timeout: time.Nanosecond})
	if l == nil {
		t.Fatal("Timeout budget should produce a limiter")
	}
	time.Sleep(time.Millisecond)
	if err := l.Check(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Check() past Timeout = %v, want ErrDeadlineExceeded", err)
	}
}

func TestTimeoutTightensContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Hour))
	defer cancel()
	l := New(ctx, Limits{Timeout: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if err := l.Check(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("tighter Timeout not honored: %v", err)
	}
	// And the looser Timeout must not loosen the context deadline.
	ctx2, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	l2 := New(ctx2, Limits{Timeout: time.Hour})
	if err := l2.Check(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired ctx deadline not honored with loose Timeout: %v", err)
	}
}

func TestResultBudget(t *testing.T) {
	l := New(context.Background(), Limits{MaxResults: 2})
	if err := l.AddResults(1); err != nil {
		t.Fatalf("AddResults(1) #1 = %v", err)
	}
	if err := l.AddResults(1); err != nil {
		t.Fatalf("AddResults(1) #2 = %v", err)
	}
	err := l.AddResults(1)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("AddResults(1) #3 = %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("budget error should be a *BudgetError: %v", err)
	}
	if be.Budget != "results" || be.Limit != 2 || be.Used != 3 {
		t.Fatalf("BudgetError = %+v", be)
	}
}

func TestPageAndRecordBudgets(t *testing.T) {
	l := New(context.Background(), Limits{MaxPagesRead: 1, MaxDecodedRecords: 1})
	if err := l.AddPages(1); err != nil {
		t.Fatalf("AddPages within budget = %v", err)
	}
	err := l.AddPages(1)
	var be *BudgetError
	if !errors.As(err, &be) || be.Budget != "pages-read" {
		t.Fatalf("AddPages over budget = %v", err)
	}

	l2 := New(context.Background(), Limits{MaxDecodedRecords: 1})
	if err := l2.AddRecords(1); err != nil {
		t.Fatalf("AddRecords within budget = %v", err)
	}
	err = l2.AddRecords(1)
	if !errors.As(err, &be) || be.Budget != "decoded-records" {
		t.Fatalf("AddRecords over budget = %v", err)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatal("BudgetError should unwrap to ErrBudgetExceeded")
	}
}

func TestUsageSnapshot(t *testing.T) {
	l := New(context.Background(), Limits{MaxResults: 100})
	l.AddResults(3)
	l.AddPages(5)
	l.AddRecords(7)
	u := l.Usage()
	if u.Results != 3 || u.PagesRead != 5 || u.DecodedRecords != 7 {
		t.Fatalf("Usage = %+v", u)
	}
	if u.Elapsed < 0 {
		t.Fatalf("Elapsed = %v", u.Elapsed)
	}
}

func TestBudgetErrorMessage(t *testing.T) {
	be := &BudgetError{Budget: "pages-read", Limit: 10, Used: 11}
	want := "vamana: query pages-read budget exceeded (limit 10, used 11)"
	if be.Error() != want {
		t.Fatalf("Error() = %q, want %q", be.Error(), want)
	}
}
