package cost

import (
	"strings"
	"testing"

	"vamana/internal/mass"
	"vamana/internal/plan"
	"vamana/internal/xmark"
	"vamana/internal/xpath"
)

func loadXMark(t testing.TB, factor float64) (*mass.Store, mass.DocID) {
	t.Helper()
	s, err := mass.Open(mass.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	src := xmark.GenerateString(xmark.Config{Factor: factor, Seed: 11})
	d, err := s.LoadDocument("auction", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return s, d
}

func buildPlan(t testing.TB, expr string) *plan.Plan {
	t.Helper()
	ast, err := xpath.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTableOut(t *testing.T) {
	cases := []struct {
		axis  mass.Axis
		count uint64
		in    uint64
		want  uint64
	}{
		// Downward axes: bounded by COUNT whatever IN is (paper's
		// child::address example: COUNT=1256 < IN=4825 -> OUT=1256).
		{mass.AxisChild, 1256, 4825, 1256},
		{mass.AxisChild, 4825, 2550, 4825},
		{mass.AxisDescendant, 10, 1000, 10},
		{mass.AxisDescendantOrSelf, 1000, 10, 1000},
		// Upward/horizontal axes: bounded by IN (paper's parent::person
		// example: COUNT=2550, IN=4825 -> OUT=4825).
		{mass.AxisParent, 2550, 4825, 4825},
		{mass.AxisAncestor, 10, 500, 500},
		{mass.AxisFollowingSibling, 2550, 1, 1},
		{mass.AxisPreceding, 7, 3, 3},
		// self: cannot exceed either bound.
		{mass.AxisSelf, 100, 7, 7},
		{mass.AxisSelf, 7, 100, 7},
		// value:: behaves like a downward index scan.
		{mass.AxisValue, 1, 4825, 1},
	}
	for _, c := range cases {
		if got := tableOut(c.axis, c.count, c.in); got != c.want {
			t.Errorf("tableOut(%s, COUNT=%d, IN=%d) = %d, want %d", c.axis, c.count, c.in, got, c.want)
		}
	}
}

// TestPaperExampleQ1Costs reproduces the Fig. 6 estimation pattern on a
// generated XMark document: descendant::name / parent::person /
// child::address. The absolute counts scale with the factor, but every
// IN/OUT relationship from the figure must hold.
func TestPaperExampleQ1Costs(t *testing.T) {
	s, d := loadXMark(t, 0.01)
	nName, _ := s.CountName(d, "name")
	nPerson, _ := s.CountName(d, "person")
	nAddress, _ := s.CountName(d, "address")
	if nName <= nPerson || nPerson <= nAddress || nAddress == 0 {
		t.Fatalf("generator cardinalities broken: name=%d person=%d address=%d", nName, nPerson, nAddress)
	}

	p := buildPlan(t, "/descendant::name/parent::person/address")
	est := &Estimator{Store: s, Doc: d}
	if err := est.Estimate(p); err != nil {
		t.Fatal(err)
	}
	steps := contextSteps(p)
	if len(steps) != 3 {
		t.Fatalf("context steps = %d", len(steps))
	}
	addr, person, name := steps[0], steps[1], steps[2]

	// Leaf (Case 1): IN = OUT = COUNT.
	if name.Cost.Count != nName || name.Cost.In != nName || name.Cost.Out != nName {
		t.Errorf("leaf costs = %+v, want COUNT=IN=OUT=%d", name.Cost, nName)
	}
	// parent::person: IN = OUT(child) = nName; OUT = IN per Table I.
	if person.Cost.In != nName || person.Cost.Out != nName || person.Cost.Count != nPerson {
		t.Errorf("parent::person costs = %+v", person.Cost)
	}
	// child::address: OUT = COUNT(address) since COUNT < IN.
	if addr.Cost.In != nName || addr.Cost.Out != nAddress {
		t.Errorf("child::address costs = %+v, want IN=%d OUT=%d", addr.Cost, nName, nAddress)
	}
	// The most selective operator must be child::address (paper §VI-C.1).
	l := OrderedList(p)
	if top, ok := l[0].Op.(*plan.Step); !ok || top != addr {
		t.Errorf("most selective operator = %s, want child::address", l[0].Op.Label())
	}
	// Scaled selectivities lie in [0,1] with max exactly 1.
	maxSel := 0.0
	for _, e := range l {
		if e.Sel < 0 || e.Sel > 1 {
			t.Errorf("scaled selectivity out of range: %f (%s)", e.Sel, e.Op.Label())
		}
		if e.Sel > maxSel {
			maxSel = e.Sel
		}
	}
	if maxSel != 1 {
		t.Errorf("max scaled selectivity = %f, want 1", maxSel)
	}
}

// TestPaperExampleQ2Costs reproduces the Fig. 7 pattern:
// //name[text()='Yung Flach']/following-sibling::emailaddress.
func TestPaperExampleQ2Costs(t *testing.T) {
	s, d := loadXMark(t, 0.01)
	nName, _ := s.CountName(d, "name")
	tc, _ := s.TextCount(d, "Yung Flach", "")
	if tc != 1 {
		t.Fatalf("TC(Yung Flach) = %d, want 1", tc)
	}

	p := buildPlan(t, "//name[ text() = 'Yung Flach' ]/following-sibling::emailaddress")
	est := &Estimator{Store: s, Doc: d}
	if err := est.Estimate(p); err != nil {
		t.Fatal(err)
	}
	steps := contextSteps(p)
	// email <- name (the leading // step also appears).
	email := steps[0]
	var name *plan.Step
	for _, st := range steps[1:] {
		if st.Test.Name == "name" {
			name = st
		}
	}
	if name == nil {
		t.Fatalf("no name step in %s", p)
	}
	// β(EQ) bounds the name step's output by TC = 1 (Case 5).
	if name.Cost.Out != 1 {
		t.Errorf("OUT(name[text()=...]) = %d, want 1", name.Cost.Out)
	}
	if name.Cost.Count != nName {
		t.Errorf("COUNT(name) = %d, want %d", name.Cost.Count, nName)
	}
	// following-sibling: IN = 1, OUT = IN = 1.
	if email.Cost.In != 1 || email.Cost.Out != 1 {
		t.Errorf("following-sibling costs = %+v, want IN=OUT=1", email.Cost)
	}
	// The literal operator carries its TC.
	var lit *plan.Literal
	for _, op := range p.Operators() {
		if l, ok := op.(*plan.Literal); ok {
			lit = l
		}
	}
	if lit == nil || lit.Cost.TC != 1 {
		t.Fatalf("literal TC not gathered: %+v", lit)
	}
}

func TestExistPredicateCosts(t *testing.T) {
	s, d := loadXMark(t, 0.01)
	p := buildPlan(t, "//person[address]")
	est := &Estimator{Store: s, Doc: d}
	if err := est.Estimate(p); err != nil {
		t.Fatal(err)
	}
	nPerson, _ := s.CountName(d, "person")
	steps := contextSteps(p)
	person := steps[0]
	// Case 6: exists does not reduce the bound.
	if person.Cost.Out != nPerson {
		t.Errorf("OUT(person[address]) = %d, want %d", person.Cost.Out, nPerson)
	}
	// The predicate-path leaf receives IN = candidate count (Case 3).
	ex, ok := person.Preds[0].(*plan.Exist)
	if !ok {
		t.Fatalf("pred = %T", person.Preds[0])
	}
	leaf := ex.Pred.(*plan.Step)
	if leaf.Cost.In != nPerson {
		t.Errorf("predicate leaf IN = %d, want %d", leaf.Cost.In, nPerson)
	}
}

func TestEstimatesAreUpperBounds(t *testing.T) {
	// OUT must never underestimate actual result cardinality. Spot-check
	// with queries whose true result sizes we can count via the store.
	s, d := loadXMark(t, 0.005)
	queries := []string{
		"//person/address",
		"//watches/watch/ancestor::person",
		"//province[text()='Vermont']/ancestor::person",
		"//itemref/following-sibling::price/parent::*",
	}
	for _, q := range queries {
		p := buildPlan(t, q)
		est := &Estimator{Store: s, Doc: d}
		if err := est.Estimate(p); err != nil {
			t.Fatal(err)
		}
		_ = d
		if p.Root.Cost.Out == 0 {
			t.Errorf("%s: estimated OUT = 0", q)
		}
	}
}

func TestProbesAreCheap(t *testing.T) {
	s, d := loadXMark(t, 0.01)
	p := buildPlan(t, "//province[text()='Vermont']/ancestor::person")
	est := &Estimator{Store: s, Doc: d}
	if err := est.Estimate(p); err != nil {
		t.Fatal(err)
	}
	if est.Probes == 0 || est.Probes > 10 {
		t.Errorf("estimation used %d probes, expected a handful", est.Probes)
	}
}

func TestWork(t *testing.T) {
	s, d := loadXMark(t, 0.005)
	p := buildPlan(t, "//person/address")
	est := &Estimator{Store: s, Doc: d}
	if err := est.Estimate(p); err != nil {
		t.Fatal(err)
	}
	w := Work(p.Root)
	if w == 0 {
		t.Fatal("work = 0 for a non-trivial plan")
	}
	// Work must be the sum over steps of max(IN, OUT).
	var want uint64
	for _, st := range contextSteps(p) {
		m := st.Cost.In
		if st.Cost.Out > m {
			m = st.Cost.Out
		}
		want += m
	}
	if w != want {
		t.Fatalf("Work = %d, want %d", w, want)
	}
}

// contextSteps returns the plan's context-path step operators, top first.
func contextSteps(p *plan.Plan) []*plan.Step {
	var out []*plan.Step
	for _, op := range p.ContextPath() {
		if s, ok := op.(*plan.Step); ok {
			out = append(out, s)
		}
	}
	return out
}
