package cost

import (
	"strings"
	"testing"

	"vamana/internal/mass"
)

// TestMemoProbesCachesWithinEpoch verifies that repeated probes hit the
// memo and agree with the store, and that a document update (which bumps
// the statistics epoch) invalidates the cached counts.
func TestMemoProbesCachesWithinEpoch(t *testing.T) {
	s, d := loadXMark(t, 0.05)
	m := NewMemoProbes(s)

	test := mass.NodeTest{Type: mass.TestName, Name: "person"}
	want, err := s.TestCount(d, test, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := m.TestCount(d, test, "")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("probe %d: TestCount = %d, want %d", i, got, want)
		}
	}
	hits, misses := m.Stats()
	if misses != 1 || hits != 2 {
		t.Fatalf("after 3 identical probes: hits=%d misses=%d, want 2/1", hits, misses)
	}

	// An update bumps the epoch; the memo must re-probe and see the new
	// count.
	persons := s.AxisScan(d, "", mass.AxisDescendant, test)
	n, ok := persons.Next()
	if !ok {
		t.Fatalf("no person node to delete: %v", persons.Err())
	}
	if err := s.DeleteSubtree(d, n.Key); err != nil {
		t.Fatal(err)
	}
	got, err := m.TestCount(d, test, "")
	if err != nil {
		t.Fatal(err)
	}
	if got != want-1 {
		t.Fatalf("after delete: TestCount = %d, want %d", got, want-1)
	}
}

// TestMemoProbesSecondDocIndependent checks that one document's update
// does not invalidate another document's memo generation.
func TestMemoProbesSecondDocIndependent(t *testing.T) {
	s, d1 := loadXMark(t, 0.05)
	d2, err := s.LoadDocument("tiny", strings.NewReader("<r><a/><a/></r>"))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMemoProbes(s)
	test := mass.NodeTest{Type: mass.TestName, Name: "a"}
	if _, err := m.TestCount(d2, test, ""); err != nil {
		t.Fatal(err)
	}
	// Mutate d1 only.
	person := mass.NodeTest{Type: mass.TestName, Name: "person"}
	sc := s.AxisScan(d1, "", mass.AxisDescendant, person)
	if n, ok := sc.Next(); ok {
		if err := s.DeleteSubtree(d1, n.Key); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := m.TestCount(d2, test, ""); err != nil || got != 2 {
		t.Fatalf("d2 TestCount = %d, %v; want 2", got, err)
	}
	hits, _ := m.Stats()
	if hits != 1 {
		t.Fatalf("d2 second probe should hit the memo; hits=%d", hits)
	}
}
