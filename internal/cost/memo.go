package cost

import (
	"sync"
	"sync/atomic"

	"vamana/internal/flex"
	"vamana/internal/mass"
)

// maxMemoEntries bounds one document's memo; when a generation fills up it
// is discarded wholesale (the next probes rebuild it), keeping the memory
// footprint of a long-lived serving process flat.
const maxMemoEntries = 4096

// MemoProbes caches statistics probes per document, validated against the
// store's per-document statistics epoch: any update to a document bumps
// its epoch, which atomically invalidates every memoized count for it.
// Between updates the cache is exact — VAMANA's statistics are live index
// counts, so two probes with the same arguments within one epoch must
// agree.
//
// The query-serving fast path relies on this: compiling or re-optimizing
// a query issues dozens of probes, and a cached plan's validity check is
// itself epoch-based, so steady-state serving touches the counted indexes
// not at all. MemoProbes is safe for concurrent use.
type MemoProbes struct {
	store *mass.Store

	mu   sync.Mutex
	docs map[mass.DocID]*docMemo

	// Atomic so CacheStats-style readers never contend with probes.
	hits   atomic.Uint64
	misses atomic.Uint64
	resets atomic.Uint64 // epoch invalidations + full-generation discards
}

type docMemo struct {
	epoch  uint64
	counts map[probeKey]uint64
}

// probeKey identifies one probe's arguments across all probe kinds; unused
// fields stay at their zero values.
type probeKey struct {
	kind           uint8
	testType       mass.TestType
	name           string
	attr           string
	ctx            flex.Key
	lo, hi         float64
	loIncl, hiIncl bool
}

const (
	probeTest uint8 = iota
	probeText
	probeAttrValue
	probeAttrName
	probeNodes
	probeNumRange
)

// NewMemoProbes returns a memoizing statistics source over store.
func NewMemoProbes(store *mass.Store) *MemoProbes {
	return &MemoProbes{store: store, docs: make(map[mass.DocID]*docMemo)}
}

// Stats reports cache hits and misses since creation.
func (m *MemoProbes) Stats() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}

// Counters reports hits, misses and resets (memo generations discarded by
// epoch invalidation or the per-document entry cap) since creation.
func (m *MemoProbes) Counters() (hits, misses, resets uint64) {
	return m.hits.Load(), m.misses.Load(), m.resets.Load()
}

// get serves key from d's current-epoch memo or computes it via probe.
func (m *MemoProbes) get(d mass.DocID, key probeKey, probe func() (uint64, error)) (uint64, error) {
	if d == 0 {
		// Whole-database statistics span every document's epoch; not worth
		// the bookkeeping to invalidate, so always probe.
		return probe()
	}
	epoch := m.store.Epoch(d)
	m.mu.Lock()
	dm := m.docs[d]
	if dm == nil || dm.epoch != epoch {
		if dm != nil {
			m.resets.Add(1)
		}
		dm = &docMemo{epoch: epoch, counts: make(map[probeKey]uint64)}
		m.docs[d] = dm
	}
	if v, ok := dm.counts[key]; ok {
		m.hits.Add(1)
		m.mu.Unlock()
		return v, nil
	}
	m.misses.Add(1)
	m.mu.Unlock()

	v, err := probe()
	if err != nil {
		return 0, err
	}

	m.mu.Lock()
	// Re-check: an update may have advanced the epoch while probing, in
	// which case the result belongs to a dead generation and is dropped.
	if dm := m.docs[d]; dm != nil && dm.epoch == epoch && m.store.Epoch(d) == epoch {
		if len(dm.counts) >= maxMemoEntries {
			m.resets.Add(1)
			dm.counts = make(map[probeKey]uint64)
		}
		dm.counts[key] = v
	}
	m.mu.Unlock()
	return v, nil
}

func (m *MemoProbes) TestCount(d mass.DocID, test mass.NodeTest, ctx flex.Key) (uint64, error) {
	key := probeKey{kind: probeTest, testType: test.Type, name: test.Name, attr: test.Attr, ctx: ctx}
	return m.get(d, key, func() (uint64, error) { return m.store.TestCount(d, test, ctx) })
}

func (m *MemoProbes) TextCount(d mass.DocID, v string, ctx flex.Key) (uint64, error) {
	key := probeKey{kind: probeText, name: v, ctx: ctx}
	return m.get(d, key, func() (uint64, error) { return m.store.TextCount(d, v, ctx) })
}

func (m *MemoProbes) AttrValueCount(d mass.DocID, v string, ctx flex.Key) (uint64, error) {
	key := probeKey{kind: probeAttrValue, name: v, ctx: ctx}
	return m.get(d, key, func() (uint64, error) { return m.store.AttrValueCount(d, v, ctx) })
}

func (m *MemoProbes) CountAttrName(d mass.DocID, name string) (uint64, error) {
	key := probeKey{kind: probeAttrName, name: name}
	return m.get(d, key, func() (uint64, error) { return m.store.CountAttrName(d, name) })
}

func (m *MemoProbes) CountNodes(d mass.DocID) (uint64, error) {
	key := probeKey{kind: probeNodes}
	return m.get(d, key, func() (uint64, error) { return m.store.CountNodes(d) })
}

func (m *MemoProbes) NumericRangeCount(d mass.DocID, lo float64, loIncl bool, hi float64, hiIncl bool) (uint64, error) {
	key := probeKey{kind: probeNumRange, lo: lo, hi: hi, loIncl: loIncl, hiIncl: hiIncl}
	return m.get(d, key, func() (uint64, error) { return m.store.NumericRangeCount(d, lo, loIncl, hi, hiIncl) })
}
