// Package cost implements VAMANA's cost estimation model (paper §VI-B).
//
// Statistics are gathered from the MASS indexes directly — COUNT(op) and
// TC(op) are O(log n) counted-B+-tree probes — so estimates are always
// exact and current, with no histogram maintenance under updates. The
// per-operator quantities are:
//
//	COUNT(op) — nodes in the index satisfying the operator's node test
//	TC(op)    — occurrences of a literal's value in the value index
//	IN(op)    — maximum tuples the operator receives from its context child
//	OUT(op)   — maximum tuples the operator can return (Table I)
//	δ(op)     — selectivity ratio IN/OUT, scaled to [0,1] over the plan
//
// OUT is an upper bound by construction, which is the direction the
// optimizer needs: a transformation is accepted only when its bound does
// not regress.
package cost

import (
	"fmt"
	"sort"

	"vamana/internal/flex"
	"vamana/internal/mass"
	"vamana/internal/plan"
)

// Probes is the statistics interface the estimator consumes: the exact
// counted-index probes of §VI-B. *mass.Store implements it directly;
// MemoProbes wraps a store with an epoch-validated cache so repeated
// estimations of the same document between updates reuse results.
type Probes interface {
	TestCount(d mass.DocID, test mass.NodeTest, ctx flex.Key) (uint64, error)
	TextCount(d mass.DocID, v string, ctx flex.Key) (uint64, error)
	AttrValueCount(d mass.DocID, v string, ctx flex.Key) (uint64, error)
	CountAttrName(d mass.DocID, name string) (uint64, error)
	CountNodes(d mass.DocID) (uint64, error)
	NumericRangeCount(d mass.DocID, lo float64, loIncl bool, hi float64, hiIncl bool) (uint64, error)
}

// Estimator annotates plans with cost information for one document.
type Estimator struct {
	Store Probes
	Doc   mass.DocID
	// Probes counts index statistics probes issued, exposing how cheap
	// costing is (reported by the optimization-overhead experiment).
	Probes int
	// Calibrate, when non-nil, maps a step's Table I OUT bound to a
	// corrected estimate (the cost observatory's learned per-class
	// multiplicative factors). The uncorrected bound is preserved in
	// Cost.RawOut so the feedback loop never learns from its own output.
	// Corrections only ever shrink the bound — OUT stays an upper bound
	// direction-wise, just a tighter one.
	Calibrate func(s *plan.Step, out uint64) uint64
}

// Estimate walks the plan bottom-up (leaf operators first, propagating
// upwards, §VI-B) and fills in every operator's Cost block.
func (e *Estimator) Estimate(p *plan.Plan) error {
	root := p.Root
	if root.Context == nil {
		return fmt.Errorf("cost: plan has no context child")
	}
	out, err := e.visitContext(root.Context, 0, false)
	if err != nil {
		return err
	}
	root.Cost = plan.Cost{In: out, Out: out, RawOut: out, Done: true}
	e.scaleSelectivity(p)
	return nil
}

// EstimateSubtree annotates a context-path subtree whose leaf is a
// context-path leaf (IN = COUNT). The optimizer uses it to cost a
// candidate transformation without re-costing the whole plan (§VI-C).
func (e *Estimator) EstimateSubtree(op plan.Op) error {
	_, err := e.visitContext(op, 0, false)
	return err
}

// visitContext estimates an operator on a context path. in is the number
// of tuples delivered by the operator's context child; hasIn is false for
// leaf operators, whose IN is defined by their own COUNT (Case 1) or, on
// predicate paths, by the tuples the predicate receives (Case 3) — the
// caller passes hasIn=true with that amount in that case.
func (e *Estimator) visitContext(op plan.Op, in uint64, hasIn bool) (uint64, error) {
	switch t := op.(type) {
	case *plan.Step:
		return e.visitStep(t, in, hasIn)
	case *plan.Join:
		l, err := e.visitContext(t.Left, in, hasIn)
		if err != nil {
			return 0, err
		}
		r, err := e.visitContext(t.Right, in, hasIn)
		if err != nil {
			return 0, err
		}
		t.Cost = plan.Cost{In: l + r, Out: l + r, RawOut: l + r, Sel: 1, Done: true}
		return l + r, nil
	default:
		return 0, fmt.Errorf("cost: %T cannot appear on a context path", op)
	}
}

func (e *Estimator) visitStep(s *plan.Step, in uint64, hasIn bool) (uint64, error) {
	count, err := e.stepCount(s)
	if err != nil {
		return 0, err
	}
	if s.Context != nil {
		// Case 2: IN = OUT(context child).
		if in, err = e.visitContext(s.Context, in, hasIn); err != nil {
			return 0, err
		}
	} else if !hasIn {
		// Case 1: a leaf on the context path receives every index tuple
		// matching its test.
		in = count
	}
	// Table I: the upper bound on produced tuples before predicates.
	candidates := tableOut(s.Axis, count, in)
	out := candidates
	for _, pred := range s.Preds {
		if out, err = e.visitPred(pred, out); err != nil {
			return 0, err
		}
	}
	raw := out
	if e.Calibrate != nil {
		out = e.Calibrate(s, out)
	}
	s.Cost = plan.Cost{Count: count, In: in, Out: out, RawOut: raw, Sel: rawSelectivity(in, out), Done: true}
	return out, nil
}

// stepCount gathers COUNT(op) — for value:: steps the text count of the
// literal plays the role of COUNT.
func (e *Estimator) stepCount(s *plan.Step) (uint64, error) {
	e.Probes++
	switch s.Axis {
	case mass.AxisValue:
		return e.Store.TextCount(e.Doc, s.Test.Name, "")
	case mass.AxisAttrValue:
		// An upper bound: the probe counts matching values across all
		// attribute names; the name filter only shrinks the set.
		return e.Store.AttrValueCount(e.Doc, s.Test.Name, "")
	case mass.AxisNumRange:
		return e.Store.NumericRangeCount(e.Doc, s.NumLo, s.NumLoIncl, s.NumHi, s.NumHiIncl)
	case mass.AxisAttribute:
		// Attribute steps count attribute names, not element names.
		if s.Test.Type == mass.TestName {
			return e.Store.CountAttrName(e.Doc, s.Test.Name)
		}
		// Wildcard / node(): the stored node total bounds the attribute
		// count (elements can carry any number of attributes).
		return e.Store.CountNodes(e.Doc)
	default:
		return e.Store.TestCount(e.Doc, s.Test, "")
	}
}

// tableOut is Table I: the upper bound of tuples a step operator produces,
// by axis class.
func tableOut(axis mass.Axis, count, in uint64) uint64 {
	switch axis {
	case mass.AxisChild, mass.AxisDescendant, mass.AxisDescendantOrSelf, mass.AxisValue, mass.AxisAttrValue, mass.AxisNumRange:
		// Downward axes can fan out, but never beyond the number of
		// matching nodes that exist.
		return count
	case mass.AxisSelf:
		return min64(count, in)
	case mass.AxisAttribute, mass.AxisNamespace:
		return count
	default:
		// parent, ancestor(-or-self), following(-sibling),
		// preceding(-sibling): bounded by the tuples received.
		return in
	}
}

// visitPred estimates a predicate operator applied to `in` candidate
// tuples and returns the bound on survivors.
func (e *Estimator) visitPred(op plan.Op, in uint64) (uint64, error) {
	switch t := op.(type) {
	case *plan.Exist:
		// The predicate subplan's leaf receives `in` tuples (Case 3).
		if _, err := e.visitPredPath(t.Pred, in); err != nil {
			return 0, err
		}
		// Case 6: no reduction is assumed for a bare exists filter.
		t.Cost = plan.Cost{In: in, Out: in, RawOut: in, Sel: 1, Done: true}
		return in, nil
	case *plan.BinaryPred:
		return e.visitBinaryPred(t, in)
	case *plan.ExprPred:
		t.Cost = plan.Cost{In: in, Out: in, RawOut: in, Sel: 1, Done: true}
		return in, nil
	default:
		return 0, fmt.Errorf("cost: %T is not a predicate operator", op)
	}
}

func (e *Estimator) visitBinaryPred(b *plan.BinaryPred, in uint64) (uint64, error) {
	switch b.Cond {
	case plan.CondAND, plan.CondOR:
		l, err := e.visitPred(b.Left, in)
		if err != nil {
			return 0, err
		}
		r, err := e.visitPred(b.Right, in)
		if err != nil {
			return 0, err
		}
		out := in
		if b.Cond == plan.CondAND {
			// Both filters apply; the tighter bound wins.
			out = min64(l, r)
		}
		b.Cost = plan.Cost{In: in, Out: out, RawOut: out, Sel: rawSelectivity(in, out), Done: true}
		return out, nil
	default:
		// Comparison: estimate both sides; a value-based equivalence
		// bounds survivors by the value count (Case 5). The bound is
		// only sound when the path side selects the nodes the value
		// index actually covers: text() children (TC) or named
		// attributes (attribute value count). Element-valued
		// comparisons like [name='x'] get no reduction — an element's
		// string-value can match without any single text node matching.
		var vc uint64
		hasVC := false
		pathKind := valueComparableSide(b)
		for _, side := range []plan.Op{b.Left, b.Right} {
			switch t := side.(type) {
			case *plan.Literal:
				var err error
				e.Probes++
				switch pathKind {
				case sideAttr:
					t.Cost.TC, err = e.Store.AttrValueCount(e.Doc, t.Value, "")
				default:
					t.Cost.TC, err = e.Store.TextCount(e.Doc, t.Value, "")
				}
				if err != nil {
					return 0, err
				}
				t.Cost.Out = t.Cost.TC
				t.Cost.RawOut = t.Cost.TC
				t.Cost.Done = true
				if b.Cond == plan.CondEQ && !t.Numeric && pathKind != sideOther {
					vc, hasVC = t.Cost.TC, true
				}
			default:
				if _, err := e.visitPredPath(side, in); err != nil {
					return 0, err
				}
			}
		}
		out := in
		if hasVC {
			out = min64(in, vc)
		}
		b.Cost = plan.Cost{In: in, Out: out, RawOut: out, TC: vc, Sel: rawSelectivity(in, out), Done: true}
		return out, nil
	}
}

// sideKind classifies the non-literal side of a value comparison.
type sideKind uint8

const (
	sideOther sideKind = iota // element paths etc. — no value-index bound
	sideText                  // child::text(): the paper's Case 5
	sideAttr                  // attribute::name: bounded by attr value count
)

// valueComparableSide inspects a comparison's non-literal side and
// reports whether the value index bounds it.
func valueComparableSide(b *plan.BinaryPred) sideKind {
	for _, side := range []plan.Op{b.Left, b.Right} {
		st, ok := side.(*plan.Step)
		if !ok || st.Context != nil || len(st.Preds) != 0 {
			continue
		}
		switch {
		case st.Axis == mass.AxisChild && st.Test.Type == mass.TestText:
			return sideText
		case st.Axis == mass.AxisAttribute && st.Test.Type == mass.TestName:
			return sideAttr
		}
	}
	return sideOther
}

// visitPredPath estimates a predicate-path operator chain whose leaf
// receives `in` tuples (Case 3).
func (e *Estimator) visitPredPath(op plan.Op, in uint64) (uint64, error) {
	switch t := op.(type) {
	case *plan.Step:
		return e.visitStep(t, in, true)
	case *plan.Join:
		return e.visitContext(t, in, true)
	default:
		return 0, fmt.Errorf("cost: %T cannot appear on a predicate path", op)
	}
}

// rawSelectivity is δ before scaling: IN/OUT. Operators that filter away
// more tuples score higher. A zero OUT is maximally selective.
func rawSelectivity(in, out uint64) float64 {
	if out == 0 {
		if in == 0 {
			return 1
		}
		return float64(in) * 2 // strictly above any finite IN/OUT with OUT>=1
	}
	return float64(in) / float64(out)
}

// scaleSelectivity rescales every δ to [0,1] by the plan's maximum
// (paper §VI-B item 5).
func (e *Estimator) scaleSelectivity(p *plan.Plan) {
	ops := p.Operators()
	maxSel := 0.0
	for _, op := range ops {
		if c := plan.CostOf(op); c.Done && c.Sel > maxSel {
			maxSel = c.Sel
		}
	}
	if maxSel == 0 {
		return
	}
	for _, op := range ops {
		if c := plan.CostOf(op); c.Done {
			c.Sel /= maxSel
		}
	}
}

// Entry pairs an operator with its scaled selectivity in the ordered list
// L(P).
type Entry struct {
	Op  plan.Op
	Sel float64
}

// OrderedList returns L(P): the plan's operators sorted by selectivity
// ratio, most selective first (paper §VI-B). Only estimated operators
// appear.
func OrderedList(p *plan.Plan) []Entry {
	var out []Entry
	for _, op := range p.Operators() {
		if c := plan.CostOf(op); c.Done {
			out = append(out, Entry{Op: op, Sel: c.Sel})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Sel > out[j].Sel })
	return out
}

// Work is the estimator's proxy for a subplan's execution effort: the sum
// over its step operators of the tuples they touch (max(IN, OUT)). The
// optimizer accepts a transformation only when Work does not increase,
// which is what makes the heuristic "guaranteed to always produce a query
// plan that has better [or equal] execution time" (§I contribution 5).
func Work(op plan.Op) uint64 {
	var total uint64
	var walk func(plan.Op)
	walk = func(o plan.Op) {
		if s, ok := o.(*plan.Step); ok && s.Cost.Done {
			total += max64(s.Cost.In, s.Cost.Out)
		}
		for _, c := range o.Children() {
			walk(c)
		}
	}
	walk(op)
	return total
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
