package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"vamana/internal/baseline/dom"
	"vamana/internal/flex"
	"vamana/internal/mass"
	"vamana/internal/plan"
	"vamana/internal/xpath"
)

const personXML = `<site>
 <regions>
  <europe>
   <item id="item0"><name>gold watch</name><itemref/><price>42.50</price></item>
   <item id="item1"><name>silver pen</name><itemref/><price>12.00</price></item>
  </europe>
 </regions>
 <people>
  <person id="person144">
   <name>Yung Flach</name>
   <emailaddress>Flach@auth.gr</emailaddress>
   <address>
    <street>92 Pfisterer St</street>
    <city>Monroe</city>
    <province>Vermont</province>
    <country>United States</country>
    <zipcode>12</zipcode>
   </address>
   <watches>
    <watch open_auction="open_auction108"/>
    <watch open_auction="open_auction94"/>
   </watches>
  </person>
  <person id="person145">
   <name>Jaak Tempesti</name>
   <address>
    <street>1 Curie Place</street>
    <city>Ottawa</city>
    <country>Canada</country>
    <zipcode>99</zipcode>
   </address>
   <watches>
    <watch open_auction="open_auction12"/>
   </watches>
  </person>
  <person id="person146">
   <name>Mehmet Acer</name>
   <address>
    <street>5 Main St</street>
    <city>Monroe</city>
    <province>Vermont</province>
    <country>United States</country>
    <zipcode>12</zipcode>
   </address>
  </person>
 </people>
</site>`

// runVamana compiles and executes expr with the default (unoptimized)
// plan, returning sorted result keys.
func runVamana(t testing.TB, s *mass.Store, d mass.DocID, expr string) []string {
	t.Helper()
	ast, err := xpath.Parse(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	p, err := plan.Build(ast)
	if err != nil {
		t.Fatalf("build %q: %v", expr, err)
	}
	it, err := Run(p, Context{Store: s, Doc: d})
	if err != nil {
		t.Fatalf("run %q: %v", expr, err)
	}
	keys, err := it.Collect()
	if err != nil {
		t.Fatalf("collect %q: %v", expr, err)
	}
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = string(k)
	}
	sort.Strings(out)
	return out
}

func runDOM(t testing.TB, e *dom.Engine, expr string) []string {
	t.Helper()
	ns, err := e.Eval(expr)
	if err != nil {
		t.Fatalf("dom eval %q: %v", expr, err)
	}
	return dom.Keys(ns)
}

func setup(t testing.TB, src string) (*mass.Store, mass.DocID, *dom.Engine) {
	t.Helper()
	s, err := mass.Open(mass.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	d, err := s.LoadDocument("doc", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	domDoc, err := dom.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return s, d, dom.New(domDoc, dom.Options{})
}

// queries covers the paper's workload plus broad axis/predicate/function
// coverage. Every query is executed by both engines and compared.
var differentialQueries = []string{
	// The paper's experiment queries (§VIII).
	"//person/address",
	"//watches/watch/ancestor::person",
	"/descendant::name/parent::*/self::person/address",
	"//itemref/following-sibling::price/parent::*",
	"//province[text()='Vermont']/ancestor::person",
	// Running examples (§III).
	"descendant::name/parent::*/self::person/address",
	"//name[ text() = 'Yung Flach' ]/following-sibling::emailaddress",
	// Axis coverage.
	"/site/people/person",
	"//person/name",
	"//watch/parent::watches",
	"//city/ancestor-or-self::*",
	"//name/following::city",
	"//zipcode/preceding::name",
	"//city/preceding-sibling::street",
	"//street/following-sibling::zipcode",
	"//person/descendant-or-self::node()",
	"//address/child::node()",
	"//person/@id",
	"//watch/@open_auction",
	"//person/attribute::*",
	"/",
	"//person/..",
	"//name/.",
	"//*",
	"//text()",
	// Predicates.
	"//person[address]",
	"//person[watches]/name",
	"//person[address/province]",
	"//person[not(watches)]",
	"//person[@id='person145']",
	"//person[name='Jaak Tempesti']/address/city",
	"//address[zipcode=12]/parent::person",
	"//address[zipcode > 50]",
	"//address[zipcode >= 12 and zipcode < 50]",
	"//person[address/city='Monroe' or address/city='Ottawa']",
	"//person[1]",
	"//person[2]/name",
	"//person[position()=3]",
	"//person[position()=last()]",
	"//person[last()]",
	"//watch[2]",
	"//person[count(watches/watch) > 1]",
	"//person[contains(name, 'Acer')]",
	"//person[starts-with(name, 'Yung')]",
	"//item[price > 20]",
	"//item[price > 10 and price < 20]/name",
	"//person[address/province='Vermont'][watches]",
	// Unions.
	"//name | //city",
	"//person/name | //item/name",
	"//nosuchthing | //province",
	// Deeper nesting and mixed steps.
	"//people/person[address[province]]/watches/watch",
	"/site//person[.//province]/name",
	"//person[address/zipcode=99]/preceding-sibling::person",
	"//person/following-sibling::person/name",
}

func TestDifferentialAgainstDOM(t *testing.T) {
	s, d, oracle := setup(t, personXML)
	for _, q := range differentialQueries {
		got := runVamana(t, s, d, q)
		want := runDOM(t, oracle, q)
		if !equalStrings(got, want) {
			t.Errorf("query %q:\n vamana: %v\n dom:    %v", q, got, want)
		}
	}
}

// TestDifferentialRandomDocs cross-checks both engines on generated
// documents with dense structure.
func TestDifferentialRandomDocs(t *testing.T) {
	queries := []string{
		"//alpha", "//alpha/beta", "//beta[gamma]", "//gamma/parent::*",
		"//delta/ancestor::alpha", "//beta/following-sibling::*",
		"//gamma/preceding-sibling::beta", "//alpha[@id]", "//*[@class='beta']",
		"//alpha//gamma", "//beta[2]", "//gamma[last()]",
		"//alpha[beta and gamma]", "//beta/following::gamma",
		"//gamma/preceding::beta", "//alpha/descendant-or-self::beta",
		"//beta/text()", "//alpha[beta='text7']",
	}
	for seed := int64(1); seed <= 4; seed++ {
		src := randomXML(seed, 300)
		s, d, oracle := setup(t, src)
		for _, q := range queries {
			got := runVamana(t, s, d, q)
			want := runDOM(t, oracle, q)
			if !equalStrings(got, want) {
				t.Errorf("seed %d query %q:\n vamana: %d keys %v\n dom:    %d keys %v",
					seed, q, len(got), got, len(want), want)
			}
		}
	}
}

func randomXML(seed int64, elems int) string {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"alpha", "beta", "gamma", "delta"}
	var b strings.Builder
	b.WriteString("<root>")
	var stack []string
	for i := 0; i < elems; i++ {
		if len(stack) > 0 && rng.Intn(4) == 0 {
			b.WriteString("</" + stack[len(stack)-1] + ">")
			stack = stack[:len(stack)-1]
			continue
		}
		n := names[rng.Intn(len(names))]
		b.WriteString("<" + n)
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&b, " id=%q", fmt.Sprintf("v%d", rng.Intn(15)))
		}
		if rng.Intn(4) == 0 {
			fmt.Fprintf(&b, " class=%q", names[rng.Intn(len(names))])
		}
		b.WriteString(">")
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&b, "text%d", rng.Intn(10))
		}
		if rng.Intn(2) == 0 {
			b.WriteString("</" + n + ">")
		} else {
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		b.WriteString("</" + stack[len(stack)-1] + ">")
		stack = stack[:len(stack)-1]
	}
	b.WriteString("</root>")
	return b.String()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestResultNodeMaterialization(t *testing.T) {
	s, d, _ := setup(t, personXML)
	ast, _ := xpath.Parse("//person/name")
	p, _ := plan.Build(ast)
	it, err := Run(p, Context{Store: s, Doc: d})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for it.Next() {
		n, err := it.Node()
		if err != nil {
			t.Fatal(err)
		}
		if n.Name != "name" {
			t.Fatalf("materialized node = %+v", n)
		}
		count++
	}
	if count != 3 {
		t.Fatalf("names = %d, want 3", count)
	}
}

func TestStartContextBinding(t *testing.T) {
	s, d, _ := setup(t, personXML)
	// Find person145's key, then evaluate a relative path from it.
	keys := runVamana(t, s, d, "//person[@id='person145']")
	if len(keys) != 1 {
		t.Fatalf("persons = %d", len(keys))
	}
	ast, _ := xpath.Parse("address/city")
	p, _ := plan.Build(ast)
	it, err := Run(p, Context{Store: s, Doc: d, Start: flex.Key(keys[0])})
	if err != nil {
		t.Fatal(err)
	}
	res, err := it.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("cities from person145 = %d", len(res))
	}
	sv, _ := s.StringValue(d, res[0])
	if sv != "Ottawa" {
		t.Fatalf("city = %q", sv)
	}
}

func TestVariableBinding(t *testing.T) {
	s, d, _ := setup(t, personXML)
	persons := runVamana(t, s, d, "//person[watches]")
	var keys []flex.Key
	for _, k := range persons {
		keys = append(keys, flex.Key(k))
	}
	// count($p) inside a predicate.
	ast, err := xpath.Parse("//person[count($p) = 2]/name")
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	it, err := Run(p, Context{Store: s, Doc: d, Vars: map[string][]flex.Key{"p": keys}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := it.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("names = %d, want 3 (predicate is true for every person)", len(res))
	}
}

func TestDistinctRootDeduplicates(t *testing.T) {
	s, d, _ := setup(t, personXML)
	// Two watches under person144 -> ancestor::person yields duplicates
	// without dedup.
	got := runVamana(t, s, d, "//watches/watch/ancestor::person")
	if len(got) != 2 {
		t.Fatalf("distinct persons = %d, want 2", len(got))
	}
}

func TestOperatorStates(t *testing.T) {
	if Initial.String() != "INITIAL" || Fetching.String() != "FETCHING" || OutOfTuples.String() != "OUT_OF_TUPLES" {
		t.Fatal("state names diverge from the paper")
	}
}

func TestUnknownFunctionError(t *testing.T) {
	s, d, _ := setup(t, personXML)
	ast, err := xpath.Parse("//person[frobnicate()]")
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(ast)
	if err != nil {
		t.Fatal(err)
	}
	it, err := Run(p, Context{Store: s, Doc: d})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Collect(); err == nil {
		t.Fatal("unknown function did not error")
	}
}

// TestNamespaceAxis covers the 13th axis: in-scope namespace
// declarations, nearest binding first, inherited from ancestors.
func TestNamespaceAxis(t *testing.T) {
	src := `<a xmlns="urn:default" xmlns:p="urn:p"><b xmlns:q="urn:q"><c/></b></a>`
	s, d, oracle := setup(t, src)
	for _, q := range []string{
		"//c/namespace::*",
		"//b/namespace::*",
		"/a/namespace::*",
	} {
		got := runVamana(t, s, d, q)
		want := runDOM(t, oracle, q)
		if !equalStrings(got, want) {
			t.Errorf("%s:\n vamana: %v\n dom:    %v", q, got, want)
		}
		if len(got) == 0 {
			t.Errorf("%s: no namespace nodes", q)
		}
	}
	// Nearest declaration wins: c sees q, p and the default.
	got := runVamana(t, s, d, "//c/namespace::*")
	if len(got) != 3 {
		t.Errorf("c in-scope namespaces = %d, want 3", len(got))
	}
}
