package exec

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"vamana/internal/flex"
	"vamana/internal/plan"
	"vamana/internal/xpath"
)

// The general expression evaluator implements the XPath 1.0 value model —
// node-set, boolean, number, string — for the predicate expressions that
// fall outside the paper's ξ/β algebra (functions, positions, arithmetic).
//
// A value is one of: bool, float64, string, or []flex.Key (a node set in
// document order).
type value any

// evalCtx is the dynamic context of one expression evaluation.
type evalCtx struct {
	key  flex.Key
	pos  int // proximity position (1-based); 0 when not in a predicate
	last int // context size; -1 when unknown
}

func (e *env) evalExpr(x xpath.Expr, c evalCtx) (value, error) {
	switch t := x.(type) {
	case *xpath.Literal:
		return t.Value, nil
	case *xpath.Number:
		return t.Value, nil
	case *xpath.VarRef:
		ns, ok := e.vars[t.Name]
		if !ok {
			return nil, fmt.Errorf("exec: unbound variable $%s", t.Name)
		}
		return append([]flex.Key(nil), ns...), nil
	case *xpath.Unary:
		v, err := e.evalExpr(t.Operand, c)
		if err != nil {
			return nil, err
		}
		return -e.toNum(v), nil
	case *xpath.LocationPath:
		return e.evalPath(t, c.key)
	case *xpath.Filter:
		return e.evalFilter(t, c)
	case *xpath.FuncCall:
		return e.evalFunc(t, c)
	case *xpath.Binary:
		return e.evalBinary(t, c)
	default:
		return nil, fmt.Errorf("exec: cannot evaluate %T", x)
	}
}

// evalPath runs a location path from ctx (or the document root when the
// path is absolute) and returns the node set in document order.
func (e *env) evalPath(lp *xpath.LocationPath, ctx flex.Key) ([]flex.Key, error) {
	op, err := plan.BuildPath(lp)
	if err != nil {
		return nil, err
	}
	sub, err := e.build(op)
	if err != nil {
		return nil, err
	}
	start := ctx
	if lp.Absolute {
		start = flex.Root
	}
	sub.reset(start)
	seen := map[flex.Key]struct{}{}
	var out []flex.Key
	buf := make([]flex.Key, 64)
	for {
		n, err := sub.nextBatch(buf)
		for _, k := range buf[:n] {
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out = append(out, k)
			}
		}
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func (e *env) evalFilter(f *xpath.Filter, c evalCtx) (value, error) {
	prim, err := e.evalExpr(f.Primary, c)
	if err != nil {
		return nil, err
	}
	ns, ok := prim.([]flex.Key)
	if !ok {
		if len(f.Predicates) > 0 || f.Path != nil {
			return nil, fmt.Errorf("exec: filter applied to non-node-set %T", prim)
		}
		return prim, nil
	}
	for _, pred := range f.Predicates {
		var kept []flex.Key
		for i, k := range ns {
			v, err := e.evalExpr(pred, evalCtx{key: k, pos: i + 1, last: len(ns)})
			if err != nil {
				return nil, err
			}
			keep := false
			if n, isNum := v.(float64); isNum {
				keep = float64(i+1) == n
			} else {
				keep = toBool(v)
			}
			if keep {
				kept = append(kept, k)
			}
		}
		ns = kept
	}
	if f.Path == nil {
		return ns, nil
	}
	seen := map[flex.Key]struct{}{}
	var out []flex.Key
	for _, k := range ns {
		sub, err := e.evalPath(f.Path, k)
		if err != nil {
			return nil, err
		}
		for _, r := range sub {
			if _, dup := seen[r]; !dup {
				seen[r] = struct{}{}
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func (e *env) evalBinary(b *xpath.Binary, c evalCtx) (value, error) {
	switch b.Op {
	case xpath.OpOr, xpath.OpAnd:
		l, err := e.evalExpr(b.Left, c)
		if err != nil {
			return nil, err
		}
		lb := e.boolOf(l)
		if b.Op == xpath.OpOr && lb {
			return true, nil
		}
		if b.Op == xpath.OpAnd && !lb {
			return false, nil
		}
		r, err := e.evalExpr(b.Right, c)
		if err != nil {
			return nil, err
		}
		return e.boolOf(r), nil
	case xpath.OpUnion:
		l, err := e.evalExpr(b.Left, c)
		if err != nil {
			return nil, err
		}
		r, err := e.evalExpr(b.Right, c)
		if err != nil {
			return nil, err
		}
		ln, lok := l.([]flex.Key)
		rn, rok := r.([]flex.Key)
		if !lok || !rok {
			return nil, fmt.Errorf("exec: union of non-node-sets")
		}
		seen := map[flex.Key]struct{}{}
		var out []flex.Key
		for _, k := range append(ln, rn...) {
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out = append(out, k)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	case xpath.OpAdd, xpath.OpSub, xpath.OpMul, xpath.OpDiv, xpath.OpMod:
		l, err := e.evalExpr(b.Left, c)
		if err != nil {
			return nil, err
		}
		r, err := e.evalExpr(b.Right, c)
		if err != nil {
			return nil, err
		}
		x, y := e.toNum(l), e.toNum(r)
		switch b.Op {
		case xpath.OpAdd:
			return x + y, nil
		case xpath.OpSub:
			return x - y, nil
		case xpath.OpMul:
			return x * y, nil
		case xpath.OpDiv:
			return x / y, nil
		default:
			return math.Mod(x, y), nil
		}
	default: // comparisons
		l, err := e.evalExpr(b.Left, c)
		if err != nil {
			return nil, err
		}
		r, err := e.evalExpr(b.Right, c)
		if err != nil {
			return nil, err
		}
		return e.compare(b.Op, l, r)
	}
}

// compare implements XPath 1.0 §3.4 comparison semantics, including the
// existential rules for node-sets.
func (e *env) compare(op xpath.BinaryOp, l, r value) (bool, error) {
	cond := map[xpath.BinaryOp]plan.PredCond{
		xpath.OpEq: plan.CondEQ, xpath.OpNeq: plan.CondNE,
		xpath.OpLt: plan.CondLT, xpath.OpLte: plan.CondLE,
		xpath.OpGt: plan.CondGT, xpath.OpGte: plan.CondGE,
	}[op]
	relational := op != xpath.OpEq && op != xpath.OpNeq

	lns, lIsNS := l.([]flex.Key)
	rns, rIsNS := r.([]flex.Key)
	switch {
	case lIsNS && rIsNS:
		for _, a := range lns {
			sa, err := e.stringValue(a)
			if err != nil {
				return false, err
			}
			for _, b := range rns {
				sb, err := e.stringValue(b)
				if err != nil {
					return false, err
				}
				if relational {
					if compareNum(cond, toNumber(sa), toNumber(sb)) {
						return true, nil
					}
				} else if compareStr(cond, sa, sb) {
					return true, nil
				}
			}
		}
		return false, nil
	case lIsNS || rIsNS:
		ns, other := lns, r
		flip := false
		if rIsNS {
			ns, other, flip = rns, l, true
		}
		for _, k := range ns {
			sv, err := e.stringValue(k)
			if err != nil {
				return false, err
			}
			var hit bool
			switch o := other.(type) {
			case bool:
				hit = compareBool(cond, len(ns) > 0, o, flip)
				return hit, nil
			case float64:
				a, b := toNumber(sv), o
				if flip {
					a, b = b, a
				}
				hit = compareNum(cond, a, b)
			default:
				so := e.toStr(other)
				if relational {
					a, b := toNumber(sv), toNumber(so)
					if flip {
						a, b = b, a
					}
					hit = compareNum(cond, a, b)
				} else {
					hit = compareStr(cond, sv, so)
				}
			}
			if hit {
				return true, nil
			}
		}
		return false, nil
	default:
		if _, ok := l.(bool); ok || func() bool { _, ok := r.(bool); return ok }() {
			a, b := e.boolOf(l), e.boolOf(r)
			return compareBool(cond, a, b, false), nil
		}
		if relational {
			return compareNum(cond, e.toNum(l), e.toNum(r)), nil
		}
		if _, ok := l.(float64); ok {
			return compareNum(cond, e.toNum(l), e.toNum(r)), nil
		}
		if _, ok := r.(float64); ok {
			return compareNum(cond, e.toNum(l), e.toNum(r)), nil
		}
		return compareStr(cond, e.toStr(l), e.toStr(r)), nil
	}
}

func compareBool(cond plan.PredCond, a, b, flip bool) bool {
	if flip {
		a, b = b, a
	}
	n := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	return compareNum(cond, n(a), n(b))
}

func (e *env) evalFunc(f *xpath.FuncCall, c evalCtx) (value, error) {
	arg := func(i int) (value, error) { return e.evalExpr(f.Args[i], c) }
	need := func(n int) error {
		if len(f.Args) != n {
			return fmt.Errorf("exec: %s() takes %d argument(s), got %d", f.Name, n, len(f.Args))
		}
		return nil
	}
	switch f.Name {
	case "position":
		if c.pos <= 0 {
			return nil, fmt.Errorf("exec: position() outside a predicate")
		}
		return float64(c.pos), nil
	case "last":
		if c.last < 0 {
			return nil, fmt.Errorf("exec: last() unavailable in this context")
		}
		return float64(c.last), nil
	case "count":
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		ns, ok := v.([]flex.Key)
		if !ok {
			return nil, fmt.Errorf("exec: count() needs a node set")
		}
		return float64(len(ns)), nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	case "not":
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		return !e.boolOf(v), nil
	case "boolean":
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		return e.boolOf(v), nil
	case "number":
		if len(f.Args) == 0 {
			sv, err := e.stringValue(c.key)
			if err != nil {
				return nil, err
			}
			return toNumber(sv), nil
		}
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		return e.toNum(v), nil
	case "string":
		if len(f.Args) == 0 {
			return e.stringValue(c.key)
		}
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		return e.toStr(v), nil
	case "concat":
		var b strings.Builder
		for i := range f.Args {
			v, err := arg(i)
			if err != nil {
				return nil, err
			}
			b.WriteString(e.toStr(v))
		}
		return b.String(), nil
	case "contains", "starts-with":
		if err := need(2); err != nil {
			return nil, err
		}
		a, err := arg(0)
		if err != nil {
			return nil, err
		}
		b, err := arg(1)
		if err != nil {
			return nil, err
		}
		if f.Name == "contains" {
			return strings.Contains(e.toStr(a), e.toStr(b)), nil
		}
		return strings.HasPrefix(e.toStr(a), e.toStr(b)), nil
	case "substring":
		if len(f.Args) != 2 && len(f.Args) != 3 {
			return nil, fmt.Errorf("exec: substring() takes 2 or 3 arguments")
		}
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		s := []rune(e.toStr(v))
		sv, err := arg(1)
		if err != nil {
			return nil, err
		}
		start := int(math.Round(e.toNum(sv))) - 1
		end := len(s)
		if len(f.Args) == 3 {
			lv, err := arg(2)
			if err != nil {
				return nil, err
			}
			end = start + int(math.Round(e.toNum(lv)))
		}
		if start < 0 {
			start = 0
		}
		if end > len(s) {
			end = len(s)
		}
		if start >= end {
			return "", nil
		}
		return string(s[start:end]), nil
	case "string-length":
		var s string
		if len(f.Args) == 0 {
			var err error
			if s, err = e.stringValue(c.key); err != nil {
				return nil, err
			}
		} else {
			v, err := arg(0)
			if err != nil {
				return nil, err
			}
			s = e.toStr(v)
		}
		return float64(len([]rune(s))), nil
	case "normalize-space":
		var s string
		if len(f.Args) == 0 {
			var err error
			if s, err = e.stringValue(c.key); err != nil {
				return nil, err
			}
		} else {
			v, err := arg(0)
			if err != nil {
				return nil, err
			}
			s = e.toStr(v)
		}
		return strings.Join(strings.Fields(s), " "), nil
	case "name", "local-name":
		k := c.key
		if len(f.Args) == 1 {
			v, err := arg(0)
			if err != nil {
				return nil, err
			}
			ns, ok := v.([]flex.Key)
			if !ok || len(ns) == 0 {
				return "", nil
			}
			k = ns[0]
		}
		n, ok, err := e.store.Node(e.doc, k)
		if err != nil || !ok {
			return "", err
		}
		return n.Name, nil
	case "sum":
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		ns, ok := v.([]flex.Key)
		if !ok {
			return nil, fmt.Errorf("exec: sum() needs a node set")
		}
		total := 0.0
		for _, k := range ns {
			sv, err := e.stringValue(k)
			if err != nil {
				return nil, err
			}
			total += toNumber(sv)
		}
		return total, nil
	case "floor", "ceiling", "round":
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		n := e.toNum(v)
		switch f.Name {
		case "floor":
			return math.Floor(n), nil
		case "ceiling":
			return math.Ceil(n), nil
		default:
			return math.Round(n), nil
		}
	default:
		return nil, fmt.Errorf("exec: unknown function %s()", f.Name)
	}
}

// stringValue returns the XPath string-value of the node at k.
func (e *env) stringValue(k flex.Key) (string, error) {
	return e.store.StringValue(e.doc, k)
}

// Coercions (XPath 1.0 §4).

func (e *env) boolOf(v value) bool { return toBool(v) }

func toBool(v value) bool {
	switch t := v.(type) {
	case bool:
		return t
	case float64:
		return t != 0 && !math.IsNaN(t)
	case string:
		return len(t) > 0
	case []flex.Key:
		return len(t) > 0
	default:
		return false
	}
}

func (e *env) toNum(v value) float64 {
	switch t := v.(type) {
	case float64:
		return t
	case bool:
		if t {
			return 1
		}
		return 0
	case string:
		return toNumber(t)
	case []flex.Key:
		return toNumber(e.toStr(v))
	default:
		return math.NaN()
	}
}

func (e *env) toStr(v value) string {
	switch t := v.(type) {
	case string:
		return t
	case bool:
		if t {
			return "true"
		}
		return "false"
	case float64:
		return formatNumber(t)
	case []flex.Key:
		if len(t) == 0 {
			return ""
		}
		// String value of the first node in document order.
		first := t[0]
		for _, k := range t[1:] {
			if k < first {
				first = k
			}
		}
		sv, err := e.stringValue(first)
		if err != nil {
			return ""
		}
		return sv
	default:
		return ""
	}
}

func toNumber(s string) float64 {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return math.NaN()
	}
	return f
}

func formatNumber(f float64) string {
	if f == math.Trunc(f) && !math.IsInf(f, 0) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
