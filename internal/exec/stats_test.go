package exec

import (
	"strings"
	"testing"

	"vamana/internal/cost"
	"vamana/internal/mass"
	"vamana/internal/opt"
	"vamana/internal/plan"
	"vamana/internal/xmark"
	"vamana/internal/xpath"
)

// TestEstimatesBoundActuals is the empirical soundness check of the cost
// model: for every step operator on every workload query, over both the
// default and optimized plans, the actual IN and OUT observed during
// execution never exceed the estimator's bounds.
func TestEstimatesBoundActuals(t *testing.T) {
	s, err := mass.Open(mass.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	src := xmark.GenerateString(xmark.Config{Factor: 0.006, Seed: 91})
	d, err := s.LoadDocument("auction", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{
		"//person/address",
		"//watches/watch/ancestor::person",
		"/descendant::name/parent::*/self::person/address",
		"//itemref/following-sibling::price/parent::*",
		"//province[text()='Vermont']/ancestor::person",
		"//person[@id='person3']",
		"//zipcode[text() >= 10 and text() < 50]",
		"//person[address/city='Monroe']",
		"//open_auction/bidder",
	}
	for _, qstr := range queries {
		for _, optimized := range []bool{false, true} {
			ast, err := xpath.Parse(qstr)
			if err != nil {
				t.Fatal(err)
			}
			p, err := plan.Build(ast)
			if err != nil {
				t.Fatal(err)
			}
			if optimized {
				o := &opt.Optimizer{Store: s, Doc: d}
				if p, err = o.Optimize(p); err != nil {
					t.Fatal(err)
				}
			} else {
				opt.Cleanup(p)
			}
			est := &cost.Estimator{Store: s, Doc: d}
			if err := est.Estimate(p); err != nil {
				t.Fatal(err)
			}
			it, err := Run(p, Context{Store: s, Doc: d})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := it.Collect(); err != nil {
				t.Fatal(err)
			}
			for _, st := range it.Stats() {
				c := st.Op.Cost
				if !c.Done {
					t.Errorf("%s (opt=%v): %s has no estimate", qstr, optimized, st.Op.Label())
					continue
				}
				if st.In > c.In {
					t.Errorf("%s (opt=%v): %s actual IN %d exceeds estimate %d",
						qstr, optimized, st.Op.Label(), st.In, c.In)
				}
				if st.Out > c.Out {
					t.Errorf("%s (opt=%v): %s actual OUT %d exceeds estimate %d",
						qstr, optimized, st.Op.Label(), st.Out, c.Out)
				}
			}
		}
	}
}

func TestStatsReflectExecution(t *testing.T) {
	s, err := mass.Open(mass.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d, err := s.LoadDocument("doc", strings.NewReader("<r><a><b/><b/></a><a><b/></a></r>"))
	if err != nil {
		t.Fatal(err)
	}
	ast, _ := xpath.Parse("//a/b")
	p, _ := plan.Build(ast)
	it, err := Run(p, Context{Store: s, Doc: d})
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := it.Collect()
	if len(keys) != 3 {
		t.Fatalf("results = %d", len(keys))
	}
	stats := it.Stats()
	if len(stats) != 2 {
		t.Fatalf("step stats = %d", len(stats))
	}
	// Top step (child::b): 2 contexts in, 3 out. Leaf (descendant::a):
	// IN reports the tuples received from the index (Case 1): 2.
	var bStat, aStat *OpStats
	for i := range stats {
		switch stats[i].Op.Test.Name {
		case "b":
			bStat = &stats[i]
		case "a":
			aStat = &stats[i]
		}
	}
	if aStat == nil || bStat == nil {
		t.Fatal("missing step stats")
	}
	if aStat.In != 2 || aStat.Out != 2 {
		t.Errorf("a stats = %+v", *aStat)
	}
	if bStat.In != 2 || bStat.Out != 3 {
		t.Errorf("b stats = %+v", *bStat)
	}
}

// TestOrderedExecution: with Ordered set, results arrive in document
// order even for reverse-axis queries, and match the unordered set.
func TestOrderedExecution(t *testing.T) {
	s, err := mass.Open(mass.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	d, err := s.LoadDocument("doc", strings.NewReader(
		"<r><a><b/></a><a><b/></a><a><b/></a></r>"))
	if err != nil {
		t.Fatal(err)
	}
	ast, _ := xpath.Parse("//b/ancestor::*")
	p, _ := plan.Build(ast)
	it, err := Run(p, Context{Store: s, Doc: d, Ordered: true})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := it.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 4 { // r + 3 a's
		t.Fatalf("results = %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("not in document order: %v", keys)
		}
	}
	// Same set as the unordered run.
	it2, _ := Run(p, Context{Store: s, Doc: d})
	keys2, _ := it2.Collect()
	if len(keys2) != len(keys) {
		t.Fatalf("ordered %d vs unordered %d", len(keys), len(keys2))
	}
}
