// Package exec is VAMANA's query execution engine (paper §VII): an
// iterative, pipelined, index-based evaluator over physical plans. Each
// operator is a demand-driven iterator in one of three states — INITIAL,
// FETCHING, OUT_OF_TUPLES — whose context is set dynamically from the
// tuples of its context child (Algorithms 1 and 2). Tuples are FLEX keys;
// nodes are materialized from storage only when actually needed.
package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"vamana/internal/flex"
	"vamana/internal/govern"
	"vamana/internal/mass"
	"vamana/internal/obs"
	"vamana/internal/plan"
	"vamana/internal/xmldoc"
	"vamana/internal/xpath"
)

// Limiter is the per-run governance limiter the executor enforces: it is
// govern.Limiter re-exported at the execution layer, which arms it from
// Context.Ctx and Context.Limits. A nil *Limiter means ungoverned.
type Limiter = govern.Limiter

// Context is the execution environment of one query run.
type Context struct {
	Store *mass.Store
	Doc   mass.DocID
	// Ctx and Limits govern the run: Run arms a limiter from them (into
	// the pooled run state, so a governed query costs no extra
	// allocation) that drives cancellation and deadline checks in the
	// pull loop and the axis scans, plus resource-budget accounting
	// (results here, page reads and record decodes in storage). A nil or
	// never-canceled Ctx with zero Limits means ungoverned — the
	// pre-governance fast path, at the cost of a few nil checks. Run does
	// not poll Ctx's current state itself: callers pre-flight with
	// govern.CheckContext before compiling, so the immediate poll happens
	// exactly once per query.
	Ctx    context.Context
	Limits govern.Limits
	// Start is the initial context node bound to the leaf operators of
	// the plan's context path; the engine uses the document root when
	// empty (paper §V-B). An XQuery-style caller may bind any node.
	Start flex.Key
	// Vars binds $name variable references to node sets.
	Vars map[string][]flex.Key
	// Ordered materializes the result set and delivers it in document
	// order. Pipelined delivery (the default) streams results in plan
	// order, which for reverse axes is not document order; most engines
	// (and the XPath data model's node-set semantics) leave this
	// implementation-defined, so ordering is opt-in.
	Ordered bool
	// Trace records a per-step span for this run: open/close timestamps
	// (offsets from FinishStart), tuples in/scanned/out, and pages-read /
	// records-decoded deltas, read back through Iterator.StepSpans. A
	// traced run always arms an accounting limiter (even with a Background
	// context and zero limits) so storage consumption is attributable.
	Trace bool
	// Account arms the limiter for per-query resource accounting without
	// span recording — the slow-query log uses it so every entry can carry
	// storage deltas. Implied by Trace.
	Account bool
	// OnFinish, when set, is invoked exactly once when the iterator
	// finishes (exhaustion or error) — after the run's batched metrics
	// are flushed. The serving layer uses it to close out per-query
	// latency and trace records without allocating a closure per query:
	// the hook is a long-lived method value, and per-run state travels
	// in FinishStart/FinishObj.
	OnFinish func(*Iterator)
	// FinishStart is carried through to Iterator.StartTime for the
	// OnFinish hook (typically the query's start timestamp).
	FinishStart time.Time
	// FinishObj is carried through to Iterator.FinishObj for the
	// OnFinish hook. Storing a pointer here does not allocate.
	FinishObj any
	// Batch sets the operator pull-batch size: how many tuples one
	// nextBatch call moves between operators (and how many index entries
	// one bulk cursor advance decodes). 0 means DefaultBatch; values are
	// clamped to [1, MaxBatch]. Batch 1 degenerates to tuple-at-a-time
	// execution with identical delivery order at every batch size.
	Batch int
}

// DefaultBatch is the executor's default pull-batch size. Picked by the
// vbench batch sweep (see EXPERIMENTS.md): throughput on scan-heavy
// shapes saturates between 64 and 256, and 128 keeps the per-run key
// slab small.
const DefaultBatch = 128

// MaxBatch caps Context.Batch: beyond this the key slabs dominate the
// run state for no measurable throughput gain.
const MaxBatch = 1024

// State is an operator's execution state (paper §VII).
type State uint8

const (
	// Initial: the operator has not yet been asked for a tuple.
	Initial State = iota
	// Fetching: the operator is producing tuples.
	Fetching
	// OutOfTuples: the operator (and its context child) is exhausted.
	OutOfTuples
)

// String returns the paper's spelling of the state.
func (s State) String() string {
	switch s {
	case Initial:
		return "INITIAL"
	case Fetching:
		return "FETCHING"
	default:
		return "OUT_OF_TUPLES"
	}
}

// Iterator streams a query's resulting tuples. The shared execution
// environment is embedded (not separately allocated): operators hold a
// pointer into the Iterator, which escapes to the heap exactly once per
// run.
type Iterator struct {
	env      env
	root     execNode
	rs       *runState
	cur      flex.Key
	err      error
	done     bool
	finished bool // finishRun already fired
	pinned   bool // holds a store read registration (BeginRead) until finishRun

	// Delivery buffer: Next serves tuples out of the last batch pulled
	// from the pipeline root. out is carved from the run-state key slab;
	// fill is the adaptive refill size (it starts small and doubles up to
	// len(out), so a caller that abandons the iterator after one tuple —
	// the exists / first-match pattern — never pays for a full batch).
	out        []flex.Key
	outPos     int
	outLen     int
	fill       int
	pendingErr error
	maxResults uint64 // MaxResults budget (0 = none); caps refill size

	nResults    uint64
	onFinish    func(*Iterator)
	finishStart time.Time
	finishObj   any
}

// runState is the pooled per-run executor state: the step arena, the
// stats registry, and the governance limiter. Pooling it makes warm
// serving runs allocation-free in the pipeline setup and — because arena
// slots keep their mass.Scanner buffers (cursor, range keys) across
// runs — in the axis binds too. The limiter lives here (rather than
// coming from govern's own pool) so arming a governed run costs no pool
// round-trip on top of the one runState already makes.
type runState struct {
	arena []stepExec
	steps []*stepExec
	// keys backs the run's batch buffers (the iterator's delivery buffer
	// and each non-leaf step's context buffer), carved by env.scratch.
	// Pooled with the rest of the run state so warm batched runs stay
	// allocation-free.
	keys []flex.Key
	// emitted backs rootExec's sorted-mode dedup log, pooled so the
	// per-result append never regrows across warm runs.
	emitted []flex.Key
	lim     Limiter
}

var runPool sync.Pool

// Run builds an executable pipeline for p and returns its iterator.
//
// Callers should Close the iterator when done with it (including after
// natural exhaustion, once any Stats have been read): Close returns the
// run's pooled state to the executor pool. An unclosed iterator is only
// a missed reuse, not a leak — the garbage collector reclaims it.
func Run(p *plan.Plan, ctx Context) (*Iterator, error) {
	if ctx.Store == nil {
		return nil, fmt.Errorf("exec: nil store")
	}
	start := ctx.Start
	if start == "" {
		start = flex.Root
	}
	it := &Iterator{
		env:         env{store: ctx.Store, doc: ctx.Doc, start: start, vars: ctx.Vars, building: true},
		onFinish:    ctx.OnFinish,
		finishStart: ctx.FinishStart,
		finishObj:   ctx.FinishObj,
	}
	e := &it.env
	if ctx.Trace {
		e.traced = true
		e.traceBase = ctx.FinishStart
		if e.traceBase.IsZero() {
			e.traceBase = time.Now()
		}
	}
	batch := ctx.Batch
	if batch <= 0 {
		batch = DefaultBatch
	} else if batch > MaxBatch {
		batch = MaxBatch
	}
	e.batch = batch
	account := ctx.Trace || ctx.Account
	if n := countSteps(p.Root); n > 0 {
		rs, _ := runPool.Get().(*runState)
		if rs == nil {
			rs = &runState{}
		}
		if cap(rs.arena) < n {
			// Never grow an arena in place: operators hold pointers into it.
			rs.arena = make([]stepExec, 0, n)
		}
		if cap(rs.steps) < n {
			rs.steps = make([]*stepExec, 0, n)
		}
		// One batch buffer per step (only child-bearing steps carve one)
		// plus the iterator's delivery buffer.
		if need := (n + 1) * batch; cap(rs.keys) < need {
			rs.keys = make([]flex.Key, need)
		}
		it.rs = rs
		e.arena = rs.arena[:0]
		e.steps = rs.steps[:0]
		e.keys = rs.keys[:cap(rs.keys)]
		e.keysOff = 0
		e.emittedLog = rs.emitted[:0]
		if account {
			e.lim = govern.ArmAccounting(&rs.lim, ctx.Ctx, ctx.Limits)
		} else {
			e.lim = govern.Arm(&rs.lim, ctx.Ctx, ctx.Limits)
		}
	} else {
		// Stepless plans have no pooled run state to embed the limiter
		// in; fall back to govern's own pool.
		if account {
			e.lim = govern.NewAccounting(ctx.Ctx, ctx.Limits)
		} else {
			e.lim = govern.New(ctx.Ctx, ctx.Limits)
		}
	}
	root, err := e.build(p.Root)
	e.building = false
	if err != nil {
		it.release()
		return nil, err
	}
	if ctx.Ordered {
		root = &orderedExec{child: root}
	}
	root.reset(start)
	it.root = root
	// Register as an in-flight reader: on a live store this blocks
	// DropDocument for the document being streamed; on a snapshot store
	// it refs the owning snapshot so the pinned view outlives a
	// concurrent Snapshot.Close. Released exactly once, in finishRun.
	e.store.BeginRead(e.doc)
	it.pinned = true
	it.out = e.scratch(batch)
	// The first refill pulls a single tuple — identical laziness to
	// tuple-at-a-time for first-match consumers — and doubles from there,
	// reaching the full batch within a handful of refills on drains.
	it.fill = 1
	it.maxResults = ctx.Limits.MaxResults
	return it, nil
}

// release returns the run's pooled state — the arena/steps backing and
// the governance limiter. The iterator's env stops referencing both, so
// Stats after release see an empty registry. Pooled step slots may still
// hold stale scanner->limiter pointers; every bind site re-installs the
// new run's limiter before any scan, so those are never dereferenced.
func (it *Iterator) release() {
	rs := it.rs
	if rs == nil {
		govern.Release(it.env.lim)
		it.env.lim = nil
		return
	}
	if it.env.lim != nil {
		// The limiter is embedded in rs: disarm so pooling it does not
		// pin the run's context.
		govern.Disarm(&rs.lim)
	}
	it.env.lim = nil
	it.rs = nil
	rs.arena = it.env.arena[:0]
	rs.steps = it.env.steps[:0]
	// Recover the dedup log's (possibly grown) backing from the root
	// operator; a run that degraded to the hash set has nothing to return.
	if r := it.env.rootNode; r != nil {
		if r.emitted != nil {
			rs.emitted = r.emitted[:0]
		}
		it.env.rootNode = nil
	}
	it.env.emittedLog = nil
	it.env.arena = nil
	it.env.steps = nil
	it.env.keys = nil
	it.out = nil
	runPool.Put(rs)
}

// Close finishes and releases the iterator: the run's batched metrics are
// flushed and the OnFinish hook fires (both exactly once, whether or not
// the iterator was drained), further Next calls return false, and the
// pooled execution state goes back to the executor pool. Idempotent.
// Callers that read Stats must do so before Close.
func (it *Iterator) Close() {
	it.done = true
	it.finishRun()
	it.release()
}

// orderedExec drains its child and re-delivers the tuples sorted by FLEX
// key (= document order).
type orderedExec struct {
	child  execNode
	out    []flex.Key
	i      int
	filled bool
}

func (o *orderedExec) reset(ctx flex.Key) {
	o.child.reset(ctx)
	o.out, o.i, o.filled = nil, 0, false
}

func (o *orderedExec) nextBatch(dst []flex.Key) (int, error) {
	if !o.filled {
		for {
			n, err := o.child.nextBatch(dst)
			if err != nil {
				// Nothing was delivered out of this operator yet, so the
				// whole materialized set is discarded with the error — the
				// same all-or-nothing semantics as tuple-at-a-time.
				return 0, err
			}
			if n == 0 {
				break
			}
			o.out = append(o.out, dst[:n]...)
		}
		sort.Slice(o.out, func(i, j int) bool { return o.out[i] < o.out[j] })
		o.filled = true
	}
	n := copy(dst, o.out[o.i:])
	o.i += n
	return n, nil
}

// Next advances to the next result tuple.
func (it *Iterator) Next() bool {
	if it.done {
		return false
	}
	lim := it.env.lim
	if err := lim.Tick(); err != nil {
		it.fail(err)
		return false
	}
	if it.outPos >= it.outLen && !it.refill() {
		return false
	}
	// Charge the delivery: with MaxResults = N, exactly N tuples are
	// delivered and materializing the (N+1)th trips the budget. The
	// charge stays per-delivery (not per-batch) so the typed budget error
	// carries the same Used count batched as unbatched; refill bounds its
	// batch to the budget's remainder so the pipeline never computes far
	// past the trip point.
	if err := lim.AddResults(1); err != nil {
		it.fail(err)
		return false
	}
	it.cur = it.out[it.outPos]
	it.outPos++
	it.nResults++
	return true
}

// refill pulls the next batch of tuples from the pipeline root into the
// delivery buffer, reporting whether any are available. The refill size
// ramps up from a few tuples to the full batch so early-terminating
// callers stay cheap, and is capped near the results budget.
func (it *Iterator) refill() bool {
	if it.pendingErr != nil {
		it.fail(it.pendingErr)
		return false
	}
	b := it.fill
	if b < len(it.out) {
		it.fill = min(b*2, len(it.out))
	}
	if it.maxResults > 0 {
		if rem := it.maxResults - it.nResults + 1; uint64(b) > rem {
			b = int(rem)
		}
	}
	n, err := it.root.nextBatch(it.out[:b])
	it.outPos, it.outLen = 0, n
	if err != nil {
		if n == 0 {
			it.fail(err)
			return false
		}
		// The tuples preceding the failure are delivered first; the error
		// surfaces on the refill after them.
		it.pendingErr = err
		return true
	}
	if n == 0 {
		it.done = true
		it.finishRun()
		return false
	}
	return true
}

// fail poisons the iterator with err and finishes the run.
func (it *Iterator) fail(err error) {
	it.err = err
	it.done = true
	it.finishRun()
}

// finishRun fires once per iterator, when the run completes (exhaustion,
// error, or Close): it flushes the run's batched counters to the global
// metrics, classifies governance outcomes, and invokes the OnFinish hook.
// Iterators abandoned without Close simply never flush.
func (it *Iterator) finishRun() {
	if it.finished {
		return
	}
	it.finished = true
	if it.pinned {
		it.pinned = false
		it.env.store.EndRead(it.env.doc)
	}
	if it.env.traced {
		// Close any span still open (early termination, error, or an
		// operator upstream of the failure) before the OnFinish hook reads
		// the spans — the hook's end-to-end total is taken after this, so
		// every span closes within the query's own interval.
		now := it.env.nowNS()
		for _, s := range it.env.steps {
			if s.spanOpened && s.closeNS == 0 {
				s.closeNS = now
			}
		}
	}
	if obs.Enabled() {
		if it.err != nil {
			switch {
			case errors.Is(it.err, govern.ErrCanceled):
				obs.QueriesCanceled.Inc()
			case errors.Is(it.err, govern.ErrDeadlineExceeded):
				obs.QueriesDeadlineExceeded.Inc()
			case errors.Is(it.err, govern.ErrBudgetExceeded):
				obs.QueriesBudgetExceeded.Inc()
			}
		}
		obs.ExecRuns.Inc()
		obs.ExecResults.Add(it.nResults)
		var scanned uint64
		for _, s := range it.env.steps {
			scanned += s.nScanned
		}
		obs.ExecEntriesScanned.Add(scanned)
		var binds uint64
		for a, n := range it.env.axisBinds {
			if n != 0 {
				binds += n
				axisScanCounters[a].Add(n)
			}
		}
		obs.ExecAxisScans.Add(binds)
	}
	if it.onFinish != nil {
		it.onFinish(it)
	}
}

// Results returns the number of result tuples delivered so far.
func (it *Iterator) Results() uint64 { return it.nResults }

// Limiter returns the run's governance limiter (nil when ungoverned), for
// consumption snapshots in slow-query and trace records.
func (it *Iterator) Limiter() *Limiter { return it.env.lim }

// Doc returns the document the iterator runs against.
func (it *Iterator) Doc() mass.DocID { return it.env.doc }

// StartTime returns the Context.FinishStart timestamp the iterator was
// created with (zero if none was set).
func (it *Iterator) StartTime() time.Time { return it.finishStart }

// FinishObj returns the opaque value the iterator was created with via
// Context.FinishObj.
func (it *Iterator) FinishObj() any { return it.finishObj }

// axisScanCounters are the per-axis global scan-bind counters, flushed
// from the env's batch at run finish. Axis names are sanitized for the
// exposition format ('-' is not a valid metric-name character).
var axisScanCounters = func() [mass.AxisCount]*obs.Counter {
	var a [mass.AxisCount]*obs.Counter
	for i := range a {
		name := strings.ReplaceAll(mass.Axis(i).String(), "-", "_")
		a[i] = obs.NewCounter("vamana_exec_axis_scans_"+name+"_total",
			"Axis-scan bindings on the "+mass.Axis(i).String()+" axis across completed runs.")
	}
	return a
}()

// Key returns the FLEX key of the current tuple.
func (it *Iterator) Key() flex.Key { return it.cur }

// Node materializes the current tuple's node from storage.
func (it *Iterator) Node() (xmldoc.Node, error) {
	n, ok, err := it.env.store.Node(it.env.doc, it.cur)
	if err != nil {
		return xmldoc.Node{}, err
	}
	if !ok {
		return xmldoc.Node{}, fmt.Errorf("exec: tuple %q has no stored node", it.cur)
	}
	return n, nil
}

// Err reports the first error encountered.
func (it *Iterator) Err() error { return it.err }

// Collect drains the iterator into a key slice.
func (it *Iterator) Collect() ([]flex.Key, error) {
	var out []flex.Key
	for it.Next() {
		out = append(out, it.Key())
	}
	return out, it.Err()
}

// env carries shared execution state.
type env struct {
	store *mass.Store
	doc   mass.DocID
	start flex.Key
	vars  map[string][]flex.Key
	// lim is the run's governance limiter (nil = ungoverned), shared by
	// the whole pipeline including transient predicate subplans.
	lim *govern.Limiter
	// steps registers every step operator's executor so Iterator.Stats
	// can read back actual tuple counts after a run. Registration only
	// happens while the initial pipeline is being built (building=true);
	// subplans constructed later by the expression evaluator are
	// transient and unregistered.
	steps    []*stepExec
	building bool
	// arena holds the step executors of the initial pipeline in one
	// allocation. It is sized by a pre-walk of the plan and never grows
	// (newStep falls back to individual allocations once full), so
	// pointers into it stay valid.
	arena []stepExec
	// batch is the run's pull-batch size; keys/keysOff back the batch
	// buffers env.scratch carves (the slab is pooled via runState).
	batch   int
	keys    []flex.Key
	keysOff int
	// emittedLog is the pooled backing for the first rootExec's dedup
	// log, handed over in build; rootNode remembers that operator so
	// release can recover the capacity.
	emittedLog []flex.Key
	rootNode   *rootExec
	// axisBinds batches per-axis scan-bind counts for the whole run
	// (including transient predicate subplans, which share this env);
	// flushed to the global counters once, at run finish.
	axisBinds [mass.AxisCount]uint64
	// traced switches per-step span recording on for this run: step
	// executors stamp open/close offsets against traceBase and accumulate
	// pages-read / records-decoded deltas off the (always armed) limiter.
	// The untraced hot path pays one branch per next call.
	traced    bool
	traceBase time.Time
}

// nowNS returns the current span-clock reading: nanoseconds since the
// run's trace base.
func (e *env) nowNS() int64 { return int64(time.Since(e.traceBase)) }

// scratch carves an n-key batch buffer from the run's pooled key slab,
// falling back to a fresh allocation once the slab is exhausted (stepless
// plans and transient subplans built during expression evaluation — both
// already allocate elsewhere).
func (e *env) scratch(n int) []flex.Key {
	if e.keysOff+n <= len(e.keys) {
		b := e.keys[e.keysOff : e.keysOff+n : e.keysOff+n]
		e.keysOff += n
		return b
	}
	return make([]flex.Key, n)
}

// newStep carves a step executor out of the arena, or allocates one when
// the arena is exhausted (transient subplans built during expression
// evaluation). Arena slots are pooled across runs, so a carved slot is
// reset here — except its scanner, whose cursor and key buffers are the
// cross-run allocation win (BindScan rebinds all of its semantic state).
func (e *env) newStep(op *plan.Step) *stepExec {
	if len(e.arena) < cap(e.arena) {
		e.arena = e.arena[:len(e.arena)+1]
		se := &e.arena[len(e.arena)-1]
		for i := range se.preds {
			se.preds[i] = nil
		}
		scanner := se.scanner
		*se = stepExec{env: e, op: op, preds: se.preds[:0], scanner: scanner}
		return se
	}
	return &stepExec{env: e, op: op}
}

// countSteps sizes the arena: every Step operator reachable from op,
// including those inside predicate subplans.
func countSteps(op plan.Op) int {
	switch t := op.(type) {
	case *plan.Root:
		return countSteps(t.Context)
	case *plan.Step:
		n := 1
		if t.Context != nil {
			n += countSteps(t.Context)
		}
		for _, p := range t.Preds {
			n += countSteps(p)
		}
		return n
	case *plan.Join:
		return countSteps(t.Left) + countSteps(t.Right)
	case *plan.Exist:
		return countSteps(t.Pred)
	case *plan.BinaryPred:
		return countSteps(t.Left) + countSteps(t.Right)
	default:
		return 0
	}
}

// OpStats reports one step operator's actual execution counters.
type OpStats struct {
	Op      *plan.Step
	In      uint64 // context tuples bound (actual IN)
	Scanned uint64 // index entries examined
	Out     uint64 // tuples emitted (actual OUT)
}

// Stats returns per-step actual tuple counts accumulated so far —
// meaningful after the iterator is drained. Together with the estimator's
// annotations this is EXPLAIN ANALYZE: estimated upper bounds next to
// observed cardinalities.
func (it *Iterator) Stats() []OpStats {
	out := make([]OpStats, 0, len(it.env.steps))
	for _, s := range it.env.steps {
		in := s.nIn
		if s.child == nil {
			// For leaf operators the paper defines IN as the tuples
			// received from the index (Case 1), not contexts bound.
			in = s.nScanned
		}
		out = append(out, OpStats{Op: s.op, In: in, Scanned: s.nScanned, Out: s.nOut})
	}
	return out
}

// NumSteps reports how many step operators the run registered. Together
// with StepStat it is the allocation-free counterpart of Stats, for
// hot-path consumers (the cost observatory) that fold per-step counters
// on every query. Valid until the iterator is released (within an
// OnFinish hook, or before Close).
func (it *Iterator) NumSteps() int { return len(it.env.steps) }

// StepStat returns the i'th step's actual counters without allocating.
// Indexes follow the same order as Stats.
func (it *Iterator) StepStat(i int) OpStats {
	s := it.env.steps[i]
	in := s.nIn
	if s.child == nil {
		// Leaf operators: IN is the tuples received from the index
		// (Case 1), matching Stats.
		in = s.nScanned
	}
	return OpStats{Op: s.op, In: in, Scanned: s.nScanned, Out: s.nOut}
}

// StepSpan is one step operator's recorded execution span, produced on
// traced runs (Context.Trace). Offsets are nanoseconds on the run's trace
// clock (Context.FinishStart). PagesRead and RecordsDecoded are inclusive
// of child-operator work performed while this step was pulling.
type StepSpan struct {
	Op               *plan.Step
	StartNS, EndNS   int64
	In, Scanned, Out uint64
	PagesRead        uint64
	RecordsDecoded   uint64
}

// StepSpans returns the per-step spans of a traced run — meaningful once
// the iterator has finished, and (like Stats) only before Close releases
// the pooled run state. Nil for untraced runs.
func (it *Iterator) StepSpans() []StepSpan {
	if !it.env.traced {
		return nil
	}
	out := make([]StepSpan, 0, len(it.env.steps))
	for _, s := range it.env.steps {
		if !s.spanOpened {
			continue // never pulled (e.g. short-circuited union branch)
		}
		out = append(out, StepSpan{
			Op:             s.op,
			StartNS:        s.openNS,
			EndNS:          s.closeNS,
			In:             s.nIn,
			Scanned:        s.nScanned,
			Out:            s.nOut,
			PagesRead:      s.spanPages,
			RecordsDecoded: s.spanRecs,
		})
	}
	return out
}

// execNode is a pipelined operator instance. reset rebinds the context of
// the subtree's leaf operators and rewinds all state to INITIAL.
//
// nextBatch is the batched pull: it fills dst (len >= 1, owned by the
// caller for the duration of the call) with the operator's next tuples
// and returns how many it produced. An operator fills dst completely
// unless it is exhausted or fails, so a short count means
// exhausted-or-error and n == 0 with a nil error means exhausted. On a
// non-nil error the dst[:n] tuples are valid — they precede the failure
// in stream order and callers deliver them before surfacing the error.
// Delivery order is independent of len(dst): batch size never changes
// the tuple stream, only how many move per call.
type execNode interface {
	reset(ctx flex.Key)
	nextBatch(dst []flex.Key) (int, error)
}

// build constructs the executable mirror of a plan operator.
func (e *env) build(op plan.Op) (execNode, error) {
	switch t := op.(type) {
	case *plan.Root:
		child, err := e.build(t.Context)
		if err != nil {
			return nil, err
		}
		re := &rootExec{child: child, distinct: t.Distinct}
		if e.rootNode == nil {
			re.emitted = e.emittedLog[:0]
			e.emittedLog = nil
			e.rootNode = re
		}
		return re, nil
	case *plan.Step:
		se := e.newStep(t)
		if e.building {
			e.steps = append(e.steps, se)
		}
		if t.Context != nil {
			child, err := e.build(t.Context)
			if err != nil {
				return nil, err
			}
			se.child = child
			se.ctxBuf = e.scratch(e.batch)
		}
		for _, p := range t.Preds {
			pe, err := e.buildPred(p)
			if err != nil {
				return nil, err
			}
			se.preds = append(se.preds, pe)
			if usesLast(p) {
				se.needLast = true
			}
		}
		return se, nil
	case *plan.Join:
		l, err := e.build(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := e.build(t.Right)
		if err != nil {
			return nil, err
		}
		if t.Cond != plan.JoinUnion {
			return nil, fmt.Errorf("exec: unsupported join condition %v", t.Cond)
		}
		return &unionExec{left: l, right: r}, nil
	default:
		return nil, fmt.Errorf("exec: operator %T cannot produce a tuple stream", op)
	}
}

// rootExec implements R: it forwards every tuple of its context child,
// optionally eliminating duplicates (the node-set semantics the paper's
// Q2 rewrite relies on).
type rootExec struct {
	child    execNode
	distinct bool
	// Streaming dedup, adaptive: forward-axis pipelines — the scan-heavy
	// common case — deliver tuples in non-decreasing document order, where
	// every duplicate is adjacent, so a last-key compare plus an ordered
	// log of emitted keys suffices and no hashing happens at all. The
	// first out-of-order tuple (reverse axes, interleaved union arms)
	// materializes the hash set from the log and the stream degrades to
	// map-based dedup. Single-result point lookups never build either.
	haveLast bool
	last     flex.Key
	emitted  []flex.Key // sorted-mode log; nil once seen is built
	seen     map[flex.Key]struct{}
	state    State
}

func (r *rootExec) reset(ctx flex.Key) {
	r.child.reset(ctx)
	r.haveLast = false
	r.last = ""
	r.emitted = r.emitted[:0]
	r.seen = nil
	r.state = Initial
}

func (r *rootExec) nextBatch(dst []flex.Key) (int, error) {
	if r.state == OutOfTuples {
		return 0, nil
	}
	r.state = Fetching
	n := 0
	for n < len(dst) {
		m, err := r.child.nextBatch(dst[n:])
		if err != nil {
			if m > 0 && r.distinct {
				m = r.dedup(dst[n : n+m])
			}
			r.state = OutOfTuples
			return n + m, err
		}
		if m == 0 {
			r.state = OutOfTuples
			break
		}
		if r.distinct {
			m = r.dedup(dst[n : n+m])
		}
		n += m
	}
	return n, nil
}

// dedup compacts batch in place, dropping tuples already seen across the
// whole stream, and returns the surviving count. While the stream has
// been non-decreasing it runs in sorted mode (last-key compare, append
// to the log); the first out-of-order tuple switches to the hash set.
// The emitted stream is identical either way — only the membership
// structure differs.
func (r *rootExec) dedup(batch []flex.Key) int {
	w := 0
	for _, k := range batch {
		if r.seen == nil {
			if !r.haveLast || k > r.last {
				r.haveLast, r.last = true, k
				r.emitted = append(r.emitted, k)
				batch[w] = k
				w++
				continue
			}
			if k == r.last {
				continue
			}
			// k < last: the sorted streak is over. Everything emitted so
			// far is in the log; build the set from it and degrade.
			r.seen = make(map[flex.Key]struct{}, len(r.emitted)+1)
			for _, e := range r.emitted {
				r.seen[e] = struct{}{}
			}
			r.emitted = nil
		}
		if _, dup := r.seen[k]; dup {
			continue
		}
		r.seen[k] = struct{}{}
		batch[w] = k
		w++
	}
	return w
}

// stepExec implements φ per Algorithm 1. A leaf (no context child) scans
// the index from its dynamically-bound context; a non-leaf opens one scan
// per context tuple (Algorithm 2, GetNextContext).
type stepExec struct {
	env      *env
	op       *plan.Step
	child    execNode
	preds    []predEval
	needLast bool

	// Actual tuple counters, read back by Iterator.Stats (the ANALYZE
	// half of EXPLAIN ANALYZE): contexts bound, candidates scanned,
	// tuples emitted.
	nIn, nScanned, nOut uint64

	// Span state, written only on traced runs (env.traced): open/close
	// offsets on the run's trace clock and inclusive storage-consumption
	// deltas (pages read, records decoded — including work done by child
	// operators while this step's next was on the stack).
	spanOpened          bool
	openNS, closeNS     int64
	spanPages, spanRecs uint64

	state   State
	leafCtx flex.Key
	scan    *mass.Scan
	// scanner is the reusable axis-scan state (cursor, range-key buffers)
	// rebound to each context tuple, so binding a context allocates
	// nothing after the first.
	scanner mass.Scanner
	// Context batching (Algorithm 2, vectorized): context tuples are
	// pulled from the child a batch at a time into ctxBuf (carved from
	// the run's key slab) and bound one by one. A child error with
	// buffered contexts still ahead of it is deferred in ctxErr until
	// they are consumed, preserving tuple-at-a-time stream order.
	ctxBuf  []flex.Key
	ctxPos  int
	ctxLen  int
	ctxDone bool
	ctxErr  error
	// Streaming predicate positions: posCounts[j] counts candidates that
	// passed predicates 0..j-1 for the current context (XPath proximity
	// position). posBuf backs it inline for the common few-predicate case.
	posCounts []int
	posBuf    [4]int
	// Batch mode (only when a predicate uses last()): candidates for the
	// current context are materialized and filtered in one pass.
	batch []flex.Key
	bi    int
}

func (s *stepExec) reset(ctx flex.Key) {
	s.state = Initial
	s.leafCtx = ctx
	s.scan = nil
	s.batch = nil
	s.bi = 0
	s.ctxPos, s.ctxLen = 0, 0
	s.ctxDone, s.ctxErr = false, nil
	if s.child != nil {
		s.child.reset(ctx)
	}
}

func (s *stepExec) nextBatch(dst []flex.Key) (int, error) {
	if !s.env.traced {
		return s.advance(dst)
	}
	return s.tracedNextBatch(dst)
}

// tracedNextBatch wraps advance with span recording: the first call
// stamps the open offset, every call stamps the close offset on return
// (so the span always ends at the operator's last activity — an operator
// whose subplan is short-circuited, like an exists-predicate's, still
// nests inside its parent), and every call accumulates the limiter's
// pages-read / records-decoded movement while this step's frame was
// live — inclusive of child operators, so span consumption nests the way
// span time does. Batching moves whole batches per call, so the trace
// clock is read once per batch instead of once per tuple.
func (s *stepExec) tracedNextBatch(dst []flex.Key) (int, error) {
	if !s.spanOpened {
		s.spanOpened = true
		s.openNS = s.env.nowNS()
	}
	lim := s.env.lim
	p0, r0 := lim.PagesRead(), lim.DecodedRecords()
	n, err := s.advance(dst)
	s.spanPages += lim.PagesRead() - p0
	s.spanRecs += lim.DecodedRecords() - r0
	s.closeNS = s.env.nowNS()
	return n, err
}

// advance is the untraced step pull loop (Algorithm 1/2, vectorized):
// it fills dst from the current scan — pulling index keys a batch at a
// time and filtering them in place — binding the next context whenever a
// scan drains, until dst is full or the step runs out of contexts.
func (s *stepExec) advance(dst []flex.Key) (int, error) {
	n := 0
	for n < len(dst) && s.state != OutOfTuples {
		if s.scan == nil {
			// INITIAL, or the previous context's scan is exhausted: bind
			// the next context (Algorithm 2). The child pull is sized by
			// the caller's own demand so early-terminating consumers stay
			// lazy through the whole pipeline.
			ctx, ok, err := s.nextContext(len(dst))
			if err != nil {
				return n, err
			}
			if !ok {
				s.state = OutOfTuples
				break
			}
			s.bindContext(ctx)
			if s.needLast {
				if err := s.fillBatch(); err != nil {
					return n, err
				}
			}
		}
		if s.needLast {
			for s.bi < len(s.batch) && n < len(dst) {
				dst[n] = s.batch[s.bi]
				s.bi++
				s.nOut++
				n++
			}
			if s.bi >= len(s.batch) {
				s.scan = nil
				continue
			}
			return n, nil // dst full
		}
		// Pull a run of candidate keys straight into the caller's buffer;
		// predicates then filter the run in place (the write index never
		// overtakes the read index).
		free := dst[n:]
		m, err := s.scan.NextKeys(free)
		s.nScanned += uint64(m)
		if len(s.preds) == 0 {
			n += m
			s.nOut += uint64(m)
		} else {
			for i := 0; i < m; i++ {
				pass, perr := s.applyPreds(free[i])
				if perr != nil {
					return n, perr
				}
				if pass {
					dst[n] = free[i]
					s.nOut++
					n++
				}
			}
		}
		if err != nil {
			s.state = OutOfTuples
			return n, err
		}
		if m < len(free) {
			s.scan = nil // this context's scan is exhausted
		}
		if n == len(dst) {
			return n, nil
		}
	}
	return n, nil
}

// nextContext returns the next context tuple to bind, refilling the
// context buffer from the child when it drains. want (the caller's
// remaining demand) bounds the refill so a one-tuple pull at the top of
// the pipeline pulls one context at every level below it.
func (s *stepExec) nextContext(want int) (flex.Key, bool, error) {
	if s.child == nil {
		if s.state != Initial {
			return "", false, nil
		}
		return s.leafCtx, true, nil
	}
	if s.ctxPos >= s.ctxLen {
		if s.ctxErr != nil {
			return "", false, s.ctxErr
		}
		if s.ctxDone {
			return "", false, nil
		}
		if want > len(s.ctxBuf) {
			want = len(s.ctxBuf)
		}
		if want < 1 {
			want = 1
		}
		m, err := s.child.nextBatch(s.ctxBuf[:want])
		s.ctxPos, s.ctxLen = 0, m
		if err != nil {
			if m == 0 {
				return "", false, err
			}
			s.ctxErr = err // surface after the buffered contexts drain
		} else if m == 0 {
			s.ctxDone = true
			return "", false, nil
		}
	}
	k := s.ctxBuf[s.ctxPos]
	s.ctxPos++
	return k, true, nil
}

// bindContext opens the axis scan for one context tuple.
func (s *stepExec) bindContext(ctx flex.Key) {
	s.nIn++
	s.env.axisBinds[s.op.Axis]++
	s.state = Fetching
	if s.op.Axis == mass.AxisNumRange {
		s.scan = s.env.store.NumericRangeScanLim(s.env.doc, ctx,
			s.op.NumLo, s.op.NumLoIncl, s.op.NumHi, s.op.NumHiIncl, s.env.lim)
	} else {
		s.scanner.SetLimiter(s.env.lim)
		s.scan = s.env.store.BindScan(&s.scanner, s.env.doc, ctx, s.op.Axis, s.op.Test)
	}
	// Reuse the proximity-position buffer across context bindings;
	// a non-leaf step binds one context per input tuple, so this
	// would otherwise allocate once per tuple.
	if s.posCounts == nil {
		if len(s.preds) <= len(s.posBuf) {
			s.posCounts = s.posBuf[:len(s.preds)]
		} else {
			s.posCounts = make([]int, len(s.preds))
		}
	}
	for i := range s.posCounts {
		s.posCounts[i] = 0
	}
}

// applyPreds evaluates the step's predicates in order against candidate,
// maintaining per-predicate proximity positions.
func (s *stepExec) applyPreds(k flex.Key) (bool, error) {
	for j, p := range s.preds {
		s.posCounts[j]++
		ok, err := p.eval(k, s.posCounts[j], -1)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// fillBatch materializes and filters the current scan when a predicate
// needs last().
func (s *stepExec) fillBatch() error {
	var cand []flex.Key
	for {
		n, ok := s.scan.Next()
		if !ok {
			break
		}
		s.nScanned++
		cand = append(cand, n.Key)
	}
	if err := s.scan.Err(); err != nil {
		return err
	}
	for j, p := range s.preds {
		var kept []flex.Key
		total := len(cand)
		for i, k := range cand {
			ok, err := p.eval(k, i+1, total)
			if err != nil {
				return err
			}
			if ok {
				kept = append(kept, k)
			}
		}
		cand = kept
		_ = j
	}
	s.batch = cand
	s.bi = 0
	return nil
}

// unionExec implements J(UNION): both inputs are drained, deduplicated and
// delivered in document order (the node-set semantics of '|').
type unionExec struct {
	left, right execNode
	out         []flex.Key
	i           int
	filled      bool
}

func (u *unionExec) reset(ctx flex.Key) {
	u.left.reset(ctx)
	u.right.reset(ctx)
	u.out = nil
	u.i = 0
	u.filled = false
}

func (u *unionExec) nextBatch(dst []flex.Key) (int, error) {
	if !u.filled {
		// Both sides drain through dst as scratch; the merged set is
		// deduplicated batch by batch and sorted once, so union results
		// are identical at every batch size.
		seen := map[flex.Key]struct{}{}
		for _, side := range []execNode{u.left, u.right} {
			for {
				n, err := side.nextBatch(dst)
				if err != nil {
					return 0, err
				}
				if n == 0 {
					break
				}
				for _, k := range dst[:n] {
					if _, dup := seen[k]; !dup {
						seen[k] = struct{}{}
						u.out = append(u.out, k)
					}
				}
			}
		}
		sort.Slice(u.out, func(i, j int) bool { return u.out[i] < u.out[j] })
		u.filled = true
	}
	n := copy(dst, u.out[u.i:])
	u.i += n
	return n, nil
}

// usesLast reports whether a predicate operator's expression calls last()
// anywhere (forcing batch evaluation of the owning step).
func usesLast(op plan.Op) bool {
	ep, ok := op.(*plan.ExprPred)
	if !ok {
		return false
	}
	return exprUsesLast(ep.Expr)
}

func exprUsesLast(e xpath.Expr) bool {
	switch t := e.(type) {
	case *xpath.FuncCall:
		if t.Name == "last" {
			return true
		}
		for _, a := range t.Args {
			if exprUsesLast(a) {
				return true
			}
		}
	case *xpath.Binary:
		return exprUsesLast(t.Left) || exprUsesLast(t.Right)
	case *xpath.Unary:
		return exprUsesLast(t.Operand)
	case *xpath.Filter:
		if exprUsesLast(t.Primary) {
			return true
		}
		for _, p := range t.Predicates {
			if exprUsesLast(p) {
				return true
			}
		}
	case *xpath.LocationPath:
		for _, s := range t.Steps {
			for _, p := range s.Predicates {
				if exprUsesLast(p) {
					return true
				}
			}
		}
	}
	return false
}
