package exec

import (
	"fmt"
	"math"

	"vamana/internal/flex"
	"vamana/internal/plan"
	"vamana/internal/xpath"
)

// predEval evaluates one predicate operator against a candidate tuple.
// pos is the candidate's proximity position; last is the context size or
// -1 when unknown (steps switch to batch mode when a predicate needs it).
type predEval interface {
	eval(candidate flex.Key, pos, last int) (bool, error)
}

// buildPred constructs the evaluator for a predicate operator.
func (e *env) buildPred(op plan.Op) (predEval, error) {
	switch t := op.(type) {
	case *plan.Exist:
		sub, err := e.build(t.Pred)
		if err != nil {
			return nil, err
		}
		return &existEval{sub: sub}, nil
	case *plan.BinaryPred:
		if t.Cond == plan.CondAND || t.Cond == plan.CondOR {
			l, err := e.buildPred(t.Left)
			if err != nil {
				return nil, err
			}
			r, err := e.buildPred(t.Right)
			if err != nil {
				return nil, err
			}
			return &boolEval{and: t.Cond == plan.CondAND, left: l, right: r}, nil
		}
		l, err := e.buildSide(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := e.buildSide(t.Right)
		if err != nil {
			return nil, err
		}
		return &cmpEval{cond: t.Cond, left: l, right: r}, nil
	case *plan.ExprPred:
		return &exprEvalPred{env: e, expr: t.Expr}, nil
	default:
		return nil, fmt.Errorf("exec: %T is not a predicate operator", op)
	}
}

// existEval implements ξ: the candidate satisfies the predicate when the
// subplan, with its leaf context bound to the candidate, yields at least
// one tuple (paper §V-C.4). The one-tuple pull buffer lives on the
// evaluator (already heap-resident) so the existence probe allocates
// nothing, and its demand of one propagates down the subplan — batched
// execution stays fully lazy under early termination.
type existEval struct {
	sub execNode
	buf [1]flex.Key
}

func (p *existEval) eval(candidate flex.Key, _, _ int) (bool, error) {
	p.sub.reset(candidate)
	n, err := p.sub.nextBatch(p.buf[:])
	return n > 0 && err == nil, err
}

// boolEval implements β(AND)/β(OR).
type boolEval struct {
	and         bool
	left, right predEval
}

func (p *boolEval) eval(candidate flex.Key, pos, last int) (bool, error) {
	l, err := p.left.eval(candidate, pos, last)
	if err != nil {
		return false, err
	}
	if p.and && !l {
		return false, nil
	}
	if !p.and && l {
		return true, nil
	}
	return p.right.eval(candidate, pos, last)
}

// sideVal is one operand of a β comparison evaluated for a candidate:
// either a single literal value or the string values of a node set.
type sideVal interface {
	values(candidate flex.Key) (vals []string, numeric bool, err error)
}

func (e *env) buildSide(op plan.Op) (sideVal, error) {
	switch t := op.(type) {
	case *plan.Literal:
		return &literalSide{val: t.Value, numeric: t.Numeric}, nil
	default:
		sub, err := e.build(op)
		if err != nil {
			return nil, err
		}
		return &pathSide{env: e, sub: sub}, nil
	}
}

type literalSide struct {
	val     string
	numeric bool
}

func (s *literalSide) values(flex.Key) ([]string, bool, error) {
	return []string{s.val}, s.numeric, nil
}

type pathSide struct {
	env *env
	sub execNode
	// buf is the drain buffer for the operand subplan; on the evaluator
	// (not the stack) so values() costs no per-call allocation for it.
	buf [16]flex.Key
}

func (s *pathSide) values(candidate flex.Key) ([]string, bool, error) {
	s.sub.reset(candidate)
	var out []string
	for {
		n, err := s.sub.nextBatch(s.buf[:])
		for _, k := range s.buf[:n] {
			sv, serr := s.env.store.StringValue(s.env.doc, k)
			if serr != nil {
				return nil, false, serr
			}
			out = append(out, sv)
		}
		if err != nil {
			return nil, false, err
		}
		if n == 0 {
			return out, false, nil
		}
	}
}

// cmpEval implements β(EQ/NE/LT/LE/GT/GE) with XPath 1.0 existential
// semantics: the predicate holds when some pair of operand values
// satisfies the comparison. Relational operators always compare
// numerically; equality compares numerically when either side is numeric.
type cmpEval struct {
	cond        plan.PredCond
	left, right sideVal
}

func (p *cmpEval) eval(candidate flex.Key, _, _ int) (bool, error) {
	lv, lnum, err := p.left.values(candidate)
	if err != nil {
		return false, err
	}
	rv, rnum, err := p.right.values(candidate)
	if err != nil {
		return false, err
	}
	numeric := lnum || rnum || p.cond == plan.CondLT || p.cond == plan.CondLE ||
		p.cond == plan.CondGT || p.cond == plan.CondGE
	for _, a := range lv {
		for _, b := range rv {
			if numeric {
				if compareNum(p.cond, toNumber(a), toNumber(b)) {
					return true, nil
				}
			} else if compareStr(p.cond, a, b) {
				return true, nil
			}
		}
	}
	return false, nil
}

func compareNum(cond plan.PredCond, a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		// NaN compares false to everything except !=.
		return cond == plan.CondNE && !(math.IsNaN(a) && math.IsNaN(b))
	}
	switch cond {
	case plan.CondEQ:
		return a == b
	case plan.CondNE:
		return a != b
	case plan.CondLT:
		return a < b
	case plan.CondLE:
		return a <= b
	case plan.CondGT:
		return a > b
	case plan.CondGE:
		return a >= b
	}
	return false
}

func compareStr(cond plan.PredCond, a, b string) bool {
	switch cond {
	case plan.CondEQ:
		return a == b
	case plan.CondNE:
		return a != b
	}
	return false
}

// exprEvalPred evaluates an arbitrary expression predicate (ε). A numeric
// result is positional shorthand ([2] means [position()=2]); any other
// result is coerced to boolean.
type exprEvalPred struct {
	env  *env
	expr xpath.Expr
}

func (p *exprEvalPred) eval(candidate flex.Key, pos, last int) (bool, error) {
	v, err := p.env.evalExpr(p.expr, evalCtx{key: candidate, pos: pos, last: last})
	if err != nil {
		return false, err
	}
	if n, ok := v.(float64); ok {
		return float64(pos) == n, nil
	}
	return toBool(v), nil
}
