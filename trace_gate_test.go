package vamana

import (
	"math"
	"os"
	"testing"

	"vamana/internal/xmark"
)

// TestTraceOverheadGate asserts that the tracing layer's presence costs
// the unsampled warm serving path at most 1%. The "PR-2 baseline" — the
// engine before span recording existed — cannot be rebuilt inside one
// test process, so the gate measures its in-process equivalent: a
// database opened with tracing configured but sampling never firing
// (TraceEvery far beyond the run count, no flight recorder) against a
// database with no tracing configured at all. The unsampled path is the
// baseline path plus the per-run trace branches, so their ratio bounds
// exactly the cost this gate exists to cap. An allocation pin then
// checks the stronger claim directly: the unsampled warm cache-hit
// query allocates no more than the untraced one.
//
// Methodology matches the governance gate: single-goroutine loops,
// interleaved rounds, best-of-rounds ratio (minimum over rounds
// converges to true cost on noisy shared hardware), several attempts so
// only a persistent regression fails. Skipped unless VAMANA_TRACE_GATE
// is set — scripts/check.sh runs it.
func TestTraceOverheadGate(t *testing.T) {
	if os.Getenv("VAMANA_TRACE_GATE") == "" {
		t.Skip("set VAMANA_TRACE_GATE=1 to run the trace-overhead gate")
	}
	src := xmark.GenerateString(xmark.Config{Factor: xmark.FactorForBytes(32 << 10), Seed: 51})
	open := func(opts Options) (*DB, *Document) {
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		doc, err := db.LoadXMLString("auction", src)
		if err != nil {
			t.Fatal(err)
		}
		for _, expr := range workloadExprs {
			drainCount(t, db, doc, expr)
		}
		return db, doc
	}
	baseDB, baseDoc := open(Options{})
	// Sampling configured but unreachable: the hot path takes the
	// trace-aware branches every query yet never records a span.
	unsampledDB, unsampledDoc := open(Options{TraceEvery: 1 << 30})

	loop := func(db *DB, doc *Document) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				expr := workloadExprs[i%len(workloadExprs)]
				res, err := db.Query(doc, expr)
				if err != nil {
					b.Fatal(err)
				}
				for res.Next() {
				}
				if err := res.Err(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	measure := func(db *DB, doc *Document) float64 {
		return float64(testing.Benchmark(loop(db, doc)).NsPerOp())
	}

	// Allocation pin: the unsampled warm cache-hit query must cost no
	// allocations beyond the untraced one — the gate's real claim, and
	// immune to wall-clock noise.
	const expr = "//person/address"
	baseAllocs := testing.AllocsPerRun(50, func() {
		res, _ := baseDB.Query(baseDoc, expr)
		for res.Next() {
		}
	})
	unsampledAllocs := testing.AllocsPerRun(50, func() {
		res, _ := unsampledDB.Query(unsampledDoc, expr)
		for res.Next() {
		}
	})
	t.Logf("warm cache-hit allocs/query: untraced %.1f, unsampled %.1f", baseAllocs, unsampledAllocs)
	if unsampledAllocs > baseAllocs {
		t.Errorf("unsampled serving allocates more than untraced: %.1f > %.1f allocs/query",
			unsampledAllocs, baseAllocs)
	}

	measure(unsampledDB, unsampledDoc) // warm-up round, discarded
	const (
		rounds   = 7
		attempts = 3
		budget   = 1.01
	)
	var ratio float64
	for attempt := 1; attempt <= attempts; attempt++ {
		offBest, onBest := math.MaxFloat64, math.MaxFloat64
		var offs, ons []float64
		for i := 0; i < rounds; i++ {
			var off, on float64
			if i%2 == 0 {
				off, on = measure(baseDB, baseDoc), measure(unsampledDB, unsampledDoc)
			} else {
				on, off = measure(unsampledDB, unsampledDoc), measure(baseDB, baseDoc)
			}
			offs, ons = append(offs, off), append(ons, on)
			offBest, onBest = min(offBest, off), min(onBest, on)
		}
		ratio = onBest / offBest
		t.Logf("attempt %d: warm serving ns/op untraced %v (best %.0f), unsampled-traced %v (best %.0f), best-of-rounds ratio %.3f",
			attempt, offs, offBest, ons, onBest, ratio)
		if ratio <= budget {
			return
		}
	}
	t.Errorf("disabled-tracing overhead %.1f%% exceeds the 1%% budget on all %d attempts", 100*(ratio-1), attempts)
}
