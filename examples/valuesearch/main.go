// Valuesearch: demonstrates VAMANA's value index — exact-match text
// lookups answered in a single index probe, and the exact, always-current
// statistics (COUNT / TC) the cost model is built on. Compare the probe
// counts with what a histogram-based system would have to maintain under
// updates.
package main

import (
	"fmt"
	"log"
	"time"

	"vamana"
	"vamana/internal/xmark"
)

func main() {
	src := xmark.GenerateString(xmark.Config{Factor: xmark.FactorForBytes(4 << 20), Seed: 99})
	db, err := vamana.Open(vamana.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	doc, err := db.LoadXMLString("auction", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %.1f MB\n\n", float64(len(src))/(1<<20))

	// Exact statistics, straight from the counted B+-trees. Each probe
	// is two root-to-leaf descents — no scan, no histogram, no staleness.
	for _, name := range []string{"person", "item", "address", "province", "watch", "bidder"} {
		t0 := time.Now()
		n, err := doc.CountName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("COUNT(%-9s) = %6d   (probe took %v)\n", name, n, time.Since(t0).Round(time.Microsecond))
	}
	fmt.Println()
	for _, v := range []string{"Vermont", "Monroe", "United States", "Yung Flach", "no such value"} {
		t0 := time.Now()
		n, err := doc.TextCount(v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("TC(%-15q) = %5d   (probe took %v)\n", v, n, time.Since(t0).Round(time.Microsecond))
	}

	// A value-driven query: the optimizer sees TC("Vermont") and drives
	// the whole plan from the value index.
	expr := "//province[text()='Vermont']/ancestor::person"
	q, err := db.CompileOptimized(doc, expr)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	res, err := q.Execute(doc)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for range res.AllKeys() {
		n++
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n  -> %d persons in %v\n", expr, n, time.Since(t0).Round(time.Microsecond))
}
