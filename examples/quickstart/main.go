// Quickstart: open an in-memory VAMANA database, index a small XML
// document, and run a few XPath queries through the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"vamana"
)

const doc = `<site>
  <people>
    <person id="person144">
      <name>Yung Flach</name>
      <emailaddress>Flach@auth.gr</emailaddress>
      <address>
        <street>92 Pfisterer St</street>
        <city>Monroe</city>
        <country>United States</country>
        <zipcode>12</zipcode>
      </address>
      <watches>
        <watch open_auction="open_auction108"/>
        <watch open_auction="open_auction94"/>
      </watches>
    </person>
    <person id="person145">
      <name>Jaak Tempesti</name>
      <address>
        <street>1 Curie Place</street>
        <city>Ottawa</city>
        <country>Canada</country>
        <zipcode>99</zipcode>
      </address>
    </person>
  </people>
</site>`

func main() {
	db, err := vamana.Open(vamana.Options{}) // in-memory store
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	d, err := db.LoadXMLString("site", doc)
	if err != nil {
		log.Fatal(err)
	}

	// A simple downward query.
	run(db, d, "//person/name")

	// Reverse axes work the same way: who watches auctions?
	run(db, d, "//watches/watch/ancestor::person/name")

	// Value predicates hit the value index in a single probe.
	run(db, d, "//name[text()='Yung Flach']/following-sibling::emailaddress")

	// Statistics are exact and cheap: COUNT and TC probes.
	persons, _ := d.CountName("person")
	tc, _ := d.TextCount("Monroe")
	fmt.Printf("COUNT(person) = %d, TC(\"Monroe\") = %d\n", persons, tc)
}

func run(db *vamana.DB, d *vamana.Document, expr string) {
	q, err := db.CompileOptimized(d, expr)
	if err != nil {
		log.Fatal(err)
	}
	// Give every query a governance envelope: a deadline plus a result
	// budget. Well-behaved queries never notice; runaways are killed with
	// a typed error (vamana.ErrDeadlineExceeded, *vamana.BudgetError).
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	res, err := q.ExecuteContext(ctx, d, vamana.WithMaxResults(100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", expr)
	for n, err := range res.All() {
		if err != nil {
			log.Fatal(err)
		}
		sv, err := res.StringValue()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %-14s %q\n", n.Key, n.Name, sv)
	}
}
