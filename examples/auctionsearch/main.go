// Auctionsearch: a realistic analytics session over an XMark auction
// document — the workload class the paper's introduction motivates. It
// generates ~2 MB of auction data, indexes it, and answers a series of
// questions mixing forward axes, reverse axes, and value predicates.
package main

import (
	"fmt"
	"log"
	"time"

	"vamana"
	"vamana/internal/xmark"
)

func main() {
	src := xmark.GenerateString(xmark.Config{Factor: xmark.FactorForBytes(2 << 20), Seed: 7})
	db, err := vamana.Open(vamana.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	t0 := time.Now()
	doc, err := db.LoadXMLString("auction", src)
	if err != nil {
		log.Fatal(err)
	}
	st, _ := doc.Stats()
	fmt.Printf("indexed %.1f MB of auction data in %v: %d nodes, %d elements\n\n",
		float64(len(src))/(1<<20), time.Since(t0).Round(time.Millisecond), st.Nodes, st.Elements)

	// Who lives in Vermont? (value predicate -> one value-index probe)
	names := collectValues(db, doc, "//province[text()='Vermont']/ancestor::person/name")
	fmt.Printf("persons with a Vermont address: %d\n", len(names))
	for i, n := range names {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", n)
	}

	// Which persons watch more than two auctions? (count() predicate)
	watchers := collectValues(db, doc, "//person[count(watches/watch) > 2]/name")
	fmt.Printf("\npersons watching more than two auctions: %d\n", len(watchers))

	// Every closed auction's price, reached through a sibling axis.
	prices := collectValues(db, doc, "//itemref/following-sibling::price")
	fmt.Printf("\nclosed-auction prices (via following-sibling): %d\n", len(prices))

	// Mixed: sellers of featured auctions.
	featured := count(db, doc, "//open_auction[type='Featured']/seller")
	fmt.Printf("featured-auction sellers: %d\n", featured)

	// The running example: exact-value lookup for one person.
	email := collectValues(db, doc, "//name[text()='Yung Flach']/following-sibling::emailaddress")
	fmt.Printf("\nYung Flach's email: %v\n", email)
}

func collectValues(db *vamana.DB, doc *vamana.Document, expr string) []string {
	q, err := db.CompileOptimized(doc, expr)
	if err != nil {
		log.Fatalf("%s: %v", expr, err)
	}
	res, err := q.Execute(doc)
	if err != nil {
		log.Fatalf("%s: %v", expr, err)
	}
	var out []string
	for _, err := range res.All() {
		if err != nil {
			log.Fatal(err)
		}
		sv, err := res.StringValue()
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, sv)
	}
	return out
}

func count(db *vamana.DB, doc *vamana.Document, expr string) int {
	q, err := db.CompileOptimized(doc, expr)
	if err != nil {
		log.Fatalf("%s: %v", expr, err)
	}
	res, err := q.Execute(doc)
	if err != nil {
		log.Fatalf("%s: %v", expr, err)
	}
	n := 0
	for range res.AllKeys() {
		n++
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	return n
}
