// Explain: shows the cost-driven optimizer at work on the paper's running
// examples. For each query it prints the default physical plan with its
// cost annotations (COUNT / TC / IN / OUT / δ), the optimized plan, and
// the rewrite decisions the optimizer took — the textual equivalent of
// the paper's Figures 6-11.
package main

import (
	"fmt"
	"log"

	"vamana"
	"vamana/internal/xmark"
)

func main() {
	src := xmark.GenerateString(xmark.Config{Factor: 0.01, Seed: 42})
	db, err := vamana.Open(vamana.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	doc, err := db.LoadXMLString("auction", src)
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		// Q1 of the running example (§III): cleaned up by self-merging,
		// then rewritten twice (parent inversion + child push-down).
		"descendant::name/parent::*/self::person/address",
		// Q2 of the running example: the value predicate becomes a
		// value:: index step.
		"//name[ text() = 'Yung Flach' ]/following-sibling::emailaddress",
		// The duplicate-eliminating ancestor rewrite (§VIII, Q2).
		"//watches/watch/ancestor::person",
	}

	for _, expr := range queries {
		fmt.Println("============================================================")
		def, err := db.Compile(expr)
		if err != nil {
			log.Fatal(err)
		}
		out, err := def.Explain(doc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("---- default plan (VQP) ----")
		fmt.Print(out)

		opt, err := db.CompileOptimized(doc, expr)
		if err != nil {
			log.Fatal(err)
		}
		out, err = opt.Explain(doc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("---- optimized plan (VQP-OPT) ----")
		fmt.Print(out)
		fmt.Println()
	}
}
