// Updates: demonstrates in-place document updates and the property the
// paper builds its cost model on — statistics that are exact immediately
// after every insert, update and delete, with no histogram maintenance
// (§I: "cost accuracy is not affected by updates, inserts and deletes").
package main

import (
	"fmt"
	"log"

	"vamana"
)

func main() {
	db, err := vamana.Open(vamana.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	doc, err := db.LoadXMLString("store", `<store><catalog/></store>`)
	if err != nil {
		log.Fatal(err)
	}
	q, err := db.Compile("//catalog")
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.Execute(doc)
	if err != nil {
		log.Fatal(err)
	}
	keys, err := res.Keys()
	if err != nil {
		log.Fatal(err)
	}
	catalog := keys[0]

	// Grow the document through the update API.
	fmt.Println("inserting 1000 products...")
	for i := 0; i < 1000; i++ {
		product, err := doc.InsertElement(catalog, -1, "product")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := doc.InsertAttribute(product, "sku", fmt.Sprintf("SKU-%04d", i)); err != nil {
			log.Fatal(err)
		}
		name, err := doc.InsertElement(product, -1, "name")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := doc.InsertText(name, -1, fmt.Sprintf("Product %d", i)); err != nil {
			log.Fatal(err)
		}
		status, err := doc.InsertElement(product, -1, "status")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := doc.InsertText(status, -1, pick(i)); err != nil {
			log.Fatal(err)
		}
	}
	report(doc, "after inserts")

	// Statistics are already exact — no ANALYZE step exists or is needed.
	discontinued := query(db, doc, "//product[status='discontinued']")
	fmt.Printf("discontinued products: %d\n\n", len(discontinued))

	// Flip some statuses and delete the discontinued stock.
	fmt.Println("updating 100 statuses, deleting discontinued products...")
	active := query(db, doc, "//product[status='active']/status/text()")
	for i := 0; i < 100 && i < len(active); i++ {
		if err := doc.UpdateText(active[i], "backorder"); err != nil {
			log.Fatal(err)
		}
	}
	for _, k := range discontinued {
		if err := doc.DeleteSubtree(k); err != nil {
			log.Fatal(err)
		}
	}
	report(doc, "after updates and deletes")

	// The optimizer consumes the same live statistics: explain a value
	// query and watch TC drive the plan.
	qe, err := db.CompileOptimized(doc, "//product[status='backorder']")
	if err != nil {
		log.Fatal(err)
	}
	out, err := qe.Explain(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}

func pick(i int) string {
	switch {
	case i%10 == 0:
		return "discontinued"
	case i%3 == 0:
		return "seasonal"
	default:
		return "active"
	}
}

func query(db *vamana.DB, doc *vamana.Document, expr string) []string {
	q, err := db.Compile(expr)
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.Execute(doc)
	if err != nil {
		log.Fatal(err)
	}
	keys, err := res.Keys()
	if err != nil {
		log.Fatal(err)
	}
	return keys
}

func report(doc *vamana.Document, label string) {
	products, _ := doc.CountName("product")
	tcActive, _ := doc.TextCount("active")
	tcDisc, _ := doc.TextCount("discontinued")
	tcBack, _ := doc.TextCount("backorder")
	fmt.Printf("%s: COUNT(product)=%d  TC(active)=%d  TC(discontinued)=%d  TC(backorder)=%d\n\n",
		label, products, tcActive, tcDisc, tcBack)
}
