// Updates: demonstrates transactional document updates and the property
// the paper builds its cost model on — statistics that are exact
// immediately after every insert, update and delete, with no histogram
// maintenance (§I: "cost accuracy is not affected by updates, inserts
// and deletes"). Mutations batch through DB.Update: each call commits
// atomically (all-or-nothing on error), and concurrent readers keep
// serving the previous committed state until the commit lands.
package main

import (
	"context"
	"fmt"
	"log"

	"vamana"
)

func main() {
	db, err := vamana.Open(vamana.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	doc, err := db.LoadXMLString("store", `<store><catalog/></store>`)
	if err != nil {
		log.Fatal(err)
	}
	catalog := query(db, doc, "//catalog")[0]

	// Grow the document inside one transaction: a thousand products
	// become visible — and durable — as a single committed version.
	fmt.Println("inserting 1000 products in one transaction...")
	err = db.Update(func(tx *vamana.Txn) error {
		for i := 0; i < 1000; i++ {
			product, err := tx.InsertElement(doc, catalog, -1, "product")
			if err != nil {
				return err
			}
			if _, err := tx.InsertAttribute(doc, product, "sku", fmt.Sprintf("SKU-%04d", i)); err != nil {
				return err
			}
			name, err := tx.InsertElement(doc, product, -1, "name")
			if err != nil {
				return err
			}
			if _, err := tx.InsertText(doc, name, -1, fmt.Sprintf("Product %d", i)); err != nil {
				return err
			}
			status, err := tx.InsertElement(doc, product, -1, "status")
			if err != nil {
				return err
			}
			if _, err := tx.InsertText(doc, status, -1, pick(i)); err != nil {
				return err
			}
		}
		return nil // commit; returning an error would roll all of it back
	})
	if err != nil {
		log.Fatal(err)
	}
	report(doc, "after inserts")

	// Statistics are already exact — no ANALYZE step exists or is needed.
	discontinued := query(db, doc, "//product[status='discontinued']")
	fmt.Printf("discontinued products: %d\n\n", len(discontinued))

	// Flip some statuses and delete the discontinued stock — again one
	// atomic commit for the whole batch.
	fmt.Println("updating 100 statuses, deleting discontinued products...")
	active := query(db, doc, "//product[status='active']/status/text()")
	err = db.Update(func(tx *vamana.Txn) error {
		for i := 0; i < 100 && i < len(active); i++ {
			if err := tx.UpdateText(doc, active[i], "backorder"); err != nil {
				return err
			}
		}
		for _, k := range discontinued {
			if err := tx.DeleteSubtree(doc, k); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	report(doc, "after updates and deletes")

	// The optimizer consumes the same live statistics: explain a value
	// query and watch TC drive the plan.
	qe, err := db.Prepare("//product[status='backorder']", vamana.WithDocument(doc), vamana.WithoutCache())
	if err != nil {
		log.Fatal(err)
	}
	out, err := qe.Explain(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}

func pick(i int) string {
	switch {
	case i%10 == 0:
		return "discontinued"
	case i%3 == 0:
		return "seasonal"
	default:
		return "active"
	}
}

func query(db *vamana.DB, doc *vamana.Document, expr string) []string {
	q, err := db.Prepare(expr, vamana.WithDocument(doc))
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.Run(context.Background(), doc)
	if err != nil {
		log.Fatal(err)
	}
	keys, err := res.Keys()
	if err != nil {
		log.Fatal(err)
	}
	return keys
}

func report(doc *vamana.Document, label string) {
	products, _ := doc.CountName("product")
	tcActive, _ := doc.TextCount("active")
	tcDisc, _ := doc.TextCount("discontinued")
	tcBack, _ := doc.TextCount("backorder")
	fmt.Printf("%s: COUNT(product)=%d  TC(active)=%d  TC(discontinued)=%d  TC(backorder)=%d\n\n",
		label, products, tcActive, tcDisc, tcBack)
}
