//go:build stress

package vamana

import "testing"

// TestDifferentialStress is the long randomized campaign behind the
// stress build tag: 40 documents × 30 queries = 1,200 (document, query)
// pairs per run, plus a second independently-seeded sweep. scripts/
// check.sh runs it with a fixed time budget; reproduce any failure with
// the seed printed in the failure message.
func TestDifferentialStress(t *testing.T) {
	runDifferential(t, 90001, 40, 30)
	runDifferential(t, 430002, 40, 30)
}
