package vamana

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

const snapXML = `<lib><book id="1"><title>A</title></book><book id="2"><title>B</title></book></lib>`

// xmlOf serializes the document root through whatever store the handle
// is bound to (live or snapshot).
func xmlOf(t testing.TB, d *Document) string {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteXML("a", &buf); err != nil {
		t.Fatalf("WriteXML: %v", err)
	}
	return buf.String()
}

// TestSnapshotIsolation: a snapshot keeps serving the exact committed
// state it pinned — bytes, queries, statistics — while transactions
// commit underneath; a later snapshot sees the new state.
func TestSnapshotIsolation(t *testing.T) {
	db := openDB(t)
	doc, err := db.LoadXMLString("lib", snapXML)
	if err != nil {
		t.Fatal(err)
	}
	before := xmlOf(t, doc)

	sn1, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer sn1.Close()
	sdoc1, err := sn1.Document("lib")
	if err != nil {
		t.Fatal(err)
	}

	// Commit a transaction on the live database.
	if err := db.Update(func(tx *Txn) error {
		k, err := tx.InsertElement(doc, "a", -1, "appendix")
		if err != nil {
			return err
		}
		_, err = tx.InsertText(doc, k, -1, "notes")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	after := xmlOf(t, doc)
	if before == after {
		t.Fatal("update did not change the document")
	}

	sn2, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer sn2.Close()
	if sn2.Epoch() <= sn1.Epoch() {
		t.Fatalf("epochs not increasing: %d then %d", sn1.Epoch(), sn2.Epoch())
	}

	// The old snapshot still serves the old bytes; the new one the new.
	if got := xmlOf(t, sdoc1); got != before {
		t.Fatalf("snapshot 1 drifted:\n got %q\nwant %q", got, before)
	}
	sdoc2, err := sn2.Document("lib")
	if err != nil {
		t.Fatal(err)
	}
	if got := xmlOf(t, sdoc2); got != after {
		t.Fatalf("snapshot 2 wrong:\n got %q\nwant %q", got, after)
	}

	// Queries through each snapshot see its version.
	res, err := sn1.Query(sdoc1, "//appendix")
	if err != nil {
		t.Fatal(err)
	}
	if keys, _ := res.Keys(); len(keys) != 0 {
		t.Fatalf("snapshot 1 sees the new element: %v", keys)
	}
	res, err = sn2.Query(sdoc2, "//appendix")
	if err != nil {
		t.Fatal(err)
	}
	if keys, _ := res.Keys(); len(keys) != 1 {
		t.Fatalf("snapshot 2 misses the new element: %v", keys)
	}
	// Statistics probes are pinned too.
	if n, err := sdoc1.CountName("appendix"); err != nil || n != 0 {
		t.Fatalf("snapshot 1 CountName = %d, %v", n, err)
	}
	if n, err := sdoc2.CountName("appendix"); err != nil || n != 1 {
		t.Fatalf("snapshot 2 CountName = %d, %v", n, err)
	}
	// Re-reads are stable.
	if got := xmlOf(t, sdoc1); got != before {
		t.Fatal("snapshot 1 unstable on re-read")
	}
	if u := sn1.Usage(); u.Queries == 0 {
		t.Fatalf("snapshot usage not folded: %+v", u)
	}
}

// TestSnapshotReadOnlyPublic: mutation through a snapshot-bound handle
// fails with the typed error; queries on a closed snapshot fail too.
func TestSnapshotReadOnlyPublic(t *testing.T) {
	db := openDB(t)
	if _, err := db.LoadXMLString("lib", snapXML); err != nil {
		t.Fatal(err)
	}
	sn, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sdoc, err := sn.Document("lib")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sdoc.InsertElement("a", -1, "x"); !errors.Is(err, ErrReadOnlySnapshot) {
		t.Fatalf("InsertElement on snapshot: %v", err)
	}
	if err := sdoc.DeleteSubtree("a.b"); !errors.Is(err, ErrReadOnlySnapshot) {
		t.Fatalf("DeleteSubtree on snapshot: %v", err)
	}
	sn.Close()
	if _, err := sn.Query(sdoc, "//book"); !errors.Is(err, ErrSnapshotClosed) {
		t.Fatalf("query on closed snapshot: %v", err)
	}
	if _, err := sn.Document("lib"); !errors.Is(err, ErrSnapshotClosed) {
		t.Fatalf("Document on closed snapshot: %v", err)
	}
}

// TestUpdateTxnPublic: DB.Update commits atomically, rolls back on
// error, and the Txn is dead once the function returns.
func TestUpdateTxnPublic(t *testing.T) {
	db := openDB(t)
	doc, err := db.LoadXMLString("lib", snapXML)
	if err != nil {
		t.Fatal(err)
	}
	base := xmlOf(t, doc)

	// Error from fn rolls everything back.
	boom := errors.New("boom")
	err = db.Update(func(tx *Txn) error {
		if _, err := tx.InsertElement(doc, "a", -1, "junk"); err != nil {
			return err
		}
		if err := tx.DeleteSubtree(doc, "a.b"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Update error = %v", err)
	}
	if got := xmlOf(t, doc); got != base {
		t.Fatalf("rollback left changes:\n got %q\nwant %q", got, base)
	}
	if n, _ := doc.CountName("junk"); n != 0 {
		t.Fatalf("rolled-back insert visible in statistics: %d", n)
	}

	// Panic from fn rolls back too and propagates.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		_ = db.Update(func(tx *Txn) error {
			if _, err := tx.InsertElement(doc, "a", -1, "junk"); err != nil {
				return err
			}
			panic("kaboom")
		})
	}()
	if got := xmlOf(t, doc); got != base {
		t.Fatal("panicked transaction left changes")
	}

	// Successful transaction: visible atomically, usable after commit.
	var escaped *Txn
	err = db.Update(func(tx *Txn) error {
		escaped = tx
		k, err := tx.InsertElement(doc, "a", -1, "chapter")
		if err != nil {
			return err
		}
		if _, err := tx.InsertText(doc, k, -1, "body"); err != nil {
			return err
		}
		return tx.RenameElement(doc, k, "section")
	})
	if err != nil {
		t.Fatal(err)
	}
	got := xmlOf(t, doc)
	if !strings.Contains(got, "<section>body</section>") {
		t.Fatalf("commit lost changes: %q", got)
	}
	// The transaction handle is dead after Update returns.
	if _, err := escaped.InsertElement(doc, "a", -1, "late"); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("escaped txn: %v", err)
	}
	// Queries on the live DB see the committed version (auto-snapshot).
	res, err := db.Query(doc, "//section")
	if err != nil {
		t.Fatal(err)
	}
	if keys, _ := res.Keys(); len(keys) != 1 {
		t.Fatalf("committed element not served: %v", keys)
	}
}

// TestDropBusyPublic: Drop refuses with ErrDocumentBusy while a
// snapshot or an in-flight result stream could still read the document.
func TestDropBusyPublic(t *testing.T) {
	db := openDB(t)
	doc, err := db.LoadXMLString("lib", snapXML)
	if err != nil {
		t.Fatal(err)
	}

	sn, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("lib"); !errors.Is(err, ErrDocumentBusy) {
		t.Fatalf("drop with open snapshot: %v", err)
	}
	sn.Close()

	res, err := db.Query(doc, "//book")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Next() {
		t.Fatal("no results")
	}
	if err := db.Drop("lib"); !errors.Is(err, ErrDocumentBusy) {
		t.Fatalf("drop with open stream: %v", err)
	}
	res.Close()

	// The auto-snapshot installed by Update must not wedge Drop.
	if err := db.Update(func(tx *Txn) error {
		_, err := tx.InsertElement(doc, "a", -1, "extra")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("lib"); err != nil {
		t.Fatalf("drop after release: %v", err)
	}
	if got := db.Documents(); len(got) != 0 {
		t.Fatalf("document survived drop: %v", got)
	}
}

// TestPrepareRunEquivalence: the consolidated Prepare/Run surface and
// the deprecated compile/execute methods produce identical results.
func TestPrepareRunEquivalence(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.01)
	ctx := context.Background()
	const expr = "//person/address"

	keysOf := func(r *Results, err error) []string {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		keys, err := r.Keys()
		if err != nil {
			t.Fatal(err)
		}
		return keys
	}
	same := func(a, b []string, label string) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d results", label, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: result %d differs: %q vs %q", label, i, a[i], b[i])
			}
		}
	}

	// Prepare default == CompileCached optimized; plan shape matches the
	// deprecated CompileOptimized.
	qNew, err := db.Prepare(expr, WithDocument(doc))
	if err != nil {
		t.Fatal(err)
	}
	qOld, err := db.CompileOptimized(doc, expr)
	if err != nil {
		t.Fatal(err)
	}
	if !qNew.Optimized() || !qOld.Optimized() {
		t.Fatal("optimizer did not run")
	}
	same(keysOf(qNew.Run(ctx, doc)), keysOf(qOld.Execute(doc)), "optimized run")

	// WithoutOptimization == deprecated Compile.
	qPlain, err := db.Prepare(expr, WithoutOptimization())
	if err != nil {
		t.Fatal(err)
	}
	if qPlain.Optimized() {
		t.Fatal("WithoutOptimization still optimized")
	}
	qDep, err := db.Compile(expr)
	if err != nil {
		t.Fatal(err)
	}
	same(keysOf(qPlain.Run(ctx, doc)), keysOf(qDep.Execute(doc)), "default plan")

	// Run(Ordered()) == deprecated ExecuteOrdered.
	same(keysOf(qNew.Run(ctx, doc, Ordered())), keysOf(qOld.ExecuteOrdered(doc)), "ordered")

	// Run(From(...)) == deprecated ExecuteFrom.
	people := keysOf(db.Query(doc, "/site/people/person"))
	if len(people) == 0 {
		t.Fatal("no people in fixture")
	}
	qRel, err := db.Prepare("address", WithDocument(doc))
	if err != nil {
		t.Fatal(err)
	}
	same(
		keysOf(qRel.Run(ctx, doc, From(people[0], nil))),
		keysOf(qRel.ExecuteFrom(doc, people[0], nil)),
		"from",
	)

	// Prepare caches: a second Prepare for the same (doc, expr) hits.
	h0 := db.CacheStats().Hits
	if _, err := db.Prepare(expr, WithDocument(doc)); err != nil {
		t.Fatal(err)
	}
	if h1 := db.CacheStats().Hits; h1 <= h0 {
		t.Fatalf("Prepare did not hit the plan cache: %d -> %d", h0, h1)
	}
}

// TestMixedReadWriteRace is the concurrency battery: a writer toggles
// the document between two states through transactions while reader
// goroutines pin snapshots and assert every snapshot read is
// byte-identical to one of the two committed states — never a blend —
// and stable on re-read. Run under -race this exercises the MVCC layer,
// the shared auto-snapshot, refcounting, and group commit at once.
func TestMixedReadWriteRace(t *testing.T) {
	db := openDB(t)
	doc, err := db.LoadXMLString("lib", snapXML)
	if err != nil {
		t.Fatal(err)
	}
	stateA := xmlOf(t, doc)

	// Build state B once to learn its bytes, then return to A. The
	// marker is always appended at the end, so B's serialization is
	// identical every time the writer re-creates it.
	var marker string
	mkB := func() error {
		return db.Update(func(tx *Txn) error {
			k, err := tx.InsertElement(doc, "a", -1, "marker")
			if err != nil {
				return err
			}
			if _, err := tx.InsertText(doc, k, -1, "v"); err != nil {
				return err
			}
			marker = k
			return nil
		})
	}
	mkA := func() error {
		return db.Update(func(tx *Txn) error { return tx.DeleteSubtree(doc, marker) })
	}
	if err := mkB(); err != nil {
		t.Fatal(err)
	}
	stateB := xmlOf(t, doc)
	if err := mkA(); err != nil {
		t.Fatal(err)
	}
	if stateA == stateB {
		t.Fatal("states not distinct")
	}

	const (
		readers    = 4
		iterations = 60
		writerLaps = 40
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writerLaps; i++ {
			if err := mkB(); err != nil {
				errc <- fmt.Errorf("writer mkB: %w", err)
				return
			}
			if err := mkA(); err != nil {
				errc <- fmt.Errorf("writer mkA: %w", err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				sn, err := db.Snapshot()
				if err != nil {
					errc <- fmt.Errorf("reader %d snapshot: %w", r, err)
					return
				}
				sdoc, err := sn.Document("lib")
				if err != nil {
					sn.Close()
					errc <- fmt.Errorf("reader %d doc: %w", r, err)
					return
				}
				var buf bytes.Buffer
				if err := sdoc.WriteXML("a", &buf); err != nil {
					sn.Close()
					errc <- fmt.Errorf("reader %d serialize: %w", r, err)
					return
				}
				got := buf.String()
				if got != stateA && got != stateB {
					sn.Close()
					errc <- fmt.Errorf("reader %d: torn read:\n%q", r, got)
					return
				}
				// The snapshot's query agrees with its bytes, and a
				// re-read is identical — the pinned version cannot move.
				res, err := sn.Query(sdoc, "//marker")
				if err != nil {
					sn.Close()
					errc <- fmt.Errorf("reader %d query: %w", r, err)
					return
				}
				keys, err := res.Keys()
				if err != nil {
					sn.Close()
					errc <- fmt.Errorf("reader %d drain: %w", r, err)
					return
				}
				wantMarkers := 0
				if got == stateB {
					wantMarkers = 1
				}
				if len(keys) != wantMarkers {
					sn.Close()
					errc <- fmt.Errorf("reader %d: %d markers for state with %d", r, len(keys), wantMarkers)
					return
				}
				buf.Reset()
				if err := sdoc.WriteXML("a", &buf); err != nil || buf.String() != got {
					sn.Close()
					errc <- fmt.Errorf("reader %d: snapshot drifted on re-read (err=%v)", r, err)
					return
				}
				// Interleave auto-snapshot reads on the live DB: they
				// must also never tear.
				live, err := db.Query(doc, "//book")
				if err != nil {
					sn.Close()
					errc <- fmt.Errorf("reader %d live query: %w", r, err)
					return
				}
				if bk, err := live.Keys(); err != nil || len(bk) != 2 {
					sn.Close()
					errc <- fmt.Errorf("reader %d live books = %d, %v", r, len(bk), err)
					return
				}
				sn.Close()
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// All snapshots are closed: dropping must succeed after the shared
	// auto-snapshot is released.
	if err := db.Drop("lib"); err != nil {
		t.Fatalf("drop after battery: %v", err)
	}
}
