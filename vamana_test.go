package vamana

import (
	"path/filepath"
	"strings"
	"testing"

	"vamana/internal/xmark"
)

func openDB(t testing.TB) *DB {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func loadAuction(t testing.TB, db *DB, factor float64) *Document {
	t.Helper()
	src := xmark.GenerateString(xmark.Config{Factor: factor, Seed: 51})
	doc, err := db.LoadXMLString("auction", src)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestQuickstartFlow(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.003)

	q, err := db.Compile("//person/address")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Execute(doc)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for res.Next() {
		n, err := res.Node()
		if err != nil {
			t.Fatal(err)
		}
		if n.Name != "address" || n.Kind != KindElement {
			t.Fatalf("unexpected result node %+v", n)
		}
		count++
	}
	if res.Err() != nil {
		t.Fatal(res.Err())
	}
	if count == 0 {
		t.Fatal("no addresses found")
	}

	// The optimized query returns the same set.
	qo, err := db.CompileOptimized(doc, "//person/address")
	if err != nil {
		t.Fatal(err)
	}
	if !qo.Optimized() {
		t.Fatal("CompileOptimized did not mark the query optimized")
	}
	ro, err := qo.Execute(doc)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := ro.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != count {
		t.Fatalf("optimized result size %d != default %d", len(keys), count)
	}
}

func TestExplain(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.002)
	q, err := db.CompileOptimized(doc, "//province[text()='Vermont']/ancestor::person")
	if err != nil {
		t.Fatal(err)
	}
	out, err := q.Explain(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"query:", "optimized: true", "δ=", "ordered list"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
}

func TestStatsAndCounts(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.002)
	st, err := doc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes == 0 || st.Elements == 0 || st.Texts == 0 {
		t.Fatalf("stats = %+v", st)
	}
	persons, err := doc.CountName("person")
	if err != nil {
		t.Fatal(err)
	}
	want := xmark.CountsFor(0.002).Persons
	if int(persons) != want {
		t.Fatalf("CountName(person) = %d, want %d", persons, want)
	}
	tc, err := doc.TextCount("Yung Flach")
	if err != nil {
		t.Fatal(err)
	}
	if tc != 1 {
		t.Fatalf("TextCount(Yung Flach) = %d, want 1", tc)
	}
}

func TestStringValueAndNodeFetch(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.002)
	q, _ := db.Compile("//person[name='Yung Flach']/name")
	res, err := q.Execute(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Next() {
		t.Fatal("no result")
	}
	sv, err := res.StringValue()
	if err != nil {
		t.Fatal(err)
	}
	if sv != "Yung Flach" {
		t.Fatalf("string value = %q", sv)
	}
	n, ok, err := doc.Node(res.Key())
	if err != nil || !ok || n.Name != "name" {
		t.Fatalf("Node fetch = %+v %v %v", n, ok, err)
	}
}

func TestExecuteFrom(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.002)
	q, _ := db.Compile("//person[address/province='Vermont']")
	res, _ := q.Execute(doc)
	keys, err := res.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Skip("no Vermont persons at this factor/seed")
	}
	rel, _ := db.Compile("address/city")
	r2, err := rel.ExecuteFrom(doc, keys[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	cities, err := r2.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(cities) != 1 {
		t.Fatalf("cities from person = %d", len(cities))
	}
}

func TestMultipleDocuments(t *testing.T) {
	db := openDB(t)
	d1, err := db.LoadXMLString("a", "<r><x>1</x></r>")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := db.LoadXMLString("b", "<r><x>2</x><x>3</x></r>")
	if err != nil {
		t.Fatal(err)
	}
	q, _ := db.Compile("//x")
	r1, _ := q.Execute(d1)
	k1, _ := r1.Keys()
	r2, _ := q.Execute(d2)
	k2, _ := r2.Keys()
	if len(k1) != 1 || len(k2) != 2 {
		t.Fatalf("cross-document results: %d, %d", len(k1), len(k2))
	}
	if len(db.Documents()) != 2 {
		t.Fatalf("Documents = %v", db.Documents())
	}
	if err := db.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Document("a"); err == nil {
		t.Fatal("dropped document still resolvable")
	}
}

func TestPersistentDB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vamana.db")
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadXMLString("doc", "<r><x>hello</x></r>"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	doc, err := db2.Document("doc")
	if err != nil {
		t.Fatal(err)
	}
	q, _ := db2.Compile("//x")
	res, _ := q.Execute(doc)
	keys, err := res.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Fatalf("results after reopen = %d", len(keys))
	}
}

func TestCompileErrors(t *testing.T) {
	db := openDB(t)
	if _, err := db.Compile("///"); err == nil {
		t.Fatal("bad expression compiled")
	}
	if _, err := db.Compile("1 + 2"); err == nil {
		t.Fatal("non-path expression compiled")
	}
	if _, err := db.Document("ghost"); err == nil {
		t.Fatal("ghost document resolved")
	}
}

func TestWriteXMLAndNumericRange(t *testing.T) {
	db := openDB(t)
	doc, err := db.LoadXMLString("d", `<cart><item price="x"><cost>12.50</cost></item><item><cost>99</cost></item></cart>`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := doc.WriteXML("a", &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<cost>12.50</cost>") {
		t.Fatalf("serialized: %q", b.String())
	}
	// Fragment export from a query result.
	q, _ := db.Compile("//item[cost=99]")
	res, _ := q.Execute(doc)
	keys, _ := res.Keys()
	if len(keys) != 1 {
		t.Fatal("setup failed")
	}
	b.Reset()
	if err := doc.WriteXML(keys[0], &b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "<item><cost>99</cost></item>" {
		t.Fatalf("fragment = %q", b.String())
	}
	// Numeric range statistics.
	if n, _ := doc.NumericRangeCount(0, 50); n != 1 {
		t.Fatalf("NumericRangeCount(0,50) = %d", n)
	}
	if n, _ := doc.NumericRangeCount(0, 100); n != 2 {
		t.Fatalf("NumericRangeCount(0,100) = %d", n)
	}
	// Range-predicate queries run through the rewrite end to end.
	qr, err := db.CompileOptimized(doc, "//cost[text() < 50]")
	if err != nil {
		t.Fatal(err)
	}
	rr, _ := qr.Execute(doc)
	hits, err := rr.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("range query hits = %d", len(hits))
	}
}
